// Fig. 7 scenario: many tenants, one optical slice (= one AL) per NFC, with
// admission control as the OPS pool runs dry. Shows the 1:1 NFC<->VC
// binding, slice isolation, and what happens when a tenant asks for more
// than its slice can carry.
//
//   ./examples/multi_tenant [tenant_count]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/alvc.h"

int main(int argc, char** argv) {
  using namespace alvc;
  using nfv::VnfType;

  std::size_t tenants = 6;
  if (argc > 1) tenants = std::strtoull(argv[1], nullptr, 10);

  core::DataCenterConfig config;
  config.topology.rack_count = 12;
  config.topology.ops_count = std::max<std::size_t>(48, tenants * 8);
  // Every cluster covering a ToR needs its own free uplink, so fan-out
  // scales with tenancy (see bench_fig3 for the exhaustion curve).
  config.topology.tor_ops_degree = std::min(config.topology.ops_count, 6 + tenants * 3);
  config.topology.service_count = tenants;  // one service (and VC) per tenant
  config.topology.service_skew = 0.0;       // even spread so every tenant has VMs
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = 2;

  core::DataCenter dc(config);
  const auto clusters = dc.build_clusters();
  if (!clusters) {
    std::cerr << "clusters failed: " << clusters.error().to_string() << '\n';
    return 1;
  }
  std::cout << "Tenants: " << tenants << ", clusters built: " << clusters->size()
            << ", free OPSs left: " << dc.clusters().ownership().free_count() << "/"
            << dc.topology().ops_count() << "\n\n";

  core::TextTable table({"tenant", "service", "chain", "result", "slice", "O/E/O"});
  std::size_t provisioned = 0;
  for (std::size_t t = 0; t < tenants; ++t) {
    nfv::NfcSpec spec;
    spec.tenant = util::TenantId{static_cast<util::TenantId::value_type>(t)};
    spec.service = util::ServiceId{static_cast<util::ServiceId::value_type>(t)};
    spec.name = "tenant-" + std::to_string(t);
    // Odd tenants ask for an aggressive 8 Gbps; even ones a modest 1 Gbps.
    spec.bandwidth_gbps = (t % 2 == 1) ? 8.0 : 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kLoadBalancer),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    const auto id = dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
    if (id) {
      const auto* chain = dc.orchestrator().chain(*id);
      table.add_row_values(t, dc.services().name(spec.service), spec.name, "provisioned",
                           chain->slice.value(), chain->placement.conversions.mid_chain);
      ++provisioned;
    } else {
      table.add_row_values(t, dc.services().name(spec.service), spec.name,
                           id.error().to_string(), "-", "-");
    }
  }
  table.print();

  // A second chain for tenant 0 must bounce: one VC hosts one NFC.
  nfv::NfcSpec dup;
  dup.tenant = util::TenantId{0};
  dup.service = util::ServiceId{0};
  dup.name = "tenant-0-second-chain";
  dup.bandwidth_gbps = 1.0;
  dup.functions = {*dc.catalog().find_by_type(VnfType::kNat)};
  const auto second = dc.provision_chain(dup, core::PlacementAlgorithm::kGreedyOptical);
  std::cout << "\nSecond chain for tenant 0: "
            << (second ? "provisioned (BUG!)" : second.error().to_string()) << '\n';

  const auto isolation = dc.orchestrator().check_isolation();
  std::cout << "Slice isolation violations: " << isolation.size() << '\n';
  std::cout << "Chains live: " << dc.orchestrator().chain_count() << " / " << tenants << '\n';
  return (!second.has_value() && isolation.empty() && provisioned > 0) ? 0 : 1;
}
