// Quickstart: build an AL-VC data center, cluster it by service, and print
// the resulting virtual clusters and their abstraction layers (paper §III).
//
//   ./examples/quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "core/alvc.h"

int main(int argc, char** argv) {
  using namespace alvc;

  core::DataCenterConfig config;
  config.topology.rack_count = 8;
  config.topology.servers_per_rack = 4;
  config.topology.vms_per_server = 4;
  config.topology.ops_count = 32;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 4;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kRing;
  if (argc > 1) config.topology.seed = std::strtoull(argv[1], nullptr, 10);

  core::DataCenter dc(config);
  std::cout << "Built: " << dc.describe() << "\n\n";

  const auto clusters = dc.build_clusters();
  if (!clusters) {
    std::cerr << "cluster construction failed: " << clusters->size() << '\n';
    return 1;
  }
  std::cout << "Created " << clusters->size() << " virtual clusters (one per service):\n\n";

  core::TextTable table({"cluster", "service", "VMs", "covering ToRs", "AL size (OPSs)",
                         "AL OPS ids", "connected"});
  for (const cluster::VirtualCluster* vc : dc.clusters().clusters()) {
    std::string ops_ids;
    for (auto o : vc->layer.opss) {
      if (!ops_ids.empty()) ops_ids += ",";
      ops_ids += std::to_string(o.value());
    }
    table.add_row_values(vc->id.value(), dc.services().name(vc->service), vc->vms.size(),
                         vc->layer.tors.size(), vc->layer.opss.size(), ops_ids,
                         vc->connected ? "yes" : "no");
  }
  table.print();

  // Show the exclusivity invariant in action.
  std::cout << "\nOPS ownership (paper: 'one OPS cannot be part of two ALs'):\n";
  std::cout << "  free OPSs: " << dc.clusters().ownership().free_count() << " / "
            << dc.topology().ops_count() << '\n';
  const auto violations = dc.clusters().check_invariants();
  std::cout << "  invariant violations: " << violations.size() << '\n';
  return violations.empty() ? 0 : 1;
}
