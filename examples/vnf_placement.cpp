// Reproduces the paper's Fig. 8 walk-through: a 3-VNF chain, first with two
// VNFs in the electronic domain (two O/E/O conversions), then with one more
// VNF moved into the optical domain (one conversion saved), then comparing
// every placement strategy on conversions and per-flow energy.
//
//   ./examples/vnf_placement
#include <iostream>

#include "core/alvc.h"

int main() {
  using namespace alvc;
  using nfv::VnfType;

  // One cluster is enough; give it optoelectronic routers with room for
  // exactly two light VNFs so the Fig. 8 progression is visible.
  core::DataCenterConfig config;
  config.topology.rack_count = 4;
  config.topology.ops_count = 12;
  config.topology.tor_ops_degree = 4;
  config.topology.service_count = 1;
  config.topology.optoelectronic_fraction = 0.4;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = 11;

  const std::vector<core::PlacementAlgorithm> strategies{
      core::PlacementAlgorithm::kElectronicOnly,
      core::PlacementAlgorithm::kRandom,
      core::PlacementAlgorithm::kGreedyOptical,
      core::PlacementAlgorithm::kOeoMinimizing,
  };

  std::cout << "Fig. 8: O/E/O conversions of one 3-VNF chain under different placements.\n"
            << "Chain: security-gw -> firewall -> nat (all light enough for optical hosting)\n\n";

  const orchestrator::OeoCostModel energy_model;
  const double flow_bytes = 1e9;  // a 1 GB elephant flow

  core::TextTable table({"placement", "optical VNFs", "electronic VNFs", "O/E/O (mid-chain)",
                         "conversion energy / 1GB flow (J)"});
  for (const auto strategy : strategies) {
    // Fresh DC per strategy so reservations do not leak between runs.
    core::DataCenter dc(config);
    if (auto built = dc.build_clusters(); !built) {
      std::cerr << "clusters failed: " << built.error().to_string() << '\n';
      return 1;
    }
    nfv::NfcSpec spec;
    spec.name = "fig8-chain";
    spec.service = util::ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kSecurityGateway),
                      *dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    const auto id = dc.provision_chain(spec, strategy);
    if (!id) {
      std::cerr << to_string(strategy) << " failed: " << id.error().to_string() << '\n';
      return 1;
    }
    const auto* chain = dc.orchestrator().chain(*id);
    const double joules =
        orchestrator::conversion_energy(chain->placement.conversions, flow_bytes, energy_model);
    table.add_row_values(to_string(strategy), chain->placement.optical_count,
                         chain->placement.electronic_count,
                         chain->placement.conversions.mid_chain, core::fmt(joules, 3));
  }
  table.print();

  std::cout << "\nPaper claim: every VNF moved into the optical domain saves one O/E/O\n"
               "conversion; with all three hosted on optoelectronic routers the flow\n"
               "never leaves the optical domain mid-chain.\n";
  return 0;
}
