// Reproduces the paper's Fig. 5 scenario: three network function chains
// (the blue, black, and green paths), each orchestrated onto its own
// virtual cluster / optical slice, each traversing its own NF/VNF sequence.
//
//   ./examples/nfc_orchestration
#include <iostream>

#include "core/alvc.h"

namespace {

std::string domain_of(const alvc::nfv::HostRef& host) {
  return alvc::nfv::is_optical_host(host) ? "optical" : "electronic";
}

std::string host_name(const alvc::nfv::HostRef& host) {
  if (const auto* ops = std::get_if<alvc::util::OpsId>(&host)) {
    return "OPS-" + std::to_string(ops->value());
  }
  return "server-" + std::to_string(std::get<alvc::util::ServerId>(host).value());
}

}  // namespace

int main() {
  using namespace alvc;
  using nfv::VnfType;

  core::DataCenterConfig config;
  config.topology.rack_count = 9;
  config.topology.ops_count = 36;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = 5;

  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    std::cerr << "clusters failed: " << built.error().to_string() << '\n';
    return 1;
  }

  // The paper's three example chains: a security chain, an inspection
  // chain, and a content chain — one per service/VC.
  struct ChainPlan {
    const char* name;
    std::vector<VnfType> functions;
  };
  const std::vector<ChainPlan> plans{
      {"blue:  gw -> firewall -> nat", {VnfType::kSecurityGateway, VnfType::kFirewall, VnfType::kNat}},
      {"black: firewall -> dpi -> lb", {VnfType::kFirewall, VnfType::kDeepPacketInspection, VnfType::kLoadBalancer}},
      {"green: proxy -> cache", {VnfType::kProxy, VnfType::kCache}},
  };

  std::cout << "Orchestrating " << plans.size() << " NFCs over AL-VC (paper Fig. 5)\n\n";
  core::TextTable table({"chain", "slice", "hosts (in order)", "path hops", "optical hops",
                         "O/E/O", "rules"});
  for (std::size_t i = 0; i < plans.size(); ++i) {
    nfv::NfcSpec spec;
    spec.tenant = util::TenantId{static_cast<util::TenantId::value_type>(i)};
    spec.name = plans[i].name;
    spec.service = util::ServiceId{static_cast<util::ServiceId::value_type>(i)};
    spec.bandwidth_gbps = 2.0;
    for (auto t : plans[i].functions) spec.functions.push_back(*dc.catalog().find_by_type(t));

    const auto id = dc.provision_chain(spec, core::PlacementAlgorithm::kOeoMinimizing);
    if (!id) {
      std::cerr << "provisioning '" << plans[i].name << "' failed: " << id.error().to_string()
                << '\n';
      return 1;
    }
    const auto* chain = dc.orchestrator().chain(*id);
    std::string hosts;
    for (const auto& h : chain->placement.hosts) {
      if (!hosts.empty()) hosts += " -> ";
      hosts += host_name(h) + "(" + domain_of(h) + ")";
    }
    table.add_row_values(plans[i].name, chain->slice.value(), hosts,
                         chain->route.total_hops(), chain->route.optical_hops,
                         chain->placement.conversions.mid_chain, chain->flow_rules);
  }
  table.print();

  const auto isolation = dc.orchestrator().check_isolation();
  std::cout << "\nPer-chain slice isolation violations: " << isolation.size()
            << " (paper: each slice works independently)\n";

  // Run some traffic through the chains.
  sim::SimulationConfig sim_config;
  sim_config.flow_count = 3000;
  const auto metrics = sim::simulate_chain_traffic(dc.orchestrator(), sim_config);
  std::cout << "Traffic: " << metrics.summary() << '\n';
  return isolation.empty() ? 0 : 1;
}
