// Complex processing order (paper §IV-A): an NFC defined by a network
// forwarding graph rather than a simple linear chain. A load balancer fans
// traffic out to a fast path (firewall) and an inspection path (DPI), both
// rejoining at a security gateway before leaving the slice.
//
//   ./examples/forwarding_graph
#include <iostream>

#include "core/alvc.h"

namespace {

std::string host_name(const alvc::nfv::HostRef& host) {
  if (const auto* ops = std::get_if<alvc::util::OpsId>(&host)) {
    return "OPS-" + std::to_string(ops->value()) + "(optical)";
  }
  return "server-" + std::to_string(std::get<alvc::util::ServerId>(host).value()) +
         "(electronic)";
}

}  // namespace

int main() {
  using namespace alvc;
  using nfv::VnfType;

  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.ops_count = 24;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 1;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = 13;
  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    std::cerr << "clusters failed: " << built.error().to_string() << '\n';
    return 1;
  }

  nfv::GraphNfcSpec spec;
  spec.name = "split-inspect-rejoin";
  spec.service = util::ServiceId{0};
  spec.bandwidth_gbps = 2.0;
  const auto lb = spec.graph.add_node(*dc.catalog().find_by_type(VnfType::kLoadBalancer));
  const auto fw = spec.graph.add_node(*dc.catalog().find_by_type(VnfType::kFirewall));
  const auto dpi = spec.graph.add_node(*dc.catalog().find_by_type(VnfType::kDeepPacketInspection));
  const auto gw = spec.graph.add_node(*dc.catalog().find_by_type(VnfType::kSecurityGateway));
  spec.graph.add_edge(lb, fw);   // fast path
  spec.graph.add_edge(lb, dpi);  // inspection path
  spec.graph.add_edge(fw, gw);
  spec.graph.add_edge(dpi, gw);

  std::cout << "Forwarding graph: lb -> {firewall, dpi} -> security-gw\n"
            << "nodes=" << spec.graph.node_count() << " edges=" << spec.graph.edge_count()
            << " entry=" << spec.graph.entry() << " exits=" << spec.graph.exits().size()
            << "\n\n";

  const auto strategy = core::DataCenter::make_placement(
      core::PlacementAlgorithm::kGreedyOptical, config.topology.seed);
  const auto id = dc.orchestrator().provision_forwarding_graph(spec, *strategy);
  if (!id) {
    std::cerr << "provisioning failed: " << id.error().to_string() << '\n';
    return 1;
  }
  const auto* chain = dc.orchestrator().chain(*id);

  std::cout << "Node placements (graph order):\n";
  const char* names[] = {"load-balancer", "firewall", "dpi", "security-gw"};
  for (std::size_t i = 0; i < chain->forwarding_order.size(); ++i) {
    const std::size_t node = chain->forwarding_order[i];
    std::cout << "  " << names[node] << " -> " << host_name(chain->placement.hosts[i]) << '\n';
  }
  std::cout << "\nRoute: " << chain->route.legs.size() << " legs ("
            << "1 ingress + " << spec.graph.edge_count() << " edges + "
            << spec.graph.exits().size() << " exit), " << chain->route.total_hops()
            << " switch hops total\n";
  std::cout << "Mid-graph O/E/O conversions: " << chain->placement.conversions.mid_chain
            << " (the DPI leg leaves the optical domain; everything else stays optical)\n";
  std::cout << "Flow rules installed: " << chain->flow_rules << '\n';
  std::cout << "Isolation violations: " << dc.orchestrator().check_isolation().size() << '\n';
  return 0;
}
