// End-to-end flow-level simulation with VM churn: builds a clustered DC,
// runs service-skewed traffic, then exercises join/leave/migrate events and
// reports the control-plane update costs (the ref-[14] selling point of
// AL-VC), finishing with a second traffic epoch to show the DC still works.
//
//   ./examples/datacenter_sim [flows] [churn_events] [trace.csv]
//
// When a third argument is given, every epoch-1 flow is recorded and
// exported as CSV (one row per flow: endpoints, size, hops, O/E/O, latency,
// energy) for external plotting.
#include <cstdlib>
#include <iostream>

#include "core/alvc.h"

int main(int argc, char** argv) {
  using namespace alvc;

  std::size_t flow_count = 20'000;
  std::size_t churn_events = 200;
  const char* trace_path = nullptr;
  if (argc > 1) flow_count = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) churn_events = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) trace_path = argv[3];

  core::DataCenterConfig config;
  config.topology.rack_count = 16;
  config.topology.servers_per_rack = 4;
  config.topology.vms_per_server = 4;
  config.topology.ops_count = 64;
  config.topology.tor_ops_degree = 10;
  config.topology.service_count = 4;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kTorus2D;
  config.topology.seed = 33;

  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    std::cerr << "clusters failed: " << built.error().to_string() << '\n';
    return 1;
  }
  std::cout << dc.describe() << "\n\n";

  // ---- epoch 1: steady-state traffic ----
  sim::SimulationConfig sim_config;
  sim_config.flow_count = flow_count;
  sim_config.workload.locality = 0.8;
  sim::TraceRecorder trace(trace_path != nullptr ? flow_count : 0);
  const auto epoch1 = sim::simulate_traffic(dc.clusters(), sim_config,
                                            trace_path != nullptr ? &trace : nullptr);
  std::cout << "Epoch 1 (" << flow_count << " flows): " << epoch1.summary() << "\n\n";
  if (trace_path != nullptr) {
    trace.write_csv(trace_path);
    std::cout << "Wrote " << trace.size() << " flow records to " << trace_path << "\n\n";
  }

  // ---- churn: migrate random cluster VMs to random servers ----
  util::Rng rng(99);
  cluster::UpdateCost total_cost;
  std::size_t migrations_ok = 0;
  const auto clusters = dc.clusters().clusters();
  for (std::size_t i = 0; i < churn_events; ++i) {
    const auto* vc = clusters[rng.uniform_index(clusters.size())];
    if (vc->vms.empty()) continue;
    const auto vm = vc->vms[rng.uniform_index(vc->vms.size())];
    const util::ServerId target{
        static_cast<util::ServerId::value_type>(rng.uniform_index(dc.topology().server_count()))};
    const auto cost = dc.clusters().migrate_vm(vc->id, vm, target);
    if (cost) {
      total_cost += *cost;
      ++migrations_ok;
    }
  }
  std::cout << "Churn: " << migrations_ok << "/" << churn_events << " migrations\n"
            << "  flow-rule updates: " << total_cost.flow_rules << "\n"
            << "  ToR set changes:   " << total_cost.tor_changes << "\n"
            << "  AL (OPS) changes:  " << total_cost.ops_changes << "\n"
            << "  mean updates per migration: "
            << core::fmt(static_cast<double>(total_cost.total()) /
                             static_cast<double>(migrations_ok ? migrations_ok : 1),
                         2)
            << "\n";
  const auto violations = dc.clusters().check_invariants();
  std::cout << "  invariants after churn: "
            << (violations.empty() ? "all hold" : violations.front()) << "\n\n";

  // ---- epoch 2: traffic still flows after churn ----
  sim_config.workload.seed = 2;
  const auto epoch2 = sim::simulate_traffic(dc.clusters(), sim_config);
  std::cout << "Epoch 2 (" << flow_count << " flows): " << epoch2.summary() << '\n';
  return violations.empty() ? 0 : 1;
}
