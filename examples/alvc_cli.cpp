// alvc_cli — command-line driver over the public API.
//
//   alvc_cli describe  [seed]            build a DC and print its shape
//   alvc_cli dot       [seed]            emit Graphviz DOT (clusters colored)
//   alvc_cli json      [seed]            emit topology + clusters + chains JSON
//   alvc_cli fail      [seed] [ops_id]   inject an OPS failure, show the repair
//   alvc_cli sim       [seed] [flows]    run a traffic epoch and print metrics
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/alvc.h"
#include "io/dot.h"
#include "io/serialize.h"

namespace {

using namespace alvc;

core::DataCenterConfig cli_config(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 8;
  config.topology.ops_count = 32;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = seed;
  return config;
}

/// Builds the standard CLI deployment: clusters + one chain per service.
core::DataCenter make_dc(std::uint64_t seed) {
  core::DataCenter dc(cli_config(seed));
  if (auto built = dc.build_clusters(); !built) {
    throw std::runtime_error("cluster build failed: " + built.error().to_string());
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "cli-chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(nfv::VnfType::kFirewall),
                      *dc.catalog().find_by_type(nfv::VnfType::kNat)};
    (void)dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
  }
  return dc;
}

int cmd_describe(std::uint64_t seed) {
  const auto dc = make_dc(seed);
  std::cout << dc.describe() << '\n';
  for (const auto* vc : dc.clusters().clusters()) {
    std::cout << "  cluster " << vc->id.value() << " (" << dc.services().name(vc->service)
              << "): " << vc->vms.size() << " VMs, AL of " << vc->layer.opss.size()
              << " OPSs, " << (vc->connected ? "connected" : "DISCONNECTED") << '\n';
  }
  for (const auto* chain : dc.orchestrator().chains()) {
    std::cout << "  chain " << chain->record.spec.name << ": " << chain->route.total_hops()
              << " hops, " << chain->placement.conversions.mid_chain << " O/E/O, "
              << chain->flow_rules << " rules\n";
  }
  return 0;
}

int cmd_dot(std::uint64_t seed) {
  const auto dc = make_dc(seed);
  std::cout << io::to_dot(dc.topology(), dc.clusters());
  return 0;
}

int cmd_json(std::uint64_t seed) {
  const auto dc = make_dc(seed);
  io::JsonObject document;
  document.emplace("topology", io::topology_to_json(dc.topology()));
  document.emplace("clusters", io::clusters_to_json(dc.clusters()));
  document.emplace("chains", io::chains_to_json(dc.orchestrator()));
  std::cout << io::dump(io::JsonValue(std::move(document)), 2) << '\n';
  return 0;
}

int cmd_fail(std::uint64_t seed, util::OpsId victim) {
  auto dc = make_dc(seed);
  std::cout << "Before: " << dc.orchestrator().chain_count() << " chains, OPS "
            << victim.value() << " owner="
            << (dc.clusters().ownership().owner(victim).valid()
                    ? std::to_string(dc.clusters().ownership().owner(victim).value())
                    : std::string("none"))
            << '\n';
  const auto affected = dc.orchestrator().chains_using_ops(victim);
  std::cout << "Chains affected: " << affected.size() << '\n';
  const auto repaired = dc.orchestrator().handle_ops_failure(victim);
  if (!repaired) {
    std::cout << "Failure handling error: " << repaired.error().to_string() << '\n';
    return 1;
  }
  std::cout << "Repaired " << *repaired << " chain(s); lost "
            << dc.orchestrator().stats().chains_lost << "; VNFs relocated "
            << dc.orchestrator().stats().vnfs_relocated << '\n';
  const auto violations = dc.clusters().check_invariants();
  std::cout << "Cluster invariants: " << (violations.empty() ? "OK" : violations.front()) << '\n';
  return violations.empty() ? 0 : 1;
}

int cmd_sim(std::uint64_t seed, std::size_t flows) {
  const auto dc = make_dc(seed);
  sim::SimulationConfig config;
  config.flow_count = flows;
  config.workload.seed = seed;
  const auto vm_traffic = sim::simulate_traffic(dc.clusters(), config);
  std::cout << "VM traffic:    " << vm_traffic.summary() << '\n';
  const auto chain_traffic = sim::simulate_chain_traffic(dc.orchestrator(), config);
  std::cout << "Chain traffic: " << chain_traffic.summary() << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "describe";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  try {
    if (command == "describe") return cmd_describe(seed);
    if (command == "dot") return cmd_dot(seed);
    if (command == "json") return cmd_json(seed);
    if (command == "fail") {
      const auto ops = static_cast<alvc::util::OpsId::value_type>(
          argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 0);
      return cmd_fail(seed, alvc::util::OpsId{ops});
    }
    if (command == "sim") {
      const std::size_t flows = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10'000;
      return cmd_sim(seed, flows);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "usage: alvc_cli {describe|dot|json|fail|sim} [seed] [arg]\n";
  return 2;
}
