// ABL1 — Network update cost under churn (the AL-VC selling point of the
// authors' companion work, ref [14]: "Abstraction Layer Based Virtual
// Clusters Providing Low Network Update Costs").
//
// Experiment: run identical VM churn (join/leave/migrate) against
//   * AL-VC: updates touch only the affected ToR and, rarely, the AL;
//   * a modelled FLAT virtual network: every churn event re-programs every
//     switch carrying the cluster's flows (all its ToRs + all its core
//     switches), the standard cost of address-coupled VNs the paper's
//     related work (VL2/NetLord discussions) aims to avoid.
// Reports mean/percentile updates per event and the AL-VC advantage factor.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"

namespace {

using namespace alvc;

core::DataCenterConfig churn_config(std::size_t racks) {
  core::DataCenterConfig config;
  config.topology.rack_count = racks;
  config.topology.ops_count = racks * 4;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = 71;
  return config;
}

/// Modelled flat-VN update cost for one churn event on `vc`: one rule per
/// cluster ToR plus one per core switch the cluster's traffic rides (its
/// whole AL-equivalent footprint) — address/location coupling forces a
/// global re-program.
std::size_t flat_vn_cost(const cluster::VirtualCluster& vc) {
  return vc.layer.tors.size() + vc.layer.opss.size();
}

void print_experiment() {
  std::cout << "=== ABL1: network update cost per churn event — AL-VC vs flat VN ===\n\n";
  core::TextTable table({"racks", "events", "AL-VC mean", "AL-VC p99", "flat mean",
                         "advantage (flat/AL-VC)"});
  for (const std::size_t racks : {8u, 16u, 32u}) {
    core::DataCenter dc(churn_config(racks));
    if (!dc.build_clusters().has_value()) {
      table.add_row_values(racks, "-", "cluster build failed", "-", "-", "-");
      continue;
    }
    util::Rng rng(5);
    util::SampleSet alvc_cost;
    util::SampleSet flat_cost;
    const auto clusters = dc.clusters().clusters();
    std::size_t events = 0;
    for (int step = 0; step < 600; ++step) {
      const auto* vc = clusters[rng.uniform_index(clusters.size())];
      if (vc->vms.empty()) continue;
      const auto vm = vc->vms[rng.uniform_index(vc->vms.size())];
      const util::ServerId target{static_cast<util::ServerId::value_type>(
          rng.uniform_index(dc.topology().server_count()))};
      const std::size_t flat = flat_vn_cost(*vc);
      const auto cost = dc.clusters().migrate_vm(vc->id, vm, target);
      if (!cost) continue;
      alvc_cost.add(static_cast<double>(cost->total()));
      flat_cost.add(static_cast<double>(flat));
      ++events;
    }
    table.add_row_values(racks, events, core::fmt(alvc_cost.mean(), 2),
                         core::fmt(alvc_cost.percentile(99), 1), core::fmt(flat_cost.mean(), 2),
                         core::fmt(flat_cost.mean() / std::max(alvc_cost.mean(), 1e-9), 1));
    const auto violations = dc.clusters().check_invariants();
    if (!violations.empty()) {
      std::cout << "INVARIANT VIOLATION after churn: " << violations.front() << '\n';
    }
  }
  table.print();
  std::cout << "\nExpected shape: AL-VC cost stays small and flat as the DC grows (most\n"
               "migrations touch 2-4 rules); the flat VN's cost scales with cluster footprint,\n"
               "so the advantage factor grows with DC size — ref [14]'s claim.\n\n";
}

void BM_MigrateVm(benchmark::State& state) {
  core::DataCenter dc(churn_config(static_cast<std::size_t>(state.range(0))));
  (void)dc.build_clusters();
  util::Rng rng(11);
  const auto clusters = dc.clusters().clusters();
  for (auto _ : state) {
    const auto* vc = clusters[rng.uniform_index(clusters.size())];
    if (vc->vms.empty()) continue;
    const auto vm = vc->vms[rng.uniform_index(vc->vms.size())];
    const util::ServerId target{static_cast<util::ServerId::value_type>(
        rng.uniform_index(dc.topology().server_count()))};
    benchmark::DoNotOptimize(dc.clusters().migrate_vm(vc->id, vm, target));
  }
}
BENCHMARK(BM_MigrateVm)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_AddRemoveVm(benchmark::State& state) {
  core::DataCenter dc(churn_config(8));
  (void)dc.build_clusters();
  const auto* vc = dc.clusters().clusters().front();
  const auto vm = vc->vms.back();
  const auto id = vc->id;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.clusters().remove_vm(id, vm));
    benchmark::DoNotOptimize(dc.clusters().add_vm(id, vm));
  }
}
BENCHMARK(BM_AddRemoveVm)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
