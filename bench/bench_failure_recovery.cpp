// Failure-recovery throughput and chain-survival accounting.
//
// Experiment: chaos runs (stochastic MTBF/MTTR fault schedules mixed with
// correlated whole-AL outages and live traffic) over a loaded DC, reporting
// how chains end up: still healthy, degraded, restored, lost, or silently
// unaccounted (which must never happen). Benchmarks: the cost of a full
// failure+recovery cycle per hardware class — the "repairs per second" the
// control plane can sustain.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"
#include "faults/chaos.h"
#include "faults/fault_injector.h"
#include "faults/state_auditor.h"

namespace {

using namespace alvc;
using nfv::VnfType;

core::DataCenter make_loaded_dc(std::uint64_t seed, std::size_t ops_count = 16) {
  core::DataCenterConfig config;
  config.topology.rack_count = 8;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = ops_count;
  config.topology.tor_ops_degree = 6;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.seed = seed;
  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    throw std::runtime_error(built.error().to_string());
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    (void)dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
  }
  return dc;
}

void print_experiment() {
  std::cout << "=== Failure recovery: chain survival under chaos schedules ===\n\n";
  core::TextTable table({"seed", "fault events", "healthy", "degraded(end)", "restored", "lost",
                         "unaccounted", "flows served", "audit"});
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    auto dc = make_loaded_dc(seed, /*ops_count=*/10);  // tight spare pool
    faults::ChaosParams params;
    params.schedule.ops = {.mtbf_s = 35, .mttr_s = 7};
    params.schedule.tor = {.mtbf_s = 55, .mttr_s = 6};
    params.schedule.server = {.mtbf_s = 45, .mttr_s = 5};
    params.schedule.link = {.mtbf_s = 40, .mttr_s = 6};
    params.schedule.horizon_s = 40;
    params.schedule.seed = seed;
    params.flow_rate_per_s = 20;
    params.traffic_seed = seed + 1;
    const auto* vc0 = dc.clusters().clusters().front();
    if (!vc0->layer.opss.empty()) {
      params.scripted = faults::FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
    }
    faults::ChaosRunner runner(dc.orchestrator(), params);
    const auto report = runner.run();
    table.add_row_values(seed, report.fault_events, report.chains_live_healthy,
                         report.chains_live_degraded, report.chains_restored, report.chains_lost,
                         report.chains_unaccounted, report.flows_served,
                         report.audit_violations == 0 ? "OK" : "VIOLATED");
  }
  table.print();
  std::cout << "\nExpected shape: chains ride out the fault schedule — repairs and degraded\n"
               "mode absorb every outage, restorations follow recoveries, and no chain is\n"
               "ever lost silently. The audit column must read OK on every row.\n\n";
}

void BM_OpsFailureRecoveryCycle(benchmark::State& state) {
  auto dc = make_loaded_dc(7);
  // Cycle an owned OPS: failure evicts + repairs the AL and sweeps chains;
  // recovery re-integrates it and drains the retry queue.
  const util::OpsId victim = dc.clusters().clusters().front()->layer.opss.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.orchestrator().handle_ops_failure(victim));
    benchmark::DoNotOptimize(dc.orchestrator().handle_ops_recovery(victim));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_OpsFailureRecoveryCycle)->Unit(benchmark::kMicrosecond);

void BM_TorFailureRecoveryCycle(benchmark::State& state) {
  auto dc = make_loaded_dc(7);
  const util::TorId victim{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.orchestrator().handle_tor_failure(victim));
    benchmark::DoNotOptimize(dc.orchestrator().handle_tor_recovery(victim));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_TorFailureRecoveryCycle)->Unit(benchmark::kMicrosecond);

void BM_LinkFailureRecoveryCycle(benchmark::State& state) {
  auto dc = make_loaded_dc(7);
  const util::TorId tor{0};
  const util::OpsId ops = dc.topology().tor(tor).uplinks.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.orchestrator().handle_link_failure(tor, ops));
    benchmark::DoNotOptimize(dc.orchestrator().handle_link_recovery(tor, ops));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_LinkFailureRecoveryCycle)->Unit(benchmark::kMicrosecond);

void BM_StateAudit(benchmark::State& state) {
  auto dc = make_loaded_dc(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(faults::StateAuditor::audit(dc.orchestrator()));
  }
}
BENCHMARK(BM_StateAudit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
