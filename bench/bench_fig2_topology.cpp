// FIG2 — Hybrid ToR/OPS topology (paper Fig. 2, §III-B).
//
// Claim: the core is built from optical packet switches "in order to
// achieve higher bandwidth with small energy consumption"; O/E/O
// conversions are the expensive part.
//
// Experiment: for each OPS-core family (ref [29] evaluates several),
// report core diameter / mean ToR-to-ToR path length and the per-flow
// transport energy split between optical and electronic hops — optical
// cores shorten paths and keep bytes in the cheap domain. Also benchmarks
// topology construction throughput at increasing scale.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"
#include "graph/shortest_path.h"
#include "topology/validation.h"

namespace {

using namespace alvc;

topology::TopologyParams base_params(topology::CoreKind core, std::size_t ops = 16) {
  topology::TopologyParams params;
  params.rack_count = 12;
  params.ops_count = ops;
  params.tor_ops_degree = 4;
  params.core = core;
  params.core_degree = 4;
  params.service_count = 4;
  params.seed = 17;
  return params;
}

struct PathStats {
  double mean_hops = 0;
  double max_hops = 0;
  double optical_fraction = 0;  // of traversed links
};

PathStats tor_to_tor_paths(const topology::DataCenterTopology& topo) {
  const auto& g = topo.switch_graph();
  util::SampleSet hops;
  double optical_links = 0;
  double total_links = 0;
  for (std::size_t t = 0; t < topo.tor_count(); ++t) {
    const auto tree = graph::bfs(g, topo.tor_vertex(util::TorId{static_cast<util::TorId::value_type>(t)}));
    for (std::size_t u = 0; u < topo.tor_count(); ++u) {
      if (u == t) continue;
      const auto path = graph::extract_path(tree, topo.tor_vertex(util::TorId{static_cast<util::TorId::value_type>(u)}));
      if (!path) continue;
      hops.add(static_cast<double>(path->size() - 1));
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        ++total_links;
        if (topo.is_ops_vertex((*path)[i]) && topo.is_ops_vertex((*path)[i + 1])) ++optical_links;
      }
    }
  }
  return PathStats{hops.mean(), hops.max(),
                   total_links == 0 ? 0 : optical_links / total_links};
}

void print_experiment() {
  std::cout << "=== FIG2: hybrid topology — OPS core families (ref [29]) ===\n\n";
  core::TextTable table({"core", "OPSs", "core links", "connected", "mean ToR-ToR hops",
                         "max hops", "optical link fraction"});
  for (const auto core : {topology::CoreKind::kNone, topology::CoreKind::kRing,
                          topology::CoreKind::kTorus2D, topology::CoreKind::kRandomRegular,
                          topology::CoreKind::kFullMesh}) {
    const auto params = base_params(core);
    const auto topo = topology::build_topology(params);
    std::size_t core_links = 0;
    for (const auto& o : topo.opss()) core_links += o.peer_links.size();
    core_links /= 2;
    const auto stats = tor_to_tor_paths(topo);
    table.add_row_values(topology::to_string(core), topo.ops_count(), core_links,
                         topology::switch_layer_connected(topo) ? "yes" : "no",
                         core::fmt(stats.mean_hops, 2), core::fmt(stats.max_hops, 0),
                         core::fmt(stats.optical_fraction, 3));
  }
  table.print();
  std::cout << "\nExpected shape: richer cores (torus/full-mesh) shorten ToR-to-ToR paths and\n"
               "raise the fraction of links that stay optical — the paper's motivation for\n"
               "an OPS-built core.\n\n";
}

void print_core_energy() {
  // §III-B: "the proposed topology can be constructed using electronic
  // switches. However, in order to achieve higher bandwidth with small
  // energy consumption, we use OPS." Model both: same torus core, per-hop
  // transport energy at optical vs electronic rates.
  std::cout << "=== FIG2(b): transport energy — optical core vs electronic core ===\n\n";
  // Sparse uplinks + ring core so ToR-to-ToR paths actually traverse the
  // core (with dense uplinks most paths are ToR-OPS-ToR and the core never
  // gets exercised).
  auto params = base_params(topology::CoreKind::kRing, 16);
  params.rack_count = 16;
  params.tor_ops_degree = 1;
  params.uplink_locality = 1.0;
  const auto topo = topology::build_topology(params);
  const auto stats = tor_to_tor_paths(topo);
  const orchestrator::OeoCostModel model;
  core::TextTable table({"flow size (bytes)", "optical core (J)", "electronic core (J)",
                         "savings factor"});
  for (const double bytes : {1e6, 1e9, 1e12}) {
    // Mean path: core hops ride at the respective domain rate; edge hops
    // (ToR attachment) are electronic in both designs.
    const double core_hops = stats.mean_hops * stats.optical_fraction;
    const double edge_hops = stats.mean_hops - core_hops;
    const double optical_j = bytes * (core_hops * model.optical_joules_per_byte_hop +
                                      edge_hops * model.electronic_joules_per_byte_hop);
    const double electronic_j =
        bytes * stats.mean_hops * model.electronic_joules_per_byte_hop;
    table.add_row_values(core::fmt(bytes, 0), core::fmt(optical_j, 6),
                         core::fmt(electronic_j, 6),
                         core::fmt(electronic_j / optical_j, 2));
  }
  table.print();
  std::cout << "\nExpected shape: the optical core's advantage equals the per-byte-hop rate\n"
               "ratio on the core fraction of the path, and grows linearly with flow size —\n"
               "the §III-B justification for building the core from OPSs.\n\n";
}

void BM_BuildTopology(benchmark::State& state) {
  auto params = base_params(topology::CoreKind::kRing);
  params.rack_count = static_cast<std::size_t>(state.range(0));
  params.ops_count = params.rack_count * 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::build_topology(params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.total_vms()));
}
BENCHMARK(BM_BuildTopology)->Arg(8)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_SwitchGraphRebuild(benchmark::State& state) {
  auto params = base_params(topology::CoreKind::kTorus2D);
  params.rack_count = static_cast<std::size_t>(state.range(0));
  auto topo = topology::build_topology(params);
  for (auto _ : state) {
    // Force a rebuild by touching the structure.
    const auto ops = topo.add_ops();
    topo.connect_tor_ops(util::TorId{0}, ops);
    benchmark::DoNotOptimize(topo.switch_graph());
  }
}
BENCHMARK(BM_SwitchGraphRebuild)->Arg(16)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_ValidateTopology(benchmark::State& state) {
  auto params = base_params(topology::CoreKind::kRing);
  params.rack_count = static_cast<std::size_t>(state.range(0));
  const auto topo = topology::build_topology(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::validate(topo));
  }
}
BENCHMARK(BM_ValidateTopology)->Arg(16)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  print_core_energy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
