// Telemetry hook overhead: the cost of the ALVC_COUNT / ALVC_OBSERVE /
// ALVC_SPAN macros on hot control-plane paths.
//
// Three angles:
//  * Micro: raw cost of one counter add / histogram record / scoped span,
//    single-threaded and with contending writer threads (the sharded
//    design should keep contention near-zero).
//  * Macro: a full AL batch build — the same workload as
//    bench_parallel_al_build's partitioned case — with the global tracer
//    disabled vs logical. The acceptance bar for the subsystem is <2%
//    added wall time with hooks compiled in; compare an -DALVC_TELEMETRY=OFF
//    build of this bench against ON to see the compiled-out floor (the two
//    should be indistinguishable with the tracer disabled).
//
// Run:   ./bench_telemetry_overhead
// Repro: see EXPERIMENTS.md "TEL1".
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "cluster/cluster_manager.h"
#include "telemetry/metric_registry.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"
#include "topology/topology.h"
#include "util/executor.h"

namespace {

using alvc::cluster::ClusterManager;
using alvc::cluster::VertexCoverAlBuilder;
using alvc::telemetry::ClockMode;
using alvc::telemetry::Histogram;
using alvc::telemetry::MetricRegistry;
using alvc::telemetry::ScopedSpan;
using alvc::telemetry::Tracer;
using alvc::topology::DataCenterTopology;
using alvc::topology::Resources;
using alvc::util::Executor;
using alvc::util::OpsId;
using alvc::util::ServiceId;
using alvc::util::TorId;

void BM_CounterAdd(benchmark::State& state) {
  MetricRegistry reg;
  auto& counter = reg.counter("bench.counter");
  for (auto _ : state) {
    counter.add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_CounterAddContended(benchmark::State& state) {
  static MetricRegistry reg;
  auto& counter = reg.counter("bench.contended");
  for (auto _ : state) {
    counter.add();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAddContended)->Threads(2)->Threads(4)->UseRealTime();

void BM_HistogramRecord(benchmark::State& state) {
  MetricRegistry reg;
  auto& hist = reg.histogram("bench.hist", 0.0, 64.0, 32);
  double sample = 0.0;
  for (auto _ : state) {
    hist.record(sample);
    sample = sample < 64.0 ? sample + 0.5 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HookMacroDisabledTracer(benchmark::State& state) {
  // The common production shape: hooks compiled in, tracer disabled —
  // counters still count, spans cost one relaxed load and bail.
  Tracer::global().set_mode(ClockMode::kDisabled);
  for (auto _ : state) {
    ALVC_COUNT("bench.hook.count");
    ALVC_SPAN(span, "bench.hook.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HookMacroDisabledTracer);

void BM_ScopedSpanLogical(benchmark::State& state) {
  Tracer tracer;
  tracer.set_mode(ClockMode::kLogical);
  tracer.set_logical_time_s(1.0);
  for (auto _ : state) {
    ScopedSpan span(tracer, "bench.span");
    benchmark::ClobberMemory();
    if (tracer.span_count() > 1u << 20) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScopedSpanLogical);

/// Partitioned multi-group DC (same shape as bench_parallel_al_build).
DataCenterTopology make_partitioned(std::size_t groups) {
  DataCenterTopology topo;
  const Resources server_capacity{.cpu_cores = 32, .memory_gb = 128, .storage_gb = 1024};
  constexpr std::size_t kRacks = 4;
  constexpr std::size_t kServers = 4;
  for (std::size_t g = 0; g < groups; ++g) {
    std::vector<OpsId> block;
    for (std::size_t o = 0; o < kRacks + 4; ++o) {
      block.push_back(topo.add_ops(/*optoelectronic=*/o % 2 == 0));
    }
    for (std::size_t i = 0; i < block.size(); ++i) {
      topo.connect_ops_ops(block[i], block[(i + 1) % block.size()]);
    }
    for (std::size_t r = 0; r < kRacks; ++r) {
      const TorId tor = topo.add_tor();
      for (std::size_t u = 0; u < 4; ++u) {
        topo.connect_tor_ops(tor, block[(r + u) % block.size()]);
      }
      for (std::size_t s = 0; s < kServers; ++s) {
        const auto server = topo.add_server(tor, server_capacity);
        topo.add_vm(server, ServiceId{static_cast<ServiceId::value_type>(g)});
      }
    }
  }
  return topo;
}

void BM_AlBatchBuild(benchmark::State& state, ClockMode mode) {
  const std::size_t groups = static_cast<std::size_t>(state.range(0));
  DataCenterTopology topo = make_partitioned(groups);
  const VertexCoverAlBuilder builder;
  Executor executor;
  Tracer::global().set_mode(mode);
  for (auto _ : state) {
    ClusterManager manager(topo);
    auto ids = manager.build_all_clusters(builder, &executor);
    benchmark::DoNotOptimize(ids.has_value());
    state.PauseTiming();
    Tracer::global().clear();          // don't let the trace buffer grow run-over-run
    MetricRegistry::global().reset();  // nor the counters
    state.ResumeTiming();
  }
  Tracer::global().set_mode(ClockMode::kDisabled);
  state.SetItemsProcessed(state.iterations() * groups);
}

void BM_AlBatchBuild_TracerDisabled(benchmark::State& state) {
  BM_AlBatchBuild(state, ClockMode::kDisabled);
}
BENCHMARK(BM_AlBatchBuild_TracerDisabled)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_AlBatchBuild_TracerLogical(benchmark::State& state) {
  BM_AlBatchBuild(state, ClockMode::kLogical);
}
BENCHMARK(BM_AlBatchBuild_TracerLogical)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
