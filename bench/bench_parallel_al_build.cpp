// Serial vs parallel AL construction (batch build & re-optimisation).
//
// The paper's per-group AL construction (§III-C) is independent work, so
// ClusterManager::build_all_clusters fans it out to a util::Executor.
// These benches measure the whole batch — speculative builds plus the
// deterministic commit pass — against the serial baseline, on two
// topology shapes:
//
//  * Partitioned: each service group owns its racks and a private OPS
//    block, so speculative read sets never overlap and every group
//    commits its parallel result (`spec_commits == groups`). This is the
//    embarrassingly-parallel headline case; on a 4+-core host the
//    parallel path should clear 2x for 8+ groups.
//  * Contended (random wiring, Zipf-mixed services): groups share ToRs,
//    speculative ALs collide, and most groups fall back to the serial
//    rebuild (`serial_rebuilds` dominates) — the speedup floor.
//
// Parallel benches use real time: google-benchmark's default CPU pacing
// only sees the main thread, which mostly blocks in wait_all.
//
// Run:   ./bench_parallel_al_build
// Repro: see EXPERIMENTS.md "PAR1".
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "cluster/cluster_manager.h"
#include "topology/builder.h"
#include "util/executor.h"

namespace {

using alvc::cluster::BatchBuildStats;
using alvc::cluster::ClusterManager;
using alvc::cluster::ResilientAlBuilder;
using alvc::cluster::VertexCoverAlBuilder;
using alvc::topology::CoreKind;
using alvc::topology::DataCenterTopology;
using alvc::topology::Resources;
using alvc::topology::TopologyParams;
using alvc::util::Executor;
using alvc::util::OpsId;
using alvc::util::ServiceId;
using alvc::util::TorId;

constexpr std::size_t kRacksPerGroup = 6;
constexpr std::size_t kServersPerRack = 6;
constexpr std::size_t kVmsPerServer = 6;
constexpr std::size_t kUplinksPerTor = 4;

/// Rack-partitioned DC: group g's VMs all live on its own racks, wired to
/// a private ring-connected OPS block. Builds are trivially feasible and
/// the groups' ownership read sets are disjoint, so every speculative
/// build commits.
DataCenterTopology make_partitioned(std::size_t groups) {
  DataCenterTopology topo;
  const Resources server_capacity{.cpu_cores = 32, .memory_gb = 128, .storage_gb = 1024};
  for (std::size_t g = 0; g < groups; ++g) {
    // A private OPS block: one per rack plus slack for the resilience pass.
    std::vector<OpsId> block;
    for (std::size_t o = 0; o < kRacksPerGroup + 4; ++o) {
      block.push_back(topo.add_ops(/*optoelectronic=*/o % 2 == 0));
    }
    for (std::size_t i = 0; i < block.size(); ++i) {
      topo.connect_ops_ops(block[i], block[(i + 1) % block.size()]);
    }
    for (std::size_t r = 0; r < kRacksPerGroup; ++r) {
      const TorId tor = topo.add_tor();
      for (std::size_t u = 0; u < kUplinksPerTor; ++u) {
        topo.connect_tor_ops(tor, block[(r + u) % block.size()]);
      }
      for (std::size_t s = 0; s < kServersPerRack; ++s) {
        const auto server = topo.add_server(tor, server_capacity);
        for (std::size_t v = 0; v < kVmsPerServer; ++v) {
          topo.add_vm(server, ServiceId{static_cast<ServiceId::value_type>(g)});
        }
      }
    }
  }
  return topo;
}

/// Random wiring, Zipf-mixed services: every group touches most racks, so
/// speculative builds read overlapping ownership cells and the commit
/// pass rebuilds most groups serially. Feasible for 8 groups.
TopologyParams contended_params(std::size_t groups) {
  TopologyParams params;
  params.rack_count = 48;
  params.servers_per_rack = kServersPerRack;
  params.vms_per_server = kVmsPerServer;
  params.ops_count = 16 * groups;
  params.tor_ops_degree = 2 * groups;
  params.core = CoreKind::kTorus2D;
  params.service_count = groups;
  params.service_skew = 0.3;
  params.optoelectronic_fraction = 0.5;
  params.seed = 99;
  return params;
}

void report_groups(benchmark::State& state, const BatchBuildStats& stats, std::size_t runs) {
  if (runs == 0) return;
  state.counters["groups"] = static_cast<double>(stats.groups) / static_cast<double>(runs);
  state.counters["spec_commits"] =
      static_cast<double>(stats.parallel_commits) / static_cast<double>(runs);
  state.counters["serial_rebuilds"] =
      static_cast<double>(stats.serial_rebuilds) / static_cast<double>(runs);
}

DataCenterTopology make_topo(std::size_t groups, bool contended) {
  return contended ? alvc::topology::build_topology(contended_params(groups))
                   : make_partitioned(groups);
}

void BM_SerialBuildAllClusters(benchmark::State& state) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  DataCenterTopology topo = make_topo(groups, state.range(1) != 0);
  const ResilientAlBuilder builder;  // heaviest realistic per-group work
  BatchBuildStats stats;
  std::size_t runs = 0;
  for (auto _ : state) {
    ClusterManager manager(topo);
    auto ids = manager.build_all_clusters(builder, /*executor=*/nullptr, &stats);
    ++runs;
    if (!ids) {
      state.SkipWithError(ids.error().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(ids);
  }
  report_groups(state, stats, runs);
}

void BM_ParallelBuildAllClusters(benchmark::State& state) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  DataCenterTopology topo = make_topo(groups, state.range(1) != 0);
  const ResilientAlBuilder builder;
  Executor exec(0);  // all hardware threads
  BatchBuildStats stats;
  std::size_t runs = 0;
  for (auto _ : state) {
    ClusterManager manager(topo);
    auto ids = manager.build_all_clusters(builder, &exec, &stats);
    ++runs;
    if (!ids) {
      state.SkipWithError(ids.error().to_string().c_str());
      return;
    }
    benchmark::DoNotOptimize(ids);
  }
  report_groups(state, stats, runs);
  state.counters["threads"] = static_cast<double>(exec.thread_count());
}

void BM_SerialReoptimize(benchmark::State& state) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  DataCenterTopology topo = make_partitioned(groups);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder seed_builder;
  auto ids = manager.create_clusters_by_service(seed_builder);
  if (!ids) {
    state.SkipWithError(ids.error().to_string().c_str());
    return;
  }
  const ResilientAlBuilder builder;
  for (auto _ : state) {
    auto costs = manager.reoptimize_clusters(*ids, builder, /*executor=*/nullptr);
    benchmark::DoNotOptimize(costs);
  }
}

void BM_ParallelReoptimize(benchmark::State& state) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  DataCenterTopology topo = make_partitioned(groups);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder seed_builder;
  auto ids = manager.create_clusters_by_service(seed_builder);
  if (!ids) {
    state.SkipWithError(ids.error().to_string().c_str());
    return;
  }
  const ResilientAlBuilder builder;
  Executor exec(0);
  for (auto _ : state) {
    auto costs = manager.reoptimize_clusters(*ids, builder, &exec);
    benchmark::DoNotOptimize(costs);
  }
}

// {groups, contended}: partitioned fans out cleanly (speedup headline);
// contended shows the serial-rebuild floor.
BENCHMARK(BM_SerialBuildAllClusters)
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelBuildAllClusters)
    ->Args({8, 0})
    ->Args({16, 0})
    ->Args({8, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SerialReoptimize)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelReoptimize)->Arg(8)->Arg(16)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
