// ABL3 — Resilience under OPS failures (extension; the paper's architecture
// motivates it: ALs are the unit of both isolation and repair).
//
// Experiment: sweep the number of injected OPS failures on a loaded DC
// (clusters + one chain per service); report AL repair success, chains
// repaired vs lost, VNFs relocated, and repair cost. The architectural
// expectation: failures are absorbed locally (repair touches one AL) until
// the spare-uplink pool runs dry, and isolation never breaks.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"

namespace {

using namespace alvc;
using nfv::VnfType;

core::DataCenter make_loaded_dc(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 10;
  config.topology.ops_count = 40;
  config.topology.tor_ops_degree = 10;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kTorus2D;
  config.topology.seed = seed;
  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    throw std::runtime_error(built.error().to_string());
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat),
                      *dc.catalog().find_by_type(VnfType::kDeepPacketInspection)};
    (void)dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
  }
  return dc;
}

void print_experiment() {
  std::cout << "=== ABL3: resilience — cascaded OPS failures on a loaded DC ===\n\n";
  core::TextTable table({"failures injected", "chains alive", "repaired", "lost",
                         "VNFs relocated", "degraded clusters", "isolation violations",
                         "invariants"});
  for (const std::size_t failures : {1u, 3u, 6u, 10u, 16u, 24u}) {
    auto dc = make_loaded_dc(101);
    util::Rng rng(failures * 13 + 1);
    std::size_t injected = 0;
    for (std::size_t i = 0; injected < failures && i < dc.topology().ops_count(); ++i) {
      // Fail a random still-usable OPS, preferring owned ones so the repair
      // path is actually exercised.
      util::OpsId victim = util::OpsId::invalid();
      for (int tries = 0; tries < 50; ++tries) {
        const util::OpsId candidate{
            static_cast<util::OpsId::value_type>(rng.uniform_index(dc.topology().ops_count()))};
        if (!dc.topology().ops_usable(candidate)) continue;
        victim = candidate;
        if (!dc.clusters().ownership().is_free(candidate)) break;  // prefer owned
      }
      if (!victim.valid()) break;
      (void)dc.orchestrator().handle_ops_failure(victim);
      ++injected;
    }
    const auto violations = dc.clusters().check_invariants();
    std::size_t degraded = 0;
    for (const auto* vc : dc.clusters().clusters()) degraded += vc->degraded ? 1 : 0;
    table.add_row_values(injected, dc.orchestrator().chain_count(),
                         dc.orchestrator().stats().chains_repaired,
                         dc.orchestrator().stats().chains_lost,
                         dc.orchestrator().stats().vnfs_relocated, degraded,
                         dc.orchestrator().check_isolation().size(),
                         violations.empty() ? "OK" : violations.front());
  }
  table.print();
  std::cout << "\nExpected shape: chains survive early failures via local AL repair and VNF\n"
               "relocation; as failures accumulate the spare pool dries up and chains are\n"
               "torn down cleanly. Isolation and invariants hold at every point.\n\n";
}

void print_exposure() {
  std::cout << "=== ABL3(b): single-point-of-failure exposure per AL ===\n"
            << "(critical OPSs = articulation points of the cluster subgraph)\n\n";
  core::TextTable table({"cluster", "AL size", "critical OPSs", "exposed fraction"});
  auto dc = make_loaded_dc(101);
  for (const auto* vc : dc.clusters().clusters()) {
    const auto critical = cluster::critical_ops(dc.topology(), vc->layer);
    const double fraction = vc->layer.opss.empty()
                                ? 0.0
                                : static_cast<double>(critical.size()) /
                                      static_cast<double>(vc->layer.opss.size());
    table.add_row_values(vc->id.value(), vc->layer.opss.size(), critical.size(),
                         core::fmt(fraction, 2));
  }
  table.print();

  // The hardening ablation: paper's minimal builder vs ResilientAlBuilder.
  std::cout << "\n--- hardening ablation: minimal vs resilient AL construction ---\n\n";
  core::TextTable ablation({"builder", "mean AL size", "mean critical OPSs",
                            "mean exposed fraction"});
  for (const bool resilient : {false, true}) {
    topology::TopologyParams params;
    params.rack_count = 10;
    params.ops_count = 40;
    params.tor_ops_degree = 10;
    params.service_count = 3;
    params.optoelectronic_fraction = 0.5;
    params.core = topology::CoreKind::kTorus2D;
    params.seed = 101;
    auto topo = topology::build_topology(params);
    cluster::ClusterManager manager(topo);
    std::unique_ptr<cluster::AlBuilder> builder;
    if (resilient) {
      builder = std::make_unique<cluster::ResilientAlBuilder>();
    } else {
      builder = std::make_unique<cluster::VertexCoverAlBuilder>();
    }
    const auto ids = manager.create_clusters_by_service(*builder);
    if (!ids) {
      ablation.add_row_values(builder->name(), "failed", "-", "-");
      continue;
    }
    double size_sum = 0;
    double critical_sum = 0;
    double exposed_sum = 0;
    for (const auto* vc : manager.clusters()) {
      const auto critical = cluster::critical_ops(topo, vc->layer);
      size_sum += static_cast<double>(vc->layer.opss.size());
      critical_sum += static_cast<double>(critical.size());
      if (!vc->layer.opss.empty()) {
        exposed_sum +=
            static_cast<double>(critical.size()) / static_cast<double>(vc->layer.opss.size());
      }
    }
    const double n = static_cast<double>(manager.cluster_count());
    ablation.add_row_values(builder->name(), core::fmt(size_sum / n, 1),
                            core::fmt(critical_sum / n, 1), core::fmt(exposed_sum / n, 2));
  }
  ablation.print();
  std::cout << "\nAn AL with zero critical OPSs survives any single switch failure without\n"
               "repair; exposed ALs rely on the (measured above) repair path. The resilient\n"
               "builder buys that protection with a larger AL — the minimality/survivability\n"
               "trade-off inherent in the paper's 'minimum set of switches' objective.\n\n";
}

void BM_HandleOpsFailure(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto dc = make_loaded_dc(7);
    // Pick an owned OPS so the repair path runs.
    util::OpsId victim = util::OpsId::invalid();
    for (std::size_t i = 0; i < dc.topology().ops_count(); ++i) {
      const util::OpsId o{static_cast<util::OpsId::value_type>(i)};
      if (!dc.clusters().ownership().is_free(o)) {
        victim = o;
        break;
      }
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(dc.orchestrator().handle_ops_failure(victim));
  }
}
BENCHMARK(BM_HandleOpsFailure)->Unit(benchmark::kMicrosecond);

void BM_ReoptimizeCluster(benchmark::State& state) {
  auto dc = make_loaded_dc(7);
  const auto clusters = dc.clusters().clusters();
  const cluster::VertexCoverAlBuilder builder;
  for (auto _ : state) {
    for (const auto* vc : clusters) {
      benchmark::DoNotOptimize(dc.clusters().reoptimize_cluster(vc->id, builder));
    }
  }
}
BENCHMARK(BM_ReoptimizeCluster)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  print_exposure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
