// Elastic scaling and live migration: incremental AL re-optimisation vs
// the scale-by-reprovision baseline.
//
// Experiment: the elastic soak scenario — demand waves (diurnal + flash
// crowds + churn) over a fault-injected fabric, the ElasticController
// ticking on the chaos queue — executed once per migration mode. The
// UpdateCostLedger measures what each relief action cost the control
// plane: incremental live migration touches the abstraction layer twice
// (terminate + deploy), while tearing the chain down and re-admitting it
// costs 2k + 2 AL updates for a k-function chain, so the per-action ratio
// must come out >= 3x for the firewall+nat chains used here. Benchmarks:
// a single controller tick on a loaded control plane, and the full elastic
// soak per mode (events per second the control plane absorbs).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/alvc.h"
#include "elastic/controller.h"
#include "faults/chaos.h"
#include "faults/fault_injector.h"

namespace {

using namespace alvc;
using elastic::ActionKind;
using elastic::ExecutionMode;
using nfv::PriorityClass;
using nfv::VnfType;
using orchestrator::AllocationPolicy;

nfv::NfcSpec make_spec(const core::DataCenter& dc, std::uint32_t service, double gbps,
                       PriorityClass cls) {
  nfv::NfcSpec spec;
  spec.service = util::ServiceId{service};
  spec.name = "load-" + std::to_string(service);
  spec.bandwidth_gbps = gbps;
  spec.priority = cls;
  spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                    *dc.catalog().find_by_type(VnfType::kNat)};
  return spec;
}

core::DataCenter make_elastic_dc(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    throw std::runtime_error(built.error().to_string());
  }
  dc.orchestrator().set_allocation_policy(AllocationPolicy::kPriorityDowngrade);
  (void)dc.provision_chain(make_spec(dc, 0, 4.0, PriorityClass::kHipri),
                           core::PlacementAlgorithm::kGreedyOptical);
  return dc;
}

elastic::ElasticParams make_elastic_params(std::uint64_t seed, ExecutionMode mode) {
  elastic::ElasticParams params;
  params.demand.seed = seed * 5 + 2;
  params.demand.horizon_s = 40.0;
  params.scaling.cooldown_s = 1.0;
  params.scaling.max_scale = 2.0;  // a firewall+nat pair fits a 4-core OE router at 2x
  params.migration.hot_utilization = 0.6;
  params.migration.cooldown_s = 2.0;
  params.mode = mode;
  return params;
}

faults::ChaosParams make_chaos_params(const core::DataCenter& dc, std::uint64_t seed,
                                      elastic::ElasticController& controller) {
  faults::ChaosParams params;
  params.schedule.ops = {.mtbf_s = 90, .mttr_s = 5};
  params.schedule.tor = {.mtbf_s = 140, .mttr_s = 4};
  params.schedule.server = {.mtbf_s = 120, .mttr_s = 4};
  params.schedule.link = {.mtbf_s = 100, .mttr_s = 4};
  params.schedule.horizon_s = 40;
  params.schedule.seed = seed;
  params.flow_rate_per_s = 20;
  params.traffic_seed = seed * 3 + 1;
  params.tick_period_s = 0.5;
  params.on_tick = [&controller](double now_s) { controller.tick(now_s); };
  const auto* vc0 = dc.clusters().clusters().front();
  if (!vc0->layer.opss.empty()) {
    params.scripted = faults::FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
  }

  const std::vector<nfv::NfcSpec> crowd{
      make_spec(dc, 0, 4.0, PriorityClass::kHipri),
      make_spec(dc, 1, 4.0, PriorityClass::kLopri),
      make_spec(dc, 2, 4.0, PriorityClass::kHipri),
  };
  const std::vector<nfv::NfcSpec> heavy{
      make_spec(dc, 1, 4.0, PriorityClass::kHipri),
      make_spec(dc, 2, 2.0, PriorityClass::kLopri),
  };
  auto load = faults::OverloadInjector::flash_crowd(crowd, 13.0, 0.3, 10.0, /*first_key=*/1000);
  const auto ramp = faults::OverloadInjector::diurnal_ramp(heavy, 20.0, 40.0, /*first_key=*/2000);
  const auto churn = faults::OverloadInjector::lopri_churn(crowd, 0.4, 5.0, 40.0, seed * 11 + 3,
                                                           /*first_key=*/3000);
  load.insert(load.end(), ramp.begin(), ramp.end());
  load.insert(load.end(), churn.begin(), churn.end());
  params.load = std::move(load);
  return params;
}

void print_experiment() {
  std::cout << "=== Elastic chains: incremental AL re-optimisation vs reprovision ===\n\n";
  core::TextTable table({"mode", "scale-outs", "scale-ins", "moves", "AL updates/move",
                         "flow rules/move", "latency s/move", "SLO viol rate", "audit"});
  double per_move[2] = {0, 0};
  int row = 0;
  for (const ExecutionMode mode : {ExecutionMode::kIncremental, ExecutionMode::kReprovision}) {
    std::size_t scale_outs = 0, scale_ins = 0, moves = 0, violations = 0;
    std::size_t al_updates = 0, flow_rules = 0;
    double latency = 0, slo_num = 0, slo_den = 0;
    for (const std::uint64_t seed : {3u, 9u, 17u}) {
      auto dc = make_elastic_dc(seed);
      const orchestrator::GreedyOpticalPlacement placement;
      elastic::ElasticController controller(dc.orchestrator(), placement,
                                            make_elastic_params(seed, mode));
      faults::ChaosRunner runner(dc.orchestrator(), make_chaos_params(dc, seed, controller));
      const auto report = runner.run();
      violations += report.audit_violations + report.handler_errors + report.chains_unaccounted;
      scale_outs += controller.scaling().stats().scale_outs;
      scale_ins += controller.scaling().stats().scale_ins;
      const ActionKind kind =
          mode == ExecutionMode::kIncremental ? ActionKind::kMigration : ActionKind::kReprovision;
      const auto& totals = controller.ledger().totals(kind);
      moves += totals.actions;
      al_updates += totals.al_updates;
      flow_rules += totals.flow_rule_churn;
      latency += totals.latency_s;
      slo_num += static_cast<double>(controller.stats().slo_violations);
      slo_den += static_cast<double>(controller.stats().chain_observations);
    }
    const double updates_per_move =
        moves == 0 ? 0.0 : static_cast<double>(al_updates) / static_cast<double>(moves);
    per_move[row++] = updates_per_move;
    table.add_row_values(to_string(mode), scale_outs, scale_ins, moves, updates_per_move,
                         moves == 0 ? 0.0 : static_cast<double>(flow_rules) / moves,
                         moves == 0 ? 0.0 : latency / static_cast<double>(moves),
                         slo_den == 0 ? 0.0 : slo_num / slo_den,
                         violations == 0 ? "OK" : "VIOLATED");
  }
  table.print();
  std::cout << "\nExpected shape: incremental relief costs 2 AL updates per move (terminate\n"
               "+ deploy inside the live slice); the reprovision baseline pays 2k + 2 for\n"
               "the k=2 chains here — a "
            << (per_move[0] > 0 ? per_move[1] / per_move[0] : 0.0)
            << "x ratio (>= 3x required). Both rows must read OK.\n\n";
}

void BM_ElasticTick(benchmark::State& state) {
  auto dc = make_elastic_dc(7);
  (void)dc.provision_chain(make_spec(dc, 1, 4.0, PriorityClass::kLopri),
                           core::PlacementAlgorithm::kGreedyOptical);
  (void)dc.provision_chain(make_spec(dc, 2, 2.0, PriorityClass::kHipri),
                           core::PlacementAlgorithm::kGreedyOptical);
  const orchestrator::GreedyOpticalPlacement placement;
  elastic::ElasticController controller(dc.orchestrator(), placement,
                                        make_elastic_params(7, ExecutionMode::kIncremental));
  double now_s = 0;
  for (auto _ : state) {
    controller.tick(now_s);
    now_s += 0.5;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ElasticTick)->Unit(benchmark::kMicrosecond);

void BM_ElasticSoak(benchmark::State& state) {
  const auto mode = static_cast<ExecutionMode>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto dc = make_elastic_dc(7);
    const orchestrator::GreedyOpticalPlacement placement;
    elastic::ElasticController controller(dc.orchestrator(), placement,
                                          make_elastic_params(7, mode));
    auto params = make_chaos_params(dc, 7, controller);
    params.audit_every_event = false;  // measure the control plane, not the audit
    state.ResumeTiming();
    faults::ChaosRunner runner(dc.orchestrator(), std::move(params));
    const auto report = runner.run();
    events += report.fault_events + report.load_events + report.controller_ticks;
    if (!report.clean()) state.SkipWithError("elastic soak not clean");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(std::string(to_string(mode)));
}
BENCHMARK(BM_ElasticSoak)
    ->Arg(static_cast<int>(ExecutionMode::kIncremental))
    ->Arg(static_cast<int>(ExecutionMode::kReprovision))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
