// FIG4 — Abstraction-layer construction (paper Fig. 4, §III-C): the
// vertex-cover + max-weight algorithm versus the random baseline (the
// authors' earlier approach, ref [15]), a direct greedy set cover, and the
// exact optimum.
//
// Outputs:
//   1. the paper's worked Fig. 4 instance, step by step;
//   2. AL size (number of OPSs) per builder across DC scale and
//      multi-homing sweeps — the paper's "minimum set of switches" claim;
//   3. google-benchmark timings per builder.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "core/alvc.h"

namespace {

using namespace alvc;

/// The exact Fig. 4 instance (mirrors the golden unit test).
struct Fig4Instance {
  topology::DataCenterTopology topo;
  std::vector<util::VmId> group;

  Fig4Instance() {
    using util::OpsId;
    using util::TorId;
    for (int i = 0; i < 4; ++i) topo.add_ops();
    topo.connect_ops_ops(OpsId{1}, OpsId{2});
    for (int i = 0; i < 4; ++i) topo.add_tor();
    topo.connect_tor_ops(TorId{0}, OpsId{0});
    topo.connect_tor_ops(TorId{0}, OpsId{1});
    topo.connect_tor_ops(TorId{1}, OpsId{1});
    topo.connect_tor_ops(TorId{1}, OpsId{2});
    topo.connect_tor_ops(TorId{2}, OpsId{2});
    topo.connect_tor_ops(TorId{2}, OpsId{3});
    topo.connect_tor_ops(TorId{3}, OpsId{3});
    const auto s0 = topo.add_server(TorId{0}, {});
    const auto s1 = topo.add_server(TorId{0}, {});
    topo.add_server_homing(s1, TorId{1});
    const auto s2 = topo.add_server(TorId{2}, {});
    const auto s3 = topo.add_server(TorId{2}, {});
    topo.add_server_homing(s3, TorId{3});
    group.push_back(topo.add_vm(s0, util::ServiceId{0}));
    group.push_back(topo.add_vm(s1, util::ServiceId{0}));
    group.push_back(topo.add_vm(s1, util::ServiceId{0}));
    group.push_back(topo.add_vm(s0, util::ServiceId{0}));
    group.push_back(topo.add_vm(s2, util::ServiceId{0}));
    group.push_back(topo.add_vm(s3, util::ServiceId{0}));
  }
};

void print_paper_instance() {
  std::cout << "=== FIG4(a): the paper's worked example ===\n"
            << "6 VMs, 4 ToRs (ToR2's machines multi-homed under ToR1, 'ToR N' sees one VM),\n"
            << "4 OPSs. Paper's walk-through: select ToR 1 (covers 4 VMs), skip ToR 2 (already\n"
            << "covered), select ToR 3; then pick the OPSs for the selected ToRs.\n\n";
  Fig4Instance fig;
  core::TextTable table({"builder", "selected ToRs", "AL (OPS ids)", "AL size", "connected"});
  for (const auto algorithm :
       {core::AlAlgorithm::kVertexCover, core::AlAlgorithm::kRandom,
        core::AlAlgorithm::kGreedySetCover, core::AlAlgorithm::kExact}) {
    const auto builder = core::DataCenter::make_al_builder(algorithm, 3,
                                                           /*ensure_connectivity=*/false);
    cluster::OpsOwnership ownership(fig.topo.ops_count());
    const auto result = builder->build(fig.topo, fig.group, ownership);
    if (!result) {
      table.add_row_values(builder->name(), "-", result.error().to_string(), "-", "-");
      continue;
    }
    std::string tors;
    for (auto t : result->layer.tors) {
      if (!tors.empty()) tors += ",";
      tors += std::to_string(t.value() + 1);  // paper numbers ToRs from 1
    }
    std::string opss;
    for (auto o : result->layer.opss) {
      if (!opss.empty()) opss += ",";
      opss += std::to_string(o.value());
    }
    table.add_row_values(builder->name(), tors, opss, result->layer.opss.size(),
                         result->connected ? "yes" : "no");
  }
  table.print();
  std::cout << "\nPaper expectation: vertex-cover selects ToRs {1,3} and a 2-OPS AL; the\n"
               "random baseline keeps all group ToRs and typically needs more OPSs.\n\n";
}

void print_sweep() {
  std::cout << "=== FIG4(b): AL size sweep — builder quality across DC scale ===\n\n";
  core::TextTable table({"racks", "OPSs", "dual-homing", "vertex-cover", "random",
                         "greedy-set-cover", "exact", "vc/exact ratio"});
  for (const std::size_t racks : {6u, 12u, 24u}) {
    for (const double homing : {0.0, 0.4}) {
      topology::TopologyParams params;
      params.rack_count = racks;
      params.ops_count = racks * 2;
      params.tor_ops_degree = 4;
      params.service_count = 1;  // one big group isolates builder quality
      params.dual_homing_probability = homing;
      params.core = topology::CoreKind::kRing;
      params.seed = 31;
      const auto topo = topology::build_topology(params);
      const auto groups = cluster::group_vms_by_service(topo);

      std::vector<double> sizes;
      for (const auto algorithm :
           {core::AlAlgorithm::kVertexCover, core::AlAlgorithm::kRandom,
            core::AlAlgorithm::kGreedySetCover, core::AlAlgorithm::kExact}) {
        // Average the stochastic baseline over several seeds.
        const int repeats = algorithm == core::AlAlgorithm::kRandom ? 10 : 1;
        double total = 0;
        for (int r = 0; r < repeats; ++r) {
          const auto builder = core::DataCenter::make_al_builder(
              algorithm, 100 + static_cast<std::uint64_t>(r), /*ensure_connectivity=*/false);
          cluster::OpsOwnership ownership(topo.ops_count());
          const auto result = builder->build(topo, groups[0], ownership);
          total += result ? static_cast<double>(result->layer.opss.size()) : 0.0;
        }
        sizes.push_back(total / repeats);
      }
      table.add_row_values(racks, racks * 2, core::fmt(homing, 1), core::fmt(sizes[0], 1),
                           core::fmt(sizes[1], 1), core::fmt(sizes[2], 1),
                           core::fmt(sizes[3], 1),
                           core::fmt(sizes[3] > 0 ? sizes[0] / sizes[3] : 0.0, 2));
    }
  }
  table.print();
  std::cout << "\nExpected shape: vertex-cover <= random everywhere (the paper's improvement\n"
               "over ref [15]); the greedy stays within a small factor of the exact optimum;\n"
               "dual homing lets the ToR-minimisation stage shrink ALs further.\n\n";
}

void print_augmentation_cost() {
  std::cout << "=== FIG4(c): stage-3 connectivity augmentation cost ===\n"
            << "(extra OPSs recruited so the AL + its ToRs form a connected subgraph)\n\n";
  core::TextTable table({"racks", "core", "2-stage AL size", "augmented AL size",
                         "extra OPSs", "connected"});
  for (const std::size_t racks : {6u, 12u, 24u}) {
    for (const auto core : {topology::CoreKind::kRing, topology::CoreKind::kTorus2D,
                            topology::CoreKind::kFullMesh}) {
      topology::TopologyParams params;
      params.rack_count = racks;
      params.ops_count = racks * 2;
      params.tor_ops_degree = 4;
      params.service_count = 1;
      params.core = core;
      params.seed = 31;
      const auto topo = topology::build_topology(params);
      const auto groups = cluster::group_vms_by_service(topo);
      cluster::OpsOwnership bare_own(topo.ops_count());
      const cluster::VertexCoverAlBuilder bare{
          cluster::AlBuilderOptions{.ensure_connectivity = false}};
      const auto without = bare.build(topo, groups[0], bare_own);
      cluster::OpsOwnership aug_own(topo.ops_count());
      const cluster::VertexCoverAlBuilder augmented;
      const auto with = augmented.build(topo, groups[0], aug_own);
      if (!without || !with) {
        table.add_row_values(racks, topology::to_string(core), "failed", "-", "-", "-");
        continue;
      }
      table.add_row_values(racks, topology::to_string(core), without->layer.opss.size(),
                           with->layer.opss.size(), with->augmented_ops,
                           with->connected ? "yes" : "no");
    }
  }
  table.print();
  std::cout << "\nExpected shape: richer cores need fewer bridge OPSs (full-mesh: at most one\n"
               "extra hop connects anything); sparse rings pay the most. This is the price of\n"
               "the architectural requirement that an AL 'provides connectivity to all the\n"
               "machines of the group'.\n\n";
}

topology::DataCenterTopology bench_topo(std::size_t racks) {
  topology::TopologyParams params;
  params.rack_count = racks;
  params.ops_count = racks * 2;
  params.tor_ops_degree = 4;
  params.service_count = 1;
  params.dual_homing_probability = 0.3;
  params.seed = 37;
  return topology::build_topology(params);
}

template <typename Builder>
void run_builder_bench(benchmark::State& state, const Builder& builder) {
  const auto topo = bench_topo(static_cast<std::size_t>(state.range(0)));
  const auto groups = cluster::group_vms_by_service(topo);
  for (auto _ : state) {
    cluster::OpsOwnership ownership(topo.ops_count());
    benchmark::DoNotOptimize(builder.build(topo, groups[0], ownership));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(groups[0].size()));
}

void BM_VertexCoverAl(benchmark::State& state) {
  run_builder_bench(state, cluster::VertexCoverAlBuilder{});
}
BENCHMARK(BM_VertexCoverAl)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_RandomAl(benchmark::State& state) {
  run_builder_bench(state, cluster::RandomAlBuilder{1});
}
BENCHMARK(BM_RandomAl)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_GreedySetCoverAl(benchmark::State& state) {
  run_builder_bench(state, cluster::GreedySetCoverAlBuilder{});
}
BENCHMARK(BM_GreedySetCoverAl)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactAl(benchmark::State& state) {
  run_builder_bench(state, cluster::ExactAlBuilder{});
}
BENCHMARK(BM_ExactAl)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_paper_instance();
  print_sweep();
  print_augmentation_cost();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
