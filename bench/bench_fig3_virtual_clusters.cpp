// FIG3 — Virtual clusters and OPS exclusivity (paper Fig. 3, §III-C).
//
// Claim: "one OPS cannot be part of two ALs at the same time" — exclusivity
// is the resource that limits how many VCs a fixed OPS pool can carry.
//
// Experiment: with a fixed DC, sweep the number of services (= requested
// VCs) and the OPS pool size; report how many clusters the pool admits
// before exhaustion, the OPSs consumed, and the residual pool. Benchmarks
// whole-DC cluster construction.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"

namespace {

using namespace alvc;

topology::TopologyParams params_for(std::size_t services, std::size_t ops_count,
                                    std::size_t degree) {
  topology::TopologyParams params;
  params.rack_count = 10;
  params.ops_count = ops_count;
  params.tor_ops_degree = degree;
  params.service_count = services;
  params.service_skew = 0.0;  // even groups: the cleanest capacity readout
  params.core = topology::CoreKind::kRing;
  params.seed = 23;
  return params;
}

void print_experiment() {
  std::cout << "=== FIG3: virtual clusters vs OPS pool (exclusivity pressure) ===\n\n";
  core::TextTable table({"services requested", "OPS pool", "ToR degree", "clusters built",
                         "OPSs used", "OPSs free", "exhausted?"});
  for (const std::size_t services : {2u, 4u, 6u, 8u, 12u}) {
    for (const std::size_t ops : {16u, 32u, 64u}) {
      const std::size_t degree = std::min<std::size_t>(8, ops / 2);
      auto topo = topology::build_topology(params_for(services, ops, degree));
      cluster::ClusterManager manager(topo);
      const cluster::VertexCoverAlBuilder builder;
      const auto groups = cluster::group_vms_by_service(topo);
      std::size_t built = 0;
      bool exhausted = false;
      for (std::size_t s = 0; s < groups.size(); ++s) {
        if (groups[s].empty()) continue;
        const auto id = manager.create_cluster(
            util::ServiceId{static_cast<util::ServiceId::value_type>(s)}, groups[s], builder);
        if (id) {
          ++built;
        } else {
          exhausted = true;
        }
      }
      const std::size_t free = manager.ownership().free_count();
      table.add_row_values(services, ops, degree, built, ops - free, free,
                           exhausted ? "yes" : "no");
    }
  }
  table.print();
  std::cout << "\nExpected shape: cluster count saturates once per-ToR free uplinks run out —\n"
               "each additional service needs roughly one disjoint OPS per covered ToR.\n\n";
}

void BM_CreateClustersByService(benchmark::State& state) {
  const auto services = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = topology::build_topology(params_for(services, 16 * services, 8));
    cluster::ClusterManager manager(topo);
    const cluster::VertexCoverAlBuilder builder;
    state.ResumeTiming();
    benchmark::DoNotOptimize(manager.create_clusters_by_service(builder));
  }
}
BENCHMARK(BM_CreateClustersByService)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_OwnershipAcquireRelease(benchmark::State& state) {
  cluster::OpsOwnership ownership(1024);
  std::vector<util::OpsId> batch;
  for (std::uint32_t i = 0; i < 64; ++i) batch.push_back(util::OpsId{i});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ownership.acquire(batch, util::ClusterId{1}));
    ownership.release_all(util::ClusterId{1});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_OwnershipAcquireRelease)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
