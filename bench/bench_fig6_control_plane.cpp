// FIG6 — NFV functional blocks (paper Fig. 6, §IV-B): SDN controller +
// Cloud/NFV manager.
//
// Claim: the virtualization layer rests on two managers — the SDN
// controller (provisions virtual connectivity, installs paths) and the
// Cloud/NFV manager (VM/storage resources, VNF lifecycle: creation,
// scaling, termination, update).
//
// Experiment: replay a full VNF lifecycle fleet through the Cloud/NFV
// manager and a path-churn workload through the SDN controller; report
// operation counts, event-log integrity, and throughput.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"
#include "graph/shortest_path.h"

namespace {

using namespace alvc;
using nfv::VnfType;

void print_lifecycle_experiment() {
  std::cout << "=== FIG6(a): Cloud/NFV manager — VNF lifecycle fleet ===\n\n";
  core::DataCenterConfig config;
  config.topology.rack_count = 8;
  config.topology.ops_count = 32;
  config.topology.tor_ops_degree = 8;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.seed = 43;
  core::DataCenter dc(config);

  sdn::CloudNfvManager cloud(dc.catalog(), dc.topology());
  util::Rng rng(7);
  std::vector<nfv::VnfInstanceId> live;
  std::size_t deploy_attempts = 0;
  core::Stopwatch sw;
  for (int step = 0; step < 5000; ++step) {
    const double action = rng.uniform01();
    if (action < 0.45) {
      // Deploy a random VNF on a random host kind.
      const util::VnfId fn{static_cast<util::VnfId::value_type>(
          rng.uniform_index(dc.catalog().size()))};
      nfv::HostRef host;
      if (rng.bernoulli(0.4)) {
        const util::OpsId ops{static_cast<util::OpsId::value_type>(
            rng.uniform_index(dc.topology().ops_count()))};
        host = ops;
      } else {
        const util::ServerId server{static_cast<util::ServerId::value_type>(
            rng.uniform_index(dc.topology().server_count()))};
        host = server;
      }
      ++deploy_attempts;
      if (const auto id = cloud.deploy(fn, host)) live.push_back(*id);
    } else if (action < 0.65 && !live.empty()) {
      (void)cloud.scale(live[rng.uniform_index(live.size())], 1.0 + rng.uniform01());
    } else if (action < 0.8 && !live.empty()) {
      (void)cloud.update(live[rng.uniform_index(live.size())]);
    } else if (!live.empty()) {
      const std::size_t i = rng.uniform_index(live.size());
      (void)cloud.terminate(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  const double ms = sw.elapsed_ms();
  const auto& stats = cloud.stats();
  core::TextTable table({"metric", "value"});
  table.add_row_values("deploy attempts", deploy_attempts);
  table.add_row_values("deployed", stats.deployed);
  table.add_row_values("rejected (capacity/domain)", stats.rejected);
  table.add_row_values("scaled", stats.scaled);
  table.add_row_values("updated", stats.updated);
  table.add_row_values("terminated", stats.terminated);
  table.add_row_values("still active", cloud.lifecycle().active_count());
  table.add_row_values("lifecycle events logged", cloud.lifecycle().events().size());
  table.add_row_values("pool consistent", cloud.pool().is_consistent() ? "yes" : "no");
  table.add_row_values("wall time (ms)", core::fmt(ms, 1));
  table.print();

  // Event-log integrity: sequence strictly increasing, transitions legal.
  bool log_ok = true;
  for (std::size_t i = 1; i < cloud.lifecycle().events().size(); ++i) {
    if (cloud.lifecycle().events()[i].sequence <= cloud.lifecycle().events()[i - 1].sequence) {
      log_ok = false;
    }
  }
  for (const auto& event : cloud.lifecycle().events()) {
    if (!nfv::transition_allowed(event.from, event.to)) log_ok = false;
  }
  std::cout << "\nEvent log integrity (ordering + legality): " << (log_ok ? "OK" : "BROKEN")
            << "\n\n";
}

void print_controller_experiment() {
  std::cout << "=== FIG6(b): SDN controller — path churn ===\n\n";
  core::DataCenterConfig config;
  config.topology.rack_count = 12;
  config.topology.ops_count = 48;
  config.topology.tor_ops_degree = 8;
  config.topology.core = topology::CoreKind::kTorus2D;
  config.topology.seed = 47;
  core::DataCenter dc(config);
  sdn::SdnController controller(dc.topology());

  const auto& g = dc.topology().switch_graph();
  util::Rng rng(3);
  core::Stopwatch sw;
  std::size_t installed_paths = 0;
  for (std::uint32_t chain = 0; chain < 2000; ++chain) {
    const std::size_t src =
        dc.topology().tor_vertex(util::TorId{static_cast<util::TorId::value_type>(
            rng.uniform_index(dc.topology().tor_count()))});
    const std::size_t dst =
        dc.topology().tor_vertex(util::TorId{static_cast<util::TorId::value_type>(
            rng.uniform_index(dc.topology().tor_count()))});
    if (src == dst) continue;
    const auto tree = graph::bfs(g, src);
    const auto path = graph::extract_path(tree, dst);
    if (!path) continue;
    if (controller.install_path(util::NfcId{chain}, *path).is_ok()) ++installed_paths;
    if (chain % 3 == 0) controller.remove_chain(util::NfcId{chain});
  }
  const double ms = sw.elapsed_ms();
  core::TextTable table({"metric", "value"});
  table.add_row_values("paths installed", installed_paths);
  table.add_row_values("rules installed", controller.stats().rules_installed);
  table.add_row_values("rules removed", controller.stats().rules_removed);
  table.add_row_values("rules resident", controller.tables().total_rules());
  table.add_row_values("wall time (ms)", core::fmt(ms, 1));
  table.add_row_values("ops/sec", core::fmt(
      (controller.stats().rules_installed + controller.stats().rules_removed) / (ms / 1000.0), 0));
  table.print();
  std::cout << '\n';
}

void BM_DeployTerminate(benchmark::State& state) {
  core::DataCenterConfig config;
  config.topology.seed = 1;
  core::DataCenter dc(config);
  sdn::CloudNfvManager cloud(dc.catalog(), dc.topology());
  const auto fn = *dc.catalog().find_by_type(VnfType::kFirewall);
  const nfv::HostRef host{util::ServerId{0}};
  for (auto _ : state) {
    const auto id = cloud.deploy(fn, host);
    if (id) (void)cloud.terminate(*id);
  }
}
BENCHMARK(BM_DeployTerminate)->Unit(benchmark::kMicrosecond);

void BM_FlowRuleInstall(benchmark::State& state) {
  sdn::FlowTable table;
  std::uint32_t i = 0;
  for (auto _ : state) {
    table.install(util::NfcId{i % 4096}, i);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowRuleInstall);

void BM_LifecycleTransition(benchmark::State& state) {
  nfv::VnfLifecycleManager lifecycle;
  const auto id = lifecycle.create(util::VnfId{0}, nfv::HostRef{util::ServerId{0}});
  (void)lifecycle.activate(id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lifecycle.scale(id, 2.0));
    benchmark::DoNotOptimize(lifecycle.scale(id, 1.0));
  }
}
BENCHMARK(BM_LifecycleTransition);

}  // namespace

int main(int argc, char** argv) {
  print_lifecycle_experiment();
  print_controller_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
