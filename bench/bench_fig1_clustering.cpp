// FIG1 — Service-based clustering (paper Fig. 1, §III-A).
//
// Claim: "two machines providing similar service have high data correlation
// … machines offering identical services are likely to interact with each
// other more often", which is why clustering the DC by service pays off.
//
// Experiment: sweep the workload's service-locality parameter and report
// the fraction of traffic that stays inside one virtual cluster, plus the
// hop/latency gap between intra- and inter-cluster flows. Also benchmarks
// the clustering step itself.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"

namespace {

using namespace alvc;

core::DataCenterConfig fig1_config() {
  core::DataCenterConfig config;
  config.topology.rack_count = 12;
  config.topology.ops_count = 48;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 4;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = 7;
  return config;
}

void print_experiment() {
  std::cout << "=== FIG1: service-based clustering — intra-cluster traffic fraction ===\n"
            << "locality = P(flow destination shares the source's service)\n\n";
  core::DataCenter dc(fig1_config());
  if (auto built = dc.build_clusters(); !built) {
    std::cerr << "cluster build failed: " << built.error().to_string() << '\n';
    return;
  }
  core::TextTable table({"locality", "intra-cluster fraction", "mean hops", "mean latency (us)",
                         "energy (J)"});
  for (const double locality : {0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
    sim::SimulationConfig config;
    config.flow_count = 20'000;
    config.workload.locality = locality;
    config.workload.seed = 13;
    const auto metrics = sim::simulate_traffic(dc.clusters(), config);
    table.add_row_values(core::fmt(locality, 2), core::fmt(metrics.intra_fraction(), 3),
                         core::fmt(metrics.hops.mean(), 2),
                         core::fmt(metrics.latency_us.mean(), 2),
                         core::fmt(metrics.total_energy_j, 4));
  }
  table.print();
  std::cout << "\nExpected shape: intra-cluster fraction tracks locality — service-based VC\n"
               "boundaries capture the dominant traffic when services are chatty internally.\n\n";
}

void print_congestion_experiment() {
  std::cout << "=== FIG1(b): congestion under the M/M/1 queueing model ===\n"
            << "(why clustering pays: local traffic skips hot core switches)\n\n";
  core::DataCenter dc(fig1_config());
  if (!dc.build_clusters().has_value()) return;
  core::TextTable table({"locality", "mean latency (us)", "p99 latency (us)",
                         "mean switch util", "peak switch util"});
  for (const double locality : {0.1, 0.5, 0.9}) {
    sim::SimulationConfig config;
    config.flow_count = 20'000;
    config.workload.locality = locality;
    config.workload.seed = 13;
    // Offered load sized to push ToR ports into the 30-60% range, where the
    // M/M/1 term matters.
    config.workload.arrival_rate_per_s = 5000.0;
    config.workload.min_bytes = 1e5;
    config.workload.max_bytes = 1e9;
    config.workload.pareto_alpha = 1.2;
    config.latency.mm1_queueing = true;
    config.latency.switch_service_us = 5.0;
    const auto metrics = sim::simulate_traffic(dc.clusters(), config);
    table.add_row_values(core::fmt(locality, 1), core::fmt(metrics.latency_us.mean(), 2),
                         core::fmt(metrics.latency_us.percentile(99), 2),
                         core::fmt(metrics.switch_utilization.mean(), 4),
                         core::fmt(metrics.peak_utilization, 4));
  }
  table.print();
  std::cout << "\nMeasured shape (and the honest point of this table): service locality alone\n"
               "does NOT relieve the core — VMs of one service are scattered across racks, so\n"
               "intra-service flows still cross it, and locality even concentrates load on the\n"
               "popular service's switches (watch peak util). That is precisely the paper's\n"
               "motivation for binding each service group to its own AL: isolation has to come\n"
               "from the switch assignment, not from traffic affinity.\n\n";
}

void BM_GroupVmsByService(benchmark::State& state) {
  auto config = fig1_config();
  config.topology.rack_count = static_cast<std::size_t>(state.range(0));
  const auto topo = topology::build_topology(config.topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::group_vms_by_service(topo));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topo.vm_count()));
}
BENCHMARK(BM_GroupVmsByService)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_SimulateTraffic(benchmark::State& state) {
  core::DataCenter dc(fig1_config());
  (void)dc.build_clusters();
  sim::SimulationConfig config;
  config.flow_count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_traffic(dc.clusters(), config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SimulateTraffic)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  print_congestion_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
