// FIG8 — VNF placement to save O/E/O conversions (paper Fig. 8, §IV-D).
//
// Claims: (1) every VNF moved from the electronic to the optical domain
// saves one O/E/O conversion; (2) conversion cost is proportional to flow
// length; (3) optoelectronic routers are capacity-limited, so only
// low-demand VNFs fit — heavy ones stay electronic.
//
// Experiments:
//   (a) the paper's 3-VNF walk-through (2 conversions -> 1 -> 0);
//   (b) placement-strategy comparison across chain length;
//   (c) conversions + energy as the optoelectronic capacity fraction
//       grows (the crossover from electronic-bound to optical-bound);
//   (d) energy vs flow size (proportionality claim);
// plus placement-strategy timing benchmarks.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"

namespace {

using namespace alvc;
using nfv::VnfType;

core::DataCenterConfig fig8_config(double oe_fraction = 0.5) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.ops_count = 24;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 1;
  config.topology.optoelectronic_fraction = oe_fraction;
  config.topology.core = topology::CoreKind::kRing;
  config.topology.seed = 61;
  // Rack-scale servers: a whole chain cannot colocate on one machine, so
  // electronic hosting really does scatter VNFs across racks (the paper's
  // Fig. 8 premise). One DPI (8 cores) fills a server.
  config.topology.server_capacity =
      topology::Resources{.cpu_cores = 8, .memory_gb = 32, .storage_gb = 256};
  return config;
}

nfv::NfcSpec spec_of(const core::DataCenter& dc, const std::vector<VnfType>& functions) {
  nfv::NfcSpec spec;
  spec.service = util::ServiceId{0};
  spec.name = "fig8";
  spec.bandwidth_gbps = 1.0;
  for (auto t : functions) spec.functions.push_back(*dc.catalog().find_by_type(t));
  return spec;
}

/// Provisions one chain in a fresh DC and returns (mid-chain conversions,
/// optical count); nullopt on failure.
std::optional<std::pair<std::size_t, std::size_t>> run_once(
    const core::DataCenterConfig& config, const std::vector<VnfType>& functions,
    core::PlacementAlgorithm placement) {
  core::DataCenter dc(config);
  if (!dc.build_clusters().has_value()) return std::nullopt;
  const auto id = dc.provision_chain(spec_of(dc, functions), placement);
  if (!id) return std::nullopt;
  const auto* chain = dc.orchestrator().chain(*id);
  return std::make_pair(chain->placement.conversions.mid_chain, chain->placement.optical_count);
}

void print_walkthrough() {
  std::cout << "=== FIG8(a): the paper's walk-through — moving VNFs optical one by one ===\n"
            << "Chain of three light VNFs (gw, firewall, nat); we force k of them optical.\n\n";
  core::DataCenter dc(fig8_config());
  (void)dc.build_clusters();
  const orchestrator::OeoCostModel energy;
  core::TextTable table({"VNFs in optical domain", "O/E/O conversions (mid-chain)",
                         "conversion energy / 1GB flow (J)"});
  // Emulate the figure directly through the cost model (placement-level
  // truth is covered in (b)).
  using nfv::HostRef;
  const std::vector<std::vector<HostRef>> stages{
      {util::ServerId{0}, util::ServerId{4}, util::OpsId{0}},   // 1 optical: 2 conversions
      {util::OpsId{0}, util::ServerId{4}, util::OpsId{2}},      // 2 optical: 1 conversion
      {util::OpsId{0}, util::OpsId{2}, util::OpsId{0}},         // 3 optical: 0 conversions
  };
  for (std::size_t k = 0; k < stages.size(); ++k) {
    const auto count = orchestrator::count_conversions(stages[k]);
    table.add_row_values(k + 1, count.mid_chain,
                         core::fmt(orchestrator::conversion_energy(count, 1e9, energy), 2));
  }
  table.print();
  std::cout << "\nPaper: 'by moving one more VNF in the optical domain, we can save another\n"
               "O/E/O conversion.' Each optical move drops mid-chain conversions by one.\n\n";
}

void print_strategy_comparison() {
  std::cout << "=== FIG8(b): placement strategies across chain length ===\n"
            << "(mixed chains: light functions + every 3rd heavy/DPI-like)\n\n";
  core::TextTable table({"chain length", "strategy", "O/E/O", "optical VNFs", "energy/1GB (J)"});
  const orchestrator::OeoCostModel energy;
  for (const std::size_t length : {2u, 4u, 6u, 8u}) {
    std::vector<VnfType> functions;
    for (std::size_t i = 0; i < length; ++i) {
      functions.push_back(i % 3 == 2 ? VnfType::kDeepPacketInspection : VnfType::kFirewall);
    }
    for (const auto strategy :
         {core::PlacementAlgorithm::kElectronicOnly, core::PlacementAlgorithm::kRandom,
          core::PlacementAlgorithm::kGreedyOptical, core::PlacementAlgorithm::kOeoMinimizing}) {
      const auto result = run_once(fig8_config(), functions, strategy);
      if (!result) {
        table.add_row_values(length, to_string(strategy), "failed", "-", "-");
        continue;
      }
      orchestrator::OeoCount count;
      count.mid_chain = result->first;
      table.add_row_values(length, to_string(strategy), result->first, result->second,
                           core::fmt(orchestrator::conversion_energy(count, 1e9, energy), 2));
    }
  }
  table.print();
  std::cout << "\nExpected shape: oeo-min <= greedy-optical <= random in conversions;\n"
               "electronic-only pays one excursion per server its VNFs scatter over (rack-\n"
               "scale servers prevent full colocation). Optical-first placement eliminates\n"
               "the light VNFs' excursions; oeo-min additionally groups the unavoidable\n"
               "electronic VNFs.\n\n";
}

void print_capacity_sweep() {
  std::cout << "=== FIG8(c): optoelectronic capacity sweep (crossover) ===\n"
            << "Chain: 6 light VNFs; fraction of OPSs that are optoelectronic varies.\n\n";
  const std::vector<VnfType> functions(6, VnfType::kNat);
  core::TextTable table({"OE fraction", "greedy O/E/O", "greedy optical VNFs", "oeo-min O/E/O",
                         "oeo-min optical VNFs"});
  for (const double fraction : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    const auto greedy =
        run_once(fig8_config(fraction), functions, core::PlacementAlgorithm::kGreedyOptical);
    const auto minimal =
        run_once(fig8_config(fraction), functions, core::PlacementAlgorithm::kOeoMinimizing);
    table.add_row_values(core::fmt(fraction, 3),
                         greedy ? std::to_string(greedy->first) : "failed",
                         greedy ? std::to_string(greedy->second) : "-",
                         minimal ? std::to_string(minimal->first) : "failed",
                         minimal ? std::to_string(minimal->second) : "-");
  }
  table.print();
  std::cout << "\nExpected shape: conversions fall as optoelectronic capacity grows, hitting 0\n"
               "once the whole chain fits the optical domain (§IV-D's capacity caveat).\n\n";
}

void print_flow_size_sweep() {
  std::cout << "=== FIG8(d): conversion cost is proportional to flow length ===\n\n";
  const orchestrator::OeoCostModel energy;
  orchestrator::OeoCount two;
  two.mid_chain = 2;
  orchestrator::OeoCount zero;
  core::TextTable table({"flow size", "energy @2 conversions (J)", "energy @0 conversions (J)",
                         "savings (J)"});
  for (const double bytes : {1e3, 1e6, 1e9, 1e12}) {
    const double cost2 = orchestrator::conversion_energy(two, bytes, energy);
    const double cost0 = orchestrator::conversion_energy(zero, bytes, energy);
    table.add_row_values(core::fmt(bytes, 0), core::fmt(cost2, 6), core::fmt(cost0, 6),
                         core::fmt(cost2 - cost0, 6));
  }
  table.print();
  std::cout << "\nExpected shape: linear in bytes — 'the larger the flow is, higher will be\n"
               "the cost', so elephants benefit most from optical hosting.\n\n";
}

void BM_GreedyOpticalPlacement(benchmark::State& state) {
  core::DataCenter dc(fig8_config());
  (void)dc.build_clusters();
  std::vector<VnfType> functions(static_cast<std::size_t>(state.range(0)), VnfType::kFirewall);
  const auto spec = spec_of(dc, functions);
  const auto* vc = dc.clusters().clusters().front();
  const orchestrator::GreedyOpticalPlacement strategy;
  for (auto _ : state) {
    nfv::HostingPool pool(dc.topology());
    orchestrator::PlacementContext context{.topo = &dc.topology(),
                                           .cluster = vc,
                                           .catalog = &dc.catalog(),
                                           .pool = &pool};
    benchmark::DoNotOptimize(strategy.place(spec, context));
  }
}
BENCHMARK(BM_GreedyOpticalPlacement)->Arg(3)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_OeoMinimizingPlacement(benchmark::State& state) {
  core::DataCenter dc(fig8_config());
  (void)dc.build_clusters();
  std::vector<VnfType> functions;
  for (int i = 0; i < state.range(0); ++i) {
    functions.push_back(i % 3 == 2 ? VnfType::kDeepPacketInspection : VnfType::kFirewall);
  }
  const auto spec = spec_of(dc, functions);
  const auto* vc = dc.clusters().clusters().front();
  const orchestrator::OeoMinimizingPlacement strategy;
  for (auto _ : state) {
    nfv::HostingPool pool(dc.topology());
    orchestrator::PlacementContext context{.topo = &dc.topology(),
                                           .cluster = vc,
                                           .catalog = &dc.catalog(),
                                           .pool = &pool};
    benchmark::DoNotOptimize(strategy.place(spec, context));
  }
}
BENCHMARK(BM_OeoMinimizingPlacement)->Arg(3)->Arg(8)->Arg(12)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_walkthrough();
  print_strategy_comparison();
  print_capacity_sweep();
  print_flow_size_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
