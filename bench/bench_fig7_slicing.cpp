// FIG7 — One optical slice (= one AL) per NFC, tenant isolation
// (paper Fig. 7, §IV-C).
//
// Claims: (1) each application gets a whole network slice plus its VNFs,
// "giving them control on the networking of the slice"; (2) one VC hosts
// exactly one NFC; (3) slices work independently.
//
// Experiment: sweep tenant count against OPS pool size; report slice
// allocation success, 1:1 binding enforcement, and cross-slice
// interference (switch-sharing must be zero on OPSs).
#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "core/alvc.h"

namespace {

using namespace alvc;
using nfv::VnfType;

void print_experiment() {
  std::cout << "=== FIG7: slices per NFC vs OPS pool — allocation + isolation ===\n\n";
  core::TextTable table({"tenants", "OPS pool", "clusters", "chains provisioned",
                         "dup chain rejected", "OPS shared by 2 slices", "isolation violations"});
  for (const std::size_t tenants : {2u, 4u, 8u, 12u}) {
    for (const std::size_t pool_factor : {6u, 12u}) {
      core::DataCenterConfig config;
      config.topology.rack_count = std::max<std::size_t>(8, tenants * 2);
      config.topology.ops_count = tenants * pool_factor;
      // ToR fan-out scales with tenancy: every cluster covering a ToR needs
      // its own free uplink.
      config.topology.tor_ops_degree =
          std::min(config.topology.ops_count, 6 + tenants * 3);
      config.topology.service_count = tenants;
      config.topology.service_skew = 0.0;
      config.topology.optoelectronic_fraction = 0.5;
      config.topology.core = topology::CoreKind::kRing;
      config.topology.seed = 51;
      core::DataCenter dc(config);
      const auto clusters = dc.build_clusters();
      const std::size_t built = clusters ? clusters->size() : dc.clusters().cluster_count();

      std::size_t provisioned = 0;
      for (std::size_t t = 0; t < tenants; ++t) {
        nfv::NfcSpec spec;
        spec.tenant = util::TenantId{static_cast<util::TenantId::value_type>(t)};
        spec.service = util::ServiceId{static_cast<util::ServiceId::value_type>(t)};
        spec.name = "t" + std::to_string(t);
        spec.bandwidth_gbps = 1.0;
        spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                          *dc.catalog().find_by_type(VnfType::kNat)};
        if (dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical)) ++provisioned;
      }
      // Duplicate chain for tenant 0 must bounce (1 NFC per VC).
      bool dup_rejected = false;
      {
        nfv::NfcSpec dup;
        dup.tenant = util::TenantId{0};
        dup.service = util::ServiceId{0};
        dup.name = "dup";
        dup.bandwidth_gbps = 1.0;
        dup.functions = {*dc.catalog().find_by_type(VnfType::kNat)};
        dup_rejected = !dc.provision_chain(dup, core::PlacementAlgorithm::kGreedyOptical)
                            .has_value();
      }
      // Cross-slice OPS sharing (must be zero by the exclusivity invariant).
      std::size_t shared = 0;
      std::set<util::OpsId> seen;
      for (const auto* vc : dc.clusters().clusters()) {
        for (auto o : vc->layer.opss) {
          if (!seen.insert(o).second) ++shared;
        }
      }
      table.add_row_values(tenants, config.topology.ops_count, built, provisioned,
                           dup_rejected ? "yes" : "NO (bug)", shared,
                           dc.orchestrator().check_isolation().size());
    }
  }
  table.print();
  std::cout << "\nExpected shape: with an adequate pool every tenant gets a slice; sharing and\n"
               "isolation violations are zero by construction; scarce pools degrade allocation\n"
               "count, never isolation.\n\n";
}

void BM_SliceAllocateRelease(benchmark::State& state) {
  orchestrator::SliceManager slices;
  std::uint32_t i = 0;
  for (auto _ : state) {
    const auto id = slices.allocate(util::ClusterId{i}, util::NfcId{i}, 1.0);
    benchmark::DoNotOptimize(id);
    (void)slices.release(util::NfcId{i});
    ++i;
  }
}
BENCHMARK(BM_SliceAllocateRelease);

void BM_IsolationCheck(benchmark::State& state) {
  core::DataCenterConfig config;
  config.topology.rack_count = 12;
  config.topology.ops_count = 60;
  config.topology.tor_ops_degree = 10;
  config.topology.service_count = 4;
  config.topology.service_skew = 0.0;
  config.topology.seed = 53;
  core::DataCenter dc(config);
  (void)dc.build_clusters();
  for (std::size_t t = 0; t < 4; ++t) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{static_cast<util::ServiceId::value_type>(t)};
    spec.name = "bench";
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall)};
    (void)dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.orchestrator().check_isolation());
  }
}
BENCHMARK(BM_IsolationCheck)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
