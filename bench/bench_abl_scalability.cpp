// ABL2 — Scalability and flexibility (the claim of the authors' companion
// work, ref [15]: the AL-based distributed architecture scales).
//
// Experiment: sweep the DC from hundreds to ~100k VMs; report wall time
// for topology construction, service clustering + AL construction, chain
// orchestration, and a traffic epoch, plus approximate memory footprint
// (element counts). The paper's architecture claims each stage stays
// tractable because ALs localise work per cluster.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"

namespace {

using namespace alvc;
using nfv::VnfType;

core::DataCenterConfig scale_config(std::size_t racks) {
  core::DataCenterConfig config;
  config.topology.rack_count = racks;
  config.topology.servers_per_rack = 8;
  config.topology.vms_per_server = 8;
  config.topology.ops_count = std::max<std::size_t>(16, racks * 2);
  config.topology.tor_ops_degree = 8;
  // Large DCs wire racks to nearby optical switches (compact ALs). The
  // stage-3 connectivity augmentation is disabled here: it is an extension
  // beyond the paper's two-stage algorithm, and with few services covering
  // every rack it consumes transit OPSs quadratically (FIG4/FIG5 measure it
  // at realistic per-cluster scale). With local uplinks the two-stage ALs
  // come out connected through shared ToRs anyway — reported below.
  config.topology.uplink_locality = 0.9;
  config.ensure_al_connectivity = false;
  config.topology.service_count = 4;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kTorus2D;
  config.topology.seed = 81;
  return config;
}

void print_experiment() {
  std::cout << "=== ABL2: scalability — wall time per stage vs DC size ===\n\n";
  core::TextTable table({"racks", "VMs", "OPSs", "build topo (ms)", "clusters+ALs (ms)",
                         "connected ALs", "4 chains (ms)", "10k flows (ms)", "rules resident"});
  for (const std::size_t racks : {8u, 32u, 128u, 512u, 1600u}) {
    const auto config = scale_config(racks);

    core::Stopwatch sw_topo;
    core::DataCenter dc(config);
    const double topo_ms = sw_topo.elapsed_ms();

    core::Stopwatch sw_cluster;
    const auto clusters = dc.build_clusters();
    const double cluster_ms = sw_cluster.elapsed_ms();
    if (!clusters) {
      table.add_row_values(racks, dc.topology().vm_count(), dc.topology().ops_count(),
                           core::fmt(topo_ms, 1), "failed", "-", "-", "-", "-");
      continue;
    }
    std::size_t connected_als = 0;
    for (const auto* vc : dc.clusters().clusters()) {
      if (cluster::cluster_subgraph_connected(dc.topology(), vc->layer)) ++connected_als;
    }

    core::Stopwatch sw_chains;
    std::size_t chains_ok = 0;
    for (std::size_t t = 0; t < 4; ++t) {
      nfv::NfcSpec spec;
      spec.service = util::ServiceId{static_cast<util::ServiceId::value_type>(t)};
      spec.name = "scale-" + std::to_string(t);
      spec.bandwidth_gbps = 1.0;
      spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                        *dc.catalog().find_by_type(VnfType::kNat)};
      if (dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical)) ++chains_ok;
    }
    const double chains_ms = sw_chains.elapsed_ms();

    core::Stopwatch sw_sim;
    sim::SimulationConfig sim_config;
    sim_config.flow_count = 10'000;
    const auto metrics = sim::simulate_traffic(dc.clusters(), sim_config);
    const double sim_ms = sw_sim.elapsed_ms();

    table.add_row_values(racks, dc.topology().vm_count(), dc.topology().ops_count(),
                         core::fmt(topo_ms, 1), core::fmt(cluster_ms, 1),
                         std::to_string(connected_als) + "/" +
                             std::to_string(dc.clusters().cluster_count()),
                         core::fmt(chains_ms, 1) + " (" + std::to_string(chains_ok) + " ok)",
                         core::fmt(sim_ms, 1),
                         dc.orchestrator().controller().tables().total_rules());
    (void)metrics;
  }
  table.print();
  std::cout << "\nExpected shape: every stage grows near-linearly in DC size; 100k-VM AL\n"
               "construction stays in seconds — the ref-[15] scalability claim. The\n"
               "'connected ALs' column shows the cost of skipping stage-3 augmentation:\n"
               "two-stage ALs cover every rack but are rarely connected subgraphs, so only\n"
               "chains whose slice happens to be connected can route (the '<n> ok' counts).\n"
               "FIG4/FIG5 measure augmentation at realistic per-cluster scale.\n\n";
}

void BM_EndToEndSmall(benchmark::State& state) {
  for (auto _ : state) {
    core::DataCenter dc(scale_config(8));
    benchmark::DoNotOptimize(dc.build_clusters());
  }
}
BENCHMARK(BM_EndToEndSmall)->Unit(benchmark::kMillisecond);

void BM_ClusterBuildOnly(benchmark::State& state) {
  const auto config = scale_config(static_cast<std::size_t>(state.range(0)));
  const auto topo = topology::build_topology(config.topology);
  const auto groups = cluster::group_vms_by_service(topo);
  const cluster::VertexCoverAlBuilder builder;
  for (auto _ : state) {
    cluster::OpsOwnership ownership(topo.ops_count());
    for (const auto& group : groups) {
      if (group.empty()) continue;
      benchmark::DoNotOptimize(builder.build(topo, group, ownership));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(topo.vm_count()));
}
BENCHMARK(BM_ClusterBuildOnly)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
