// Overload survival and graceful-downgrade throughput.
//
// Experiment: the same overload schedule — a flash crowd landing inside a
// whole-AL outage, a diurnal ramp of sustained oversubscription, and
// adversarial LOPRI churn — driven end-to-end through ChaosRunner under
// each allocation policy, with silent-loss accounting. kStrictLadder is the
// legacy baseline (no rebalance ever runs); kWaterFill shares contended
// capacity fairly; kPriorityDowngrade additionally sheds LOPRI first so
// HIPRI chains ride out the crowd. Benchmarks: the water-filling planner at
// growing aggregate counts, one full rebalance pass on a loaded control
// plane, and the whole overload soak per policy — the "overload events per
// second" the control plane can absorb.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/alvc.h"
#include "faults/chaos.h"
#include "faults/fault_injector.h"
#include "orchestrator/bandwidth_allocator.h"
#include "util/rng.h"

namespace {

using namespace alvc;
using nfv::PriorityClass;
using nfv::VnfType;
using orchestrator::AllocationPolicy;

nfv::NfcSpec make_spec(const core::DataCenter& dc, std::uint32_t service, double gbps,
                       PriorityClass cls) {
  nfv::NfcSpec spec;
  spec.service = util::ServiceId{service};
  spec.name = "load-" + std::to_string(service);
  spec.bandwidth_gbps = gbps;
  spec.priority = cls;
  spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                    *dc.catalog().find_by_type(VnfType::kNat)};
  return spec;
}

core::DataCenter make_qos_dc(std::uint64_t seed, AllocationPolicy policy) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    throw std::runtime_error(built.error().to_string());
  }
  dc.orchestrator().set_allocation_policy(policy);
  // Demand above the 10 Gbps uplink ports: QoS policies admit at a reduced
  // rung where the strict ladder would simply run degraded.
  (void)dc.provision_chain(make_spec(dc, 0, 16.0, PriorityClass::kHipri),
                           core::PlacementAlgorithm::kGreedyOptical);
  return dc;
}

faults::ChaosParams make_overload_params(const core::DataCenter& dc, std::uint64_t seed) {
  faults::ChaosParams params;
  params.schedule.ops = {.mtbf_s = 35, .mttr_s = 7};
  params.schedule.tor = {.mtbf_s = 55, .mttr_s = 6};
  params.schedule.server = {.mtbf_s = 45, .mttr_s = 5};
  params.schedule.link = {.mtbf_s = 40, .mttr_s = 6};
  params.schedule.horizon_s = 40;
  params.schedule.seed = seed;
  params.flow_rate_per_s = 20;
  params.traffic_seed = seed * 3 + 1;
  const auto* vc0 = dc.clusters().clusters().front();
  if (!vc0->layer.opss.empty()) {
    params.scripted = faults::FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
  }

  const std::vector<nfv::NfcSpec> crowd{
      make_spec(dc, 0, 16.0, PriorityClass::kHipri),
      make_spec(dc, 1, 16.0, PriorityClass::kLopri),
      make_spec(dc, 2, 16.0, PriorityClass::kHipri),
  };
  const std::vector<nfv::NfcSpec> heavy{
      make_spec(dc, 1, 16.0, PriorityClass::kHipri),
      make_spec(dc, 2, 8.0, PriorityClass::kLopri),
  };
  auto load = faults::OverloadInjector::flash_crowd(crowd, 13.0, 0.3, 10.0, /*first_key=*/1000);
  const auto ramp = faults::OverloadInjector::diurnal_ramp(heavy, 20.0, 40.0, /*first_key=*/2000);
  const auto churn = faults::OverloadInjector::lopri_churn(crowd, 0.4, 5.0, 40.0, seed * 11 + 3,
                                                           /*first_key=*/3000);
  load.insert(load.end(), ramp.begin(), ramp.end());
  load.insert(load.end(), churn.begin(), churn.end());
  params.load = std::move(load);
  return params;
}

void print_experiment() {
  std::cout << "=== Overload downgrade: flash crowd + sustained oversubscription ===\n\n";
  core::TextTable table({"policy", "load events", "admitted", "admitted degraded", "rejected",
                         "torn down", "downgrades", "restores", "unaccounted", "audit"});
  for (const AllocationPolicy policy :
       {AllocationPolicy::kStrictLadder, AllocationPolicy::kWaterFill,
        AllocationPolicy::kPriorityDowngrade}) {
    std::size_t load_events = 0, admitted = 0, admitted_degraded = 0, rejected = 0;
    std::size_t torn_down = 0, downgrades = 0, restores = 0, unaccounted = 0, violations = 0;
    for (const std::uint64_t seed : {3u, 9u, 17u}) {
      auto dc = make_qos_dc(seed, policy);
      faults::ChaosRunner runner(dc.orchestrator(), make_overload_params(dc, seed));
      const auto report = runner.run();
      load_events += report.load_events;
      admitted += report.load_provisioned;
      admitted_degraded += report.load_provisioned_degraded;
      rejected += report.load_rejected;
      torn_down += report.load_torn_down;
      downgrades += dc.orchestrator().stats().alloc_downgrades;
      restores += dc.orchestrator().stats().alloc_restores;
      unaccounted += report.chains_unaccounted;
      violations += report.audit_violations;
    }
    table.add_row_values(to_string(policy), load_events, admitted, admitted_degraded, rejected,
                         torn_down, downgrades, restores, unaccounted,
                         violations == 0 ? "OK" : "VIOLATED");
  }
  table.print();
  std::cout << "\nExpected shape: the QoS policies convert strict-ladder rejections into\n"
               "degraded admissions, the priority policy sheds and restores LOPRI around\n"
               "the crowd, and every row reads 0 unaccounted chains and an OK audit.\n\n";
}

/// Seeded synthetic allocation instance: `n` chains drawing on sqrt-ish
/// many shared resources, mixed classes, oversubscribed on purpose.
std::pair<std::vector<orchestrator::AllocChain>, std::vector<orchestrator::AllocResource>>
make_instance(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  const std::size_t resources = 2 + n / 4;
  std::vector<orchestrator::AllocResource> caps(resources);
  for (auto& r : caps) r.capacity_gbps = rng.uniform(4.0, 24.0);
  std::vector<orchestrator::AllocChain> chains(n);
  for (std::size_t i = 0; i < n; ++i) {
    chains[i].id = util::NfcId{i};
    chains[i].cls = rng.bernoulli(0.5) ? PriorityClass::kHipri : PriorityClass::kLopri;
    chains[i].demand_gbps = rng.uniform(0.5, 10.0);
    for (std::uint32_t r = 0; r < resources; ++r) {
      if (rng.bernoulli(0.3)) chains[i].uses.emplace_back(r, rng.bernoulli(0.25) ? 2.0 : 1.0);
    }
    if (chains[i].uses.empty()) {
      chains[i].uses.emplace_back(static_cast<std::uint32_t>(i % resources), 1.0);
    }
  }
  return {std::move(chains), std::move(caps)};
}

void BM_WaterFillPlan(benchmark::State& state) {
  const auto [chains, caps] = make_instance(static_cast<std::size_t>(state.range(0)), 0xa110c);
  orchestrator::BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kWaterFill);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.plan(chains, caps));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_WaterFillPlan)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_PriorityDowngradePlan(benchmark::State& state) {
  const auto [chains, caps] = make_instance(static_cast<std::size_t>(state.range(0)), 0xa110c);
  orchestrator::BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kPriorityDowngrade);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.plan(chains, caps));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PriorityDowngradePlan)->Arg(8)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_RebalancePass(benchmark::State& state) {
  auto dc = make_qos_dc(7, AllocationPolicy::kPriorityDowngrade);
  // Load the remaining services so the rebalance walks a real chain set.
  (void)dc.provision_chain(make_spec(dc, 1, 16.0, PriorityClass::kLopri),
                           core::PlacementAlgorithm::kGreedyOptical);
  (void)dc.provision_chain(make_spec(dc, 2, 8.0, PriorityClass::kHipri),
                           core::PlacementAlgorithm::kGreedyOptical);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.orchestrator().rebalance_bandwidth());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RebalancePass)->Unit(benchmark::kMicrosecond);

void BM_OverloadSoak(benchmark::State& state) {
  const auto policy = static_cast<AllocationPolicy>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto dc = make_qos_dc(7, policy);
    auto params = make_overload_params(dc, 7);
    params.audit_every_event = false;  // measure the control plane, not the audit
    state.ResumeTiming();
    faults::ChaosRunner runner(dc.orchestrator(), std::move(params));
    const auto report = runner.run();
    events += report.fault_events + report.load_events;
    if (!report.clean()) state.SkipWithError("overload soak not clean");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_OverloadSoak)
    ->Arg(static_cast<int>(AllocationPolicy::kStrictLadder))
    ->Arg(static_cast<int>(AllocationPolicy::kWaterFill))
    ->Arg(static_cast<int>(AllocationPolicy::kPriorityDowngrade))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
