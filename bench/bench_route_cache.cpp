// Route-cache throughput on a churn-heavy recovery workload.
//
// Experiment: every fault or recovery event makes the orchestrator's sweep
// re-derive chain routes, and almost all of those events leave any given
// slice untouched — the route comes out identical, but the plain router
// pays a full filtered BFS per leg anyway. The epoch-versioned cache
// answers the same lookups with a fingerprint revalidation (or a pure
// epoch hit) and falls back to the identical BFS only when the slice
// really changed. Benchmarks: the same churn loop routed uncached (arg 0)
// and cached (arg 1) — the per-route time ratio is the headline speedup —
// plus the in-slice fail/recover oscillation that exercises the variant
// ring. The experiment table reports the deterministic hit/revalidate/miss
// split so the speedup can be attributed without trusting wall clocks.
#include <benchmark/benchmark.h>

#include <iostream>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/alvc.h"
#include "orchestrator/route_cache.h"
#include "orchestrator/routing.h"
#include "util/error.h"

namespace {

using namespace alvc;
using nfv::HostRef;
using nfv::VnfType;
using orchestrator::BandwidthTier;
using orchestrator::ChainRouter;
using orchestrator::RouteCache;
using util::OpsId;
using util::TorId;

core::DataCenter make_loaded_dc(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 12;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 24;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.seed = seed;
  core::DataCenter dc(config);
  if (auto built = dc.build_clusters(); !built) {
    throw std::runtime_error(built.error().to_string());
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat),
                      *dc.catalog().find_by_type(VnfType::kProxy)};
    ALVC_IGNORE_STATUS(dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical),
                       "capacity conflicts just mean fewer chains in the workload");
  }
  return dc;
}

/// The routing workload the recovery sweep generates: one lookup per chain
/// per event, plus the churn victims the loop oscillates.
struct Workload {
  core::DataCenter dc;
  ChainRouter router;
  RouteCache cache;

  struct ChainRef {
    const cluster::VirtualCluster* vc;
    TorId ingress;
    TorId egress;
    std::vector<HostRef> hosts;
  };
  std::vector<ChainRef> chains;
  OpsId unowned_victim = OpsId::invalid();  // outside every slice: epoch-only churn
  // A slice-internal ToR-OPS link whose outage keeps every chain routable:
  // cutting it flips the slice fingerprint without breaking feasibility.
  TorId churn_link_tor = TorId::invalid();
  OpsId churn_link_ops = OpsId::invalid();

  explicit Workload(std::uint64_t seed)
      : dc(make_loaded_dc(seed)), router(dc.topology()), cache(dc.topology()) {
    std::unordered_set<std::uint32_t> owned;
    for (const auto* vc : dc.clusters().clusters()) {
      for (OpsId o : vc->layer.opss) owned.insert(o.value());
    }
    for (const auto* chain : dc.orchestrator().chains()) {
      const auto* vc = dc.clusters().find(chain->cluster);
      if (vc == nullptr || vc->layer.tors.empty()) continue;
      chains.push_back(ChainRef{.vc = vc,
                                .ingress = vc->layer.tors.front(),
                                .egress = vc->layer.tors.back(),
                                .hosts = chain->placement.hosts});
    }
    if (chains.empty()) throw std::runtime_error("workload provisioned no chains");
    for (std::size_t i = 0; i < dc.topology().ops_count(); ++i) {
      const OpsId o{static_cast<OpsId::value_type>(i)};
      if (owned.find(o.value()) == owned.end()) {
        unowned_victim = o;
        break;
      }
    }
    if (!unowned_victim.valid()) throw std::runtime_error("no unowned OPS for churn");
    // A slice-internal link whose outage keeps every chain routable, so the
    // oscillation loop measures the variant ring rather than repeated
    // uncacheable infeasibility. The dense uplink degree makes one usually
    // redundant; probe until one proves it.
    const auto* vc = chains.front().vc;
    for (TorId tor : vc->layer.tors) {
      for (OpsId ops : dc.topology().tor(tor).uplinks) {
        if (!vc->layer.contains_ops(ops)) continue;
        ALVC_IGNORE_STATUS(dc.topology().set_link_failed(tor, ops, true),
                           "probe: reverted right below");
        const bool routable = route_all_cached();
        ALVC_IGNORE_STATUS(dc.topology().set_link_failed(tor, ops, false),
                           "probe: restores the healthy state");
        if (routable) {
          churn_link_tor = tor;
          churn_link_ops = ops;
          break;
        }
      }
      if (churn_link_tor.valid()) break;
    }
    cache.clear();
  }

  /// Routes every chain through the cache; true when all were feasible.
  bool route_all_cached() {
    bool ok = true;
    for (const auto& chain : chains) {
      ok = cache.route(router, *chain.vc, chain.ingress, chain.egress, chain.hosts,
                       BandwidthTier::kFull)
               .has_value() &&
           ok;
    }
    return ok;
  }

  void route_all_uncached() {
    for (const auto& chain : chains) {
      benchmark::DoNotOptimize(
          router.route(*chain.vc, chain.ingress, chain.egress, chain.hosts));
    }
  }
};

// The recovery-sweep hot path: every event bumps the mutation epoch, no
// event touches the measured slices. Uncached pays |chains| x legs BFS per
// event; cached pays one fingerprint revalidation per leg, then pure hits.
void BM_ChurnRecoveryRouting(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  Workload w(7);
  bool fail = true;
  for (auto _ : state) {
    ALVC_IGNORE_STATUS(w.dc.topology().set_ops_failed(w.unowned_victim, fail),
                       "churn: the OPS is outside every slice, only the epoch moves");
    fail = !fail;
    if (cached) {
      benchmark::DoNotOptimize(w.route_all_cached());
    } else {
      w.route_all_uncached();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.chains.size()));
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_ChurnRecoveryRouting)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Cut/restore oscillation of a link inside a slice: both states' paths live
// in the variant ring, so from the second cycle on the cache revalidates
// instead of recomputing either state.
void BM_OscillatingSliceRouting(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  Workload w(7);
  if (!w.churn_link_tor.valid()) {
    state.SkipWithError("no slice-internal link outage keeps every chain routable");
    return;
  }
  bool fail = true;
  for (auto _ : state) {
    ALVC_IGNORE_STATUS(
        w.dc.topology().set_link_failed(w.churn_link_tor, w.churn_link_ops, fail),
        "churn: oscillates one slice between two routable states");
    fail = !fail;
    if (cached) {
      benchmark::DoNotOptimize(w.route_all_cached());
    } else {
      w.route_all_uncached();
    }
  }
  if (fail == false) {
    ALVC_IGNORE_STATUS(w.dc.topology().set_link_failed(w.churn_link_tor, w.churn_link_ops, false),
                       "leave the topology healthy for the next benchmark");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.chains.size()));
  state.SetLabel(cached ? "cached" : "uncached");
}
BENCHMARK(BM_OscillatingSliceRouting)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void print_experiment() {
  std::cout << "=== Route cache under churn: deterministic lookup split ===\n\n";
  core::TextTable table({"seed", "chains", "events", "lookups", "hits", "revalidations",
                         "misses", "served from cache"});
  for (const std::uint64_t seed : {7u, 21u, 42u}) {
    Workload w(seed);
    constexpr int kEvents = 200;
    bool fail = true;
    for (int event = 0; event < kEvents; ++event) {
      ALVC_IGNORE_STATUS(w.dc.topology().set_ops_failed(w.unowned_victim, fail),
                         "churn: epoch-only events, slices untouched");
      fail = !fail;
      benchmark::DoNotOptimize(w.route_all_cached());
    }
    const auto& stats = w.cache.stats();
    const double served =
        stats.lookups() == 0
            ? 0.0
            : 100.0 * static_cast<double>(stats.hits + stats.revalidations) /
                  static_cast<double>(stats.lookups());
    table.add_row_values(seed, w.chains.size(), kEvents, stats.lookups(), stats.hits,
                         stats.revalidations, stats.misses,
                         std::to_string(static_cast<int>(served)) + "%");
  }
  table.print();
  std::cout << "\nExpected shape: misses stay at the first event's cold legs; every later\n"
               "event is answered by revalidations (epoch moved, slice fingerprint did\n"
               "not) or pure hits, so the served-from-cache column approaches 100%.\n"
               "The BM_* pairs below time the same loops; the cached/uncached ratio is\n"
               "the recovery-sweep speedup.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
