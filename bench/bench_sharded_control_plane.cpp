// Sharded control-plane throughput: fault sweep + recovery cost vs shard
// count (DESIGN.md §13).
//
// Experiment: per-event sweep work at mid scale — the serial control plane
// classifies every chain on every fault, the sharded one walks only the
// event's blast radius through the per-cluster membership indexes; the
// table shows the visited-chain gap that buys the speedup.
//
// Benchmarks: an OPS failure+recovery cycle (AL repair, scoped sweep,
// retry drain, rebalance) and a ToR cycle, parameterized by shard count.
// Arg 0 is the unsharded serial baseline; arguments 1/2/4/8 run the
// cluster-agent path. Mid scale (400 clusters / 400 chains) always runs;
// the million-VM shape (12,500 racks, 100k clusters, 100k chains) is
// registered only under ALVC_BENCH_SCALE=full because its one-off build
// dominates a default bench run.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/alvc.h"
#include "util/executor.h"

namespace {

using namespace alvc;
using nfv::VnfType;

struct ScaleShape {
  std::size_t racks = 100;
  std::size_t servers_per_rack = 4;
  std::size_t vms_per_server = 4;
  // Slices bind 1:1 to chains: one service/cluster/chain per server.
  [[nodiscard]] std::size_t services() const noexcept { return racks * servers_per_rack; }
};

/// Same layout as the scale soak: block service assignment gives service s
/// exactly server s's VMs, so each AL is one ToR plus one exclusive window
/// OPS. Heap-allocated — DataCenter must never be moved.
std::unique_ptr<core::DataCenter> make_scale_dc(const ScaleShape& shape) {
  core::DataCenterConfig config;
  config.topology.rack_count = shape.racks;
  config.topology.servers_per_rack = shape.servers_per_rack;
  config.topology.vms_per_server = shape.vms_per_server;
  config.topology.ops_count = shape.services();
  config.topology.tor_ops_degree = shape.servers_per_rack;
  config.topology.uplink_locality = 1.0;
  config.topology.core = topology::CoreKind::kNone;
  config.topology.optoelectronic_fraction = 1.0;
  config.topology.service_count = shape.services();
  config.topology.server_local_services = true;
  config.topology.seed = 42;
  config.seed = 42;
  auto dc = std::make_unique<core::DataCenter>(config);

  alvc::util::Executor build_exec(4);
  const auto builder = core::DataCenter::make_al_builder(config.al_algorithm, config.seed,
                                                         config.ensure_al_connectivity);
  const auto built = dc->clusters().build_all_clusters(*builder, &build_exec);
  if (!built.has_value()) throw std::runtime_error(built.error().to_string());

  for (std::uint32_t s = 0; s < shape.services(); ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc->catalog().find_by_type(VnfType::kFirewall)};
    if (!dc->provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical).has_value()) {
      throw std::runtime_error("provisioning chain " + std::to_string(s) + " failed");
    }
  }
  return dc;
}

core::DataCenter& mid_dc() {
  static auto dc = make_scale_dc(ScaleShape{});
  return *dc;
}

core::DataCenter& million_vm_dc() {
  static auto dc =
      make_scale_dc(ScaleShape{.racks = 12500, .servers_per_rack = 8, .vms_per_server = 10});
  return *dc;
}

void configure_sharding(core::DataCenter& dc, std::int64_t shards) {
  dc.orchestrator().set_sharding(static_cast<std::size_t>(shards));
}

util::OpsId owned_ops(const core::DataCenter& dc) {
  return dc.clusters().clusters().front()->layer.opss.front();
}

void ops_cycle_bench(benchmark::State& state, core::DataCenter& dc) {
  configure_sharding(dc, state.range(0));
  const util::OpsId victim = owned_ops(dc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.orchestrator().handle_ops_failure(victim));
    benchmark::DoNotOptimize(dc.orchestrator().handle_ops_recovery(victim));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

void BM_MidScaleOpsCycle(benchmark::State& state) { ops_cycle_bench(state, mid_dc()); }
BENCHMARK(BM_MidScaleOpsCycle)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

void BM_MidScaleTorCycle(benchmark::State& state) {
  core::DataCenter& dc = mid_dc();
  configure_sharding(dc, state.range(0));
  const util::TorId victim{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dc.orchestrator().handle_tor_failure(victim));
    benchmark::DoNotOptimize(dc.orchestrator().handle_tor_recovery(victim));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_MidScaleTorCycle)->Arg(0)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_MillionVmOpsCycle(benchmark::State& state) {
  ops_cycle_bench(state, million_vm_dc());
}

void print_experiment() {
  std::cout << "=== Sharded control plane: per-event sweep work vs shard count ===\n\n";
  core::TextTable table({"shards", "chains", "cycles", "chains visited", "visited/event"});
  core::DataCenter& dc = mid_dc();
  constexpr int kCycles = 20;
  const util::OpsId victim = owned_ops(dc);
  for (const std::size_t shards : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    dc.orchestrator().set_sharding(shards);
    std::uint64_t before = 0;
    const auto* agent = dc.orchestrator().agent();
    if (agent != nullptr) {
      for (std::size_t s = 0; s < agent->shard_count(); ++s) {
        before += agent->shard(s).counters().chains_visited;
      }
    }
    for (int i = 0; i < kCycles; ++i) {
      if (!dc.orchestrator().handle_ops_failure(victim).has_value() ||
          !dc.orchestrator().handle_ops_recovery(victim).has_value()) {
        throw std::runtime_error("fault cycle failed");
      }
    }
    std::uint64_t visited = 0;
    agent = dc.orchestrator().agent();
    if (agent != nullptr) {
      for (std::size_t s = 0; s < agent->shard_count(); ++s) {
        visited += agent->shard(s).counters().chains_visited;
      }
      visited -= before;
    } else {
      // The serial reference classifies every chain on each of the three
      // sweeps a failure+recovery cycle runs (failure sweep, recovery
      // settle sweep, retry drain is queue-driven).
      visited = static_cast<std::uint64_t>(dc.orchestrator().chain_count()) * 2 * kCycles;
    }
    table.add_row_values(shards == 0 ? "serial" : std::to_string(shards),
                         dc.orchestrator().chain_count(), kCycles * 2, visited,
                         visited / (kCycles * 2));
  }
  table.print();
  std::cout << "\nExpected shape: the serial row visits every chain on every event; the\n"
               "sharded rows visit only the failing OPS's blast radius (one cluster, one\n"
               "chain) plus whatever the recovery restore pass touches, independent of\n"
               "total chain count.\n\n";
  dc.orchestrator().set_sharding(0);
}

}  // namespace

int main(int argc, char** argv) {
  print_experiment();
  if (const char* env = std::getenv("ALVC_BENCH_SCALE");
      env != nullptr && std::string(env) == "full") {
    benchmark::RegisterBenchmark("BM_MillionVmOpsCycle", BM_MillionVmOpsCycle)
        ->Arg(0)
        ->Arg(8)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
