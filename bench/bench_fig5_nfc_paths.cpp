// FIG5 — NFC orchestration and per-chain paths (paper Fig. 5, §IV-A).
//
// Claim: each NFC follows its own path through the nodes, visiting its
// NFs/VNFs in order; chains are orchestrated dynamically.
//
// Experiment: provision the paper's three example chains, then sweep the
// number of concurrent chains and report provisioning latency, per-chain
// path length, and flow-rule footprint. Benchmarks provision+teardown.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/alvc.h"

namespace {

using namespace alvc;
using nfv::VnfType;

core::DataCenterConfig config_for(std::size_t services) {
  core::DataCenterConfig config;
  config.topology.rack_count = std::max<std::size_t>(8, services * 2);
  config.topology.ops_count = services * 12;
  // Every cluster covering a ToR needs a disjoint free uplink, so the ToR
  // fan-out must scale with tenancy (FIG3 quantifies this pressure).
  config.topology.tor_ops_degree = std::min(config.topology.ops_count, 6 + services * 3);
  config.topology.service_count = services;
  config.topology.service_skew = 0.0;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kTorus2D;
  config.topology.seed = 41;
  return config;
}

nfv::NfcSpec make_spec(const core::DataCenter& dc, std::size_t tenant,
                       const std::vector<VnfType>& functions) {
  nfv::NfcSpec spec;
  spec.tenant = util::TenantId{static_cast<util::TenantId::value_type>(tenant)};
  spec.service = util::ServiceId{static_cast<util::ServiceId::value_type>(tenant)};
  spec.name = "chain-" + std::to_string(tenant);
  spec.bandwidth_gbps = 1.0;
  for (auto t : functions) spec.functions.push_back(*dc.catalog().find_by_type(t));
  return spec;
}

void print_three_chains() {
  std::cout << "=== FIG5(a): the paper's three chains, each on its own path ===\n\n";
  core::DataCenter dc(config_for(3));
  if (auto built = dc.build_clusters(); !built) {
    std::cerr << "clusters failed: " << built.error().to_string() << '\n';
    return;
  }
  const std::vector<std::vector<VnfType>> chains{
      {VnfType::kSecurityGateway, VnfType::kFirewall, VnfType::kNat},
      {VnfType::kFirewall, VnfType::kDeepPacketInspection, VnfType::kLoadBalancer},
      {VnfType::kProxy, VnfType::kCache},
  };
  core::TextTable table({"chain", "functions", "provision (us)", "path hops", "optical hops",
                         "O/E/O", "rules"});
  for (std::size_t i = 0; i < chains.size(); ++i) {
    const auto spec = make_spec(dc, i, chains[i]);
    core::Stopwatch sw;
    const auto id = dc.provision_chain(spec, core::PlacementAlgorithm::kOeoMinimizing);
    const double us = sw.elapsed_us();
    if (!id) {
      table.add_row_values(spec.name, chains[i].size(), id.error().to_string(), "-", "-", "-",
                           "-");
      continue;
    }
    const auto* chain = dc.orchestrator().chain(*id);
    table.add_row_values(spec.name, chains[i].size(), core::fmt(us, 0),
                         chain->route.total_hops(), chain->route.optical_hops,
                         chain->placement.conversions.mid_chain, chain->flow_rules);
  }
  table.print();
  std::cout << "\nIsolation violations: " << dc.orchestrator().check_isolation().size()
            << " (must be 0 — each chain rides only its own slice)\n\n";
}

void print_chain_sweep() {
  std::cout << "=== FIG5(b): chain-count sweep — orchestration at increasing tenancy ===\n\n";
  core::TextTable table({"chains requested", "provisioned", "mean provision (us)",
                         "mean path hops", "total rules", "isolation violations"});
  for (const std::size_t n : {2u, 4u, 8u, 12u}) {
    core::DataCenter dc(config_for(n));
    if (auto built = dc.build_clusters(); !built) {
      table.add_row_values(n, "cluster build failed", "-", "-", "-", "-");
      continue;
    }
    util::SampleSet latency;
    util::SampleSet hops;
    std::size_t ok = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const auto spec =
          make_spec(dc, t, {VnfType::kFirewall, VnfType::kLoadBalancer, VnfType::kNat});
      core::Stopwatch sw;
      const auto id = dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
      if (!id) continue;
      latency.add(sw.elapsed_us());
      hops.add(static_cast<double>(dc.orchestrator().chain(*id)->route.total_hops()));
      ++ok;
    }
    table.add_row_values(n, ok, core::fmt(latency.mean(), 0), core::fmt(hops.mean(), 1),
                         dc.orchestrator().controller().tables().total_rules(),
                         dc.orchestrator().check_isolation().size());
  }
  table.print();
  std::cout << "\nExpected shape: per-chain provisioning latency stays flat as tenancy grows\n"
               "(slices are independent), total rules grow linearly with chains.\n\n";
}

void BM_ProvisionTeardown(benchmark::State& state) {
  core::DataCenter dc(config_for(2));
  (void)dc.build_clusters();
  const auto spec = make_spec(dc, 0, {VnfType::kFirewall, VnfType::kNat});
  const orchestrator::GreedyOpticalPlacement placement;
  for (auto _ : state) {
    const auto id = dc.orchestrator().provision_chain(spec, placement);
    if (id) (void)dc.orchestrator().teardown_chain(*id);
  }
}
BENCHMARK(BM_ProvisionTeardown)->Unit(benchmark::kMicrosecond);

void BM_ChainRouting(benchmark::State& state) {
  core::DataCenter dc(config_for(2));
  (void)dc.build_clusters();
  const auto* vc = dc.clusters().clusters().front();
  orchestrator::ChainRouter router(dc.topology());
  std::vector<nfv::HostRef> hosts;
  for (auto o : vc->layer.opss) {
    if (dc.topology().ops(o).optoelectronic) hosts.emplace_back(o);
  }
  if (hosts.empty()) hosts.emplace_back(vc->layer.opss.front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        router.route(*vc, vc->layer.tors.front(), vc->layer.tors.back(), hosts));
  }
}
BENCHMARK(BM_ChainRouting)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_three_chains();
  print_chain_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
