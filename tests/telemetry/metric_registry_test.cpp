// MetricRegistry: sharded counters under concurrent writers, histogram
// bucket-edge semantics, and the sharded-merge == serial-accumulation
// property the snapshot contract promises.
#include "telemetry/metric_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace alvc::telemetry {
namespace {

TEST(CounterTest, AccumulatesAndResetsInPlace) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  Counter c;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(GaugeTest, LastWriteWinsAndAddAccumulates) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketEdges) {
  // [0, 10) in 5 buckets of width 2.
  Histogram h(0.0, 10.0, 5);
  h.record(0.0);    // lo lands in bucket 0
  h.record(1.999);  // still bucket 0
  h.record(2.0);    // bucket 1 (left-closed boundaries)
  h.record(9.999);  // last bucket
  h.record(10.0);   // hi is exclusive -> overflow
  h.record(-0.001);  // below lo -> underflow
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.buckets, (std::vector<std::uint64_t>{2, 1, 0, 0, 1}));
  EXPECT_EQ(snap.underflow, 1u);
  EXPECT_EQ(snap.overflow, 1u);
  EXPECT_EQ(snap.count, 6u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0 + 1.999 + 2.0 + 9.999 + 10.0 - 0.001);
}

TEST(HistogramTest, MeanIncludesOutOfRangeSamples) {
  Histogram h(0.0, 1.0, 2);
  h.record(4.0);  // overflow still contributes to count and sum
  h.record(2.0);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 3.0);
}

// Property: merging per-thread shards yields exactly the bucket counts a
// single-threaded accumulation of the same multiset of samples produces.
TEST(HistogramTest, ShardedMergeMatchesSerialAccumulation) {
  constexpr std::uint64_t kSeed = 20260806;
  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kPerThread = 4000;

  // Pre-generate all samples so the serial reference sees the same data.
  alvc::util::Rng rng(kSeed);
  std::vector<std::vector<double>> samples(kThreads);
  for (auto& part : samples) {
    part.reserve(kPerThread);
    // Range [-2, 14) deliberately overshoots [0, 10) on both sides so the
    // under/overflow cells participate in the property too.
    for (std::size_t i = 0; i < kPerThread; ++i) part.push_back(rng.uniform(-2.0, 14.0));
  }

  Histogram sharded(0.0, 10.0, 20);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sharded, &part = samples[t]] {
      for (double s : part) sharded.record(s);
    });
  }
  for (auto& w : workers) w.join();

  Histogram serial(0.0, 10.0, 20);
  for (const auto& part : samples) {
    for (double s : part) serial.record(s);
  }

  const HistogramSnapshot got = sharded.snapshot();
  const HistogramSnapshot want = serial.snapshot();
  EXPECT_EQ(got.buckets, want.buckets);
  EXPECT_EQ(got.underflow, want.underflow);
  EXPECT_EQ(got.overflow, want.overflow);
  EXPECT_EQ(got.count, want.count);
  // The integer cells must match exactly; the sum is a float reduction whose
  // addition order depends on thread interleaving.
  EXPECT_NEAR(got.sum, want.sum, 1e-6 * std::abs(want.sum));
}

TEST(MetricRegistryTest, HandlesAreStableAcrossLookupsAndReset) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(7);
  reg.reset();
  EXPECT_EQ(a.value(), 0u);  // zeroed in place, not reallocated
  EXPECT_EQ(&reg.counter("x.count"), &a);
  a.add(1);
  EXPECT_EQ(reg.counter("x.count").value(), 1u);
}

TEST(MetricRegistryTest, FirstHistogramRegistrationFixesBuckets) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", 0.0, 10.0, 5);
  Histogram& again = reg.histogram("h", -1.0, 99.0, 50);
  EXPECT_EQ(&h, &again);
  EXPECT_DOUBLE_EQ(again.lo(), 0.0);
  EXPECT_DOUBLE_EQ(again.hi(), 10.0);
  EXPECT_EQ(again.bucket_count(), 5u);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("m.mid").set(3.0);
  reg.histogram("b.hist", 0, 1, 2).record(0.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.counters[1].name, "z.last");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 3.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].snapshot.count, 1u);
  EXPECT_EQ(reg.metric_count(), 4u);
}

TEST(MetricRegistryTest, ConcurrentRegistrationYieldsOneMetricPerName) {
  MetricRegistry reg;
  constexpr std::size_t kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &handles, t] {
      Counter& c = reg.counter("contended.name");
      c.add();
      handles[t] = &c;
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(reg.counter("contended.name").value(), kThreads);
  EXPECT_EQ(reg.metric_count(), 1u);
}

}  // namespace
}  // namespace alvc::telemetry
