// ScopedSpan / Tracer: clock modes, nesting, and id lifecycle.
#include "telemetry/span.h"

#include <gtest/gtest.h>

#include <string>

namespace alvc::telemetry {
namespace {

TEST(TracerTest, DisabledByDefaultAndRecordsNothing) {
  Tracer tracer;
  EXPECT_EQ(tracer.mode(), ClockMode::kDisabled);
  EXPECT_FALSE(tracer.enabled());
  { ScopedSpan span(tracer, "ignored"); }
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(TracerTest, LogicalClockStampsSpans) {
  Tracer tracer;
  tracer.set_mode(ClockMode::kLogical);
  tracer.set_logical_time_s(1.0);
  {
    ScopedSpan span(tracer, "phase");
    tracer.set_logical_time_s(2.5);
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "phase");
  EXPECT_EQ(spans[0].id, 1u);
  EXPECT_EQ(spans[0].parent, 0u);  // root
  EXPECT_DOUBLE_EQ(spans[0].start_us, 1e6);
  EXPECT_DOUBLE_EQ(spans[0].end_us, 2.5e6);
  EXPECT_DOUBLE_EQ(spans[0].duration_us(), 1.5e6);
}

TEST(TracerTest, NestedSpansRecordParentAndCloseInnerFirst) {
  Tracer tracer;
  tracer.set_mode(ClockMode::kLogical);
  {
    ScopedSpan outer(tracer, "outer");
    {
      ScopedSpan inner(tracer, "inner");
      { ScopedSpan leaf(tracer, "leaf"); }
    }
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  // Completion order: leaf, inner, outer.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "outer");
  // Ids were handed out in open order; parents link the chain.
  EXPECT_EQ(spans[2].id, 1u);
  EXPECT_EQ(spans[1].parent, spans[2].id);
  EXPECT_EQ(spans[0].parent, spans[1].id);
  EXPECT_EQ(spans[2].parent, 0u);
}

TEST(TracerTest, SiblingsShareAParent) {
  Tracer tracer;
  tracer.set_mode(ClockMode::kLogical);
  {
    ScopedSpan outer(tracer, "outer");
    { ScopedSpan first(tracer, "first"); }
    { ScopedSpan second(tracer, "second"); }
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  // outer opened first, so its id is 1; both siblings point at it.
  EXPECT_EQ(spans[2].id, 1u);
  EXPECT_EQ(spans[0].parent, 1u);
  EXPECT_EQ(spans[1].parent, 1u);
  EXPECT_NE(spans[0].id, spans[1].id);
}

TEST(TracerTest, ClearRestartsIdsForReproducibleCaptures) {
  Tracer tracer;
  tracer.set_mode(ClockMode::kLogical);
  { ScopedSpan span(tracer, "a"); }
  ASSERT_EQ(tracer.spans()[0].id, 1u);
  tracer.clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.mode(), ClockMode::kLogical);  // clear keeps the mode
  { ScopedSpan span(tracer, "b"); }
  EXPECT_EQ(tracer.spans()[0].id, 1u);  // ids restart, so captures byte-match
}

TEST(TracerTest, SteadyClockProducesMonotoneSpans) {
  Tracer tracer;
  tracer.set_mode(ClockMode::kSteady);
  { ScopedSpan span(tracer, "timed"); }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].end_us, spans[0].start_us);
  EXPECT_GE(spans[0].start_us, 0.0);
}

TEST(TracerTest, ModeSwitchMidFlightDropsTheOpenSpan) {
  // A span opened while disabled must stay inert even if tracing turns on
  // before it closes (the hook checked enabled() once, at open).
  Tracer tracer;
  {
    ScopedSpan span(tracer, "opened-disabled");
    tracer.set_mode(ClockMode::kLogical);
  }
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(ClockModeTest, ToStringNamesEveryMode) {
  EXPECT_EQ(std::string(to_string(ClockMode::kDisabled)), "disabled");
  EXPECT_EQ(std::string(to_string(ClockMode::kSteady)), "steady");
  EXPECT_EQ(std::string(to_string(ClockMode::kLogical)), "logical");
}

}  // namespace
}  // namespace alvc::telemetry
