// End-to-end reproducibility: under the logical clock, two identical seeded
// control-plane runs export byte-identical NDJSON — metrics and spans. Also
// pins the exact NDJSON/CSV grammar the exporters promise.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "orchestrator/orchestrator.h"
#include "orchestrator/placement.h"
#include "sim/event_queue.h"
#include "support/fixtures.h"
#include "telemetry/export.h"
#include "telemetry/metric_registry.h"
#include "telemetry/span.h"
#include "telemetry/telemetry.h"

namespace alvc::telemetry {
namespace {

using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::OpsId;
using alvc::util::ServiceId;
using alvc::util::TenantId;

/// One deterministic control-plane scenario: build a cluster, provision a
/// chain, inject a failure, recover, tear down — all clocked by the event
/// queue so every span timestamp is simulation time.
std::string run_seeded_scenario() {
  MetricRegistry::global().reset();
  Tracer::global().clear();
  Tracer::global().set_mode(ClockMode::kLogical);
  Tracer::global().set_logical_time_s(0.0);

  ClusterFixture f;
  alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
  const alvc::orchestrator::GreedyOpticalPlacement placement;

  NfcSpec spec;
  spec.tenant = TenantId{1};
  spec.name = "chain";
  spec.bandwidth_gbps = 1.0;
  spec.service = ServiceId{0};
  spec.functions.push_back(*f.catalog.find_by_type(VnfType::kFirewall));
  spec.functions.push_back(*f.catalog.find_by_type(VnfType::kNat));

  alvc::sim::EventQueue queue;
  alvc::util::NfcId chain_id;
  queue.schedule(1.0, [&] {
    const auto id = orch.provision_chain(spec, placement);
    ASSERT_TRUE(id.has_value()) << id.error().to_string();
    chain_id = *id;
  });
  queue.schedule(2.0, [&] {
    ALVC_IGNORE_STATUS(orch.handle_ops_failure(OpsId{0}),
                       "test scenario: the counters under test record the outcome");
  });
  queue.schedule(3.0, [&] {
    ALVC_IGNORE_STATUS(orch.handle_ops_recovery(OpsId{0}),
                       "test scenario: the counters under test record the outcome");
  });
  queue.schedule(4.0, [&] {
    ALVC_IGNORE_STATUS(orch.teardown_chain(chain_id),
                       "test scenario: the counters under test record the outcome");
  });
  queue.run();

  const std::string ndjson =
      to_ndjson(MetricRegistry::global().snapshot(), Tracer::global().spans());
  Tracer::global().set_mode(ClockMode::kDisabled);
  return ndjson;
}

TEST(TelemetryDeterminismTest, TwoSeededRunsExportByteIdenticalNdjson) {
  const std::string first = run_seeded_scenario();
  const std::string second = run_seeded_scenario();
#if ALVC_TELEMETRY_ENABLED
  // Hooks compiled in: the scenario must actually have produced telemetry.
  EXPECT_FALSE(first.empty());
#endif
  // Identical either way — and an -DALVC_TELEMETRY=OFF build must agree
  // with itself just as exactly (both captures are then empty).
  EXPECT_EQ(first, second);
}

TEST(TelemetryExportTest, NdjsonGrammarIsExact) {
  MetricRegistry reg;
  reg.counter("b.count").add(3);
  reg.gauge("a.depth").set(2.0);
  Histogram& h = reg.histogram("c.lat", 0.0, 2.0, 2);
  h.record(0.5);
  h.record(1.5);
  h.record(9.0);
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{.id = 1, .parent = 0, .name = "root", .start_us = 0.0,
                             .end_us = 1.5});
  const std::string got = to_ndjson(reg.snapshot(), spans);
  EXPECT_EQ(got,
            "{\"type\":\"counter\",\"name\":\"b.count\",\"value\":3}\n"
            "{\"type\":\"gauge\",\"name\":\"a.depth\",\"value\":2}\n"
            "{\"type\":\"histogram\",\"name\":\"c.lat\",\"lo\":0,\"hi\":2,"
            "\"buckets\":[1,1],\"underflow\":0,\"overflow\":1,\"count\":3,\"sum\":11}\n"
            "{\"type\":\"span\",\"id\":1,\"parent\":0,\"name\":\"root\","
            "\"start_us\":0,\"end_us\":1.5}\n");
}

TEST(TelemetryExportTest, JsonStringsEscapeLikeIoJson) {
  std::string out;
  append_json_string(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(TelemetryExportTest, CsvCarriesHistogramColumnsOnlyForHistograms) {
  MetricRegistry reg;
  reg.counter("flows").add(2);
  Histogram& h = reg.histogram("lat", 0.0, 4.0, 2);
  h.record(1.0);
  const std::string csv = metrics_to_csv(reg.snapshot());
  std::istringstream lines(csv);
  std::string header;
  std::string counter_row;
  std::string hist_row;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, counter_row));
  ASSERT_TRUE(std::getline(lines, hist_row));
  EXPECT_EQ(header, "type,name,value,count,sum,lo,hi,underflow,overflow,buckets");
  EXPECT_EQ(counter_row.substr(0, 14), "counter,flows,");
  EXPECT_NE(hist_row.find("histogram,lat,"), std::string::npos);
  EXPECT_NE(hist_row.find("1;0"), std::string::npos);  // ';'-joined buckets
}

TEST(TelemetryExportTest, SpanCsvRoundTrip) {
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{.id = 2, .parent = 1, .name = "x", .start_us = 1.0,
                             .end_us = 2.0});
  const std::string csv = spans_to_csv(spans);
  EXPECT_NE(csv.find("id,parent,name,start_us,end_us"), std::string::npos);
  EXPECT_NE(csv.find("2,1,x,1,2"), std::string::npos);
}

TEST(TelemetryExportTest, WriteFileRoundTripsAndRejectsBadPaths) {
  const std::string path = ::testing::TempDir() + "telemetry_export_test.ndjson";
  ASSERT_TRUE(write_file(path, "{\"type\":\"counter\"}\n").is_ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"type\":\"counter\"}\n");
  std::remove(path.c_str());

  const auto bad = write_file("/nonexistent-dir/x/y.ndjson", "data");
  EXPECT_FALSE(bad.is_ok());
}

}  // namespace
}  // namespace alvc::telemetry
