// Degraded-cluster edge cases: ALs losing their last OPS, ToRs losing
// every uplink, and failure handling racing batch re-optimization on the
// parallel executor (this suite runs under the `sanitize` ctest label, so
// the race test is exercised under ThreadSanitizer in that build).
#include <gtest/gtest.h>

#include <mutex>
#include <thread>

#include "cluster/al_builder.h"
#include "cluster/cluster_manager.h"
#include "support/fixtures.h"
#include "util/executor.h"
#include "util/error.h"

namespace alvc::cluster {
namespace {

using alvc::test::ClusterFixture;
using alvc::util::ClusterId;
using alvc::util::OpsId;
using alvc::util::ServiceId;
using alvc::util::TorId;
using alvc::util::VmId;

/// Smallest possible degradable deployment: two racks, one shared OPS —
/// the AL has exactly one member and no spare exists anywhere.
struct SingleOpsFixture {
  topology::DataCenterTopology topo;
  std::vector<VmId> group;
  ClusterId cluster_id;
  VertexCoverAlBuilder builder;
  std::unique_ptr<ClusterManager> manager;

  SingleOpsFixture() {
    const auto ops = topo.add_ops(true);
    const topology::Resources cap{.cpu_cores = 8, .memory_gb = 32, .storage_gb = 256};
    for (int r = 0; r < 2; ++r) {
      const TorId tor = topo.add_tor();
      topo.connect_tor_ops(tor, ops);
      group.push_back(topo.add_vm(topo.add_server(tor, cap), ServiceId{0}));
    }
    manager = std::make_unique<ClusterManager>(topo);
    auto id = manager->create_cluster(ServiceId{0}, group, builder);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    cluster_id = *id;
  }
};

TEST(DegradedClusterTest, LastOpsOfAlFailsLeavesEmptyDegradedAl) {
  SingleOpsFixture f;
  ASSERT_EQ(f.manager->find(f.cluster_id)->layer.opss.size(), 1u);

  const auto result = f.manager->handle_ops_failure(OpsId{0});
  EXPECT_FALSE(result.has_value()) << "no spare OPS exists; repair must be infeasible";

  const auto* vc = f.manager->find(f.cluster_id);
  EXPECT_TRUE(vc->degraded);
  EXPECT_TRUE(vc->layer.opss.empty()) << "the failed OPS must not linger in the AL";
  EXPECT_TRUE(f.manager->check_invariants().empty());

  // Repairing the OPS restores the AL and clears the degraded flag.
  const auto recovered = f.manager->handle_ops_recovery(OpsId{0}, f.builder);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().to_string();
  const auto* healed = f.manager->find(f.cluster_id);
  EXPECT_FALSE(healed->degraded);
  ASSERT_EQ(healed->layer.opss.size(), 1u);
  EXPECT_EQ(healed->layer.opss.front(), OpsId{0});
  EXPECT_TRUE(f.manager->check_invariants().empty());
}

TEST(DegradedClusterTest, EveryUplinkOfTorFailingDegradesTheCluster) {
  ClusterFixture f;
  // ToR 0's only uplinks are OPS 0 and OPS 1 (see SliceFixture); cutting
  // both makes its VMs uncoverable even though the hardware is alive.
  const auto first = f.manager.handle_link_failure(TorId{0}, OpsId{0});
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  const auto second = f.manager.handle_link_failure(TorId{0}, OpsId{1});
  ASSERT_TRUE(second.has_value()) << second.error().to_string();

  const auto* vc = f.manager.find(f.cluster_id);
  EXPECT_TRUE(vc->degraded);
  EXPECT_TRUE(f.manager.check_invariants().empty());

  // One link back is enough to re-cover the rack.
  const alvc::cluster::VertexCoverAlBuilder builder;
  const auto recovered = f.manager.handle_link_recovery(TorId{0}, OpsId{0}, builder);
  ASSERT_TRUE(recovered.has_value()) << recovered.error().to_string();
  EXPECT_FALSE(f.manager.find(f.cluster_id)->degraded);
  EXPECT_TRUE(f.manager.check_invariants().empty());
}

TEST(DegradedClusterTest, OpsFailureRacingReoptimizeKeepsInvariants) {
  ClusterFixture f;
  const VertexCoverAlBuilder builder;
  alvc::util::Executor executor(4);
  // The manager requires external serialization; the interesting
  // concurrency is *inside* reoptimize_clusters, whose speculative phase
  // fans AL rebuilds out across the executor while failure/recovery events
  // keep mutating topology state between batches.
  std::mutex manager_mutex;
  const std::vector<ClusterId> ids{f.cluster_id};

  std::thread chaos([&] {
    for (int round = 0; round < 25; ++round) {
      const OpsId victim{static_cast<OpsId::value_type>(round % 2)};
      {
        const std::lock_guard<std::mutex> lock(manager_mutex);
        ALVC_IGNORE_STATUS(f.manager.handle_ops_failure(victim),
                           "chaos round: the victim may already be down");
      }
      std::this_thread::yield();
      {
        const std::lock_guard<std::mutex> lock(manager_mutex);
        ALVC_IGNORE_STATUS(f.manager.handle_ops_recovery(victim, builder),
                           "chaos round: the victim may already be back up");
      }
    }
  });
  for (int round = 0; round < 25; ++round) {
    const std::lock_guard<std::mutex> lock(manager_mutex);
    const auto costs = f.manager.reoptimize_clusters(ids, builder, &executor);
    if (costs.has_value()) {
      EXPECT_EQ(costs->size(), ids.size());
    }
    EXPECT_TRUE(f.manager.check_invariants().empty());
  }
  chaos.join();

  // Settle: recover both OPSs, then the cluster must be fully healthy.
  for (int o = 0; o < 2; ++o) {
    ALVC_IGNORE_STATUS(
        f.manager.handle_ops_recovery(OpsId{static_cast<OpsId::value_type>(o)}, builder),
        "settling: the OPS may never have gone down");
  }
  ALVC_IGNORE_STATUS(f.manager.restore_degraded_clusters(builder),
                     "the health assertions below are the oracle");
  EXPECT_FALSE(f.manager.find(f.cluster_id)->degraded);
  EXPECT_TRUE(f.manager.check_invariants().empty());
}

}  // namespace
}  // namespace alvc::cluster
