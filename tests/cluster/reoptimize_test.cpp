// AL re-optimization: churn inflates ALs; a rebuild should shrink them back
// without ever breaking coverage or exclusivity.
#include <gtest/gtest.h>

#include "cluster/cluster_manager.h"
#include "cluster/service.h"
#include "topology/builder.h"
#include "util/error.h"

namespace alvc::cluster {
namespace {

using alvc::topology::build_topology;
using alvc::topology::TopologyParams;
using alvc::util::ServerId;
using alvc::util::ServiceId;
using alvc::util::VmId;

TopologyParams params() {
  TopologyParams p;
  p.rack_count = 10;
  p.ops_count = 40;
  p.tor_ops_degree = 10;
  p.service_count = 2;
  p.seed = 91;
  return p;
}

TEST(ReoptimizeTest, NoImprovementCostsNothing) {
  auto topo = build_topology(params());
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const auto groups = group_vms_by_service(topo);
  const auto id = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(id.has_value());
  // Fresh cluster: rebuilding with the same algorithm cannot shrink it.
  const auto cost = manager.reoptimize_cluster(*id, builder);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(cost->total(), 0u);
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ReoptimizeTest, ShrinksChurnInflatedAl) {
  auto topo = build_topology(params());
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const auto groups = group_vms_by_service(topo);
  const auto id = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(id.has_value());

  // Churn: migrate many VMs around to inflate the AL.
  alvc::util::Rng rng(17);
  for (int i = 0; i < 120; ++i) {
    const auto* vc = manager.find(*id);
    if (vc->vms.empty()) break;
    const auto vm = vc->vms[rng.uniform_index(vc->vms.size())];
    const ServerId target{
        static_cast<ServerId::value_type>(rng.uniform_index(topo.server_count()))};
    ALVC_IGNORE_STATUS(manager.migrate_vm(*id, vm, target),
                       "churn: a rejected migration still leaves a valid AL");
  }
  const auto inflated = manager.find(*id)->layer.opss.size();
  const auto cost = manager.reoptimize_cluster(*id, builder);
  ASSERT_TRUE(cost.has_value()) << cost.error().to_string();
  const auto after = manager.find(*id)->layer.opss.size();
  EXPECT_LE(after, inflated);
  if (after < inflated) {
    EXPECT_GT(cost->total(), 0u);
  }
  // Coverage and invariants intact either way.
  const auto* vc = manager.find(*id);
  EXPECT_TRUE(al_covers_group(topo, vc->vms, vc->layer));
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ReoptimizeTest, RespectsOtherClustersOwnership) {
  auto topo = build_topology(params());
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  ASSERT_TRUE(manager.create_clusters_by_service(builder).has_value());
  const auto clusters = manager.clusters();
  ASSERT_EQ(clusters.size(), 2u);
  const auto id0 = clusters[0]->id;
  const auto other_al = clusters[1]->layer.opss;
  const auto cost = manager.reoptimize_cluster(id0, builder);
  ASSERT_TRUE(cost.has_value());
  // Cluster 1's AL is untouched.
  EXPECT_EQ(manager.find(clusters[1]->id)->layer.opss, other_al);
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ReoptimizeTest, UnknownClusterFails) {
  auto topo = build_topology(params());
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  EXPECT_FALSE(manager.reoptimize_cluster(alvc::util::ClusterId{9}, builder).has_value());
}

}  // namespace
}  // namespace alvc::cluster
