// Failure injection at the cluster layer: OPS failures and AL repair.
#include <gtest/gtest.h>

#include "cluster/cluster_manager.h"
#include "cluster/service.h"
#include "support/fixtures.h"
#include "topology/builder.h"

namespace alvc::cluster {
namespace {

using alvc::test::ClusterFixture;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServiceId;

TEST(OpsFailureTest, FailedOpsLeavesSwitchGraph) {
  ClusterFixture f;
  const auto edges_before = f.topo.switch_graph().edge_count();
  ASSERT_TRUE(f.topo.set_ops_failed(OpsId{1}, true).is_ok());
  EXPECT_LT(f.topo.switch_graph().edge_count(), edges_before);
  EXPECT_FALSE(f.topo.ops_usable(OpsId{1}));
  ASSERT_TRUE(f.topo.set_ops_failed(OpsId{1}, false).is_ok());
  EXPECT_EQ(f.topo.switch_graph().edge_count(), edges_before);
}

TEST(OpsFailureTest, BuildersSkipFailedOps) {
  ClusterFixture f;  // fixture already built one cluster; use a fresh manager
  alvc::test::SliceFixture fresh;
  ASSERT_TRUE(fresh.topo.set_ops_failed(OpsId{0}, true).is_ok());
  OpsOwnership ownership(fresh.topo.ops_count());
  const VertexCoverAlBuilder builder;
  const auto result = builder.build(fresh.topo, fresh.group, ownership);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  EXPECT_FALSE(result->layer.contains_ops(OpsId{0}));
}

TEST(OpsFailureTest, UnownedFailureCostsNothing) {
  ClusterFixture f;
  // Find an OPS the cluster does not own.
  OpsId free_ops = OpsId::invalid();
  for (std::size_t i = 0; i < f.topo.ops_count(); ++i) {
    const OpsId o{static_cast<OpsId::value_type>(i)};
    if (f.manager.ownership().is_free(o)) {
      free_ops = o;
      break;
    }
  }
  ASSERT_TRUE(free_ops.valid());
  const auto cost = f.manager.handle_ops_failure(free_ops);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(cost->total(), 0u);
  EXPECT_FALSE(f.topo.ops_usable(free_ops));
}

TEST(OpsFailureTest, OwnedFailureRepairsAl) {
  ClusterFixture f;
  const auto al_ops = f.cluster().layer.opss;
  ASSERT_FALSE(al_ops.empty());
  const OpsId victim = al_ops.front();
  const auto cost = f.manager.handle_ops_failure(victim);
  ASSERT_TRUE(cost.has_value()) << cost.error().to_string();
  EXPECT_GE(cost->ops_changes, 1u);
  const auto& layer = f.cluster().layer;
  EXPECT_FALSE(layer.contains_ops(victim));
  EXPECT_TRUE(f.manager.ownership().is_free(victim));
  // The AL still covers the whole group and is connected again.
  EXPECT_TRUE(al_covers_group(f.topo, f.cluster().vms, layer));
  EXPECT_TRUE(f.cluster().connected);
  EXPECT_TRUE(f.manager.check_invariants().empty());
}

TEST(OpsFailureTest, RepairInfeasibleWhenNoSpareUplinks) {
  // Minimal DC: one ToR with a single OPS uplink; kill the OPS.
  alvc::topology::DataCenterTopology topo;
  const auto o = topo.add_ops();
  const auto t = topo.add_tor();
  topo.connect_tor_ops(t, o);
  const auto s = topo.add_server(t, {});
  const auto vm = topo.add_vm(s, ServiceId{0});
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const std::vector<alvc::util::VmId> group{vm};
  ASSERT_TRUE(manager.create_cluster(ServiceId{0}, group, builder).has_value());
  const auto cost = manager.handle_ops_failure(o);
  ASSERT_FALSE(cost.has_value());
  EXPECT_EQ(cost.error().code, ErrorCode::kInfeasible);
}

TEST(OpsFailureTest, RepeatedFailuresEventuallyInfeasible) {
  ClusterFixture f;
  // Keep killing AL members; with only 4 OPSs total this must eventually
  // fail, and invariants must hold right up to that point.
  for (int round = 0; round < 4; ++round) {
    const auto al = f.cluster().layer.opss;
    if (al.empty()) break;
    const auto cost = f.manager.handle_ops_failure(al.front());
    if (!cost.has_value()) {
      EXPECT_EQ(cost.error().code, ErrorCode::kInfeasible);
      return;  // expected terminal state
    }
    EXPECT_TRUE(f.manager.check_invariants().empty());
  }
  // If all rounds somehow succeeded, the cluster must still be covered.
  EXPECT_TRUE(al_covers_group(f.topo, f.cluster().vms, f.cluster().layer));
}

TEST(OpsFailureTest, RandomFailuresOnGeneratedDcKeepInvariants) {
  alvc::topology::TopologyParams params;
  params.rack_count = 10;
  params.ops_count = 40;
  params.tor_ops_degree = 10;
  params.service_count = 3;
  params.seed = 77;
  auto topo = alvc::topology::build_topology(params);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  ASSERT_TRUE(manager.create_clusters_by_service(builder).has_value());

  alvc::util::Rng rng(5);
  std::size_t repaired = 0;
  for (int i = 0; i < 10; ++i) {
    const OpsId victim{static_cast<OpsId::value_type>(rng.uniform_index(topo.ops_count()))};
    if (!topo.ops_usable(victim)) continue;
    const auto cost = manager.handle_ops_failure(victim);
    if (cost.has_value()) ++repaired;
    const auto violations = manager.check_invariants();
    ASSERT_TRUE(violations.empty()) << violations.front();
  }
  EXPECT_GT(repaired, 0u);
}

TEST(OpsFailureTest, HandleOpsFailureIsIdempotent) {
  ClusterFixture f;
  // First report does the real work: eviction plus AL repair.
  const OpsId victim = f.cluster().layer.opss.front();
  const auto first = f.manager.handle_ops_failure(victim);
  ASSERT_TRUE(first.has_value()) << first.error().to_string();
  EXPECT_GT(first->total(), 0u);
  const auto layer_after = f.cluster().layer.opss;

  // A duplicate report of the same dead OPS is a no-op, not a second
  // eviction pass: zero cost, identical AL, invariants intact.
  const auto second = f.manager.handle_ops_failure(victim);
  ASSERT_TRUE(second.has_value()) << second.error().to_string();
  EXPECT_EQ(second->total(), 0u);
  EXPECT_EQ(f.cluster().layer.opss, layer_after);
  EXPECT_TRUE(f.manager.check_invariants().empty());
}

}  // namespace
}  // namespace alvc::cluster
