#include "cluster/al_builder.h"

#include <gtest/gtest.h>

#include <memory>

#include "cluster/service.h"
#include "topology/builder.h"
#include "util/rng.h"

namespace alvc::cluster {
namespace {

using alvc::topology::DataCenterTopology;
using alvc::topology::Resources;
using alvc::topology::TopologyParams;
using alvc::util::ErrorCode;
using alvc::util::ServerId;
using alvc::util::ServiceId;

/// The paper's Fig. 4 instance. ToRs T0..T3 model "ToR 1, 2, 3, N".
/// T0 has four incoming VM connections (V0..V3) and two OPS uplinks;
/// T1's machines (V1, V2) are multi-homed and already covered by T0;
/// T2 serves V4, V5; T3 sees only V5. Expected: stage 1 selects {T0, T2},
/// stage 2 selects one OPS per selected ToR.
struct Fig4 {
  DataCenterTopology topo;
  std::vector<VmId> group;

  Fig4() {
    using alvc::util::OpsId;
    using alvc::util::TorId;
    // OPSs O0..O3; core link O1-O2 so connectivity augmentation can bridge.
    for (int i = 0; i < 4; ++i) topo.add_ops();
    topo.connect_ops_ops(OpsId{1}, OpsId{2});
    // ToRs and uplinks.
    for (int i = 0; i < 4; ++i) topo.add_tor();
    topo.connect_tor_ops(TorId{0}, OpsId{0});
    topo.connect_tor_ops(TorId{0}, OpsId{1});
    topo.connect_tor_ops(TorId{1}, OpsId{1});
    topo.connect_tor_ops(TorId{1}, OpsId{2});
    topo.connect_tor_ops(TorId{2}, OpsId{2});
    topo.connect_tor_ops(TorId{2}, OpsId{3});
    topo.connect_tor_ops(TorId{3}, OpsId{3});
    // Servers and VMs.
    const auto s0 = topo.add_server(TorId{0}, Resources{});  // V0, V3
    const auto s1 = topo.add_server(TorId{0}, Resources{});  // V1, V2 (dual-homed to T1)
    topo.add_server_homing(s1, TorId{1});
    const auto s2 = topo.add_server(TorId{2}, Resources{});  // V4
    const auto s3 = topo.add_server(TorId{2}, Resources{});  // V5 (dual-homed to T3)
    topo.add_server_homing(s3, TorId{3});
    group.push_back(topo.add_vm(s0, ServiceId{0}));  // V0
    group.push_back(topo.add_vm(s1, ServiceId{0}));  // V1
    group.push_back(topo.add_vm(s1, ServiceId{0}));  // V2
    group.push_back(topo.add_vm(s0, ServiceId{0}));  // V3
    group.push_back(topo.add_vm(s2, ServiceId{0}));  // V4
    group.push_back(topo.add_vm(s3, ServiceId{0}));  // V5
  }
};

TEST(VertexCoverAlBuilderTest, PaperFig4SelectsMinimalTorsAndOps) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  const VertexCoverAlBuilder builder{AlBuilderOptions{.ensure_connectivity = false}};
  const auto result = builder.build(fig.topo, fig.group, ownership);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  using alvc::util::OpsId;
  using alvc::util::TorId;
  EXPECT_EQ(result->layer.tors, (std::vector<TorId>{TorId{0}, TorId{2}}));
  EXPECT_EQ(result->layer.opss, (std::vector<OpsId>{OpsId{0}, OpsId{2}}));
  EXPECT_TRUE(al_covers_group(fig.topo, fig.group, result->layer));
  EXPECT_FALSE(result->connected);  // O0 and O2 islands without augmentation
}

TEST(VertexCoverAlBuilderTest, PaperFig4ConnectivityAugmentation) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  const VertexCoverAlBuilder builder;  // ensure_connectivity = true
  const auto result = builder.build(fig.topo, fig.group, ownership);
  ASSERT_TRUE(result.has_value());
  using alvc::util::OpsId;
  EXPECT_TRUE(result->connected);
  EXPECT_EQ(result->augmented_ops, 1u);
  EXPECT_EQ(result->layer.opss, (std::vector<OpsId>{OpsId{0}, OpsId{1}, OpsId{2}}));
  EXPECT_TRUE(cluster_subgraph_connected(fig.topo, result->layer));
}

TEST(VertexCoverAlBuilderTest, EmptyGroupRejected) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  const VertexCoverAlBuilder builder;
  const auto result = builder.build(fig.topo, {}, ownership);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(VertexCoverAlBuilderTest, RespectsOwnership) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  // Another cluster owns O0 and O2; the builder must avoid them.
  using alvc::util::OpsId;
  const std::vector<OpsId> taken{OpsId{0}, OpsId{2}};
  ASSERT_TRUE(ownership.acquire(taken, ClusterId{99}).is_ok());
  const VertexCoverAlBuilder builder{AlBuilderOptions{.ensure_connectivity = false}};
  const auto result = builder.build(fig.topo, fig.group, ownership);
  ASSERT_TRUE(result.has_value());
  for (OpsId o : result->layer.opss) {
    EXPECT_TRUE(ownership.is_free(o));
  }
  EXPECT_TRUE(al_covers_group(fig.topo, fig.group, result->layer));
}

TEST(VertexCoverAlBuilderTest, InfeasibleWhenAllUplinksTaken) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  using alvc::util::OpsId;
  // T0's only uplinks are O0, O1; take both.
  const std::vector<OpsId> taken{OpsId{0}, OpsId{1}};
  ASSERT_TRUE(ownership.acquire(taken, ClusterId{99}).is_ok());
  const VertexCoverAlBuilder builder;
  const auto result = builder.build(fig.topo, fig.group, ownership);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInfeasible);
}

TEST(RandomAlBuilderTest, CoversGroupWithoutTorMinimisation) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  const RandomAlBuilder builder{/*seed=*/7, AlBuilderOptions{.ensure_connectivity = false}};
  const auto result = builder.build(fig.topo, fig.group, ownership);
  ASSERT_TRUE(result.has_value());
  // Random baseline keeps every (primary) group ToR: T0 and T2.
  EXPECT_EQ(result->layer.tors.size(), 2u);
  EXPECT_TRUE(al_covers_group(fig.topo, fig.group, result->layer));
  for (auto o : result->layer.opss) EXPECT_TRUE(ownership.is_free(o));
}

TEST(RandomAlBuilderTest, DeterministicPerSeed) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  const RandomAlBuilder a{3};
  const RandomAlBuilder b{3};
  const auto ra = a.build(fig.topo, fig.group, ownership);
  const auto rb = b.build(fig.topo, fig.group, ownership);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->layer.opss, rb->layer.opss);
}

TEST(GreedySetCoverAlBuilderTest, CoversAllGroupTors) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  const GreedySetCoverAlBuilder builder{AlBuilderOptions{.ensure_connectivity = false}};
  const auto result = builder.build(fig.topo, fig.group, ownership);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(al_covers_group(fig.topo, fig.group, result->layer));
  // All primary group ToRs retained.
  EXPECT_EQ(result->layer.tors.size(), 2u);
}

TEST(ExactAlBuilderTest, NeverWorseThanGreedyOnFig4) {
  Fig4 fig;
  OpsOwnership ownership(fig.topo.ops_count());
  const AlBuilderOptions opts{.ensure_connectivity = false};
  const VertexCoverAlBuilder greedy{opts};
  const ExactAlBuilder exact{opts};
  const auto rg = greedy.build(fig.topo, fig.group, ownership);
  const auto re = exact.build(fig.topo, fig.group, ownership);
  ASSERT_TRUE(rg.has_value());
  ASSERT_TRUE(re.has_value());
  EXPECT_LE(re->layer.opss.size(), rg->layer.opss.size());
  EXPECT_LE(re->layer.tors.size(), rg->layer.tors.size());
  EXPECT_TRUE(al_covers_group(fig.topo, fig.group, re->layer));
}

TEST(AlBuilderNamesTest, Names) {
  EXPECT_EQ(VertexCoverAlBuilder{}.name(), "vertex-cover");
  EXPECT_EQ(RandomAlBuilder{1}.name(), "random");
  EXPECT_EQ(GreedySetCoverAlBuilder{}.name(), "greedy-set-cover");
  EXPECT_EQ(ExactAlBuilder{}.name(), "exact");
  EXPECT_EQ(ResilientAlBuilder{}.name(), "resilient");
}

TEST(ResilientAlBuilderTest, EliminatesCriticalOpsWhenRedundancyExists) {
  // Two rails between two ToRs (plus ring core): the minimal AL takes one
  // rail (both OPSs critical); the resilient builder adds the second rail.
  alvc::topology::TopologyParams params;
  params.seed = 3;
  params.rack_count = 4;
  params.ops_count = 12;
  params.tor_ops_degree = 4;
  params.service_count = 1;
  params.core = alvc::topology::CoreKind::kFullMesh;  // rich core: hardening feasible
  const auto topo = alvc::topology::build_topology(params);
  const auto groups = group_vms_by_service(topo);

  OpsOwnership base_own(topo.ops_count());
  const auto base = VertexCoverAlBuilder{}.build(topo, groups[0], base_own);
  ASSERT_TRUE(base.has_value());
  const auto base_critical = critical_ops(topo, base->layer).size();

  OpsOwnership hard_own(topo.ops_count());
  const auto hardened = ResilientAlBuilder{}.build(topo, groups[0], hard_own);
  ASSERT_TRUE(hardened.has_value());
  const auto hardened_critical = critical_ops(topo, hardened->layer).size();
  EXPECT_LE(hardened_critical, base_critical);
  EXPECT_GE(hardened->layer.opss.size(), base->layer.opss.size());
  EXPECT_TRUE(al_covers_group(topo, groups[0], hardened->layer));
  EXPECT_TRUE(hardened->connected);
  // With a full-mesh core there is always a bypass: exposure must reach 0.
  EXPECT_EQ(hardened_critical, 0u);
}

TEST(ResilientAlBuilderTest, GracefulWhenNoRedundancyAvailable) {
  // One ToR, one OPS: nothing to add; the single-OPS AL stays (trivially no
  // articulation points in a 2-vertex subgraph).
  alvc::topology::DataCenterTopology topo;
  const auto o = topo.add_ops();
  const auto t = topo.add_tor();
  topo.connect_tor_ops(t, o);
  const auto s = topo.add_server(t, {});
  const auto vm = topo.add_vm(s, alvc::util::ServiceId{0});
  OpsOwnership ownership(topo.ops_count());
  const std::vector<VmId> group{vm};
  const auto result = ResilientAlBuilder{}.build(topo, group, ownership);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->layer.opss.size(), 1u);
}

class AlBuilderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlBuilderPropertyTest, AllBuildersCoverRandomGroupsAndRespectOwnership) {
  TopologyParams params;
  params.seed = GetParam();
  params.rack_count = 10;
  params.ops_count = 12;
  params.tor_ops_degree = 3;
  params.service_count = 3;
  params.dual_homing_probability = 0.3;
  const auto topo = alvc::topology::build_topology(params);
  const auto groups = group_vms_by_service(topo);

  std::vector<std::unique_ptr<AlBuilder>> builders;
  builders.push_back(std::make_unique<VertexCoverAlBuilder>());
  builders.push_back(std::make_unique<RandomAlBuilder>(GetParam()));
  builders.push_back(std::make_unique<GreedySetCoverAlBuilder>());
  builders.push_back(std::make_unique<ExactAlBuilder>());

  for (const auto& builder : builders) {
    OpsOwnership ownership(topo.ops_count());
    for (const auto& group : groups) {
      if (group.empty()) continue;
      const auto result = builder->build(topo, group, ownership);
      if (!result.has_value()) continue;  // pool exhaustion is legal
      EXPECT_TRUE(al_covers_group(topo, group, result->layer))
          << builder->name() << " failed to cover";
      for (auto o : result->layer.opss) {
        EXPECT_TRUE(ownership.is_free(o)) << builder->name() << " used owned OPS";
      }
      // Acquire so the next group sees exclusivity, as ClusterManager would.
      ASSERT_TRUE(ownership.acquire(result->layer.opss, ClusterId{0}).is_ok());
    }
  }
}

TEST_P(AlBuilderPropertyTest, VertexCoverNeverLargerThanRandomBaseline) {
  TopologyParams params;
  params.seed = GetParam() + 1000;
  params.rack_count = 12;
  params.ops_count = 16;
  params.tor_ops_degree = 4;
  params.service_count = 1;  // single big group for a clean comparison
  const auto topo = alvc::topology::build_topology(params);
  const auto groups = group_vms_by_service(topo);
  ASSERT_FALSE(groups[0].empty());

  const AlBuilderOptions opts{.ensure_connectivity = false};
  OpsOwnership fresh(topo.ops_count());
  const auto vc = VertexCoverAlBuilder{opts}.build(topo, groups[0], fresh);
  const auto rnd = RandomAlBuilder{GetParam(), opts}.build(topo, groups[0], fresh);
  ASSERT_TRUE(vc.has_value());
  ASSERT_TRUE(rnd.has_value());
  EXPECT_LE(vc->layer.opss.size(), rnd->layer.opss.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlBuilderPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ClusterSubgraphConnectedTest, TrivialCases) {
  Fig4 fig;
  AbstractionLayer empty;
  EXPECT_TRUE(cluster_subgraph_connected(fig.topo, empty));
  AbstractionLayer lone{.tors = {alvc::util::TorId{0}}, .opss = {}};
  EXPECT_TRUE(cluster_subgraph_connected(fig.topo, lone));
}

TEST(CriticalOpsTest, LinearAlHasCriticalMiddle) {
  // T0 - O0 - O1 - T1: O0 and O1 both sit on the only path.
  DataCenterTopology topo;
  using alvc::util::OpsId;
  using alvc::util::TorId;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  topo.connect_ops_ops(o0, o1);
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  AbstractionLayer layer{.tors = {t0, t1}, .opss = {o0, o1}};
  EXPECT_EQ(critical_ops(topo, layer), (std::vector<OpsId>{o0, o1}));
}

TEST(CriticalOpsTest, RedundantAlHasNone) {
  // Two parallel rails between the ToRs: no single OPS is critical.
  DataCenterTopology topo;
  using alvc::util::OpsId;
  using alvc::util::TorId;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  for (auto o : {o0, o1}) {
    topo.connect_tor_ops(t0, o);
    topo.connect_tor_ops(t1, o);
  }
  AbstractionLayer layer{.tors = {t0, t1}, .opss = {o0, o1}};
  EXPECT_TRUE(critical_ops(topo, layer).empty());
}

TEST(CriticalOpsTest, EmptyLayer) {
  DataCenterTopology topo;
  topo.add_ops();
  EXPECT_TRUE(critical_ops(topo, AbstractionLayer{}).empty());
}

TEST(AugmentConnectivityTest, ReportsFailureWhenUnbridgeable) {
  // Two ToR-OPS islands with no core links and no free bridging OPS.
  DataCenterTopology topo;
  using alvc::util::OpsId;
  using alvc::util::TorId;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  OpsOwnership ownership(topo.ops_count());
  AbstractionLayer layer{.tors = {t0, t1}, .opss = {o0, o1}};
  bool connected = true;
  const auto added = augment_layer_connectivity(topo, ownership, layer, connected);
  EXPECT_EQ(added, 0u);
  EXPECT_FALSE(connected);
}

}  // namespace
}  // namespace alvc::cluster
