#include "cluster/service.h"

#include <gtest/gtest.h>

#include "topology/builder.h"

namespace alvc::cluster {
namespace {

TEST(ServiceRegistryTest, AddAndName) {
  ServiceRegistry reg;
  const auto web = reg.add("web");
  const auto mr = reg.add("map-reduce");
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(web), "web");
  EXPECT_EQ(reg.name(mr), "map-reduce");
  EXPECT_EQ(web.index(), 0u);
  EXPECT_EQ(mr.index(), 1u);
}

TEST(ServiceRegistryTest, DefaultRegistryNames) {
  const auto reg = ServiceRegistry::make_default(10);
  EXPECT_EQ(reg.size(), 10u);
  EXPECT_EQ(reg.name(ServiceId{0}), "web");
  EXPECT_EQ(reg.name(ServiceId{7}), "streaming");
  EXPECT_EQ(reg.name(ServiceId{8}), "service-8");
}

TEST(ServiceRegistryTest, BadIdThrows) {
  const auto reg = ServiceRegistry::make_default(2);
  EXPECT_THROW((void)reg.name(ServiceId{5}), std::out_of_range);
}

TEST(GroupVmsByServiceTest, PartitionCoversEveryVmOnce) {
  alvc::topology::TopologyParams params;
  params.service_count = 5;
  const auto topo = alvc::topology::build_topology(params);
  const auto groups = group_vms_by_service(topo);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, topo.vm_count());
  // Every VM in its labelled group.
  for (const auto& g : groups) {
    for (VmId vm : g) {
      EXPECT_EQ(&g, &groups[topo.vm(vm).service.index()]);
    }
  }
}

TEST(GroupVmsByServiceTest, MinGroupsPadsEmpty) {
  alvc::topology::DataCenterTopology topo;
  const auto o = topo.add_ops();
  const auto t = topo.add_tor();
  topo.connect_tor_ops(t, o);
  const auto s = topo.add_server(t, {});
  topo.add_vm(s, ServiceId{1});
  const auto groups = group_vms_by_service(topo, 4);
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_TRUE(groups[0].empty());
  EXPECT_EQ(groups[1].size(), 1u);
  EXPECT_TRUE(groups[2].empty());
}

TEST(GroupVmsByServiceTest, EmptyTopology) {
  alvc::topology::DataCenterTopology topo;
  EXPECT_TRUE(group_vms_by_service(topo).empty());
  EXPECT_EQ(group_vms_by_service(topo, 2).size(), 2u);
}

}  // namespace
}  // namespace alvc::cluster
