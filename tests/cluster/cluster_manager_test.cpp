#include "cluster/cluster_manager.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/service.h"
#include "topology/builder.h"
#include "util/error.h"

namespace alvc::cluster {
namespace {

using alvc::topology::build_topology;
using alvc::topology::DataCenterTopology;
using alvc::topology::TopologyParams;
using alvc::util::ErrorCode;
using alvc::util::ServerId;
using alvc::util::ServiceId;

TopologyParams default_params(std::uint64_t seed = 1) {
  TopologyParams params;
  params.seed = seed;
  params.rack_count = 8;
  // Each ToR needs roughly one free uplink per cluster that covers it, so a
  // 3-service DC wants degree comfortably above 3 (see bench_fig3 for the
  // exhaustion curve).
  params.ops_count = 30;
  params.tor_ops_degree = 8;
  params.service_count = 3;
  params.core = alvc::topology::CoreKind::kRing;
  return params;
}

TEST(ClusterManagerTest, CreateClusterAcquiresOps) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  const auto id = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(id.has_value()) << id.error().to_string();
  const auto* vc = manager.find(*id);
  ASSERT_NE(vc, nullptr);
  EXPECT_FALSE(vc->layer.opss.empty());
  for (auto o : vc->layer.opss) {
    EXPECT_EQ(manager.ownership().owner(o), *id);
  }
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ClusterManagerTest, CreateAllServiceClusters) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const auto ids = manager.create_clusters_by_service(builder);
  ASSERT_TRUE(ids.has_value()) << ids.error().to_string();
  EXPECT_EQ(ids->size(), 3u);
  EXPECT_EQ(manager.cluster_count(), 3u);
  // Exclusivity: no OPS shared between clusters is implied by ownership;
  // verify via invariants.
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ClusterManagerTest, InvariantReportIsInClusterIdOrder) {
  // Regression: clusters_ is an unordered_map, so the audit walks
  // sorted_cluster_ids() — alvc_analyze's unordered-escape pass flagged the
  // raw iteration (chaos soaks diff invariant reports across runs).
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const auto ids = manager.create_clusters_by_service(builder);
  ASSERT_TRUE(ids.has_value()) << ids.error().to_string();
  ASSERT_EQ(ids->size(), 3u);
  // Fail one AL OPS per cluster out-of-band (no repair runs), so every
  // cluster contributes at least one violation.
  for (const auto id : *ids) {
    const auto* vc = manager.find(id);
    ASSERT_NE(vc, nullptr);
    ASSERT_FALSE(vc->layer.opss.empty());
    ASSERT_TRUE(topo.set_ops_failed(vc->layer.opss.front(), true).is_ok());
  }
  const auto violations = manager.check_invariants();
  ASSERT_GE(violations.size(), 3u);
  std::vector<unsigned long> seen;
  for (const auto& v : violations) {
    const auto pos = v.find("cluster ");
    if (pos == std::string::npos) continue;
    seen.push_back(std::stoul(v.substr(pos + 8)));
  }
  ASSERT_GE(seen.size(), 3u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LE(seen[i - 1], seen[i]) << violations[i - 1] << " before " << violations[i];
  }
  EXPECT_EQ(std::set<unsigned long>(seen.begin(), seen.end()).size(), 3u)
      << "every cluster should report its failed OPS";
}

TEST(ClusterManagerTest, VmCannotJoinTwoClusters) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  const auto first = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(first.has_value());
  // Second cluster claiming an overlapping VM set must fail.
  const auto second = manager.create_cluster(ServiceId{1}, groups[0], builder);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::kConflict);
}

TEST(ClusterManagerTest, DestroyReleasesOps) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  const auto id = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(id.has_value());
  const auto free_before = manager.ownership().free_count();
  ASSERT_TRUE(manager.destroy_cluster(*id).is_ok());
  EXPECT_GT(manager.ownership().free_count(), free_before);
  EXPECT_EQ(manager.ownership().free_count(), topo.ops_count());
  EXPECT_EQ(manager.find(*id), nullptr);
  EXPECT_FALSE(manager.destroy_cluster(*id).is_ok());
}

TEST(ClusterManagerTest, AddVmUnderCoveredTorIsCheap) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  // Build cluster 0 from all but one VM of group 0 whose ToR is shared
  // with another member (so its rack is already covered).
  auto group = groups[0];
  ASSERT_GE(group.size(), 2u);
  // Find a VM sharing a primary ToR with another group member.
  VmId held_out = VmId::invalid();
  for (std::size_t i = 0; i < group.size() && !held_out.valid(); ++i) {
    for (std::size_t j = 0; j < group.size(); ++j) {
      if (i != j && topo.tor_of_vm(group[i]) == topo.tor_of_vm(group[j])) {
        held_out = group[i];
        group.erase(group.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  ASSERT_TRUE(held_out.valid()) << "test topology too sparse";
  const auto id = manager.create_cluster(ServiceId{0}, group, builder);
  ASSERT_TRUE(id.has_value());
  const auto cost = manager.add_vm(*id, held_out);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(cost->flow_rules, 1u);  // one rule at the already-covered ToR
  EXPECT_EQ(cost->tor_changes, 0u);
  EXPECT_EQ(cost->ops_changes, 0u);
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ClusterManagerTest, AddVmUnderNewTorExtendsAl) {
  // Manual topology: cluster starts on rack 0; a VM on rack 1 joins.
  DataCenterTopology topo;
  using alvc::util::OpsId;
  using alvc::util::TorId;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  topo.connect_ops_ops(o0, o1);
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  const auto s0 = topo.add_server(t0, {});
  const auto s1 = topo.add_server(t1, {});
  const auto v0 = topo.add_vm(s0, ServiceId{0});
  const auto v1 = topo.add_vm(s1, ServiceId{0});

  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const std::vector<VmId> group{v0};
  const auto id = manager.create_cluster(ServiceId{0}, group, builder);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(manager.find(*id)->layer.opss.size(), 1u);

  const auto cost = manager.add_vm(*id, v1);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(cost->tor_changes, 1u);
  EXPECT_GE(cost->ops_changes, 1u);  // recruited O1
  const auto* vc = manager.find(*id);
  EXPECT_TRUE(vc->layer.contains_tor(t1));
  EXPECT_TRUE(vc->layer.contains_ops(o1));
  EXPECT_TRUE(vc->connected);
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ClusterManagerTest, AddDuplicateVmRejected) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  const auto id = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(id.has_value());
  const auto cost = manager.add_vm(*id, groups[0][0]);
  ASSERT_FALSE(cost.has_value());
  EXPECT_EQ(cost.error().code, ErrorCode::kInvalidArgument);
}

TEST(ClusterManagerTest, AddVmFromOtherClusterRejected) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  const auto a = manager.create_cluster(ServiceId{0}, groups[0], builder);
  const auto b = manager.create_cluster(ServiceId{1}, groups[1], builder);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const auto cost = manager.add_vm(*b, groups[0][0]);
  ASSERT_FALSE(cost.has_value());
  EXPECT_EQ(cost.error().code, ErrorCode::kConflict);
}

TEST(ClusterManagerTest, RemoveLastVmOfTorShrinksAl) {
  DataCenterTopology topo;
  using alvc::util::TorId;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  topo.connect_ops_ops(o0, o1);
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  const auto s0 = topo.add_server(t0, {});
  const auto s1 = topo.add_server(t1, {});
  const auto v0 = topo.add_vm(s0, ServiceId{0});
  const auto v1 = topo.add_vm(s1, ServiceId{0});

  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const std::vector<VmId> group{v0, v1};
  const auto id = manager.create_cluster(ServiceId{0}, group, builder);
  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(manager.find(*id)->layer.opss.size(), 2u);

  const auto cost = manager.remove_vm(*id, v1);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(cost->tor_changes, 1u);
  EXPECT_EQ(cost->ops_changes, 1u);  // O1 released
  const auto* vc = manager.find(*id);
  EXPECT_FALSE(vc->layer.contains_tor(t1));
  EXPECT_TRUE(manager.ownership().is_free(o1));
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ClusterManagerTest, RemoveAllVmsDissolvesAl) {
  DataCenterTopology topo;
  const auto o0 = topo.add_ops();
  const auto t0 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  const auto s0 = topo.add_server(t0, {});
  const auto v0 = topo.add_vm(s0, ServiceId{0});
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const std::vector<VmId> group{v0};
  const auto id = manager.create_cluster(ServiceId{0}, group, builder);
  ASSERT_TRUE(id.has_value());
  const auto cost = manager.remove_vm(*id, v0);
  ASSERT_TRUE(cost.has_value());
  EXPECT_TRUE(manager.find(*id)->layer.opss.empty());
  EXPECT_EQ(manager.ownership().free_count(), 1u);
}

TEST(ClusterManagerTest, RemoveUnknownVmFails) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  const auto id = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(id.has_value());
  const auto cost = manager.remove_vm(*id, groups[1][0]);
  ASSERT_FALSE(cost.has_value());
  EXPECT_EQ(cost.error().code, ErrorCode::kNotFound);
}

TEST(ClusterManagerTest, MigrateWithinRackIsFree) {
  DataCenterTopology topo;
  const auto o0 = topo.add_ops();
  const auto t0 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  const auto s0 = topo.add_server(t0, {});
  const auto s1 = topo.add_server(t0, {});
  const auto v0 = topo.add_vm(s0, ServiceId{0});
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const std::vector<VmId> group{v0};
  const auto id = manager.create_cluster(ServiceId{0}, group, builder);
  ASSERT_TRUE(id.has_value());
  const auto cost = manager.migrate_vm(*id, v0, s1);
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(cost->total(), 0u);
  EXPECT_EQ(topo.vm(v0).server, s1);
}

TEST(ClusterManagerTest, MigrateAcrossRacksUpdatesAl) {
  DataCenterTopology topo;
  using alvc::util::TorId;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  topo.connect_ops_ops(o0, o1);
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  const auto s0 = topo.add_server(t0, {});
  const auto s1 = topo.add_server(t1, {});
  const auto v0 = topo.add_vm(s0, ServiceId{0});
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const std::vector<VmId> group{v0};
  const auto id = manager.create_cluster(ServiceId{0}, group, builder);
  ASSERT_TRUE(id.has_value());
  const auto cost = manager.migrate_vm(*id, v0, s1);
  ASSERT_TRUE(cost.has_value());
  EXPECT_GE(cost->flow_rules, 2u);  // uninstall + install
  const auto* vc = manager.find(*id);
  EXPECT_TRUE(vc->layer.contains_tor(t1));
  EXPECT_FALSE(vc->layer.contains_tor(t0));  // old rack shrunk away
  EXPECT_TRUE(manager.ownership().is_free(o0));
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ClusterManagerTest, MigrateToBadServerFails) {
  auto topo = build_topology(default_params());
  ClusterManager manager(topo);
  const auto groups = group_vms_by_service(topo);
  const VertexCoverAlBuilder builder;
  const auto id = manager.create_cluster(ServiceId{0}, groups[0], builder);
  ASSERT_TRUE(id.has_value());
  const auto cost = manager.migrate_vm(*id, groups[0][0], ServerId{9999});
  ASSERT_FALSE(cost.has_value());
  EXPECT_EQ(cost.error().code, ErrorCode::kInvalidArgument);
}

TEST(ClusterManagerTest, OpsExclusivityAcrossManyClusters) {
  TopologyParams params = default_params(7);
  params.service_count = 4;
  params.ops_count = 48;
  params.tor_ops_degree = 10;
  auto topo = build_topology(params);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const auto ids = manager.create_clusters_by_service(builder);
  ASSERT_TRUE(ids.has_value());
  // Count ownership: every AL OPS owned exactly once.
  std::vector<int> owned(topo.ops_count(), 0);
  for (const auto* vc : manager.clusters()) {
    for (auto o : vc->layer.opss) ++owned[o.index()];
  }
  for (int count : owned) EXPECT_LE(count, 1);
  EXPECT_TRUE(manager.check_invariants().empty());
}

class ChurnPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnPropertyTest, InvariantsSurviveRandomChurn) {
  TopologyParams params = default_params(GetParam());
  params.rack_count = 10;
  params.ops_count = 20;
  params.service_count = 2;
  auto topo = build_topology(params);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const auto groups = group_vms_by_service(topo);
  // Seed cluster from half of group 0.
  std::vector<VmId> half(groups[0].begin(),
                         groups[0].begin() + static_cast<std::ptrdiff_t>(groups[0].size() / 2));
  std::vector<VmId> rest(groups[0].begin() + static_cast<std::ptrdiff_t>(groups[0].size() / 2),
                         groups[0].end());
  const auto id = manager.create_cluster(ServiceId{0}, half, builder);
  ASSERT_TRUE(id.has_value());

  alvc::util::Rng rng(GetParam() * 31 + 5);
  std::vector<VmId> inside = half;
  std::vector<VmId> outside = rest;
  for (int step = 0; step < 200; ++step) {
    const double action = rng.uniform01();
    if (action < 0.4 && !outside.empty()) {
      const std::size_t i = rng.uniform_index(outside.size());
      const auto cost = manager.add_vm(*id, outside[i]);
      if (cost.has_value()) {
        inside.push_back(outside[i]);
        outside.erase(outside.begin() + static_cast<std::ptrdiff_t>(i));
      }
    } else if (action < 0.7 && inside.size() > 1) {
      const std::size_t i = rng.uniform_index(inside.size());
      const auto cost = manager.remove_vm(*id, inside[i]);
      ASSERT_TRUE(cost.has_value());
      outside.push_back(inside[i]);
      inside.erase(inside.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (!inside.empty()) {
      const std::size_t i = rng.uniform_index(inside.size());
      const ServerId target{
          static_cast<ServerId::value_type>(rng.uniform_index(topo.server_count()))};
      ALVC_IGNORE_STATUS(manager.migrate_vm(*id, inside[i], target),
                         "random churn: an infeasible migration is a legal no-op");
    }
    const auto violations = manager.check_invariants();
    ASSERT_TRUE(violations.empty()) << "step " << step << ": " << violations.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace alvc::cluster
