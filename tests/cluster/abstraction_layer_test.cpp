#include "cluster/abstraction_layer.h"

#include <gtest/gtest.h>

namespace alvc::cluster {
namespace {

using alvc::util::ErrorCode;

TEST(AbstractionLayerTest, Contains) {
  AbstractionLayer layer{.tors = {TorId{1}, TorId{3}}, .opss = {OpsId{0}, OpsId{2}}};
  EXPECT_TRUE(layer.contains_tor(TorId{1}));
  EXPECT_FALSE(layer.contains_tor(TorId{2}));
  EXPECT_TRUE(layer.contains_ops(OpsId{2}));
  EXPECT_FALSE(layer.contains_ops(OpsId{1}));
  EXPECT_EQ(layer.size(), 2u);
}

TEST(OpsOwnershipTest, InitiallyAllFree) {
  OpsOwnership own(4);
  EXPECT_EQ(own.ops_count(), 4u);
  EXPECT_EQ(own.free_count(), 4u);
  EXPECT_TRUE(own.is_free(OpsId{0}));
  EXPECT_FALSE(own.owner(OpsId{0}).valid());
  EXPECT_EQ(own.free_ops().size(), 4u);
}

TEST(OpsOwnershipTest, AcquireIsAtomic) {
  OpsOwnership own(4);
  const std::vector<OpsId> first{OpsId{0}, OpsId{1}};
  ASSERT_TRUE(own.acquire(first, ClusterId{7}).is_ok());
  EXPECT_EQ(own.owner(OpsId{0}), ClusterId{7});
  EXPECT_EQ(own.free_count(), 2u);

  // Overlapping acquisition by another cluster must fail without any change.
  const std::vector<OpsId> overlap{OpsId{2}, OpsId{1}};
  const auto status = own.acquire(overlap, ClusterId{8});
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kConflict);
  EXPECT_TRUE(own.is_free(OpsId{2})) << "atomicity: OPS 2 must not be taken";
}

TEST(OpsOwnershipTest, ReacquireBySameClusterIsIdempotent) {
  OpsOwnership own(2);
  const std::vector<OpsId> set{OpsId{0}};
  ASSERT_TRUE(own.acquire(set, ClusterId{1}).is_ok());
  EXPECT_TRUE(own.acquire(set, ClusterId{1}).is_ok());
  EXPECT_EQ(own.owner(OpsId{0}), ClusterId{1});
}

TEST(OpsOwnershipTest, ReleaseOnlyOwn) {
  OpsOwnership own(3);
  const std::vector<OpsId> a{OpsId{0}};
  const std::vector<OpsId> b{OpsId{1}};
  ASSERT_TRUE(own.acquire(a, ClusterId{1}).is_ok());
  ASSERT_TRUE(own.acquire(b, ClusterId{2}).is_ok());
  // Cluster 2 tries to release OPS 0 (not its own): no-op.
  own.release(a, ClusterId{2});
  EXPECT_EQ(own.owner(OpsId{0}), ClusterId{1});
  own.release(a, ClusterId{1});
  EXPECT_TRUE(own.is_free(OpsId{0}));
}

TEST(OpsOwnershipTest, ReleaseAll) {
  OpsOwnership own(4);
  const std::vector<OpsId> mine{OpsId{0}, OpsId{2}};
  const std::vector<OpsId> other{OpsId{1}};
  ASSERT_TRUE(own.acquire(mine, ClusterId{5}).is_ok());
  ASSERT_TRUE(own.acquire(other, ClusterId{6}).is_ok());
  own.release_all(ClusterId{5});
  EXPECT_TRUE(own.is_free(OpsId{0}));
  EXPECT_TRUE(own.is_free(OpsId{2}));
  EXPECT_EQ(own.owner(OpsId{1}), ClusterId{6});
}

TEST(OpsOwnershipTest, FreeOpsListsExactlyUnowned) {
  OpsOwnership own(3);
  const std::vector<OpsId> taken{OpsId{1}};
  ASSERT_TRUE(own.acquire(taken, ClusterId{0}).is_ok());
  const auto free = own.free_ops();
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free[0], OpsId{0});
  EXPECT_EQ(free[1], OpsId{2});
}

}  // namespace
}  // namespace alvc::cluster
