// Differential harness for the parallel AL construction path.
//
// The parallel ClusterManager::build_all_clusters / reoptimize_clusters
// promise BIT-IDENTICAL output to the serial path — same clusters, same
// ids, same ALs, same ownership, same errors. This suite checks that
// promise across every AlBuilder variant and a sweep of seeded random
// topologies whose OPS pools are tight enough that service groups really
// do contend for switches (the interesting case for the
// one-AL-per-OPS invariant).
//
// Labelled `sanitize`: run it under -DALVC_SANITIZE=thread to also prove
// the fan-out itself is race-free.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/service.h"
#include "topology/builder.h"
#include "util/executor.h"

namespace alvc::cluster {
namespace {

using alvc::topology::CoreKind;
using alvc::topology::DataCenterTopology;
using alvc::topology::TopologyParams;
using alvc::util::ClusterId;
using alvc::util::Executor;
using alvc::util::OpsId;

constexpr std::uint64_t kTopologySeeds = 20;

/// Contended topologies: 4 service groups over a modest OPS pool, random
/// wiring, so parallel speculative builds frequently collide and exercise
/// the serial-rebuild fallback as well as the clean-commit path. A few of
/// the 20 seeds are infeasible on purpose — the error side of the
/// differential must match too.
TopologyParams make_params(std::uint64_t seed) {
  TopologyParams params;
  params.rack_count = 12;
  params.servers_per_rack = 3;
  params.vms_per_server = 3;
  params.ops_count = 24;
  params.tor_ops_degree = 6;
  params.core = CoreKind::kTorus2D;
  params.service_count = 4;
  params.service_skew = 0.6;
  params.dual_homing_probability = 0.1;
  params.optoelectronic_fraction = 0.5;
  params.seed = seed;
  return params;
}

std::vector<std::unique_ptr<AlBuilder>> all_builders() {
  std::vector<std::unique_ptr<AlBuilder>> builders;
  builders.push_back(std::make_unique<VertexCoverAlBuilder>());
  builders.push_back(std::make_unique<RandomAlBuilder>(/*seed=*/42));
  builders.push_back(std::make_unique<GreedySetCoverAlBuilder>());
  builders.push_back(std::make_unique<ResilientAlBuilder>());
  // Small node budget keeps exact branch-and-bound fast on these sizes.
  builders.push_back(std::make_unique<ExactAlBuilder>(AlBuilderOptions{}, /*node_budget=*/200'000));
  return builders;
}

std::string describe(const VirtualCluster& vc) {
  std::ostringstream os;
  os << "cluster " << vc.id.value() << " service " << vc.service.value() << " connected "
     << vc.connected << " vms[";
  for (auto vm : vc.vms) os << vm.value() << ",";
  os << "] tors[";
  for (auto t : vc.layer.tors) os << t.value() << ",";
  os << "] opss[";
  for (auto o : vc.layer.opss) os << o.value() << ",";
  os << "]";
  return os.str();
}

/// Full deep-equality between two managers' states: clusters (ids,
/// services, members, AL ToRs/OPSs, flags) and per-OPS ownership.
void expect_identical_state(const ClusterManager& serial, const ClusterManager& parallel,
                            const std::string& context) {
  ASSERT_EQ(serial.cluster_count(), parallel.cluster_count()) << context;
  const auto lhs = serial.clusters();
  const auto rhs = parallel.clusters();
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i]->id, rhs[i]->id) << context;
    EXPECT_EQ(lhs[i]->service, rhs[i]->service) << context;
    EXPECT_EQ(lhs[i]->vms, rhs[i]->vms) << context;
    EXPECT_EQ(lhs[i]->layer.tors, rhs[i]->layer.tors)
        << context << "\nserial:   " << describe(*lhs[i]) << "\nparallel: " << describe(*rhs[i]);
    EXPECT_EQ(lhs[i]->layer.opss, rhs[i]->layer.opss)
        << context << "\nserial:   " << describe(*lhs[i]) << "\nparallel: " << describe(*rhs[i]);
    EXPECT_EQ(lhs[i]->connected, rhs[i]->connected) << context;
    EXPECT_EQ(lhs[i]->degraded, rhs[i]->degraded) << context;
  }
  ASSERT_EQ(serial.ownership().ops_count(), parallel.ownership().ops_count()) << context;
  for (std::size_t o = 0; o < serial.ownership().ops_count(); ++o) {
    const OpsId ops{static_cast<OpsId::value_type>(o)};
    EXPECT_EQ(serial.ownership().owner(ops), parallel.ownership().owner(ops))
        << context << " OPS " << o;
  }
}

/// The paper's hard constraint, checked directly on top of the manager's
/// own invariant sweep: every OPS has at most one owner and every owner
/// lists it.
void expect_exclusive_ownership(const ClusterManager& manager, const std::string& context) {
  const auto violations = manager.check_invariants();
  EXPECT_TRUE(violations.empty()) << context << ": " << violations.front();
  std::vector<int> owners(manager.topology().ops_count(), 0);
  for (const VirtualCluster* vc : manager.clusters()) {
    for (OpsId o : vc->layer.opss) owners[o.index()] += 1;
  }
  for (std::size_t o = 0; o < owners.size(); ++o) {
    EXPECT_LE(owners[o], 1) << context << ": OPS " << o << " in more than one AL";
  }
}

class ParallelBuildDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelBuildDifferentialTest, ParallelBuildMatchesSerialForEveryBuilder) {
  Executor exec(4);
  for (const auto& builder : all_builders()) {
    DataCenterTopology serial_topo = alvc::topology::build_topology(make_params(GetParam()));
    DataCenterTopology parallel_topo = alvc::topology::build_topology(make_params(GetParam()));
    ClusterManager serial(serial_topo);
    ClusterManager parallel(parallel_topo);

    const std::string context =
        "builder=" + std::string(builder->name()) + " seed=" + std::to_string(GetParam());
    auto serial_ids = serial.create_clusters_by_service(*builder);
    BatchBuildStats stats;
    auto parallel_ids = parallel.build_all_clusters(*builder, &exec, &stats);

    ASSERT_EQ(serial_ids.has_value(), parallel_ids.has_value()) << context;
    if (!serial_ids) {
      // Same failure, same message, same (empty) side effects.
      EXPECT_EQ(serial_ids.error().to_string(), parallel_ids.error().to_string()) << context;
      expect_identical_state(serial, parallel, context);
      continue;
    }
    EXPECT_EQ(*serial_ids, *parallel_ids) << context;
    EXPECT_EQ(stats.parallel_commits + stats.serial_rebuilds, stats.groups) << context;
    expect_identical_state(serial, parallel, context);
    expect_exclusive_ownership(parallel, context);
  }
}

TEST_P(ParallelBuildDifferentialTest, BatchReoptimizeMatchesSerial) {
  Executor exec(4);
  for (const auto& builder : all_builders()) {
    DataCenterTopology serial_topo = alvc::topology::build_topology(make_params(GetParam()));
    DataCenterTopology parallel_topo = alvc::topology::build_topology(make_params(GetParam()));
    ClusterManager serial(serial_topo);
    ClusterManager parallel(parallel_topo);

    const std::string context = "reopt builder=" + std::string(builder->name()) +
                                " seed=" + std::to_string(GetParam());
    // Seed both managers with the paper's algorithm, then reoptimize with
    // the builder under test (mirrors the churn-then-reoptimize workflow).
    const VertexCoverAlBuilder seed_builder;
    auto serial_ids = serial.create_clusters_by_service(seed_builder);
    auto parallel_ids = parallel.build_all_clusters(seed_builder, &exec);
    ASSERT_EQ(serial_ids.has_value(), parallel_ids.has_value()) << context;
    if (!serial_ids) continue;  // covered by the build differential above

    std::vector<UpdateCost> serial_costs;
    alvc::util::Status serial_failure = alvc::util::Status::ok();
    for (ClusterId id : *serial_ids) {
      auto cost = serial.reoptimize_cluster(id, *builder);
      if (!cost) {
        serial_failure = cost.error();
        break;
      }
      serial_costs.push_back(*cost);
    }
    auto parallel_costs = parallel.reoptimize_clusters(*parallel_ids, *builder, &exec);

    ASSERT_EQ(serial_failure.is_ok(), parallel_costs.has_value()) << context;
    if (!serial_failure.is_ok()) {
      EXPECT_EQ(serial_failure.error().to_string(), parallel_costs.error().to_string()) << context;
    } else {
      ASSERT_EQ(serial_costs.size(), parallel_costs->size()) << context;
      for (std::size_t i = 0; i < serial_costs.size(); ++i) {
        EXPECT_EQ(serial_costs[i].flow_rules, (*parallel_costs)[i].flow_rules) << context;
        EXPECT_EQ(serial_costs[i].tor_changes, (*parallel_costs)[i].tor_changes) << context;
        EXPECT_EQ(serial_costs[i].ops_changes, (*parallel_costs)[i].ops_changes) << context;
      }
    }
    expect_identical_state(serial, parallel, context);
    expect_exclusive_ownership(parallel, context);
  }
}

/// Null executor must be the serial path, bit for bit.
TEST_P(ParallelBuildDifferentialTest, NullExecutorIsTheSerialPath) {
  const VertexCoverAlBuilder builder;
  DataCenterTopology a_topo = alvc::topology::build_topology(make_params(GetParam()));
  DataCenterTopology b_topo = alvc::topology::build_topology(make_params(GetParam()));
  ClusterManager a(a_topo);
  ClusterManager b(b_topo);
  auto a_ids = a.create_clusters_by_service(builder);
  auto b_ids = b.build_all_clusters(builder, /*executor=*/nullptr);
  ASSERT_EQ(a_ids.has_value(), b_ids.has_value());
  if (a_ids) {
    EXPECT_EQ(*a_ids, *b_ids);
  }
  expect_identical_state(a, b, "null-executor seed=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelBuildDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, kTopologySeeds + 1));

/// Thread-count sweep: the committed output must not depend on pool size
/// (1 worker, many workers, more workers than groups).
TEST(ParallelBuildThreadSweepTest, OutputIndependentOfThreadCount) {
  const VertexCoverAlBuilder builder;
  // Roomier OPS pool than make_params: the sweep needs a feasible build.
  // (Each ToR can serve at most tor_ops_degree exclusive ALs, so the
  // degree must clear the service count.)
  TopologyParams params = make_params(7);
  params.ops_count = 48;
  params.tor_ops_degree = 8;
  params.service_count = 6;
  DataCenterTopology reference_topo = alvc::topology::build_topology(params);
  ClusterManager reference(reference_topo);
  const auto reference_ids = reference.create_clusters_by_service(builder);
  ASSERT_TRUE(reference_ids.has_value());
  for (const std::size_t threads : {1u, 2u, 4u, 16u}) {
    Executor exec(threads);
    DataCenterTopology topo = alvc::topology::build_topology(params);
    ClusterManager manager(topo);
    auto ids = manager.build_all_clusters(builder, &exec);
    ASSERT_TRUE(ids.has_value()) << threads << " threads";
    EXPECT_EQ(*reference_ids, *ids) << threads << " threads";
    expect_identical_state(reference, manager, std::to_string(threads) + " threads");
  }
}

}  // namespace
}  // namespace alvc::cluster
