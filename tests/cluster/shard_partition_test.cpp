// Shard-aware ClusterManager helpers: the O(1) service and VM-owner
// indexes the million-VM control plane depends on, and the modulo cluster
// partition the ControlAgent shards by.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/al_builder.h"
#include "cluster/cluster_manager.h"
#include "support/fixtures.h"
#include "topology/builder.h"

namespace alvc::cluster {
namespace {

using alvc::test::ClusterFixture;
using alvc::util::ClusterId;
using alvc::util::ServiceId;
using alvc::util::VmId;

TEST(ShardPartitionTest, FindByServiceReturnsTheLiveClusterAndTracksDestroy) {
  ClusterFixture fx;
  const VirtualCluster* vc = fx.manager.find_by_service(ServiceId{0});
  ASSERT_NE(vc, nullptr);
  EXPECT_EQ(vc->id, fx.cluster_id);
  EXPECT_EQ(fx.manager.find_by_service(ServiceId{1}), nullptr);

  ASSERT_TRUE(fx.manager.destroy_cluster(fx.cluster_id).is_ok());
  EXPECT_EQ(fx.manager.find_by_service(ServiceId{0}), nullptr);
}

TEST(ShardPartitionTest, VmOwnerIndexTracksMembershipChanges) {
  ClusterFixture fx;
  for (VmId vm : fx.group) EXPECT_EQ(fx.manager.vm_owner(vm), fx.cluster_id);

  const VmId vm = fx.group.front();
  ASSERT_TRUE(fx.manager.remove_vm(fx.cluster_id, vm).has_value());
  EXPECT_FALSE(fx.manager.vm_owner(vm).valid());
  ASSERT_TRUE(fx.manager.add_vm(fx.cluster_id, vm).has_value());
  EXPECT_EQ(fx.manager.vm_owner(vm), fx.cluster_id);

  // A VM added to the topology after construction (index beyond the
  // ctor-sized table) is unowned until joined, then tracked.
  const auto server = fx.topo.servers().front().id;
  const VmId late = fx.topo.add_vm(server, ServiceId{0});
  EXPECT_FALSE(fx.manager.vm_owner(late).valid());
  ASSERT_TRUE(fx.manager.add_vm(fx.cluster_id, late).has_value());
  EXPECT_EQ(fx.manager.vm_owner(late), fx.cluster_id);
}

TEST(ShardPartitionTest, ShardClusterIdsPartitionTheLiveSet) {
  ClusterFixture fx;  // one cluster, id 0
  // shard_count > cluster count: only the owning shard sees it.
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const auto ids = fx.manager.shard_cluster_ids(shard, 4);
    if (shard == fx.cluster_id.value() % 4) {
      EXPECT_EQ(ids, (std::vector<ClusterId>{fx.cluster_id}));
    } else {
      EXPECT_TRUE(ids.empty()) << "shard " << shard;
    }
  }
  // Degenerate shard_count is empty, not a crash.
  EXPECT_TRUE(fx.manager.shard_cluster_ids(0, 0).empty());

  // One shard owns everything.
  EXPECT_EQ(fx.manager.shard_cluster_ids(0, 1),
            (std::vector<ClusterId>{fx.cluster_id}));
}

TEST(ShardPartitionTest, ShardsAreDisjointAndCoverEveryCluster) {
  // A bigger seeded build: several services, several clusters.
  alvc::topology::TopologyParams params;
  params.rack_count = 6;
  params.servers_per_rack = 2;
  params.vms_per_server = 2;
  params.ops_count = 16;
  params.tor_ops_degree = 6;
  params.service_count = 5;
  params.seed = 7;
  auto topo = alvc::topology::build_topology(params);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  const auto built = manager.build_all_clusters(builder);
  ASSERT_TRUE(built.has_value());
  ASSERT_GT(built->size(), 2u);

  for (const std::size_t shard_count : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    std::set<ClusterId> seen;
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      const auto ids = manager.shard_cluster_ids(shard, shard_count);
      EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
      for (ClusterId id : ids) {
        EXPECT_EQ(id.value() % shard_count, shard);
        EXPECT_TRUE(seen.insert(id).second) << "cluster in two shards";
      }
    }
    EXPECT_EQ(seen.size(), manager.cluster_count());
  }
}

alvc::topology::DataCenterTopology make_multi_cluster_topo(std::uint64_t seed) {
  alvc::topology::TopologyParams params;
  params.rack_count = 6;
  params.servers_per_rack = 2;
  params.vms_per_server = 2;
  params.ops_count = 16;
  params.tor_ops_degree = 6;
  params.service_count = 5;
  params.seed = seed;
  return alvc::topology::build_topology(params);
}

TEST(ShardPartitionTest, DegradedIndexTracksFaultAndRecoveryLifecycle) {
  auto topo = make_multi_cluster_topo(7);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  ASSERT_TRUE(manager.build_all_clusters(builder).has_value());
  EXPECT_TRUE(manager.degraded_cluster_ids().empty());

  // Fail every ToR: each populated cluster is stranded without a usable
  // AL and must land in the degraded index.
  for (std::size_t t = 0; t < topo.tor_count(); ++t) {
    ASSERT_TRUE(
        manager.handle_tor_failure(alvc::util::TorId{static_cast<std::uint32_t>(t)}, builder)
            .has_value());
  }
  const auto degraded = manager.degraded_cluster_ids();
  ASSERT_FALSE(degraded.empty());
  EXPECT_TRUE(std::is_sorted(degraded.begin(), degraded.end()));
  for (const VirtualCluster* vc : manager.clusters()) {
    const bool indexed = std::binary_search(degraded.begin(), degraded.end(), vc->id);
    EXPECT_EQ(indexed, vc->degraded) << "cluster " << vc->id.value();
  }
  EXPECT_TRUE(manager.check_invariants().empty());

  // Destroying a degraded cluster must evict it from the index too.
  const ClusterId doomed = degraded.front();
  ASSERT_TRUE(manager.destroy_cluster(doomed).is_ok());
  const auto after_destroy = manager.degraded_cluster_ids();
  EXPECT_FALSE(std::binary_search(after_destroy.begin(), after_destroy.end(), doomed));
  EXPECT_TRUE(manager.check_invariants().empty());

  // Full recovery drains the index through the restore pass.
  for (std::size_t t = 0; t < topo.tor_count(); ++t) {
    ASSERT_TRUE(
        manager.handle_tor_recovery(alvc::util::TorId{static_cast<std::uint32_t>(t)}, builder)
            .has_value());
  }
  EXPECT_TRUE(manager.degraded_cluster_ids().empty());
  EXPECT_TRUE(manager.check_invariants().empty());
}

TEST(ShardPartitionTest, HandlersReportTheClustersWhoseAlTheyExamined) {
  auto topo = make_multi_cluster_topo(9);
  ClusterManager manager(topo);
  const VertexCoverAlBuilder builder;
  ASSERT_TRUE(manager.build_all_clusters(builder).has_value());

  // A ToR failure's blast radius is exactly the clusters whose AL held the
  // ToR at entry; both sides report ascending ids.
  const alvc::util::TorId tor{0};
  const auto expected = manager.clusters_containing_tor(tor);
  ASSERT_FALSE(expected.empty());
  std::vector<ClusterId> touched;
  ASSERT_TRUE(manager.handle_tor_failure(tor, builder, &touched).has_value());
  EXPECT_EQ(touched, expected);

  // An OPS failure touches at most the exclusive owner of the OPS.
  for (std::size_t i = 0; i < manager.ownership().ops_count(); ++i) {
    const alvc::util::OpsId ops{static_cast<std::uint32_t>(i)};
    const ClusterId owner = manager.ownership().owner(ops);
    if (!owner.valid()) continue;
    std::vector<ClusterId> ops_touched;
    ASSERT_TRUE(manager.handle_ops_failure(ops, &ops_touched).has_value());
    EXPECT_EQ(ops_touched, (std::vector<ClusterId>{owner}));
    break;
  }

  // A recovery reports every degraded cluster the restore pass attempted.
  const auto degraded_before = manager.degraded_cluster_ids();
  std::vector<ClusterId> recovery_touched;
  ASSERT_TRUE(manager.handle_tor_recovery(tor, builder, &recovery_touched).has_value());
  EXPECT_EQ(recovery_touched, degraded_before);
}

TEST(ShardPartitionTest, ReoptimizeShardMatchesWholeSetReoptimize) {
  // Twin managers over twin topologies; reoptimizing shard by shard must
  // land on the same ALs as one whole-set pass (both delegate to the same
  // ordered batch path).
  alvc::topology::TopologyParams params;
  params.rack_count = 6;
  params.servers_per_rack = 2;
  params.vms_per_server = 2;
  params.ops_count = 16;
  params.tor_ops_degree = 6;
  params.service_count = 4;
  params.seed = 13;
  auto topo_a = alvc::topology::build_topology(params);
  auto topo_b = alvc::topology::build_topology(params);
  ClusterManager a(topo_a);
  ClusterManager b(topo_b);
  const VertexCoverAlBuilder builder;
  ASSERT_TRUE(a.build_all_clusters(builder).has_value());
  ASSERT_TRUE(b.build_all_clusters(builder).has_value());

  std::vector<ClusterId> all;
  for (const auto* vc : a.clusters()) all.push_back(vc->id);
  std::sort(all.begin(), all.end());
  ASSERT_TRUE(a.reoptimize_clusters(all, builder).has_value());
  for (std::size_t shard = 0; shard < 3; ++shard) {
    ASSERT_TRUE(b.reoptimize_shard(shard, 3, builder).has_value());
  }

  ASSERT_EQ(a.cluster_count(), b.cluster_count());
  for (ClusterId id : all) {
    const auto* va = a.find(id);
    const auto* vb = b.find(id);
    ASSERT_NE(va, nullptr);
    ASSERT_NE(vb, nullptr);
    EXPECT_EQ(va->layer.opss, vb->layer.opss) << "cluster " << id.value();
    EXPECT_EQ(va->layer.tors, vb->layer.tors) << "cluster " << id.value();
  }
  EXPECT_TRUE(a.check_invariants().empty());
  EXPECT_TRUE(b.check_invariants().empty());
}

}  // namespace
}  // namespace alvc::cluster
