// MigrationPlanner: hot-host relief in both execution modes, with the
// update-cost ledger pinning the paper's central ratio — an incremental
// migration touches the AL twice, a teardown-and-reprovision of a
// k-function chain touches it 2k + 2 times (3x for k = 2).
#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>
#include <vector>

#include "elastic/migration.h"
#include "faults/state_auditor.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/placement.h"
#include "support/fixtures.h"

namespace alvc::elastic {
namespace {

using alvc::faults::StateAuditor;
using alvc::nfv::HostRef;
using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::orchestrator::NetworkOrchestrator;
using alvc::test::ClusterFixture;
using alvc::util::NfcId;
using alvc::util::OpsId;
using alvc::util::ServiceId;

struct MigrationFixture : ::testing::Test, ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};
  alvc::orchestrator::GreedyOpticalPlacement placement;
  UpdateCostLedger ledger;

  NfcId provision(std::vector<VnfType> types) {
    NfcSpec spec;
    spec.name = "mig";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    for (VnfType type : types) spec.functions.push_back(*catalog.find_by_type(type));
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    return *id;
  }

  /// Deploys filler firewalls straight through the cloud manager until
  /// `host` crosses the hot threshold; returns the filler ids so tests can
  /// release them before the closing audit (raw deploys are not chain
  /// instances, and the auditor rightly calls unreleased ones orphans).
  std::vector<alvc::util::VnfInstanceId> heat(const HostRef& host, double hot) {
    const auto firewall = *catalog.find_by_type(VnfType::kFirewall);
    std::vector<alvc::util::VnfInstanceId> fillers;
    while (MigrationPlanner::utilization(orch, host) < hot) {
      auto id = orch.cloud().deploy(firewall, host);
      if (!id.has_value()) throw std::runtime_error("filler deploy failed: host cannot get hot");
      fillers.push_back(*id);
    }
    return fillers;
  }

  void release(const std::vector<alvc::util::VnfInstanceId>& fillers) {
    for (auto id : fillers) ASSERT_TRUE(orch.cloud().terminate(id).is_ok());
  }
};

TEST_F(MigrationFixture, IncrementalMoveRelievesHotHostAtTwoAlUpdates) {
  const NfcId id = provision({VnfType::kFirewall});
  const HostRef before_host = orch.chain(id)->placement.hosts[0];
  // Greedy-optical puts a fitting function on an optoelectronic router.
  ASSERT_TRUE(std::holds_alternative<OpsId>(before_host));

  MigrationPlanner planner(orch, ledger, placement);
  const auto fillers = heat(before_host, planner.policy().hot_utilization);
  ASSERT_GE(MigrationPlanner::utilization(orch, before_host), planner.policy().hot_utilization);

  EXPECT_EQ(planner.tick(0.0), 1u);
  EXPECT_EQ(planner.stats().migrations, 1u);
  const auto* chain = orch.chain(id);
  ASSERT_NE(chain, nullptr);
  EXPECT_FALSE(chain->placement.hosts[0] == before_host);
  // The fresh instance lands at scale 1.0 (the migrate contract); the
  // scaling loop re-grows it on a later tick if demand still wants it.
  EXPECT_DOUBLE_EQ(orch.cloud().lifecycle().instance(chain->instances[0]).scale, 1.0);
  EXPECT_EQ(orch.stats().vnfs_relocated, 1u);

  // The headline number: one terminate + one deploy, nothing else touches
  // the abstraction layer.
  EXPECT_EQ(ledger.totals(ActionKind::kMigration).actions, 1u);
  EXPECT_EQ(ledger.totals(ActionKind::kMigration).al_updates, 2u);
  EXPECT_DOUBLE_EQ(ledger.al_updates_per_action(ActionKind::kMigration), 2.0);

  release(fillers);
  EXPECT_TRUE(StateAuditor::audit(orch).empty());
}

TEST_F(MigrationFixture, CooldownSpacesRepeatMovesOfTheSameChain) {
  const NfcId id = provision({VnfType::kFirewall});
  MigrationPlanner planner(orch, ledger, placement);
  const auto fillers = heat(orch.chain(id)->placement.hosts[0], planner.policy().hot_utilization);
  ASSERT_EQ(planner.tick(0.0), 1u);

  // Heat the new host too: the chain is hot again, but it just moved.
  const auto more = heat(orch.chain(id)->placement.hosts[0], planner.policy().hot_utilization);
  EXPECT_EQ(planner.tick(1.0), 0u) << "cooldown must space repeat moves";
  EXPECT_EQ(planner.tick(1.0 + planner.policy().cooldown_s), 1u);
  EXPECT_EQ(planner.stats().migrations, 2u);

  release(fillers);
  release(more);
}

TEST_F(MigrationFixture, ReprovisionBaselineCostsTwoKPlusTwo) {
  const NfcId id = provision({VnfType::kFirewall, VnfType::kNat});  // k = 2
  MigrationPlanner planner(orch, ledger, placement, {}, ExecutionMode::kReprovision);
  std::vector<std::pair<NfcId, NfcId>> remaps;
  planner.set_on_reprovision([&](NfcId from, NfcId to) { remaps.emplace_back(from, to); });

  const HostRef hot_host = orch.chain(id)->placement.hosts[0];
  const auto fillers = heat(hot_host, planner.policy().hot_utilization);

  EXPECT_EQ(planner.tick(0.0), 1u);
  EXPECT_EQ(planner.stats().reprovisions, 1u);
  EXPECT_EQ(planner.stats().lost, 0u);

  // The old id is gone, a fresh chain exists, and the remap hook saw both.
  EXPECT_EQ(orch.chain(id), nullptr);
  ASSERT_EQ(remaps.size(), 1u);
  EXPECT_EQ(remaps[0].first, id);
  EXPECT_NE(orch.chain(remaps[0].second), nullptr);

  // 2 terminates + 2 deploys + slice release + slice allocate = 2k + 2.
  EXPECT_EQ(ledger.totals(ActionKind::kReprovision).actions, 1u);
  EXPECT_EQ(ledger.totals(ActionKind::kReprovision).al_updates, 6u);

  release(fillers);
  EXPECT_TRUE(StateAuditor::audit(orch).empty());
}

TEST_F(MigrationFixture, IncrementalBeatsReprovisionThreefold) {
  // Same hot-host situation handled both ways, one ledger: the measured
  // per-action AL-update ratio is the paper's >= 3x claim for k = 2.
  const NfcId inc = provision({VnfType::kFirewall, VnfType::kNat});
  MigrationPlanner planner(orch, ledger, placement);
  auto fillers = heat(orch.chain(inc)->placement.hosts[0], planner.policy().hot_utilization);
  ASSERT_EQ(planner.tick(0.0), 1u);
  release(fillers);

  planner.set_mode(ExecutionMode::kReprovision);
  fillers = heat(orch.chain(inc)->placement.hosts[0], planner.policy().hot_utilization);
  ASSERT_EQ(planner.tick(100.0), 1u);
  release(fillers);

  const double incremental = ledger.al_updates_per_action(ActionKind::kMigration);
  const double reprovision = ledger.al_updates_per_action(ActionKind::kReprovision);
  ASSERT_GT(incremental, 0.0);
  EXPECT_GE(reprovision, 3.0 * incremental)
      << "incremental=" << incremental << " reprovision=" << reprovision;
}

TEST_F(MigrationFixture, NoFeasibleTargetIsCountedNotForced) {
  // Two-function chain: with both optoelectronic routers hot (the second
  // one heated by fillers), a hot instance has nowhere optical to go and
  // the firewall *can* still fall back to a server — so instead pin the
  // chain with the electronic-only wan-optimizer, whose only alternatives
  // are the other servers, and heat those too.
  const NfcId id = provision({VnfType::kWanOptimizer});
  const HostRef home = orch.chain(id)->placement.hosts[0];
  MigrationPlanner planner(orch, ledger, placement);
  const double hot = planner.policy().hot_utilization;

  std::vector<alvc::util::VnfInstanceId> fillers;
  auto absorb = [&](std::vector<alvc::util::VnfInstanceId> more) {
    fillers.insert(fillers.end(), more.begin(), more.end());
  };
  absorb(heat(home, hot));
  for (std::size_t s = 0; s < topo.server_count(); ++s) {
    absorb(heat(HostRef{alvc::util::ServerId{static_cast<std::uint32_t>(s)}}, hot));
  }

  EXPECT_EQ(planner.tick(0.0), 0u);
  EXPECT_EQ(planner.stats().no_target, 1u);
  EXPECT_EQ(planner.stats().migrations, 0u);
  // The chain is untouched and still serving.
  ASSERT_NE(orch.chain(id), nullptr);
  EXPECT_TRUE(orch.chain(id)->placement.hosts[0] == home);

  release(fillers);
}

}  // namespace
}  // namespace alvc::elastic
