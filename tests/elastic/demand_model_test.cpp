// DemandModel: determinism, shape bounds, and the shared-waveform
// contract — the discrete schedules OverloadInjector emits and the
// continuous series DemandModel evaluates must flow from the same
// sim/waveform.h primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "elastic/demand.h"
#include "faults/fault_injector.h"
#include "nfv/catalog.h"
#include "sim/waveform.h"
#include "util/rng.h"

namespace alvc::elastic {
namespace {

using alvc::faults::LoadEvent;
using alvc::faults::OverloadInjector;
using alvc::util::NfcId;
using alvc::util::Rng;

DemandParams quiet_params() {
  DemandParams p;
  p.diurnal_amplitude = 0;
  p.flash_rate_per_s = 0;
  p.churn_amplitude = 0;
  return p;
}

TEST(DemandModelTest, UntrackedChainHasZeroDemand) {
  DemandModel model{DemandParams{}};
  EXPECT_DOUBLE_EQ(model.demand_gbps(NfcId{3}, 5.0), 0.0);
  EXPECT_FALSE(model.tracked(NfcId{3}));
}

TEST(DemandModelTest, QuietParamsHoldTheBaseline) {
  DemandModel model{quiet_params()};
  model.track(NfcId{1}, 4.0);
  for (double t = 0; t < 60.0; t += 0.7) {
    EXPECT_DOUBLE_EQ(model.demand_gbps(NfcId{1}, t), 4.0);
  }
}

TEST(DemandModelTest, SeriesIsDeterministicAndStableUnderRetrack) {
  DemandParams params;
  params.seed = 42;
  DemandModel a{params};
  DemandModel b{params};
  a.track(NfcId{7}, 2.0);
  b.track(NfcId{7}, 2.0);
  b.track(NfcId{7}, 999.0);  // re-track must not rebuild the series
  for (double t = 0; t < 40.0; t += 0.31) {
    EXPECT_DOUBLE_EQ(a.demand_gbps(NfcId{7}, t), b.demand_gbps(NfcId{7}, t));
  }
  // Distinct chains under the same seed get decorrelated substreams.
  a.track(NfcId{8}, 2.0);
  bool differs = false;
  for (double t = 0; t < 40.0 && !differs; t += 0.31) {
    differs = std::abs(a.demand_gbps(NfcId{7}, t) - a.demand_gbps(NfcId{8}, t)) > 1e-9;
  }
  EXPECT_TRUE(differs);
}

TEST(DemandModelTest, DiurnalWaveStaysInsideItsEnvelopeAndActuallyMoves) {
  DemandParams params = quiet_params();
  params.diurnal_amplitude = 1.0;
  params.diurnal_period_s = 10.0;
  DemandModel model{params};
  model.track(NfcId{1}, 3.0);
  double lo = 1e18, hi = -1e18;
  for (double t = 0; t < 20.0; t += 0.05) {
    const double d = model.demand_gbps(NfcId{1}, t);
    EXPECT_GE(d, 3.0 - 1e-9);
    EXPECT_LE(d, 6.0 + 1e-9);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // A full period was sampled, so both extremes must have been visited.
  EXPECT_NEAR(lo, 3.0, 0.1);
  EXPECT_NEAR(hi, 6.0, 0.1);
}

TEST(DemandModelTest, FlashCrowdsSpikeAboveTheDiurnalCeiling) {
  DemandParams params = quiet_params();
  params.flash_rate_per_s = 0.5;  // essentially guaranteed within the horizon
  params.flash_magnitude = 3.0;
  params.horizon_s = 60.0;
  DemandModel model{params};
  model.track(NfcId{1}, 2.0);
  double hi = 0;
  for (double t = 0; t < 60.0; t += 0.05) hi = std::max(hi, model.demand_gbps(NfcId{1}, t));
  EXPECT_GT(hi, 2.0 * (1.0 + params.flash_magnitude) - 0.5) << "no flash reached full height";
}

TEST(DemandModelTest, ChurnNoiseIsBoundedAndZeroMeanish) {
  DemandParams params = quiet_params();
  params.churn_amplitude = 0.2;
  params.churn_bucket_s = 0.5;
  DemandModel model{params};
  model.track(NfcId{1}, 10.0);
  double sum = 0;
  std::size_t n = 0;
  for (double t = 0; t < 200.0; t += 0.5) {
    const double d = model.demand_gbps(NfcId{1}, t);
    EXPECT_GE(d, 8.0 - 1e-9);
    EXPECT_LE(d, 12.0 + 1e-9);
    sum += d;
    ++n;
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 10.0, 0.5);
}

// ---- shared-waveform contract with OverloadInjector ----------------------

std::vector<alvc::nfv::NfcSpec> three_specs() {
  const auto catalog = alvc::nfv::VnfCatalog::make_default();
  alvc::nfv::NfcSpec spec;
  spec.functions = {*catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  return {spec, spec, spec};
}

TEST(SharedWaveformTest, FlashCrowdArrivalsAreBurstArrivalTimes) {
  const auto specs = three_specs();
  const auto events = OverloadInjector::flash_crowd(specs, 13.0, 0.3, 10.0, 100);
  const auto expected = alvc::sim::burst_arrival_times(specs.size(), 13.0, 0.3);
  std::size_t arrivals = 0;
  for (const LoadEvent& e : events) {
    if (!e.provision) {
      // Joint departure: last arrival + hold.
      EXPECT_DOUBLE_EQ(e.time_s, expected.back() + 10.0);
      continue;
    }
    ASSERT_LT(arrivals, expected.size());
    EXPECT_DOUBLE_EQ(e.time_s, expected[arrivals++]);
  }
  EXPECT_EQ(arrivals, expected.size());
}

TEST(SharedWaveformTest, DiurnalRampTimesComeFromTheSharedSlotMath) {
  const auto specs = three_specs();
  const double period = 20.0, horizon = 40.0;
  const auto events = OverloadInjector::diurnal_ramp(specs, period, horizon, 0);
  const double slot = alvc::sim::diurnal_slot_s(period, specs.size());
  std::vector<double> expected;
  for (std::size_t cycle = 0; cycle * period < horizon; ++cycle) {
    const double start = static_cast<double>(cycle) * period;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const double up = alvc::sim::diurnal_up_s(start, slot, i);
      const double down = alvc::sim::diurnal_down_s(start, period, slot, i);
      if (up >= horizon) break;
      expected.push_back(up);
      if (down < horizon) expected.push_back(down);
    }
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(events.size(), expected.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(events[i].time_s, expected[i]);
  }
}

TEST(SharedWaveformTest, LopriChurnPreservesTheHistoricalDrawOrder) {
  const auto specs = three_specs();
  const std::uint64_t seed = 77;
  const auto events = OverloadInjector::lopri_churn(specs, 0.4, 5.0, 40.0, seed, 0);
  // Replay the exact draw order by hand: inter-arrival draw, then the
  // spec pick from the same stream, repeated.
  Rng rng(seed);
  std::vector<std::pair<double, std::size_t>> expected;  // (arrival, spec index)
  alvc::sim::poisson_arrivals(rng, 0.4, 40.0, [&](double t) {
    expected.emplace_back(t, rng.uniform_index(specs.size()));
  });
  std::size_t arrivals = 0;
  for (const LoadEvent& e : events) {
    if (!e.provision) continue;
    ASSERT_LT(arrivals, expected.size());
    EXPECT_DOUBLE_EQ(e.time_s, expected[arrivals].first);
    EXPECT_EQ(e.spec.priority, alvc::nfv::PriorityClass::kLopri);
    ++arrivals;
  }
  EXPECT_EQ(arrivals, expected.size());
}

}  // namespace
}  // namespace alvc::elastic
