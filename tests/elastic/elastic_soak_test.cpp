// Elastic soak: 20 seeds of faults + load churn with the full elastic
// control loop (demand tracking, hysteretic scaling, hot-host migration)
// ticking on the same event queue — so scale-outs land mid-outage,
// migrations race repairs, and the StateAuditor re-checks every invariant
// (including the new instance-accounting ones: per-chain instance-count
// bounds, no orphaned instances, demand-reservation conservation) after
// every fault, load event, and controller tick.
//
// Runs in incremental mode: ChaosRunner's silent-loss accounting keys on
// stable chain ids, which incremental migration preserves by design. The
// reprovision baseline is exercised by migration_test and the bench.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/alvc.h"
#include "elastic/controller.h"
#include "faults/chaos.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::elastic {
namespace {

using alvc::faults::ChaosParams;
using alvc::faults::ChaosReport;
using alvc::faults::ChaosRunner;
using alvc::faults::FaultInjector;
using alvc::faults::OverloadInjector;
using alvc::nfv::NfcSpec;
using alvc::nfv::PriorityClass;
using alvc::nfv::VnfType;
using alvc::orchestrator::AllocationPolicy;

constexpr std::uint64_t kSeeds = 20;

NfcSpec make_spec(const core::DataCenter& dc, std::uint32_t service, double gbps,
                  PriorityClass cls) {
  NfcSpec spec;
  spec.service = alvc::util::ServiceId{service};
  spec.name = "load-" + std::to_string(service);
  spec.bandwidth_gbps = gbps;
  spec.priority = cls;
  spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                    *dc.catalog().find_by_type(VnfType::kNat)};
  return spec;
}

core::DataCenter make_qos_dc(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  auto clusters = dc.build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  dc.orchestrator().set_allocation_policy(AllocationPolicy::kPriorityDowngrade);
  // Warm-up chain within port capacity: the elastic soak needs headroom to
  // scale into — the QoS overload soak owns the saturated-fabric regime.
  ALVC_IGNORE_STATUS(
      dc.provision_chain(make_spec(dc, 0, 4.0, PriorityClass::kHipri),
                         core::PlacementAlgorithm::kGreedyOptical),
      "warm-up: capacity conflicts just mean fewer live chains");
  return dc;
}

ElasticParams make_elastic_params(std::uint64_t seed) {
  ElasticParams params;
  params.demand.seed = seed * 5 + 2;
  params.demand.horizon_s = 40.0;
  // Faster loop than the defaults so a 40 s horizon exercises every
  // branch: shorter cooldowns, and a hot threshold the small OE routers
  // actually cross once a chain scales out on them.
  params.scaling.cooldown_s = 1.0;
  // The generated optoelectronic routers hold 4 cores: a firewall+nat pair
  // fits at 2x but not beyond, so cap the target where it can still land.
  params.scaling.max_scale = 2.0;
  // A firewall+nat pair at scale 1 puts a 4-core OE router at 0.5
  // utilization; 0.6 makes hosts hot only once something scaled out.
  params.migration.hot_utilization = 0.6;
  params.migration.cooldown_s = 2.0;
  params.mode = ExecutionMode::kIncremental;
  return params;
}

TEST(ElasticSoakTest, ElasticLoopSurvivesFaultsAndChurnCleanly) {
  std::size_t total_ticks = 0;
  std::size_t total_scale_outs = 0;
  std::size_t total_scale_ins = 0;
  std::size_t total_migrations = 0;
  std::size_t total_migration_al_updates = 0;
  std::size_t total_observations = 0;
  std::size_t total_scale_al_updates = 0;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ALVC_TRACE_SEED(seed);
    auto dc = make_qos_dc(seed);
    const alvc::orchestrator::GreedyOpticalPlacement placement;
    ElasticController controller(dc.orchestrator(), placement, make_elastic_params(seed));

    ChaosParams params;
    // Gentler rates than the overload soak: chains must spend real time
    // healthy or the elastic loop has nothing to act on (it leaves
    // degraded chains to the recovery path by design). The scripted
    // whole-AL outage still blacks out a slice mid-run.
    params.schedule.ops = {.mtbf_s = 90, .mttr_s = 5};
    params.schedule.tor = {.mtbf_s = 140, .mttr_s = 4};
    params.schedule.server = {.mtbf_s = 120, .mttr_s = 4};
    params.schedule.link = {.mtbf_s = 100, .mttr_s = 4};
    params.schedule.horizon_s = 40;
    params.schedule.seed = seed;
    params.flow_rate_per_s = 20;
    params.traffic_seed = seed * 3 + 1;
    params.tick_period_s = 0.5;
    params.on_tick = [&controller](double now_s) { controller.tick(now_s); };
    const auto* vc0 = dc.clusters().clusters().front();
    if (!vc0->layer.opss.empty()) {
      params.scripted = FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
    }

    const std::vector<NfcSpec> crowd{
        make_spec(dc, 0, 4.0, PriorityClass::kHipri),
        make_spec(dc, 1, 4.0, PriorityClass::kLopri),
        make_spec(dc, 2, 4.0, PriorityClass::kHipri),
    };
    const std::vector<NfcSpec> heavy{
        make_spec(dc, 1, 4.0, PriorityClass::kHipri),
        make_spec(dc, 2, 2.0, PriorityClass::kLopri),
    };
    auto load = OverloadInjector::flash_crowd(crowd, 13.0, 0.3, 10.0, /*first_key=*/1000);
    const auto ramp = OverloadInjector::diurnal_ramp(heavy, 20.0, 40.0, /*first_key=*/2000);
    const auto churn = OverloadInjector::lopri_churn(crowd, 0.4, 5.0, 40.0, seed * 11 + 3,
                                                    /*first_key=*/3000);
    load.insert(load.end(), ramp.begin(), ramp.end());
    load.insert(load.end(), churn.begin(), churn.end());
    params.load = std::move(load);

    ChaosRunner runner(dc.orchestrator(), params);
    const ChaosReport report = runner.run();

    // The hard contract, per seed: every audit clean (instance accounting
    // included), no handler errors, no silently lost chains.
    EXPECT_EQ(report.handler_errors, 0u);
    EXPECT_EQ(report.audit_violations, 0u)
        << (report.violations.empty() ? "" : report.violations.front());
    EXPECT_EQ(report.chains_unaccounted, 0u) << "a chain was silently lost";
    EXPECT_TRUE(report.clean());
    EXPECT_GT(report.controller_ticks, 0u);

    total_ticks += controller.stats().ticks;
    total_observations += controller.stats().chain_observations;
    total_scale_outs += controller.scaling().stats().scale_outs;
    total_scale_ins += controller.scaling().stats().scale_ins;
    total_migrations += controller.migration().stats().migrations;
    total_migration_al_updates += controller.ledger().totals(ActionKind::kMigration).al_updates;
    total_scale_al_updates += controller.ledger().totals(ActionKind::kScaleOut).al_updates +
                              controller.ledger().totals(ActionKind::kScaleIn).al_updates;
  }

  // Non-vacuousness: across 20 seeds the loop must actually have scaled
  // out, scaled back in, and migrated — otherwise the soak proves nothing.
  EXPECT_GT(total_ticks, 1000u);
  EXPECT_GT(total_observations, 0u);
  EXPECT_GT(total_scale_outs, 0u) << "demand waves never forced a scale-out";
  EXPECT_GT(total_scale_ins, 0u) << "no chain ever shrank back";
  EXPECT_GT(total_migrations, 0u) << "no hot host was ever relieved";

  // Cost shape of the incremental mode, measured across every action the
  // whole soak took: in-place scaling never touches the AL, and every
  // migration touches it exactly twice.
  EXPECT_EQ(total_scale_al_updates, 0u);
  EXPECT_EQ(total_migration_al_updates, 2 * total_migrations);
}

}  // namespace
}  // namespace alvc::elastic
