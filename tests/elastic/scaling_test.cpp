// ScalingController: hysteresis, cooldown, QoS protection, and the
// fit-limited rejection path — each decision branch pinned on the shared
// slice fixture with a quiet (noise-free) demand model so the controller
// sees exactly the demand the test dials in.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/alvc.h"
#include "elastic/scaling.h"
#include "faults/state_auditor.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/placement.h"
#include "support/fixtures.h"

namespace alvc::elastic {
namespace {

using alvc::faults::StateAuditor;
using alvc::nfv::NfcSpec;
using alvc::nfv::PriorityClass;
using alvc::nfv::VnfType;
using alvc::orchestrator::AllocationPolicy;
using alvc::orchestrator::NetworkOrchestrator;
using alvc::test::ClusterFixture;
using alvc::util::NfcId;
using alvc::util::ServiceId;

/// Cluster + orchestrator + a noise-free demand model: demand for every
/// tracked chain is exactly its base, so each test dials in the demand it
/// wants to see and nothing else moves.
struct ScalingFixture : ::testing::Test, ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};
  alvc::orchestrator::GreedyOpticalPlacement placement;
  DemandModel demand{quiet_params()};
  UpdateCostLedger ledger;

  static DemandParams quiet_params() {
    DemandParams p;
    p.diurnal_amplitude = 0;
    p.flash_rate_per_s = 0;
    p.churn_amplitude = 0;
    return p;
  }

  NfcId provision(double gbps = 1.0, PriorityClass cls = PriorityClass::kHipri,
                  std::vector<VnfType> types = {VnfType::kFirewall, VnfType::kNat},
                  ServiceId service = ServiceId{0}) {
    NfcSpec spec;
    spec.name = "elastic";
    spec.service = service;
    spec.bandwidth_gbps = gbps;
    spec.priority = cls;
    for (VnfType type : types) spec.functions.push_back(*catalog.find_by_type(type));
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    return *id;
  }

  double scale_of(NfcId id) const {
    return ScalingController::chain_scale(orch, *orch.chain(id));
  }
};

TEST_F(ScalingFixture, ScaleOutTracksDemandAndCostsZeroAlUpdates) {
  const NfcId id = provision(1.0);
  demand.track(id, 2.0);  // demand = 2x the granted 1 Gbps
  ScalingController controller(orch, demand, ledger);

  EXPECT_EQ(controller.tick(0.0), 1u);
  EXPECT_DOUBLE_EQ(scale_of(id), 2.0);
  EXPECT_EQ(controller.stats().scale_outs, 1u);
  EXPECT_EQ(controller.stats().scale_ins, 0u);

  // Scaling in place re-reserves capacity but never touches instances,
  // slices, or flow rules — the cheapest elastic action by construction.
  EXPECT_EQ(ledger.totals(ActionKind::kScaleOut).actions, 1u);
  EXPECT_EQ(ledger.totals(ActionKind::kScaleOut).al_updates, 0u);
  EXPECT_EQ(ledger.totals(ActionKind::kScaleOut).flow_rule_churn, 0u);
  EXPECT_TRUE(StateAuditor::audit(orch).empty());
}

TEST_F(ScalingFixture, HysteresisBandHoldsSteady) {
  const NfcId id = provision(1.0);
  // Just above granted but under the 1.1x out-threshold: no action.
  demand.track(id, 1.05);
  ScalingController controller(orch, demand, ledger);
  EXPECT_EQ(controller.tick(0.0), 0u);
  EXPECT_DOUBLE_EQ(scale_of(id), 1.0);

  // Now at scale 2 with demand inside (0.5x, 1.1x) of served: still no
  // action in either direction — that is the hysteresis band.
  demand.forget(id);
  demand.track(id, 2.0);
  EXPECT_EQ(controller.tick(10.0), 1u);
  ASSERT_DOUBLE_EQ(scale_of(id), 2.0);
  demand.forget(id);
  demand.track(id, 1.2);  // 0.5*2 = 1.0 < 1.2 < 1.1*2 = 2.2
  EXPECT_EQ(controller.tick(20.0), 0u);
  EXPECT_DOUBLE_EQ(scale_of(id), 2.0);
}

TEST_F(ScalingFixture, CooldownDefersThenScaleInLands) {
  const NfcId id = provision(1.0);
  demand.track(id, 2.0);
  ScalingController controller(orch, demand, ledger);  // cooldown_s = 2.0
  ASSERT_EQ(controller.tick(0.0), 1u);
  ASSERT_DOUBLE_EQ(scale_of(id), 2.0);

  // Demand collapses below the scale-in threshold, but the chain acted
  // 1 s ago — the cooldown must hold the action back.
  demand.forget(id);
  demand.track(id, 0.4);
  EXPECT_EQ(controller.tick(1.0), 0u);
  EXPECT_EQ(controller.stats().skipped_cooldown, 1u);
  EXPECT_DOUBLE_EQ(scale_of(id), 2.0);

  // Past the window the scale-in goes through.
  EXPECT_EQ(controller.tick(3.0), 1u);
  EXPECT_DOUBLE_EQ(scale_of(id), 1.0);
  EXPECT_EQ(controller.stats().scale_ins, 1u);
}

// One VC backs one slice, so two concurrent chains need two services —
// a generated data center (as in the soak) provides the clusters.
TEST(ScalingQosTest, LopriScaleOutDefersWhileHipriIsImpaired) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = 8;
  config.seed = 1;
  core::DataCenter dc(config);
  ASSERT_TRUE(dc.build_clusters().has_value());
  auto& orch = dc.orchestrator();
  orch.set_allocation_policy(AllocationPolicy::kPriorityDowngrade);

  const auto provision = [&](std::uint32_t service, double gbps, PriorityClass cls) {
    NfcSpec spec;
    spec.name = "qos";
    spec.service = ServiceId{service};
    spec.bandwidth_gbps = gbps;
    spec.priority = cls;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    auto id = dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    return *id;
  };

  // HIPRI asking for more than the 10 Gbps ports carry: admitted at a
  // reduced grant under priority-downgrade — the "HIPRI impaired"
  // condition the protection watches.
  const NfcId hipri = provision(0, 16.0, PriorityClass::kHipri);
  ASSERT_LT(orch.chain(hipri)->reserved_gbps, 16.0);
  const NfcId lopri = provision(1, 1.0, PriorityClass::kLopri);

  DemandModel demand{ScalingFixture::quiet_params()};
  demand.track(lopri, 2.0);
  UpdateCostLedger ledger;

  ScalingController guarded(orch, demand, ledger);
  EXPECT_EQ(guarded.tick(0.0), 0u);
  EXPECT_EQ(guarded.stats().deferred_hipri_protect, 1u);
  EXPECT_DOUBLE_EQ(ScalingController::chain_scale(orch, *orch.chain(lopri)), 1.0);

  // Same orchestrator state, protection off: the scale-out goes through —
  // proving the deferral above was the guard, not a capacity accident.
  ScalingPolicy open;
  open.protect_hipri = false;
  ScalingController unguarded(orch, demand, ledger, open);
  EXPECT_EQ(unguarded.tick(0.0), 1u);
  EXPECT_DOUBLE_EQ(ScalingController::chain_scale(orch, *orch.chain(lopri)), 2.0);
  EXPECT_TRUE(StateAuditor::audit(orch).empty());
}

TEST_F(ScalingFixture, DegradedChainsAreLeftToTheRecoveryPath) {
  const NfcId id = provision(1.0);
  demand.track(id, 4.0);
  // Kill every OPS: the chain parks degraded with zero bandwidth.
  for (std::size_t i = 0; i < topo.ops_count(); ++i) {
    ASSERT_TRUE(
        orch.handle_ops_failure(alvc::util::OpsId{static_cast<std::uint32_t>(i)}).has_value());
  }
  ASSERT_TRUE(orch.chain(id)->degraded);

  ScalingController controller(orch, demand, ledger);
  EXPECT_EQ(controller.tick(0.0), 0u);
  EXPECT_EQ(controller.stats().skipped_degraded, 1u);
  EXPECT_EQ(controller.stats().scale_outs, 0u);
}

TEST_F(ScalingFixture, HostFitLimitsScaleOutAtomically) {
  const NfcId id = provision(1.0);
  // Target 5x firewall = 5 cores: more than any 4-core optoelectronic
  // router holds, so every per-function scale attempt must be refused
  // with the reservations untouched.
  demand.track(id, 5.0);
  ScalingController controller(orch, demand, ledger);
  EXPECT_EQ(controller.tick(0.0), 0u);
  EXPECT_EQ(controller.stats().rejected, 2u);
  EXPECT_DOUBLE_EQ(scale_of(id), 1.0);
  EXPECT_TRUE(orch.cloud().pool().is_consistent());
  EXPECT_TRUE(StateAuditor::audit(orch).empty());
}

}  // namespace
}  // namespace alvc::elastic
