// Drives the alvc_lint rule engine over the seeded fixtures: every rule
// must flag its fixture (at the expected lines) and pass the clean one.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.h"

namespace {

using alvc::lint::Finding;
using alvc::lint::lint_source;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ALVC_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::multiset<std::pair<std::string, std::size_t>> rules_and_lines(
    const std::vector<Finding>& findings) {
  std::multiset<std::pair<std::string, std::size_t>> out;
  for (const auto& f : findings) out.insert({f.rule, f.line});
  return out;
}

TEST(AlvcLintTest, FlagsNondeterministicRng) {
  const auto findings = lint_source("tests/sim/bad.cc", read_fixture("nondeterministic_rng.cc"));
  EXPECT_EQ(rules_and_lines(findings),
            (std::multiset<std::pair<std::string, std::size_t>>{
                {"nondeterministic-rng", 7},
                {"nondeterministic-rng", 8},
                {"nondeterministic-rng", 9}}));
}

TEST(AlvcLintTest, FlagsIndexArithmeticOutsideTopology) {
  const auto content = read_fixture("index_arithmetic.cc");
  const auto outside = lint_source("src/orchestrator/bad.cc", content);
  EXPECT_EQ(rules_and_lines(outside),
            (std::multiset<std::pair<std::string, std::size_t>>{{"index-arithmetic", 9}}));
  // The same code is legal where the layout contract lives.
  EXPECT_TRUE(lint_source("src/topology/fine.cc", content).empty());
  EXPECT_TRUE(lint_source("src/graph/fine.cc", content).empty());
}

TEST(AlvcLintTest, FlagsNakedVoidDiscards) {
  const auto findings = lint_source("src/sdn/bad.cc", read_fixture("naked_void.cc"));
  EXPECT_EQ(rules_and_lines(findings),
            (std::multiset<std::pair<std::string, std::size_t>>{{"naked-void", 10},
                                                                {"naked-void", 11}}));
}

TEST(AlvcLintTest, FlagsLayeringIncludeFromLowerLayers) {
  const auto content = read_fixture("layering_include.cc");
  const auto lower = lint_source("src/cluster/layering_include.cc", content);
  EXPECT_EQ(rules_and_lines(lower),
            (std::multiset<std::pair<std::string, std::size_t>>{{"layering-include", 4}}));
  // The orchestrator itself — and layers above it (io, sim, faults, core) —
  // may include orchestrator headers.
  EXPECT_TRUE(lint_source("src/orchestrator/fine.cc", content).empty());
  EXPECT_TRUE(lint_source("src/io/fine.cc", content).empty());
  EXPECT_TRUE(lint_source("src/faults/fine.cc", content).empty());
}

TEST(AlvcLintTest, FlagsRawChronoClockOutsideTelemetry) {
  const auto content = read_fixture("raw_steady_clock.cc");
  const auto outside = lint_source("src/sim/bad.cc", content);
  EXPECT_EQ(rules_and_lines(outside),
            (std::multiset<std::pair<std::string, std::size_t>>{{"raw-chrono-clock", 7},
                                                                {"raw-chrono-clock", 8}}));
  // The telemetry layer owns the clocks, and core/experiment.h wraps them
  // for benches; both read them legally.
  EXPECT_TRUE(lint_source("src/telemetry/span.cc", content).empty());
  EXPECT_TRUE(lint_source("src/core/experiment.h", content).empty());
}

TEST(AlvcLintTest, FlagsMapAdjacencyInGraphAndTopology) {
  const auto content = read_fixture("map_adjacency.cc");
  const auto in_graph = lint_source("src/graph/bad.cc", content);
  EXPECT_EQ(rules_and_lines(in_graph),
            (std::multiset<std::pair<std::string, std::size_t>>{{"map-adjacency", 10},
                                                                {"map-adjacency", 11}}));
  // The allow() comment on line 16 suppresses; other layers keep their maps
  // (cold-path registries, caches keyed by ids — not per-neighbor probes).
  EXPECT_EQ(rules_and_lines(lint_source("src/topology/bad.cc", content)),
            rules_and_lines(in_graph));
  EXPECT_TRUE(lint_source("src/orchestrator/fine.cc", content).empty());
  EXPECT_TRUE(lint_source("src/telemetry/fine.cc", content).empty());
  EXPECT_TRUE(lint_source("tests/graph/fine.cc", content).empty());
}

TEST(AlvcLintTest, FlagsRecursiveMutexAndNakedLockCalls) {
  const auto content = read_fixture("raw_lock.cc");
  const auto in_src = lint_source("src/orchestrator/bad.cc", content);
  // Line 8: std::recursive_mutex member; line 12: naked mu.lock(). The
  // try_lock/unlock pair and the RAII guard stay legal, and line 39's
  // adopt_lock handoff is suppressed by its allow() comment.
  EXPECT_EQ(rules_and_lines(in_src),
            (std::multiset<std::pair<std::string, std::size_t>>{{"raw-lock", 8},
                                                                {"raw-lock", 12}}));
  // The rule is scoped to src/: tests may drive mutexes by hand.
  EXPECT_TRUE(lint_source("tests/util/fine.cc", content).empty());
}

TEST(AlvcLintTest, TelemetryIsBelowTheOrchestrator) {
  const auto findings =
      lint_source("src/telemetry/bad.cc", "#include \"orchestrator/orchestrator.h\"\n");
  EXPECT_EQ(rules_and_lines(findings),
            (std::multiset<std::pair<std::string, std::size_t>>{{"layering-include", 1}}));
}

TEST(AlvcLintTest, ElasticIsAboveEveryOtherSrcLayer) {
  const std::string content = "#include \"elastic/controller.h\"\n";
  // No src/ layer — not even the application-rank ones — may depend on the
  // elastic loop; it is wired in from outside.
  for (const char* path : {"src/core/bad.cc", "src/faults/bad.cc", "src/orchestrator/bad.cc",
                           "src/util/bad.cc"}) {
    EXPECT_EQ(rules_and_lines(lint_source(path, content)),
              (std::multiset<std::pair<std::string, std::size_t>>{{"elastic-include", 1}}))
        << path;
  }
  // The subsystem's own files and out-of-src consumers include it freely.
  EXPECT_TRUE(lint_source("src/elastic/controller.cpp", content).empty());
  EXPECT_TRUE(lint_source("tests/elastic/fine.cc", content).empty());
  EXPECT_TRUE(lint_source("bench/bench_elastic_scaling.cpp", content).empty());
}

TEST(AlvcLintTest, PassesCleanFixture) {
  const auto findings = lint_source("src/util/clean.cc", read_fixture("clean.cc"));
  EXPECT_TRUE(findings.empty()) << alvc::lint::to_string(findings.front());
}

TEST(AlvcLintTest, ThrowAssertionsAreExemptFromNakedVoid) {
  // EXPECT_THROW((void)f(), ...) needs the cast; the value never exists.
  const auto findings = lint_source(
      "tests/util/x.cc", "EXPECT_THROW((void)f(), std::out_of_range);\nASSERT_THROW((void)g(), E);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AlvcLintTest, IncludePathsSurviveStringStripping) {
  // The layering rule must still see the quoted path on #include lines.
  const auto findings =
      lint_source("src/util/x.cc", "#include \"orchestrator/orchestrator.h\"\n");
  EXPECT_EQ(rules_and_lines(findings),
            (std::multiset<std::pair<std::string, std::size_t>>{{"layering-include", 1}}));
}

TEST(AlvcLintTest, SuppressionIsPerRule) {
  // An allow() for one rule must not silence another on the same line.
  const auto findings = lint_source(
      "src/sdn/bad.cc", "void f() { (void)g(); }  // alvc-lint: allow(nondeterministic-rng)\n");
  EXPECT_EQ(rules_and_lines(findings),
            (std::multiset<std::pair<std::string, std::size_t>>{{"naked-void", 1}}));
}

TEST(AlvcLintTest, StripsBlockCommentsAcrossLines) {
  const auto findings = lint_source("src/util/x.cc", "/* rand( spans\n lines rand( */\nint x;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(AlvcLintTest, FindingFormatIsPathLineRule) {
  const auto findings = lint_source("src/sdn/bad.cc", "void f() { (void)g(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  const auto text = alvc::lint::to_string(findings.front());
  EXPECT_NE(text.find("src/sdn/bad.cc:1: [naked-void]"), std::string::npos) << text;
}

}  // namespace
