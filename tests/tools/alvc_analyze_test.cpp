// Drives the alvc_analyze passes over the seeded fixtures: each pass must
// flag its true positives at the expected lines, honor allow() waivers, and
// stay silent on the clean fixture. Fixtures are fed under synthetic src/
// paths because the layering pass keys off the directory layout.
#include <cstddef>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analyze.h"
#include "gtest/gtest.h"

namespace {

using alvc::analyze::Analyzer;
using alvc::analyze::Finding;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(ALVC_ANALYZE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::multiset<std::pair<std::string, std::size_t>> passes_and_lines(
    const std::vector<Finding>& findings) {
  std::multiset<std::pair<std::string, std::size_t>> out;
  for (const auto& f : findings) out.insert({f.pass, f.line});
  return out;
}

TEST(AlvcAnalyzeTest, DetectsSingleTuLockCycle) {
  Analyzer analyzer;
  analyzer.add_source("src/util/lock_cycle.cc", read_fixture("lock_cycle.cc"));
  const auto result = analyzer.run();
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].pass, "lock-cycle");
  EXPECT_NE(result.findings[0].message.find("Accounts::audit_mu"), std::string::npos)
      << result.findings[0].message;
  EXPECT_NE(result.findings[0].message.find("Accounts::ledger_mu"), std::string::npos);
  EXPECT_EQ(result.stats.cycles, 1u);
  // Both orders made it into the exported graph.
  EXPECT_EQ(result.edges.size(), 2u);
}

TEST(AlvcAnalyzeTest, CrossTuCycleNeedsTheWholeProgramLink) {
  {
    Analyzer half;
    half.add_source("src/util/pool.cc", read_fixture("lock_cycle_xtu_a.cc"));
    const auto result = half.run();
    EXPECT_TRUE(result.findings.empty())
        << alvc::analyze::to_string(result.findings.front());
  }
  Analyzer analyzer;
  analyzer.add_source("src/util/pool.cc", read_fixture("lock_cycle_xtu_a.cc"));
  analyzer.add_source("src/util/registry.cc", read_fixture("lock_cycle_xtu_b.cc"));
  const auto result = analyzer.run();
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].pass, "lock-cycle");
  EXPECT_NE(result.findings[0].message.find("Pool::pool_mu"), std::string::npos)
      << result.findings[0].message;
  EXPECT_NE(result.findings[0].message.find("Registry::registry_mu"), std::string::npos);
}

TEST(AlvcAnalyzeTest, FlagsBlockingCallsWhileLocked) {
  Analyzer analyzer;
  analyzer.add_source("src/util/worker.cc", read_fixture("blocked_while_held.cc"));
  const auto result = analyzer.run();
  // Line 15: sleep under lock. Line 43: cv.wait with a second mutex pinned.
  // The single-lock cv.wait (line 20) and unlock-then-sleep (line 26) are
  // legal; line 31 is waived by its allow() comment.
  EXPECT_EQ(passes_and_lines(result.findings),
            (std::multiset<std::pair<std::string, std::size_t>>{
                {"lock-held-blocking", 15}, {"lock-held-blocking", 43}}));
  EXPECT_EQ(passes_and_lines(result.suppressed),
            (std::multiset<std::pair<std::string, std::size_t>>{
                {"lock-held-blocking", 31}}));
}

TEST(AlvcAnalyzeTest, FlagsUnorderedIterationEscapes) {
  Analyzer analyzer;
  analyzer.add_source("src/util/exporter.cc", read_fixture("unordered_escape.cc"));
  const auto result = analyzer.run();
  // Line 15: member map escapes in hash order. Line 47: local map ditto.
  // dump_sorted (sort after the loop) and total (commutative sink) are
  // legal; line 36 is waived by its allow() comment.
  EXPECT_EQ(passes_and_lines(result.findings),
            (std::multiset<std::pair<std::string, std::size_t>>{
                {"unordered-escape", 15}, {"unordered-escape", 47}}));
  EXPECT_EQ(passes_and_lines(result.suppressed),
            (std::multiset<std::pair<std::string, std::size_t>>{
                {"unordered-escape", 36}}));
}

TEST(AlvcAnalyzeTest, FlagsUpwardLayerCalls) {
  Analyzer analyzer;
  analyzer.add_source("src/cluster/layering_call.cc", read_fixture("layering_call.cc"));
  analyzer.add_source("src/orchestrator/layering_callee.cc",
                      read_fixture("layering_callee.cc"));
  const auto result = analyzer.run();
  // Line 18: qualified upward call. Line 26: unqualified call resolving
  // uniquely into the orchestrator layer. The downward call (line 22) is
  // legal; line 30 is waived.
  EXPECT_EQ(passes_and_lines(result.findings),
            (std::multiset<std::pair<std::string, std::size_t>>{
                {"layering-call", 18}, {"layering-call", 26}}));
  EXPECT_EQ(passes_and_lines(result.suppressed),
            (std::multiset<std::pair<std::string, std::size_t>>{
                {"layering-call", 30}}));
}

TEST(AlvcAnalyzeTest, CleanFixtureHasNoFindings) {
  Analyzer analyzer;
  analyzer.add_source("src/util/ledger.cc", read_fixture("clean.cc"));
  const auto result = analyzer.run();
  EXPECT_TRUE(result.findings.empty())
      << alvc::analyze::to_string(result.findings.front());
  EXPECT_TRUE(result.suppressed.empty());
  // Consistent nesting still shows up as one (acyclic) edge.
  ASSERT_EQ(result.edges.size(), 1u);
  EXPECT_EQ(result.edges[0].from, "Ledger::first_mu");
  EXPECT_EQ(result.edges[0].to, "Ledger::second_mu");
  EXPECT_EQ(result.stats.cycles, 0u);
}

TEST(AlvcAnalyzeTest, StatsCountTheModel) {
  Analyzer analyzer;
  analyzer.add_source("src/util/lock_cycle.cc", read_fixture("lock_cycle.cc"));
  analyzer.add_source("src/util/ledger.cc", read_fixture("clean.cc"));
  const auto result = analyzer.run();
  EXPECT_EQ(result.stats.tus, 2u);
  EXPECT_EQ(result.stats.mutexes, 4u);
  EXPECT_GE(result.stats.functions, 7u);
  EXPECT_GE(result.stats.lock_sites, 9u);
  EXPECT_GT(result.stats.lines, 0u);
}

TEST(AlvcAnalyzeTest, FindingFormatIsPathLinePass) {
  Finding finding;
  finding.file = "src/util/worker.cc";
  finding.line = 15;
  finding.pass = "lock-held-blocking";
  finding.message = "blocking call";
  EXPECT_EQ(alvc::analyze::to_string(finding),
            "src/util/worker.cc:15: [lock-held-blocking] blocking call");
}

}  // namespace
