// Fixture (pair with lock_cycle_xtu_a.cc): the other half of the cross-TU
// cycle. Registry::flush holds registry_mu and calls refill_pool(), which
// the first TU implements by taking Pool::pool_mu.
#include <mutex>

struct Registry {
  std::mutex registry_mu;
  void flush();
};

void refill_pool();  // defined in lock_cycle_xtu_a.cc

void Registry::flush() {
  std::lock_guard<std::mutex> g(registry_mu);
  refill_pool();
}

Registry g_registry;

void touch_registry() {
  g_registry.flush();
}
