// Fixture: upward calls in the layer ladder. Fed to the analyzer under the
// path src/cluster/layering_call.cc, so cluster (rank 4) is the caller
// layer: calling down into graph is legal, calling up into the
// orchestrator — by qualified name or via a uniquely resolved free
// function — is not.
namespace alvc::orchestrator {
void replan();
}

namespace alvc::graph {
void relabel();
}

namespace alvc::cluster {

struct Manager {
  void rebuild() {
    alvc::orchestrator::replan();
  }

  void rebuild_down() {
    alvc::graph::relabel();  // downward call: legal
  }

  void rebuild_unqualified() {
    replan_everything();  // resolves uniquely into src/orchestrator: flagged
  }

  void rebuild_waived() {
    alvc::orchestrator::replan();  // alvc-analyze: allow(layering-call) — bootstrap shim, removed with issue #12
  }
};

}  // namespace alvc::cluster
