// Fixture (pair with lock_cycle_xtu_b.cc): half of a cross-TU lock-order
// cycle. Pool::drain holds pool_mu and calls touch_registry(), which the
// other TU implements by taking Registry::registry_mu. Analyzed alone this
// TU is clean — the cycle only exists after the whole-program link.
#include <mutex>

struct Pool {
  std::mutex pool_mu;
  void drain();
};

void touch_registry();  // defined in lock_cycle_xtu_b.cc

void Pool::drain() {
  std::lock_guard<std::mutex> g(pool_mu);
  touch_registry();
}

Pool g_pool;

void refill_pool() {
  std::lock_guard<std::mutex> g(g_pool.pool_mu);
}
