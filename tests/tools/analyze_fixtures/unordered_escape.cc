// Fixture: hash-order escapes. Iterating an unordered container is fine
// until the visit order reaches an order-preserving sink with no sort at
// the escape point.
#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

struct Exporter {
  std::unordered_map<int, std::string> rows;

  std::vector<std::string> dump() const {
    std::vector<std::string> out;
    for (const auto& [id, row] : rows) {
      out.push_back(row);
    }
    return out;
  }

  std::vector<std::string> dump_sorted() const {
    std::vector<std::string> out;
    for (const auto& [id, row] : rows) out.push_back(row);
    std::sort(out.begin(), out.end());  // sorted at the escape point: legal
    return out;
  }

  std::size_t total() const {
    std::size_t n = 0;
    for (const auto& [id, row] : rows) n += row.size();  // commutative: legal
    return n;
  }

  std::vector<std::string> dump_waived() const {
    std::vector<std::string> out;
    for (const auto& [id, row] : rows) {  // alvc-analyze: allow(unordered-escape) — consumer re-sorts
      out.push_back(row);
    }
    return out;
  }
};

std::vector<int> local_escape() {
  std::unordered_map<int, int> seen;
  seen[1] = 2;
  std::vector<int> out;
  for (const auto& [k, v] : seen) out.push_back(k);
  return out;
}
