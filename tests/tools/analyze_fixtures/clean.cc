// Fixture: a well-behaved TU — consistent lock order everywhere, atomic
// multi-acquisition via scoped_lock, blocking only after unlock, and only
// ordered containers escaping. Must produce zero findings.
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

struct Ledger {
  std::mutex first_mu;
  std::mutex second_mu;
  std::map<int, int> entries;

  void nested_consistent() {
    std::lock_guard<std::mutex> a(first_mu);
    std::lock_guard<std::mutex> b(second_mu);
  }

  void also_consistent() {
    std::lock_guard<std::mutex> a(first_mu);
    std::lock_guard<std::mutex> b(second_mu);
  }

  void atomic_pair() {
    std::scoped_lock both(first_mu, second_mu);  // std::lock: no ordering edge
  }

  void unlock_then_sleep() {
    std::unique_lock<std::mutex> lk(first_mu);
    lk.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::vector<int> ordered_dump() const {
    std::vector<int> out;
    for (const auto& [k, v] : entries) out.push_back(v);  // std::map: stable
    return out;
  }
};
