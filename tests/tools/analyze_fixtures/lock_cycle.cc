// Fixture: a single-TU lock-order cycle. post() orders ledger -> audit,
// reconcile() orders audit -> ledger; the two edges close a cycle.
#include <mutex>

struct Accounts {
  std::mutex ledger_mu;
  std::mutex audit_mu;

  void post() {
    std::lock_guard<std::mutex> a(ledger_mu);
    std::lock_guard<std::mutex> b(audit_mu);
  }

  void reconcile() {
    std::lock_guard<std::mutex> b(audit_mu);
    std::lock_guard<std::mutex> a(ledger_mu);
  }
};
