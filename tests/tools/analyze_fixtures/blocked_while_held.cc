// Fixture: blocking calls under a held lock. The single-lock cv.wait idiom
// and unlock-before-sleep stay legal; sleeping or double-lock waiting with
// a mutex pinned is flagged.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

struct Worker {
  std::mutex work_mu;
  std::condition_variable cv;

  void nap() {
    std::lock_guard<std::mutex> g(work_mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  void idle() {
    std::unique_lock<std::mutex> lk(work_mu);
    cv.wait(lk);  // one lock held: the cv releases it — legal idiom
  }

  void unlock_then_nap() {
    std::unique_lock<std::mutex> lk(work_mu);
    lk.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // lock released
  }

  void nap_waived() {
    std::lock_guard<std::mutex> g(work_mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // alvc-analyze: allow(lock-held-blocking) — drain throttle, held < 1us
  }
};

struct TwoLockWaiter {
  std::mutex first_mu;
  std::mutex second_mu;
  std::condition_variable cv2;

  void bad_wait() {
    std::unique_lock<std::mutex> a(first_mu);
    std::unique_lock<std::mutex> b(second_mu);
    cv2.wait(b);  // releases second_mu but keeps first_mu pinned
  }
};
