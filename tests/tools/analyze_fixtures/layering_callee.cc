// Fixture (pair with layering_call.cc): fed to the analyzer under the path
// src/orchestrator/layering_callee.cc so replan_everything() resolves as an
// orchestrator-layer function.
namespace alvc::orchestrator {

void replan_everything() {}

}  // namespace alvc::orchestrator
