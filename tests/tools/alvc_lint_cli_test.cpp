// End-to-end coverage of the alvc_lint driver (main.cpp): argument
// handling, exit codes, directory walking, --exclude, and --suppressions
// file parsing. The rule engine itself is covered in-process by
// alvc_lint_test.cpp; these tests run the real binary (path injected by
// CMake as ALVC_LINT_BIN) the way check.sh and ctest do.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

/// Runs the lint binary with `args`, capturing output and the exit code.
RunResult run_lint(const std::string& args, const fs::path& capture) {
  const std::string cmd =
      std::string(ALVC_LINT_BIN) + " " + args + " > " + capture.string() + " 2>&1";
  const int raw = std::system(cmd.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  return result;
}

struct CliFixture : ::testing::Test {
  fs::path dir;

  void SetUp() override {
    dir = fs::temp_directory_path() /
          ("alvc_lint_cli_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir / "src" / "sdn");
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  void write(const fs::path& rel, const std::string& content) const {
    std::ofstream out(dir / rel);
    out << content;
  }

  RunResult run(const std::string& args) { return run_lint(args, dir / "out.txt"); }
};

TEST_F(CliFixture, HelpExitsZeroAndPrintsUsage) {
  const auto result = run("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
  EXPECT_NE(result.output.find("--suppressions"), std::string::npos);
}

TEST_F(CliFixture, NoInputsIsAUsageError) {
  const auto result = run("");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("no inputs"), std::string::npos);
}

TEST_F(CliFixture, MissingPathIsAUsageError) {
  const auto result = run((dir / "does_not_exist").string());
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("no such file or directory"), std::string::npos);
}

TEST_F(CliFixture, MissingFlagArgumentsAreUsageErrors) {
  EXPECT_EQ(run("--exclude").exit_code, 2);
  EXPECT_EQ(run("--suppressions").exit_code, 2);
}

TEST_F(CliFixture, CleanTreeExitsZero) {
  write("src/sdn/fine.cc", "int answer() { return 42; }\n");
  const auto result = run(dir.string());
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("1 files, 0 findings"), std::string::npos);
}

TEST_F(CliFixture, FindingExitsOneAndNamesTheRule) {
  write("src/sdn/bad.cc", "void f() { (void)g(); }\n");
  const auto result = run(dir.string());
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("[naked-void]"), std::string::npos);
  EXPECT_NE(result.output.find("bad.cc:1"), std::string::npos);
}

TEST_F(CliFixture, ExcludeSkipsMatchingFiles) {
  write("src/sdn/bad.cc", "void f() { (void)g(); }\n");
  const auto result = run("--exclude bad.cc " + dir.string());
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("0 files, 0 findings"), std::string::npos);
}

TEST_F(CliFixture, SuppressionsFileWaivesMatchingFindings) {
  write("src/sdn/bad.cc", "void f() { (void)g(); }\n");
  write("waivers.txt",
        "# known discard, tracked in the baseline\n"
        "\n"
        "src/sdn/bad.cc:naked-void\n");
  const auto result = run("--suppressions " + (dir / "waivers.txt").string() + " " + dir.string());
  EXPECT_EQ(result.exit_code, 0);
  // Waived findings stay visible in the log, tagged as suppressed.
  EXPECT_NE(result.output.find("(suppressed)"), std::string::npos);
  EXPECT_NE(result.output.find("(1 suppressed)"), std::string::npos);
}

TEST_F(CliFixture, SuppressionRuleMustMatch) {
  write("src/sdn/bad.cc", "void f() { (void)g(); }\n");
  write("waivers.txt", "src/sdn/bad.cc:nondeterministic-rng\n");
  const auto result = run("--suppressions " + (dir / "waivers.txt").string() + " " + dir.string());
  EXPECT_EQ(result.exit_code, 1);  // wrong rule: the finding stands
}

TEST_F(CliFixture, SuppressionWildcardMatchesEveryRule) {
  write("src/sdn/bad.cc", "void f() { (void)g(); }\n");
  write("waivers.txt", "src/sdn:*\n");
  const auto result = run("--suppressions " + (dir / "waivers.txt").string() + " " + dir.string());
  EXPECT_EQ(result.exit_code, 0);
}

TEST_F(CliFixture, UnreadableSuppressionsFileIsFatal) {
  write("src/sdn/fine.cc", "int x;\n");
  const auto result =
      run("--suppressions " + (dir / "missing.txt").string() + " " + dir.string());
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("cannot read suppressions file"), std::string::npos);
}

TEST_F(CliFixture, MalformedSuppressionLineIsFatal) {
  write("src/sdn/fine.cc", "int x;\n");
  write("waivers.txt", "no-colon-here\n");
  const auto result =
      run("--suppressions " + (dir / "waivers.txt").string() + " " + dir.string());
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("malformed suppression"), std::string::npos);
}

}  // namespace
