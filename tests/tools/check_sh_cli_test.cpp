// CLI coverage for the check.sh driver and the bench regression gate:
// argument handling that must fail fast (an empty --ci leg once silently
// ran the FULL local gate on CI) and the gate's slowdown/tolerance
// behavior on synthetic trajectories. Paths are injected by CMake as
// ALVC_CHECK_SH and ALVC_BENCH_GATE_PY; every covered branch exits before
// any build work, so the tests stay fast.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

RunResult run_command(const std::string& cmd, const fs::path& capture) {
  const int raw = std::system((cmd + " > " + capture.string() + " 2>&1").c_str());
  RunResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(capture);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  result.output = buffer.str();
  return result;
}

struct CliFixture : ::testing::Test {
  fs::path dir;

  void SetUp() override {
    dir = fs::temp_directory_path() /
          ("check_sh_cli_" +
           std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
           std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  RunResult run_check(const std::string& args) {
    return run_command(std::string("bash ") + ALVC_CHECK_SH + " " + args, dir / "out.txt");
  }

  RunResult run_gate(const std::string& args, const std::string& env = "") {
    return run_command(env + " python3 " + ALVC_BENCH_GATE_PY + " " + args, dir / "out.txt");
  }

  /// Writes a minimal alvc-bench-trajectory-v1 file with one tracked row.
  fs::path write_trajectory(const std::string& name, double after_us) const {
    const fs::path path = dir / name;
    std::ofstream out(path);
    out << "{\n  \"schema\": \"alvc-bench-trajectory-v1\",\n  \"benchmarks\": [\n"
        << "    {\"bench\": \"bench_route_cache\", \"name\": \"BM_Churn/0\",\n"
        << "     \"before_cpu_time_us\": null, \"after_cpu_time_us\": " << after_us
        << ", \"speedup\": null}\n  ]\n}\n";
    return path;
  }
};

TEST_F(CliFixture, EmptyCiLegFailsFastInsteadOfRunningTheFullGate) {
  const auto result = run_check("--ci \"\"");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("non-empty leg name"), std::string::npos);
  EXPECT_EQ(result.output.find("configure"), std::string::npos)
      << "an empty leg must not fall through to the full local gate";
}

TEST_F(CliFixture, MissingCiLegIsAUsageError) {
  const auto result = run_check("--ci");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("non-empty leg name"), std::string::npos);
}

TEST_F(CliFixture, UnknownCiLegIsAUsageErrorListingTheLegs) {
  const auto result = run_check("--ci no-such-leg");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("unknown CI leg"), std::string::npos);
  EXPECT_NE(result.output.find("scale-soak"), std::string::npos);
}

TEST_F(CliFixture, UnknownArgumentIsAUsageError) {
  EXPECT_EQ(run_check("--no-such-flag").exit_code, 2);
}

TEST_F(CliFixture, BenchGateFailsOnInjectedSlowdown) {
  const auto baseline = write_trajectory("baseline.json", 100.0);
  const auto fresh = write_trajectory("fresh.json", 140.0);  // 1.40x > 1.25x
  const auto result = run_gate(fresh.string() + " " + baseline.string());
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("REGRESSED"), std::string::npos);
}

TEST_F(CliFixture, BenchGateToleranceEnvWidensTheBand) {
  const auto baseline = write_trajectory("baseline.json", 100.0);
  const auto fresh = write_trajectory("fresh.json", 140.0);
  const auto result =
      run_gate(fresh.string() + " " + baseline.string(), "ALVC_BENCH_TOLERANCE=0.60");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("no regressions"), std::string::npos);
}

TEST_F(CliFixture, BenchGatePassesWithinTolerance) {
  const auto baseline = write_trajectory("baseline.json", 100.0);
  const auto fresh = write_trajectory("fresh.json", 110.0);  // 1.10x <= 1.25x
  EXPECT_EQ(run_gate(fresh.string() + " " + baseline.string()).exit_code, 0);
}

TEST_F(CliFixture, BenchGatePassesVacuouslyWithoutACommittedBaseline) {
  const auto fresh = write_trajectory("fresh.json", 100.0);
  // cwd has no BENCH_PR*.json, so implicit baseline resolution finds none.
  const auto result = run_command("cd " + dir.string() + " && python3 " + ALVC_BENCH_GATE_PY +
                                      " " + fresh.string(),
                                  dir / "out.txt");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("vacuously"), std::string::npos);
}

TEST_F(CliFixture, BenchGateRejectsMalformedInput) {
  const fs::path bad = dir / "bad.json";
  std::ofstream(bad) << "{\"schema\": \"wrong\"}\n";
  const auto baseline = write_trajectory("baseline.json", 100.0);
  EXPECT_EQ(run_gate(bad.string() + " " + baseline.string()).exit_code, 2);
  EXPECT_EQ(run_gate("").exit_code, 2);
}

}  // namespace
