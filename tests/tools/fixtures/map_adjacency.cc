// Fixture: seeded `map-adjacency` violations. Adjacency and per-vertex
// state in graph/ and topology/ hot paths must live in CSR arrays or the
// stamped scratch structures, not node-based maps (a hash probe per
// neighbor visit is what the CSR refactor removed).
#include <map>
#include <unordered_map>
#include <vector>

struct BadAdjacency {
  std::unordered_map<unsigned long, std::vector<unsigned long>> neighbors;  // violation
  std::map<unsigned long, double> weight_by_vertex;                         // violation
};

struct SuppressedAdjacency {
  // Cold-path metadata keyed by name is fine when called out explicitly.
  std::unordered_map<int, int> debug_labels;  // alvc-lint: allow(map-adjacency)
};
