// Fixture: a file every rule must pass.
//
// Prose daring the comment/string stripper: rand() and srand() and
// std::random_device belong in comments, and "(void)ignored" in a string
// literal is data, not code.
#include <string>

struct FakeStatus {
  bool ok;
};

FakeStatus do_thing();

int clean(unsigned long n) {
  if (!do_thing().ok) return -1;                     // result consumed, not dropped
  const std::string prose = "(void)do_thing() and rand() are only words here";
  // A suppressed discard is legal when it names its rule:
  (void)do_thing();  // alvc-lint: allow(naked-void) — fixture demonstrates suppression
  return static_cast<int>(n + prose.size());
}
