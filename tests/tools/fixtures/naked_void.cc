// Fixture: seeded `naked-void` violations — discarding a Status without a
// named reason. The sanctioned spelling is ALVC_IGNORE_STATUS(expr, "why").
struct FakeStatus {
  bool ok;
};

FakeStatus do_thing();

void teardown() {
  (void)do_thing();              // violation: silent discard
  static_cast<void>(do_thing()); // violation: same discard, C++ spelling
}
