// Fixture: seeded `raw-lock` violations. Every mutex acquisition in src/
// must be an RAII guard — a naked lock() call or a recursive mutex hides
// the acquisition from the alvc_analyze lock-order model and the runtime
// LockRank scopes.
#include <mutex>

struct BadLocker {
  std::recursive_mutex rec_mu;  // violation: recursive locking defeats ranking
  std::mutex mu;

  void touch() {
    mu.lock();  // violation: naked acquisition, no RAII guard
    mu.unlock();
  }
};

struct GoodLocker {
  std::mutex mu;
  int value = 0;

  int read() {
    const std::lock_guard<std::mutex> lock(mu);  // RAII guard: legal
    return value;
  }

  bool try_read(int* out) {
    // try_lock is not a naked lock(): the caller handles failure inline.
    if (!mu.try_lock()) return false;
    *out = value;
    mu.unlock();
    return true;
  }
};

struct SuppressedLocker {
  std::mutex mu;

  void adopt() {
    mu.lock();  // alvc-lint: allow(raw-lock) — handing off to adopt_lock below
    const std::lock_guard<std::mutex> lock(mu, std::adopt_lock);
  }
};
