// Fixture: a seeded `layering-include` violation. The test feeds this file
// to the linter under the synthetic path "src/cluster/layering_include.cc",
// where a lower layer is reaching up into the orchestrator.
#include "orchestrator/orchestrator.h"  // violation (when under src/cluster/)

int lower_layer_peeking_up() { return 0; }
