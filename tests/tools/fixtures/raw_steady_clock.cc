// Fixture: seeded `raw-chrono-clock` violations. Never compiled; the
// alvc_lint test asserts the linter flags lines 7 and 8 everywhere except
// src/telemetry/ and core/experiment.h.
#include <chrono>

double elapsed_s() {
  const auto start = std::chrono::steady_clock::now();  // violation: raw clock read
  using clock = std::chrono::steady_clock;              // violation: raw clock alias
  return std::chrono::duration<double>(clock::now() - start).count();
}
