// Fixture: seeded `nondeterministic-rng` violations. Never compiled; the
// alvc_lint test asserts the linter flags lines 7 through 9.
#include <cstdlib>
#include <random>

int entropy() {
  std::random_device device;  // violation: hardware entropy breaks replay
  std::srand(device());       // violation: global unseeded RNG state
  int salt = std::rand();     // violation: rand() is not seed-stable
  return salt;
}
