// Fixture: a seeded `index-arithmetic` violation. The vertex layout (ToRs
// first, then OPSs) belongs to topology/ and graph/; everyone else must go
// through a helper like DataCenterTopology::ops_vertex().
struct FakeId {
  unsigned long index() const { return 7; }
};

unsigned long ops_vertex_by_hand(FakeId id, unsigned long tor_count) {
  return tor_count + id.index();  // violation: layout arithmetic outside topology/
}
