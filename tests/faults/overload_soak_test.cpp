// Overload soak: 20 seeds of faults *and* load churn under the
// kPriorityDowngrade policy. Flash crowds land mid-outage, adversarial
// LOPRI churn keeps the allocator shedding and restoring, and a diurnal
// ramp sustains oversubscription — while the auditor re-checks every
// cross-layer invariant (including work conservation and priority-
// feasibility) after every single event. Also pins down the retry queue's
// backoff clock: a degraded chain is retried on recovery *epochs*, not on
// element relevance, so even a fully healed fabric waits out the window.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/alvc.h"
#include "faults/chaos.h"
#include "faults/state_auditor.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::faults {
namespace {

using alvc::nfv::NfcSpec;
using alvc::nfv::PriorityClass;
using alvc::nfv::VnfType;
using alvc::orchestrator::AllocationPolicy;
using alvc::orchestrator::NetworkOrchestrator;
using alvc::test::ClusterFixture;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::ServiceId;

constexpr std::uint64_t kSeeds = 20;

NfcSpec make_spec(const core::DataCenter& dc, std::uint32_t service, double gbps,
                  PriorityClass cls) {
  NfcSpec spec;
  spec.service = ServiceId{service};
  spec.name = "load-" + std::to_string(service);
  spec.bandwidth_gbps = gbps;
  spec.priority = cls;
  spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                    *dc.catalog().find_by_type(VnfType::kNat)};
  return spec;
}

core::DataCenter make_qos_dc(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  auto clusters = dc.build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  dc.orchestrator().set_allocation_policy(AllocationPolicy::kPriorityDowngrade);
  // Baseline chain: demand above the 10 Gbps uplink ports, so QoS admission
  // grants a reduced rung instead of hard-rejecting.
  ALVC_IGNORE_STATUS(
      dc.provision_chain(make_spec(dc, 0, 16.0, PriorityClass::kHipri),
                         core::PlacementAlgorithm::kGreedyOptical),
      "warm-up: capacity conflicts just mean fewer live chains");
  return dc;
}

TEST(OverloadSoakTest, PriorityDowngradeSurvivesFlashCrowdsAndChurn) {
  std::size_t total_load_events = 0;
  std::size_t total_provisioned = 0;
  std::size_t total_provisioned_degraded = 0;
  std::size_t total_rejected = 0;
  std::size_t total_torn_down = 0;
  std::size_t total_alloc_downgrades = 0;
  std::size_t total_alloc_restores = 0;
  std::size_t total_admitted_downgraded = 0;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ALVC_TRACE_SEED(seed);
    auto dc = make_qos_dc(seed);

    ChaosParams params;
    params.schedule.ops = {.mtbf_s = 35, .mttr_s = 7};
    params.schedule.tor = {.mtbf_s = 55, .mttr_s = 6};
    params.schedule.server = {.mtbf_s = 45, .mttr_s = 5};
    params.schedule.link = {.mtbf_s = 40, .mttr_s = 6};
    params.schedule.horizon_s = 40;
    params.schedule.seed = seed;
    params.flow_rate_per_s = 20;
    params.traffic_seed = seed * 3 + 1;
    const auto* vc0 = dc.clusters().clusters().front();
    if (!vc0->layer.opss.empty()) {
      params.scripted = FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
    }

    // Load side: a flash crowd that lands inside the whole-AL outage, a
    // diurnal ramp of heavy demands, and Poisson LOPRI churn throughout.
    const std::vector<NfcSpec> crowd{
        make_spec(dc, 0, 16.0, PriorityClass::kHipri),
        make_spec(dc, 1, 16.0, PriorityClass::kLopri),
        make_spec(dc, 2, 16.0, PriorityClass::kHipri),
    };
    const std::vector<NfcSpec> heavy{
        make_spec(dc, 1, 16.0, PriorityClass::kHipri),
        make_spec(dc, 2, 8.0, PriorityClass::kLopri),
    };
    auto load = OverloadInjector::flash_crowd(crowd, 13.0, 0.3, 10.0, /*first_key=*/1000);
    const auto ramp = OverloadInjector::diurnal_ramp(heavy, 20.0, 40.0, /*first_key=*/2000);
    const auto churn = OverloadInjector::lopri_churn(crowd, 0.4, 5.0, 40.0, seed * 11 + 3,
                                                     /*first_key=*/3000);
    load.insert(load.end(), ramp.begin(), ramp.end());
    load.insert(load.end(), churn.begin(), churn.end());
    params.load = std::move(load);

    ChaosRunner runner(dc.orchestrator(), params);
    const ChaosReport report = runner.run();

    EXPECT_GT(report.load_events, 0u);
    EXPECT_EQ(report.handler_errors, 0u);
    EXPECT_EQ(report.audit_violations, 0u)
        << (report.violations.empty() ? "" : report.violations.front());
    EXPECT_EQ(report.chains_unaccounted, 0u) << "a chain was silently lost";
    EXPECT_TRUE(report.clean());

    total_load_events += report.load_events;
    total_provisioned += report.load_provisioned;
    total_provisioned_degraded += report.load_provisioned_degraded;
    total_rejected += report.load_rejected;
    total_torn_down += report.load_torn_down;
    total_alloc_downgrades += dc.orchestrator().stats().alloc_downgrades;
    total_alloc_restores += dc.orchestrator().stats().alloc_restores;
    total_admitted_downgraded += dc.orchestrator().stats().chains_admitted_downgraded;
  }

  // The soak must exercise the QoS machinery, not pass vacuously.
  EXPECT_GT(total_load_events, 200u);
  EXPECT_GT(total_provisioned, 20u);
  EXPECT_GT(total_rejected, 0u) << "no arrival ever hit a busy or broken slice";
  EXPECT_GT(total_torn_down, 0u);
  EXPECT_GT(total_admitted_downgraded, 0u) << "admit-with-downgrade never fired";
  EXPECT_GT(total_provisioned_degraded, 0u);
  EXPECT_GT(total_alloc_downgrades, 0u) << "the allocator never shed anything";
  EXPECT_GT(total_alloc_restores, 0u) << "no shed chain ever climbed back";
}

/// ClusterFixture (2 racks, 4 OPS: O0/O2 optoelectronic) plus an
/// orchestrator running a QoS policy, for surgical fault sequencing.
struct QosRetryFixture : ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};

  QosRetryFixture() { orch.set_allocation_policy(AllocationPolicy::kWaterFill); }

  alvc::util::NfcId provision() {
    NfcSpec spec;
    spec.name = "chain";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*catalog.find_by_type(VnfType::kFirewall),
                      *catalog.find_by_type(VnfType::kNat)};
    const alvc::orchestrator::GreedyOpticalPlacement placement;
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    return *id;
  }
};

// The retry queue is clocked in recovery epochs with exponential backoff:
//   epoch 1 — first (failing) attempt charges the budget, next try at 1+2^1.
//   epoch 2 — skipped: still backing off.
//   epoch 3 — eligible again; fit still fails (every OPS is down), next
//             try at 3+2^2 = 7.
//   epoch 4 — O0 recovers: the slice collapses to rack 0 and a full-rate
//             fit IS feasible, yet the entry is still backing off.
//   epochs 5-6 — O3 and O1 recover (O3 re-covers ToR 1, so the repaired
//             slice {O0,O3} is ring-adjacent and routable); still waiting.
//   epoch 7 — O2 recovers. O2 is not even part of the repaired slice, but
//             the backoff window has elapsed, the retry fires, and the
//             chain restores to full bandwidth — the clock, not element
//             relevance, gates restoration.
TEST(QosRetryBackoffTest, BackoffClockGatesRestorationNotElementRelevance) {
  QosRetryFixture f;
  const auto id = f.provision();

  // Take down every OPS: the slice loses all connectivity, the chain parks.
  for (std::size_t i = 0; i < f.topo.ops_count(); ++i) {
    ASSERT_TRUE(f.orch.handle_ops_failure(OpsId{static_cast<OpsId::value_type>(i)}).has_value());
  }
  const auto* chain = f.orch.chain(id);
  ASSERT_NE(chain, nullptr);
  EXPECT_TRUE(chain->degraded);
  EXPECT_DOUBLE_EQ(chain->reserved_gbps, 0.0);
  EXPECT_EQ(f.orch.retry_queue_size(), 1u);

  // Epochs 1-3: unrelated server bounces pump the recovery clock while the
  // fabric stays dark. The retry fails at epoch 1 (backs off to 3) and
  // again at epoch 3 (backs off to 7).
  const ServerId pump{3};
  for (int epoch = 1; epoch <= 3; ++epoch) {
    ASSERT_TRUE(f.orch.handle_server_failure(pump).has_value());
    ASSERT_TRUE(f.orch.handle_server_recovery(pump).has_value());
    EXPECT_TRUE(f.orch.chain(id)->degraded);
    EXPECT_EQ(f.orch.retry_queue_size(), 1u);
  }

  // Epoch 4: O0 recovers and the coverage repair shrinks the slice to the
  // one rack O0 can serve — a full-rate single-rack fit is feasible right
  // now, but the entry is backing off and the drain must skip it.
  ASSERT_TRUE(f.orch.handle_ops_recovery(OpsId{0}).has_value());
  EXPECT_TRUE(f.orch.chain(id)->degraded) << "retried before its backoff expired";

  // Epochs 5 and 6: O3 then O1 recover. O3 re-covers ToR 1, giving a
  // connected two-rack slice; the fabric is nearly healed, yet the chain
  // still waits out its window.
  ASSERT_TRUE(f.orch.handle_ops_recovery(OpsId{3}).has_value());
  ASSERT_TRUE(f.orch.handle_ops_recovery(OpsId{1}).has_value());
  EXPECT_TRUE(f.orch.chain(id)->degraded) << "healed fabric must not bypass the backoff clock";
  EXPECT_EQ(f.orch.retry_queue_size(), 1u);

  // Epoch 7: O2 recovers — an OPS the repaired slice doesn't even use. The
  // backoff window has elapsed, so the retry fires and restores the chain.
  ASSERT_TRUE(f.orch.handle_ops_recovery(OpsId{2}).has_value());
  EXPECT_FALSE(f.orch.chain(id)->degraded);
  EXPECT_DOUBLE_EQ(f.orch.chain(id)->reserved_gbps, 1.0);
  EXPECT_EQ(f.orch.stats().chains_restored, 1u);
  EXPECT_EQ(f.orch.retry_queue_size(), 0u);

  // And the end state is audit-clean under the QoS policy.
  EXPECT_TRUE(StateAuditor::audit(f.orch).empty());
}

}  // namespace
}  // namespace alvc::faults
