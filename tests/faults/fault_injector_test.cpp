// FaultInjector: schedules must be deterministic in the seed, alternate
// failure/repair per element, respect the horizon, and dispatch correctly
// into the orchestrator's recovery handlers.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "faults/fault_injector.h"
#include "orchestrator/orchestrator.h"
#include "sim/event_queue.h"
#include "support/fixtures.h"
#include "topology/builder.h"

namespace alvc::faults {
namespace {

using alvc::test::ClusterFixture;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::TorId;

topology::DataCenterTopology make_topo(std::uint64_t seed = 11) {
  topology::TopologyParams params;
  params.rack_count = 4;
  params.servers_per_rack = 2;
  params.vms_per_server = 1;
  params.ops_count = 8;
  params.tor_ops_degree = 3;
  params.seed = seed;
  return topology::build_topology(params);
}

FaultScheduleParams mixed_rates(std::uint64_t seed) {
  FaultScheduleParams params;
  params.ops = {.mtbf_s = 30, .mttr_s = 6};
  params.tor = {.mtbf_s = 50, .mttr_s = 8};
  params.server = {.mtbf_s = 40, .mttr_s = 5};
  params.link = {.mtbf_s = 35, .mttr_s = 4};
  params.horizon_s = 60;
  params.seed = seed;
  return params;
}

bool same_event(const FaultEvent& a, const FaultEvent& b) {
  return a.time_s == b.time_s && a.kind == b.kind && a.failure == b.failure && a.id == b.id &&
         a.ops == b.ops;
}

TEST(FaultInjectorTest, ScheduleIsDeterministicInSeed) {
  const auto topo = make_topo();
  const auto first = FaultInjector::generate(topo, mixed_rates(7));
  const auto second = FaultInjector::generate(topo, mixed_rates(7));
  ASSERT_EQ(first.size(), second.size());
  ASSERT_FALSE(first.empty());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_event(first[i], second[i])) << "event " << i << " diverged";
  }
}

TEST(FaultInjectorTest, DifferentSeedsProduceDifferentSchedules) {
  const auto topo = make_topo();
  const auto first = FaultInjector::generate(topo, mixed_rates(7));
  const auto second = FaultInjector::generate(topo, mixed_rates(8));
  bool identical = first.size() == second.size();
  for (std::size_t i = 0; identical && i < first.size(); ++i) {
    identical = same_event(first[i], second[i]);
  }
  EXPECT_FALSE(identical);
}

TEST(FaultInjectorTest, SortedWithinHorizonAndAlternating) {
  const auto topo = make_topo();
  const auto params = mixed_rates(3);
  const auto events = FaultInjector::generate(topo, params);
  ASSERT_FALSE(events.empty());
  // Per-element streams must alternate failure/repair starting with a
  // failure, at strictly increasing times; globally sorted by time.
  std::map<std::tuple<FaultKind, std::uint32_t, std::uint32_t>, std::pair<bool, double>> last;
  double prev_time = 0;
  for (const FaultEvent& event : events) {
    EXPECT_GE(event.time_s, prev_time);
    EXPECT_LT(event.time_s, params.horizon_s);
    prev_time = event.time_s;
    const auto key = std::tuple{event.kind, event.id, event.ops};
    const auto it = last.find(key);
    if (it == last.end()) {
      EXPECT_TRUE(event.failure) << "element's first event must be a failure";
    } else {
      EXPECT_NE(it->second.first, event.failure) << "failures and repairs must alternate";
      EXPECT_GT(event.time_s, it->second.second);
    }
    last[key] = {event.failure, event.time_s};
  }
}

TEST(FaultInjectorTest, ZeroMttrMakesFailuresPermanent) {
  const auto topo = make_topo();
  FaultScheduleParams params;
  params.ops = {.mtbf_s = 10, .mttr_s = 0};
  params.horizon_s = 100;
  params.seed = 5;
  const auto events = FaultInjector::generate(topo, params);
  ASSERT_FALSE(events.empty());
  std::map<std::uint32_t, int> per_ops;
  for (const FaultEvent& event : events) {
    EXPECT_TRUE(event.failure) << "no repairs with mttr = 0";
    EXPECT_EQ(event.kind, FaultKind::kOps);
    EXPECT_EQ(++per_ops[event.id], 1) << "a permanent fault fires once";
  }
}

TEST(FaultInjectorTest, DisabledClassesEmitNothing) {
  const auto topo = make_topo();
  FaultScheduleParams params;  // every MTBF zero
  params.horizon_s = 100;
  EXPECT_TRUE(FaultInjector::generate(topo, params).empty());
  EXPECT_TRUE(FaultInjector::generate(topo, FaultScheduleParams{}).empty());
}

TEST(FaultInjectorTest, WholeRackFailsAndRecoversTogether) {
  const auto topo = make_topo();
  const TorId tor{1};
  const auto events = FaultInjector::whole_rack(topo, tor, 2.0, 5.0);
  const std::size_t rack_size = 1 + topo.tor(tor).servers.size();
  ASSERT_EQ(events.size(), 2 * rack_size);
  std::size_t failures = 0;
  for (const FaultEvent& event : events) {
    if (event.failure) {
      ++failures;
      EXPECT_DOUBLE_EQ(event.time_s, 2.0);
    } else {
      EXPECT_DOUBLE_EQ(event.time_s, 7.0);
    }
  }
  EXPECT_EQ(failures, rack_size);
  EXPECT_EQ(events.front().kind, FaultKind::kTor);
  EXPECT_EQ(events.front().id, tor.value());
}

TEST(FaultInjectorTest, WholeAlCoversEveryOwnedOpsWithStaggeredRepair) {
  ClusterFixture f;
  const auto& vc = f.cluster();
  ASSERT_FALSE(vc.layer.opss.empty());
  const auto events = FaultInjector::whole_al(vc, 1.0, 4.0, 0.5);
  ASSERT_EQ(events.size(), 2 * vc.layer.opss.size());
  double expected_repair = 5.0;
  std::size_t seen = 0;
  for (const FaultEvent& event : events) {
    EXPECT_EQ(event.kind, FaultKind::kOps);
    if (event.failure) {
      EXPECT_DOUBLE_EQ(event.time_s, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(event.time_s, expected_repair);
      expected_repair += 0.5;
      ++seen;
    }
  }
  EXPECT_EQ(seen, vc.layer.opss.size());
}

TEST(FaultInjectorTest, ScheduleInterleavesWithOtherQueueWork) {
  sim::EventQueue queue;
  std::vector<std::string> order;
  queue.schedule(1.0, [&] { order.push_back("traffic@1"); });
  queue.schedule(3.0, [&] { order.push_back("traffic@3"); });
  std::vector<FaultEvent> events{
      FaultEvent{.time_s = 2.0, .kind = FaultKind::kOps, .failure = true, .id = 4},
      FaultEvent{.time_s = 3.5, .kind = FaultKind::kOps, .failure = false, .id = 4},
  };
  FaultInjector::schedule(queue, events, [&](const FaultEvent& event) {
    order.push_back(std::string(event.failure ? "fail-" : "repair-") + to_string(event.kind) +
                    "@" + std::to_string(static_cast<int>(event.time_s * 10)));
  });
  queue.run();
  const std::vector<std::string> expected{"traffic@1", "fail-ops@20", "traffic@3",
                                          "repair-ops@35"};
  EXPECT_EQ(order, expected);
}

TEST(FaultInjectorTest, ApplyFaultDispatchesToOrchestratorHandlers) {
  ClusterFixture f;
  orchestrator::NetworkOrchestrator orch{f.manager, f.catalog};

  const FaultEvent fail_server{.kind = FaultKind::kServer, .failure = true, .id = 0};
  ASSERT_TRUE(apply_fault(orch, fail_server).has_value());
  EXPECT_FALSE(f.topo.server_usable(ServerId{0}));
  const FaultEvent repair_server{.kind = FaultKind::kServer, .failure = false, .id = 0};
  ASSERT_TRUE(apply_fault(orch, repair_server).has_value());
  EXPECT_TRUE(f.topo.server_usable(ServerId{0}));

  const FaultEvent fail_link{.kind = FaultKind::kLink, .failure = true, .id = 0, .ops = 0};
  ASSERT_TRUE(apply_fault(orch, fail_link).has_value());
  EXPECT_TRUE(f.topo.link_failed(TorId{0}, OpsId{0}));
  const FaultEvent repair_link{.kind = FaultKind::kLink, .failure = false, .id = 0, .ops = 0};
  ASSERT_TRUE(apply_fault(orch, repair_link).has_value());
  EXPECT_FALSE(f.topo.link_failed(TorId{0}, OpsId{0}));

  const FaultEvent bad{.kind = FaultKind::kOps, .failure = true, .id = 999};
  EXPECT_FALSE(apply_fault(orch, bad).has_value());
}

}  // namespace
}  // namespace alvc::faults
