// StateAuditor: a healthy control plane audits clean; out-of-band hardware
// mutation (bypassing the recovery workflows) is caught; the orchestrator's
// own repair paths always leave an auditable state behind.
#include <gtest/gtest.h>

#include <variant>

#include "faults/state_auditor.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::faults {
namespace {

using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::NfcId;
using alvc::util::OpsId;
using alvc::util::ServiceId;

struct AuditFixture : ClusterFixture {
  orchestrator::NetworkOrchestrator orch{manager, catalog};

  NfcId provision() {
    NfcSpec spec;
    spec.name = "chain";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*catalog.find_by_type(VnfType::kFirewall),
                      *catalog.find_by_type(VnfType::kNat)};
    const orchestrator::GreedyOpticalPlacement placement;
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    return *id;
  }
};

TEST(StateAuditorTest, HealthyDeploymentAuditsClean) {
  AuditFixture f;
  ALVC_IGNORE_STATUS(f.provision(), "the fixture throws on failure; the id is unused");
  EXPECT_TRUE(StateAuditor::audit(f.orch).empty());
}

TEST(StateAuditorTest, DetectsOutOfBandHardwareFailure) {
  AuditFixture f;
  const auto id = f.provision();
  const auto* chain = f.orch.chain(id);
  ASSERT_NE(chain, nullptr);
  const auto* host_ops = std::get_if<OpsId>(&chain->placement.hosts[0]);
  ASSERT_NE(host_ops, nullptr);

  // Flip the hardware flag directly, without going through the recovery
  // workflows: placement, route, and AL invariants all break at once.
  ASSERT_TRUE(f.topo.set_ops_failed(*host_ops, true).is_ok());
  const auto violations = StateAuditor::audit(f.orch);
  EXPECT_FALSE(violations.empty());

  ASSERT_TRUE(f.topo.set_ops_failed(*host_ops, false).is_ok());
  EXPECT_TRUE(StateAuditor::audit(f.orch).empty());
}

TEST(StateAuditorTest, RecoveryWorkflowLeavesAuditableState) {
  AuditFixture f;
  const auto id = f.provision();
  const auto* chain = f.orch.chain(id);
  const auto* host_ops = std::get_if<OpsId>(&chain->placement.hosts[0]);
  ASSERT_NE(host_ops, nullptr);

  // The same failure through the proper workflow must keep every invariant:
  // the AL is repaired, the VNF relocated, the route re-programmed.
  ASSERT_TRUE(f.orch.handle_ops_failure(*host_ops).has_value());
  EXPECT_TRUE(StateAuditor::audit(f.orch).empty());

  ASSERT_TRUE(f.orch.handle_ops_recovery(*host_ops).has_value());
  EXPECT_TRUE(StateAuditor::audit(f.orch).empty());
}

TEST(StateAuditorTest, DegradedChainsPassTheAudit) {
  AuditFixture f;
  ALVC_IGNORE_STATUS(f.provision(), "the fixture throws on failure; the id is unused");
  // Strand the whole optical layer and both racks' uplinks: coverage is
  // unrepairable, so the chain must park degraded — and still audit clean.
  for (std::size_t o = 0; o < f.topo.ops_count(); ++o) {
    ASSERT_TRUE(f.orch.handle_ops_failure(OpsId{static_cast<OpsId::value_type>(o)}).has_value());
  }
  EXPECT_TRUE(StateAuditor::audit(f.orch).empty())
      << StateAuditor::audit(f.orch).front();
  EXPECT_GT(f.orch.degraded_chain_count(), 0u);

  // Recovery drains the retry queue; the chain comes back at full service.
  for (std::size_t o = 0; o < f.topo.ops_count(); ++o) {
    ASSERT_TRUE(f.orch.handle_ops_recovery(OpsId{static_cast<OpsId::value_type>(o)}).has_value());
  }
  EXPECT_TRUE(StateAuditor::audit(f.orch).empty());
  EXPECT_EQ(f.orch.degraded_chain_count(), 0u);
  EXPECT_GT(f.orch.stats().chains_restored, 0u);
}

}  // namespace
}  // namespace alvc::faults
