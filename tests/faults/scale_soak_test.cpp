// Scale soak for the sharded control plane (DESIGN.md §13).
//
// Two tiers:
//   * MidScaleShardedSoakStaysClean — always on: a ~1.6k-VM, 400-cluster
//     data center runs the chaos soak with an 8-shard control plane and a
//     threaded executor; the full robustness contract (clean audits, no
//     handler errors, no silent chain loss) must hold.
//   * MillionVmSmoke — gated by ALVC_SCALE_SOAK=1 (the CI scale-soak leg
//     sets it): one million VMs across 12,500 racks, 100,000 server-local
//     clusters with 100,000 provisioned chains (slices bind 1:1 to
//     chains), mixed stochastic faults plus a scripted whole-rack outage,
//     all under the sharded control plane.
//
// Both builds use server_local_services (block service assignment) so each
// cluster's AL stays rack-local — the layout that makes 10^4+ clusters
// tractable — with ALVC_SHARDS overriding the default shard count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "core/alvc.h"
#include "faults/chaos.h"
#include "support/fixtures.h"
#include "util/error.h"
#include "util/executor.h"

namespace alvc::faults {
namespace {

using alvc::nfv::VnfType;

std::size_t shard_count_from_env(std::size_t fallback) {
  if (const char* env = std::getenv("ALVC_SHARDS"); env != nullptr) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

struct ScaleShape {
  std::size_t racks = 100;
  std::size_t servers_per_rack = 4;
  std::size_t vms_per_server = 4;

  // Slices bind 1:1 to chains (one VC hosts one NFC), so chain count ==
  // cluster count: one service (and thus one cluster and one chain) per
  // server, one exclusive window OPS per cluster.
  [[nodiscard]] std::size_t services() const noexcept { return racks * servers_per_rack; }
};

/// One cluster per server: service_count == server count with block service
/// assignment gives service s exactly server s's VMs, so each AL is one
/// ToR plus one of its window uplinks (tor_ops_degree == servers_per_rack
/// distinct exclusive OPSs per rack). Heap-allocated — DataCenter must
/// never be moved.
std::unique_ptr<core::DataCenter> make_scale_dc(const ScaleShape& shape,
                                                std::size_t* provisioned = nullptr) {
  core::DataCenterConfig config;
  config.topology.rack_count = shape.racks;
  config.topology.servers_per_rack = shape.servers_per_rack;
  config.topology.vms_per_server = shape.vms_per_server;
  config.topology.ops_count = shape.services();  // one window OPS per cluster
  config.topology.tor_ops_degree = shape.servers_per_rack;
  config.topology.uplink_locality = 1.0;
  config.topology.core = topology::CoreKind::kNone;
  config.topology.optoelectronic_fraction = 1.0;
  config.topology.service_count = shape.services();
  config.topology.server_local_services = true;
  config.topology.seed = 42;
  config.seed = 42;
  auto dc = std::make_unique<core::DataCenter>(config);

  alvc::util::Executor build_exec(4);
  const auto builder =
      core::DataCenter::make_al_builder(config.al_algorithm, config.seed,
                                        config.ensure_al_connectivity);
  const auto built = dc->clusters().build_all_clusters(*builder, &build_exec);
  if (!built.has_value()) throw std::runtime_error(built.error().to_string());
  if (built->size() != shape.services()) {
    throw std::runtime_error("expected one cluster per server, got " +
                             std::to_string(built->size()));
  }

  std::size_t ok = 0;
  for (std::uint32_t s = 0; s < shape.services(); ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc->catalog().find_by_type(VnfType::kFirewall)};
    if (dc->provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical).has_value()) {
      ++ok;
    }
  }
  if (provisioned != nullptr) *provisioned = ok;
  return dc;
}

TEST(ScaleSoakTest, MidScaleShardedSoakStaysClean) {
  std::size_t provisioned = 0;
  auto dc = make_scale_dc(ScaleShape{}, &provisioned);
  EXPECT_EQ(provisioned, 400u) << "every rack-local chain should admit";
  ASSERT_GT(dc->orchestrator().chain_count(), 0u);

  alvc::util::Executor exec(4);
  ChaosParams params;
  params.schedule.ops = {.mtbf_s = 1000, .mttr_s = 8};
  params.schedule.tor = {.mtbf_s = 2000, .mttr_s = 8};
  params.schedule.server = {.mtbf_s = 1500, .mttr_s = 8};
  params.schedule.link = {.mtbf_s = 1500, .mttr_s = 8};
  params.schedule.horizon_s = 60;
  params.schedule.seed = 7;
  params.flow_rate_per_s = 5;
  params.traffic_seed = 11;
  params.shards = shard_count_from_env(8);
  params.shard_executor = &exec;
  // One guaranteed whole-rack outage so recovery work is never left to
  // stochastic luck.
  params.scripted = FaultInjector::whole_rack(dc->topology(), util::TorId{0}, 10.0, 15.0);

  ChaosRunner runner(dc->orchestrator(), params);
  const ChaosReport report = runner.run();

  EXPECT_EQ(report.shard_count, params.shards);
  EXPECT_GT(report.fault_events, 10u);
  EXPECT_EQ(report.handler_errors, 0u);
  EXPECT_EQ(report.audit_violations, 0u)
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.chains_unaccounted, 0u) << "a chain was silently lost";
  EXPECT_TRUE(report.clean());

  // The sharded agent actually did the sweeping: scan passes ran on every
  // shard and chains were visited. Scoped sweeps walk only each fault's
  // blast radius, so the visit total stays far below chains x events — that
  // gap is the whole point of the scoped pass.
  const auto* agent = dc->orchestrator().agent();
  ASSERT_NE(agent, nullptr);
  std::uint64_t scans = 0;
  std::uint64_t visited = 0;
  for (std::size_t s = 0; s < agent->shard_count(); ++s) {
    scans += agent->shard(s).counters().scans;
    visited += agent->shard(s).counters().chains_visited;
  }
  EXPECT_GT(scans, 0u);
  EXPECT_GT(visited, 0u);
}

TEST(ScaleSoakTest, MillionVmSmoke) {
  if (const char* env = std::getenv("ALVC_SCALE_SOAK"); env == nullptr ||
                                                        std::string(env) != "1") {
    GTEST_SKIP() << "set ALVC_SCALE_SOAK=1 to run the million-VM smoke";
  }

  ScaleShape shape;
  shape.racks = 12500;
  shape.servers_per_rack = 8;
  shape.vms_per_server = 10;  // 12,500 * 8 * 10 = 1,000,000 VMs
  // => 100,000 services/clusters/chains over 100,000 window OPSs.

  std::size_t provisioned = 0;
  auto dc = make_scale_dc(shape, &provisioned);
  ASSERT_GE(dc->topology().vm_count(), 1000000u);
  EXPECT_EQ(provisioned, 100000u) << "every rack-local chain should admit";
  ASSERT_GE(dc->orchestrator().chain_count(), 100000u);

  alvc::util::Executor exec(8);
  ChaosParams params;
  // ~40 stochastic events across the 160k-element fleet, plus a scripted
  // whole-rack outage that guarantees recovery work lands on real chains.
  params.schedule.ops = {.mtbf_s = 120000, .mttr_s = 6};
  params.schedule.tor = {.mtbf_s = 240000, .mttr_s = 6};
  params.schedule.server = {.mtbf_s = 120000, .mttr_s = 6};
  params.schedule.link = {.mtbf_s = 240000, .mttr_s = 6};
  params.schedule.horizon_s = 30;
  params.schedule.seed = 3;
  params.shards = shard_count_from_env(8);
  params.shard_executor = &exec;
  // Per-event audits over 100k chains would dominate the run; the closing
  // audit still checks every invariant once.
  params.audit_every_event = false;
  params.scripted = FaultInjector::whole_rack(dc->topology(), util::TorId{0}, 5.0, 10.0);

  ChaosRunner runner(dc->orchestrator(), params);
  const ChaosReport report = runner.run();

  EXPECT_EQ(report.shard_count, params.shards);
  EXPECT_GT(report.failures_injected, 0u);
  EXPECT_EQ(report.handler_errors, 0u);
  EXPECT_EQ(report.audit_violations, 0u)
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.chains_unaccounted, 0u) << "a chain was silently lost";
  EXPECT_TRUE(report.clean());
  EXPECT_GE(report.chains_live_healthy + report.chains_live_degraded +
                dc->orchestrator().stats().chains_lost,
            100000u);
}

}  // namespace
}  // namespace alvc::faults
