// Chaos soak: 20+ seeds of mixed OPS/ToR/server/link faults over a
// provisioned data center with live chain traffic. The contract under test
// is the robustness acceptance bar for the whole recovery stack:
//   * every cross-layer invariant holds after every injected event,
//   * every handler call succeeds (duplicates are idempotent, not errors),
//   * zero chains are silently lost — each ends provisioned, degraded with
//     a recorded reason, or deliberately torn down with a logged event,
//   * and in aggregate, degraded chains do come back (restored > 0).
#include <gtest/gtest.h>

#include "core/alvc.h"
#include "faults/chaos.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::faults {
namespace {

using nfv::VnfType;

constexpr std::uint64_t kSeeds = 20;

core::DataCenter make_provisioned_dc(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  // Enough uplink fan-out that three service ALs always fit, but a small
  // enough OPS pool that overlapping failures exhaust the spares and the
  // degraded-mode path actually triggers.
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  auto clusters = dc.build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    ALVC_IGNORE_STATUS(dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical),
                       "warm-up: capacity conflicts just mean fewer live chains");
  }
  return dc;
}

TEST(ChaosSoakTest, MixedFaultClassesOverManySeedsStayConsistent) {
  std::size_t total_failures = 0;
  std::size_t total_repairs = 0;
  std::size_t total_flows = 0;
  std::size_t total_degraded = 0;
  std::size_t total_restored = 0;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ALVC_TRACE_SEED(seed);
    auto dc = make_provisioned_dc(seed);
    ASSERT_FALSE(dc.orchestrator().chains().empty());

    ChaosParams params;
    params.schedule.ops = {.mtbf_s = 35, .mttr_s = 7};
    params.schedule.tor = {.mtbf_s = 55, .mttr_s = 6};
    params.schedule.server = {.mtbf_s = 45, .mttr_s = 5};
    params.schedule.link = {.mtbf_s = 40, .mttr_s = 6};
    params.schedule.horizon_s = 40;
    params.schedule.seed = seed;
    params.flow_rate_per_s = 20;
    params.traffic_seed = seed * 3 + 1;
    // One correlated whole-AL outage per run guarantees the degraded path
    // is exercised even on lucky stochastic draws.
    const auto* vc0 = dc.clusters().clusters().front();
    if (!vc0->layer.opss.empty()) {
      params.scripted = FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
    }

    ChaosRunner runner(dc.orchestrator(), params);
    const ChaosReport report = runner.run();

    EXPECT_GT(report.fault_events, 0u);
    EXPECT_EQ(report.handler_errors, 0u);
    EXPECT_EQ(report.audit_violations, 0u)
        << (report.violations.empty() ? "" : report.violations.front());
    EXPECT_EQ(report.chains_unaccounted, 0u) << "a chain was silently lost";
    EXPECT_TRUE(report.clean());

    total_failures += report.failures_injected;
    total_repairs += report.repairs_injected;
    total_flows += report.flows_served + report.flows_deferred;
    total_degraded += dc.orchestrator().stats().chains_degraded;
    total_restored += report.chains_restored;
  }

  // The soak must actually exercise the machinery, not just pass vacuously.
  EXPECT_GT(total_failures, 100u);
  EXPECT_GT(total_repairs, 50u);
  EXPECT_GT(total_flows, 100u);
  EXPECT_GT(total_degraded, 0u) << "no chain ever entered degraded mode";
  EXPECT_GT(total_restored, 0u) << "no degraded chain was ever restored";
}

TEST(ChaosSoakTest, WholeRackOutageIsSurvivedAndAudited) {
  auto dc = make_provisioned_dc(99);
  ChaosParams params;
  params.schedule.horizon_s = 20;  // traffic window; no stochastic faults
  params.flow_rate_per_s = 10;
  params.traffic_seed = 5;
  params.scripted = FaultInjector::whole_rack(dc.topology(), util::TorId{0}, 4.0, 6.0);

  ChaosRunner runner(dc.orchestrator(), params);
  const ChaosReport report = runner.run();
  EXPECT_TRUE(report.clean()) << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_GT(report.failures_injected, 1u);  // the ToR plus its servers
  EXPECT_EQ(report.failures_injected, report.repairs_injected);
  EXPECT_GT(report.flows_served, 0u);
}

}  // namespace
}  // namespace alvc::faults
