#include "sdn/events.h"

#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"
#include "support/fixtures.h"

namespace alvc::sdn {
namespace {

TEST(ControlPlaneLogTest, AppendAndQuery) {
  ControlPlaneLog log;
  EXPECT_TRUE(log.empty());
  log.append(ControlEventType::kChainProvisioned, 1, "alpha");
  log.append(ControlEventType::kChainTornDown, 1);
  log.append(ControlEventType::kChainProvisioned, 2, "beta");
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.count(ControlEventType::kChainProvisioned), 2u);
  EXPECT_EQ(log.count(ControlEventType::kOpsFailed), 0u);
  const auto provisioned = log.by_type(ControlEventType::kChainProvisioned);
  ASSERT_EQ(provisioned.size(), 2u);
  EXPECT_EQ(provisioned[0].subject, 1u);
  EXPECT_EQ(provisioned[0].detail, "alpha");
  EXPECT_EQ(provisioned[1].subject, 2u);
  EXPECT_TRUE(log.is_ordered());
  log.clear();
  EXPECT_TRUE(log.empty());
}

TEST(ControlPlaneLogTest, EventTypeNames) {
  EXPECT_EQ(to_string(ControlEventType::kChainProvisioned), "chain-provisioned");
  EXPECT_EQ(to_string(ControlEventType::kVnfRelocated), "vnf-relocated");
  EXPECT_EQ(to_string(ControlEventType::kOpsFailed), "ops-failed");
  EXPECT_EQ(to_string(ControlEventType::kAlRepaired), "al-repaired");
}

TEST(ControlPlaneLogTest, OrchestratorWritesAuditTrail) {
  alvc::test::ClusterFixture f;
  alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
  alvc::nfv::NfcSpec spec;
  spec.name = "audited";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  const alvc::orchestrator::GreedyOpticalPlacement placement;
  const auto id = orch.provision_chain(spec, placement);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(orch.control_log().count(ControlEventType::kChainProvisioned), 1u);
  EXPECT_EQ(orch.control_log().count(ControlEventType::kSliceAllocated), 1u);
  const auto events = orch.control_log().by_type(ControlEventType::kChainProvisioned);
  EXPECT_EQ(events[0].detail, "audited");

  ASSERT_TRUE(orch.teardown_chain(*id).is_ok());
  EXPECT_EQ(orch.control_log().count(ControlEventType::kChainTornDown), 1u);
  EXPECT_EQ(orch.control_log().count(ControlEventType::kSliceReleased), 1u);
  EXPECT_TRUE(orch.control_log().is_ordered());
}

TEST(ControlPlaneLogTest, FailureWorkflowIsAudited) {
  alvc::test::ClusterFixture f;
  alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
  alvc::nfv::NfcSpec spec;
  spec.name = "failing";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  const alvc::orchestrator::GreedyOpticalPlacement placement;
  const auto id = orch.provision_chain(spec, placement);
  ASSERT_TRUE(id.has_value());
  const auto* host_ops =
      std::get_if<alvc::util::OpsId>(&orch.chain(*id)->placement.hosts[0]);
  ASSERT_NE(host_ops, nullptr);
  ASSERT_TRUE(orch.handle_ops_failure(*host_ops).has_value());
  EXPECT_EQ(orch.control_log().count(ControlEventType::kOpsFailed), 1u);
  EXPECT_EQ(orch.control_log().count(ControlEventType::kAlRepaired), 1u);
  EXPECT_GE(orch.control_log().count(ControlEventType::kVnfRelocated), 1u);
  EXPECT_EQ(orch.control_log().count(ControlEventType::kChainRepaired) +
                orch.control_log().count(ControlEventType::kChainLost),
            1u);
  EXPECT_TRUE(orch.control_log().is_ordered());
}

TEST(ControlPlaneLogTest, MigrationIsAudited) {
  alvc::test::ClusterFixture f;
  alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
  alvc::nfv::NfcSpec spec;
  spec.name = "moving";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  const alvc::orchestrator::GreedyOpticalPlacement placement;
  const auto id = orch.provision_chain(spec, placement);
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(orch.migrate_function(*id, 0, alvc::nfv::HostRef{alvc::util::ServerId{0}})
                  .is_ok());
  const auto events = orch.control_log().by_type(ControlEventType::kVnfRelocated);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].detail.find("operator migration"), std::string::npos);
}

}  // namespace
}  // namespace alvc::sdn
