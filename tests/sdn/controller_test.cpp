#include "sdn/controller.h"

#include <gtest/gtest.h>

#include "topology/builder.h"

namespace alvc::sdn {
namespace {

using alvc::topology::DataCenterTopology;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::TorId;

/// Line topology: T0 - O0 - O1 - T1 (switch vertices 0,1 = ToRs; 2,3 = OPSs).
DataCenterTopology line_dc() {
  DataCenterTopology topo;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  topo.connect_ops_ops(o0, o1);
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  return topo;
}

TEST(SdnControllerTest, InstallPathInstallsPerHopRules) {
  const auto topo = line_dc();
  SdnController controller(topo);
  // Path T0(0) -> O0(2) -> O1(3) -> T1(1).
  const std::vector<std::size_t> path{0, 2, 3, 1};
  ASSERT_TRUE(controller.install_path(NfcId{1}, path).is_ok());
  EXPECT_EQ(controller.stats().rules_installed, 3u);
  EXPECT_EQ(controller.chain_rule_count(NfcId{1}), 3u);
  EXPECT_EQ(*controller.tables().table(0).lookup(NfcId{1}), 2u);
  EXPECT_EQ(*controller.tables().table(2).lookup(NfcId{1}), 3u);
  EXPECT_EQ(*controller.tables().table(3).lookup(NfcId{1}), 1u);
  EXPECT_FALSE(controller.tables().table(1).lookup(NfcId{1}).has_value());
}

TEST(SdnControllerTest, RejectsNonContiguousPath) {
  const auto topo = line_dc();
  SdnController controller(topo);
  const std::vector<std::size_t> bad{0, 3};  // T0 and O1 are not adjacent
  const auto status = controller.install_path(NfcId{1}, bad);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(controller.stats().rules_installed, 0u);
}

TEST(SdnControllerTest, RejectsEmptyAndOutOfRange) {
  const auto topo = line_dc();
  SdnController controller(topo);
  EXPECT_FALSE(controller.install_path(NfcId{1}, {}).is_ok());
  const std::vector<std::size_t> oob{0, 99};
  EXPECT_FALSE(controller.install_path(NfcId{1}, oob).is_ok());
}

TEST(SdnControllerTest, SingleVertexPathInstallsNothing) {
  const auto topo = line_dc();
  SdnController controller(topo);
  const std::vector<std::size_t> self{2};
  ASSERT_TRUE(controller.install_path(NfcId{1}, self).is_ok());
  EXPECT_EQ(controller.stats().rules_installed, 0u);
  EXPECT_EQ(controller.stats().paths_installed, 1u);
}

TEST(SdnControllerTest, RemoveChainClearsAllRules) {
  const auto topo = line_dc();
  SdnController controller(topo);
  const std::vector<std::size_t> path{0, 2, 3, 1};
  ASSERT_TRUE(controller.install_path(NfcId{1}, path).is_ok());
  ASSERT_TRUE(controller.install_path(NfcId{2}, path).is_ok());
  EXPECT_EQ(controller.remove_chain(NfcId{1}), 3u);
  EXPECT_EQ(controller.chain_rule_count(NfcId{1}), 0u);
  EXPECT_EQ(controller.chain_rule_count(NfcId{2}), 3u);
  EXPECT_EQ(controller.tables().total_rules(), 3u);
  EXPECT_EQ(controller.remove_chain(NfcId{1}), 0u);
  EXPECT_EQ(controller.stats().rules_removed, 3u);
}

TEST(SdnControllerTest, MultiLegChainSharesSwitches) {
  const auto topo = line_dc();
  SdnController controller(topo);
  // Leg 1: T0 -> O0 -> O1; leg 2: O1 -> T1. (A chain visiting a host at O1.)
  const std::vector<std::size_t> leg1{0, 2, 3};
  const std::vector<std::size_t> leg2{3, 1};
  ASSERT_TRUE(controller.install_path(NfcId{5}, leg1).is_ok());
  ASSERT_TRUE(controller.install_path(NfcId{5}, leg2).is_ok());
  EXPECT_EQ(controller.chain_rule_count(NfcId{5}), 3u);
  EXPECT_EQ(controller.remove_chain(NfcId{5}), 3u);
  EXPECT_EQ(controller.tables().total_rules(), 0u);
}

}  // namespace
}  // namespace alvc::sdn
