#include "sdn/flow_table.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace alvc::sdn {
namespace {

TEST(FlowTableTest, InstallLookupRemove) {
  FlowTable table;
  EXPECT_TRUE(table.install(NfcId{1}, 5));
  EXPECT_EQ(table.size(), 1u);
  ASSERT_TRUE(table.lookup(NfcId{1}).has_value());
  EXPECT_EQ(*table.lookup(NfcId{1}), 5u);
  EXPECT_FALSE(table.lookup(NfcId{2}).has_value());
  EXPECT_TRUE(table.remove(NfcId{1}));
  EXPECT_FALSE(table.remove(NfcId{1}));
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTableTest, InstallOverwrites) {
  FlowTable table;
  EXPECT_TRUE(table.install(NfcId{1}, 5));
  EXPECT_FALSE(table.install(NfcId{1}, 9));  // overwrite, not new
  EXPECT_EQ(*table.lookup(NfcId{1}), 9u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableTest, RulesExportInNfcOrder) {
  // Regression: rules_ is an unordered_map, so the export must sort —
  // alvc_analyze's unordered-escape pass flagged the raw iteration (the
  // state auditor diffs exported tables across runs).
  FlowTable table;
  for (const std::uint64_t id : {7u, 2u, 9u, 1u, 5u, 3u}) {
    EXPECT_TRUE(table.install(NfcId{id}, id + 100));
  }
  const auto rules = table.rules();
  ASSERT_EQ(rules.size(), 6u);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_LT(rules[i - 1].nfc, rules[i].nfc);
  }
  EXPECT_EQ(rules.front().nfc, NfcId{1});
  EXPECT_EQ(rules.back().nfc, NfcId{9});
}

TEST(FlowTableSetTest, TotalRules) {
  FlowTableSet set(3);
  EXPECT_EQ(set.switch_count(), 3u);
  set.table(0).install(NfcId{1}, 1);
  set.table(1).install(NfcId{1}, 2);
  set.table(1).install(NfcId{2}, 0);
  EXPECT_EQ(set.total_rules(), 3u);
  EXPECT_THROW((void)set.table(3), std::out_of_range);
}

}  // namespace
}  // namespace alvc::sdn
