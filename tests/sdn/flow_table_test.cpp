#include "sdn/flow_table.h"

#include <gtest/gtest.h>

namespace alvc::sdn {
namespace {

TEST(FlowTableTest, InstallLookupRemove) {
  FlowTable table;
  EXPECT_TRUE(table.install(NfcId{1}, 5));
  EXPECT_EQ(table.size(), 1u);
  ASSERT_TRUE(table.lookup(NfcId{1}).has_value());
  EXPECT_EQ(*table.lookup(NfcId{1}), 5u);
  EXPECT_FALSE(table.lookup(NfcId{2}).has_value());
  EXPECT_TRUE(table.remove(NfcId{1}));
  EXPECT_FALSE(table.remove(NfcId{1}));
  EXPECT_EQ(table.size(), 0u);
}

TEST(FlowTableTest, InstallOverwrites) {
  FlowTable table;
  EXPECT_TRUE(table.install(NfcId{1}, 5));
  EXPECT_FALSE(table.install(NfcId{1}, 9));  // overwrite, not new
  EXPECT_EQ(*table.lookup(NfcId{1}), 9u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlowTableSetTest, TotalRules) {
  FlowTableSet set(3);
  EXPECT_EQ(set.switch_count(), 3u);
  set.table(0).install(NfcId{1}, 1);
  set.table(1).install(NfcId{1}, 2);
  set.table(1).install(NfcId{2}, 0);
  EXPECT_EQ(set.total_rules(), 3u);
  EXPECT_THROW((void)set.table(3), std::out_of_range);
}

}  // namespace
}  // namespace alvc::sdn
