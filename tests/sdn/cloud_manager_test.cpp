#include "sdn/cloud_manager.h"

#include <gtest/gtest.h>

#include "topology/topology.h"

namespace alvc::sdn {
namespace {

using alvc::nfv::VnfCatalog;
using alvc::nfv::VnfState;
using alvc::nfv::VnfType;
using alvc::topology::DataCenterTopology;
using alvc::topology::Resources;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::ServiceId;

struct Fixture {
  DataCenterTopology topo;
  VnfCatalog catalog = VnfCatalog::make_default();

  Fixture() {
    topo.add_ops(true, Resources{.cpu_cores = 4, .memory_gb = 8, .storage_gb = 32});
    const auto t = topo.add_tor();
    topo.connect_tor_ops(t, OpsId{0});
    topo.add_server(t, Resources{.cpu_cores = 16, .memory_gb = 64, .storage_gb = 512});
  }
};

TEST(CloudNfvManagerTest, DeployReservesAndActivates) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto fw = *f.catalog.find_by_type(VnfType::kFirewall);
  const auto id = mgr.deploy(fw, alvc::nfv::HostRef{OpsId{0}});
  ASSERT_TRUE(id.has_value()) << id.error().to_string();
  EXPECT_EQ(mgr.lifecycle().instance(*id).state, VnfState::kActive);
  EXPECT_EQ(mgr.stats().deployed, 1u);
  const auto free = mgr.pool().free_capacity(alvc::nfv::HostRef{OpsId{0}});
  EXPECT_DOUBLE_EQ(free.cpu_cores, 3);  // 4 - 1
}

TEST(CloudNfvManagerTest, DeployRejectsOverCapacity) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto dpi = *f.catalog.find_by_type(VnfType::kDeepPacketInspection);
  const auto id = mgr.deploy(dpi, alvc::nfv::HostRef{OpsId{0}});
  ASSERT_FALSE(id.has_value());
  EXPECT_EQ(id.error().code, ErrorCode::kCapacityExceeded);
  EXPECT_EQ(mgr.stats().rejected, 1u);
  // Server can take it.
  const auto on_server = mgr.deploy(dpi, alvc::nfv::HostRef{ServerId{0}});
  EXPECT_TRUE(on_server.has_value());
}

TEST(CloudNfvManagerTest, ElectronicOnlyPinnedOffOptical) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto wan = *f.catalog.find_by_type(VnfType::kWanOptimizer);
  const auto id = mgr.deploy(wan, alvc::nfv::HostRef{OpsId{0}});
  ASSERT_FALSE(id.has_value());
  EXPECT_EQ(id.error().code, ErrorCode::kInvalidArgument);
  EXPECT_TRUE(mgr.deploy(wan, alvc::nfv::HostRef{ServerId{0}}).has_value());
}

TEST(CloudNfvManagerTest, TerminateReleasesCapacity) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto fw = *f.catalog.find_by_type(VnfType::kFirewall);
  const auto id = mgr.deploy(fw, alvc::nfv::HostRef{OpsId{0}});
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(mgr.terminate(*id).is_ok());
  EXPECT_EQ(mgr.lifecycle().instance(*id).state, VnfState::kTerminated);
  const auto free = mgr.pool().free_capacity(alvc::nfv::HostRef{OpsId{0}});
  EXPECT_DOUBLE_EQ(free.cpu_cores, 4);
  EXPECT_FALSE(mgr.terminate(*id).is_ok());
  EXPECT_FALSE(mgr.terminate(alvc::nfv::VnfInstanceId{42}).is_ok());
}

TEST(CloudNfvManagerTest, ScaleUpAndDownAdjustReservation) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto fw = *f.catalog.find_by_type(VnfType::kFirewall);  // 1 core
  const auto id = mgr.deploy(fw, alvc::nfv::HostRef{OpsId{0}});
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(mgr.scale(*id, 3.0).is_ok());
  EXPECT_DOUBLE_EQ(mgr.pool().free_capacity(alvc::nfv::HostRef{OpsId{0}}).cpu_cores, 1);
  ASSERT_TRUE(mgr.scale(*id, 1.0).is_ok());
  EXPECT_DOUBLE_EQ(mgr.pool().free_capacity(alvc::nfv::HostRef{OpsId{0}}).cpu_cores, 3);
  EXPECT_EQ(mgr.stats().scaled, 2u);
}

TEST(CloudNfvManagerTest, ScaleBeyondCapacityFailsCleanly) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto fw = *f.catalog.find_by_type(VnfType::kFirewall);
  const auto id = mgr.deploy(fw, alvc::nfv::HostRef{OpsId{0}});
  ASSERT_TRUE(id.has_value());
  const auto status = mgr.scale(*id, 100.0);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCapacityExceeded);
  // State and reservation untouched.
  EXPECT_EQ(mgr.lifecycle().instance(*id).state, VnfState::kActive);
  EXPECT_DOUBLE_EQ(mgr.lifecycle().instance(*id).scale, 1.0);
  EXPECT_DOUBLE_EQ(mgr.pool().free_capacity(alvc::nfv::HostRef{OpsId{0}}).cpu_cores, 3);
}

TEST(CloudNfvManagerTest, UpdateEvent) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto fw = *f.catalog.find_by_type(VnfType::kFirewall);
  const auto id = mgr.deploy(fw, alvc::nfv::HostRef{ServerId{0}});
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(mgr.update(*id).is_ok());
  EXPECT_EQ(mgr.stats().updated, 1u);
  EXPECT_FALSE(mgr.update(alvc::nfv::VnfInstanceId{42}).is_ok());
}

TEST(CloudNfvManagerTest, ReservedDemandTracksScale) {
  Fixture f;
  CloudNfvManager mgr(f.catalog, f.topo);
  const auto fw = *f.catalog.find_by_type(VnfType::kFirewall);
  const auto id = mgr.deploy(fw, alvc::nfv::HostRef{ServerId{0}});
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(mgr.reserved_demand(*id).cpu_cores, 1.0);
  ASSERT_TRUE(mgr.scale(*id, 2.0).is_ok());
  EXPECT_DOUBLE_EQ(mgr.reserved_demand(*id).cpu_cores, 2.0);
  ASSERT_TRUE(mgr.terminate(*id).is_ok());
  EXPECT_DOUBLE_EQ(mgr.reserved_demand(*id).cpu_cores, 0.0);
}

}  // namespace
}  // namespace alvc::sdn
