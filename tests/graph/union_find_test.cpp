#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace alvc::graph {
namespace {

TEST(UnionFindTest, InitiallyAllSeparate) {
  UnionFind uf(5);
  EXPECT_EQ(uf.component_count(), 5u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFindTest, UniteMergesComponents) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already connected
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
}

TEST(UnionFindTest, FindOutOfRangeThrows) {
  UnionFind uf(2);
  EXPECT_THROW((void)uf.find(2), std::out_of_range);
}

TEST(ConnectedComponentsTest, LabelsPartitionVertices) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[3]);
}

TEST(IsConnectedTest, Cases) {
  Graph empty(0);
  EXPECT_TRUE(is_connected(empty));
  Graph single(1);
  EXPECT_TRUE(is_connected(single));
  Graph two(2);
  EXPECT_FALSE(is_connected(two));
  two.add_edge(0, 1);
  EXPECT_TRUE(is_connected(two));
}

}  // namespace
}  // namespace alvc::graph
