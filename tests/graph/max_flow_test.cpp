#include "graph/max_flow.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/error.h"

namespace alvc::graph {
namespace {

TEST(FlowNetworkTest, SingleEdge) {
  FlowNetwork net(2);
  net.add_edge(0, 1, 5.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 1), 5.0);
}

TEST(FlowNetworkTest, SeriesTakesMinimum) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 5.0);
  net.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 3.0);
}

TEST(FlowNetworkTest, ParallelPathsAdd) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 2.0);
  net.add_edge(1, 3, 2.0);
  net.add_edge(0, 2, 3.0);
  net.add_edge(2, 3, 3.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 3), 5.0);
}

TEST(FlowNetworkTest, ClassicCLRSInstance) {
  // CLRS figure: max flow 23.
  FlowNetwork net(6);
  net.add_edge(0, 1, 16);
  net.add_edge(0, 2, 13);
  net.add_edge(1, 2, 10);
  net.add_edge(2, 1, 4);
  net.add_edge(1, 3, 12);
  net.add_edge(3, 2, 9);
  net.add_edge(2, 4, 14);
  net.add_edge(4, 3, 7);
  net.add_edge(3, 5, 20);
  net.add_edge(4, 5, 4);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 5), 23.0);
}

TEST(FlowNetworkTest, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.add_edge(0, 1, 10.0);
  net.add_edge(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 3), 0.0);
}

TEST(FlowNetworkTest, RequiresAugmentingPathReversal) {
  // Flow must be re-routed through the residual graph.
  FlowNetwork net(4);
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(1, 2, 1);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 3), 2.0);
}

TEST(FlowNetworkTest, RecomputeIsIdempotent) {
  FlowNetwork net(3);
  net.add_edge(0, 1, 4.0);
  net.add_edge(1, 2, 4.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(net.max_flow(0, 2), 4.0);
}

TEST(FlowNetworkTest, FlowConservationOnArcs) {
  FlowNetwork net(4);
  const auto e1 = net.add_edge(0, 1, 2.0);
  const auto e2 = net.add_edge(1, 3, 2.0);
  net.add_edge(0, 2, 1.0);
  net.add_edge(2, 3, 1.0);
  ALVC_IGNORE_STATUS(net.max_flow(0, 3), "the aggregate is re-derived per-arc below");
  EXPECT_DOUBLE_EQ(net.flow_on(e1), 2.0);
  EXPECT_DOUBLE_EQ(net.flow_on(e2), 2.0);
  EXPECT_DOUBLE_EQ(net.capacity_of(e1), 2.0);
}

TEST(FlowNetworkTest, InvalidArgumentsThrow) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_edge(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(net.add_edge(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW((void)net.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW((void)net.max_flow(0, 9), std::out_of_range);
}

class MaxFlowRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxFlowRandomTest, FlowBoundedByDegreeCuts) {
  alvc::util::Rng rng(GetParam());
  const std::size_t n = 8 + rng.uniform_index(10);
  FlowNetwork net(n);
  double source_cap = 0;
  double sink_cap = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u == v || !rng.bernoulli(0.3)) continue;
      const double cap = 1.0 + rng.uniform_index(9);
      net.add_edge(u, v, cap);
      if (u == 0) source_cap += cap;
      if (v == n - 1) sink_cap += cap;
    }
  }
  const double flow = net.max_flow(0, n - 1);
  EXPECT_GE(flow, 0.0);
  EXPECT_LE(flow, source_cap + 1e-9);
  EXPECT_LE(flow, sink_cap + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace alvc::graph
