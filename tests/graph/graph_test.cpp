#include "graph/graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace alvc::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GraphTest, AddVertexGrows) {
  Graph g(2);
  EXPECT_EQ(g.add_vertex(), 2u);
  EXPECT_EQ(g.vertex_count(), 3u);
}

TEST(GraphTest, UndirectedEdgeVisibleFromBothSides) {
  Graph g(3);
  const auto e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(e, 0u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].vertex, 1u);
  EXPECT_EQ(g.neighbors(1)[0].vertex, 0u);
  EXPECT_DOUBLE_EQ(g.neighbors(0)[0].weight, 2.5);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphTest, DirectedEdgeOnlyForward) {
  Graph g(3, Graph::Kind::kDirected);
  g.add_edge(0, 1);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(1).size(), 0u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(GraphTest, SelfLoopAppearsOnce) {
  Graph g(2);
  g.add_edge(1, 1);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphTest, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW((void)g.neighbors(5), std::out_of_range);
  EXPECT_THROW((void)g.edge(0), std::out_of_range);
}

TEST(GraphTest, EdgeRecordsEndpoints) {
  Graph g(4);
  g.add_edge(1, 3, 7.0);
  const Edge& e = g.edge(0);
  EXPECT_EQ(e.from, 1u);
  EXPECT_EQ(e.to, 3u);
  EXPECT_DOUBLE_EQ(e.weight, 7.0);
}

TEST(GraphTest, ParallelEdgesAllowed) {
  Graph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
}

}  // namespace
}  // namespace alvc::graph
