// Degenerate-input suite for the CSR graph core: every algorithm family
// (bfs/bfs_path_to, dijkstra, k-shortest, max-flow, articulation,
// bipartite matching + cover) against the shapes that break flat-array
// implementations — the empty graph, a single vertex, fully disconnected
// components, self-loops, and vertices at the very top of the index space
// (off-by-one territory for CSR offsets and stamped scratch arrays).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/articulation.h"
#include "graph/bipartite.h"
#include "graph/k_shortest.h"
#include "graph/matching.h"
#include "graph/max_flow.h"
#include "graph/scratch.h"
#include "graph/shortest_path.h"
#include "graph/vertex_cover.h"

namespace alvc::graph {
namespace {

VertexSet all_vertices(std::size_t n) {
  VertexSet s;
  s.reset(n);
  for (std::size_t v = 0; v < n; ++v) s.insert(v);
  return s;
}

// ---------------------------------------------------------------- empty ----

TEST(GraphEdgeCases, EmptyGraphIsInertEverywhere) {
  const Graph g(0);
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.csr().offsets.size() <= 1);
  EXPECT_TRUE(articulation_points(g).empty());
  EXPECT_TRUE(articulation_points_in_subgraph(g, std::vector<std::size_t>{}).empty());

  const BipartiteGraph b(0, 0);
  const Matching m = maximum_bipartite_matching(b);
  EXPECT_EQ(m.size, 0u);
  EXPECT_TRUE(m.match_left.empty());
  EXPECT_TRUE(m.match_right.empty());
  EXPECT_TRUE(greedy_one_sided_cover(b).empty());
}

// -------------------------------------------------------- single vertex ----

TEST(GraphEdgeCases, SingleVertexGraph) {
  const Graph g(1);
  const PathResult r = bfs(g, 0);
  ASSERT_EQ(r.distance.size(), 1u);
  EXPECT_EQ(r.distance[0], 0.0);
  EXPECT_EQ(r.predecessor[0], kNoVertex);
  const PathResult d = dijkstra(g, 0);
  EXPECT_EQ(d.distance[0], 0.0);

  // Source == target: the trivial one-vertex path, even with no edges.
  const auto path = bfs_path_to(g, 0, 0, all_vertices(1));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, std::vector<std::size_t>{0});

  const auto paths = k_shortest_paths(g, 0, 0, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], std::vector<std::size_t>{0});

  EXPECT_TRUE(articulation_points(g).empty());

  FlowNetwork net(1);
  EXPECT_THROW(static_cast<void>(net.max_flow(0, 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(net.max_flow(0, 1)), std::out_of_range);
}

// -------------------------------------------- fully disconnected graph ----

TEST(GraphEdgeCases, FullyDisconnectedComponents) {
  const std::size_t n = 9;
  const Graph g(n);  // no edges at all
  const PathResult r = bfs(g, 4);
  for (std::size_t v = 0; v < n; ++v) {
    if (v == 4) {
      EXPECT_EQ(r.distance[v], 0.0);
    } else {
      EXPECT_EQ(r.distance[v], kUnreachable);
      EXPECT_EQ(r.predecessor[v], kNoVertex);
    }
  }
  const PathResult d = dijkstra(g, 4);
  EXPECT_EQ(d.distance[0], kUnreachable);

  EXPECT_FALSE(bfs_path_to(g, 0, n - 1, all_vertices(n)).has_value());
  EXPECT_TRUE(k_shortest_paths(g, 0, n - 1, 5).empty());
  EXPECT_TRUE(articulation_points(g).empty());

  FlowNetwork net(n);
  EXPECT_EQ(net.max_flow(0, n - 1), 0.0);

  // Two 2-vertex islands: paths exist inside an island, never across.
  Graph islands(4);
  islands.add_edge(0, 1);
  islands.add_edge(2, 3);
  EXPECT_TRUE(bfs_path_to(islands, 0, 1, all_vertices(4)).has_value());
  EXPECT_FALSE(bfs_path_to(islands, 0, 2, all_vertices(4)).has_value());
  EXPECT_TRUE(k_shortest_paths(islands, 1, 3, 4).empty());
  EXPECT_TRUE(articulation_points(islands).empty());
}

// ----------------------------------------------------------- self-loops ----

TEST(GraphEdgeCases, SelfLoopsAreInert) {
  // A path 0-1-2 with a self-loop on every vertex: traversal results must
  // be identical to the loop-free path (a self-loop neighbor is always
  // already seen / never relaxes a distance).
  Graph g(3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 1, 5.0);
  g.add_edge(1, 2);
  g.add_edge(2, 2);

  Graph plain(3);
  plain.add_edge(0, 1);
  plain.add_edge(1, 2);

  const PathResult with_loops = bfs(g, 0);
  const PathResult without = bfs(plain, 0);
  EXPECT_EQ(with_loops.distance, without.distance);
  EXPECT_EQ(with_loops.predecessor, without.predecessor);
  EXPECT_EQ(dijkstra(g, 0).distance, dijkstra(plain, 0).distance);

  const auto path = bfs_path_to(g, 0, 2, all_vertices(3));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::size_t>{0, 1, 2}));

  // Simple paths never revisit a vertex, so Yen's must not emit loops.
  for (const auto& p : k_shortest_paths(g, 0, 2, 8)) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) EXPECT_NE(p[i], p[i + 1]);
  }

  // The middle vertex is a cut vertex with or without loops.
  EXPECT_EQ(articulation_points(g), std::vector<std::size_t>{1});
  EXPECT_EQ(articulation_points(g), articulation_points(plain));

  // A self-loop arc can never carry s-t flow.
  FlowNetwork net(3);
  net.add_edge(0, 1, 2.0);
  const std::size_t loop_arc = net.add_edge(1, 1, 10.0);
  net.add_edge(1, 2, 2.0);
  EXPECT_EQ(net.max_flow(0, 2), 2.0);
  EXPECT_EQ(net.flow_on(loop_arc), 0.0);
}

// ----------------------------------------------------- max-index nodes ----

TEST(GraphEdgeCases, MaxIndexVerticesExerciseCsrBoundaries) {
  // All structure crammed against the top of the index space: vertices
  // below `lo` are isolated, so every CSR offset below them is equal and
  // the last offset slot is exercised by real degree.
  const std::size_t n = 64;
  const std::size_t lo = n - 4;  // 60-61-62-63 path plus a chord
  Graph g(n);
  g.add_edge(lo, lo + 1);
  g.add_edge(lo + 1, lo + 2);
  g.add_edge(lo + 2, lo + 3);
  g.add_edge(lo, lo + 2, 3.0);

  const PathResult r = bfs(g, lo);
  EXPECT_EQ(r.distance[lo + 3], 2.0);
  EXPECT_EQ(r.predecessor[lo + 3], lo + 2);
  EXPECT_EQ(r.distance[0], kUnreachable);

  const PathResult d = dijkstra(g, lo);
  EXPECT_EQ(d.distance[lo + 2], 2.0);  // via lo+1, cheaper than the chord

  const auto path = bfs_path_to(g, lo, lo + 3, all_vertices(n));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), lo);
  EXPECT_EQ(path->back(), lo + 3);

  const auto paths = k_shortest_paths(g, lo, lo + 3, 4);
  ASSERT_EQ(paths.size(), 2u);  // via the path and via the chord

  // lo+2 separates lo+3 from the rest; the chord protects lo+1.
  EXPECT_EQ(articulation_points(g), std::vector<std::size_t>{lo + 2});
  const std::vector<std::size_t> members{lo, lo + 1, lo + 2, lo + 3};
  EXPECT_EQ(articulation_points_in_subgraph(g, members), std::vector<std::size_t>{lo + 2});

  FlowNetwork net(n);
  net.add_edge(lo, lo + 1, 1.0);
  net.add_edge(lo + 1, lo + 2, 1.0);
  net.add_edge(lo, lo + 2, 1.0);
  net.add_edge(lo + 2, lo + 3, 5.0);
  EXPECT_EQ(net.max_flow(lo, lo + 3), 2.0);

  // Bipartite core with the only edges on the last left/right vertices.
  BipartiteGraph b(16, 16);
  b.add_edge(15, 15);
  b.add_edge(14, 15);
  b.add_edge(15, 14);
  const Matching m = maximum_bipartite_matching(b);
  EXPECT_EQ(m.size, 2u);
  const auto cover = greedy_one_sided_cover(b);
  ASSERT_FALSE(cover.empty());
  for (std::size_t l : cover) EXPECT_GE(l, 14u);
}

// ------------------------------------------- scratch reuse across sizes ----

TEST(GraphEdgeCases, ScratchSurvivesShrinkingAndGrowingGraphs) {
  // The thread-local scratch is sized by the largest graph seen; alternate
  // between large and small graphs to prove stale state never leaks.
  Graph big(128);
  for (std::size_t v = 0; v + 1 < 128; ++v) big.add_edge(v, v + 1);
  Graph small(3);
  small.add_edge(0, 1);

  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(bfs(big, 0).distance[127], 127.0);
    const PathResult r = bfs(small, 0);
    EXPECT_EQ(r.distance[1], 1.0);
    EXPECT_EQ(r.distance[2], kUnreachable);
    EXPECT_FALSE(bfs_path_to(small, 1, 2, all_vertices(3)).has_value());
    ASSERT_TRUE(bfs_path_to(big, 0, 64, all_vertices(128)).has_value());
  }
}

}  // namespace
}  // namespace alvc::graph
