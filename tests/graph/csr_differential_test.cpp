// CSR differential suite: the flat CSR graph core versus the pre-CSR
// reference implementations, compared edge-for-edge and result-for-result.
//
// The CSR refactor promises BIT-IDENTICAL behavior, not just equivalent
// answers: the fill order reproduces the old per-vertex push_back order, so
// every traversal tie-break — BFS predecessor choice, Dijkstra relaxation
// order, Yen's spur enumeration, Dinic arc order, Tarjan neighbor order,
// greedy-cover argmax — must match the legacy build exactly. Each seed
// builds one switch-shaped topology and one weighted G(n,p) graph and runs
// all six algorithm families (bfs, dijkstra, k-shortest, max-flow,
// articulation, bipartite matching + cover) against the preserved legacy
// implementations in tests/support/legacy_graph.h.
//
// Every algorithm runs TWICE per graph: a second identical call must
// reproduce the first, which catches scratch-buffer reuse bugs (a stale
// stamp or frontier surviving into the next traversal).
#include <gtest/gtest.h>

#include <vector>

#include "graph/articulation.h"
#include "graph/bipartite.h"
#include "graph/k_shortest.h"
#include "graph/matching.h"
#include "graph/max_flow.h"
#include "graph/scratch.h"
#include "graph/shortest_path.h"
#include "graph/vertex_cover.h"
#include "support/legacy_graph.h"
#include "support/random_graph.h"
#include "util/rng.h"

namespace alvc::graph {
namespace {

using alvc::test::random_switch_graph;
using alvc::test::random_weighted_gnp_graph;
using alvc::test::SwitchTopologyParams;

/// CSR adjacency must reproduce the legacy per-vertex push_back vectors
/// slot for slot: same neighbor, same edge id, same weight.
void expect_adjacency_identical(const Graph& g) {
  const auto legacy_adj = alvc::test::legacy::build_adjacency(g);
  ASSERT_EQ(legacy_adj.size(), g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    const auto csr_nbrs = g.neighbors(v);
    ASSERT_EQ(csr_nbrs.size(), legacy_adj[v].size()) << "degree mismatch at vertex " << v;
    for (std::size_t i = 0; i < csr_nbrs.size(); ++i) {
      EXPECT_EQ(csr_nbrs[i].vertex, legacy_adj[v][i].vertex) << "vertex " << v << " slot " << i;
      EXPECT_EQ(csr_nbrs[i].edge, legacy_adj[v][i].edge) << "vertex " << v << " slot " << i;
      EXPECT_EQ(csr_nbrs[i].weight, legacy_adj[v][i].weight) << "vertex " << v << " slot " << i;
    }
  }
}

void expect_path_results_identical(const PathResult& actual, const PathResult& expected,
                                   const char* what) {
  EXPECT_EQ(actual.distance, expected.distance) << what << ": distance diverged";
  EXPECT_EQ(actual.predecessor, expected.predecessor) << what << ": predecessor diverged";
}

/// Sources that cover the index-space corners: first, middle, last vertex.
std::vector<std::size_t> probe_sources(const Graph& g) {
  if (g.vertex_count() == 0) return {};
  return {0, g.vertex_count() / 2, g.vertex_count() - 1};
}

void check_bfs_and_dijkstra(const Graph& g) {
  const auto filter = [](std::size_t v) { return v % 3 != 0; };
  for (std::size_t source : probe_sources(g)) {
    expect_path_results_identical(bfs(g, source), alvc::test::legacy::bfs(g, source), "bfs");
    expect_path_results_identical(bfs(g, source), alvc::test::legacy::bfs(g, source),
                                  "bfs (repeat)");
    expect_path_results_identical(bfs(g, source, filter),
                                  alvc::test::legacy::bfs(g, source, filter), "filtered bfs");
    expect_path_results_identical(dijkstra(g, source), alvc::test::legacy::dijkstra(g, source),
                                  "dijkstra");
    expect_path_results_identical(dijkstra(g, source, filter),
                                  alvc::test::legacy::dijkstra(g, source, filter),
                                  "filtered dijkstra");
  }
}

/// bfs_path_to against the legacy pair it replaces: full BFS under the
/// equivalent membership filter, then extract_path.
void check_bfs_path_to(const Graph& g, std::size_t& reachable_pairs) {
  if (g.vertex_count() == 0) return;
  VertexSet allowed;
  allowed.reset(g.vertex_count());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (v % 3 != 0) allowed.insert(v);
  }
  const auto filter = [&](std::size_t v) { return allowed.contains(v); };
  for (std::size_t source : probe_sources(g)) {
    for (std::size_t target : probe_sources(g)) {
      const auto fast = bfs_path_to(g, source, target, allowed);
      const auto slow =
          extract_path(alvc::test::legacy::bfs(g, source, filter), target);
      EXPECT_EQ(fast, slow) << "bfs_path_to " << source << "->" << target;
      EXPECT_EQ(bfs_path_to(g, source, target, allowed), slow)
          << "bfs_path_to repeat " << source << "->" << target;
      if (fast) ++reachable_pairs;
    }
  }
}

void check_k_shortest(const Graph& g) {
  if (g.vertex_count() < 2) return;
  const std::size_t source = 0;
  const std::size_t target = g.vertex_count() - 1;
  EXPECT_EQ(k_shortest_paths(g, source, target, 6),
            alvc::test::legacy::k_shortest_paths(g, source, target, 6));
  const auto filter = [](std::size_t v) { return v % 4 != 1; };
  EXPECT_EQ(k_shortest_paths(g, source, target, 4, filter),
            alvc::test::legacy::k_shortest_paths(g, source, target, 4, filter));
}

/// Same arc sequence into both networks (one directed arc per undirected
/// edge, each direction, capacity = weight): total flow and every per-arc
/// flow split must agree exactly.
void check_max_flow(const Graph& g, std::size_t& positive_flows) {
  if (g.vertex_count() < 2) return;
  FlowNetwork net(g.vertex_count());
  alvc::test::legacy::FlowNetwork legacy_net(g.vertex_count());
  for (const Edge& e : g.edges()) {
    if (e.from == e.to) continue;
    net.add_edge(e.from, e.to, e.weight);
    legacy_net.add_edge(e.from, e.to, e.weight);
    net.add_edge(e.to, e.from, e.weight);
    legacy_net.add_edge(e.to, e.from, e.weight);
  }
  const std::size_t s = 0;
  const std::size_t t = g.vertex_count() - 1;
  const double total = net.max_flow(s, t);
  EXPECT_EQ(total, legacy_net.max_flow(s, t)) << "max-flow value diverged";
  const std::size_t arc_count = [&] {
    std::size_t n = 0;
    for (const Edge& e : g.edges()) {
      if (e.from != e.to) n += 2;  // two forward arcs per undirected edge
    }
    return n;
  }();
  for (std::size_t arc = 0; arc < 2 * arc_count; arc += 2) {
    EXPECT_EQ(net.flow_on(arc), legacy_net.flow_on(arc)) << "arc " << arc << " flow diverged";
  }
  EXPECT_EQ(net.max_flow(s, t), total) << "max-flow repeat diverged";
  if (total > 0) ++positive_flows;
}

void check_articulation(const Graph& g, std::size_t& cut_count) {
  const auto cuts = articulation_points(g);
  EXPECT_EQ(cuts, alvc::test::legacy::articulation_points(g));
  EXPECT_EQ(articulation_points(g), cuts) << "articulation repeat diverged";
  cut_count += cuts.size();
  // Induced subgraph: every other vertex, plus an out-of-range member the
  // implementation must skip.
  std::vector<std::size_t> members;
  for (std::size_t v = 0; v < g.vertex_count(); v += 2) members.push_back(v);
  members.push_back(g.vertex_count() + 17);
  EXPECT_EQ(articulation_points_in_subgraph(g, members),
            alvc::test::legacy::articulation_points_in_subgraph(g, members));
}

void check_bipartite(std::uint64_t seed) {
  alvc::util::Rng rng(seed * 977 + 11);
  const std::size_t nl = 6 + rng.uniform_index(20);
  const std::size_t nr = 3 + rng.uniform_index(10);
  BipartiteGraph g(nl, nr);
  alvc::test::legacy::Bipartite legacy_g(nl, nr);
  for (std::size_t l = 0; l < nl; ++l) {
    for (std::size_t r = 0; r < nr; ++r) {
      if (rng.bernoulli(0.3)) {
        g.add_edge(l, r);
        legacy_g.add_edge(l, r);
      }
    }
  }
  const Matching m = maximum_bipartite_matching(g);
  const Matching legacy_m = alvc::test::legacy::maximum_bipartite_matching(legacy_g);
  EXPECT_EQ(m.size, legacy_m.size);
  EXPECT_EQ(m.match_left, legacy_m.match_left);
  EXPECT_EQ(m.match_right, legacy_m.match_right);
  // The incremental-gain greedy cover against the old full-rescan version:
  // identical picks in identical order (the sort at the end hides order,
  // but count + membership pin the argmax sequence tightly).
  EXPECT_EQ(greedy_one_sided_cover(g), alvc::test::legacy::greedy_one_sided_cover(legacy_g));
  EXPECT_EQ(greedy_one_sided_cover(g), alvc::test::legacy::greedy_one_sided_cover(legacy_g));
}

class CsrDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrDifferentialTest, SwitchTopologyAllAlgorithmsMatchLegacy) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "seed = " << seed);
  SwitchTopologyParams params;
  params.racks = 4 + seed % 13;
  params.ops_per_rack = 1 + seed % 3;
  params.fan_out = 2 + seed % 3;
  params.fault_fraction = 0.1 * static_cast<double>(seed % 4);
  params.seed = seed;
  const Graph g = random_switch_graph(params);
  ASSERT_GT(g.edge_count(), 0u) << "vacuous topology";

  expect_adjacency_identical(g);
  check_bfs_and_dijkstra(g);
  std::size_t reachable_pairs = 0;
  check_bfs_path_to(g, reachable_pairs);
  check_k_shortest(g);
  std::size_t positive_flows = 0;
  check_max_flow(g, positive_flows);
  std::size_t cut_count = 0;
  check_articulation(g, cut_count);
}

TEST_P(CsrDifferentialTest, WeightedGnpAllAlgorithmsMatchLegacy) {
  const std::uint64_t seed = GetParam();
  SCOPED_TRACE(::testing::Message() << "seed = " << seed);
  alvc::util::Rng rng(seed);
  const std::size_t n = 8 + rng.uniform_index(12);
  const Graph g = random_weighted_gnp_graph(rng, n, 0.25, 4);

  expect_adjacency_identical(g);
  check_bfs_and_dijkstra(g);
  std::size_t reachable_pairs = 0;
  check_bfs_path_to(g, reachable_pairs);
  check_k_shortest(g);
  std::size_t positive_flows = 0;
  check_max_flow(g, positive_flows);
  std::size_t cut_count = 0;
  check_articulation(g, cut_count);
  check_bipartite(seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrDifferentialTest, ::testing::Range<std::uint64_t>(1, 31));

// Aggregate non-vacuousness: across a fixed seed band the suite must have
// exercised real work — reachable restricted paths, positive flows, and at
// least one articulation point — otherwise the per-seed comparisons could
// all be trivially comparing empty results.
TEST(CsrDifferentialCoverage, SuiteExercisesNonTrivialCases) {
  std::size_t reachable_pairs = 0;
  std::size_t positive_flows = 0;
  std::size_t cut_count = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    SwitchTopologyParams params;
    params.racks = 4 + seed % 13;
    params.ops_per_rack = 1 + seed % 3;
    params.fan_out = 2 + seed % 3;
    params.fault_fraction = 0.1 * static_cast<double>(seed % 4);
    params.seed = seed;
    const Graph g = random_switch_graph(params);
    check_bfs_path_to(g, reachable_pairs);
    check_max_flow(g, positive_flows);
    check_articulation(g, cut_count);
  }
  EXPECT_GT(reachable_pairs, 30u) << "restricted BFS almost never reached its target";
  EXPECT_GT(positive_flows, 10u) << "max-flow almost never pushed flow";
  EXPECT_GT(cut_count, 5u) << "articulation analysis almost never found a cut";
}

}  // namespace
}  // namespace alvc::graph
