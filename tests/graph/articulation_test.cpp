#include "graph/articulation.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/union_find.h"
#include "support/random_graph.h"
#include "util/rng.h"

namespace alvc::graph {
namespace {

TEST(ArticulationTest, PathGraphInteriorVerticesAreCuts) {
  Graph g(5);
  for (std::size_t i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ArticulationTest, CycleHasNoCuts) {
  Graph g(5);
  for (std::size_t i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  EXPECT_TRUE(articulation_points(g).empty());
}

TEST(ArticulationTest, StarCenterIsCut) {
  Graph g(5);
  for (std::size_t i = 1; i < 5; ++i) g.add_edge(0, i);
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{0}));
}

TEST(ArticulationTest, TwoTrianglesSharingAVertex) {
  // 0-1-2-0 and 2-3-4-2: vertex 2 is the hinge.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{2}));
}

TEST(ArticulationTest, DisconnectedComponentsAnalysedSeparately) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);  // path: 1 is a cut
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);  // triangle: no cuts
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{1}));
}

TEST(ArticulationTest, ParallelEdgesDoNotProtectAVertex) {
  // 0 =2= 1 - 2: vertex 1 is still a cut even though 0-1 is doubled.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{1}));
}

TEST(ArticulationTest, SelfLoopsIgnored) {
  Graph g(3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(articulation_points(g), (std::vector<std::size_t>{1}));
}

TEST(ArticulationTest, EmptyAndSingleton) {
  EXPECT_TRUE(articulation_points(Graph(0)).empty());
  EXPECT_TRUE(articulation_points(Graph(1)).empty());
}

TEST(ArticulationSubgraphTest, InducedSubgraphCuts) {
  // Full graph is a cycle (no cuts); the induced subgraph {0,1,2} is a
  // path with 1 as the cut.
  Graph g(5);
  for (std::size_t i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  const std::vector<std::size_t> members{0, 1, 2};
  EXPECT_EQ(articulation_points_in_subgraph(g, members), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(articulation_points_in_subgraph(g, std::vector<std::size_t>{}).empty());
}

class ArticulationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArticulationPropertyTest, RemovalOfCutVertexDisconnectsItsComponent) {
  alvc::util::Rng rng(GetParam());
  const std::size_t n = 8 + rng.uniform_index(10);
  Graph g = alvc::test::random_gnp_graph(rng, n, 0.22);
  const auto component_count_without = [&](std::size_t removed) {
    UnionFind uf(n);
    for (const Edge& e : g.edges()) {
      if (e.from == removed || e.to == removed) continue;
      uf.unite(e.from, e.to);
    }
    return uf.component_count();  // includes `removed` as its own set
  };
  const auto baseline = [&] {
    UnionFind uf(n);
    for (const Edge& e : g.edges()) uf.unite(e.from, e.to);
    return uf.component_count();
  }();
  const auto cuts = articulation_points(g);
  const std::set<std::size_t> cut_set(cuts.begin(), cuts.end());
  for (std::size_t v = 0; v < n; ++v) {
    // Removing v leaves v isolated (+1 component). A vertex is a cut point
    // iff removal splits its old component further (> baseline + 1).
    const std::size_t after = component_count_without(v);
    if (cut_set.contains(v)) {
      EXPECT_GT(after, baseline + 1) << "vertex " << v << " flagged but removal harmless";
    } else {
      EXPECT_LE(after, baseline + 1) << "vertex " << v << " is a cut but was not flagged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArticulationPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace alvc::graph
