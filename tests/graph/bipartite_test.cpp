#include "graph/bipartite.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace alvc::graph {
namespace {

TEST(BipartiteGraphTest, Construction) {
  BipartiteGraph g(3, 4);
  EXPECT_EQ(g.left_count(), 3u);
  EXPECT_EQ(g.right_count(), 4u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(BipartiteGraphTest, EdgesVisibleFromBothSides) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
  ASSERT_EQ(g.left_neighbors(0).size(), 1u);
  EXPECT_EQ(g.left_neighbors(0)[0], 1u);
  ASSERT_EQ(g.right_neighbors(1).size(), 1u);
  EXPECT_EQ(g.right_neighbors(1)[0], 0u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(BipartiteGraphTest, Degrees) {
  BipartiteGraph g(3, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(2, 0);
  g.add_edge(0, 1);
  EXPECT_EQ(g.right_degree(0), 3u);
  EXPECT_EQ(g.right_degree(1), 1u);
  EXPECT_EQ(g.left_degree(0), 2u);
  EXPECT_EQ(g.left_degree(2), 1u);
}

TEST(BipartiteGraphTest, OutOfRangeThrows) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW((void)g.left_neighbors(2), std::out_of_range);
  EXPECT_THROW((void)g.right_neighbors(2), std::out_of_range);
  EXPECT_THROW((void)g.has_edge(0, 5), std::out_of_range);
}

}  // namespace
}  // namespace alvc::graph
