#include "graph/shortest_path.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace alvc::graph {
namespace {

Graph grid3x3() {
  // 0 1 2
  // 3 4 5
  // 6 7 8
  Graph g(9);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      const std::size_t v = r * 3 + c;
      if (c + 1 < 3) g.add_edge(v, v + 1);
      if (r + 1 < 3) g.add_edge(v, v + 3);
    }
  }
  return g;
}

TEST(BfsTest, DistancesOnGrid) {
  const auto g = grid3x3();
  const auto result = bfs(g, 0);
  EXPECT_DOUBLE_EQ(result.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(result.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(result.distance[4], 2.0);
  EXPECT_DOUBLE_EQ(result.distance[8], 4.0);
}

TEST(BfsTest, UnreachableVertex) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto result = bfs(g, 0);
  EXPECT_EQ(result.distance[2], kUnreachable);
  EXPECT_EQ(extract_path(result, 2), std::nullopt);
}

TEST(BfsTest, FilterBlocksVertices) {
  const auto g = grid3x3();
  // Block the middle column: 1, 4, 7. Path 0->2 must detour... actually
  // column c=1 blocked leaves no path 0->2; verify unreachable.
  const auto result = bfs(g, 0, [](std::size_t v) { return v != 1 && v != 4 && v != 7; });
  EXPECT_EQ(result.distance[2], kUnreachable);
  EXPECT_DOUBLE_EQ(result.distance[6], 2.0);
}

TEST(BfsTest, SourceOutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW((void)bfs(g, 5), std::out_of_range);
}

TEST(DijkstraTest, PrefersLightPath) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 0.5);
  g.add_edge(2, 3, 0.5);
  const auto result = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(result.distance[3], 1.0);
  const auto path = extract_path(result, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(DijkstraTest, NegativeWeightThrows) {
  Graph g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW((void)dijkstra(g, 0), std::invalid_argument);
}

TEST(DijkstraTest, MatchesBfsOnUnitWeights) {
  alvc::util::Rng rng(7);
  Graph g(30);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      if (rng.bernoulli(0.1)) g.add_edge(i, j, 1.0);
    }
  }
  const auto b = bfs(g, 0);
  const auto d = dijkstra(g, 0);
  for (std::size_t v = 0; v < 30; ++v) {
    EXPECT_DOUBLE_EQ(b.distance[v], d.distance[v]) << "vertex " << v;
  }
}

TEST(ExtractPathTest, PathEndpointsAndContiguity) {
  const auto g = grid3x3();
  const auto result = bfs(g, 0);
  const auto path = extract_path(result, 8);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 8u);
  EXPECT_EQ(path->size(), 5u);  // 4 hops
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(g.has_edge((*path)[i], (*path)[i + 1]));
  }
}

TEST(ExtractPathTest, SourceToItself) {
  const auto g = grid3x3();
  const auto result = bfs(g, 4);
  const auto path = extract_path(result, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<std::size_t>{4}));
}

TEST(ExtractPathTest, TargetOutOfRangeThrows) {
  const auto g = grid3x3();
  const auto result = bfs(g, 0);
  EXPECT_THROW((void)extract_path(result, 99), std::out_of_range);
}

}  // namespace
}  // namespace alvc::graph
