#include "graph/vertex_cover.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/matching.h"
#include "util/rng.h"

namespace alvc::graph {
namespace {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

TEST(GreedyVertexCoverTest, EmptyGraphNeedsNothing) {
  Graph g(5);
  EXPECT_TRUE(greedy_vertex_cover(g).empty());
}

TEST(GreedyVertexCoverTest, SingleEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto cover = greedy_vertex_cover(g);
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_TRUE(is_vertex_cover(g, cover));
}

TEST(GreedyVertexCoverTest, StarPicksCenter) {
  Graph g(6);
  for (std::size_t i = 1; i < 6; ++i) g.add_edge(0, i);
  const auto cover = greedy_vertex_cover(g);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], 0u);
}

TEST(GreedyVertexCoverTest, PathGraphIsValid) {
  const auto g = path_graph(10);
  const auto cover = greedy_vertex_cover(g);
  EXPECT_TRUE(is_vertex_cover(g, cover));
  EXPECT_LE(cover.size(), 6u);
}

TEST(MatchingVertexCoverTest, ValidAndAtMostTwiceOptimal) {
  const auto g = path_graph(9);  // optimum for P9 (8 edges) is 4
  const auto cover = matching_vertex_cover(g);
  EXPECT_TRUE(is_vertex_cover(g, cover));
  EXPECT_LE(cover.size(), 8u);
}

TEST(ExactVertexCoverTest, PathGraphOptimum) {
  // Min vertex cover of a path with n edges is ceil(n/2).
  const auto g = path_graph(9);
  const auto cover = exact_vertex_cover(g);
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->size(), 4u);
  EXPECT_TRUE(is_vertex_cover(g, *cover));
}

TEST(ExactVertexCoverTest, CycleGraphOptimum) {
  Graph g(6);
  for (std::size_t i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
  const auto cover = exact_vertex_cover(g);
  ASSERT_TRUE(cover.has_value());
  EXPECT_EQ(cover->size(), 3u);
  EXPECT_TRUE(is_vertex_cover(g, *cover));
}

TEST(ExactVertexCoverTest, SelfLoopForcesVertex) {
  Graph g(3);
  g.add_edge(0, 0);
  g.add_edge(1, 2);
  const auto cover = exact_vertex_cover(g);
  ASSERT_TRUE(cover.has_value());
  EXPECT_TRUE(std::find(cover->begin(), cover->end(), 0u) != cover->end());
  EXPECT_TRUE(is_vertex_cover(g, *cover));
  EXPECT_EQ(cover->size(), 2u);
}

TEST(ExactVertexCoverTest, BudgetExhaustionReturnsNullopt) {
  Graph g(20);
  alvc::util::Rng rng(3);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      if (rng.bernoulli(0.4)) g.add_edge(i, j);
    }
  }
  EXPECT_EQ(exact_vertex_cover(g, 1), std::nullopt);
}

TEST(IsVertexCoverTest, DetectsNonCover) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(is_vertex_cover(g, {0}));
  EXPECT_TRUE(is_vertex_cover(g, {1}));
  EXPECT_FALSE(is_vertex_cover(g, {99}));  // out of range vertex
}

TEST(KoenigTest, MatchesMatchingSize) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  g.add_edge(2, 2);
  const auto matching = maximum_bipartite_matching(g);
  const auto cover = koenig_vertex_cover(g);
  EXPECT_EQ(cover.size(), matching.size);
  // Verify it covers every edge.
  for (std::size_t l = 0; l < g.left_count(); ++l) {
    for (std::size_t r : g.left_neighbors(l)) {
      const bool covered =
          std::find(cover.left.begin(), cover.left.end(), l) != cover.left.end() ||
          std::find(cover.right.begin(), cover.right.end(), r) != cover.right.end();
      EXPECT_TRUE(covered) << "edge " << l << "-" << r;
    }
  }
}

class KoenigRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KoenigRandomTest, CoverSizeEqualsMatchingAndCoversEdges) {
  alvc::util::Rng rng(GetParam());
  const std::size_t nl = 5 + rng.uniform_index(20);
  const std::size_t nr = 5 + rng.uniform_index(20);
  BipartiteGraph g(nl, nr);
  for (std::size_t l = 0; l < nl; ++l) {
    for (std::size_t r = 0; r < nr; ++r) {
      if (rng.bernoulli(0.2)) g.add_edge(l, r);
    }
  }
  const auto matching = maximum_bipartite_matching(g);
  const auto cover = koenig_vertex_cover(g);
  EXPECT_EQ(cover.size(), matching.size);  // Kőnig's theorem
  for (std::size_t l = 0; l < nl; ++l) {
    const bool l_in = std::find(cover.left.begin(), cover.left.end(), l) != cover.left.end();
    for (std::size_t r : g.left_neighbors(l)) {
      const bool r_in = std::find(cover.right.begin(), cover.right.end(), r) != cover.right.end();
      EXPECT_TRUE(l_in || r_in);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KoenigRandomTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19, 20));

// ---- one-sided cover (the paper's AL selection primitive) ----

TEST(OneSidedCoverTest, PaperFigure4Shape) {
  // Paper Fig. 4: ToR 1 covers four VMs, ToR 2's VMs are already covered by
  // ToR 1, ToR 3 covers the rest. Model: 6 VMs (left), 4 ToRs (right).
  BipartiteGraph g(6, 4);
  // ToR0 ("ToR 1"): VMs 0,1,2,3.
  for (std::size_t v : {0u, 1u, 2u, 3u}) g.add_edge(v, 0);
  // ToR1 ("ToR 2"): VMs 1,2 (subset of ToR0's).
  g.add_edge(1, 1);
  g.add_edge(2, 1);
  // ToR2 ("ToR 3"): VMs 4,5.
  g.add_edge(4, 2);
  g.add_edge(5, 2);
  // ToR3 ("ToR N"): VM 5 only.
  g.add_edge(5, 3);
  const auto cover = greedy_one_sided_cover(g);
  EXPECT_EQ(cover, (std::vector<std::size_t>{0, 2}));  // ToR 1 then ToR 3
  EXPECT_TRUE(is_one_sided_cover(g, cover));
}

TEST(OneSidedCoverTest, IsolatedLeftVerticesIgnored) {
  BipartiteGraph g(3, 2);
  g.add_edge(0, 0);  // VM1, VM2 isolated
  const auto cover = greedy_one_sided_cover(g);
  EXPECT_EQ(cover.size(), 1u);
  EXPECT_TRUE(is_one_sided_cover(g, cover));
}

TEST(OneSidedCoverTest, EmptyGraphNeedsNothing) {
  BipartiteGraph g(4, 4);
  EXPECT_TRUE(greedy_one_sided_cover(g).empty());
  EXPECT_TRUE(is_one_sided_cover(g, {}));
}

TEST(OneSidedCoverTest, ValidatorRejectsBadCover) {
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  EXPECT_FALSE(is_one_sided_cover(g, {0}));
  EXPECT_TRUE(is_one_sided_cover(g, {0, 1}));
  EXPECT_FALSE(is_one_sided_cover(g, {5}));
}

TEST(ExactOneSidedCoverTest, BeatsGreedyOnAdversarialInstance) {
  // Classic set-cover trap: greedy takes the big set first and needs 3 sets;
  // optimum is 2. Universe {0..5}; R0={0,1,2,3}, R1={0,1,4}? Construct the
  // standard instance: R_big={0,1,2,3}, R_a={0,1,4}, R_b={2,3,5},
  // elements 4,5 only in R_a/R_b. Greedy: R_big(4) then R_a, R_b -> 3.
  // Optimal: R_a + R_b = 2... R_a covers 0,1,4; R_b covers 2,3,5. Yes.
  BipartiteGraph g(6, 3);
  for (std::size_t v : {0u, 1u, 2u, 3u}) g.add_edge(v, 0);
  for (std::size_t v : {0u, 1u, 4u}) g.add_edge(v, 1);
  for (std::size_t v : {2u, 3u, 5u}) g.add_edge(v, 2);
  const auto greedy = greedy_one_sided_cover(g);
  EXPECT_EQ(greedy.size(), 3u);
  const auto exact = exact_one_sided_cover(g);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->size(), 2u);
  EXPECT_TRUE(is_one_sided_cover(g, *exact));
}

TEST(ExactOneSidedCoverTest, BudgetExhaustionReturnsNullopt) {
  alvc::util::Rng rng(9);
  BipartiteGraph g(30, 30);
  for (std::size_t l = 0; l < 30; ++l) {
    for (std::size_t r = 0; r < 30; ++r) {
      if (rng.bernoulli(0.3)) g.add_edge(l, r);
    }
  }
  EXPECT_EQ(exact_one_sided_cover(g, 1), std::nullopt);
}

class OneSidedCoverRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneSidedCoverRandomTest, GreedyIsValidAndExactIsNoWorse) {
  alvc::util::Rng rng(GetParam());
  const std::size_t nl = 4 + rng.uniform_index(12);
  const std::size_t nr = 3 + rng.uniform_index(6);
  BipartiteGraph g(nl, nr);
  for (std::size_t l = 0; l < nl; ++l) {
    // Every VM connects to at least one ToR so the instance is feasible.
    g.add_edge(l, rng.uniform_index(nr));
    for (std::size_t r = 0; r < nr; ++r) {
      if (rng.bernoulli(0.25)) g.add_edge(l, r);
    }
  }
  const auto greedy = greedy_one_sided_cover(g);
  EXPECT_TRUE(is_one_sided_cover(g, greedy));
  const auto exact = exact_one_sided_cover(g);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(is_one_sided_cover(g, *exact));
  EXPECT_LE(exact->size(), greedy.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneSidedCoverRandomTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32));

}  // namespace
}  // namespace alvc::graph
