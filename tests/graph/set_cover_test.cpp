#include "graph/set_cover.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace alvc::graph {
namespace {

using alvc::util::DynamicBitset;

DynamicBitset make_set(std::size_t universe, std::initializer_list<std::size_t> elements) {
  DynamicBitset s(universe);
  for (auto e : elements) s.set(e);
  return s;
}

TEST(SetCoverTest, AddSetValidation) {
  SetCoverInstance inst;
  inst.universe_size = 4;
  EXPECT_THROW(inst.add_set(DynamicBitset(3)), std::invalid_argument);
  EXPECT_THROW(inst.add_set(DynamicBitset(4), 0.0), std::invalid_argument);
  inst.add_set(DynamicBitset(4));
  EXPECT_EQ(inst.sets.size(), 1u);
}

TEST(SetCoverTest, GreedyCoversSimpleInstance) {
  SetCoverInstance inst;
  inst.universe_size = 5;
  inst.add_set(make_set(5, {0, 1, 2}));
  inst.add_set(make_set(5, {2, 3}));
  inst.add_set(make_set(5, {4}));
  const auto chosen = greedy_set_cover(inst);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_TRUE(is_set_cover(inst, *chosen));
  EXPECT_EQ(chosen->size(), 3u);
}

TEST(SetCoverTest, GreedyDetectsInfeasible) {
  SetCoverInstance inst;
  inst.universe_size = 3;
  inst.add_set(make_set(3, {0, 1}));
  EXPECT_EQ(greedy_set_cover(inst), std::nullopt);
}

TEST(SetCoverTest, EmptyUniverseNeedsNothing) {
  SetCoverInstance inst;
  inst.universe_size = 0;
  const auto chosen = greedy_set_cover(inst);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_TRUE(chosen->empty());
}

TEST(SetCoverTest, WeightedGreedyPrefersCheapSets) {
  SetCoverInstance inst;
  inst.universe_size = 2;
  inst.add_set(make_set(2, {0, 1}), 10.0);  // expensive combo
  inst.add_set(make_set(2, {0}), 1.0);
  inst.add_set(make_set(2, {1}), 1.0);
  const auto chosen = greedy_set_cover(inst);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(SetCoverTest, MaxCoverageRespectsK) {
  SetCoverInstance inst;
  inst.universe_size = 6;
  inst.add_set(make_set(6, {0, 1, 2}));
  inst.add_set(make_set(6, {3, 4}));
  inst.add_set(make_set(6, {5}));
  const auto one = greedy_max_coverage(inst, 1);
  EXPECT_EQ(one, (std::vector<std::size_t>{0}));
  const auto two = greedy_max_coverage(inst, 2);
  EXPECT_EQ(two, (std::vector<std::size_t>{0, 1}));
  const auto many = greedy_max_coverage(inst, 10);
  EXPECT_EQ(many.size(), 3u);
}

TEST(SetCoverTest, MaxCoverageStopsWhenNoGain) {
  SetCoverInstance inst;
  inst.universe_size = 2;
  inst.add_set(make_set(2, {0, 1}));
  inst.add_set(make_set(2, {0}));
  const auto chosen = greedy_max_coverage(inst, 5);
  EXPECT_EQ(chosen.size(), 1u);
}

TEST(ExactSetCoverTest, FindsOptimumWhereGreedyFails) {
  // Standard greedy-trap instance (same as the one-sided cover test).
  SetCoverInstance inst;
  inst.universe_size = 6;
  inst.add_set(make_set(6, {0, 1, 2, 3}));
  inst.add_set(make_set(6, {0, 1, 4}));
  inst.add_set(make_set(6, {2, 3, 5}));
  const auto greedy = greedy_set_cover(inst);
  ASSERT_TRUE(greedy.has_value());
  EXPECT_EQ(greedy->size(), 3u);
  const auto exact = exact_set_cover(inst);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->size(), 2u);
  EXPECT_TRUE(is_set_cover(inst, *exact));
}

TEST(ExactSetCoverTest, InfeasibleReturnsNullopt) {
  SetCoverInstance inst;
  inst.universe_size = 2;
  inst.add_set(make_set(2, {0}));
  EXPECT_EQ(exact_set_cover(inst), std::nullopt);
}

TEST(IsSetCoverTest, RejectsOutOfRangeIndex) {
  SetCoverInstance inst;
  inst.universe_size = 1;
  inst.add_set(make_set(1, {0}));
  EXPECT_FALSE(is_set_cover(inst, {3}));
  EXPECT_TRUE(is_set_cover(inst, {0}));
}

class SetCoverRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetCoverRandomTest, ExactNeverWorseThanGreedy) {
  alvc::util::Rng rng(GetParam());
  SetCoverInstance inst;
  inst.universe_size = 4 + rng.uniform_index(8);
  const std::size_t num_sets = 3 + rng.uniform_index(5);
  for (std::size_t s = 0; s < num_sets; ++s) {
    DynamicBitset set(inst.universe_size);
    for (std::size_t e = 0; e < inst.universe_size; ++e) {
      if (rng.bernoulli(0.4)) set.set(e);
    }
    inst.add_set(std::move(set));
  }
  // Ensure feasibility: one set covering everything missing.
  DynamicBitset all(inst.universe_size, true);
  inst.add_set(std::move(all), 1.0);

  const auto greedy = greedy_set_cover(inst);
  ASSERT_TRUE(greedy.has_value());
  EXPECT_TRUE(is_set_cover(inst, *greedy));
  const auto exact = exact_set_cover(inst);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(is_set_cover(inst, *exact));
  EXPECT_LE(exact->size(), greedy->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverRandomTest,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48, 49, 50));

}  // namespace
}  // namespace alvc::graph
