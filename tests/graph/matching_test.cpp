#include "graph/matching.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace alvc::graph {
namespace {

/// Matching invariants: consistency of the two arrays, edges exist.
void check_matching(const BipartiteGraph& g, const Matching& m) {
  std::size_t count = 0;
  for (std::size_t l = 0; l < g.left_count(); ++l) {
    const std::size_t r = m.match_left[l];
    if (r == Matching::kUnmatched) continue;
    ++count;
    EXPECT_EQ(m.match_right[r], l);
    EXPECT_TRUE(g.has_edge(l, r));
  }
  EXPECT_EQ(count, m.size);
}

TEST(MatchingTest, EmptyGraph) {
  BipartiteGraph g(0, 0);
  const auto m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 0u);
}

TEST(MatchingTest, NoEdges) {
  BipartiteGraph g(3, 3);
  const auto m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 0u);
}

TEST(MatchingTest, PerfectMatchingOnDiagonal) {
  BipartiteGraph g(4, 4);
  for (std::size_t i = 0; i < 4; ++i) g.add_edge(i, i);
  const auto m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 4u);
  check_matching(g, m);
}

TEST(MatchingTest, RequiresAugmentingPath) {
  // Classic instance where greedy can get stuck but HK finds size 3:
  // L0-{R0,R1}, L1-{R0}, L2-{R1,R2}.
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  g.add_edge(2, 2);
  const auto m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 3u);
  check_matching(g, m);
}

TEST(MatchingTest, StarGraphMatchesOne) {
  BipartiteGraph g(5, 1);
  for (std::size_t l = 0; l < 5; ++l) g.add_edge(l, 0);
  const auto m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 1u);
  check_matching(g, m);
}

TEST(MatchingTest, CompleteBipartiteMatchesMinSide) {
  BipartiteGraph g(4, 7);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t r = 0; r < 7; ++r) g.add_edge(l, r);
  }
  const auto m = maximum_bipartite_matching(g);
  EXPECT_EQ(m.size, 4u);
  check_matching(g, m);
}

class MatchingRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingRandomTest, InvariantsHoldOnRandomGraphs) {
  alvc::util::Rng rng(GetParam());
  const std::size_t nl = 10 + rng.uniform_index(30);
  const std::size_t nr = 10 + rng.uniform_index(30);
  BipartiteGraph g(nl, nr);
  for (std::size_t l = 0; l < nl; ++l) {
    for (std::size_t r = 0; r < nr; ++r) {
      if (rng.bernoulli(0.15)) g.add_edge(l, r);
    }
  }
  const auto m = maximum_bipartite_matching(g);
  check_matching(g, m);
  EXPECT_LE(m.size, std::min(nl, nr));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace alvc::graph
