#include "graph/k_shortest.h"

#include <gtest/gtest.h>

#include <set>

#include "support/random_graph.h"
#include "util/rng.h"

namespace alvc::graph {
namespace {

/// Square: 0-1, 1-3, 0-2, 2-3 plus diagonal chord 0-3.
Graph square_with_chord() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  return g;
}

TEST(KShortestTest, EnumeratesInLengthOrder) {
  const auto g = square_with_chord();
  const auto paths = k_shortest_paths(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_EQ(paths[0], (std::vector<std::size_t>{0, 3}));
  // Two 2-hop alternatives, lexicographic order.
  EXPECT_EQ(paths[1], (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(paths[2], (std::vector<std::size_t>{0, 2, 3}));
}

TEST(KShortestTest, KLimitsResults) {
  const auto g = square_with_chord();
  EXPECT_EQ(k_shortest_paths(g, 0, 3, 1).size(), 1u);
  EXPECT_EQ(k_shortest_paths(g, 0, 3, 2).size(), 2u);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 0).empty());
}

TEST(KShortestTest, SourceEqualsTarget) {
  const auto g = square_with_chord();
  const auto paths = k_shortest_paths(g, 2, 2, 3);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<std::size_t>{2}));
}

TEST(KShortestTest, DisconnectedYieldsNothing) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 3).empty());
}

TEST(KShortestTest, FilterRestrictsPaths) {
  const auto g = square_with_chord();
  // Ban vertex 1: only {0,3} and {0,2,3} remain.
  const auto paths = k_shortest_paths(g, 0, 3, 5, [](std::size_t v) { return v != 1; });
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(paths[1], (std::vector<std::size_t>{0, 2, 3}));
}

TEST(KShortestTest, OutOfRangeThrows) {
  const auto g = square_with_chord();
  EXPECT_THROW((void)k_shortest_paths(g, 0, 9, 2), std::out_of_range);
}

class KShortestPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KShortestPropertyTest, PathsAreValidLooplessDistinctAndOrdered) {
  alvc::util::Rng rng(GetParam());
  const std::size_t n = 8 + rng.uniform_index(8);
  Graph g = alvc::test::random_gnp_graph(rng, n, 0.3);
  const auto paths = k_shortest_paths(g, 0, n - 1, 6);
  std::set<std::vector<std::size_t>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size()) << "paths must be distinct";
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const auto& path = paths[p];
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), n - 1);
    std::set<std::size_t> visited(path.begin(), path.end());
    EXPECT_EQ(visited.size(), path.size()) << "loopless";
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
    if (p > 0) {
      EXPECT_GE(path.size(), paths[p - 1].size()) << "length-ordered";
    }
  }
  // First path is a true shortest path.
  if (!paths.empty()) {
    const auto tree = bfs(g, 0);
    EXPECT_DOUBLE_EQ(static_cast<double>(paths[0].size() - 1), tree.distance[n - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KShortestPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace alvc::graph
