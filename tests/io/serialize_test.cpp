#include "io/serialize.h"

#include <gtest/gtest.h>

#include "io/dot.h"
#include "support/fixtures.h"
#include "topology/builder.h"
#include "topology/validation.h"

namespace alvc::io {
namespace {

using alvc::test::ClusterFixture;
using alvc::topology::build_topology;
using alvc::topology::TopologyParams;

TopologyParams rich_params() {
  TopologyParams params;
  params.rack_count = 6;
  params.ops_count = 12;
  params.tor_ops_degree = 4;
  params.service_count = 3;
  params.dual_homing_probability = 0.3;
  params.core = alvc::topology::CoreKind::kTorus2D;
  params.seed = 19;
  return params;
}

void expect_topologies_equal(const alvc::topology::DataCenterTopology& a,
                             const alvc::topology::DataCenterTopology& b) {
  ASSERT_EQ(a.ops_count(), b.ops_count());
  ASSERT_EQ(a.tor_count(), b.tor_count());
  ASSERT_EQ(a.server_count(), b.server_count());
  ASSERT_EQ(a.vm_count(), b.vm_count());
  for (std::size_t i = 0; i < a.ops_count(); ++i) {
    const auto& oa = a.opss()[i];
    const auto& ob = b.opss()[i];
    EXPECT_EQ(oa.optoelectronic, ob.optoelectronic);
    EXPECT_EQ(oa.failed, ob.failed);
    EXPECT_DOUBLE_EQ(oa.compute.cpu_cores, ob.compute.cpu_cores);
    auto pa = oa.peer_links;
    auto pb = ob.peer_links;
    std::sort(pa.begin(), pa.end());
    std::sort(pb.begin(), pb.end());
    EXPECT_EQ(pa, pb);
  }
  for (std::size_t i = 0; i < a.tor_count(); ++i) {
    auto ua = a.tors()[i].uplinks;
    auto ub = b.tors()[i].uplinks;
    std::sort(ua.begin(), ua.end());
    std::sort(ub.begin(), ub.end());
    EXPECT_EQ(ua, ub);
  }
  for (std::size_t i = 0; i < a.server_count(); ++i) {
    EXPECT_EQ(a.servers()[i].tor, b.servers()[i].tor);
    EXPECT_EQ(a.servers()[i].secondary_tors, b.servers()[i].secondary_tors);
    EXPECT_DOUBLE_EQ(a.servers()[i].capacity.memory_gb, b.servers()[i].capacity.memory_gb);
  }
  for (std::size_t i = 0; i < a.vm_count(); ++i) {
    EXPECT_EQ(a.vms()[i].server, b.vms()[i].server);
    EXPECT_EQ(a.vms()[i].service, b.vms()[i].service);
  }
}

TEST(TopologySerializeTest, RoundTripPreservesStructure) {
  const auto original = build_topology(rich_params());
  const auto json = topology_to_json(original);
  const auto restored = topology_from_json(json);
  ASSERT_TRUE(restored.has_value()) << restored.error().to_string();
  expect_topologies_equal(original, *restored);
  EXPECT_TRUE(alvc::topology::validate(*restored).ok());
}

TEST(TopologySerializeTest, RoundTripThroughText) {
  auto original = build_topology(rich_params());
  ASSERT_TRUE(original.set_ops_failed(alvc::util::OpsId{3}, true).is_ok());
  const auto text = dump(topology_to_json(original), 2);
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto restored = topology_from_json(*parsed);
  ASSERT_TRUE(restored.has_value());
  expect_topologies_equal(original, *restored);
  EXPECT_TRUE(restored->opss()[3].failed);
}

TEST(TopologySerializeTest, RejectsWrongFormat) {
  EXPECT_FALSE(topology_from_json(JsonValue(JsonObject{{"format", "nope"}})).has_value());
  EXPECT_FALSE(topology_from_json(JsonValue(42)).has_value());
  EXPECT_FALSE(topology_from_json(JsonValue(JsonObject{})).has_value());
}

TEST(TopologySerializeTest, RejectsDanglingReferences) {
  auto json = topology_to_json(build_topology(rich_params()));
  // Point the first VM at a nonexistent server.
  json.as_object()["vms"].as_array()[0].as_object()["server"] = 9999;
  EXPECT_FALSE(topology_from_json(json).has_value());
}

TEST(ClustersSerializeTest, EmitsEveryCluster) {
  ClusterFixture f;
  const auto json = clusters_to_json(f.manager);
  EXPECT_EQ(json.at("format").as_string(), "alvc-clusters");
  const auto& clusters = json.at("clusters").as_array();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].at("vms").as_array().size(), f.cluster().vms.size());
  EXPECT_EQ(clusters[0].at("al").as_array().size(), f.cluster().layer.opss.size());
  EXPECT_TRUE(clusters[0].at("connected").as_bool());
}

TEST(ChainsSerializeTest, EmitsPlacementAndRoute) {
  ClusterFixture f;
  alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
  alvc::nfv::NfcSpec spec;
  spec.name = "serial-chain";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall),
                    *f.catalog.find_by_type(alvc::nfv::VnfType::kDeepPacketInspection)};
  const alvc::orchestrator::GreedyOpticalPlacement placement;
  ASSERT_TRUE(orch.provision_chain(spec, placement).has_value());

  const auto json = chains_to_json(orch);
  const auto& chains = json.at("chains").as_array();
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].at("name").as_string(), "serial-chain");
  const auto& hosts = chains[0].at("hosts").as_array();
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0].at("domain").as_string(), "optical");
  EXPECT_EQ(hosts[1].at("domain").as_string(), "electronic");
  EXPECT_FALSE(chains[0].at("route").as_array().empty());
  // Round-trips through text as valid JSON.
  EXPECT_TRUE(parse(dump(json, 2)).has_value());
}

class RoundTripPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, alvc::topology::CoreKind>> {};

TEST_P(RoundTripPropertyTest, GeneratedTopologiesSurviveTextRoundTrip) {
  const auto [seed, core] = GetParam();
  alvc::topology::TopologyParams params;
  params.seed = seed;
  params.rack_count = 4 + seed % 6;
  params.ops_count = 8 + (seed % 4) * 4;
  params.tor_ops_degree = 3;
  params.service_count = 2 + seed % 3;
  params.dual_homing_probability = (seed % 2) * 0.4;
  params.optoelectronic_fraction = 0.5;
  params.core = core;
  params.core_degree = 3;
  const auto original = alvc::topology::build_topology(params);
  const auto text = dump(topology_to_json(original));
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.has_value());
  const auto restored = topology_from_json(*parsed);
  ASSERT_TRUE(restored.has_value()) << restored.error().to_string();
  expect_topologies_equal(original, *restored);
  // The restored DC behaves identically: clusters come out the same size.
  auto topo_a = original;
  auto topo_b = *restored;
  alvc::cluster::ClusterManager ma(topo_a);
  alvc::cluster::ClusterManager mb(topo_b);
  const alvc::cluster::VertexCoverAlBuilder builder;
  const auto ca = ma.create_clusters_by_service(builder);
  const auto cb = mb.create_clusters_by_service(builder);
  ASSERT_EQ(ca.has_value(), cb.has_value());
  if (ca.has_value()) {
    ASSERT_EQ(ca->size(), cb->size());
    for (std::size_t i = 0; i < ca->size(); ++i) {
      EXPECT_EQ(ma.find((*ca)[i])->layer.opss, mb.find((*cb)[i])->layer.opss);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCores, RoundTripPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(alvc::topology::CoreKind::kRing,
                                         alvc::topology::CoreKind::kTorus2D,
                                         alvc::topology::CoreKind::kRandomRegular)));

TEST(DotExportTest, ContainsEveryElement) {
  ClusterFixture f;
  const auto plain = to_dot(f.topo);
  EXPECT_NE(plain.find("tor0"), std::string::npos);
  EXPECT_NE(plain.find("ops3"), std::string::npos);
  EXPECT_NE(plain.find("doublecircle"), std::string::npos);  // OE routers
  EXPECT_EQ(plain.find("fillcolor"), std::string::npos);     // no clusters given

  const auto colored = to_dot(f.topo, f.manager);
  EXPECT_NE(colored.find("fillcolor"), std::string::npos);

  ASSERT_TRUE(f.topo.set_ops_failed(alvc::util::OpsId{1}, true).is_ok());
  const auto failed = to_dot(f.topo, f.manager);
  EXPECT_NE(failed.find("color=red"), std::string::npos);
}

}  // namespace
}  // namespace alvc::io
