#include "io/json.h"

#include <gtest/gtest.h>

namespace alvc::io {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(3.5).is_number());
  EXPECT_TRUE(JsonValue(7).is_number());
  EXPECT_TRUE(JsonValue("hi").is_string());
  EXPECT_TRUE(JsonValue(JsonArray{}).is_array());
  EXPECT_TRUE(JsonValue(JsonObject{}).is_object());
}

TEST(JsonValueTest, Accessors) {
  const JsonValue v(JsonObject{{"a", 1}, {"b", "two"}});
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.0);
  EXPECT_EQ(v.at("a").as_index(), 1u);
  EXPECT_EQ(v.at("b").as_string(), "two");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("z"));
  EXPECT_THROW((void)v.at("z"), std::out_of_range);
  EXPECT_THROW((void)v.at("a").as_string(), std::bad_variant_access);
}

TEST(JsonDumpTest, Scalars) {
  EXPECT_EQ(dump(JsonValue()), "null");
  EXPECT_EQ(dump(JsonValue(true)), "true");
  EXPECT_EQ(dump(JsonValue(false)), "false");
  EXPECT_EQ(dump(JsonValue(42)), "42");
  EXPECT_EQ(dump(JsonValue(-3)), "-3");
  EXPECT_EQ(dump(JsonValue("hi")), "\"hi\"");
}

TEST(JsonDumpTest, FractionalNumbers) {
  EXPECT_EQ(dump(JsonValue(2.5)), "2.5");
}

TEST(JsonDumpTest, StringEscapes) {
  EXPECT_EQ(dump(JsonValue("a\"b\\c\nd\te")), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(dump(JsonValue(std::string(1, '\x01'))), "\"\\u0001\"");
}

TEST(JsonDumpTest, CompactContainers) {
  const JsonValue v(JsonObject{{"a", JsonArray{1, 2}}, {"b", JsonObject{}}});
  EXPECT_EQ(dump(v), "{\"a\":[1,2],\"b\":{}}");
  EXPECT_EQ(dump(JsonValue(JsonArray{})), "[]");
}

TEST(JsonDumpTest, PrettyPrinting) {
  const JsonValue v(JsonObject{{"k", JsonArray{1}}});
  EXPECT_EQ(dump(v, 2), "{\n  \"k\": [\n    1\n  ]\n}");
}

TEST(JsonDumpTest, KeysAreSorted) {
  const JsonValue v(JsonObject{{"zebra", 1}, {"alpha", 2}});
  EXPECT_EQ(dump(v), "{\"alpha\":2,\"zebra\":1}");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25")->as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2")->as_number(), 0.025);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, Containers) {
  const auto v = parse(R"({"list":[1,2,3],"nested":{"x":true}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at("list").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v->at("list").as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(v->at("nested").at("x").as_bool());
}

TEST(JsonParseTest, WhitespaceTolerated) {
  const auto v = parse(" \n\t{ \"a\" : [ 1 , 2 ] } \n");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->at("a").as_array().size(), 2u);
}

TEST(JsonParseTest, Escapes) {
  EXPECT_EQ(parse(R"("a\"b")")->as_string(), "a\"b");
  EXPECT_EQ(parse(R"("line\nbreak")")->as_string(), "line\nbreak");
  EXPECT_EQ(parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xc3\xa9");   // é in UTF-8
  EXPECT_EQ(parse(R"("€")")->as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParseTest, Errors) {
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("{").has_value());
  EXPECT_FALSE(parse("[1,]").has_value());
  EXPECT_FALSE(parse("{\"a\":}").has_value());
  EXPECT_FALSE(parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(parse("tru").has_value());
  EXPECT_FALSE(parse("\"unterminated").has_value());
  EXPECT_FALSE(parse("1 2").has_value()) << "trailing garbage";
  EXPECT_FALSE(parse("-").has_value());
  EXPECT_FALSE(parse("1.").has_value());
  EXPECT_FALSE(parse("1e").has_value());
  EXPECT_FALSE(parse(R"("\q")").has_value());
  EXPECT_FALSE(parse(R"("\u12g4")").has_value());
}

TEST(JsonRoundTripTest, DumpThenParseIsIdentity) {
  const JsonValue original(JsonObject{
      {"name", "alvc"},
      {"count", 3},
      {"ratio", 0.5},
      {"flag", true},
      {"nothing", nullptr},
      {"items", JsonArray{1, "two", JsonObject{{"three", 3}}}},
  });
  for (int indent : {0, 2, 4}) {
    const auto text = dump(original, indent);
    const auto parsed = parse(text);
    ASSERT_TRUE(parsed.has_value()) << parsed.error().to_string();
    EXPECT_EQ(*parsed, original) << "indent=" << indent;
  }
}

}  // namespace
}  // namespace alvc::io
