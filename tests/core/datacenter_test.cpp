#include "core/datacenter.h"

#include <gtest/gtest.h>

#include "core/alvc.h"

namespace alvc::core {
namespace {

using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::util::ServiceId;

DataCenterConfig test_config() {
  DataCenterConfig config;
  config.topology.seed = 4;
  config.topology.rack_count = 8;
  config.topology.ops_count = 32;
  config.topology.tor_ops_degree = 8;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.5;
  return config;
}

TEST(DataCenterTest, ConstructionBuildsTopology) {
  const DataCenter dc(test_config());
  EXPECT_EQ(dc.topology().tor_count(), 8u);
  EXPECT_EQ(dc.topology().ops_count(), 32u);
  EXPECT_EQ(dc.services().size(), 3u);
  EXPECT_GT(dc.catalog().size(), 0u);
  EXPECT_EQ(dc.clusters().cluster_count(), 0u) << "clusters are not built implicitly";
}

TEST(DataCenterTest, BuildClustersCreatesOnePerService) {
  DataCenter dc(test_config());
  const auto ids = dc.build_clusters();
  ASSERT_TRUE(ids.has_value()) << ids.error().to_string();
  EXPECT_EQ(ids->size(), 3u);
  EXPECT_TRUE(dc.clusters().check_invariants().empty());
}

TEST(DataCenterTest, ProvisionAndTeardownChain) {
  DataCenter dc(test_config());
  ASSERT_TRUE(dc.build_clusters().has_value());
  NfcSpec spec;
  spec.name = "quickstart";
  spec.service = ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                    *dc.catalog().find_by_type(VnfType::kNat)};
  const auto id = dc.provision_chain(spec, PlacementAlgorithm::kOeoMinimizing);
  ASSERT_TRUE(id.has_value()) << id.error().to_string();
  EXPECT_EQ(dc.orchestrator().chain_count(), 1u);
  ASSERT_TRUE(dc.teardown_chain(*id).is_ok());
  EXPECT_EQ(dc.orchestrator().chain_count(), 0u);
}

TEST(DataCenterTest, MakeAlBuilderCoversAllAlgorithms) {
  for (auto algorithm : {AlAlgorithm::kVertexCover, AlAlgorithm::kRandom,
                         AlAlgorithm::kGreedySetCover, AlAlgorithm::kExact}) {
    const auto builder = DataCenter::make_al_builder(algorithm, 1, true);
    ASSERT_NE(builder, nullptr);
    EXPECT_EQ(builder->name(), std::string_view(to_string(algorithm)));
  }
}

TEST(DataCenterTest, MakePlacementCoversAllAlgorithms) {
  for (auto algorithm : {PlacementAlgorithm::kElectronicOnly, PlacementAlgorithm::kRandom,
                         PlacementAlgorithm::kGreedyOptical, PlacementAlgorithm::kOeoMinimizing}) {
    const auto placement = DataCenter::make_placement(algorithm, 1);
    ASSERT_NE(placement, nullptr);
    EXPECT_EQ(placement->name(), std::string_view(to_string(algorithm)));
  }
}

TEST(DataCenterTest, DescribeMentionsKeyFacts) {
  DataCenter dc(test_config());
  ASSERT_TRUE(dc.build_clusters().has_value());
  const auto text = dc.describe();
  EXPECT_NE(text.find("8 racks"), std::string::npos);
  EXPECT_NE(text.find("clusters=3"), std::string::npos);
  EXPECT_NE(text.find("vertex-cover"), std::string::npos);
}

TEST(DataCenterTest, RandomAlAlgorithmEndToEnd) {
  auto config = test_config();
  config.al_algorithm = AlAlgorithm::kRandom;
  DataCenter dc(config);
  const auto ids = dc.build_clusters();
  ASSERT_TRUE(ids.has_value()) << ids.error().to_string();
  EXPECT_TRUE(dc.clusters().check_invariants().empty());
}

TEST(ExperimentTest, StopwatchAdvances) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(sw.elapsed_s(), 0.0);
  EXPECT_GT(sw.elapsed_us(), sw.elapsed_ms());
}

TEST(ExperimentTest, TextTableFormats) {
  TextTable table({"name", "value"});
  table.add_row_values("alpha", 1);
  table.add_row_values("beta", fmt(2.5, 1));
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream os;
  table.print(os);
  const auto text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("2.5"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(ExperimentTest, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

}  // namespace
}  // namespace alvc::core
