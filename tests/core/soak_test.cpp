// End-to-end randomized soak: one DataCenter, hundreds of interleaved
// operations across every subsystem (chains up/down, VM churn, VNF scaling,
// OPS failures, migrations, re-optimizations), with full invariant checks
// after every step. This is the test that catches cross-module state leaks.
#include <gtest/gtest.h>

#include "core/alvc.h"
#include "util/error.h"

namespace alvc::core {
namespace {

using nfv::VnfType;

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, HundredsOfMixedOperationsKeepEveryInvariant) {
  DataCenterConfig config;
  config.topology.rack_count = 10;
  config.topology.ops_count = 48;
  config.topology.tor_ops_degree = 12;
  config.topology.service_count = 3;
  config.topology.optoelectronic_fraction = 0.5;
  config.topology.core = topology::CoreKind::kTorus2D;
  config.topology.seed = GetParam();
  // Pin the DC-level seed too (it feeds RandomAlBuilder et al.); relying
  // on the default made the run only partially a function of GetParam().
  config.seed = GetParam();
  DataCenter dc(config);
  ASSERT_TRUE(dc.build_clusters().has_value());

  util::Rng rng(GetParam() * 7 + 3);
  std::vector<util::NfcId> live_chains;
  std::size_t failures_injected = 0;

  const auto make_spec = [&](std::uint32_t service) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{service};
    spec.name = "soak";
    spec.bandwidth_gbps = 1.0;
    const std::array<VnfType, 4> pool{VnfType::kFirewall, VnfType::kNat,
                                      VnfType::kLoadBalancer, VnfType::kSecurityGateway};
    const std::size_t len = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < len; ++i) {
      spec.functions.push_back(*dc.catalog().find_by_type(pool[rng.uniform_index(pool.size())]));
    }
    return spec;
  };

  for (int step = 0; step < 400; ++step) {
    const double action = rng.uniform01();
    if (action < 0.25) {
      // Provision a chain on a random service (may conflict: fine).
      const auto id = dc.provision_chain(
          make_spec(static_cast<std::uint32_t>(rng.uniform_index(3))),
          core::PlacementAlgorithm::kGreedyOptical);
      if (id) live_chains.push_back(*id);
    } else if (action < 0.4 && !live_chains.empty()) {
      const std::size_t i = rng.uniform_index(live_chains.size());
      ALVC_IGNORE_STATUS(dc.teardown_chain(live_chains[i]),
                         "soak: the per-step invariant sweep is the oracle");
      live_chains.erase(live_chains.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (action < 0.55) {
      // VM churn on a random cluster.
      const auto clusters = dc.clusters().clusters();
      const auto* vc = clusters[rng.uniform_index(clusters.size())];
      if (!vc->vms.empty()) {
        const auto vm = vc->vms[rng.uniform_index(vc->vms.size())];
        const util::ServerId target{static_cast<util::ServerId::value_type>(
            rng.uniform_index(dc.topology().server_count()))};
        ALVC_IGNORE_STATUS(dc.clusters().migrate_vm(vc->id, vm, target),
                           "soak: an infeasible migration is a legal no-op");
      }
    } else if (action < 0.65 && !live_chains.empty()) {
      ALVC_IGNORE_STATUS(
          dc.orchestrator().scale_function(live_chains[rng.uniform_index(live_chains.size())], 0,
                                           1.0 + rng.uniform01()),
          "soak: scaling a chain that may have died is a legal no-op");
    } else if (action < 0.75 && failures_injected < 6) {
      const util::OpsId victim{static_cast<util::OpsId::value_type>(
          rng.uniform_index(dc.topology().ops_count()))};
      if (dc.topology().ops_usable(victim)) {
        ALVC_IGNORE_STATUS(dc.orchestrator().handle_ops_failure(victim),
                           "soak: recovery quality is judged by the invariant sweep");
        ++failures_injected;
        // handle_ops_failure may tear chains down; resync our list.
        std::erase_if(live_chains, [&](util::NfcId id) {
          return dc.orchestrator().chain(id) == nullptr;
        });
      }
    } else if (action < 0.85) {
      const auto clusters = dc.clusters().clusters();
      const auto* vc = clusters[rng.uniform_index(clusters.size())];
      const cluster::VertexCoverAlBuilder builder;
      ALVC_IGNORE_STATUS(dc.clusters().reoptimize_cluster(vc->id, builder),
                         "soak: a skipped reoptimization is acceptable");
    } else if (!live_chains.empty()) {
      // Operator migration of function 0 toward a random slice server.
      const auto id = live_chains[rng.uniform_index(live_chains.size())];
      const auto* chain = dc.orchestrator().chain(id);
      if (chain != nullptr) {
        const auto* vc = dc.clusters().find(chain->cluster);
        if (vc != nullptr && !vc->layer.tors.empty()) {
          const auto& tor = dc.topology().tor(vc->layer.tors.front());
          if (!tor.servers.empty()) {
            ALVC_IGNORE_STATUS(
                dc.orchestrator().migrate_function(
                    id, 0, nfv::HostRef{tor.servers[rng.uniform_index(tor.servers.size())]}),
                "soak: an unplaceable operator migration is a legal no-op");
          }
        }
      }
    }

    // Invariants, every step.
    const auto cluster_violations = dc.clusters().check_invariants();
    ASSERT_TRUE(cluster_violations.empty())
        << "step " << step << ": " << cluster_violations.front();
    const auto isolation = dc.orchestrator().check_isolation();
    ASSERT_TRUE(isolation.empty()) << "step " << step << ": " << isolation.front();
    ASSERT_TRUE(dc.orchestrator().cloud().pool().is_consistent()) << "step " << step;
  }
  // Teardown everything; the DC must come back to a clean slate.
  for (auto id : live_chains) {
    ALVC_IGNORE_STATUS(dc.teardown_chain(id), "final drain: emptiness is asserted below");
  }
  EXPECT_EQ(dc.orchestrator().slices().slice_count(), 0u);
  EXPECT_EQ(dc.orchestrator().cloud().lifecycle().active_count(), 0u);
  EXPECT_EQ(dc.orchestrator().controller().tables().total_rules(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace alvc::core
