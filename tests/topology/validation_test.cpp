#include "topology/validation.h"

#include <gtest/gtest.h>

#include "topology/builder.h"

namespace alvc::topology {
namespace {

TEST(ValidationTest, EmptyTopologyIsValid) {
  DataCenterTopology topo;
  EXPECT_TRUE(validate(topo).ok());
  EXPECT_TRUE(switch_layer_connected(topo));
}

TEST(ValidationTest, GeneratedTopologyIsValid) {
  const auto topo = build_topology(TopologyParams{});
  const auto report = validate(topo);
  EXPECT_TRUE(report.ok());
}

TEST(ValidationTest, WellFormedManualTopology) {
  DataCenterTopology topo;
  const auto o = topo.add_ops();
  const auto t = topo.add_tor();
  topo.connect_tor_ops(t, o);
  const auto s = topo.add_server(t, Resources{.cpu_cores = 8, .memory_gb = 32, .storage_gb = 100});
  topo.add_vm(s, alvc::util::ServiceId{0});
  EXPECT_TRUE(validate(topo).ok());
  EXPECT_TRUE(switch_layer_connected(topo));
}

TEST(ValidationTest, DisconnectedSwitchLayerDetected) {
  DataCenterTopology topo;
  topo.add_ops();
  topo.add_ops();  // two OPSs, no links
  EXPECT_FALSE(switch_layer_connected(topo));
}

TEST(ValidationTest, IsolatedTorDetectedAsDisconnected) {
  DataCenterTopology topo;
  const auto o = topo.add_ops();
  const auto t0 = topo.add_tor();
  topo.add_tor();  // no uplinks
  topo.connect_tor_ops(t0, o);
  EXPECT_FALSE(switch_layer_connected(topo));
  EXPECT_TRUE(validate(topo).ok());  // structurally fine, just disconnected
}

}  // namespace
}  // namespace alvc::topology
