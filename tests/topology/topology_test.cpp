#include "topology/topology.h"

#include <gtest/gtest.h>

namespace alvc::topology {
namespace {

using alvc::util::ServiceId;

DataCenterTopology small_dc() {
  // 2 ToRs, 2 servers each, 2 VMs per server, 3 OPSs.
  DataCenterTopology topo;
  const OpsId o0 = topo.add_ops();
  const OpsId o1 = topo.add_ops(true, Resources{.cpu_cores = 4, .memory_gb = 8, .storage_gb = 32});
  const OpsId o2 = topo.add_ops();
  topo.connect_ops_ops(o0, o1);
  topo.connect_ops_ops(o1, o2);
  for (int t = 0; t < 2; ++t) {
    const TorId tor = topo.add_tor();
    topo.connect_tor_ops(tor, t == 0 ? o0 : o2);
    topo.connect_tor_ops(tor, o1);
    for (int s = 0; s < 2; ++s) {
      const ServerId server = topo.add_server(tor, Resources{.cpu_cores = 16, .memory_gb = 64, .storage_gb = 512});
      for (int v = 0; v < 2; ++v) {
        topo.add_vm(server, ServiceId{static_cast<ServiceId::value_type>(v)});
      }
    }
  }
  return topo;
}

TEST(TopologyTest, Counts) {
  const auto topo = small_dc();
  EXPECT_EQ(topo.tor_count(), 2u);
  EXPECT_EQ(topo.server_count(), 4u);
  EXPECT_EQ(topo.vm_count(), 8u);
  EXPECT_EQ(topo.ops_count(), 3u);
}

TEST(TopologyTest, IdsAreDense) {
  const auto topo = small_dc();
  for (std::size_t i = 0; i < topo.vm_count(); ++i) {
    EXPECT_EQ(topo.vms()[i].id.index(), i);
  }
  for (std::size_t i = 0; i < topo.ops_count(); ++i) {
    EXPECT_EQ(topo.opss()[i].id.index(), i);
  }
}

TEST(TopologyTest, LinksAreMirrored) {
  const auto topo = small_dc();
  const auto& tor0 = topo.tor(TorId{0});
  ASSERT_EQ(tor0.uplinks.size(), 2u);
  for (OpsId o : tor0.uplinks) {
    const auto& links = topo.ops(o).tor_links;
    EXPECT_NE(std::find(links.begin(), links.end(), TorId{0}), links.end());
  }
}

TEST(TopologyTest, TorOfVmFollowsServer) {
  const auto topo = small_dc();
  for (const auto& vm : topo.vms()) {
    EXPECT_EQ(topo.tor_of_vm(vm.id), topo.server(vm.server).tor);
  }
}

TEST(TopologyTest, OptoelectronicFlagAndCompute) {
  const auto topo = small_dc();
  EXPECT_FALSE(topo.ops(OpsId{0}).optoelectronic);
  EXPECT_TRUE(topo.ops(OpsId{1}).optoelectronic);
  EXPECT_GT(topo.ops(OpsId{1}).compute.cpu_cores, 0);
  EXPECT_EQ(topo.ops(OpsId{0}).compute.cpu_cores, 0);
}

TEST(TopologyTest, PlainOpsDropsComputeArgument) {
  DataCenterTopology topo;
  topo.add_ops(false, Resources{.cpu_cores = 99, .memory_gb = 0, .storage_gb = 0});
  EXPECT_EQ(topo.ops(OpsId{0}).compute.cpu_cores, 0);
}

TEST(TopologyTest, SwitchGraphLayout) {
  const auto topo = small_dc();
  const auto& g = topo.switch_graph();
  EXPECT_EQ(g.vertex_count(), 5u);  // 2 ToRs + 3 OPSs
  // ToR-OPS links: 4; OPS-OPS links: 2.
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_FALSE(topo.is_ops_vertex(0));
  EXPECT_FALSE(topo.is_ops_vertex(1));
  EXPECT_TRUE(topo.is_ops_vertex(2));
  EXPECT_EQ(topo.vertex_domain(0), Domain::kElectronic);
  EXPECT_EQ(topo.vertex_domain(2), Domain::kOptical);
  EXPECT_EQ(topo.vertex_to_ops(2), OpsId{0});
  EXPECT_EQ(topo.vertex_to_tor(1), TorId{1});
  EXPECT_THROW((void)topo.vertex_to_ops(1), std::out_of_range);
  EXPECT_THROW((void)topo.vertex_to_tor(2), std::out_of_range);
}

TEST(TopologyTest, SwitchGraphRebuildsAfterMutation) {
  auto topo = small_dc();
  const auto before = topo.switch_graph().edge_count();
  const auto o = topo.add_ops();
  topo.connect_tor_ops(TorId{0}, o);
  EXPECT_EQ(topo.switch_graph().edge_count(), before + 1);
  EXPECT_EQ(topo.switch_graph().vertex_count(), 6u);
}

TEST(TopologyTest, VmTorGraphRestrictedToGroup) {
  const auto topo = small_dc();
  // VMs 0..3 live under ToR 0; 4..7 under ToR 1.
  const std::vector<VmId> group{VmId{0}, VmId{5}};
  const auto g = topo.vm_tor_graph(group);
  EXPECT_EQ(g.left_count(), 2u);
  EXPECT_EQ(g.right_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(1, 1));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(TopologyTest, TorOpsGraphMatchesUplinks) {
  const auto topo = small_dc();
  const auto g = topo.tor_ops_graph();
  EXPECT_EQ(g.left_count(), 2u);
  EXPECT_EQ(g.right_count(), 3u);
  EXPECT_TRUE(g.has_edge(0, 0));  // ToR0 -> OPS0
  EXPECT_TRUE(g.has_edge(0, 1));  // ToR0 -> OPS1
  EXPECT_TRUE(g.has_edge(1, 2));  // ToR1 -> OPS2
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(TopologyTest, SelfOpsLinkThrows) {
  DataCenterTopology topo;
  const auto o = topo.add_ops();
  EXPECT_THROW(topo.connect_ops_ops(o, o), std::invalid_argument);
}

TEST(TopologyTest, BadReferencesThrow) {
  DataCenterTopology topo;
  EXPECT_THROW(topo.add_server(TorId{0}, Resources{}), std::out_of_range);
  EXPECT_THROW(topo.add_vm(ServerId{0}, ServiceId{0}), std::out_of_range);
  const auto o = topo.add_ops();
  EXPECT_THROW(topo.connect_tor_ops(TorId{3}, o), std::out_of_range);
}

TEST(ResourcesTest, FitsWithinAndArithmetic) {
  const Resources small{.cpu_cores = 1, .memory_gb = 2, .storage_gb = 3};
  const Resources big{.cpu_cores = 10, .memory_gb = 20, .storage_gb = 30};
  EXPECT_TRUE(small.fits_within(big));
  EXPECT_FALSE(big.fits_within(small));
  const auto sum = small + big;
  EXPECT_DOUBLE_EQ(sum.cpu_cores, 11);
  const auto diff = big - small;
  EXPECT_DOUBLE_EQ(diff.storage_gb, 27);
  EXPECT_TRUE(diff.non_negative());
  EXPECT_FALSE((small - big).non_negative());
}

}  // namespace
}  // namespace alvc::topology
