#include "topology/builder.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/validation.h"

namespace alvc::topology {
namespace {

TEST(BuilderTest, DefaultParamsProduceExpectedCounts) {
  const TopologyParams params;
  const auto topo = build_topology(params);
  EXPECT_EQ(topo.tor_count(), params.rack_count);
  EXPECT_EQ(topo.server_count(), params.rack_count * params.servers_per_rack);
  EXPECT_EQ(topo.vm_count(), params.total_vms());
  EXPECT_EQ(topo.ops_count(), params.ops_count);
}

TEST(BuilderTest, DeterministicForSameSeed) {
  TopologyParams params;
  params.seed = 99;
  const auto a = build_topology(params);
  const auto b = build_topology(params);
  ASSERT_EQ(a.tor_count(), b.tor_count());
  for (std::size_t t = 0; t < a.tor_count(); ++t) {
    EXPECT_EQ(a.tors()[t].uplinks, b.tors()[t].uplinks);
  }
  for (std::size_t v = 0; v < a.vm_count(); ++v) {
    EXPECT_EQ(a.vms()[v].service, b.vms()[v].service);
  }
  for (std::size_t o = 0; o < a.ops_count(); ++o) {
    EXPECT_EQ(a.opss()[o].optoelectronic, b.opss()[o].optoelectronic);
  }
}

TEST(BuilderTest, DifferentSeedsDifferSomewhere) {
  TopologyParams params;
  params.seed = 1;
  const auto a = build_topology(params);
  params.seed = 2;
  const auto b = build_topology(params);
  bool any_diff = false;
  for (std::size_t t = 0; t < a.tor_count() && !any_diff; ++t) {
    if (a.tors()[t].uplinks != b.tors()[t].uplinks) any_diff = true;
  }
  for (std::size_t v = 0; v < a.vm_count() && !any_diff; ++v) {
    if (a.vms()[v].service != b.vms()[v].service) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BuilderTest, TorDegreeRespected) {
  TopologyParams params;
  params.tor_ops_degree = 3;
  params.ops_count = 8;
  const auto topo = build_topology(params);
  for (const auto& tor : topo.tors()) {
    EXPECT_EQ(tor.uplinks.size(), 3u);
    std::set<OpsId> unique(tor.uplinks.begin(), tor.uplinks.end());
    EXPECT_EQ(unique.size(), 3u) << "uplinks must be distinct";
  }
}

TEST(BuilderTest, TorDegreeCappedAtOpsCount) {
  TopologyParams params;
  params.tor_ops_degree = 50;
  params.ops_count = 4;
  const auto topo = build_topology(params);
  for (const auto& tor : topo.tors()) EXPECT_EQ(tor.uplinks.size(), 4u);
}

TEST(BuilderTest, OptoelectronicFractionHonoured) {
  TopologyParams params;
  params.ops_count = 10;
  params.optoelectronic_fraction = 0.3;
  const auto topo = build_topology(params);
  std::size_t oe = 0;
  for (const auto& o : topo.opss()) oe += o.optoelectronic ? 1 : 0;
  EXPECT_EQ(oe, 3u);
}

TEST(BuilderTest, ZeroOptoelectronicFraction) {
  TopologyParams params;
  params.optoelectronic_fraction = 0.0;
  const auto topo = build_topology(params);
  for (const auto& o : topo.opss()) EXPECT_FALSE(o.optoelectronic);
}

TEST(BuilderTest, TinyPositiveFractionGivesAtLeastOne) {
  TopologyParams params;
  params.ops_count = 10;
  params.optoelectronic_fraction = 0.01;
  const auto topo = build_topology(params);
  std::size_t oe = 0;
  for (const auto& o : topo.opss()) oe += o.optoelectronic ? 1 : 0;
  EXPECT_EQ(oe, 1u);
}

TEST(BuilderTest, ServiceLabelsWithinRange) {
  TopologyParams params;
  params.service_count = 3;
  const auto topo = build_topology(params);
  for (const auto& vm : topo.vms()) {
    EXPECT_LT(vm.service.index(), 3u);
  }
}

TEST(BuilderTest, ServiceSkewConcentratesOnFirstService) {
  TopologyParams params;
  params.rack_count = 16;
  params.service_count = 8;
  params.service_skew = 1.2;
  const auto topo = build_topology(params);
  std::vector<std::size_t> counts(8, 0);
  for (const auto& vm : topo.vms()) ++counts[vm.service.index()];
  EXPECT_GT(counts[0], counts[7]);
}

TEST(BuilderTest, RejectsDegenerateParams) {
  TopologyParams params;
  params.rack_count = 0;
  EXPECT_THROW((void)build_topology(params), std::invalid_argument);
  params = TopologyParams{};
  params.ops_count = 0;
  EXPECT_THROW((void)build_topology(params), std::invalid_argument);
  params = TopologyParams{};
  params.tor_ops_degree = 0;
  EXPECT_THROW((void)build_topology(params), std::invalid_argument);
  params = TopologyParams{};
  params.service_count = 0;
  EXPECT_THROW((void)build_topology(params), std::invalid_argument);
  params = TopologyParams{};
  params.optoelectronic_fraction = 1.5;
  EXPECT_THROW((void)build_topology(params), std::invalid_argument);
}

class CoreKindTest : public ::testing::TestWithParam<CoreKind> {};

TEST_P(CoreKindTest, GeneratedTopologyIsValid) {
  TopologyParams params;
  params.core = GetParam();
  params.ops_count = 9;
  params.core_degree = 3;
  const auto topo = build_topology(params);
  const auto report = validate(topo);
  EXPECT_TRUE(report.ok()) << (report.violations.empty() ? "" : report.violations.front());
}

TEST_P(CoreKindTest, SwitchLayerConnectedForNonTrivialCores) {
  TopologyParams params;
  params.core = GetParam();
  params.ops_count = 9;
  params.tor_ops_degree = 3;
  params.core_degree = 3;
  const auto topo = build_topology(params);
  // Even with kNone, ToRs fan out over random OPSs; with 8 racks x degree 3
  // over 9 OPSs connectivity holds with overwhelming probability for the
  // fixed default seed.
  EXPECT_TRUE(switch_layer_connected(topo)) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllCores, CoreKindTest,
                         ::testing::Values(CoreKind::kNone, CoreKind::kFullMesh, CoreKind::kRing,
                                           CoreKind::kTorus2D, CoreKind::kRandomRegular),
                         [](const auto& info) {
                           switch (info.param) {
                             case CoreKind::kNone: return "None";
                             case CoreKind::kFullMesh: return "FullMesh";
                             case CoreKind::kRing: return "Ring";
                             case CoreKind::kTorus2D: return "Torus2D";
                             case CoreKind::kRandomRegular: return "RandomRegular";
                           }
                           return "Unknown";
                         });

TEST(CoreTest, FullMeshEdgeCount) {
  TopologyParams params;
  params.core = CoreKind::kFullMesh;
  params.ops_count = 6;
  const auto topo = build_topology(params);
  std::size_t core_links = 0;
  for (const auto& o : topo.opss()) core_links += o.peer_links.size();
  EXPECT_EQ(core_links, 6u * 5u);  // each link counted twice
}

TEST(CoreTest, RingEdgeCount) {
  TopologyParams params;
  params.core = CoreKind::kRing;
  params.ops_count = 6;
  const auto topo = build_topology(params);
  std::size_t core_links = 0;
  for (const auto& o : topo.opss()) core_links += o.peer_links.size();
  EXPECT_EQ(core_links, 12u);  // 6 links, twice
}

TEST(CoreTest, RingOfTwoHasSingleLink) {
  TopologyParams params;
  params.core = CoreKind::kRing;
  params.ops_count = 2;
  params.tor_ops_degree = 2;
  const auto topo = build_topology(params);
  EXPECT_EQ(topo.ops(OpsId{0}).peer_links.size(), 1u);
}

TEST(CoreTest, Torus2DIsRegular) {
  TopologyParams params;
  params.core = CoreKind::kTorus2D;
  params.ops_count = 9;  // 3x3 torus: degree 4
  const auto topo = build_topology(params);
  for (const auto& o : topo.opss()) {
    EXPECT_EQ(o.peer_links.size(), 4u);
  }
}

TEST(CoreTest, RandomRegularDegreeBounded) {
  TopologyParams params;
  params.core = CoreKind::kRandomRegular;
  params.ops_count = 12;
  params.core_degree = 4;
  const auto topo = build_topology(params);
  for (const auto& o : topo.opss()) {
    EXPECT_LE(o.peer_links.size(), 12u);
    EXPECT_GE(o.peer_links.size(), 2u);  // near-regular
  }
}

TEST(CoreKindNamesTest, AllNamed) {
  EXPECT_STREQ(to_string(CoreKind::kNone), "none");
  EXPECT_STREQ(to_string(CoreKind::kFullMesh), "full-mesh");
  EXPECT_STREQ(to_string(CoreKind::kRing), "ring");
  EXPECT_STREQ(to_string(CoreKind::kTorus2D), "torus2d");
  EXPECT_STREQ(to_string(CoreKind::kRandomRegular), "random-regular");
}

}  // namespace
}  // namespace alvc::topology
