// Failure-injection API at the topology layer: setters return Status (no
// exceptions), usability predicates and the cached switch graph track the
// flags, and link failures are first-class.
#include <gtest/gtest.h>

#include "support/fixtures.h"
#include "topology/topology.h"
#include "util/error.h"

namespace alvc::topology {
namespace {

using alvc::test::SliceFixture;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::TorId;

TEST(TopologyFailureApiTest, SettersRejectBadIdsWithStatusNotThrow) {
  SliceFixture f;
  const auto ops = f.topo.set_ops_failed(OpsId{999}, true);
  ASSERT_FALSE(ops.is_ok());
  EXPECT_EQ(ops.error().code, ErrorCode::kInvalidArgument);

  const auto tor = f.topo.set_tor_failed(TorId{999}, true);
  ASSERT_FALSE(tor.is_ok());
  EXPECT_EQ(tor.error().code, ErrorCode::kInvalidArgument);

  const auto server = f.topo.set_server_failed(ServerId{999}, true);
  ASSERT_FALSE(server.is_ok());
  EXPECT_EQ(server.error().code, ErrorCode::kInvalidArgument);

  const auto bad_link = f.topo.set_link_failed(TorId{999}, OpsId{0}, true);
  ASSERT_FALSE(bad_link.is_ok());
  EXPECT_EQ(bad_link.error().code, ErrorCode::kInvalidArgument);

  // Valid endpoints but no such uplink: kNotFound, and nothing changes.
  const auto no_link = f.topo.set_link_failed(TorId{0}, OpsId{3}, true);
  ASSERT_FALSE(no_link.is_ok());
  EXPECT_EQ(no_link.error().code, ErrorCode::kNotFound);
}

TEST(TopologyFailureApiTest, FlagsFlipUsabilityAndAreIdempotent) {
  SliceFixture f;
  EXPECT_TRUE(f.topo.ops_usable(OpsId{0}));
  ASSERT_TRUE(f.topo.set_ops_failed(OpsId{0}, true).is_ok());
  ASSERT_TRUE(f.topo.set_ops_failed(OpsId{0}, true).is_ok());  // no-op, still ok
  EXPECT_FALSE(f.topo.ops_usable(OpsId{0}));
  ASSERT_TRUE(f.topo.set_ops_failed(OpsId{0}, false).is_ok());
  EXPECT_TRUE(f.topo.ops_usable(OpsId{0}));

  ASSERT_TRUE(f.topo.set_server_failed(ServerId{0}, true).is_ok());
  EXPECT_FALSE(f.topo.server_usable(ServerId{0}));
  ASSERT_TRUE(f.topo.set_server_failed(ServerId{0}, false).is_ok());
  EXPECT_TRUE(f.topo.server_usable(ServerId{0}));
}

TEST(TopologyFailureApiTest, UsableUplinksFilterFailedElementsAndLinks) {
  SliceFixture f;
  using Uplinks = std::vector<OpsId>;
  EXPECT_EQ(f.topo.usable_uplinks(TorId{0}), (Uplinks{OpsId{0}, OpsId{1}}));

  ASSERT_TRUE(f.topo.set_ops_failed(OpsId{1}, true).is_ok());
  EXPECT_EQ(f.topo.usable_uplinks(TorId{0}), (Uplinks{OpsId{0}}));

  ASSERT_TRUE(f.topo.set_link_failed(TorId{0}, OpsId{0}, true).is_ok());
  EXPECT_TRUE(f.topo.link_failed(TorId{0}, OpsId{0}));
  EXPECT_FALSE(f.topo.link_usable(TorId{0}, OpsId{0}));
  EXPECT_TRUE(f.topo.usable_uplinks(TorId{0}).empty());

  // A failed ToR has no usable uplinks regardless of link state.
  ASSERT_TRUE(f.topo.set_link_failed(TorId{0}, OpsId{0}, false).is_ok());
  ASSERT_TRUE(f.topo.set_ops_failed(OpsId{1}, false).is_ok());
  ASSERT_TRUE(f.topo.set_tor_failed(TorId{0}, true).is_ok());
  EXPECT_TRUE(f.topo.usable_uplinks(TorId{0}).empty());
}

TEST(TopologyFailureApiTest, SwitchGraphExcludesFailedElements) {
  SliceFixture f;
  const auto t0 = f.topo.tor_vertex(TorId{0});
  const auto o0 = f.topo.ops_vertex(OpsId{0});
  ASSERT_TRUE(f.topo.switch_graph().has_edge(t0, o0));

  ASSERT_TRUE(f.topo.set_link_failed(TorId{0}, OpsId{0}, true).is_ok());
  EXPECT_FALSE(f.topo.switch_graph().has_edge(t0, o0));
  ASSERT_TRUE(f.topo.set_link_failed(TorId{0}, OpsId{0}, false).is_ok());
  EXPECT_TRUE(f.topo.switch_graph().has_edge(t0, o0));

  ASSERT_TRUE(f.topo.set_tor_failed(TorId{0}, true).is_ok());
  EXPECT_EQ(f.topo.switch_graph().degree(t0), 0u);
  ASSERT_TRUE(f.topo.set_tor_failed(TorId{0}, false).is_ok());
  EXPECT_GT(f.topo.switch_graph().degree(t0), 0u);

  // Server failures do not touch the switch graph.
  ASSERT_TRUE(f.topo.set_server_failed(ServerId{0}, true).is_ok());
  EXPECT_TRUE(f.topo.switch_graph().has_edge(t0, o0));
}

}  // namespace
}  // namespace alvc::topology
