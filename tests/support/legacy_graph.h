// Pre-CSR reference implementations, preserved verbatim for differential
// testing.
//
// The graph core moved from per-vertex adjacency vectors to a flat CSR
// layout with reusable scratch buffers. The refactor's contract is
// BIT-IDENTICAL results — same distances, same predecessors, same
// tie-breaking everywhere. These are the old implementations (adjacency
// built by per-vertex push_back, std::queue frontiers, per-call state,
// std::unordered_map re-indexing), kept as the oracle the CSR algorithms
// are compared against edge-for-edge. Do not "improve" them: their value
// is that they are exactly what shipped before.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "graph/matching.h"
#include "graph/shortest_path.h"

namespace alvc::test::legacy {

/// The old adjacency-list build: one push_back per half-edge, walking the
/// edge list in insertion order. CSR slices must reproduce these vectors
/// exactly (same neighbor order, same edge ids, same weights).
[[nodiscard]] std::vector<std::vector<alvc::graph::Neighbor>> build_adjacency(
    const alvc::graph::Graph& g);

/// Old BFS: std::queue frontier, per-call distance/predecessor vectors.
[[nodiscard]] alvc::graph::PathResult bfs(const alvc::graph::Graph& g, std::size_t source,
                                          const alvc::graph::VertexFilter& filter = nullptr);

/// Old Dijkstra over the rebuilt adjacency lists.
[[nodiscard]] alvc::graph::PathResult dijkstra(const alvc::graph::Graph& g, std::size_t source,
                                               const alvc::graph::VertexFilter& filter = nullptr);

/// Old Yen's algorithm (old constrained BFS inside).
[[nodiscard]] std::vector<std::vector<std::size_t>> k_shortest_paths(
    const alvc::graph::Graph& g, std::size_t source, std::size_t target, std::size_t k,
    const alvc::graph::VertexFilter& filter = nullptr);

/// Old Dinic max-flow: per-vertex arc-index vectors.
class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t vertex_count);
  std::size_t add_edge(std::size_t u, std::size_t v, double capacity);
  double max_flow(std::size_t s, std::size_t t);
  [[nodiscard]] double flow_on(std::size_t e) const;

 private:
  struct Arc {
    std::size_t to;
    std::size_t reverse;
    double capacity;
    double flow;
  };
  bool bfs_layers(std::size_t s, std::size_t t);
  double dfs_push(std::size_t v, std::size_t t, double pushed);
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<int> level_;
  std::vector<std::size_t> next_arc_;
};

/// Old Tarjan articulation points (adjacency-vector neighbor order).
[[nodiscard]] std::vector<std::size_t> articulation_points(const alvc::graph::Graph& g);

/// Old induced-subgraph variant (std::unordered_map dense re-indexing).
[[nodiscard]] std::vector<std::size_t> articulation_points_in_subgraph(
    const alvc::graph::Graph& g, std::span<const std::size_t> members);

/// Old BipartiteGraph core: per-vertex neighbor vectors.
class Bipartite {
 public:
  Bipartite(std::size_t left_count, std::size_t right_count)
      : left_adj_(left_count), right_adj_(right_count) {}
  void add_edge(std::size_t left, std::size_t right) {
    left_adj_[left].push_back(right);
    right_adj_[right].push_back(left);
  }
  [[nodiscard]] std::size_t left_count() const noexcept { return left_adj_.size(); }
  [[nodiscard]] std::size_t right_count() const noexcept { return right_adj_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& left_neighbors(std::size_t l) const {
    return left_adj_[l];
  }
  [[nodiscard]] const std::vector<std::size_t>& right_neighbors(std::size_t r) const {
    return right_adj_[r];
  }

 private:
  std::vector<std::vector<std::size_t>> left_adj_;
  std::vector<std::vector<std::size_t>> right_adj_;
};

/// Old Hopcroft–Karp over the vector-of-vectors bipartite adjacency.
[[nodiscard]] alvc::graph::Matching maximum_bipartite_matching(const Bipartite& g);

/// Old greedy one-sided cover: full rescan of every right vertex's
/// neighbor list each round (the O(rounds * E) shape the incremental-gain
/// version replaced).
[[nodiscard]] std::vector<std::size_t> greedy_one_sided_cover(const Bipartite& g);

}  // namespace alvc::test::legacy
