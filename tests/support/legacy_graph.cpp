#include "support/legacy_graph.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_map>

namespace alvc::test::legacy {

using alvc::graph::Edge;
using alvc::graph::Graph;
using alvc::graph::kNoVertex;
using alvc::graph::kUnreachable;
using alvc::graph::Matching;
using alvc::graph::Neighbor;
using alvc::graph::PathResult;
using alvc::graph::VertexFilter;

std::vector<std::vector<Neighbor>> build_adjacency(const Graph& g) {
  std::vector<std::vector<Neighbor>> adj(g.vertex_count());
  const auto edges = g.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const Edge& edge = edges[e];
    adj[edge.from].push_back(Neighbor{edge.to, e, edge.weight});
    if (g.kind() == Graph::Kind::kUndirected && edge.from != edge.to) {
      adj[edge.to].push_back(Neighbor{edge.from, e, edge.weight});
    }
  }
  return adj;
}

PathResult bfs(const Graph& g, std::size_t source, const VertexFilter& filter) {
  if (source >= g.vertex_count()) throw std::out_of_range("legacy bfs: source out of range");
  const auto adj = build_adjacency(g);
  PathResult result;
  result.distance.assign(g.vertex_count(), kUnreachable);
  result.predecessor.assign(g.vertex_count(), kNoVertex);
  result.distance[source] = 0;
  std::queue<std::size_t> queue;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (const auto& nb : adj[v]) {
      if (result.distance[nb.vertex] != kUnreachable) continue;
      if (filter && nb.vertex != source && !filter(nb.vertex)) continue;
      result.distance[nb.vertex] = result.distance[v] + 1;
      result.predecessor[nb.vertex] = v;
      queue.push(nb.vertex);
    }
  }
  return result;
}

PathResult dijkstra(const Graph& g, std::size_t source, const VertexFilter& filter) {
  if (source >= g.vertex_count()) throw std::out_of_range("legacy dijkstra: source out of range");
  const auto adj = build_adjacency(g);
  PathResult result;
  result.distance.assign(g.vertex_count(), kUnreachable);
  result.predecessor.assign(g.vertex_count(), kNoVertex);
  result.distance[source] = 0;
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, v] = heap.top();
    heap.pop();
    if (dist > result.distance[v]) continue;
    for (const auto& nb : adj[v]) {
      if (filter && nb.vertex != source && !filter(nb.vertex)) continue;
      const double cand = dist + nb.weight;
      if (cand < result.distance[nb.vertex]) {
        result.distance[nb.vertex] = cand;
        result.predecessor[nb.vertex] = v;
        heap.emplace(cand, nb.vertex);
      }
    }
  }
  return result;
}

namespace {

std::optional<std::vector<std::size_t>> constrained_bfs(
    const std::vector<std::vector<Neighbor>>& adj, std::size_t source, std::size_t target,
    const VertexFilter& filter, const std::set<std::size_t>& banned_vertices,
    const std::set<std::pair<std::size_t, std::size_t>>& banned_edges) {
  if (banned_vertices.contains(source)) return std::nullopt;
  const auto combined = [&](std::size_t v) {
    if (banned_vertices.contains(v)) return false;
    return !filter || v == source || filter(v);
  };
  std::vector<std::size_t> pred(adj.size(), kNoVertex);
  std::vector<char> seen(adj.size(), 0);
  std::vector<std::size_t> queue;
  queue.push_back(source);
  seen[source] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::size_t v = queue[head];
    if (v == target) break;
    for (const auto& nb : adj[v]) {
      if (seen[nb.vertex] || !combined(nb.vertex)) continue;
      if (banned_edges.contains({v, nb.vertex})) continue;
      seen[nb.vertex] = 1;
      pred[nb.vertex] = v;
      queue.push_back(nb.vertex);
    }
  }
  if (!seen[target]) return std::nullopt;
  std::vector<std::size_t> path;
  for (std::size_t v = target; v != kNoVertex; v = pred[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  if (path.front() != source) return std::nullopt;
  return path;
}

}  // namespace

std::vector<std::vector<std::size_t>> k_shortest_paths(const Graph& g, std::size_t source,
                                                       std::size_t target, std::size_t k,
                                                       const VertexFilter& filter) {
  if (source >= g.vertex_count() || target >= g.vertex_count()) {
    throw std::out_of_range("legacy k_shortest_paths: endpoint out of range");
  }
  const auto adj = build_adjacency(g);
  std::vector<std::vector<std::size_t>> result;
  if (k == 0) return result;
  if (source == target) {
    result.push_back({source});
    return result;
  }
  auto first = constrained_bfs(adj, source, target, filter, {}, {});
  if (!first) return result;
  result.push_back(std::move(*first));

  const auto candidate_less = [](const std::vector<std::size_t>& a,
                                 const std::vector<std::size_t>& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  };
  std::set<std::vector<std::size_t>, decltype(candidate_less)> candidates(candidate_less);

  while (result.size() < k) {
    const auto& previous = result.back();
    for (std::size_t i = 0; i + 1 < previous.size(); ++i) {
      const std::vector<std::size_t> root(previous.begin(),
                                          previous.begin() + static_cast<std::ptrdiff_t>(i + 1));
      std::set<std::pair<std::size_t, std::size_t>> banned_edges;
      for (const auto& path : result) {
        if (path.size() > i && std::equal(root.begin(), root.end(), path.begin())) {
          if (path.size() > i + 1) {
            banned_edges.insert({path[i], path[i + 1]});
            banned_edges.insert({path[i + 1], path[i]});
          }
        }
      }
      std::set<std::size_t> banned_vertices(root.begin(), root.end() - 1);
      const auto spur =
          constrained_bfs(adj, previous[i], target, filter, banned_vertices, banned_edges);
      if (!spur) continue;
      std::vector<std::size_t> total = root;
      total.insert(total.end(), spur->begin() + 1, spur->end());
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

FlowNetwork::FlowNetwork(std::size_t vertex_count) : adjacency_(vertex_count) {}

std::size_t FlowNetwork::add_edge(std::size_t u, std::size_t v, double capacity) {
  const std::size_t forward = arcs_.size();
  arcs_.push_back(Arc{v, forward + 1, capacity, 0});
  arcs_.push_back(Arc{u, forward, 0, 0});
  adjacency_[u].push_back(forward);
  adjacency_[v].push_back(forward + 1);
  return forward;
}

bool FlowNetwork::bfs_layers(std::size_t s, std::size_t t) {
  level_.assign(adjacency_.size(), -1);
  std::queue<std::size_t> queue;
  level_[s] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (std::size_t e : adjacency_[v]) {
      const Arc& arc = arcs_[e];
      if (level_[arc.to] == -1 && arc.capacity - arc.flow > 1e-12) {
        level_[arc.to] = level_[v] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[t] != -1;
}

double FlowNetwork::dfs_push(std::size_t v, std::size_t t, double pushed) {
  if (v == t || pushed <= 0) return pushed;
  for (std::size_t& i = next_arc_[v]; i < adjacency_[v].size(); ++i) {
    const std::size_t e = adjacency_[v][i];
    Arc& arc = arcs_[e];
    if (level_[arc.to] != level_[v] + 1) continue;
    const double residual = arc.capacity - arc.flow;
    if (residual <= 1e-12) continue;
    const double got = dfs_push(arc.to, t, std::min(pushed, residual));
    if (got > 0) {
      arc.flow += got;
      arcs_[arc.reverse].flow -= got;
      return got;
    }
  }
  return 0;
}

double FlowNetwork::max_flow(std::size_t s, std::size_t t) {
  for (auto& arc : arcs_) arc.flow = 0;
  double total = 0;
  while (bfs_layers(s, t)) {
    next_arc_.assign(adjacency_.size(), 0);
    for (;;) {
      const double pushed = dfs_push(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= 0) break;
      total += pushed;
    }
  }
  return total;
}

double FlowNetwork::flow_on(std::size_t e) const { return arcs_.at(e).flow; }

namespace {

struct LegacyTarjan {
  const std::vector<std::vector<Neighbor>>& adj;
  std::vector<int> disc;
  std::vector<int> low;
  std::vector<char> is_cut;
  int timer = 0;

  explicit LegacyTarjan(const std::vector<std::vector<Neighbor>>& adjacency)
      : adj(adjacency), disc(adjacency.size(), -1), low(adjacency.size(), 0),
        is_cut(adjacency.size(), 0) {}

  void run(std::size_t root) {
    struct Frame {
      std::size_t vertex;
      std::size_t parent;
      std::size_t edge_index;
      std::size_t children;
    };
    std::vector<Frame> stack;
    disc[root] = low[root] = timer++;
    stack.push_back(Frame{root, root, 0, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& neighbors = adj[frame.vertex];
      if (frame.edge_index < neighbors.size()) {
        const std::size_t next = neighbors[frame.edge_index++].vertex;
        if (next == frame.vertex) continue;
        if (disc[next] == -1) {
          ++frame.children;
          disc[next] = low[next] = timer++;
          stack.push_back(Frame{next, frame.vertex, 0, 0});
        } else if (next != frame.parent) {
          low[frame.vertex] = std::min(low[frame.vertex], disc[next]);
        }
      } else {
        const Frame finished = frame;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent_frame = stack.back();
          low[parent_frame.vertex] = std::min(low[parent_frame.vertex], low[finished.vertex]);
          if (parent_frame.parent != parent_frame.vertex || parent_frame.children > 1) {
            if (parent_frame.parent != parent_frame.vertex &&
                low[finished.vertex] >= disc[parent_frame.vertex]) {
              is_cut[parent_frame.vertex] = 1;
            }
          }
          if (parent_frame.parent == parent_frame.vertex &&
              low[finished.vertex] >= disc[parent_frame.vertex] && parent_frame.children > 1) {
            is_cut[parent_frame.vertex] = 1;
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<std::size_t> articulation_points(const Graph& g) {
  const auto adj = build_adjacency(g);
  LegacyTarjan tarjan(adj);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (tarjan.disc[v] == -1) tarjan.run(v);
  }
  std::vector<std::size_t> cuts;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (tarjan.is_cut[v]) cuts.push_back(v);
  }
  return cuts;
}

std::vector<std::size_t> articulation_points_in_subgraph(const Graph& g,
                                                         std::span<const std::size_t> members) {
  std::unordered_map<std::size_t, std::size_t> index;
  for (std::size_t v : members) {
    if (v >= g.vertex_count()) continue;
    index.emplace(v, index.size());
  }
  Graph sub(index.size());
  for (const Edge& e : g.edges()) {
    const auto from = index.find(e.from);
    const auto to = index.find(e.to);
    if (from != index.end() && to != index.end()) {
      sub.add_edge(from->second, to->second);
    }
  }
  const auto cuts = articulation_points(sub);
  std::vector<std::size_t> reverse(index.size());
  for (const auto& [orig, dense] : index) reverse[dense] = orig;
  std::vector<std::size_t> out;
  out.reserve(cuts.size());
  for (std::size_t c : cuts) out.push_back(reverse[c]);
  std::sort(out.begin(), out.end());
  return out;
}

Matching maximum_bipartite_matching(const Bipartite& g) {
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  const std::size_t nl = g.left_count();
  Matching m;
  m.match_left.assign(nl, Matching::kUnmatched);
  m.match_right.assign(g.right_count(), Matching::kUnmatched);
  std::vector<std::size_t> dist(nl, kInf);

  const auto bfs_layer = [&]() -> bool {
    std::queue<std::size_t> queue;
    for (std::size_t l = 0; l < nl; ++l) {
      if (m.match_left[l] == Matching::kUnmatched) {
        dist[l] = 0;
        queue.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool found = false;
    while (!queue.empty()) {
      const std::size_t l = queue.front();
      queue.pop();
      for (std::size_t r : g.left_neighbors(l)) {
        const std::size_t next = m.match_right[r];
        if (next == Matching::kUnmatched) {
          found = true;
        } else if (dist[next] == kInf) {
          dist[next] = dist[l] + 1;
          queue.push(next);
        }
      }
    }
    return found;
  };

  const auto dfs = [&](auto&& self, std::size_t l) -> bool {
    for (std::size_t r : g.left_neighbors(l)) {
      const std::size_t next = m.match_right[r];
      if (next == Matching::kUnmatched || (dist[next] == dist[l] + 1 && self(self, next))) {
        m.match_left[l] = r;
        m.match_right[r] = l;
        return true;
      }
    }
    dist[l] = kInf;
    return false;
  };

  while (bfs_layer()) {
    for (std::size_t l = 0; l < nl; ++l) {
      if (m.match_left[l] == Matching::kUnmatched && dfs(dfs, l)) ++m.size;
    }
  }
  return m;
}

std::vector<std::size_t> greedy_one_sided_cover(const Bipartite& g) {
  const std::size_t nl = g.left_count();
  const std::size_t nr = g.right_count();
  std::vector<char> covered(nl, 0);
  std::size_t uncovered = 0;
  for (std::size_t l = 0; l < nl; ++l) {
    if (g.left_neighbors(l).empty()) {
      covered[l] = 1;
    } else {
      ++uncovered;
    }
  }
  std::vector<std::size_t> chosen;
  while (uncovered > 0) {
    std::size_t best = nr;
    std::size_t best_gain = 0;
    for (std::size_t r = 0; r < nr; ++r) {
      std::size_t gain = 0;
      for (std::size_t l : g.right_neighbors(r)) {
        if (!covered[l]) ++gain;
      }
      if (gain > best_gain) {
        best = r;
        best_gain = gain;
      }
    }
    if (best == nr) break;
    chosen.push_back(best);
    for (std::size_t l : g.right_neighbors(best)) {
      if (!covered[l]) {
        covered[l] = 1;
        --uncovered;
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace alvc::test::legacy
