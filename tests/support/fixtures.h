// Shared test fixtures: a small, fully deterministic data center with one
// virtual cluster, ready for placement/routing/orchestration tests.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/service.h"
#include "nfv/catalog.h"
#include "topology/topology.h"
#include "util/ids.h"

/// Attaches the active RNG seed to every assertion in the enclosing scope,
/// so a failing randomized/soak test prints the seed needed to replay it.
#define ALVC_TRACE_SEED(seed) SCOPED_TRACE(::testing::Message() << "rng seed = " << (seed))

namespace alvc::test {

using alvc::topology::Resources;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::ServiceId;
using alvc::util::TorId;
using alvc::util::VmId;

/// Two racks, two servers each, one VM per server (service 0); four OPSs in
/// a ring; OPS 0 and 2 are optoelectronic (4 cores / 8 GB / 32 GB each).
/// ToR0 -> {O0, O1}; ToR1 -> {O2, O3}. Core ring O0-O1-O2-O3-O0.
struct SliceFixture {
  alvc::topology::DataCenterTopology topo;
  alvc::nfv::VnfCatalog catalog = alvc::nfv::VnfCatalog::make_default();
  std::vector<VmId> group;

  SliceFixture() {
    const Resources oe{.cpu_cores = 4, .memory_gb = 8, .storage_gb = 32};
    const auto o0 = topo.add_ops(true, oe);
    const auto o1 = topo.add_ops();
    const auto o2 = topo.add_ops(true, oe);
    const auto o3 = topo.add_ops();
    topo.connect_ops_ops(o0, o1);
    topo.connect_ops_ops(o1, o2);
    topo.connect_ops_ops(o2, o3);
    topo.connect_ops_ops(o3, o0);
    const Resources server_cap{.cpu_cores = 32, .memory_gb = 128, .storage_gb = 1024};
    for (int r = 0; r < 2; ++r) {
      const TorId tor = topo.add_tor();
      topo.connect_tor_ops(tor, OpsId{static_cast<OpsId::value_type>(2 * r)});
      topo.connect_tor_ops(tor, OpsId{static_cast<OpsId::value_type>(2 * r + 1)});
      for (int s = 0; s < 2; ++s) {
        const ServerId server = topo.add_server(tor, server_cap);
        group.push_back(topo.add_vm(server, ServiceId{0}));
      }
    }
  }
};

/// SliceFixture plus a ClusterManager with the single service-0 cluster
/// built by the paper's AL algorithm.
struct ClusterFixture : SliceFixture {
  alvc::cluster::ClusterManager manager{topo};
  alvc::util::ClusterId cluster_id;

  ClusterFixture() {
    const alvc::cluster::VertexCoverAlBuilder builder;
    auto id = manager.create_cluster(ServiceId{0}, group, builder);
    if (!id.has_value()) throw std::runtime_error("fixture cluster failed: " + id.error().to_string());
    cluster_id = *id;
  }

  [[nodiscard]] const alvc::cluster::VirtualCluster& cluster() const {
    return *manager.find(cluster_id);
  }
};

}  // namespace alvc::test
