// Seeded random graph generators shared by the graph test suites.
//
// Two modes:
//   * G(n,p) — the loop the ad-hoc property-test builders used verbatim
//     (ascending (i, j) pairs, one Bernoulli draw each), so tests that
//     migrate here keep the exact same topology stream per seed.
//   * Switch-shaped — a data-center-like instance (ToR tier + OPS tier,
//     seeded uplink fan-out, ring core with chords, optional fault mask)
//     that exercises the adjacency the orchestrator actually traverses:
//     bipartite-ish uplinks, a sparse core, and holes where links failed.
// All draws come from the caller-visible seed; a failing test prints the
// seed and replays byte-for-byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace alvc::test {

/// Erdős–Rényi G(n,p): each unordered pair {i, j}, i < j, gets an edge with
/// probability `p`, drawn in ascending pair order.
inline alvc::graph::Graph random_gnp_graph(alvc::util::Rng& rng, std::size_t n, double p) {
  alvc::graph::Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) g.add_edge(i, j);
    }
  }
  return g;
}

/// G(n,p) with integer weights in [1, 1 + max_extra] — Dijkstra fodder.
inline alvc::graph::Graph random_weighted_gnp_graph(alvc::util::Rng& rng, std::size_t n,
                                                    double p, std::size_t max_extra) {
  alvc::graph::Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) {
        g.add_edge(i, j, 1.0 + static_cast<double>(rng.uniform_index(max_extra + 1)));
      }
    }
  }
  return g;
}

struct SwitchTopologyParams {
  std::size_t racks = 8;          // ToR vertices [0, racks)
  std::size_t ops_per_rack = 2;   // OPS vertices [racks, racks + racks*ops_per_rack)
  std::size_t fan_out = 3;        // distinct OPS uplinks attempted per ToR
  double chord_probability = 0.1; // extra OPS-OPS core chords beyond the ring
  double fault_fraction = 0.0;    // each candidate link masked (absent) w.p.
  std::uint64_t seed = 1;
};

/// Switch-graph-shaped random instance. Vertices [0, racks) model ToRs and
/// the rest OPSs; each ToR uplinks to `fan_out` distinct seeded OPSs, the
/// OPS core is a ring plus seeded chords, and `fault_fraction` knocks out
/// candidate links the way a failure sweep would (the switch-graph rebuild
/// simply omits dead links, so a masked edge IS the production shape).
inline alvc::graph::Graph random_switch_graph(const SwitchTopologyParams& params) {
  const std::size_t ops_count = params.racks * params.ops_per_rack;
  alvc::graph::Graph g(params.racks + ops_count);
  alvc::util::Rng rng(params.seed);
  std::vector<std::size_t> ops_pool(ops_count);
  std::iota(ops_pool.begin(), ops_pool.end(), std::size_t{0});
  for (std::size_t r = 0; r < params.racks; ++r) {
    rng.shuffle(ops_pool);
    const std::size_t uplinks = std::min(params.fan_out, ops_count);
    for (std::size_t k = 0; k < uplinks; ++k) {
      if (rng.bernoulli(params.fault_fraction)) continue;  // masked link
      g.add_edge(r, params.racks + ops_pool[k]);
    }
  }
  for (std::size_t o = 0; o + 1 < ops_count; ++o) {  // core ring
    if (rng.bernoulli(params.fault_fraction)) continue;
    g.add_edge(params.racks + o, params.racks + o + 1);
  }
  if (ops_count > 2 && !rng.bernoulli(params.fault_fraction)) {
    g.add_edge(params.racks + ops_count - 1, params.racks);  // close the ring
  }
  for (std::size_t o = 0; o < ops_count; ++o) {  // seeded chords
    if (!rng.bernoulli(params.chord_probability)) continue;
    const std::size_t peer = rng.uniform_index(ops_count);
    if (peer == o) continue;
    if (rng.bernoulli(params.fault_fraction)) continue;
    g.add_edge(params.racks + o, params.racks + peer);
  }
  return g;
}

}  // namespace alvc::test
