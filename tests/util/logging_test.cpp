#include "util/logging.h"

#include <gtest/gtest.h>

#include <sstream>

namespace alvc::util {
namespace {

/// Captures std::clog / std::cerr for the duration of a test.
class StreamCapture {
 public:
  StreamCapture()
      : old_clog_(std::clog.rdbuf(clog_buffer_.rdbuf())),
        old_cerr_(std::cerr.rdbuf(cerr_buffer_.rdbuf())) {}
  ~StreamCapture() {
    std::clog.rdbuf(old_clog_);
    std::cerr.rdbuf(old_cerr_);
  }
  [[nodiscard]] std::string clog_text() const { return clog_buffer_.str(); }
  [[nodiscard]] std::string cerr_text() const { return cerr_buffer_.str(); }

 private:
  std::ostringstream clog_buffer_;
  std::ostringstream cerr_buffer_;
  std::streambuf* old_clog_;
  std::streambuf* old_cerr_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = Logger::instance().level(); }
  void TearDown() override { Logger::instance().set_level(previous_level_); }
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_EQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_EQ(to_string(LogLevel::kError), "ERROR");
  EXPECT_EQ(to_string(LogLevel::kOff), "OFF");
}

TEST_F(LoggingTest, DefaultLevelSuppressesInfo) {
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST_F(LoggingTest, InfoGoesToClogWarnToCerr) {
  Logger::instance().set_level(LogLevel::kInfo);
  StreamCapture capture;
  ALVC_LOG_INFO("test") << "hello " << 42;
  ALVC_LOG_WARN("test") << "watch out";
  EXPECT_NE(capture.clog_text().find("[INFO] test: hello 42"), std::string::npos);
  EXPECT_NE(capture.cerr_text().find("[WARN] test: watch out"), std::string::npos);
  EXPECT_EQ(capture.clog_text().find("watch out"), std::string::npos);
}

TEST_F(LoggingTest, SuppressedLevelsEmitNothing) {
  Logger::instance().set_level(LogLevel::kError);
  StreamCapture capture;
  ALVC_LOG_INFO("test") << "invisible";
  ALVC_LOG_WARN("test") << "also invisible";
  EXPECT_TRUE(capture.clog_text().empty());
  EXPECT_TRUE(capture.cerr_text().empty());
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  StreamCapture capture;
  ALVC_LOG_ERROR("test") << "nope";
  EXPECT_TRUE(capture.cerr_text().empty());
}

TEST_F(LoggingTest, MacroShortCircuitsDisabledStatements) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  const auto side_effect = [&] {
    ++evaluations;
    return "x";
  };
  ALVC_LOG_DEBUG("test") << side_effect();
  EXPECT_EQ(evaluations, 0) << "disabled log statements must not evaluate operands";
  ALVC_LOG_ERROR("test") << side_effect();
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace alvc::util
