#include "util/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace alvc::util {
namespace {

TEST(TaggedIdTest, DefaultConstructedIsInvalid) {
  VmId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, VmId::invalid());
}

TEST(TaggedIdTest, ValueRoundTrip) {
  VmId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
  EXPECT_EQ(id.index(), 42u);
}

TEST(TaggedIdTest, Ordering) {
  EXPECT_LT(VmId{1}, VmId{2});
  EXPECT_EQ(VmId{7}, VmId{7});
  EXPECT_NE(VmId{7}, VmId{8});
}

TEST(TaggedIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<VmId, TorId>);
  static_assert(!std::is_same_v<OpsId, TorId>);
}

TEST(TaggedIdTest, Hashable) {
  std::unordered_set<OpsId> set;
  set.insert(OpsId{1});
  set.insert(OpsId{2});
  set.insert(OpsId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(TaggedIdTest, StreamOutput) {
  std::ostringstream os;
  os << TorId{5} << ' ' << TorId::invalid();
  EXPECT_EQ(os.str(), "5 <invalid>");
}

TEST(TaggedIdTest, MaxValueIsReservedAsInvalid) {
  VmId id{VmId::kInvalidValue};
  EXPECT_FALSE(id.valid());
}

}  // namespace
}  // namespace alvc::util
