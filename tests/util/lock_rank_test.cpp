#include "util/lock_rank.h"

#include <gtest/gtest.h>

#include <thread>

namespace alvc::util {
namespace {

namespace lr = alvc::util::lock_rank;

TEST(LockRankTest, IncreasingAcquisitionsPass) {
  EXPECT_EQ(LockRank::held_depth(), 0u);
  {
    const LockRank::Scope outer(lr::kTopologySwitchGraphCache, "topology.switch_graph_cache");
    EXPECT_EQ(LockRank::held_depth(), 1u);
    {
      const LockRank::Scope inner(lr::kGraphCsr, "graph.csr");
      EXPECT_EQ(LockRank::held_depth(), 2u);
      const LockRank::Scope metrics(lr::kTelemetryMetricRegistry, "telemetry.metric_registry");
      EXPECT_EQ(LockRank::held_depth(), 3u);
    }
    EXPECT_EQ(LockRank::held_depth(), 1u);
  }
  EXPECT_EQ(LockRank::held_depth(), 0u);
}

TEST(LockRankTest, ReacquireAfterReleaseIsLegal) {
  for (int i = 0; i < 3; ++i) {
    const LockRank::Scope s(lr::kGraphCsr, "graph.csr");
    EXPECT_EQ(LockRank::held_depth(), 1u);
  }
}

TEST(LockRankTest, HeldRanksArePerThread) {
  const LockRank::Scope outer(lr::kExecutorQueue, "util.executor.queue");
  // Another thread starts with an empty stack, so a lower rank is fine
  // there even while this thread holds the highest one.
  std::thread t([] {
    EXPECT_EQ(LockRank::held_depth(), 0u);
    const LockRank::Scope s(lr::kGraphCsr, "graph.csr");
    EXPECT_EQ(LockRank::held_depth(), 1u);
  });
  t.join();
  EXPECT_EQ(LockRank::held_depth(), 1u);
}

TEST(LockRankDeathTest, InvertedOrderAborts) {
  EXPECT_DEATH(
      {
        const LockRank::Scope outer(lr::kGraphCsr, "graph.csr");
        const LockRank::Scope inner(lr::kTopologySwitchGraphCache,
                                    "topology.switch_graph_cache");
      },
      "lock-order violation");
}

TEST(LockRankDeathTest, SameRankReacquireWhileHeldAborts) {
  // Two locks of one class must be taken as a single scoped_lock (one
  // Scope); sequential acquisition is exactly the ABBA shape the ranks ban.
  EXPECT_DEATH(
      {
        const LockRank::Scope first(lr::kGraphCsr, "graph.csr");
        const LockRank::Scope second(lr::kGraphCsr, "graph.csr");
      },
      "lock-order violation");
}

}  // namespace
}  // namespace alvc::util
