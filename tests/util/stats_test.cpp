#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace alvc::util {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);  // classic example
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, MergeMatchesSequential) {
  Accumulator a;
  Accumulator b;
  Accumulator whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a;
  a.add(3.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(SampleSetTest, PercentilesExact) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.02);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.0);
}

TEST(SampleSetTest, EmptyReturnsZero) {
  SampleSet s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  EXPECT_TRUE(s.empty());
}

TEST(SampleSetTest, PercentileRangeValidation) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(SampleSetTest, AddAfterPercentileStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSetTest, SummaryMentionsCount) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_NE(s.summary().find("n=2"), std::string::npos);
}

TEST(HistogramTest, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.999);
  h.add(-1.0);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(1), 4.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace alvc::util
