#include "util/rng.h"
#include "util/error.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>

namespace alvc::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(RngTest, UniformU64RespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformU64SingletonRange) {
  Rng rng(42);
  EXPECT_EQ(rng.uniform_u64(5, 5), 5u);
}

TEST(RngTest, UniformU64FullRangeDoesNotHang) {
  Rng rng(42);
  ALVC_IGNORE_STATUS(rng.uniform_u64(0, ~0ULL), "only termination is under test");
}

TEST(RngTest, UniformU64RejectsInvertedBounds) {
  Rng rng(42);
  EXPECT_THROW((void)rng.uniform_u64(3, 2), std::invalid_argument);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(42);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
}

TEST(RngTest, Uniform01InHalfOpenRange) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01MeanIsAboutHalf) {
  Rng rng(42);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(42);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(42);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, BoundedParetoStaysInBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.2, 1.0, 1000.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0 + 1e-9);
  }
  EXPECT_THROW((void)rng.bounded_pareto(1.0, 5.0, 2.0), std::invalid_argument);
}

TEST(RngTest, BoundedParetoIsHeavyTailed) {
  // Median should be much closer to lo than to hi for alpha > 1.
  Rng rng(42);
  std::vector<double> xs;
  for (int i = 0; i < 10001; ++i) xs.push_back(rng.bounded_pareto(1.5, 1.0, 10000.0));
  std::sort(xs.begin(), xs.end());
  EXPECT_LT(xs[xs.size() / 2], 10.0);
  EXPECT_GT(xs.back(), 100.0);
}

TEST(RngTest, PoissonMean) {
  Rng rng(42);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(4.0));
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, ZipfSkewsTowardLowIndices) {
  Rng rng(42);
  std::array<int, 10> counts{};
  for (int i = 0; i < 100000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_THROW((void)rng.zipf(0, 1.0), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(42);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(copy);
  EXPECT_NE(copy, v);  // overwhelmingly likely
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(RngTest, SampleDrawsDistinctElements) {
  Rng rng(42);
  std::vector<int> population(50);
  std::iota(population.begin(), population.end(), 0);
  const auto picked = rng.sample(std::span<const int>(population), 10);
  EXPECT_EQ(picked.size(), 10u);
  std::set<int> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_THROW((void)rng.sample(std::span<const int>(population), 51), std::invalid_argument);
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(42);
  std::vector<int> population{1, 2, 3};
  auto picked = rng.sample(std::span<const int>(population), 3);
  std::sort(picked.begin(), picked.end());
  EXPECT_EQ(picked, population);
}

}  // namespace
}  // namespace alvc::util
