#include "util/bitset.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace alvc::util {
namespace {

TEST(DynamicBitsetTest, ConstructionAndSize) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  DynamicBitset full(100, true);
  EXPECT_EQ(full.count(), 100u);
  EXPECT_TRUE(full.all());
}

TEST(DynamicBitsetTest, SetResetTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitsetTest, BoundsChecked) {
  DynamicBitset b(10);
  EXPECT_THROW(b.set(10), std::out_of_range);
  EXPECT_THROW(b.reset(10), std::out_of_range);
  EXPECT_THROW((void)b.test(10), std::out_of_range);
}

TEST(DynamicBitsetTest, SetAllClearsTrailingBits) {
  DynamicBitset b(65);
  b.set_all();
  EXPECT_EQ(b.count(), 65u);
  EXPECT_TRUE(b.all());
  b.reset_all();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitsetTest, FindFirstAndNext) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 64u);
  EXPECT_EQ(b.find_next(64), 199u);
  EXPECT_EQ(b.find_next(199), 200u);
}

TEST(DynamicBitsetTest, IterationViaFindNextVisitsAllBits) {
  DynamicBitset b(130);
  for (std::size_t i = 0; i < 130; i += 7) b.set(i);
  std::size_t visited = 0;
  for (std::size_t i = b.find_first(); i < b.size(); i = b.find_next(i)) {
    EXPECT_EQ(i % 7, 0u);
    ++visited;
  }
  EXPECT_EQ(visited, b.count());
}

TEST(DynamicBitsetTest, BitwiseOps) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.set(1);
  a.set(2);
  b.set(2);
  b.set(3);
  auto u = a | b;
  EXPECT_EQ(u.count(), 3u);
  auto i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(2));
  auto x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(3));
  auto s = a;
  s.subtract(b);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.test(1));
}

TEST(DynamicBitsetTest, SizeMismatchThrows) {
  DynamicBitset a(10);
  DynamicBitset b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW((void)a.count_and(b), std::invalid_argument);
}

TEST(DynamicBitsetTest, CountAndVariants) {
  DynamicBitset a(128);
  DynamicBitset b(128);
  for (std::size_t i = 0; i < 128; i += 2) a.set(i);
  for (std::size_t i = 0; i < 128; i += 3) b.set(i);
  EXPECT_EQ(a.count_and(b), 22u);     // multiples of 6 in [0,128)
  EXPECT_EQ(a.count_andnot(b), 64u - 22u);
}

TEST(DynamicBitsetTest, SubsetAndIntersects) {
  DynamicBitset a(50);
  DynamicBitset b(50);
  a.set(3);
  b.set(3);
  b.set(7);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset c(50);
  c.set(9);
  EXPECT_FALSE(a.intersects(c));
  DynamicBitset empty(50);
  EXPECT_TRUE(empty.is_subset_of(a));
}

TEST(DynamicBitsetTest, Equality) {
  DynamicBitset a(20);
  DynamicBitset b(20);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace alvc::util
