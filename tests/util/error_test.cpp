#include "util/error.h"

#include <gtest/gtest.h>

#include <string>

namespace alvc::util {
namespace {

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  Error e{ErrorCode::kConflict, "OPS 3 already owned"};
  EXPECT_EQ(e.to_string(), "conflict: OPS 3 already owned");
}

TEST(ErrorTest, AllCodesHaveNames) {
  for (auto code : {ErrorCode::kInvalidArgument, ErrorCode::kNotFound,
                    ErrorCode::kCapacityExceeded, ErrorCode::kConflict, ErrorCode::kInfeasible,
                    ErrorCode::kRejected, ErrorCode::kInternal}) {
    EXPECT_NE(std::string(to_string(code)), "unknown");
  }
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e = 42;
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(0), 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e = Error{ErrorCode::kNotFound, "missing"};
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(e.value_or(-1), -1);
  EXPECT_THROW((void)e.value(), std::runtime_error);
}

TEST(ExpectedTest, ErrorAccessOnValueThrows) {
  Expected<int> e = 1;
  EXPECT_THROW((void)e.error(), std::logic_error);
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::string> e = std::string("hello");
  std::string s = std::move(e).value();
  EXPECT_EQ(s, "hello");
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string> e = std::string("hello");
  EXPECT_EQ(e->size(), 5u);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_THROW((void)s.error(), std::logic_error);
}

TEST(StatusTest, CarriesError) {
  Status s = Error{ErrorCode::kRejected, "admission"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.error().code, ErrorCode::kRejected);
}

}  // namespace
}  // namespace alvc::util
