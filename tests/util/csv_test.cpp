#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace alvc::util {
namespace {

TEST(CsvWriterTest, InMemoryHeaderAndRows) {
  CsvWriter w({"a", "b", "c"});
  w.row({"1", "2", "3"});
  w.row_values(4, 5.5, "six");
  EXPECT_EQ(w.str(), "a,b,c\n1,2,3\n4,5.5,six\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(CsvWriterTest, RejectsWrongWidth) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.row({"1"}), std::invalid_argument);
  EXPECT_THROW(w.row({"1", "2", "3"}), std::invalid_argument);
}

TEST(CsvWriterTest, RejectsEmptyHeader) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  CsvWriter w({"x"});
  w.row({"plain"});
  w.row({"has,comma"});
  w.row({"has\"quote"});
  w.row({"has\nnewline"});
  EXPECT_EQ(w.str(), "x\nplain\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvWriterTest, WritesToFile) {
  const std::string path = ::testing::TempDir() + "/alvc_csv_test.csv";
  {
    CsvWriter w(path, {"k", "v"});
    w.row({"size", "10"});
  }
  std::ifstream in(path);
  std::string line1;
  std::string line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "k,v");
  EXPECT_EQ(line2, "size,10");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ThrowsOnUnopenablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace alvc::util
