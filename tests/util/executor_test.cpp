// Executor / TaskGroup: completion, exception propagation, reuse, and a
// contention stress case meant to run under ThreadSanitizer
// (-DALVC_SANITIZE=thread, `ctest -L sanitize`).
#include "util/executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace alvc::util {
namespace {

TEST(ExecutorTest, RunsEverySubmittedTask) {
  Executor exec(4);
  EXPECT_EQ(exec.thread_count(), 4u);
  auto group = exec.new_task_group();
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    group->submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  group->wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, ZeroThreadsPicksHardwareConcurrency) {
  Executor exec(0);
  EXPECT_GE(exec.thread_count(), 1u);
  auto group = exec.new_task_group();
  std::atomic<bool> ran{false};
  group->submit([&] { ran = true; });
  group->wait_all();
  EXPECT_TRUE(ran.load());
}

TEST(ExecutorTest, WaitAllRethrowsFirstTaskException) {
  Executor exec(2);
  auto group = exec.new_task_group();
  group->submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group->wait_all(), std::runtime_error);
}

TEST(ExecutorTest, GroupIsReusableAfterWaitAll) {
  Executor exec(2);
  auto group = exec.new_task_group();
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      group->submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    group->wait_all();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ExecutorTest, GroupIsReusableAfterAnException) {
  Executor exec(2);
  auto group = exec.new_task_group();
  group->submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(group->wait_all(), std::logic_error);
  // The error must not leak into the next batch.
  std::atomic<bool> ran{false};
  group->submit([&] { ran = true; });
  EXPECT_NO_THROW(group->wait_all());
  EXPECT_TRUE(ran.load());
}

TEST(ExecutorTest, IndependentGroupsShareOnePool) {
  Executor exec(3);
  auto a = exec.new_task_group();
  auto b = exec.new_task_group();
  std::atomic<int> count_a{0};
  std::atomic<int> count_b{0};
  for (int i = 0; i < 50; ++i) {
    a->submit([&] { count_a.fetch_add(1, std::memory_order_relaxed); });
    b->submit([&] { count_b.fetch_add(1, std::memory_order_relaxed); });
  }
  a->wait_all();
  b->wait_all();
  EXPECT_EQ(count_a.load(), 50);
  EXPECT_EQ(count_b.load(), 50);
}

TEST(ExecutorTest, DestructorWaitsForOutstandingTasks) {
  std::atomic<int> count{0};
  {
    Executor exec(2);
    auto group = exec.new_task_group();
    for (int i = 0; i < 40; ++i) {
      group->submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_all: ~TaskGroup then ~Executor must drain without losing work.
  }
  EXPECT_EQ(count.load(), 40);
}

// Contention stress: many tasks mutate shared state through a mutex while
// others hammer atomics. Under TSan any missing synchronisation in
// Executor/TaskGroup (queue handoff, completion signalling, exception
// slot) shows up here.
TEST(ExecutorTest, ContentionStress) {
  Executor exec(4);
  auto group = exec.new_task_group();
  constexpr int kTasks = 2000;
  std::mutex mu;
  std::vector<int> values;
  values.reserve(kTasks);
  std::atomic<long long> sum{0};
  for (int round = 0; round < 3; ++round) {
    values.clear();
    sum = 0;
    for (int i = 0; i < kTasks; ++i) {
      group->submit([&, i] {
        sum.fetch_add(i, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(mu);
        values.push_back(i);
      });
    }
    group->wait_all();
    EXPECT_EQ(values.size(), static_cast<std::size_t>(kTasks));
    EXPECT_EQ(sum.load(), static_cast<long long>(kTasks) * (kTasks - 1) / 2);
    // Every task ran exactly once, whatever the interleaving.
    std::vector<int> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < kTasks; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace alvc::util
