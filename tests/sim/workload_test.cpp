#include "sim/workload.h"

#include <gtest/gtest.h>

#include "topology/builder.h"

namespace alvc::sim {
namespace {

alvc::topology::DataCenterTopology test_topo(std::size_t services = 4) {
  alvc::topology::TopologyParams params;
  params.rack_count = 6;
  params.service_count = services;
  params.seed = 3;
  return alvc::topology::build_topology(params);
}

TEST(WorkloadTest, ArrivalsAreMonotonic) {
  const auto topo = test_topo();
  WorkloadGenerator gen(topo, WorkloadParams{});
  double last = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto flow = gen.next();
    EXPECT_GT(flow.arrival_s, last);
    last = flow.arrival_s;
  }
}

TEST(WorkloadTest, ArrivalRateApproximatelyHolds) {
  const auto topo = test_topo();
  WorkloadParams params;
  params.arrival_rate_per_s = 100.0;
  WorkloadGenerator gen(topo, params);
  const auto flows = gen.generate(10000);
  const double horizon = flows.back().arrival_s;
  EXPECT_NEAR(10000.0 / horizon, 100.0, 5.0);
}

TEST(WorkloadTest, EndpointsDistinctAndInRange) {
  const auto topo = test_topo();
  WorkloadGenerator gen(topo, WorkloadParams{});
  for (const auto& flow : gen.generate(2000)) {
    EXPECT_NE(flow.src, flow.dst);
    EXPECT_LT(flow.src.index(), topo.vm_count());
    EXPECT_LT(flow.dst.index(), topo.vm_count());
  }
}

TEST(WorkloadTest, SizesWithinBounds) {
  const auto topo = test_topo();
  WorkloadParams params;
  params.min_bytes = 100;
  params.max_bytes = 1e6;
  WorkloadGenerator gen(topo, params);
  for (const auto& flow : gen.generate(2000)) {
    EXPECT_GE(flow.bytes, 100.0);
    EXPECT_LE(flow.bytes, 1e6 + 1);
  }
}

TEST(WorkloadTest, LocalityBiasesDestinations) {
  const auto topo = test_topo();
  WorkloadParams high;
  high.locality = 0.95;
  high.seed = 7;
  WorkloadParams low;
  low.locality = 0.05;
  low.seed = 7;
  const auto count_same_service = [&](WorkloadParams params) {
    WorkloadGenerator gen(topo, params);
    std::size_t same = 0;
    for (const auto& flow : gen.generate(4000)) {
      if (topo.vm(flow.src).service == topo.vm(flow.dst).service) ++same;
    }
    return same;
  };
  EXPECT_GT(count_same_service(high), count_same_service(low) + 1000);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  const auto topo = test_topo();
  WorkloadParams params;
  params.seed = 11;
  WorkloadGenerator a(topo, params);
  WorkloadGenerator b(topo, params);
  for (int i = 0; i < 100; ++i) {
    const auto fa = a.next();
    const auto fb = b.next();
    EXPECT_EQ(fa.src, fb.src);
    EXPECT_EQ(fa.dst, fb.dst);
    EXPECT_DOUBLE_EQ(fa.bytes, fb.bytes);
  }
}

TEST(WorkloadTest, RejectsDegenerateInputs) {
  alvc::topology::DataCenterTopology tiny;
  const auto o = tiny.add_ops();
  const auto t = tiny.add_tor();
  tiny.connect_tor_ops(t, o);
  const auto s = tiny.add_server(t, {});
  tiny.add_vm(s, alvc::util::ServiceId{0});
  EXPECT_THROW(WorkloadGenerator(tiny, WorkloadParams{}), std::invalid_argument);

  const auto topo = test_topo();
  WorkloadParams bad;
  bad.arrival_rate_per_s = 0;
  EXPECT_THROW(WorkloadGenerator(topo, bad), std::invalid_argument);
}

}  // namespace
}  // namespace alvc::sim
