#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/simulator.h"
#include "support/fixtures.h"
#include "topology/builder.h"

namespace alvc::sim {
namespace {

using alvc::util::FlowId;
using alvc::util::VmId;

TEST(TraceRecorderTest, RecordAndInspect) {
  TraceRecorder trace(4);
  EXPECT_TRUE(trace.empty());
  trace.record(FlowRecord{.id = FlowId{0},
                          .src = VmId{1},
                          .dst = VmId{2},
                          .bytes = 1000,
                          .hops = 3,
                          .conversions = 1,
                          .latency_us = 12.5,
                          .energy_j = 1e-6,
                          .intra_cluster = true});
  EXPECT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.records()[0].hops, 3u);
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

TEST(TraceRecorderTest, CsvShape) {
  TraceRecorder trace;
  trace.record(FlowRecord{.id = FlowId{7}, .src = VmId{1}, .dst = VmId{2}, .bytes = 42});
  const auto csv = trace.to_csv();
  // Header plus one row.
  EXPECT_NE(csv.find("flow,src_vm,dst_vm,bytes"), std::string::npos);
  EXPECT_NE(csv.find("\n7,1,2,42"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(TraceRecorderTest, WritesFile) {
  const std::string path = ::testing::TempDir() + "/alvc_trace_test.csv";
  TraceRecorder trace;
  trace.record(FlowRecord{.id = FlowId{0}, .src = VmId{0}, .dst = VmId{1}, .bytes = 1});
  trace.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("latency_us"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, SimulatorFillsTrace) {
  alvc::topology::TopologyParams params;
  params.seed = 9;
  params.rack_count = 6;
  params.ops_count = 24;
  params.tor_ops_degree = 8;
  params.service_count = 2;
  auto topo = alvc::topology::build_topology(params);
  alvc::cluster::ClusterManager manager(topo);
  const alvc::cluster::VertexCoverAlBuilder builder;
  ASSERT_TRUE(manager.create_clusters_by_service(builder).has_value());

  SimulationConfig config;
  config.flow_count = 500;
  TraceRecorder trace(config.flow_count);
  const auto metrics = simulate_traffic(manager, config, &trace);
  EXPECT_EQ(trace.size(), metrics.flows);
  // Aggregates recomputed from the trace match the metrics.
  double energy = 0;
  std::size_t intra = 0;
  for (const auto& r : trace.records()) {
    energy += r.energy_j;
    intra += r.intra_cluster ? 1 : 0;
  }
  EXPECT_NEAR(energy, metrics.total_energy_j, 1e-9);
  EXPECT_EQ(intra, metrics.intra_cluster_flows);
  // CSV of the whole run parses back to the same row count.
  const auto csv = trace.to_csv();
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')),
            trace.size() + 1);
}

TEST(TraceRecorderTest, ChainSimulatorFillsTrace) {
  alvc::test::ClusterFixture f;
  alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
  alvc::nfv::NfcSpec spec;
  spec.name = "traced";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  const alvc::orchestrator::GreedyOpticalPlacement placement;
  ASSERT_TRUE(orch.provision_chain(spec, placement).has_value());
  SimulationConfig config;
  config.flow_count = 100;
  TraceRecorder trace;
  const auto metrics = simulate_chain_traffic(orch, config, &trace);
  EXPECT_EQ(trace.size(), metrics.flows);
  for (const auto& r : trace.records()) EXPECT_TRUE(r.intra_cluster);
}

}  // namespace
}  // namespace alvc::sim
