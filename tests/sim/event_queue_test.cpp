#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace alvc::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueueTest, RunUntilIsExclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { ++fired; });
  const auto n = q.run(2.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace alvc::sim
