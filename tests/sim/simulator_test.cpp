#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "cluster/service.h"
#include "support/fixtures.h"
#include "topology/builder.h"

namespace alvc::sim {
namespace {

using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::ServiceId;

struct SimFixture {
  alvc::topology::DataCenterTopology topo;
  std::unique_ptr<alvc::cluster::ClusterManager> manager;

  explicit SimFixture(double service_skew = 0.8) {
    alvc::topology::TopologyParams params;
    params.seed = 9;
    params.rack_count = 8;
    params.ops_count = 32;
    params.tor_ops_degree = 8;
    params.service_count = 3;
    params.service_skew = service_skew;
    params.optoelectronic_fraction = 0.5;
    params.core = alvc::topology::CoreKind::kRing;
    topo = alvc::topology::build_topology(params);
    manager = std::make_unique<alvc::cluster::ClusterManager>(topo);
    const alvc::cluster::VertexCoverAlBuilder builder;
    auto ids = manager->create_clusters_by_service(builder);
    if (!ids.has_value()) throw std::runtime_error(ids.error().to_string());
  }
};

TEST(SimulateTrafficTest, ProcessesAllFlows) {
  SimFixture f;
  SimulationConfig config;
  config.flow_count = 2000;
  const auto metrics = simulate_traffic(*f.manager, config);
  EXPECT_EQ(metrics.flows, 2000u);
  EXPECT_EQ(metrics.unroutable_flows, 0u);
  EXPECT_GT(metrics.total_bytes, 0.0);
  EXPECT_GT(metrics.total_energy_j, 0.0);
  EXPECT_EQ(metrics.hops.count() , 2000u);
}

TEST(SimulateTrafficTest, LocalityRaisesIntraClusterFraction) {
  SimFixture f;
  SimulationConfig high;
  high.flow_count = 4000;
  high.workload.locality = 0.9;
  SimulationConfig low;
  low.flow_count = 4000;
  low.workload.locality = 0.1;
  const auto m_high = simulate_traffic(*f.manager, high);
  const auto m_low = simulate_traffic(*f.manager, low);
  EXPECT_GT(m_high.intra_fraction(), m_low.intra_fraction() + 0.2);
}

TEST(SimulateTrafficTest, DeterministicPerSeed) {
  SimFixture f;
  SimulationConfig config;
  config.flow_count = 500;
  const auto a = simulate_traffic(*f.manager, config);
  const auto b = simulate_traffic(*f.manager, config);
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_DOUBLE_EQ(a.hops.mean(), b.hops.mean());
}

TEST(SimulateTrafficTest, SummaryMentionsFlows) {
  SimFixture f;
  SimulationConfig config;
  config.flow_count = 10;
  const auto metrics = simulate_traffic(*f.manager, config);
  EXPECT_NE(metrics.summary().find("flows=10"), std::string::npos);
}

TEST(SimulateTrafficTest, UtilizationAccounting) {
  SimFixture f;
  SimulationConfig config;
  config.flow_count = 3000;
  const auto metrics = simulate_traffic(*f.manager, config);
  ASSERT_GT(metrics.switch_utilization.count(), 0u);
  EXPECT_GT(metrics.peak_utilization, 0.0);
  EXPECT_GE(metrics.peak_utilization, metrics.switch_utilization.mean());
  EXPECT_NE(metrics.hottest_switch, static_cast<std::size_t>(-1));
  EXPECT_LT(metrics.hottest_switch, f.topo.switch_graph().vertex_count());
  EXPECT_NE(metrics.summary().find("peak_util="), std::string::npos);
}

TEST(SimulateTrafficTest, HigherOfferedLoadRaisesUtilization) {
  SimFixture f;
  SimulationConfig light;
  light.flow_count = 2000;
  light.workload.max_bytes = 1e6;
  SimulationConfig heavy = light;
  heavy.workload.max_bytes = 1e9;  // elephants at the same arrival rate
  const auto m_light = simulate_traffic(*f.manager, light);
  const auto m_heavy = simulate_traffic(*f.manager, heavy);
  EXPECT_GT(m_heavy.peak_utilization, m_light.peak_utilization);
}

TEST(SimulateTrafficTest, QueueingModelAddsDelay) {
  SimFixture f;
  SimulationConfig base;
  base.flow_count = 3000;
  SimulationConfig queued = base;
  queued.latency.mm1_queueing = true;
  queued.latency.switch_service_us = 5.0;
  const auto m_base = simulate_traffic(*f.manager, base);
  const auto m_queued = simulate_traffic(*f.manager, queued);
  EXPECT_EQ(m_base.flows, m_queued.flows);
  EXPECT_GT(m_queued.latency_us.mean(), m_base.latency_us.mean());
  // Everything else identical (same seed, same routes).
  EXPECT_DOUBLE_EQ(m_base.hops.mean(), m_queued.hops.mean());
  EXPECT_DOUBLE_EQ(m_base.total_energy_j, m_queued.total_energy_j);
}

TEST(SimulateTrafficTest, QueueingDelayGrowsWithLoad) {
  SimFixture f;
  SimulationConfig light;
  light.flow_count = 3000;
  light.latency.mm1_queueing = true;
  light.workload.max_bytes = 1e6;
  SimulationConfig heavy = light;
  heavy.workload.max_bytes = 1e9;
  const auto m_light = simulate_traffic(*f.manager, light);
  const auto m_heavy = simulate_traffic(*f.manager, heavy);
  EXPECT_GT(m_heavy.latency_us.mean(), m_light.latency_us.mean());
}

TEST(SimulateChainTrafficTest, EmptyOrchestratorYieldsNothing) {
  ClusterFixture f;
  alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
  SimulationConfig config;
  const auto metrics = simulate_chain_traffic(orch, config);
  EXPECT_EQ(metrics.flows, 0u);
}

TEST(SimulateChainTrafficTest, OpticalPlacementCutsEnergyVersusElectronic) {
  // Two identical setups; chains placed electronic-only vs oeo-min. The
  // paper's Fig. 8 claim: optical hosting saves conversion energy.
  const auto run = [](auto&& placement) {
    ClusterFixture f;
    alvc::orchestrator::NetworkOrchestrator orch(f.manager, f.catalog);
    NfcSpec spec;
    spec.name = "chain";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*f.catalog.find_by_type(VnfType::kFirewall),
                      *f.catalog.find_by_type(VnfType::kNat),
                      *f.catalog.find_by_type(VnfType::kSecurityGateway)};
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    SimulationConfig config;
    config.flow_count = 1000;
    return simulate_chain_traffic(orch, config);
  };
  const auto electronic = run(alvc::orchestrator::ElectronicOnlyPlacement{});
  const auto optical = run(alvc::orchestrator::OeoMinimizingPlacement{});
  EXPECT_EQ(electronic.flows, 1000u);
  EXPECT_EQ(optical.flows, 1000u);
  EXPECT_GT(electronic.conversions.mean(), optical.conversions.mean());
  EXPECT_GT(electronic.total_energy_j, optical.total_energy_j);
  EXPECT_GT(electronic.latency_us.mean(), optical.latency_us.mean());
}

}  // namespace
}  // namespace alvc::sim
