// TrafficMetrics reporting: the hottest-switch field must reach summary(),
// and the SIZE_MAX "no traffic" sentinel must never leak into CSV/JSON.
#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace alvc::sim {
namespace {

TrafficMetrics loaded_metrics() {
  TrafficMetrics m;
  m.flows = 10;
  m.intra_cluster_flows = 5;
  m.unroutable_flows = 1;
  m.hops.add(2.0);
  m.hops.add(4.0);
  m.latency_us.add(100.0);
  m.conversions.add(1.0);
  m.total_bytes = 1e6;
  m.total_energy_j = 2.5;
  m.switch_utilization.add(0.25);
  m.switch_utilization.add(0.75);
  m.peak_utilization = 0.75;
  m.hottest_switch = 3;
  return m;
}

TEST(TrafficMetricsTest, SummaryNamesTheHottestSwitch) {
  const TrafficMetrics m = loaded_metrics();
  const std::string s = m.summary();
  EXPECT_NE(s.find("peak_util=0.75"), std::string::npos) << s;
  EXPECT_NE(s.find("hottest_switch=3"), std::string::npos) << s;
}

TEST(TrafficMetricsTest, SummaryOmitsSentinelHottestSwitch) {
  TrafficMetrics m = loaded_metrics();
  m.hottest_switch = static_cast<std::size_t>(-1);
  EXPECT_EQ(m.summary().find("hottest_switch"), std::string::npos);
  // And a run with no switch samples prints neither utilization nor switch.
  const TrafficMetrics empty;
  EXPECT_EQ(empty.summary().find("mean_util"), std::string::npos);
  EXPECT_EQ(empty.summary().find("hottest_switch"), std::string::npos);
}

TEST(TrafficMetricsTest, CsvHeaderMatchesRowArity) {
  const TrafficMetrics m = loaded_metrics();
  const std::string header = TrafficMetrics::csv_header();
  const std::string row = m.csv_row();
  const auto commas = [](const std::string& s) {
    std::size_t n = 0;
    for (char c : s) n += c == ',' ? 1 : 0;
    return n;
  };
  EXPECT_EQ(commas(header), commas(row));
  EXPECT_NE(header.find("hottest_switch"), std::string::npos);
  EXPECT_EQ(row.substr(row.rfind(',') + 1), "3");
}

TEST(TrafficMetricsTest, CsvLeavesSentinelHottestSwitchEmpty) {
  TrafficMetrics m = loaded_metrics();
  m.hottest_switch = static_cast<std::size_t>(-1);
  const std::string row = m.csv_row();
  EXPECT_EQ(row.back(), ',');  // trailing empty field, not SIZE_MAX
  EXPECT_EQ(row.find("18446744073709551615"), std::string::npos);
}

TEST(TrafficMetricsTest, JsonUsesNullForSentinelHottestSwitch) {
  TrafficMetrics m = loaded_metrics();
  EXPECT_NE(m.to_json().find("\"hottest_switch\":3"), std::string::npos);
  m.hottest_switch = static_cast<std::size_t>(-1);
  const std::string json = m.to_json();
  EXPECT_NE(json.find("\"hottest_switch\":null"), std::string::npos);
  EXPECT_EQ(json.find("18446744073709551615"), std::string::npos);
}

}  // namespace
}  // namespace alvc::sim
