#include "orchestrator/admission.h"

#include <gtest/gtest.h>

#include "support/fixtures.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostingPool;
using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::ErrorCode;
using alvc::util::ServiceId;

struct AdmissionFixture : ClusterFixture {
  HostingPool pool{topo};
  AdmissionController admission{topo, catalog};

  NfcSpec chain(std::initializer_list<VnfType> types, double bandwidth = 1.0) {
    NfcSpec spec;
    spec.name = "chain";
    spec.bandwidth_gbps = bandwidth;
    spec.service = ServiceId{0};
    for (auto t : types) spec.functions.push_back(*catalog.find_by_type(t));
    return spec;
  }
};

TEST(AdmissionTest, AdmitsReasonableChain) {
  AdmissionFixture f;
  const auto spec = f.chain({VnfType::kFirewall, VnfType::kNat});
  EXPECT_TRUE(f.admission.admit(spec, f.cluster(), f.pool).is_ok());
  EXPECT_EQ(f.admission.stats().admitted, 1u);
}

TEST(AdmissionTest, RejectsEmptyChain) {
  AdmissionFixture f;
  const auto spec = f.chain({});
  const auto status = f.admission.admit(spec, f.cluster(), f.pool);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kRejected);
  EXPECT_EQ(f.admission.stats().rejected_malformed, 1u);
}

TEST(AdmissionTest, RejectsNonPositiveBandwidth) {
  AdmissionFixture f;
  const auto spec = f.chain({VnfType::kFirewall}, 0.0);
  EXPECT_FALSE(f.admission.admit(spec, f.cluster(), f.pool).is_ok());
}

TEST(AdmissionTest, RejectsBandwidthBeyondSlicePorts) {
  AdmissionFixture f;
  // ToR ports default to 10 Gbps; ask for 50.
  const auto spec = f.chain({VnfType::kFirewall}, 50.0);
  const auto status = f.admission.admit(spec, f.cluster(), f.pool);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(f.admission.stats().rejected_bandwidth, 1u);
}

TEST(AdmissionTest, RejectsAggregateOverload) {
  AdmissionFixture f;
  NfcSpec spec = f.chain({});
  // 200 caches: 200 * 32 GB memory >> slice total memory.
  for (int i = 0; i < 200; ++i) {
    spec.functions.push_back(*f.catalog.find_by_type(VnfType::kCache));
  }
  const auto status = f.admission.admit(spec, f.cluster(), f.pool);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(f.admission.stats().rejected_resources, 1u);
}

TEST(AdmissionTest, AccountsForExistingReservations) {
  AdmissionFixture f;
  // Fill every server almost completely.
  for (const auto& server : f.topo.servers()) {
    const auto free = f.pool.free_capacity(alvc::nfv::HostRef{server.id});
    ASSERT_TRUE(f.pool
                    .reserve(alvc::nfv::HostRef{server.id},
                             alvc::topology::Resources{.cpu_cores = free.cpu_cores,
                                                       .memory_gb = free.memory_gb,
                                                       .storage_gb = free.storage_gb})
                    .is_ok());
  }
  NfcSpec spec = f.chain({});
  for (int i = 0; i < 4; ++i) {
    spec.functions.push_back(*f.catalog.find_by_type(VnfType::kDeepPacketInspection));
  }
  EXPECT_FALSE(f.admission.admit(spec, f.cluster(), f.pool).is_ok());
}

TEST(AdmissionTest, SliceCapacityIsMaxFlowNotMinPort) {
  // Slice shaped like T0 - O0 - T1 with 10 Gbps ToR ports and a 100 Gbps
  // OPS: capacity between T0 and T1 is 10 (ToR-limited), even though every
  // individual port pair check would pass 10.
  alvc::topology::DataCenterTopology topo;
  const auto o0 = topo.add_ops();
  const auto t0 = topo.add_tor(10.0);
  const auto t1 = topo.add_tor(10.0);
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o0);
  alvc::cluster::VirtualCluster vc;
  vc.layer.tors = {t0, t1};
  vc.layer.opss = {o0};
  const auto catalog = alvc::nfv::VnfCatalog::make_default();
  AdmissionController admission(topo, catalog);
  EXPECT_DOUBLE_EQ(admission.slice_capacity_gbps(vc, t0, t1), 10.0);
}

TEST(AdmissionTest, ParallelOpsPathsAddCapacity) {
  // T0 and T1 joined through TWO OPSs: max flow 20 even though each single
  // path carries only 10.
  alvc::topology::DataCenterTopology topo;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  const auto t0 = topo.add_tor(20.0);
  const auto t1 = topo.add_tor(20.0);
  for (auto o : {o0, o1}) {
    topo.connect_tor_ops(t0, o);
    topo.connect_tor_ops(t1, o);
  }
  alvc::cluster::VirtualCluster vc;
  vc.layer.tors = {t0, t1};
  vc.layer.opss = {o0, o1};
  // Give the OPSs 10 Gbps ports so each path is OPS-limited.
  // (add_ops defaults to 100; rebuild with explicit ports.)
  alvc::topology::DataCenterTopology topo2;
  const auto p0 = topo2.add_ops(false, {}, 10.0);
  const auto p1 = topo2.add_ops(false, {}, 10.0);
  const auto q0 = topo2.add_tor(20.0);
  const auto q1 = topo2.add_tor(20.0);
  for (auto o : {p0, p1}) {
    topo2.connect_tor_ops(q0, o);
    topo2.connect_tor_ops(q1, o);
  }
  alvc::cluster::VirtualCluster vc2;
  vc2.layer.tors = {q0, q1};
  vc2.layer.opss = {p0, p1};
  const auto catalog = alvc::nfv::VnfCatalog::make_default();
  AdmissionController admission(topo2, catalog);
  EXPECT_DOUBLE_EQ(admission.slice_capacity_gbps(vc2, q0, q1), 20.0);
}

TEST(AdmissionTest, SameTorCapacityIsUnbounded) {
  AdmissionFixture f;
  const auto t = f.cluster().layer.tors.front();
  EXPECT_TRUE(std::isinf(f.admission.slice_capacity_gbps(f.cluster(), t, t)));
}

TEST(AdmissionTest, DisconnectedSliceHasZeroCapacity) {
  alvc::topology::DataCenterTopology topo;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  alvc::cluster::VirtualCluster vc;
  vc.layer.tors = {t0, t1};
  vc.layer.opss = {o0};  // o1 excluded: t1 unreachable inside the slice
  const auto catalog = alvc::nfv::VnfCatalog::make_default();
  AdmissionController admission(topo, catalog);
  EXPECT_DOUBLE_EQ(admission.slice_capacity_gbps(vc, t0, t1), 0.0);
  // And admit() rejects any positive bandwidth via the flow check.
  alvc::nfv::NfcSpec spec;
  spec.name = "x";
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*catalog.find_by_type(alvc::nfv::VnfType::kNat)};
  alvc::nfv::HostingPool pool(topo);
  const auto status = admission.admit(spec, vc, pool);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(admission.stats().rejected_capacity_flow, 1u);
}

}  // namespace
}  // namespace alvc::orchestrator
