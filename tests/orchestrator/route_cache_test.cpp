// Epoch-versioned route cache: hit/revalidate/miss tiers, the variant ring
// under fail/recover oscillation, bandwidth-tier key partitioning, slice
// teardown invalidation, and coherence under churn. Every served path is
// checked against the uncached router — bit-identity is the contract.
#include <gtest/gtest.h>

#include <vector>

#include "faults/state_auditor.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/route_cache.h"
#include "orchestrator/routing.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostRef;
using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::ServiceId;
using alvc::util::TorId;

/// ClusterFixture plus a router/cache pair and a host list whose route has
/// real (non-trivial) legs: an in-slice optoelectronic OPS host between the
/// two ToR anchors.
struct CacheFixture : ClusterFixture {
  ChainRouter router{topo};
  RouteCache cache{topo};
  std::vector<HostRef> hosts;
  TorId ingress;
  TorId egress;

  CacheFixture() {
    const auto& layer = cluster().layer;
    ingress = layer.tors.front();
    egress = layer.tors.back();
    for (OpsId o : layer.opss) {
      if (topo.ops(o).optoelectronic) {
        hosts.push_back(HostRef{o});
        break;
      }
    }
    if (hosts.empty()) throw std::runtime_error("fixture AL has no optoelectronic OPS");
  }

  [[nodiscard]] Expected<ChainRoute> cached() {
    return cache.route(router, cluster(), ingress, egress, hosts, BandwidthTier::kFull);
  }
  [[nodiscard]] Expected<ChainRoute> uncached() const {
    return router.route(cluster(), ingress, egress, hosts);
  }
};

void expect_same_route(const Expected<ChainRoute>& a, const Expected<ChainRoute>& b) {
  ASSERT_EQ(a.has_value(), b.has_value());
  if (!a.has_value()) return;
  EXPECT_EQ(a->vertices, b->vertices);
  EXPECT_EQ(a->legs, b->legs);
  EXPECT_EQ(a->optical_hops, b->optical_hops);
  EXPECT_EQ(a->electronic_hops, b->electronic_hops);
}

TEST(BandwidthTierTest, LadderRungsMapToTiers) {
  EXPECT_EQ(bandwidth_tier(1.0), BandwidthTier::kFull);
  EXPECT_EQ(bandwidth_tier(0.5), BandwidthTier::kHalf);
  EXPECT_EQ(bandwidth_tier(0.25), BandwidthTier::kQuarter);
  EXPECT_EQ(bandwidth_tier(0.125), BandwidthTier::kEighth);
  EXPECT_EQ(bandwidth_tier(0.0), BandwidthTier::kEighth);
  EXPECT_EQ(bandwidth_tier(2.0), BandwidthTier::kFull);
}

TEST(RouteCacheTest, MissThenHitServesIdenticalRoute) {
  CacheFixture f;
  const auto first = f.cached();
  ASSERT_TRUE(first.has_value());
  expect_same_route(first, f.uncached());
  const auto misses = f.cache.stats().misses;
  EXPECT_GT(misses, 0u);
  EXPECT_EQ(f.cache.stats().hits, 0u);
  EXPECT_GT(f.cache.entry_count(), 0u);

  const auto second = f.cached();
  expect_same_route(first, second);
  EXPECT_EQ(f.cache.stats().misses, misses) << "epoch unchanged: no leg may recompute";
  EXPECT_GT(f.cache.stats().hits, 0u);
}

TEST(RouteCacheTest, UnrelatedEpochBumpRevalidatesInsteadOfRecomputing) {
  CacheFixture f;
  const auto first = f.cached();
  ASSERT_TRUE(first.has_value());
  const auto misses = f.cache.stats().misses;

  // An element outside the slice moves the epoch but not the slice state.
  const auto epoch_before = f.topo.mutation_epoch();
  ALVC_IGNORE_STATUS(f.topo.add_ops(), "only the epoch side effect matters here");
  ASSERT_GT(f.topo.mutation_epoch(), epoch_before);

  const auto again = f.cached();
  expect_same_route(first, again);
  EXPECT_EQ(f.cache.stats().misses, misses);
  EXPECT_GT(f.cache.stats().revalidations, 0u);
  EXPECT_EQ(f.cache.stats().hits, 0u);

  // The revalidation restamped the epoch; the next call is a pure hit.
  const auto third = f.cached();
  expect_same_route(first, third);
  EXPECT_GT(f.cache.stats().hits, 0u);
}

TEST(RouteCacheTest, SliceElementFailureForcesMissAndMatchesUncached) {
  CacheFixture f;
  ASSERT_TRUE(f.cached().has_value());
  const auto misses = f.cache.stats().misses;

  // Fail an in-slice OPS the cached route rides (not the host itself, so
  // the same stop sequence stays routable around it).
  OpsId victim = OpsId::invalid();
  const auto host_ops = std::get<OpsId>(f.hosts.front());
  for (OpsId o : f.cluster().layer.opss) {
    if (o != host_ops) {
      victim = o;
      break;
    }
  }
  if (!victim.valid()) GTEST_SKIP() << "single-OPS AL: nothing to fail around";
  ASSERT_TRUE(f.topo.set_ops_failed(victim, true).is_ok());

  const auto rerouted = f.cached();
  expect_same_route(rerouted, f.uncached());
  EXPECT_GT(f.cache.stats().misses, misses) << "slice state changed: hits would be stale";
  if (rerouted.has_value()) {
    const std::size_t dead = f.topo.ops_vertex(victim);
    for (std::size_t v : rerouted->vertices) EXPECT_NE(v, dead);
  }
}

TEST(RouteCacheTest, FailRecoverOscillationHitsFromSecondCycle) {
  CacheFixture f;
  // The minimal vertex-cover AL has no spare OPS, so widen the slice to the
  // whole ring by hand: then one non-host OPS can fail while both ToRs stay
  // reachable, and both states are routable. Infeasible legs are
  // deliberately never cached, so an unroutable broken state would re-miss
  // on every flip instead of exercising the variant ring.
  alvc::cluster::VirtualCluster wide = f.cluster();
  wide.layer.opss = {OpsId{0}, OpsId{1}, OpsId{2}, OpsId{3}};
  const auto route = [&] {
    return f.cache.route(f.router, wide, f.ingress, f.egress, f.hosts, BandwidthTier::kFull);
  };

  const auto healthy = route();  // variant for the healthy state
  ASSERT_TRUE(healthy.has_value());
  const OpsId victim{1};  // hosts sit on optoelectronic OPSs (0 or 2)
  ASSERT_TRUE(f.topo.set_ops_failed(victim, true).is_ok());
  const auto broken = route();  // variant for the outage state
  ASSERT_TRUE(broken.has_value());
  const auto misses_after_both = f.cache.stats().misses;

  // Every later flip reuses one of the two variants: revalidations rise,
  // misses do not, and the paths are the exact earlier ones.
  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_TRUE(f.topo.set_ops_failed(victim, false).is_ok());
    expect_same_route(route(), healthy);
    ASSERT_TRUE(f.topo.set_ops_failed(victim, true).is_ok());
    expect_same_route(route(), broken);
  }
  EXPECT_EQ(f.cache.stats().misses, misses_after_both);
  EXPECT_GT(f.cache.stats().revalidations, 0u);
}

TEST(RouteCacheTest, FailAndRecoverWithinOneSweepIsNotAMiss) {
  CacheFixture f;
  const auto first = f.cached();
  ASSERT_TRUE(first.has_value());
  const auto misses = f.cache.stats().misses;

  // The element fails AND recovers before the next route call: the epoch
  // moved twice but the slice state is back to the cached one, so the
  // entry revalidates instead of recomputing.
  const auto host_ops = std::get<OpsId>(f.hosts.front());
  ASSERT_TRUE(f.topo.set_ops_failed(host_ops, true).is_ok());
  ASSERT_TRUE(f.topo.set_ops_failed(host_ops, false).is_ok());

  const auto after = f.cached();
  expect_same_route(first, after);
  EXPECT_EQ(f.cache.stats().misses, misses);
  EXPECT_GT(f.cache.stats().revalidations, 0u);
}

TEST(RouteCacheTest, BandwidthTiersPartitionTheKeySpace) {
  CacheFixture f;
  ASSERT_TRUE(
      f.cache.route(f.router, f.cluster(), f.ingress, f.egress, f.hosts, BandwidthTier::kFull)
          .has_value());
  const auto misses_full = f.cache.stats().misses;
  ASSERT_TRUE(
      f.cache.route(f.router, f.cluster(), f.ingress, f.egress, f.hosts, BandwidthTier::kHalf)
          .has_value());
  EXPECT_GT(f.cache.stats().misses, misses_full) << "tiers must not alias";
  EXPECT_EQ(f.cache.stats().hits, 0u);

  const auto misses_half = f.cache.stats().misses;
  ASSERT_TRUE(
      f.cache.route(f.router, f.cluster(), f.ingress, f.egress, f.hosts, BandwidthTier::kHalf)
          .has_value());
  EXPECT_EQ(f.cache.stats().misses, misses_half);
  EXPECT_GT(f.cache.stats().hits, 0u);
}

TEST(RouteCacheTest, PriorityClassesPartitionTheKeySpace) {
  CacheFixture f;
  // Same endpoints, same hosts, same tier — only the QoS class differs. A
  // HIPRI and a LOPRI leg must never share a cached variant, or a class
  // flip on re-provision would serve the other class's path unchecked.
  ASSERT_TRUE(f.cache
                  .route(f.router, f.cluster(), f.ingress, f.egress, f.hosts,
                         BandwidthTier::kFull, alvc::nfv::PriorityClass::kHipri)
                  .has_value());
  const auto misses_hipri = f.cache.stats().misses;
  ASSERT_TRUE(f.cache
                  .route(f.router, f.cluster(), f.ingress, f.egress, f.hosts,
                         BandwidthTier::kFull, alvc::nfv::PriorityClass::kLopri)
                  .has_value());
  EXPECT_GT(f.cache.stats().misses, misses_hipri) << "classes must not alias";
  EXPECT_EQ(f.cache.stats().hits, 0u);

  // Each class hits its own entry afterwards — the partition is stable.
  const auto misses_both = f.cache.stats().misses;
  ASSERT_TRUE(f.cache
                  .route(f.router, f.cluster(), f.ingress, f.egress, f.hosts,
                         BandwidthTier::kFull, alvc::nfv::PriorityClass::kLopri)
                  .has_value());
  ASSERT_TRUE(f.cache
                  .route(f.router, f.cluster(), f.ingress, f.egress, f.hosts,
                         BandwidthTier::kFull, alvc::nfv::PriorityClass::kHipri)
                  .has_value());
  EXPECT_EQ(f.cache.stats().misses, misses_both);
  EXPECT_GE(f.cache.stats().hits, 2u);
}

TEST(RouteCacheTest, StopOutsideTheSliceBypassesTheCache) {
  CacheFixture f;
  // A third rack outside the cluster's AL: its ToR is a stop the slice
  // fingerprint cannot cover.
  const TorId outside = f.topo.add_tor();
  f.topo.connect_tor_ops(outside, OpsId{1});
  const ServerId server =
      f.topo.add_server(outside, {.cpu_cores = 8, .memory_gb = 16, .storage_gb = 64});
  ASSERT_FALSE(f.cluster().layer.contains_tor(outside));

  std::vector<HostRef> hosts{HostRef{server}};
  const auto cached =
      f.cache.route(f.router, f.cluster(), f.ingress, f.egress, hosts, BandwidthTier::kFull);
  const auto plain = f.router.route(f.cluster(), f.ingress, f.egress, hosts);
  expect_same_route(cached, plain);
  EXPECT_GT(f.cache.stats().bypasses, 0u);
  EXPECT_EQ(f.cache.stats().lookups(), 0u) << "bypassed requests never touch the memo";
  EXPECT_EQ(f.cache.entry_count(), 0u);
}

TEST(RouteCacheTest, InvalidateSliceDropsOnlyThatSlice) {
  CacheFixture f;
  ASSERT_TRUE(f.cached().has_value());
  ASSERT_GT(f.cache.entry_count(), 0u);

  f.cache.invalidate_slice(alvc::util::ClusterId{999});  // someone else's
  EXPECT_GT(f.cache.entry_count(), 0u);
  EXPECT_EQ(f.cache.stats().invalidations, 0u);

  f.cache.invalidate_slice(f.cluster_id);
  EXPECT_EQ(f.cache.entry_count(), 0u);
  EXPECT_GT(f.cache.stats().invalidations, 0u);

  // Dropped entries rebuild from scratch.
  const auto misses = f.cache.stats().misses;
  ASSERT_TRUE(f.cached().has_value());
  EXPECT_GT(f.cache.stats().misses, misses);
}

TEST(RouteCacheTest, ClearDropsEverythingAndCountsIt) {
  CacheFixture f;
  ASSERT_TRUE(f.cached().has_value());
  const auto variants = f.cache.variant_count();
  ASSERT_GT(variants, 0u);
  f.cache.clear();
  EXPECT_EQ(f.cache.entry_count(), 0u);
  EXPECT_EQ(f.cache.variant_count(), 0u);
  EXPECT_EQ(f.cache.stats().invalidations, variants);
}

TEST(RouteCacheTest, CoherenceHoldsThroughChurn) {
  CacheFixture f;
  const auto host_ops = std::get<OpsId>(f.hosts.front());
  ASSERT_TRUE(f.cached().has_value());
  const std::vector<const alvc::cluster::VirtualCluster*> clusters{&f.cluster()};
  EXPECT_TRUE(f.cache.check_coherence(clusters).empty());

  for (OpsId o : std::vector<OpsId>(f.cluster().layer.opss)) {
    if (o == host_ops) continue;
    ASSERT_TRUE(f.topo.set_ops_failed(o, true).is_ok());
    ALVC_IGNORE_STATUS(f.cached(), "churn step; feasibility is not the subject here");
    EXPECT_TRUE(f.cache.check_coherence(clusters).empty());
    ASSERT_TRUE(f.topo.set_ops_failed(o, false).is_ok());
    ALVC_IGNORE_STATUS(f.cached(), "churn step; feasibility is not the subject here");
    EXPECT_TRUE(f.cache.check_coherence(clusters).empty());
  }
}

// ---- orchestrator wiring ----

struct OrchFixture : ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};

  alvc::util::NfcId provision(double gbps = 1.0) {
    NfcSpec spec;
    spec.name = "chain";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = gbps;
    spec.functions = {*catalog.find_by_type(VnfType::kFirewall),
                      *catalog.find_by_type(VnfType::kNat)};
    const GreedyOpticalPlacement placement;
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    return *id;
  }
};

TEST(OrchestratorRouteCacheTest, ProvisionPopulatesAndTeardownInvalidates) {
  OrchFixture f;
  const auto id = f.provision();
  EXPECT_GT(f.orch.route_cache().stats().lookups(), 0u);
  EXPECT_GT(f.orch.route_cache().entry_count(), 0u);
  EXPECT_TRUE(faults::StateAuditor::audit(f.orch).empty());

  ASSERT_TRUE(f.orch.teardown_chain(id).is_ok());
  EXPECT_EQ(f.orch.route_cache().entry_count(), 0u)
      << "a reused cluster id must never see another tenant's paths";
  EXPECT_GT(f.orch.route_cache().stats().invalidations, 0u);
}

TEST(OrchestratorRouteCacheTest, RecoverySweepsStayCoherentAndCorrect) {
  OrchFixture f;
  const auto id = f.provision();
  const auto* chain = f.orch.chain(id);
  ASSERT_NE(chain, nullptr);
  const auto* host_ops = std::get_if<OpsId>(&chain->placement.hosts[0]);
  ASSERT_NE(host_ops, nullptr);
  const OpsId victim = *host_ops;

  ASSERT_TRUE(f.orch.handle_ops_failure(victim).has_value());
  EXPECT_TRUE(faults::StateAuditor::audit(f.orch).empty());

  // Right after the sweep the refitted route must equal what the plain
  // router computes against the same topology state — bit-identity.
  const auto* after = f.orch.chain(id);
  ASSERT_NE(after, nullptr);
  if (!after->degraded) {
    ChainRouter router{f.topo};
    const auto& vc = f.cluster();
    auto fresh =
        router.route(vc, vc.layer.tors.front(), vc.layer.tors.back(), after->placement.hosts);
    ASSERT_TRUE(fresh.has_value());
    EXPECT_EQ(after->route.vertices, fresh->vertices);
    EXPECT_EQ(after->route.legs, fresh->legs);
  }

  ASSERT_TRUE(f.orch.handle_ops_recovery(victim).has_value());
  EXPECT_TRUE(faults::StateAuditor::audit(f.orch).empty());
  EXPECT_GT(f.orch.route_cache().stats().misses, 0u);
}

TEST(OrchestratorRouteCacheTest, DegradedLadderTracksSliceBandwidthAndEpoch) {
  OrchFixture f;
  const auto id = f.provision();
  const auto slice_before = f.orch.slices().slice_of_chain(id);
  ASSERT_TRUE(slice_before.has_value());
  const auto epoch_before = slice_before->epoch;

  // Cut every uplink of the egress ToR: no refit can reach it, so the chain
  // parks on the bottom rung of the degraded ladder (reserved 0), and the
  // AL itself goes degraded (the ToR is uncoverable).
  const TorId egress = f.cluster().layer.tors.back();
  const std::vector<OpsId> uplinks = f.topo.tor(egress).uplinks;
  for (OpsId o : uplinks) {
    ASSERT_TRUE(f.orch.handle_link_failure(egress, o).has_value());
  }
  const auto* parked = f.orch.chain(id);
  ASSERT_NE(parked, nullptr);
  ASSERT_TRUE(parked->degraded);
  EXPECT_LT(parked->reserved_gbps, parked->record.spec.bandwidth_gbps);
  EXPECT_TRUE(faults::StateAuditor::audit(f.orch).empty());

  // Restore the links, then tick the recovery clock (the retry queue's
  // deterministic backoff is counted in recovery events) until the retry
  // queue climbs the chain back to full bandwidth.
  for (OpsId o : uplinks) {
    ASSERT_TRUE(f.orch.handle_link_recovery(egress, o).has_value());
  }
  const ServerId clock{0};
  for (int tick = 0; tick < 40 && f.orch.degraded_chain_count() > 0; ++tick) {
    ASSERT_TRUE(f.orch.handle_server_failure(clock).has_value());
    ASSERT_TRUE(f.orch.handle_server_recovery(clock).has_value());
  }
  const auto* restored = f.orch.chain(id);
  ASSERT_NE(restored, nullptr);
  EXPECT_FALSE(restored->degraded);
  EXPECT_DOUBLE_EQ(restored->reserved_gbps, restored->record.spec.bandwidth_gbps);
  const auto slice_after = f.orch.slices().slice_of_chain(id);
  ASSERT_TRUE(slice_after.has_value());
  EXPECT_DOUBLE_EQ(slice_after->bandwidth_gbps, restored->reserved_gbps);
  EXPECT_GE(slice_after->epoch, epoch_before);
  EXPECT_TRUE(faults::StateAuditor::audit(f.orch).empty());
}

TEST(OrchestratorRouteCacheTest, DisablingTheCacheBypassesItEntirely) {
  OrchFixture f;
  f.orch.set_route_cache_enabled(false);
  const auto id = f.provision();
  EXPECT_EQ(f.orch.route_cache().stats().lookups(), 0u);
  EXPECT_EQ(f.orch.route_cache().entry_count(), 0u);
  ASSERT_TRUE(f.orch.teardown_chain(id).is_ok());
}

}  // namespace
}  // namespace alvc::orchestrator
