// Operator-driven VNF migration (drain a router, rebalance a slice).
#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"
#include "support/fixtures.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostRef;
using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::ServiceId;

struct MigrationFixture : ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};
  alvc::util::NfcId chain_id;

  MigrationFixture() {
    NfcSpec spec;
    spec.name = "migratable";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*catalog.find_by_type(VnfType::kFirewall),
                      *catalog.find_by_type(VnfType::kNat)};
    const GreedyOpticalPlacement placement;
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    chain_id = *id;
  }

  /// An optical slice host other than where function 0 currently sits.
  [[nodiscard]] std::optional<OpsId> other_optical_host() const {
    const auto* chain = orch.chain(chain_id);
    const auto* current = std::get_if<OpsId>(&chain->placement.hosts[0]);
    const auto* vc = manager.find(chain->cluster);
    for (OpsId o : vc->layer.opss) {
      if (topo.ops(o).optoelectronic && (current == nullptr || o != *current)) return o;
    }
    return std::nullopt;
  }
};

TEST(MigrationTest, MoveToAnotherOpticalHost) {
  MigrationFixture f;
  const auto target = f.other_optical_host();
  ASSERT_TRUE(target.has_value()) << "fixture must have two OE routers in the AL";
  const auto status = f.orch.migrate_function(f.chain_id, 0, HostRef{*target});
  ASSERT_TRUE(status.is_ok()) << status.error().to_string();
  const auto* chain = f.orch.chain(f.chain_id);
  ASSERT_TRUE(std::holds_alternative<OpsId>(chain->placement.hosts[0]));
  EXPECT_EQ(std::get<OpsId>(chain->placement.hosts[0]), *target);
  EXPECT_GT(chain->flow_rules, 0u);
  EXPECT_EQ(f.orch.stats().vnfs_relocated, 1u);
  EXPECT_TRUE(f.orch.check_isolation().empty());
  EXPECT_EQ(f.orch.cloud().lifecycle().active_count(), 2u) << "old instance terminated";
}

TEST(MigrationTest, MoveToServerChangesDomainAndConversions) {
  MigrationFixture f;
  const auto before = f.orch.chain(f.chain_id)->placement.conversions.mid_chain;
  // Server 0 is behind a cluster ToR.
  const auto status = f.orch.migrate_function(f.chain_id, 0, HostRef{ServerId{0}});
  ASSERT_TRUE(status.is_ok()) << status.error().to_string();
  const auto* chain = f.orch.chain(f.chain_id);
  EXPECT_TRUE(std::holds_alternative<ServerId>(chain->placement.hosts[0]));
  EXPECT_GT(chain->placement.conversions.mid_chain, before)
      << "moving a VNF electronic must add an O/E/O conversion";
}

TEST(MigrationTest, MigrateToSameHostIsNoop) {
  MigrationFixture f;
  const auto host = f.orch.chain(f.chain_id)->placement.hosts[0];
  const auto rules = f.orch.chain(f.chain_id)->flow_rules;
  ASSERT_TRUE(f.orch.migrate_function(f.chain_id, 0, host).is_ok());
  EXPECT_EQ(f.orch.chain(f.chain_id)->flow_rules, rules);
  EXPECT_EQ(f.orch.stats().vnfs_relocated, 0u);
}

TEST(MigrationTest, RejectsTargetOutsideSlice) {
  MigrationFixture f;
  // A plain OPS (never a host) and an OPS outside the AL both fail.
  const auto* vc = f.manager.find(f.orch.chain(f.chain_id)->cluster);
  OpsId outside = OpsId::invalid();
  for (std::size_t i = 0; i < f.topo.ops_count(); ++i) {
    const OpsId o{static_cast<OpsId::value_type>(i)};
    if (!vc->layer.contains_ops(o)) {
      outside = o;
      break;
    }
  }
  if (outside.valid()) {
    const auto status = f.orch.migrate_function(f.chain_id, 0, HostRef{outside});
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.error().code, ErrorCode::kInvalidArgument);
  }
}

TEST(MigrationTest, RejectsElectronicOnlyVnfOnOpticalTarget) {
  ClusterFixture base;
  NetworkOrchestrator orch(base.manager, base.catalog);
  NfcSpec spec;
  spec.name = "pinned";
  spec.service = ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*base.catalog.find_by_type(VnfType::kWanOptimizer)};
  const GreedyOpticalPlacement placement;
  const auto id = orch.provision_chain(spec, placement);
  ASSERT_TRUE(id.has_value());
  const auto* vc = base.manager.find(orch.chain(*id)->cluster);
  OpsId oe = OpsId::invalid();
  for (OpsId o : vc->layer.opss) {
    if (base.topo.ops(o).optoelectronic) {
      oe = o;
      break;
    }
  }
  ASSERT_TRUE(oe.valid());
  const auto status = orch.migrate_function(*id, 0, HostRef{oe});
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kInvalidArgument);
}

TEST(MigrationTest, RejectsBadIndexAndUnknownChain) {
  MigrationFixture f;
  EXPECT_FALSE(f.orch.migrate_function(f.chain_id, 9, HostRef{ServerId{0}}).is_ok());
  EXPECT_FALSE(
      f.orch.migrate_function(alvc::util::NfcId{77}, 0, HostRef{ServerId{0}}).is_ok());
}

TEST(MigrationTest, RejectsOverloadedTarget) {
  MigrationFixture f;
  const auto target = f.other_optical_host();
  ASSERT_TRUE(target.has_value());
  // Fill the target so the firewall no longer fits.
  const auto free = f.orch.cloud().pool().free_capacity(HostRef{*target});
  ASSERT_TRUE(f.orch.cloud().pool().reserve(HostRef{*target}, free).is_ok());
  const auto status = f.orch.migrate_function(f.chain_id, 0, HostRef{*target});
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCapacityExceeded);
}

}  // namespace
}  // namespace alvc::orchestrator
