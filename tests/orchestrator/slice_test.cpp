#include "orchestrator/slice.h"

#include <gtest/gtest.h>

namespace alvc::orchestrator {
namespace {

using alvc::util::ErrorCode;

TEST(SliceManagerTest, AllocateAndLookup) {
  SliceManager mgr;
  const auto id = mgr.allocate(ClusterId{1}, NfcId{10}, 5.0);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(mgr.slice_count(), 1u);
  const auto by_chain = mgr.slice_of_chain(NfcId{10});
  ASSERT_TRUE(by_chain.has_value());
  EXPECT_EQ(by_chain->cluster, ClusterId{1});
  EXPECT_DOUBLE_EQ(by_chain->bandwidth_gbps, 5.0);
  const auto by_cluster = mgr.slice_of_cluster(ClusterId{1});
  ASSERT_TRUE(by_cluster.has_value());
  EXPECT_EQ(by_cluster->nfc, NfcId{10});
}

TEST(SliceManagerTest, OneChainPerCluster) {
  SliceManager mgr;
  ASSERT_TRUE(mgr.allocate(ClusterId{1}, NfcId{10}, 1.0).has_value());
  const auto second = mgr.allocate(ClusterId{1}, NfcId{11}, 1.0);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::kConflict);
}

TEST(SliceManagerTest, OneSlicePerChain) {
  SliceManager mgr;
  ASSERT_TRUE(mgr.allocate(ClusterId{1}, NfcId{10}, 1.0).has_value());
  const auto second = mgr.allocate(ClusterId{2}, NfcId{10}, 1.0);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::kConflict);
}

TEST(SliceManagerTest, ReleaseFreesBothSides) {
  SliceManager mgr;
  ASSERT_TRUE(mgr.allocate(ClusterId{1}, NfcId{10}, 1.0).has_value());
  ASSERT_TRUE(mgr.release(NfcId{10}).is_ok());
  EXPECT_EQ(mgr.slice_count(), 0u);
  EXPECT_FALSE(mgr.slice_of_chain(NfcId{10}).has_value());
  EXPECT_FALSE(mgr.slice_of_cluster(ClusterId{1}).has_value());
  // Reusable afterwards.
  EXPECT_TRUE(mgr.allocate(ClusterId{1}, NfcId{11}, 1.0).has_value());
  EXPECT_FALSE(mgr.release(NfcId{10}).is_ok());
}

TEST(SliceManagerTest, NegativeBandwidthRejected) {
  SliceManager mgr;
  const auto id = mgr.allocate(ClusterId{1}, NfcId{1}, -1.0);
  ASSERT_FALSE(id.has_value());
  EXPECT_EQ(id.error().code, ErrorCode::kInvalidArgument);
}

TEST(SliceManagerTest, SlicesSortedById) {
  SliceManager mgr;
  ASSERT_TRUE(mgr.allocate(ClusterId{3}, NfcId{30}, 1.0).has_value());
  ASSERT_TRUE(mgr.allocate(ClusterId{1}, NfcId{10}, 1.0).has_value());
  ASSERT_TRUE(mgr.allocate(ClusterId{2}, NfcId{20}, 1.0).has_value());
  const auto slices = mgr.slices();
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_LT(slices[0].id, slices[1].id);
  EXPECT_LT(slices[1].id, slices[2].id);
}

}  // namespace
}  // namespace alvc::orchestrator
