// Sharded control-plane unit tests: partitioning edge cases (empty shards,
// everything on one shard, cross-shard chains spanning 3+ clusters, more
// shards than clusters), scan merge determinism, per-shard retry dedupe,
// the fan-out helper, and orchestrator sharding transitions mid-life.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/alvc.h"
#include "orchestrator/control_agent.h"
#include "support/fixtures.h"
#include "util/error.h"
#include "util/executor.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::VnfType;
using alvc::util::ClusterId;
using alvc::util::Executor;
using alvc::util::NfcId;

NfcId nfc(std::uint32_t v) { return NfcId{v}; }
ClusterId vc(std::uint32_t v) { return ClusterId{v}; }

TEST(FanOutShardsTest, SerialPathVisitsShardsInAscendingOrder) {
  std::vector<std::size_t> order;
  alvc::util::fan_out_shards(nullptr, 5, [&](std::size_t shard) { order.push_back(shard); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(FanOutShardsTest, ExecutorPathVisitsEveryShardExactlyOnce) {
  Executor exec(4);
  std::vector<std::atomic<int>> visits(16);
  alvc::util::fan_out_shards(&exec, visits.size(),
                             [&](std::size_t shard) { visits[shard].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "shard " << i;
  }
}

TEST(FanOutShardsTest, RethrowsTaskExceptions) {
  EXPECT_THROW(alvc::util::fan_out_shards(nullptr, 3,
                                          [](std::size_t shard) {
                                            if (shard == 1) throw std::runtime_error("boom");
                                          }),
               std::runtime_error);
  Executor exec(2);
  EXPECT_THROW(alvc::util::fan_out_shards(&exec, 3,
                                          [](std::size_t shard) {
                                            if (shard == 2) throw std::runtime_error("boom");
                                          }),
               std::runtime_error);
}

TEST(FanOutShardsTest, ZeroShardsIsANoOp) {
  bool called = false;
  alvc::util::fan_out_shards(nullptr, 0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

struct AgentFixture : alvc::test::SliceFixture {
  ControlAgent make(std::size_t shards, Executor* exec = nullptr) {
    return ControlAgent(topo, shards, exec);
  }
};

TEST(ControlAgentTest, PartitionsChainsByClusterModulo) {
  AgentFixture fx;
  auto agent = fx.make(4);
  agent.register_chain(nfc(0), vc(0));
  agent.register_chain(nfc(1), vc(1));
  agent.register_chain(nfc(2), vc(5));  // 5 % 4 == 1
  agent.register_chain(nfc(3), vc(7));  // 7 % 4 == 3
  EXPECT_EQ(agent.shard_of(vc(5)), 1u);
  EXPECT_EQ(agent.shard(0).chain_ids(), (std::vector<NfcId>{nfc(0)}));
  EXPECT_EQ(agent.shard(1).chain_ids(), (std::vector<NfcId>{nfc(1), nfc(2)}));
  EXPECT_TRUE(agent.shard(2).chain_ids().empty());
  EXPECT_EQ(agent.shard(3).chain_ids(), (std::vector<NfcId>{nfc(3)}));
  EXPECT_EQ(agent.membership_count(), 4u);

  agent.unregister_chain(nfc(2), vc(5));
  EXPECT_EQ(agent.shard(1).chain_ids(), (std::vector<NfcId>{nfc(1)}));
  EXPECT_EQ(agent.membership_count(), 3u);
}

TEST(ControlAgentTest, EmptyShardsScanCleanlyAndCountPasses) {
  AgentFixture fx;
  auto agent = fx.make(4);
  // Everything lands on shard 0; shards 1-3 stay empty.
  for (std::uint32_t i = 0; i < 5; ++i) agent.register_chain(nfc(i), vc(0));
  const auto merged = agent.scan([](NfcId, ScanItem&) { return true; });
  ASSERT_EQ(merged.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(merged[i].id, nfc(i));
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(agent.shard(s).counters().scans, 1u) << "shard " << s;
    EXPECT_EQ(agent.shard(s).counters().chains_visited, s == 0 ? 5u : 0u);
  }
}

TEST(ControlAgentTest, MoreShardsThanClustersLeavesTheRestIdle) {
  AgentFixture fx;
  auto agent = fx.make(8);
  agent.register_chain(nfc(10), vc(0));
  agent.register_chain(nfc(11), vc(1));
  EXPECT_EQ(agent.shard(0).chain_count(), 1u);
  EXPECT_EQ(agent.shard(1).chain_count(), 1u);
  for (std::size_t s = 2; s < 8; ++s) EXPECT_EQ(agent.shard(s).chain_count(), 0u);
  const auto merged = agent.scan([](NfcId, ScanItem&) { return true; });
  EXPECT_EQ(merged.size(), 2u);
}

TEST(ControlAgentTest, CrossShardChainIsScannedPerShardAndDedupedAtMerge) {
  AgentFixture fx;
  auto agent = fx.make(4);
  // A forwarding graph spanning clusters 0, 1, and 2 registers the chain
  // with three distinct shards; clusters 0 and 4 share shard 0, so that
  // pair is still one membership.
  const std::vector<ClusterId> secondary = {vc(1), vc(2), vc(4)};
  agent.register_chain(nfc(7), vc(0), secondary);
  EXPECT_EQ(agent.membership_count(), 3u);

  std::atomic<int> classified{0};
  const auto merged = agent.scan([&](NfcId id, ScanItem& item) {
    classified.fetch_add(1);
    item.verdict = static_cast<int>(id.value());
    return true;
  });
  EXPECT_EQ(classified.load(), 3) << "one classification per owning shard";
  ASSERT_EQ(merged.size(), 1u) << "merge must dedupe the cross-shard chain";
  EXPECT_EQ(merged.front().id, nfc(7));
  EXPECT_EQ(merged.front().verdict, 7);

  agent.unregister_chain(nfc(7), vc(0), secondary);
  EXPECT_EQ(agent.membership_count(), 0u);
}

TEST(ControlAgentTest, ScopedScanVisitsOnlyTheScopedClustersChains) {
  AgentFixture fx;
  auto agent = fx.make(4);
  // Clusters 1 and 5 share shard 1; cluster 2 lives on shard 2.
  agent.register_chain(nfc(0), vc(0));
  agent.register_chain(nfc(1), vc(1));
  agent.register_chain(nfc(2), vc(5));
  agent.register_chain(nfc(3), vc(2));
  const std::vector<ClusterId> scope = {vc(5), vc(2), vc(5)};  // duplicates allowed
  const auto merged = agent.scan_scoped(scope, [](NfcId, ScanItem&) { return true; });
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, nfc(2));
  EXPECT_EQ(merged[1].id, nfc(3));
  std::uint64_t visited = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    visited += agent.shard(s).counters().chains_visited;
    EXPECT_EQ(agent.shard(s).counters().scans, 1u) << "shard " << s;
  }
  EXPECT_EQ(visited, 2u) << "chains outside the blast radius must not be classified";
}

TEST(ControlAgentTest, ScopedScanDedupesAChainReachableThroughTwoScopedClusters) {
  AgentFixture fx;
  auto agent = fx.make(2);
  // The chain spans clusters 0 (shard 0) and 3 (shard 1); scoping both
  // clusters classifies it once per shard and the merge keeps one copy.
  agent.register_chain(nfc(4), vc(0), std::vector<ClusterId>{vc(3)});
  std::atomic<int> classified{0};
  const std::vector<ClusterId> scope = {vc(0), vc(3)};
  const auto merged = agent.scan_scoped(scope, [&](NfcId, ScanItem&) {
    classified.fetch_add(1);
    return true;
  });
  EXPECT_EQ(classified.load(), 2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.front().id, nfc(4));

  // Unregistering the secondary leg keeps the chain scannable through the
  // primary one: the per-cluster index tracks each registration separately.
  agent.unregister_chain(nfc(4), vc(3));
  const auto after = agent.scan_scoped(scope, [](NfcId, ScanItem&) { return true; });
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(agent.membership_count(), 1u);
}

TEST(ControlAgentTest, ScopedScanOfUnknownClusterFindsNothing) {
  AgentFixture fx;
  auto agent = fx.make(2);
  agent.register_chain(nfc(0), vc(0));
  const std::vector<ClusterId> scope = {vc(9)};
  EXPECT_TRUE(agent.scan_scoped(scope, [](NfcId, ScanItem&) { return true; }).empty());
  EXPECT_TRUE(agent.scan_scoped({}, [](NfcId, ScanItem&) { return true; }).empty());
}

TEST(ControlAgentTest, ScanMergeIsIndependentOfShardCountAndExecutor) {
  AgentFixture fx;
  Executor exec(4);
  // Ids deliberately registered out of order and spread over clusters.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> chains = {
      {9, 3}, {2, 0}, {7, 1}, {4, 6}, {0, 2}, {5, 5}, {1, 4}};
  std::vector<std::vector<NfcId>> results;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    for (Executor* e : {static_cast<Executor*>(nullptr), &exec}) {
      auto agent = fx.make(shards, e);
      for (const auto& [id, cluster] : chains) agent.register_chain(nfc(id), vc(cluster));
      const auto merged = agent.scan([](NfcId id, ScanItem& item) {
        item.verdict = static_cast<int>(id.value()) % 2;
        return item.verdict != 0;  // odd ids only
      });
      std::vector<NfcId> ids;
      for (const auto& item : merged) ids.push_back(item.id);
      results.push_back(std::move(ids));
    }
  }
  const std::vector<NfcId> expected = {nfc(1), nfc(5), nfc(7), nfc(9)};
  for (const auto& ids : results) EXPECT_EQ(ids, expected);
}

TEST(ControlAgentTest, RetrySegmentsDedupePerShardAndDrainSorted) {
  AgentFixture fx;
  auto agent = fx.make(2);
  EXPECT_TRUE(agent.enqueue_retry({.id = nfc(5)}, vc(1)));
  EXPECT_TRUE(agent.enqueue_retry({.id = nfc(3)}, vc(0)));
  EXPECT_FALSE(agent.enqueue_retry({.id = nfc(5)}, vc(1))) << "duplicate must be rejected";
  EXPECT_TRUE(agent.enqueue_retry({.id = nfc(9), .attempts = 2}, vc(2)));
  EXPECT_EQ(agent.retry_count(), 3u);
  EXPECT_EQ(agent.shard(0).counters().retries_enqueued +
                agent.shard(1).counters().retries_enqueued,
            3u);

  const auto drained = agent.drain_retries();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, nfc(3));
  EXPECT_EQ(drained[1].id, nfc(5));
  EXPECT_EQ(drained[2].id, nfc(9));
  EXPECT_EQ(drained[2].attempts, 2u);
  EXPECT_EQ(agent.retry_count(), 0u);
}

core::DataCenter make_dc() {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = 11;
  config.seed = 3;
  core::DataCenter dc(config);
  auto clusters = dc.build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    ALVC_IGNORE_STATUS(dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical),
                       "warm-up: capacity conflicts just mean fewer live chains");
  }
  return dc;
}

TEST(OrchestratorShardingTest, TransitionsRegisterLiveChainsAndFoldBack) {
  auto dc = make_dc();
  auto& orch = dc.orchestrator();
  const std::size_t chains = orch.chain_count();
  ASSERT_GT(chains, 0u);
  EXPECT_FALSE(orch.sharded());
  EXPECT_EQ(orch.route_caches().size(), 1u);

  // Shards exceed the three clusters: the extras stay empty, everything
  // still works.
  orch.set_sharding(8);
  EXPECT_TRUE(orch.sharded());
  EXPECT_EQ(orch.shard_count(), 8u);
  ASSERT_NE(orch.agent(), nullptr);
  EXPECT_EQ(orch.agent()->membership_count(), chains);
  EXPECT_EQ(orch.route_caches().size(), 8u);

  // Re-sharding migrates membership; folding back to serial restores the
  // single global cache.
  orch.set_sharding(2);
  EXPECT_EQ(orch.shard_count(), 2u);
  EXPECT_EQ(orch.agent()->membership_count(), chains);
  orch.set_sharding(0);
  EXPECT_FALSE(orch.sharded());
  EXPECT_EQ(orch.agent(), nullptr);
  EXPECT_EQ(orch.route_caches().size(), 1u);
  EXPECT_EQ(orch.chain_count(), chains);
}

TEST(OrchestratorShardingTest, ShardedProvisionTeardownAndRecoveryStayCoherent) {
  auto dc = make_dc();
  auto& orch = dc.orchestrator();
  alvc::util::Executor exec(4);
  orch.set_sharding(4, &exec);
  const std::size_t before = orch.chain_count();

  nfv::NfcSpec spec;
  spec.service = util::ServiceId{0};
  spec.name = "late-chain";
  spec.bandwidth_gbps = 0.5;
  spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall)};
  const auto id = dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
  if (id.has_value()) {
    EXPECT_EQ(orch.agent()->membership_count(), before + 1);
    ASSERT_TRUE(dc.teardown_chain(*id).is_ok());
  }
  EXPECT_EQ(orch.agent()->membership_count(), before);

  // A failure/recovery round trip through the sharded sweep keeps every
  // chain accounted for.
  const auto down = orch.handle_ops_failure(util::OpsId{0});
  ASSERT_TRUE(down.has_value());
  const auto up = orch.handle_ops_recovery(util::OpsId{0});
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(orch.chain_count() + orch.stats().chains_lost, before)
      << "every chain must end live or deliberately lost";
  EXPECT_TRUE(orch.check_isolation().empty());
}

}  // namespace
}  // namespace alvc::orchestrator
