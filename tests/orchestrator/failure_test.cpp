// Failure injection at the orchestration layer: OPS failures that strand
// VNF instances and break chain routes; the orchestrator must relocate,
// re-route, and re-program — or tear the chain down cleanly.
#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::OpsId;
using alvc::util::ServiceId;

struct FailureFixture : ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};

  alvc::util::NfcId provision(std::initializer_list<VnfType> types) {
    NfcSpec spec;
    spec.name = "chain";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    for (auto t : types) spec.functions.push_back(*catalog.find_by_type(t));
    const GreedyOpticalPlacement placement;
    auto id = orch.provision_chain(spec, placement);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    return *id;
  }
};

TEST(OrchestratorFailureTest, ChainsUsingOpsDetectsHostsAndRoutes) {
  FailureFixture f;
  const auto id = f.provision({VnfType::kFirewall, VnfType::kNat});
  const auto* chain = f.orch.chain(id);
  // Find the OPS hosting the first VNF.
  const auto* host_ops = std::get_if<OpsId>(&chain->placement.hosts[0]);
  ASSERT_NE(host_ops, nullptr) << "greedy-optical should host light VNFs optically";
  const auto affected = f.orch.chains_using_ops(*host_ops);
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], id);
  // An OPS in no route and hosting nothing affects nothing.
  OpsId untouched = OpsId::invalid();
  for (std::size_t i = 0; i < f.topo.ops_count(); ++i) {
    const OpsId o{static_cast<OpsId::value_type>(i)};
    if (f.orch.chains_using_ops(o).empty()) {
      untouched = o;
      break;
    }
  }
  if (untouched.valid()) {
    EXPECT_TRUE(f.orch.chains_using_ops(untouched).empty());
  }
}

TEST(OrchestratorFailureTest, VnfRelocatedOffFailedRouter) {
  FailureFixture f;
  const auto id = f.provision({VnfType::kFirewall, VnfType::kNat});
  const auto* chain = f.orch.chain(id);
  const auto* host_ops = std::get_if<OpsId>(&chain->placement.hosts[0]);
  ASSERT_NE(host_ops, nullptr);
  const OpsId victim = *host_ops;

  const auto repaired = f.orch.handle_ops_failure(victim);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(*repaired, 1u);
  EXPECT_EQ(f.orch.stats().chains_repaired, 1u);
  EXPECT_GE(f.orch.stats().vnfs_relocated, 1u);

  const auto* after = f.orch.chain(id);
  ASSERT_NE(after, nullptr) << "chain must survive";
  for (const auto& host : after->placement.hosts) {
    if (const auto* o = std::get_if<OpsId>(&host)) {
      EXPECT_NE(*o, victim) << "VNF still on the failed router";
    }
  }
  // Route avoids the failed OPS.
  const std::size_t failed_vertex = f.topo.ops_vertex(victim);
  for (std::size_t v : after->route.vertices) EXPECT_NE(v, failed_vertex);
  EXPECT_GT(after->flow_rules, 0u);
  EXPECT_TRUE(f.orch.check_isolation().empty());
}

TEST(OrchestratorFailureTest, UnrelatedFailureLeavesChainAlone) {
  FailureFixture f;
  const auto id = f.provision({VnfType::kFirewall});
  // Find an OPS not used by the chain and not in the AL.
  OpsId unrelated = OpsId::invalid();
  for (std::size_t i = 0; i < f.topo.ops_count(); ++i) {
    const OpsId o{static_cast<OpsId::value_type>(i)};
    if (f.orch.chains_using_ops(o).empty() && f.manager.ownership().is_free(o)) {
      unrelated = o;
      break;
    }
  }
  if (!unrelated.valid()) GTEST_SKIP() << "fixture too small to have an unrelated OPS";
  const auto rules_before = f.orch.chain(id)->flow_rules;
  const auto repaired = f.orch.handle_ops_failure(unrelated);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(*repaired, 0u);
  EXPECT_EQ(f.orch.chain(id)->flow_rules, rules_before);
  EXPECT_EQ(f.orch.stats().chains_lost, 0u);
}

TEST(OrchestratorFailureTest, BadOpsIdRejected) {
  FailureFixture f;
  const auto result = f.orch.handle_ops_failure(OpsId{999});
  ASSERT_FALSE(result.has_value());
}

TEST(OrchestratorFailureTest, CascadingFailuresEndInCleanTeardown) {
  FailureFixture f;
  const auto id = f.provision({VnfType::kFirewall, VnfType::kNat});
  // Fail every OPS one by one; at some point the chain becomes
  // unrepairable and must be torn down, never left half-dead.
  for (std::size_t i = 0; i < f.topo.ops_count(); ++i) {
    const OpsId o{static_cast<OpsId::value_type>(i)};
    if (!f.topo.ops_usable(o)) continue;
    ALVC_IGNORE_STATUS(f.orch.handle_ops_failure(o),
                       "sweeping failures until the chain dies; teardown-vs-repair is checked after");
    if (f.orch.chain(id) == nullptr) break;
  }
  if (f.orch.chain(id) == nullptr) {
    EXPECT_EQ(f.orch.slices().slice_count(), 0u);
    EXPECT_EQ(f.orch.controller().tables().total_rules(), 0u);
    EXPECT_EQ(f.orch.cloud().lifecycle().active_count(), 0u);
    EXPECT_GE(f.orch.stats().chains_lost, 1u);
  } else {
    // Survived everything: still fully consistent.
    EXPECT_TRUE(f.orch.check_isolation().empty());
  }
}

}  // namespace
}  // namespace alvc::orchestrator
