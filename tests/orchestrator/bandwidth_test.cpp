#include "orchestrator/bandwidth.h"

#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"
#include "support/fixtures.h"

namespace alvc::orchestrator {
namespace {

using alvc::test::ClusterFixture;
using alvc::util::ErrorCode;

/// T0(10G) - O0(100G) - O1(100G) - T1(10G); vertices: tors 0,1; opss 2,3.
struct LedgerFixture {
  alvc::topology::DataCenterTopology topo;

  LedgerFixture() {
    const auto o0 = topo.add_ops();
    const auto o1 = topo.add_ops();
    topo.connect_ops_ops(o0, o1);
    const auto t0 = topo.add_tor(10.0);
    const auto t1 = topo.add_tor(10.0);
    topo.connect_tor_ops(t0, o0);
    topo.connect_tor_ops(t1, o1);
  }
};

TEST(BandwidthLedgerTest, CapacityIsMinOfEndpointPorts) {
  LedgerFixture f;
  BandwidthLedger ledger(f.topo);
  EXPECT_DOUBLE_EQ(ledger.capacity_gbps(0, 2), 10.0);   // ToR-OPS
  EXPECT_DOUBLE_EQ(ledger.capacity_gbps(2, 3), 100.0);  // OPS-OPS
  EXPECT_DOUBLE_EQ(ledger.free_gbps(0, 2), 10.0);
}

TEST(BandwidthLedgerTest, ReserveAndRelease) {
  LedgerFixture f;
  BandwidthLedger ledger(f.topo);
  const std::vector<std::size_t> walk{0, 2, 3, 1};
  ASSERT_TRUE(ledger.reserve_walk(walk, 4.0).is_ok());
  EXPECT_DOUBLE_EQ(ledger.reserved_gbps(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(ledger.reserved_gbps(2, 3), 4.0);
  EXPECT_DOUBLE_EQ(ledger.free_gbps(0, 2), 6.0);
  EXPECT_EQ(ledger.reserved_link_count(), 3u);
  EXPECT_NEAR(ledger.peak_load(), 0.4, 1e-12);
  ledger.release_walk(walk, 4.0);
  EXPECT_DOUBLE_EQ(ledger.reserved_gbps(0, 2), 0.0);
  EXPECT_EQ(ledger.reserved_link_count(), 0u);
}

TEST(BandwidthLedgerTest, ReservedLinksExportInLinkOrder) {
  // Regression: reserved_ is an unordered_map, so the export must sort —
  // alvc_analyze's unordered-escape pass flagged the raw iteration.
  LedgerFixture f;
  BandwidthLedger ledger(f.topo);
  const std::vector<std::size_t> scrambled{1, 3, 2, 0};
  const std::vector<std::size_t> extra{0, 2};
  ASSERT_TRUE(ledger.reserve_walk(scrambled, 2.0).is_ok());
  ASSERT_TRUE(ledger.reserve_walk(extra, 1.0).is_ok());
  const auto links = ledger.reserved_links();
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0].u, 0u);
  EXPECT_EQ(links[0].v, 2u);
  EXPECT_DOUBLE_EQ(links[0].gbps, 3.0);  // walk link + the extra reserve
  EXPECT_EQ(links[1].u, 1u);
  EXPECT_EQ(links[1].v, 3u);
  EXPECT_EQ(links[2].u, 2u);
  EXPECT_EQ(links[2].v, 3u);
}

TEST(BandwidthLedgerTest, AtomicRejection) {
  LedgerFixture f;
  BandwidthLedger ledger(f.topo);
  const std::vector<std::size_t> walk{0, 2, 3, 1};
  ASSERT_TRUE(ledger.reserve_walk(walk, 8.0).is_ok());
  // 8 + 4 > 10 on the ToR links: reject and change nothing.
  const auto status = ledger.reserve_walk(walk, 4.0);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCapacityExceeded);
  EXPECT_DOUBLE_EQ(ledger.reserved_gbps(2, 3), 8.0) << "atomic: no partial reservation";
}

TEST(BandwidthLedgerTest, RepeatedLinksCountOnce) {
  LedgerFixture f;
  BandwidthLedger ledger(f.topo);
  // Walk that bounces back over the same link: 0-2-0-2 -> link (0,2) once.
  const std::vector<std::size_t> walk{0, 2, 0, 2};
  ASSERT_TRUE(ledger.reserve_walk(walk, 6.0).is_ok());
  EXPECT_DOUBLE_EQ(ledger.reserved_gbps(0, 2), 6.0);
  EXPECT_EQ(ledger.reserved_link_count(), 1u);
}

TEST(BandwidthLedgerTest, NegativeAndOverRelease) {
  LedgerFixture f;
  BandwidthLedger ledger(f.topo);
  const std::vector<std::size_t> walk{0, 2};
  EXPECT_FALSE(ledger.reserve_walk(walk, -1.0).is_ok());
  ledger.release_walk(walk, 5.0);  // nothing reserved: clamped no-op
  EXPECT_DOUBLE_EQ(ledger.reserved_gbps(0, 2), 0.0);
}

TEST(BandwidthLedgerTest, OrchestratorReservesAndReleases) {
  ClusterFixture f;
  NetworkOrchestrator orch(f.manager, f.catalog);
  alvc::nfv::NfcSpec spec;
  spec.name = "bw";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 3.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  const GreedyOpticalPlacement placement;
  const auto id = orch.provision_chain(spec, placement);
  ASSERT_TRUE(id.has_value());
  EXPECT_GT(orch.bandwidth().reserved_link_count(), 0u);
  EXPECT_GT(orch.bandwidth().peak_load(), 0.0);
  ASSERT_TRUE(orch.teardown_chain(*id).is_ok());
  EXPECT_EQ(orch.bandwidth().reserved_link_count(), 0u);
}

TEST(BandwidthLedgerTest, MigrationMovesReservation) {
  ClusterFixture f;
  NetworkOrchestrator orch(f.manager, f.catalog);
  alvc::nfv::NfcSpec spec;
  spec.name = "bw-migrate";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 2.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  const GreedyOpticalPlacement placement;
  const auto id = orch.provision_chain(spec, placement);
  ASSERT_TRUE(id.has_value());
  const auto links_before = orch.bandwidth().reserved_link_count();
  ASSERT_GT(links_before, 0u);
  // Migrate to a server: reservation follows the new route.
  ASSERT_TRUE(orch.migrate_function(*id, 0, alvc::nfv::HostRef{alvc::util::ServerId{0}})
                  .is_ok());
  EXPECT_GT(orch.bandwidth().reserved_link_count(), 0u);
  ASSERT_TRUE(orch.teardown_chain(*id).is_ok());
  EXPECT_EQ(orch.bandwidth().reserved_link_count(), 0u) << "no reservation leak";
}

}  // namespace
}  // namespace alvc::orchestrator
