// End-to-end orchestration tests (integration across cluster/nfv/sdn/
// orchestrator): provision -> inspect -> scale -> teardown, plus the
// paper's one-NFC-per-VC and isolation claims.
#include "orchestrator/orchestrator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/service.h"
#include "support/fixtures.h"
#include "topology/builder.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::ErrorCode;
using alvc::util::ServiceId;
using alvc::util::TenantId;

struct OrchFixture : ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};

  NfcSpec chain(std::initializer_list<VnfType> types, ServiceId service = ServiceId{0},
                double bandwidth = 1.0) {
    NfcSpec spec;
    spec.tenant = TenantId{1};
    spec.name = "chain";
    spec.bandwidth_gbps = bandwidth;
    spec.service = service;
    for (auto t : types) spec.functions.push_back(*catalog.find_by_type(t));
    return spec;
  }
};

TEST(OrchestratorTest, ProvisionEndToEnd) {
  OrchFixture f;
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_chain(
      f.chain({VnfType::kFirewall, VnfType::kNat, VnfType::kLoadBalancer}), placement);
  ASSERT_TRUE(id.has_value()) << id.error().to_string();
  const auto* chain = f.orch.chain(*id);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->instances.size(), 3u);
  EXPECT_EQ(chain->placement.hosts.size(), 3u);
  EXPECT_GT(chain->flow_rules, 0u);
  EXPECT_EQ(f.orch.cloud().lifecycle().active_count(), 3u);
  EXPECT_EQ(f.orch.slices().slice_count(), 1u);
  EXPECT_TRUE(f.orch.check_isolation().empty());
  EXPECT_EQ(f.orch.stats().chains_provisioned, 1u);
}

TEST(OrchestratorTest, OneChainPerCluster) {
  OrchFixture f;
  const GreedyOpticalPlacement placement;
  ASSERT_TRUE(f.orch.provision_chain(f.chain({VnfType::kFirewall}), placement).has_value());
  const auto second = f.orch.provision_chain(f.chain({VnfType::kNat}), placement);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::kConflict);
  EXPECT_EQ(f.orch.stats().provision_failures, 1u);
}

TEST(OrchestratorTest, UnknownServiceRejected) {
  OrchFixture f;
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_chain(f.chain({VnfType::kFirewall}, ServiceId{9}), placement);
  ASSERT_FALSE(id.has_value());
  EXPECT_EQ(id.error().code, ErrorCode::kNotFound);
}

TEST(OrchestratorTest, AdmissionRejectionRollsBackCleanly) {
  OrchFixture f;
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_chain(f.chain({VnfType::kFirewall}, ServiceId{0}, 999.0),
                                         placement);
  ASSERT_FALSE(id.has_value());
  EXPECT_EQ(id.error().code, ErrorCode::kRejected);
  EXPECT_EQ(f.orch.slices().slice_count(), 0u);
  EXPECT_EQ(f.orch.cloud().lifecycle().instance_count(), 0u);
  EXPECT_EQ(f.orch.controller().tables().total_rules(), 0u);
  // The cluster is still usable afterwards.
  EXPECT_TRUE(f.orch.provision_chain(f.chain({VnfType::kFirewall}), placement).has_value());
}

TEST(OrchestratorTest, TeardownReleasesEverything) {
  OrchFixture f;
  const GreedyOpticalPlacement placement;
  const auto id =
      f.orch.provision_chain(f.chain({VnfType::kFirewall, VnfType::kDeepPacketInspection}),
                             placement);
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(f.orch.teardown_chain(*id).is_ok());
  EXPECT_EQ(f.orch.chain_count(), 0u);
  EXPECT_EQ(f.orch.slices().slice_count(), 0u);
  EXPECT_EQ(f.orch.cloud().lifecycle().active_count(), 0u);
  EXPECT_EQ(f.orch.controller().tables().total_rules(), 0u);
  // Capacity returned: a new identical chain provisions again.
  EXPECT_TRUE(
      f.orch.provision_chain(f.chain({VnfType::kFirewall, VnfType::kDeepPacketInspection}),
                             placement)
          .has_value());
  EXPECT_FALSE(f.orch.teardown_chain(*id).is_ok()) << "second teardown must fail";
}

TEST(OrchestratorTest, ScaleFunctionRoundTrip) {
  OrchFixture f;
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_chain(f.chain({VnfType::kFirewall}), placement);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(f.orch.scale_function(*id, 0, 2.0).is_ok());
  EXPECT_FALSE(f.orch.scale_function(*id, 5, 2.0).is_ok());
  EXPECT_FALSE(f.orch.scale_function(alvc::util::NfcId{99}, 0, 2.0).is_ok());
}

TEST(OrchestratorTest, RouteStartsAndEndsAtClusterTors) {
  OrchFixture f;
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_chain(f.chain({VnfType::kFirewall, VnfType::kNat}), placement);
  ASSERT_TRUE(id.has_value());
  const auto* chain = f.orch.chain(*id);
  const auto& layer = f.cluster().layer;
  const std::size_t first = chain->route.vertices.front();
  const std::size_t last = chain->route.vertices.back();
  EXPECT_FALSE(f.topo.is_ops_vertex(first));
  EXPECT_FALSE(f.topo.is_ops_vertex(last));
  EXPECT_TRUE(layer.contains_tor(f.topo.vertex_to_tor(first)));
  EXPECT_TRUE(layer.contains_tor(f.topo.vertex_to_tor(last)));
}

TEST(OrchestratorTest, MultiTenantChainsAreIsolated) {
  // Bigger DC with several service clusters, one chain each.
  alvc::topology::TopologyParams params;
  params.seed = 5;
  params.rack_count = 9;
  params.ops_count = 36;
  params.tor_ops_degree = 8;
  params.service_count = 3;
  params.optoelectronic_fraction = 0.5;
  params.core = alvc::topology::CoreKind::kRing;
  auto topo = alvc::topology::build_topology(params);
  alvc::cluster::ClusterManager manager(topo);
  const alvc::cluster::VertexCoverAlBuilder builder;
  const auto ids = manager.create_clusters_by_service(builder);
  ASSERT_TRUE(ids.has_value()) << ids.error().to_string();

  const auto catalog = alvc::nfv::VnfCatalog::make_default();
  NetworkOrchestrator orch(manager, catalog);
  const GreedyOpticalPlacement placement;
  for (std::uint32_t s = 0; s < 3; ++s) {
    NfcSpec spec;
    spec.tenant = TenantId{s};
    spec.name = "tenant-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.service = ServiceId{s};
    spec.functions = {*catalog.find_by_type(VnfType::kFirewall),
                      *catalog.find_by_type(VnfType::kNat)};
    const auto id = orch.provision_chain(spec, placement);
    ASSERT_TRUE(id.has_value()) << "tenant " << s << ": " << id.error().to_string();
  }
  EXPECT_EQ(orch.chain_count(), 3u);
  EXPECT_TRUE(orch.check_isolation().empty());
  // No two chains share an OPS on their routes (ALs are disjoint). A chain
  // may revisit its own OPS across legs, so dedupe per chain first.
  std::vector<std::size_t> all_vertices;
  for (const auto* chain : orch.chains()) {
    std::set<std::size_t> own;
    for (std::size_t v : chain->route.vertices) {
      if (topo.is_ops_vertex(v)) own.insert(v);
    }
    all_vertices.insert(all_vertices.end(), own.begin(), own.end());
  }
  std::sort(all_vertices.begin(), all_vertices.end());
  EXPECT_EQ(std::adjacent_find(all_vertices.begin(), all_vertices.end()), all_vertices.end())
      << "two chains rode the same OPS";
}

}  // namespace
}  // namespace alvc::orchestrator
