// Differential proof of the route cache's bit-identity contract: two
// identical data centers run the same seeded fault workload — one with the
// epoch-versioned cache, one with plain BFS routing — and after EVERY
// event the full chain state (routes, legs, placements, reservations,
// degraded flags, recovery stats) must match exactly, across 20 seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/alvc.h"
#include "faults/fault_injector.h"
#include "faults/state_auditor.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::orchestrator {
namespace {

using alvc::faults::apply_fault;
using alvc::faults::FaultInjector;
using alvc::faults::FaultScheduleParams;
using nfv::VnfType;

constexpr std::uint64_t kSeeds = 20;

core::DataCenter make_provisioned_dc(std::uint64_t seed, bool cache_enabled) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  dc.orchestrator().set_route_cache_enabled(cache_enabled);
  auto clusters = dc.build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    ALVC_IGNORE_STATUS(dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical),
                       "warm-up: capacity conflicts just mean fewer live chains");
  }
  return dc;
}

/// Full observable chain state; everything routing can influence.
void expect_identical_state(const NetworkOrchestrator& cached,
                            const NetworkOrchestrator& plain) {
  const auto a = cached.chains();
  const auto b = plain.chains();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("chain " + std::to_string(a[i]->record.id.value()));
    ASSERT_EQ(a[i]->record.id, b[i]->record.id);
    EXPECT_EQ(a[i]->route.vertices, b[i]->route.vertices);
    EXPECT_EQ(a[i]->route.legs, b[i]->route.legs);
    EXPECT_EQ(a[i]->route.optical_hops, b[i]->route.optical_hops);
    EXPECT_EQ(a[i]->route.electronic_hops, b[i]->route.electronic_hops);
    EXPECT_EQ(a[i]->placement.hosts, b[i]->placement.hosts);
    EXPECT_EQ(a[i]->flow_rules, b[i]->flow_rules);
    EXPECT_DOUBLE_EQ(a[i]->reserved_gbps, b[i]->reserved_gbps);
    EXPECT_EQ(a[i]->degraded, b[i]->degraded);
  }
  EXPECT_EQ(cached.stats().chains_repaired, plain.stats().chains_repaired);
  EXPECT_EQ(cached.stats().chains_degraded, plain.stats().chains_degraded);
  EXPECT_EQ(cached.stats().chains_restored, plain.stats().chains_restored);
  EXPECT_EQ(cached.stats().chains_lost, plain.stats().chains_lost);
  EXPECT_EQ(cached.stats().vnfs_relocated, plain.stats().vnfs_relocated);
}

TEST(RouteCacheDifferentialTest, CachedAndUncachedRoutingAreBitIdenticalOver20Seeds) {
  std::uint64_t total_events = 0;
  std::uint64_t total_hits = 0;
  std::uint64_t total_revalidations = 0;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ALVC_TRACE_SEED(seed);
    auto with_cache = make_provisioned_dc(seed, true);
    auto without_cache = make_provisioned_dc(seed, false);
    ASSERT_FALSE(with_cache.orchestrator().chains().empty());
    expect_identical_state(with_cache.orchestrator(), without_cache.orchestrator());

    FaultScheduleParams params;
    params.ops = {.mtbf_s = 30, .mttr_s = 6};
    params.tor = {.mtbf_s = 50, .mttr_s = 5};
    params.server = {.mtbf_s = 40, .mttr_s = 5};
    params.link = {.mtbf_s = 35, .mttr_s = 5};
    params.horizon_s = 35;
    params.seed = seed;
    const auto schedule = FaultInjector::generate(with_cache.topology(), params);
    ASSERT_FALSE(schedule.empty());

    for (const auto& event : schedule) {
      ++total_events;
      const auto ra = apply_fault(with_cache.orchestrator(), event);
      const auto rb = apply_fault(without_cache.orchestrator(), event);
      ASSERT_EQ(ra.has_value(), rb.has_value());
      if (ra.has_value()) {
        ASSERT_EQ(*ra, *rb);
      }
      expect_identical_state(with_cache.orchestrator(), without_cache.orchestrator());
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "first divergence at t=" << event.time_s << " "
               << alvc::faults::to_string(event.kind) << " id=" << event.id
               << (event.failure ? " failure" : " repair");
      }
    }

    // Both ends stay self-consistent, cache coherence included.
    EXPECT_TRUE(faults::StateAuditor::audit(with_cache.orchestrator()).empty());
    EXPECT_TRUE(faults::StateAuditor::audit(without_cache.orchestrator()).empty());
    const auto& stats = with_cache.orchestrator().route_cache().stats();
    total_hits += stats.hits;
    total_revalidations += stats.revalidations;
    EXPECT_EQ(without_cache.orchestrator().route_cache().stats().lookups(), 0u);
  }

  // The equivalence must not be vacuous: the cached side has to have
  // actually served memoized paths under churn.
  EXPECT_GT(total_events, 200u);
  EXPECT_GT(total_hits + total_revalidations, 100u)
      << "cache never served anything; the differential proved nothing";
}

TEST(RouteCacheDifferentialTest, TeardownAndReprovisionStayIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ALVC_TRACE_SEED(seed);
    auto with_cache = make_provisioned_dc(seed, true);
    auto without_cache = make_provisioned_dc(seed, false);

    // Tear down every chain (exercising invalidate_slice on the cached
    // side), then re-provision the same specs; results must match.
    const auto ids = [&] {
      std::vector<util::NfcId> out;
      for (const auto* c : with_cache.orchestrator().chains()) out.push_back(c->record.id);
      return out;
    }();
    for (util::NfcId id : ids) {
      ASSERT_TRUE(with_cache.orchestrator().teardown_chain(id).is_ok());
      ASSERT_TRUE(without_cache.orchestrator().teardown_chain(id).is_ok());
    }
    EXPECT_EQ(with_cache.orchestrator().route_cache().entry_count(), 0u);

    for (std::uint32_t s = 0; s < 3; ++s) {
      nfv::NfcSpec spec;
      spec.service = util::ServiceId{s};
      spec.name = "chain-" + std::to_string(s) + "-again";
      spec.bandwidth_gbps = 1.0;
      spec.functions = {*with_cache.catalog().find_by_type(VnfType::kDeepPacketInspection),
                        *with_cache.catalog().find_by_type(VnfType::kLoadBalancer)};
      const auto ra =
          with_cache.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
      const auto rb =
          without_cache.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical);
      ASSERT_EQ(ra.has_value(), rb.has_value());
    }
    expect_identical_state(with_cache.orchestrator(), without_cache.orchestrator());
  }
}

}  // namespace
}  // namespace alvc::orchestrator
