#include "orchestrator/oeo.h"

#include <gtest/gtest.h>

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostRef;
using alvc::util::OpsId;
using alvc::util::ServerId;

TEST(CountConversionsTest, EmptyChainHasOnlyEndpoints) {
  const std::vector<HostRef> hosts;
  const auto count = count_conversions(hosts);
  EXPECT_EQ(count.mid_chain, 0u);
  EXPECT_EQ(count.endpoint, 2u);
  EXPECT_EQ(count.total(), 2u);
}

TEST(CountConversionsTest, AllOpticalIsFree) {
  const std::vector<HostRef> hosts{OpsId{0}, OpsId{1}, OpsId{2}};
  EXPECT_EQ(count_conversions(hosts).mid_chain, 0u);
}

TEST(CountConversionsTest, PaperFig8Scenario) {
  // "Initially, two VNFs are hosted by the electronic domain; therefore the
  // flow needs to traverse twice between the optical and electronic domain
  // and consuming two O/E/O conversions."
  const std::vector<HostRef> before{OpsId{0}, ServerId{1}, ServerId{2}};
  EXPECT_EQ(count_conversions(before).mid_chain, 2u);
  // "By moving one more VNF in the optical domain, we can save another
  // O/E/O conversion."
  const std::vector<HostRef> after{OpsId{0}, OpsId{1}, ServerId{2}};
  EXPECT_EQ(count_conversions(after).mid_chain, 1u);
  const std::vector<HostRef> all_optical{OpsId{0}, OpsId{1}, OpsId{2}};
  EXPECT_EQ(count_conversions(all_optical).mid_chain, 0u);
}

TEST(CountConversionsTest, ConsecutiveSameServerCountsOnce) {
  const std::vector<HostRef> hosts{ServerId{1}, ServerId{1}, ServerId{1}};
  EXPECT_EQ(count_conversions(hosts).mid_chain, 1u);
}

TEST(CountConversionsTest, ConsecutiveDifferentServersCountSeparately) {
  const std::vector<HostRef> hosts{ServerId{1}, ServerId{2}};
  EXPECT_EQ(count_conversions(hosts).mid_chain, 2u);
}

TEST(CountConversionsTest, ReturnToSameServerAfterOpticalCountsAgain) {
  const std::vector<HostRef> hosts{ServerId{1}, OpsId{0}, ServerId{1}};
  EXPECT_EQ(count_conversions(hosts).mid_chain, 2u);
}

TEST(CountConversionsTest, AlternatingPattern) {
  const std::vector<HostRef> hosts{ServerId{0}, OpsId{0}, ServerId{1}, OpsId{1}, ServerId{2}};
  EXPECT_EQ(count_conversions(hosts).mid_chain, 3u);
}

TEST(ConversionEnergyTest, ProportionalToBytesAndCount) {
  OeoCostModel model;
  model.conversion_joules_per_byte = 2.0;
  OeoCount count;
  count.mid_chain = 3;  // total 5 with endpoints
  EXPECT_DOUBLE_EQ(conversion_energy(count, 10.0, model), 5 * 10.0 * 2.0);
  // Cost scales with flow length — the paper's "larger the flow, higher the
  // cost".
  EXPECT_GT(conversion_energy(count, 100.0, model), conversion_energy(count, 10.0, model));
}

TEST(ConversionEnergyTest, ZeroBytesZeroEnergy) {
  EXPECT_DOUBLE_EQ(conversion_energy(OeoCount{}, 0.0, OeoCostModel{}), 0.0);
}

}  // namespace
}  // namespace alvc::orchestrator
