// Property sweeps over random topologies and chains: invariants every
// placement strategy must satisfy, plus the quality ordering between them.
#include <gtest/gtest.h>

#include "cluster/cluster_manager.h"
#include "cluster/service.h"
#include "nfv/hosting.h"
#include "orchestrator/placement.h"
#include "topology/builder.h"
#include "util/rng.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostingPool;
using alvc::nfv::is_optical_host;
using alvc::nfv::NfcSpec;
using alvc::nfv::VnfCatalog;
using alvc::util::ServiceId;

struct RandomDeployment {
  alvc::topology::DataCenterTopology topo;
  std::unique_ptr<alvc::cluster::ClusterManager> manager;
  VnfCatalog catalog = VnfCatalog::make_default();
  const alvc::cluster::VirtualCluster* cluster = nullptr;

  explicit RandomDeployment(std::uint64_t seed) {
    alvc::topology::TopologyParams params;
    params.seed = seed;
    params.rack_count = 4 + seed % 5;
    params.ops_count = 16 + (seed % 3) * 8;
    params.tor_ops_degree = 6;
    params.service_count = 1;
    params.optoelectronic_fraction = 0.5;
    params.core = alvc::topology::CoreKind::kRing;
    topo = alvc::topology::build_topology(params);
    manager = std::make_unique<alvc::cluster::ClusterManager>(topo);
    const alvc::cluster::VertexCoverAlBuilder builder;
    const auto groups = alvc::cluster::group_vms_by_service(topo);
    auto id = manager->create_cluster(ServiceId{0}, groups[0], builder);
    if (!id.has_value()) throw std::runtime_error(id.error().to_string());
    cluster = manager->find(*id);
  }

  NfcSpec random_chain(alvc::util::Rng& rng) const {
    NfcSpec spec;
    spec.name = "prop";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    const std::size_t length = 1 + rng.uniform_index(6);
    for (std::size_t i = 0; i < length; ++i) {
      spec.functions.push_back(
          alvc::util::VnfId{static_cast<alvc::util::VnfId::value_type>(
              rng.uniform_index(catalog.size()))});
    }
    return spec;
  }
};

class PlacementPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlacementPropertyTest, EveryStrategySatisfiesCoreInvariants) {
  RandomDeployment deployment(GetParam());
  alvc::util::Rng rng(GetParam() * 3 + 1);
  std::vector<std::unique_ptr<PlacementStrategy>> strategies;
  strategies.push_back(std::make_unique<ElectronicOnlyPlacement>());
  strategies.push_back(std::make_unique<RandomPlacement>(GetParam()));
  strategies.push_back(std::make_unique<GreedyOpticalPlacement>());
  strategies.push_back(std::make_unique<OeoMinimizingPlacement>());

  for (int round = 0; round < 8; ++round) {
    const auto spec = deployment.random_chain(rng);
    for (const auto& strategy : strategies) {
      HostingPool pool(deployment.topo);
      PlacementContext context{.topo = &deployment.topo,
                               .cluster = deployment.cluster,
                               .catalog = &deployment.catalog,
                               .pool = &pool};
      const auto result = strategy->place(spec, context);
      if (!result.has_value()) {
        // Rollback on failure: pool must be pristine.
        for (const auto& server : deployment.topo.servers()) {
          EXPECT_DOUBLE_EQ(
              pool.free_capacity(alvc::nfv::HostRef{server.id}).cpu_cores,
              server.capacity.cpu_cores)
              << strategy->name();
        }
        continue;
      }
      ASSERT_EQ(result->hosts.size(), spec.functions.size()) << strategy->name();
      EXPECT_EQ(result->optical_count + result->electronic_count, result->hosts.size());
      EXPECT_TRUE(pool.is_consistent()) << strategy->name();
      // Hosts are slice members; electronic-only pins all hosts electronic.
      for (std::size_t i = 0; i < result->hosts.size(); ++i) {
        const auto& host = result->hosts[i];
        const auto& desc = deployment.catalog.descriptor(spec.functions[i]);
        if (const auto* ops = std::get_if<alvc::util::OpsId>(&host)) {
          EXPECT_TRUE(deployment.cluster->layer.contains_ops(*ops)) << strategy->name();
          EXPECT_TRUE(deployment.topo.ops(*ops).optoelectronic);
          EXPECT_FALSE(desc.electronic_only)
              << strategy->name() << " placed a pinned VNF optically";
        } else {
          const auto server = std::get<alvc::util::ServerId>(host);
          EXPECT_TRUE(deployment.cluster->layer.contains_tor(
              deployment.topo.server(server).tor))
              << strategy->name();
        }
      }
      // The conversions field matches a recount of the host list.
      EXPECT_EQ(result->conversions.mid_chain, count_conversions(result->hosts).mid_chain);
    }
  }
}

TEST_P(PlacementPropertyTest, OeoMinNeverWorseThanGreedyOrElectronic) {
  RandomDeployment deployment(GetParam() + 100);
  alvc::util::Rng rng(GetParam() * 7 + 5);
  for (int round = 0; round < 6; ++round) {
    const auto spec = deployment.random_chain(rng);
    const auto run = [&](const PlacementStrategy& strategy)
        -> std::optional<std::size_t> {
      HostingPool pool(deployment.topo);
      PlacementContext context{.topo = &deployment.topo,
                               .cluster = deployment.cluster,
                               .catalog = &deployment.catalog,
                               .pool = &pool};
      const auto result = strategy.place(spec, context);
      if (!result.has_value()) return std::nullopt;
      return result->conversions.mid_chain;
    };
    const auto minimal = run(OeoMinimizingPlacement{});
    const auto greedy = run(GreedyOpticalPlacement{});
    if (minimal && greedy) {
      EXPECT_LE(*minimal, *greedy) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace alvc::orchestrator
