// Complex (DAG) chain provisioning: the paper's "network forwarding graph".
#include <gtest/gtest.h>

#include "orchestrator/orchestrator.h"
#include "support/fixtures.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::ForwardingGraph;
using alvc::nfv::GraphNfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::ServiceId;

struct GraphChainFixture : ClusterFixture {
  NetworkOrchestrator orch{manager, catalog};

  GraphNfcSpec diamond_spec() {
    // lb -> {firewall, nat} -> security-gw.
    GraphNfcSpec spec;
    spec.name = "diamond";
    spec.service = ServiceId{0};
    spec.bandwidth_gbps = 1.0;
    const auto lb = spec.graph.add_node(*catalog.find_by_type(VnfType::kLoadBalancer));
    const auto fw = spec.graph.add_node(*catalog.find_by_type(VnfType::kFirewall));
    const auto nat = spec.graph.add_node(*catalog.find_by_type(VnfType::kNat));
    const auto gw = spec.graph.add_node(*catalog.find_by_type(VnfType::kSecurityGateway));
    spec.graph.add_edge(lb, fw);
    spec.graph.add_edge(lb, nat);
    spec.graph.add_edge(fw, gw);
    spec.graph.add_edge(nat, gw);
    return spec;
  }
};

TEST(GraphChainTest, ProvisionDiamond) {
  GraphChainFixture f;
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_forwarding_graph(f.diamond_spec(), placement);
  ASSERT_TRUE(id.has_value()) << id.error().to_string();
  const auto* chain = f.orch.chain(*id);
  ASSERT_NE(chain, nullptr);
  ASSERT_TRUE(chain->graph.has_value());
  EXPECT_EQ(chain->graph->node_count(), 4u);
  EXPECT_EQ(chain->instances.size(), 4u);
  // Legs: ingress->entry (1) + 4 DAG edges + 1 exit->egress = 6.
  EXPECT_EQ(chain->route.legs.size(), 6u);
  EXPECT_GT(chain->flow_rules, 0u);
  EXPECT_TRUE(f.orch.check_isolation().empty());
  // All light functions fit the AL's OE routers: zero conversions.
  EXPECT_EQ(chain->placement.conversions.mid_chain, 0u);
}

TEST(GraphChainTest, MultiExitGraphRoutesEveryExit) {
  GraphChainFixture f;
  GraphNfcSpec spec;
  spec.name = "fanout";
  spec.service = ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  const auto lb = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kLoadBalancer));
  const auto fw = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kFirewall));
  const auto nat = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kNat));
  spec.graph.add_edge(lb, fw);
  spec.graph.add_edge(lb, nat);
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_forwarding_graph(spec, placement);
  ASSERT_TRUE(id.has_value()) << id.error().to_string();
  const auto* chain = f.orch.chain(*id);
  // Legs: ingress->lb + 2 edges + 2 exits->egress = 5.
  EXPECT_EQ(chain->route.legs.size(), 5u);
}

TEST(GraphChainTest, ElectronicNodesCountEdgeConversions) {
  GraphChainFixture f;
  GraphNfcSpec spec;
  spec.name = "mixed";
  spec.service = ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  // fw(optical) -> dpi(electronic) -> nat(optical): one O->E edge + return.
  const auto fw = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kFirewall));
  const auto dpi = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kDeepPacketInspection));
  const auto nat = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kNat));
  spec.graph.add_edge(fw, dpi);
  spec.graph.add_edge(dpi, nat);
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_forwarding_graph(spec, placement);
  ASSERT_TRUE(id.has_value());
  const auto* chain = f.orch.chain(*id);
  EXPECT_EQ(chain->placement.conversions.mid_chain, 1u);
}

TEST(GraphChainTest, InvalidGraphRejected) {
  GraphChainFixture f;
  GraphNfcSpec spec;
  spec.name = "cyclic";
  spec.service = ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  const auto a = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kFirewall));
  const auto b = spec.graph.add_node(*f.catalog.find_by_type(VnfType::kNat));
  spec.graph.add_edge(a, b);
  spec.graph.add_edge(b, a);
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_forwarding_graph(spec, placement);
  ASSERT_FALSE(id.has_value());
  EXPECT_EQ(f.orch.stats().provision_failures, 1u);
  EXPECT_EQ(f.orch.slices().slice_count(), 0u);
}

TEST(GraphChainTest, TeardownWorksLikeLinearChains) {
  GraphChainFixture f;
  const GreedyOpticalPlacement placement;
  const auto id = f.orch.provision_forwarding_graph(f.diamond_spec(), placement);
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(f.orch.teardown_chain(*id).is_ok());
  EXPECT_EQ(f.orch.chain_count(), 0u);
  EXPECT_EQ(f.orch.cloud().lifecycle().active_count(), 0u);
  EXPECT_EQ(f.orch.controller().tables().total_rules(), 0u);
  EXPECT_EQ(f.orch.slices().slice_count(), 0u);
}

TEST(GraphChainTest, OneSlicePerClusterStillHolds) {
  GraphChainFixture f;
  const GreedyOpticalPlacement placement;
  ASSERT_TRUE(f.orch.provision_forwarding_graph(f.diamond_spec(), placement).has_value());
  const auto second = f.orch.provision_forwarding_graph(f.diamond_spec(), placement);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, alvc::util::ErrorCode::kConflict);
}

TEST(RouteGraphTest, RejectsSizeMismatch) {
  GraphChainFixture f;
  ChainRouter router(f.topo);
  ForwardingGraph g;
  g.add_node(alvc::util::VnfId{0});
  const std::vector<alvc::nfv::HostRef> hosts;  // wrong size
  const auto route = router.route_graph(f.cluster(), f.cluster().layer.tors.front(),
                                        f.cluster().layer.tors.back(), g, hosts);
  ASSERT_FALSE(route.has_value());
  EXPECT_EQ(route.error().code, alvc::util::ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace alvc::orchestrator
