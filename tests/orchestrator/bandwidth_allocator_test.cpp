// BandwidthAllocator: water-filling fairness and the ladder quantization it
// feeds the data plane. Covers the single-resource water_fill() primitive
// (max-min optimality, monotone restore), the rung helpers, and plan()
// under all three policies — including the priority-feasibility guarantee
// kPriorityDowngrade makes: a HIPRI chain is short only if it could not
// climb even with every LOPRI aggregate shed to zero.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "orchestrator/bandwidth_allocator.h"
#include "support/fixtures.h"
#include "util/rng.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::PriorityClass;
using alvc::util::NfcId;
using alvc::util::Rng;

constexpr double kTol = 1e-6;

AllocChain make_chain(std::uint32_t id, double demand, PriorityClass cls,
                      std::vector<std::pair<std::uint32_t, double>> uses) {
  AllocChain chain;
  chain.id = NfcId{id};
  chain.cls = cls;
  chain.demand_gbps = demand;
  chain.uses = std::move(uses);
  return chain;
}

bool is_rung(double demand, double target) {
  if (target == 0.0) return true;
  return std::any_of(BandwidthAllocator::kLadder.begin(), BandwidthAllocator::kLadder.end(),
                     [&](double f) { return std::abs(demand * f - target) <= kTol; });
}

TEST(WaterFillTest, SplitsEquallyWhenEveryoneIsShort) {
  const std::vector<double> demands{4.0, 4.0, 4.0};
  const auto result = water_fill(demands, 6.0);
  ASSERT_EQ(result.grants.size(), 3u);
  for (double g : result.grants) EXPECT_NEAR(g, 2.0, kTol);
  EXPECT_NEAR(result.level, 2.0, kTol);
}

TEST(WaterFillTest, SatisfiedDemandsFreezeAndFreeTheRest) {
  const std::vector<double> demands{1.0, 10.0, 5.0};
  const auto result = water_fill(demands, 10.0);
  EXPECT_NEAR(result.grants[0], 1.0, kTol);
  EXPECT_NEAR(result.grants[1], 4.5, kTol);
  EXPECT_NEAR(result.grants[2], 4.5, kTol);
}

TEST(WaterFillTest, ZeroCapacityAndZeroDemandsAreHandled) {
  const std::vector<double> demands{2.0, 0.0};
  const auto dry = water_fill(demands, 0.0);
  EXPECT_NEAR(dry.grants[0], 0.0, kTol);
  EXPECT_NEAR(dry.grants[1], 0.0, kTol);
  const auto empty = water_fill(std::vector<double>{}, 5.0);
  EXPECT_TRUE(empty.grants.empty());
}

// Max-min optimality of the textbook single-resource case: every grant is
// min(demand, level), nothing exceeds capacity, and the split is work
// conserving (all of min(capacity, total demand) is handed out).
TEST(WaterFillTest, MaxMinOptimalityOnRandomInstances) {
  Rng rng(0x5eed0001);
  for (int trial = 0; trial < 200; ++trial) {
    ALVC_TRACE_SEED(trial);
    const std::size_t n = 1 + rng.uniform_index(8);
    std::vector<double> demands(n);
    double total = 0;
    for (double& d : demands) {
      d = rng.uniform(0.1, 10.0);
      total += d;
    }
    const double capacity = rng.uniform(0.0, total * 1.2);
    const auto result = water_fill(demands, capacity);

    double granted = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(result.grants[i], std::min(demands[i], result.level), kTol);
      granted += result.grants[i];
    }
    EXPECT_LE(granted, capacity + kTol);
    EXPECT_NEAR(granted, std::min(capacity, total), kTol) << "not work conserving";
  }
}

// Monotone restore: growing the capacity never shrinks anyone's grant.
TEST(WaterFillTest, GrantsAreMonotoneInCapacity) {
  Rng rng(0x5eed0002);
  for (int trial = 0; trial < 100; ++trial) {
    ALVC_TRACE_SEED(trial);
    const std::size_t n = 1 + rng.uniform_index(6);
    std::vector<double> demands(n);
    for (double& d : demands) d = rng.uniform(0.1, 8.0);
    const double lo = rng.uniform(0.0, 20.0);
    const double hi = lo + rng.uniform(0.0, 10.0);
    const auto before = water_fill(demands, lo);
    const auto after = water_fill(demands, hi);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(after.grants[i], before.grants[i] - kTol);
    }
  }
}

TEST(LadderTest, QuantizeDownPicksTheLargestFittingRung) {
  EXPECT_DOUBLE_EQ(BandwidthAllocator::quantize_down(8.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::quantize_down(8.0, 7.0), 4.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::quantize_down(8.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::quantize_down(8.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::quantize_down(8.0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::quantize_down(0.0, 5.0), 0.0);
}

TEST(LadderTest, NextRungClimbsOneStepAtATime) {
  EXPECT_DOUBLE_EQ(BandwidthAllocator::next_rung_gbps(8.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::next_rung_gbps(8.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::next_rung_gbps(8.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::next_rung_gbps(8.0, 4.0), 8.0);
  EXPECT_DOUBLE_EQ(BandwidthAllocator::next_rung_gbps(8.0, 8.0), 0.0);
}

TEST(AllocationPlanTest, StrictLadderIsAnIdentityEvenUnderOversubscription) {
  BandwidthAllocator allocator;  // default policy: kStrictLadder
  const std::vector<AllocChain> chains{
      make_chain(0, 8.0, PriorityClass::kHipri, {{0, 1.0}}),
      make_chain(1, 8.0, PriorityClass::kLopri, {{0, 1.0}}),
  };
  const std::vector<AllocResource> resources{{4.0}};  // wildly oversubscribed
  const auto plan = allocator.plan(chains, resources);
  EXPECT_DOUBLE_EQ(plan.target_gbps[0], 8.0);
  EXPECT_DOUBLE_EQ(plan.target_gbps[1], 8.0);
  EXPECT_EQ(plan.fill_iterations, 0u);
  EXPECT_EQ(plan.lopri_demotions, 0u);
}

TEST(AllocationPlanTest, WaterFillSharesAContendedLinkFairly) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kWaterFill);
  const std::vector<AllocChain> chains{
      make_chain(0, 8.0, PriorityClass::kHipri, {{0, 1.0}}),
      make_chain(1, 8.0, PriorityClass::kHipri, {{0, 1.0}}),
      make_chain(2, 8.0, PriorityClass::kHipri, {{0, 1.0}}),
  };
  const std::vector<AllocResource> resources{{12.0}};
  const auto plan = allocator.plan(chains, resources);
  // Continuous shares are 4 each; 4 is the half rung, so quantization is
  // exact and nothing is left to climb.
  for (double t : plan.target_gbps) EXPECT_DOUBLE_EQ(t, 4.0);
}

TEST(AllocationPlanTest, UncontendedChainsAreGrantedInFull) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kWaterFill);
  const std::vector<AllocChain> chains{
      make_chain(0, 6.0, PriorityClass::kHipri, {}),  // no resources: free
      make_chain(1, 2.0, PriorityClass::kLopri, {{0, 1.0}}),
  };
  const std::vector<AllocResource> resources{{2.0}};
  const auto plan = allocator.plan(chains, resources);
  EXPECT_DOUBLE_EQ(plan.target_gbps[0], 6.0);
  EXPECT_DOUBLE_EQ(plan.target_gbps[1], 2.0);
}

/// Random multi-resource instance shared by the plan() property tests.
struct RandomInstance {
  std::vector<AllocChain> chains;
  std::vector<AllocResource> resources;
};

RandomInstance random_instance(Rng& rng, bool mixed_classes) {
  RandomInstance inst;
  const std::size_t r = 1 + rng.uniform_index(4);
  for (std::size_t i = 0; i < r; ++i) {
    inst.resources.push_back(AllocResource{rng.uniform(1.0, 24.0)});
  }
  const std::size_t n = 1 + rng.uniform_index(6);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<std::uint32_t, double>> uses;
    for (std::uint32_t res = 0; res < r; ++res) {
      if (rng.bernoulli(0.6)) uses.emplace_back(res, rng.bernoulli(0.3) ? 2.0 : 1.0);
    }
    if (uses.empty()) uses.emplace_back(static_cast<std::uint32_t>(rng.uniform_index(r)), 1.0);
    const auto cls = mixed_classes && rng.bernoulli(0.5) ? PriorityClass::kLopri
                                                         : PriorityClass::kHipri;
    inst.chains.push_back(
        make_chain(static_cast<std::uint32_t>(i), rng.uniform(0.5, 10.0), cls, std::move(uses)));
  }
  return inst;
}

void expect_feasible_rung_plan(const RandomInstance& inst, const AllocationPlan& plan) {
  std::vector<double> used(inst.resources.size(), 0.0);
  for (std::size_t i = 0; i < inst.chains.size(); ++i) {
    const auto& chain = inst.chains[i];
    EXPECT_TRUE(is_rung(chain.demand_gbps, plan.target_gbps[i]))
        << plan.target_gbps[i] << " is not a rung of " << chain.demand_gbps;
    EXPECT_LE(plan.target_gbps[i], chain.demand_gbps + kTol);
    for (const auto& [res, coeff] : chain.uses) used[res] += coeff * plan.target_gbps[i];
  }
  for (std::size_t res = 0; res < inst.resources.size(); ++res) {
    EXPECT_LE(used[res], inst.resources[res].capacity_gbps + kTol) << "resource " << res;
  }
}

// Work conservation: no chain may sit below a rung its resources could
// carry — exactly the invariant StateAuditor re-derives from live state.
void expect_work_conserving(const RandomInstance& inst, const AllocationPlan& plan) {
  std::vector<double> used(inst.resources.size(), 0.0);
  for (std::size_t i = 0; i < inst.chains.size(); ++i) {
    for (const auto& [res, coeff] : inst.chains[i].uses) used[res] += coeff * plan.target_gbps[i];
  }
  for (std::size_t i = 0; i < inst.chains.size(); ++i) {
    const auto& chain = inst.chains[i];
    const double next = BandwidthAllocator::next_rung_gbps(chain.demand_gbps, plan.target_gbps[i]);
    if (next <= 0) continue;  // already at full demand
    const double add = next - plan.target_gbps[i];
    bool blocked = false;
    for (const auto& [res, coeff] : chain.uses) {
      if (used[res] + coeff * add > inst.resources[res].capacity_gbps + kTol) {
        blocked = true;
        break;
      }
    }
    EXPECT_TRUE(blocked) << "chain " << i << " is short at " << plan.target_gbps[i]
                         << " yet every resource could carry its next rung";
  }
}

TEST(AllocationPlanTest, WaterFillPlansAreFeasibleRungsAndWorkConserving) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kWaterFill);
  Rng rng(0x5eed0003);
  for (int trial = 0; trial < 200; ++trial) {
    ALVC_TRACE_SEED(trial);
    const auto inst = random_instance(rng, /*mixed_classes=*/false);
    const auto plan = allocator.plan(inst.chains, inst.resources);
    expect_feasible_rung_plan(inst, plan);
    expect_work_conserving(inst, plan);
  }
}

TEST(AllocationPlanTest, PriorityDowngradePlansAreFeasibleRungsAndWorkConserving) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kPriorityDowngrade);
  Rng rng(0x5eed0004);
  for (int trial = 0; trial < 200; ++trial) {
    ALVC_TRACE_SEED(trial);
    const auto inst = random_instance(rng, /*mixed_classes=*/true);
    const auto plan = allocator.plan(inst.chains, inst.resources);
    expect_feasible_rung_plan(inst, plan);
    expect_work_conserving(inst, plan);
  }
}

// Priority-feasibility: any HIPRI chain short of its demand must be blocked
// even with every LOPRI grant excluded from the usage.
TEST(AllocationPlanTest, PriorityDowngradeNeverLeavesHipriBlockedByLopri) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kPriorityDowngrade);
  Rng rng(0x5eed0005);
  for (int trial = 0; trial < 300; ++trial) {
    ALVC_TRACE_SEED(trial);
    const auto inst = random_instance(rng, /*mixed_classes=*/true);
    const auto plan = allocator.plan(inst.chains, inst.resources);

    std::vector<double> used_hipri(inst.resources.size(), 0.0);
    for (std::size_t i = 0; i < inst.chains.size(); ++i) {
      if (inst.chains[i].cls != PriorityClass::kHipri) continue;
      for (const auto& [res, coeff] : inst.chains[i].uses) {
        used_hipri[res] += coeff * plan.target_gbps[i];
      }
    }
    for (std::size_t i = 0; i < inst.chains.size(); ++i) {
      const auto& chain = inst.chains[i];
      if (chain.cls != PriorityClass::kHipri) continue;
      const double next =
          BandwidthAllocator::next_rung_gbps(chain.demand_gbps, plan.target_gbps[i]);
      if (next <= 0) continue;
      const double add = next - plan.target_gbps[i];
      bool blocked_without_lopri = false;
      for (const auto& [res, coeff] : chain.uses) {
        if (used_hipri[res] + coeff * add > inst.resources[res].capacity_gbps + kTol) {
          blocked_without_lopri = true;
          break;
        }
      }
      EXPECT_TRUE(blocked_without_lopri)
          << "HIPRI chain " << i << " is short while LOPRI holds usable capacity";
    }
  }
}

// HIPRI dominance on a single shared resource with equal demands: no LOPRI
// chain ever ends above any HIPRI chain.
TEST(AllocationPlanTest, HipriDominatesLopriAtEqualDemands) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kPriorityDowngrade);
  Rng rng(0x5eed0006);
  for (int trial = 0; trial < 200; ++trial) {
    ALVC_TRACE_SEED(trial);
    const std::size_t n_hipri = 1 + rng.uniform_index(3);
    const std::size_t n_lopri = 1 + rng.uniform_index(3);
    const double demand = rng.uniform(1.0, 8.0);
    std::vector<AllocChain> chains;
    for (std::size_t i = 0; i < n_hipri + n_lopri; ++i) {
      chains.push_back(make_chain(static_cast<std::uint32_t>(i), demand,
                                  i < n_hipri ? PriorityClass::kHipri : PriorityClass::kLopri,
                                  {{0, 1.0}}));
    }
    const std::vector<AllocResource> resources{
        {rng.uniform(0.0, demand * static_cast<double>(n_hipri + n_lopri))}};
    const auto plan = allocator.plan(chains, resources);
    double min_hipri = demand;
    double max_lopri = 0;
    for (std::size_t i = 0; i < chains.size(); ++i) {
      if (i < n_hipri) {
        min_hipri = std::min(min_hipri, plan.target_gbps[i]);
      } else {
        max_lopri = std::max(max_lopri, plan.target_gbps[i]);
      }
    }
    EXPECT_GE(min_hipri, max_lopri - kTol);
  }
}

TEST(AllocationPlanTest, PriorityDowngradeStarvesLopriBeforeTouchingHipri) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kPriorityDowngrade);
  const std::vector<AllocChain> chains{
      make_chain(0, 8.0, PriorityClass::kHipri, {{0, 1.0}}),
      make_chain(1, 8.0, PriorityClass::kLopri, {{0, 1.0}}),
  };
  // Capacity fits exactly one full demand: HIPRI takes it all.
  const std::vector<AllocResource> one_demand{{8.0}};
  const auto tight = allocator.plan(chains, one_demand);
  EXPECT_DOUBLE_EQ(tight.target_gbps[0], 8.0);
  EXPECT_DOUBLE_EQ(tight.target_gbps[1], 0.0);
  // With slack beyond the HIPRI demand, LOPRI picks up the residual rung.
  const std::vector<AllocResource> with_slack{{12.0}};
  const auto slack = allocator.plan(chains, with_slack);
  EXPECT_DOUBLE_EQ(slack.target_gbps[0], 8.0);
  EXPECT_DOUBLE_EQ(slack.target_gbps[1], 4.0);
}

// A hand-built instance where the shedding loop actually fires: the LOPRI
// rung sits on a resource that blocks a quantization-stranded HIPRI.
TEST(AllocationPlanTest, SheddingDemotesLopriOnABlockingResource) {
  BandwidthAllocator allocator;
  allocator.set_policy(AllocationPolicy::kPriorityDowngrade);
  const std::vector<AllocChain> chains{
      make_chain(0, 8.0, PriorityClass::kHipri, {{0, 1.0}}),
      make_chain(1, 8.0, PriorityClass::kHipri, {{0, 1.0}, {1, 1.0}}),
      make_chain(2, 8.0, PriorityClass::kLopri, {{1, 1.0}}),
  };
  const std::vector<AllocResource> resources{{13.0}, {8.0}};
  const auto plan = allocator.plan(chains, resources);
  // Chain 0 climbs into chain 1's quantization slack on resource 0; chain 1
  // is left short and blocked on both resources, so the LOPRI rung on
  // resource 1 is shed — and may climb back only after the loop proves the
  // real blocker is resource 0, which carries no LOPRI at all.
  EXPECT_DOUBLE_EQ(plan.target_gbps[0], 8.0);
  EXPECT_DOUBLE_EQ(plan.target_gbps[1], 4.0);
  EXPECT_DOUBLE_EQ(plan.target_gbps[2], 4.0);
  EXPECT_GE(plan.lopri_demotions, 1u);
}

}  // namespace
}  // namespace alvc::orchestrator
