// kStrictLadder differential: with the QoS allocator compiled in, the
// default policy must preserve the legacy fault/recovery behavior
// bit-for-bit. Twin data centers run the same 20-seed fault schedules the
// PR-2 chaos soak uses — one untouched (seed semantics), one with the
// policy set explicitly, every chain tagged LOPRI, and the ToR budget knob
// moved — and the full per-chain state must stay identical after every
// single event. Priority metadata and allocator knobs are inert under
// strict; only kWaterFill / kPriorityDowngrade may change behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/alvc.h"
#include "faults/fault_injector.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::orchestrator {
namespace {

using alvc::faults::FaultEvent;
using alvc::faults::FaultInjector;
using alvc::faults::FaultScheduleParams;
using alvc::nfv::PriorityClass;
using alvc::nfv::VnfType;
using alvc::util::NfcId;

constexpr std::uint64_t kSeeds = 20;

core::DataCenter make_dc(std::uint64_t seed, bool variant) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  auto clusters = dc.build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  if (variant) {
    // Everything here must be a no-op under the strict policy.
    dc.orchestrator().set_allocation_policy(AllocationPolicy::kStrictLadder);
    dc.orchestrator().set_tor_budget_factor(0.125);
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    if (variant) spec.priority = PriorityClass::kLopri;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    ALVC_IGNORE_STATUS(dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical),
                       "warm-up: capacity conflicts just mean fewer live chains");
  }
  return dc;
}

std::vector<FaultEvent> make_schedule(const core::DataCenter& dc, std::uint64_t seed) {
  FaultScheduleParams params;
  params.ops = {.mtbf_s = 35, .mttr_s = 7};
  params.tor = {.mtbf_s = 55, .mttr_s = 6};
  params.server = {.mtbf_s = 45, .mttr_s = 5};
  params.link = {.mtbf_s = 40, .mttr_s = 6};
  params.horizon_s = 40;
  params.seed = seed;
  auto events = FaultInjector::generate(dc.topology(), params);
  const auto* vc0 = dc.clusters().clusters().front();
  if (!vc0->layer.opss.empty()) {
    auto scripted = FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
    events.insert(events.end(), scripted.begin(), scripted.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time_s < b.time_s; });
  return events;
}

void expect_identical(const NetworkOrchestrator& control, const NetworkOrchestrator& variant) {
  std::vector<NfcId> ids;
  for (const ProvisionedChain* chain : control.chains()) ids.push_back(chain->record.id);
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(control.chain_count(), variant.chain_count());
  for (NfcId id : ids) {
    SCOPED_TRACE(::testing::Message() << "chain " << id.value());
    const ProvisionedChain* a = control.chain(id);
    const ProvisionedChain* b = variant.chain(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->route.vertices, b->route.vertices);
    EXPECT_EQ(a->route.legs, b->route.legs);
    EXPECT_EQ(a->placement.hosts, b->placement.hosts);
    EXPECT_EQ(a->flow_rules, b->flow_rules);
    EXPECT_DOUBLE_EQ(a->reserved_gbps, b->reserved_gbps);
    EXPECT_EQ(a->degraded, b->degraded);
    EXPECT_EQ(a->degraded_reason, b->degraded_reason);
    ASSERT_EQ(a->instances.size(), b->instances.size());
    for (std::size_t i = 0; i < a->instances.size(); ++i) {
      EXPECT_EQ(a->instances[i].valid(), b->instances[i].valid());
    }
  }
  const OrchestratorStats& sa = control.stats();
  const OrchestratorStats& sb = variant.stats();
  EXPECT_EQ(sa.chains_provisioned, sb.chains_provisioned);
  EXPECT_EQ(sa.chains_repaired, sb.chains_repaired);
  EXPECT_EQ(sa.chains_lost, sb.chains_lost);
  EXPECT_EQ(sa.chains_degraded, sb.chains_degraded);
  EXPECT_EQ(sa.chains_restored, sb.chains_restored);
  EXPECT_EQ(sa.chains_admitted_downgraded, 0u);
  EXPECT_EQ(sb.chains_admitted_downgraded, 0u);
  EXPECT_EQ(sb.alloc_rebalances, 0u) << "strict policy must never rebalance";
  EXPECT_EQ(sb.alloc_downgrades, 0u);
  EXPECT_EQ(sb.alloc_restores, 0u);
  EXPECT_EQ(control.retry_queue_size(), variant.retry_queue_size());
  EXPECT_EQ(control.control_log().events().size(), variant.control_log().events().size());
}

TEST(StrictLadderDifferentialTest, FaultScheduleReplayIsByteIdenticalAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ALVC_TRACE_SEED(seed);
    auto control = make_dc(seed, /*variant=*/false);
    auto variant = make_dc(seed, /*variant=*/true);
    ASSERT_FALSE(control.orchestrator().chains().empty());
    expect_identical(control.orchestrator(), variant.orchestrator());

    const auto events = make_schedule(control, seed);
    ASSERT_FALSE(events.empty());
    for (const FaultEvent& event : events) {
      const auto ra = alvc::faults::apply_fault(control.orchestrator(), event);
      const auto rb = alvc::faults::apply_fault(variant.orchestrator(), event);
      ASSERT_EQ(ra.has_value(), rb.has_value());
      if (ra.has_value()) EXPECT_EQ(*ra, *rb);
      expect_identical(control.orchestrator(), variant.orchestrator());
      if (::testing::Test::HasFailure()) {
        FAIL() << "state diverged at t=" << event.time_s << " " << to_string(event.kind)
               << (event.failure ? " failure" : " recovery") << " id=" << event.id;
      }
    }
  }
}

}  // namespace
}  // namespace alvc::orchestrator
