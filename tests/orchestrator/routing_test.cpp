#include "orchestrator/routing.h"

#include <gtest/gtest.h>

#include "support/fixtures.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostRef;
using alvc::test::ClusterFixture;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::TorId;

TEST(ChainRouterTest, AttachVertices) {
  ClusterFixture f;
  ChainRouter router(f.topo);
  // Server 0 is on ToR 0 -> tor vertex 0; OPS 2 -> vertex tor_count + 2.
  EXPECT_EQ(router.attach_vertex(HostRef{ServerId{0}}), f.topo.tor_vertex(TorId{0}));
  EXPECT_EQ(router.attach_vertex(HostRef{OpsId{2}}), f.topo.ops_vertex(OpsId{2}));
}

TEST(ChainRouterTest, RouteVisitsHostsInOrder) {
  ClusterFixture f;
  ChainRouter router(f.topo);
  const std::vector<HostRef> hosts{OpsId{0}, OpsId{2}};
  const auto route = router.route(f.cluster(), TorId{0}, TorId{1}, hosts);
  ASSERT_TRUE(route.has_value()) << route.error().to_string();
  // Legs: T0 -> O0, O0 -> O2, O2 -> T1.
  ASSERT_EQ(route->legs.size(), 3u);
  EXPECT_EQ(route->legs.front().front(), f.topo.tor_vertex(TorId{0}));
  EXPECT_EQ(route->legs.back().back(), f.topo.tor_vertex(TorId{1}));
  EXPECT_FALSE(route->vertices.empty());
  EXPECT_EQ(route->vertices.front(), f.topo.tor_vertex(TorId{0}));
  EXPECT_EQ(route->vertices.back(), f.topo.tor_vertex(TorId{1}));
  EXPECT_EQ(route->conversions.mid_chain, 0u);  // all-optical hosts
  EXPECT_GT(route->optical_hops, 0u);
}

TEST(ChainRouterTest, WalkIsContiguousInSwitchGraph) {
  ClusterFixture f;
  ChainRouter router(f.topo);
  const std::vector<HostRef> hosts{ServerId{0}, OpsId{2}, ServerId{3}};
  const auto route = router.route(f.cluster(), TorId{0}, TorId{1}, hosts);
  ASSERT_TRUE(route.has_value());
  const auto& g = f.topo.switch_graph();
  for (std::size_t i = 0; i + 1 < route->vertices.size(); ++i) {
    EXPECT_TRUE(g.has_edge(route->vertices[i], route->vertices[i + 1]))
        << "hop " << route->vertices[i] << " -> " << route->vertices[i + 1];
  }
  EXPECT_EQ(route->conversions.mid_chain, 2u);  // two electronic excursions
}

TEST(ChainRouterTest, SameVertexLegCollapses) {
  ClusterFixture f;
  ChainRouter router(f.topo);
  // Two VNFs on servers of the same rack: both attach at ToR0.
  const std::vector<HostRef> hosts{ServerId{0}, ServerId{1}};
  const auto route = router.route(f.cluster(), TorId{0}, TorId{1}, hosts);
  ASSERT_TRUE(route.has_value());
  // First legs are trivial (T0 -> T0); walk still starts at T0 once.
  EXPECT_EQ(route->vertices.front(), f.topo.tor_vertex(TorId{0}));
  std::size_t t0_occurrences = 0;
  for (std::size_t v : route->vertices) {
    if (v == f.topo.tor_vertex(TorId{0})) ++t0_occurrences;
  }
  EXPECT_EQ(t0_occurrences, 1u);
}

TEST(ChainRouterTest, StaysInsideSlice) {
  ClusterFixture f;
  ChainRouter router(f.topo);
  const std::vector<HostRef> hosts{OpsId{0}};
  const auto route = router.route(f.cluster(), TorId{0}, TorId{1}, hosts);
  ASSERT_TRUE(route.has_value());
  const auto& layer = f.cluster().layer;
  for (std::size_t v : route->vertices) {
    if (f.topo.is_ops_vertex(v)) {
      EXPECT_TRUE(layer.contains_ops(f.topo.vertex_to_ops(v)))
          << "route used OPS outside the AL";
    } else {
      EXPECT_TRUE(layer.contains_tor(f.topo.vertex_to_tor(v)));
    }
  }
}

TEST(ChainRouterTest, InfeasibleWhenSliceDisconnected) {
  // A cluster whose AL cannot reach the egress ToR.
  alvc::topology::DataCenterTopology topo;
  const auto o0 = topo.add_ops();
  const auto o1 = topo.add_ops();  // not in the AL, no path allowed through it
  const auto t0 = topo.add_tor();
  const auto t1 = topo.add_tor();
  topo.connect_tor_ops(t0, o0);
  topo.connect_tor_ops(t1, o1);
  const auto s0 = topo.add_server(t0, {});
  topo.add_vm(s0, alvc::util::ServiceId{0});
  alvc::cluster::VirtualCluster vc;
  vc.id = alvc::util::ClusterId{0};
  vc.layer.tors = {t0, t1};
  vc.layer.opss = {o0};  // o1 deliberately excluded
  ChainRouter router(topo);
  const std::vector<HostRef> hosts{OpsId{0}};
  const auto route = router.route(vc, t0, t1, hosts);
  ASSERT_FALSE(route.has_value());
  EXPECT_EQ(route.error().code, ErrorCode::kInfeasible);
}

TEST(ChainRouterTest, HopDomainSplit) {
  ClusterFixture f;
  ChainRouter router(f.topo);
  const std::vector<HostRef> hosts{OpsId{0}, OpsId{2}};
  const auto route = router.route(f.cluster(), TorId{0}, TorId{1}, hosts);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->total_hops(), route->optical_hops + route->electronic_hops);
  EXPECT_EQ(route->total_hops() + 1, route->vertices.size());
}

}  // namespace
}  // namespace alvc::orchestrator
