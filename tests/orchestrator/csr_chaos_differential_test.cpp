// Orchestrator-level differential for the CSR graph core: a provisioned
// data center runs the PR-5 seeded fault workload, and after EVERY event
// each live chain's route is recomputed twice — once through the
// production router (CSR adjacency + stamped-scratch BFS) and once through
// route_via() with a leg source backed by the preserved legacy BFS
// (std::queue frontier over per-vertex adjacency vectors, membership via
// the same slice set). The two routes must be bit-identical: same leg
// paths, same concatenated walk, same hop split, same conversion counts,
// and error parity when a leg is infeasible.
//
// This is the twin of tests/graph/csr_differential_test.cpp one layer up:
// instead of random graphs, the adjacency under test is the real switch
// graph as chaos reshapes it (failed links and switches dropped, repairs
// re-adding them), with the slice restriction applied the way routing
// actually applies it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/alvc.h"
#include "faults/fault_injector.h"
#include "graph/scratch.h"
#include "graph/shortest_path.h"
#include "orchestrator/routing.h"
#include "support/fixtures.h"
#include "support/legacy_graph.h"
#include "util/error.h"

namespace alvc::orchestrator {
namespace {

using alvc::faults::apply_fault;
using alvc::faults::FaultInjector;
using alvc::faults::FaultScheduleParams;
using alvc::util::Error;
using alvc::util::ErrorCode;
using nfv::VnfType;

constexpr std::uint64_t kSeeds = 20;

core::DataCenter make_provisioned_dc(std::uint64_t seed) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  core::DataCenter dc(config);
  auto clusters = dc.build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    spec.bandwidth_gbps = 1.0;
    spec.functions = {*dc.catalog().find_by_type(VnfType::kFirewall),
                      *dc.catalog().find_by_type(VnfType::kNat)};
    ALVC_IGNORE_STATUS(dc.provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical),
                       "warm-up: capacity conflicts just mean fewer live chains");
  }
  return dc;
}

struct DifferentialTally {
  std::size_t routes_compared = 0;
  std::size_t routes_feasible = 0;
  std::size_t routes_infeasible = 0;
};

/// Recomputes every live chain's route through the CSR router and through
/// the legacy-BFS leg source, on the CURRENT (chaos-reshaped) topology and
/// cluster layers, and requires exact agreement.
void expect_csr_matches_legacy_routing(const core::DataCenter& dc, DifferentialTally& tally) {
  const auto& topo = dc.topology();
  const ChainRouter router(topo);
  for (const ProvisionedChain* chain : dc.orchestrator().chains()) {
    if (chain->degraded) continue;  // parked chains may hold invalid host slots
    if (chain->graph.has_value()) continue;
    const auto* vc = dc.orchestrator().clusters().find(chain->cluster);
    ASSERT_NE(vc, nullptr);
    if (vc->layer.tors.empty()) continue;
    SCOPED_TRACE("chain " + std::to_string(chain->record.id.value()));
    const util::TorId ingress = vc->layer.tors.front();
    const util::TorId egress = vc->layer.tors.back();

    const auto csr_route = router.route(*vc, ingress, egress, chain->placement.hosts);

    // Legacy oracle: the same slice restriction (all stops as extras, the
    // way route() builds it), legs via the old std::queue BFS + extract.
    const auto stops = router.chain_stops(ingress, egress, chain->placement.hosts);
    alvc::graph::VertexSet allowed;
    routing_detail::slice_vertices(topo, *vc, stops, allowed);
    const auto filter = [&](std::size_t v) { return allowed.contains(v); };
    const auto legacy_route = router.route_via(
        *vc, ingress, egress, chain->placement.hosts,
        [&](std::size_t from, std::size_t to,
            std::size_t leg_index) -> util::Expected<std::vector<std::size_t>> {
          if (from == to) return std::vector<std::size_t>{from};
          const auto result = alvc::test::legacy::bfs(topo.switch_graph(), from, filter);
          auto path = alvc::graph::extract_path(result, to);
          if (!path) {
            return Error{ErrorCode::kInfeasible,
                         "no slice-internal path for leg " + std::to_string(leg_index)};
          }
          return std::move(*path);
        });

    ++tally.routes_compared;
    ASSERT_EQ(csr_route.has_value(), legacy_route.has_value())
        << "feasibility diverged between CSR and legacy routing";
    if (!csr_route.has_value()) {
      ++tally.routes_infeasible;
      continue;
    }
    ++tally.routes_feasible;
    EXPECT_EQ(csr_route->legs, legacy_route->legs);
    EXPECT_EQ(csr_route->vertices, legacy_route->vertices);
    EXPECT_EQ(csr_route->optical_hops, legacy_route->optical_hops);
    EXPECT_EQ(csr_route->electronic_hops, legacy_route->electronic_hops);
    EXPECT_EQ(csr_route->conversions.mid_chain, legacy_route->conversions.mid_chain);
    EXPECT_EQ(csr_route->conversions.endpoint, legacy_route->conversions.endpoint);
  }
}

TEST(CsrChaosDifferentialTest, CsrAndLegacyRoutingAgreeUnderChaosOver20Seeds) {
  DifferentialTally tally;
  std::uint64_t total_events = 0;

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    ALVC_TRACE_SEED(seed);
    auto dc = make_provisioned_dc(seed);
    ASSERT_FALSE(dc.orchestrator().chains().empty());
    expect_csr_matches_legacy_routing(dc, tally);

    FaultScheduleParams params;
    params.ops = {.mtbf_s = 30, .mttr_s = 6};
    params.tor = {.mtbf_s = 50, .mttr_s = 5};
    params.server = {.mtbf_s = 40, .mttr_s = 5};
    params.link = {.mtbf_s = 35, .mttr_s = 5};
    params.horizon_s = 35;
    params.seed = seed;
    const auto schedule = FaultInjector::generate(dc.topology(), params);
    ASSERT_FALSE(schedule.empty());

    for (const auto& event : schedule) {
      ++total_events;
      ALVC_IGNORE_STATUS(apply_fault(dc.orchestrator(), event),
                         "chaos event outcome is not under test here");
      expect_csr_matches_legacy_routing(dc, tally);
      if (HasFatalFailure() || HasNonfatalFailure()) {
        FAIL() << "first divergence at t=" << event.time_s << " "
               << alvc::faults::to_string(event.kind) << " id=" << event.id
               << (event.failure ? " failure" : " repair");
      }
    }
  }

  // Not vacuous: the differential must have compared real routes on
  // chaos-reshaped topologies, with the overwhelming majority feasible.
  EXPECT_GT(total_events, 200u);
  EXPECT_GT(tally.routes_compared, 400u);
  EXPECT_GT(tally.routes_feasible, 300u)
      << "legacy/CSR comparison almost never saw a feasible route";
}

}  // namespace
}  // namespace alvc::orchestrator
