// Load-balanced (k-shortest) routing: legs shift away from links that other
// reservations already loaded.
#include <gtest/gtest.h>

#include "orchestrator/bandwidth.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/routing.h"
#include "support/fixtures.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostRef;
using alvc::test::ClusterFixture;
using alvc::util::OpsId;
using alvc::util::TorId;

/// Two parallel optical rails between the slice's ToRs:
/// T0 - O0 - T1 and T0 - O1 - T1. Vertices: T0=0, T1=1, O0=2, O1=3.
struct RailsFixture {
  alvc::topology::DataCenterTopology topo;
  alvc::cluster::VirtualCluster vc;

  RailsFixture() {
    const auto o0 = topo.add_ops();
    const auto o1 = topo.add_ops();
    const auto t0 = topo.add_tor();
    const auto t1 = topo.add_tor();
    for (auto o : {o0, o1}) {
      topo.connect_tor_ops(t0, o);
      topo.connect_tor_ops(t1, o);
    }
    vc.id = alvc::util::ClusterId{0};
    vc.layer.tors = {t0, t1};
    vc.layer.opss = {o0, o1};
  }
};

TEST(BalancedRoutingTest, AvoidsReservedRail) {
  RailsFixture f;
  ChainRouter router(f.topo);
  BandwidthLedger ledger(f.topo);
  // Saturate the O0 rail: T0-O0 and O0-T1 hold 9 of 10 Gbps.
  const std::vector<std::size_t> rail0{f.topo.tor_vertex(TorId{0}), f.topo.ops_vertex(OpsId{0}),
                                       f.topo.tor_vertex(TorId{1})};
  ASSERT_TRUE(ledger.reserve_walk(rail0, 9.0).is_ok());

  const std::vector<HostRef> no_hosts;
  const auto balanced =
      router.route_balanced(f.vc, TorId{0}, TorId{1}, no_hosts, ledger, /*k=*/4);
  ASSERT_TRUE(balanced.has_value()) << balanced.error().to_string();
  // Must ride O1 (vertex 3), not the loaded O0 (vertex 2).
  const auto& walk = balanced->vertices;
  EXPECT_NE(std::find(walk.begin(), walk.end(), f.topo.ops_vertex(OpsId{1})), walk.end());
  EXPECT_EQ(std::find(walk.begin(), walk.end(), f.topo.ops_vertex(OpsId{0})), walk.end());
}

TEST(BalancedRoutingTest, UnloadedLedgerMatchesShortestLength) {
  RailsFixture f;
  ChainRouter router(f.topo);
  BandwidthLedger ledger(f.topo);
  const std::vector<HostRef> no_hosts;
  const auto plain = router.route(f.vc, TorId{0}, TorId{1}, no_hosts);
  const auto balanced = router.route_balanced(f.vc, TorId{0}, TorId{1}, no_hosts, ledger);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(balanced.has_value());
  EXPECT_EQ(balanced->total_hops(), plain->total_hops());
}

TEST(BalancedRoutingTest, InfeasibleOutsideSlice) {
  RailsFixture f;
  // Shrink the slice to exclude both OPSs: no path.
  f.vc.layer.opss.clear();
  ChainRouter router(f.topo);
  BandwidthLedger ledger(f.topo);
  const std::vector<HostRef> no_hosts;
  const auto balanced = router.route_balanced(f.vc, TorId{0}, TorId{1}, no_hosts, ledger);
  ASSERT_FALSE(balanced.has_value());
}

TEST(BalancedRoutingTest, OrchestratorFlagRoutesChains) {
  ClusterFixture f;
  NetworkOrchestrator orch(f.manager, f.catalog);
  orch.set_load_balanced_routing(true, 4);
  alvc::nfv::NfcSpec spec;
  spec.name = "balanced";
  spec.service = alvc::util::ServiceId{0};
  spec.bandwidth_gbps = 1.0;
  spec.functions = {*f.catalog.find_by_type(alvc::nfv::VnfType::kFirewall)};
  const GreedyOpticalPlacement placement;
  const auto id = orch.provision_chain(spec, placement);
  ASSERT_TRUE(id.has_value()) << id.error().to_string();
  EXPECT_TRUE(orch.check_isolation().empty());
  EXPECT_GT(orch.bandwidth().reserved_link_count(), 0u);
  ASSERT_TRUE(orch.teardown_chain(*id).is_ok());
  EXPECT_EQ(orch.bandwidth().reserved_link_count(), 0u);
}

}  // namespace
}  // namespace alvc::orchestrator
