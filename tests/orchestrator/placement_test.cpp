#include "orchestrator/placement.h"

#include <gtest/gtest.h>

#include "nfv/hosting.h"
#include "support/fixtures.h"

namespace alvc::orchestrator {
namespace {

using alvc::nfv::HostingPool;
using alvc::nfv::is_optical_host;
using alvc::nfv::NfcSpec;
using alvc::nfv::VnfType;
using alvc::test::ClusterFixture;
using alvc::util::ErrorCode;
using alvc::util::ServiceId;
using alvc::util::TenantId;

struct PlacementFixture : ClusterFixture {
  HostingPool pool{topo};
  PlacementContext context{.topo = &topo, .cluster = &cluster(), .catalog = &catalog, .pool = &pool};

  NfcSpec chain(std::initializer_list<VnfType> types, double bandwidth = 1.0) {
    NfcSpec spec;
    spec.tenant = TenantId{1};
    spec.name = "test-chain";
    spec.bandwidth_gbps = bandwidth;
    spec.service = ServiceId{0};
    for (auto t : types) spec.functions.push_back(*catalog.find_by_type(t));
    return spec;
  }
};

TEST(PlacementContextTest, SliceHostEnumeration) {
  PlacementFixture f;
  const auto optical = f.context.slice_optical_hosts();
  // The AL contains O0 and O2 (both optoelectronic) for this fixture.
  EXPECT_FALSE(optical.empty());
  for (auto o : optical) EXPECT_TRUE(f.topo.ops(o).optoelectronic);
  const auto electronic = f.context.slice_electronic_hosts();
  EXPECT_EQ(electronic.size(), 4u);  // both racks' servers
}

TEST(ElectronicOnlyPlacementTest, AllHostsElectronic) {
  PlacementFixture f;
  const auto spec = f.chain({VnfType::kFirewall, VnfType::kNat, VnfType::kLoadBalancer});
  const auto result = ElectronicOnlyPlacement{}.place(spec, f.context);
  ASSERT_TRUE(result.has_value()) << result.error().to_string();
  EXPECT_EQ(result->hosts.size(), 3u);
  EXPECT_EQ(result->optical_count, 0u);
  EXPECT_EQ(result->electronic_count, 3u);
  for (const auto& h : result->hosts) EXPECT_FALSE(is_optical_host(h));
  EXPECT_GE(result->conversions.mid_chain, 1u);
  EXPECT_TRUE(f.pool.is_consistent());
}

TEST(ElectronicOnlyPlacementTest, EmptyChainRejected) {
  PlacementFixture f;
  const auto spec = f.chain({});
  const auto result = ElectronicOnlyPlacement{}.place(spec, f.context);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(GreedyOpticalPlacementTest, LightFunctionsGoOptical) {
  PlacementFixture f;
  const auto spec = f.chain({VnfType::kFirewall, VnfType::kNat, VnfType::kSecurityGateway});
  const auto result = GreedyOpticalPlacement{}.place(spec, f.context);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->optical_count, 3u);
  EXPECT_EQ(result->conversions.mid_chain, 0u);
}

TEST(GreedyOpticalPlacementTest, HeavyFunctionsFallBackToElectronic) {
  PlacementFixture f;
  const auto spec = f.chain({VnfType::kFirewall, VnfType::kDeepPacketInspection});
  const auto result = GreedyOpticalPlacement{}.place(spec, f.context);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->optical_count, 1u);
  EXPECT_EQ(result->electronic_count, 1u);
  EXPECT_TRUE(is_optical_host(result->hosts[0]));
  EXPECT_FALSE(is_optical_host(result->hosts[1]));
  EXPECT_EQ(result->conversions.mid_chain, 1u);
}

TEST(GreedyOpticalPlacementTest, ElectronicOnlyVnfNeverOptical) {
  PlacementFixture f;
  const auto spec = f.chain({VnfType::kWanOptimizer});
  const auto result = GreedyOpticalPlacement{}.place(spec, f.context);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(is_optical_host(result->hosts[0]));
}

TEST(GreedyOpticalPlacementTest, OpticalCapacityExhaustionSpillsToServers) {
  PlacementFixture f;
  // Each OE router has 4 cores; sec-gw needs 2. Four of them exhaust both
  // routers; the fifth spills to a server.
  const auto spec = f.chain({VnfType::kSecurityGateway, VnfType::kSecurityGateway,
                             VnfType::kSecurityGateway, VnfType::kSecurityGateway,
                             VnfType::kSecurityGateway});
  const auto result = GreedyOpticalPlacement{}.place(spec, f.context);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->optical_count, 4u);
  EXPECT_EQ(result->electronic_count, 1u);
}

TEST(RandomPlacementTest, FeasibleAndDeterministicPerSeed) {
  PlacementFixture f1;
  PlacementFixture f2;
  const auto spec = f1.chain({VnfType::kFirewall, VnfType::kNat, VnfType::kProxy});
  const auto r1 = RandomPlacement{42}.place(spec, f1.context);
  const auto r2 = RandomPlacement{42}.place(spec, f2.context);
  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r1->hosts, r2->hosts);
  EXPECT_TRUE(f1.pool.is_consistent());
}

TEST(OeoMinimizingPlacementTest, MatchesAllOpticalWhenPossible) {
  PlacementFixture f;
  const auto spec = f.chain({VnfType::kFirewall, VnfType::kNat});
  const auto result = OeoMinimizingPlacement{}.place(spec, f.context);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->conversions.mid_chain, 0u);
  EXPECT_EQ(result->optical_count, 2u);
}

TEST(OeoMinimizingPlacementTest, GroupsElectronicFunctionsToMinimiseRuns) {
  PlacementFixture f;
  // DPI and IDS must be electronic; fw/nat can go optical. The minimum
  // conversion pattern hosts dpi+ids adjacently... they are adjacent here;
  // oeo-min must achieve exactly 1 excursion if both land on one server,
  // or 2 with distinct servers; never 3+.
  const auto spec = f.chain({VnfType::kFirewall, VnfType::kDeepPacketInspection,
                             VnfType::kIntrusionDetection, VnfType::kNat});
  const auto result = OeoMinimizingPlacement{}.place(spec, f.context);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->conversions.mid_chain, 2u);
  EXPECT_TRUE(is_optical_host(result->hosts[0]));
  EXPECT_TRUE(is_optical_host(result->hosts[3]));
}

TEST(OeoMinimizingPlacementTest, NeverWorseThanGreedy) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    PlacementFixture greedy_fix;
    PlacementFixture min_fix;
    // A mixed chain whose optimal pattern is nontrivial.
    const auto spec = greedy_fix.chain({VnfType::kSecurityGateway, VnfType::kDeepPacketInspection,
                                        VnfType::kSecurityGateway, VnfType::kCache,
                                        VnfType::kFirewall});
    const auto g = GreedyOpticalPlacement{}.place(spec, greedy_fix.context);
    const auto m = OeoMinimizingPlacement{}.place(spec, min_fix.context);
    ASSERT_TRUE(g.has_value());
    ASSERT_TRUE(m.has_value());
    EXPECT_LE(m->conversions.mid_chain, g->conversions.mid_chain) << "seed " << seed;
  }
}

TEST(OeoMinimizingPlacementTest, LongChainFallsBackGracefully) {
  PlacementFixture f;
  NfcSpec spec = f.chain({});
  for (int i = 0; i < 20; ++i) {
    spec.functions.push_back(*f.catalog.find_by_type(VnfType::kNat));
  }
  const OeoMinimizingPlacement placement{/*exhaustive_limit=*/8};
  const auto result = placement.place(spec, f.context);
  ASSERT_TRUE(result.has_value());  // falls back to greedy
  EXPECT_EQ(result->hosts.size(), 20u);
}

TEST(PlacementRollbackTest, FailedPlacementLeavesPoolUntouched) {
  PlacementFixture f;
  // Demand no slice host can satisfy: many DPIs exceed server count * caps?
  // Servers: 4 x 32 cores; DPI needs 8 -> 16 fit. Build an impossible chain
  // with 20 caches (32 GB mem each; servers have 128 GB -> 4 per server,
  // 16 total; 20 cannot fit).
  NfcSpec spec = f.chain({});
  for (int i = 0; i < 20; ++i) {
    spec.functions.push_back(*f.catalog.find_by_type(VnfType::kCache));
  }
  const auto before_server0 = f.pool.free_capacity(alvc::nfv::HostRef{alvc::util::ServerId{0}});
  const auto result = GreedyOpticalPlacement{}.place(spec, f.context);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInfeasible);
  const auto after_server0 = f.pool.free_capacity(alvc::nfv::HostRef{alvc::util::ServerId{0}});
  EXPECT_DOUBLE_EQ(before_server0.memory_gb, after_server0.memory_gb);
  EXPECT_TRUE(f.pool.is_consistent());
}

TEST(PlacementNamesTest, Names) {
  EXPECT_EQ(ElectronicOnlyPlacement{}.name(), "electronic-only");
  EXPECT_EQ(RandomPlacement{1}.name(), "random");
  EXPECT_EQ(GreedyOpticalPlacement{}.name(), "greedy-optical");
  EXPECT_EQ(OeoMinimizingPlacement{}.name(), "oeo-min");
}

}  // namespace
}  // namespace alvc::orchestrator
