// Sharded-vs-serial differential: the sharded cluster-agent control plane
// must be byte-identical to the serial path at every shard count, after
// every single fault event. Twin data centers replay the same 20-seed
// fault schedules the chaos soak uses — one serial control, one sharded
// variant per shard count in {1, 2, 4, 8} (threaded executor on the wider
// ones) — and the full per-chain state must match event for event. Odd
// seeds run under kWaterFill so the sharded rebalance snapshot path is
// exercised too (under the default strict ladder it is a no-op).
//
// ALVC_SHARD_DIFF_SEEDS=<n> caps the seed count (the CI scale-soak leg
// runs a reduced sweep; locally the full 20 is the default).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/alvc.h"
#include "faults/fault_injector.h"
#include "support/fixtures.h"
#include "util/error.h"
#include "util/executor.h"

namespace alvc::orchestrator {
namespace {

using alvc::faults::FaultEvent;
using alvc::faults::FaultInjector;
using alvc::faults::FaultScheduleParams;
using alvc::nfv::VnfType;
using alvc::util::NfcId;

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};

std::uint64_t seed_count() {
  if (const char* env = std::getenv("ALVC_SHARD_DIFF_SEEDS"); env != nullptr) {
    const unsigned long parsed = std::strtoul(env, nullptr, 10);
    if (parsed > 0) return parsed;
  }
  return 20;
}

// Heap-allocated: DataCenter's components hold pointers into each other,
// so instances must never be moved (the variants live in a vector).
std::unique_ptr<core::DataCenter> make_dc(std::uint64_t seed, bool water_fill) {
  core::DataCenterConfig config;
  config.topology.rack_count = 6;
  config.topology.servers_per_rack = 2;
  config.topology.vms_per_server = 2;
  config.topology.ops_count = 16;
  config.topology.tor_ops_degree = 6;
  config.topology.optoelectronic_fraction = 0.75;
  config.topology.service_count = 3;
  config.topology.seed = seed * 7 + 1;
  config.seed = seed;
  auto dc = std::make_unique<core::DataCenter>(config);
  auto clusters = dc->build_clusters();
  if (!clusters.has_value()) throw std::runtime_error(clusters.error().to_string());
  // Water-fill on both twins of odd seeds: with the default strict ladder
  // rebalance_bandwidth() is a no-op and the sharded snapshot path would
  // never run.
  if (water_fill) dc->orchestrator().set_allocation_policy(AllocationPolicy::kWaterFill);
  for (std::uint32_t s = 0; s < 3; ++s) {
    nfv::NfcSpec spec;
    spec.service = util::ServiceId{s};
    spec.name = "chain-" + std::to_string(s);
    // Water-fill seeds run near port capacity so the allocator actually
    // has contention to arbitrate; otherwise every rebalance is a no-op
    // and the sharded snapshot path would pass vacuously.
    spec.bandwidth_gbps = water_fill ? 6.0 : 1.0;
    spec.functions = {*dc->catalog().find_by_type(VnfType::kFirewall),
                      *dc->catalog().find_by_type(VnfType::kNat)};
    ALVC_IGNORE_STATUS(dc->provision_chain(spec, core::PlacementAlgorithm::kGreedyOptical),
                       "warm-up: capacity conflicts just mean fewer live chains");
  }
  return dc;
}

std::vector<FaultEvent> make_schedule(const core::DataCenter& dc, std::uint64_t seed) {
  FaultScheduleParams params;
  params.ops = {.mtbf_s = 35, .mttr_s = 7};
  params.tor = {.mtbf_s = 55, .mttr_s = 6};
  params.server = {.mtbf_s = 45, .mttr_s = 5};
  params.link = {.mtbf_s = 40, .mttr_s = 6};
  params.horizon_s = 40;
  params.seed = seed;
  auto events = FaultInjector::generate(dc.topology(), params);
  const auto* vc0 = dc.clusters().clusters().front();
  if (!vc0->layer.opss.empty()) {
    auto scripted = FaultInjector::whole_al(*vc0, 12.0, 8.0, 0.5);
    events.insert(events.end(), scripted.begin(), scripted.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time_s < b.time_s; });
  return events;
}

void expect_identical(const NetworkOrchestrator& control, const NetworkOrchestrator& variant) {
  std::vector<NfcId> ids;
  for (const ProvisionedChain* chain : control.chains()) ids.push_back(chain->record.id);
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(control.chain_count(), variant.chain_count());
  for (NfcId id : ids) {
    SCOPED_TRACE(::testing::Message() << "chain " << id.value());
    const ProvisionedChain* a = control.chain(id);
    const ProvisionedChain* b = variant.chain(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->route.vertices, b->route.vertices);
    EXPECT_EQ(a->route.legs, b->route.legs);
    EXPECT_EQ(a->placement.hosts, b->placement.hosts);
    EXPECT_EQ(a->flow_rules, b->flow_rules);
    EXPECT_DOUBLE_EQ(a->reserved_gbps, b->reserved_gbps);
    EXPECT_EQ(a->degraded, b->degraded);
    EXPECT_EQ(a->degraded_reason, b->degraded_reason);
    ASSERT_EQ(a->instances.size(), b->instances.size());
    for (std::size_t i = 0; i < a->instances.size(); ++i) {
      EXPECT_EQ(a->instances[i].valid(), b->instances[i].valid());
    }
  }
  const OrchestratorStats& sa = control.stats();
  const OrchestratorStats& sb = variant.stats();
  EXPECT_EQ(sa.chains_provisioned, sb.chains_provisioned);
  EXPECT_EQ(sa.chains_repaired, sb.chains_repaired);
  EXPECT_EQ(sa.chains_lost, sb.chains_lost);
  EXPECT_EQ(sa.chains_degraded, sb.chains_degraded);
  EXPECT_EQ(sa.chains_restored, sb.chains_restored);
  EXPECT_EQ(sa.alloc_rebalances, sb.alloc_rebalances);
  EXPECT_EQ(sa.alloc_downgrades, sb.alloc_downgrades);
  EXPECT_EQ(sa.alloc_restores, sb.alloc_restores);
  EXPECT_EQ(control.retry_queue_size(), variant.retry_queue_size());
  EXPECT_EQ(control.degraded_chain_count(), variant.degraded_chain_count());
  EXPECT_EQ(control.control_log().events().size(), variant.control_log().events().size());
}

TEST(ShardedDifferentialTest, FaultReplayIsByteIdenticalAtEveryShardCount) {
  const std::uint64_t seeds = seed_count();
  alvc::util::Executor exec(4);
  std::size_t total_degraded = 0;
  std::size_t water_fill_rebalances = 0;

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    ALVC_TRACE_SEED(seed);
    const bool water_fill = (seed % 2) == 1;
    auto control = make_dc(seed, water_fill);
    ASSERT_FALSE(control->orchestrator().chains().empty());

    std::vector<std::unique_ptr<core::DataCenter>> variants;
    variants.reserve(std::size(kShardCounts));
    for (const std::size_t shards : kShardCounts) {
      variants.push_back(make_dc(seed, water_fill));
      // Threaded fan-out on the wider counts, serial fan-out on the narrow
      // ones — results must not depend on the executor either way.
      variants.back()->orchestrator().set_sharding(shards, shards >= 4 ? &exec : nullptr);
      ASSERT_EQ(variants.back()->orchestrator().shard_count(), shards);
      expect_identical(control->orchestrator(), variants.back()->orchestrator());
    }

    const auto events = make_schedule(*control, seed);
    ASSERT_FALSE(events.empty());
    for (const FaultEvent& event : events) {
      const auto ra = alvc::faults::apply_fault(control->orchestrator(), event);
      for (std::size_t v = 0; v < variants.size(); ++v) {
        SCOPED_TRACE(::testing::Message() << "shards = " << kShardCounts[v]);
        const auto rb = alvc::faults::apply_fault(variants[v]->orchestrator(), event);
        ASSERT_EQ(ra.has_value(), rb.has_value());
        if (ra.has_value()) EXPECT_EQ(*ra, *rb);
        expect_identical(control->orchestrator(), variants[v]->orchestrator());
        if (::testing::Test::HasFailure()) {
          FAIL() << "state diverged at t=" << event.time_s << " " << to_string(event.kind)
                 << (event.failure ? " failure" : " recovery") << " id=" << event.id;
        }
      }
    }

    // Cache traffic is shard-count invariant: every sharded variant started
    // cold at set_sharding and saw the same lookups, so the aggregated
    // counters must agree across {1, 2, 4, 8}.
    const RouteCacheStats base = variants.front()->orchestrator().aggregate_route_cache_stats();
    for (std::size_t v = 1; v < variants.size(); ++v) {
      SCOPED_TRACE(::testing::Message() << "shards = " << kShardCounts[v]);
      const RouteCacheStats stats = variants[v]->orchestrator().aggregate_route_cache_stats();
      EXPECT_EQ(stats.hits, base.hits);
      EXPECT_EQ(stats.revalidations, base.revalidations);
      EXPECT_EQ(stats.misses, base.misses);
      EXPECT_EQ(stats.stale_evictions, base.stale_evictions);
      EXPECT_EQ(stats.bypasses, base.bypasses);
      EXPECT_EQ(stats.invalidations, base.invalidations);
    }
    EXPECT_GT(variants.back()->orchestrator().aggregate_route_cache_stats().lookups(), 0u)
        << "the sharded route caches never served a lookup — vacuous run";

    total_degraded += control->orchestrator().stats().chains_degraded;
    if (water_fill) water_fill_rebalances += control->orchestrator().stats().alloc_rebalances;
  }

  // The differential must exercise the machinery it certifies.
  EXPECT_GT(total_degraded, 0u) << "no chain ever entered degraded mode";
  EXPECT_GT(water_fill_rebalances, 0u)
      << "the water-fill seeds never rebalanced — the sharded snapshot path went untested";
}

}  // namespace
}  // namespace alvc::orchestrator
