#include "nfv/forwarding_graph.h"

#include <gtest/gtest.h>

namespace alvc::nfv {
namespace {

ForwardingGraph diamond() {
  // 0 -> {1, 2} -> 3 (load balancer fanning out and rejoining).
  ForwardingGraph g;
  for (int i = 0; i < 4; ++i) g.add_node(VnfId{static_cast<VnfId::value_type>(i)});
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(ForwardingGraphTest, LinearFactory) {
  const std::vector<VnfId> fns{VnfId{5}, VnfId{7}, VnfId{9}};
  const auto g = ForwardingGraph::linear(fns);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.entry(), 0u);
  EXPECT_EQ(g.exits(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(g.topological_order(), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(g.function(1), VnfId{7});
}

TEST(ForwardingGraphTest, DiamondIsValid) {
  const auto g = diamond();
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.entry(), 0u);
  EXPECT_EQ(g.exits(), (std::vector<std::size_t>{3}));
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 3u);
}

TEST(ForwardingGraphTest, MultipleExits) {
  ForwardingGraph g;
  for (int i = 0; i < 3; ++i) g.add_node(VnfId{0});
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.validate().is_ok());
  EXPECT_EQ(g.exits(), (std::vector<std::size_t>{1, 2}));
}

TEST(ForwardingGraphTest, RejectsEmpty) {
  ForwardingGraph g;
  EXPECT_FALSE(g.validate().is_ok());
}

TEST(ForwardingGraphTest, RejectsCycle) {
  ForwardingGraph g;
  for (int i = 0; i < 3; ++i) g.add_node(VnfId{0});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);  // cycle 1 <-> 2
  EXPECT_FALSE(g.validate().is_ok());
}

TEST(ForwardingGraphTest, RejectsSelfLoopAndDuplicateEdge) {
  ForwardingGraph g;
  g.add_node(VnfId{0});
  g.add_node(VnfId{1});
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.validate().is_ok());

  ForwardingGraph h;
  h.add_node(VnfId{0});
  h.add_node(VnfId{1});
  h.add_edge(0, 1);
  h.add_edge(1, 1);
  EXPECT_FALSE(h.validate().is_ok());
}

TEST(ForwardingGraphTest, RejectsTwoEntries) {
  ForwardingGraph g;
  for (int i = 0; i < 3; ++i) g.add_node(VnfId{0});
  g.add_edge(0, 2);
  g.add_edge(1, 2);  // nodes 0 and 1 are both entries
  EXPECT_FALSE(g.validate().is_ok());
}

TEST(ForwardingGraphTest, RejectsUnreachableNode) {
  // A single-entry graph with an unreachable cycle component.
  ForwardingGraph g;
  for (int i = 0; i < 3; ++i) g.add_node(VnfId{0});
  g.add_edge(1, 2);
  g.add_edge(2, 1);  // 1 and 2 form a cycle detached from entry 0
  EXPECT_FALSE(g.validate().is_ok());
}

TEST(ForwardingGraphTest, EdgeBoundsChecked) {
  ForwardingGraph g;
  g.add_node(VnfId{0});
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
}

TEST(ForwardingGraphTest, TopologicalOrderRespectsEdges) {
  const auto g = diamond();
  const auto order = g.topological_order();
  std::vector<std::size_t> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& edge : g.edges()) {
    EXPECT_LT(position[edge.from], position[edge.to]);
  }
}

TEST(GraphNfcSpecTest, ToLinearSpecFollowsTopologicalOrder) {
  GraphNfcSpec spec;
  spec.name = "diamond";
  spec.bandwidth_gbps = 2.0;
  spec.service = alvc::util::ServiceId{1};
  spec.graph = diamond();
  const auto linear = spec.to_linear_spec();
  EXPECT_EQ(linear.name, "diamond");
  EXPECT_DOUBLE_EQ(linear.bandwidth_gbps, 2.0);
  ASSERT_EQ(linear.functions.size(), 4u);
  EXPECT_EQ(linear.functions.front(), VnfId{0});
  EXPECT_EQ(linear.functions.back(), VnfId{3});
}

}  // namespace
}  // namespace alvc::nfv
