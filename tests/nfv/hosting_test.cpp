#include "nfv/hosting.h"

#include <gtest/gtest.h>

#include "topology/builder.h"

namespace alvc::nfv {
namespace {

using alvc::topology::DataCenterTopology;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::ServiceId;

DataCenterTopology hosting_dc() {
  DataCenterTopology topo;
  topo.add_ops(true, Resources{.cpu_cores = 4, .memory_gb = 8, .storage_gb = 32});  // OE router
  topo.add_ops();                                                                   // plain OPS
  const auto t = topo.add_tor();
  topo.connect_tor_ops(t, OpsId{0});
  topo.connect_tor_ops(t, OpsId{1});
  topo.add_server(t, Resources{.cpu_cores = 16, .memory_gb = 64, .storage_gb = 512});
  return topo;
}

TEST(HostingPoolTest, NominalCapacities) {
  const auto topo = hosting_dc();
  HostingPool pool(topo);
  EXPECT_DOUBLE_EQ(pool.free_capacity(HostRef{ServerId{0}}).cpu_cores, 16);
  EXPECT_DOUBLE_EQ(pool.free_capacity(HostRef{OpsId{0}}).cpu_cores, 4);
  EXPECT_DOUBLE_EQ(pool.free_capacity(HostRef{OpsId{1}}).cpu_cores, 0);
}

TEST(HostingPoolTest, PlainOpsNeverHosts) {
  const auto topo = hosting_dc();
  HostingPool pool(topo);
  const Resources tiny{.cpu_cores = 0.1, .memory_gb = 0.1, .storage_gb = 0.1};
  EXPECT_FALSE(pool.fits(HostRef{OpsId{1}}, tiny));
  EXPECT_TRUE(pool.fits(HostRef{OpsId{0}}, tiny));
}

TEST(HostingPoolTest, ReserveAndRelease) {
  const auto topo = hosting_dc();
  HostingPool pool(topo);
  const Resources demand{.cpu_cores = 2, .memory_gb = 4, .storage_gb = 8};
  ASSERT_TRUE(pool.reserve(HostRef{OpsId{0}}, demand).is_ok());
  EXPECT_DOUBLE_EQ(pool.free_capacity(HostRef{OpsId{0}}).cpu_cores, 2);
  // Second identical reservation exceeds memory (4+4 <= 8 ok) — cpu 2+2 <= 4 ok,
  // storage 8+8 <= 32 ok: it fits exactly.
  ASSERT_TRUE(pool.reserve(HostRef{OpsId{0}}, demand).is_ok());
  // Third does not.
  const auto status = pool.reserve(HostRef{OpsId{0}}, demand);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCapacityExceeded);
  pool.release(HostRef{OpsId{0}}, demand);
  EXPECT_TRUE(pool.reserve(HostRef{OpsId{0}}, demand).is_ok());
  EXPECT_TRUE(pool.is_consistent());
}

TEST(HostingPoolTest, OverReleaseClamped) {
  const auto topo = hosting_dc();
  HostingPool pool(topo);
  const Resources demand{.cpu_cores = 2, .memory_gb = 2, .storage_gb = 2};
  pool.release(HostRef{ServerId{0}}, demand);  // nothing reserved
  EXPECT_DOUBLE_EQ(pool.free_capacity(HostRef{ServerId{0}}).cpu_cores, 16);
  EXPECT_TRUE(pool.is_consistent());
}

TEST(HostingPoolTest, OpticalHostEnumeration) {
  const auto topo = hosting_dc();
  HostingPool pool(topo);
  const Resources small{.cpu_cores = 1, .memory_gb = 1, .storage_gb = 1};
  const auto hosts = pool.optical_hosts_with_capacity(small);
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], OpsId{0});
  // Restricted to a candidate list that excludes it.
  const std::vector<OpsId> only_plain{OpsId{1}};
  EXPECT_TRUE(pool.optical_hosts_with_capacity(small, only_plain).empty());
  // Demand too large for the OE router.
  const Resources huge{.cpu_cores = 100, .memory_gb = 1, .storage_gb = 1};
  EXPECT_TRUE(pool.optical_hosts_with_capacity(huge).empty());
}

TEST(HostingPoolTest, ElectronicHostEnumeration) {
  const auto topo = hosting_dc();
  HostingPool pool(topo);
  const Resources big{.cpu_cores = 10, .memory_gb = 32, .storage_gb = 100};
  const auto hosts = pool.electronic_hosts_with_capacity(big);
  ASSERT_EQ(hosts.size(), 1u);
  EXPECT_EQ(hosts[0], ServerId{0});
  ASSERT_TRUE(pool.reserve(HostRef{ServerId{0}}, big).is_ok());
  EXPECT_TRUE(pool.electronic_hosts_with_capacity(big).empty());
}

TEST(HostingPoolTest, GeneratedTopologyRespectsOeFraction) {
  alvc::topology::TopologyParams params;
  params.ops_count = 10;
  params.optoelectronic_fraction = 0.4;
  const auto topo = alvc::topology::build_topology(params);
  HostingPool pool(topo);
  const Resources tiny{.cpu_cores = 0.5, .memory_gb = 0.5, .storage_gb = 0.5};
  EXPECT_EQ(pool.optical_hosts_with_capacity(tiny).size(), 4u);
}

}  // namespace
}  // namespace alvc::nfv
