#include "nfv/catalog.h"

#include <gtest/gtest.h>

namespace alvc::nfv {
namespace {

TEST(VnfCatalogTest, AddAndLookup) {
  VnfCatalog catalog;
  const auto fw = catalog.add(VnfType::kFirewall, "fw",
                              Resources{.cpu_cores = 1, .memory_gb = 1, .storage_gb = 1});
  EXPECT_EQ(catalog.size(), 1u);
  const auto& d = catalog.descriptor(fw);
  EXPECT_EQ(d.type, VnfType::kFirewall);
  EXPECT_EQ(d.name, "fw");
  EXPECT_EQ(d.id, fw);
  EXPECT_THROW((void)catalog.descriptor(VnfId{9}), std::out_of_range);
}

TEST(VnfCatalogTest, FindByType) {
  const auto catalog = VnfCatalog::make_default();
  const auto dpi = catalog.find_by_type(VnfType::kDeepPacketInspection);
  ASSERT_TRUE(dpi.has_value());
  EXPECT_EQ(catalog.descriptor(*dpi).name, "dpi");
  VnfCatalog empty;
  EXPECT_FALSE(empty.find_by_type(VnfType::kNat).has_value());
}

TEST(VnfCatalogTest, DefaultCatalogSplitsLightAndHeavy) {
  const auto catalog = VnfCatalog::make_default();
  // The default optoelectronic budget from TopologyParams.
  const Resources oe_budget{.cpu_cores = 4, .memory_gb = 8, .storage_gb = 32};
  std::size_t optical_ok = 0;
  std::size_t electronic_only = 0;
  for (const auto& d : catalog.descriptors()) {
    if (d.optical_hostable(oe_budget)) ++optical_ok;
    if (!d.demand.fits_within(oe_budget) || d.electronic_only) ++electronic_only;
  }
  EXPECT_GE(optical_ok, 4u) << "light functions must fit optoelectronic routers";
  EXPECT_GE(electronic_only, 3u) << "heavy functions must exceed the budget";
  EXPECT_EQ(optical_ok + electronic_only, catalog.size());
}

TEST(VnfCatalogTest, ElectronicOnlyNeverOpticalHostable) {
  const auto catalog = VnfCatalog::make_default();
  const auto wan = catalog.find_by_type(VnfType::kWanOptimizer);
  ASSERT_TRUE(wan.has_value());
  const Resources huge{.cpu_cores = 1000, .memory_gb = 1000, .storage_gb = 10000};
  EXPECT_FALSE(catalog.descriptor(*wan).optical_hostable(huge));
}

TEST(VnfTypeTest, Names) {
  EXPECT_EQ(to_string(VnfType::kFirewall), "firewall");
  EXPECT_EQ(to_string(VnfType::kDeepPacketInspection), "dpi");
  EXPECT_EQ(to_string(VnfType::kCache), "cache");
}

}  // namespace
}  // namespace alvc::nfv
