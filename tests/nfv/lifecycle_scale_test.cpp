// Scale-path coverage for the VNF lifecycle and its capacity coupling —
// the machinery the elastic subsystem drives. Exercises scale() bounds,
// unknown-id handling, illegal-state transitions, and the fit-after-scale
// contract in CloudNfvManager (reservation deltas commit on success and
// roll back untouched on capacity rejection).
#include <gtest/gtest.h>

#include "nfv/lifecycle.h"
#include "sdn/cloud_manager.h"
#include "support/fixtures.h"
#include "util/error.h"

namespace alvc::nfv {
namespace {

using alvc::sdn::CloudNfvManager;
using alvc::test::SliceFixture;
using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::VnfInstanceId;

TEST(LifecycleScaleTest, ScaleRequiresPositiveFactor) {
  VnfLifecycleManager lifecycle;
  const auto id = lifecycle.create(alvc::util::VnfId{0}, HostRef{ServerId{0}});
  ASSERT_TRUE(lifecycle.activate(id).is_ok());
  EXPECT_EQ(lifecycle.scale(id, 0.0).error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(lifecycle.scale(id, -1.5).error().code, ErrorCode::kInvalidArgument);
  // The failed attempts must not have moved the state machine.
  EXPECT_EQ(lifecycle.instance(id).state, VnfState::kActive);
  EXPECT_DOUBLE_EQ(lifecycle.instance(id).scale, 1.0);
}

TEST(LifecycleScaleTest, ScaleUnknownIdIsNotFound) {
  VnfLifecycleManager lifecycle;
  EXPECT_EQ(lifecycle.scale(VnfInstanceId{0}, 2.0).error().code, ErrorCode::kNotFound);
  const auto id = lifecycle.create(alvc::util::VnfId{0}, HostRef{ServerId{0}});
  ASSERT_TRUE(lifecycle.activate(id).is_ok());
  EXPECT_EQ(lifecycle.scale(VnfInstanceId{7}, 2.0).error().code, ErrorCode::kNotFound);
}

TEST(LifecycleScaleTest, ScaleFromIllegalStatesIsRejected) {
  VnfLifecycleManager lifecycle;
  const auto requested = lifecycle.create(alvc::util::VnfId{0}, HostRef{ServerId{0}});
  EXPECT_EQ(lifecycle.scale(requested, 2.0).error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(lifecycle.instance(requested).state, VnfState::kRequested);

  const auto dead = lifecycle.create(alvc::util::VnfId{0}, HostRef{ServerId{0}});
  ASSERT_TRUE(lifecycle.activate(dead).is_ok());
  ASSERT_TRUE(lifecycle.terminate(dead).is_ok());
  EXPECT_EQ(lifecycle.scale(dead, 2.0).error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(lifecycle.instance(dead).state, VnfState::kTerminated);
}

TEST(LifecycleScaleTest, ScaleRoundTripsThroughScalingState) {
  VnfLifecycleManager lifecycle;
  const auto id = lifecycle.create(alvc::util::VnfId{0}, HostRef{OpsId{0}});
  ASSERT_TRUE(lifecycle.activate(id).is_ok());
  ASSERT_TRUE(lifecycle.scale(id, 3.0).is_ok());
  EXPECT_EQ(lifecycle.instance(id).state, VnfState::kActive);
  EXPECT_DOUBLE_EQ(lifecycle.instance(id).scale, 3.0);
  // Event trail: requested->instantiating->active, active->scaling->active,
  // with strictly increasing sequence numbers.
  const auto& events = lifecycle.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].to, VnfState::kScaling);
  EXPECT_EQ(events[3].to, VnfState::kActive);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].sequence, events[i].sequence);
  }
}

/// CloudNfvManager on the shared slice fixture: OPS 0 is optoelectronic
/// with 4 cores / 8 GB / 32 GB; the default firewall needs 1 / 2 / 4.
struct CloudScaleFixture : public ::testing::Test {
  SliceFixture slice;
  CloudNfvManager cloud{slice.catalog, slice.topo};
  alvc::util::VnfId firewall = *slice.catalog.find_by_type(VnfType::kFirewall);
  HostRef oe{OpsId{0}};
};

TEST_F(CloudScaleFixture, ScaleUpReservesDeltaAndScaleDownReleases) {
  const auto id = cloud.deploy(firewall, oe);
  ASSERT_TRUE(id.has_value());
  const auto free_at_1 = cloud.pool().free_capacity(oe);
  EXPECT_DOUBLE_EQ(free_at_1.cpu_cores, 3.0);

  // Up to 4x: exactly fills the optoelectronic budget (4 cores / 8 GB).
  ASSERT_TRUE(cloud.scale(*id, 4.0).is_ok());
  EXPECT_DOUBLE_EQ(cloud.pool().free_capacity(oe).cpu_cores, 0.0);
  EXPECT_DOUBLE_EQ(cloud.reserved_demand(*id).memory_gb, 8.0);

  // Back down to 2x: half the footprint returns.
  ASSERT_TRUE(cloud.scale(*id, 2.0).is_ok());
  EXPECT_DOUBLE_EQ(cloud.pool().free_capacity(oe).cpu_cores, 2.0);
  EXPECT_EQ(cloud.stats().scaled, 2u);
}

TEST_F(CloudScaleFixture, OverCapacityScaleFailsWithoutStateChange) {
  const auto id = cloud.deploy(firewall, oe);
  ASSERT_TRUE(id.has_value());
  const auto free_before = cloud.pool().free_capacity(oe);

  // 5x firewall = 5 cores > the router's 4: must be refused atomically.
  const auto status = cloud.scale(*id, 5.0);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCapacityExceeded);
  EXPECT_EQ(cloud.lifecycle().instance(*id).state, VnfState::kActive);
  EXPECT_DOUBLE_EQ(cloud.lifecycle().instance(*id).scale, 1.0);
  EXPECT_DOUBLE_EQ(cloud.pool().free_capacity(oe).cpu_cores, free_before.cpu_cores);
  EXPECT_EQ(cloud.stats().rejected, 1u);
  EXPECT_TRUE(cloud.pool().is_consistent());
}

TEST_F(CloudScaleFixture, TerminateAfterScaleReleasesScaledFootprint) {
  const auto id = cloud.deploy(firewall, oe);
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(cloud.scale(*id, 3.0).is_ok());
  ASSERT_TRUE(cloud.terminate(*id).is_ok());
  // All 3x of the reservation must come back, not the 1x nominal.
  EXPECT_DOUBLE_EQ(cloud.pool().free_capacity(oe).cpu_cores, 4.0);
  EXPECT_DOUBLE_EQ(cloud.reserved_demand(*id).cpu_cores, 0.0);
  EXPECT_TRUE(cloud.pool().is_consistent());
}

TEST_F(CloudScaleFixture, ScaleOnNonActiveInstanceIsRejected) {
  const auto id = cloud.deploy(firewall, oe);
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(cloud.terminate(*id).is_ok());
  EXPECT_EQ(cloud.scale(*id, 2.0).error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(cloud.scale(VnfInstanceId{42}, 2.0).error().code, ErrorCode::kNotFound);
}

}  // namespace
}  // namespace alvc::nfv
