#include "nfv/lifecycle.h"

#include <gtest/gtest.h>

namespace alvc::nfv {
namespace {

using alvc::util::ErrorCode;
using alvc::util::OpsId;
using alvc::util::ServerId;

TEST(TransitionTableTest, LegalPaths) {
  EXPECT_TRUE(transition_allowed(VnfState::kRequested, VnfState::kInstantiating));
  EXPECT_TRUE(transition_allowed(VnfState::kInstantiating, VnfState::kActive));
  EXPECT_TRUE(transition_allowed(VnfState::kActive, VnfState::kScaling));
  EXPECT_TRUE(transition_allowed(VnfState::kScaling, VnfState::kActive));
  EXPECT_TRUE(transition_allowed(VnfState::kActive, VnfState::kUpdating));
  EXPECT_TRUE(transition_allowed(VnfState::kUpdating, VnfState::kActive));
  EXPECT_TRUE(transition_allowed(VnfState::kActive, VnfState::kTerminating));
  EXPECT_TRUE(transition_allowed(VnfState::kRequested, VnfState::kTerminating));
  EXPECT_TRUE(transition_allowed(VnfState::kTerminating, VnfState::kTerminated));
}

TEST(TransitionTableTest, IllegalPaths) {
  EXPECT_FALSE(transition_allowed(VnfState::kRequested, VnfState::kActive));
  EXPECT_FALSE(transition_allowed(VnfState::kTerminated, VnfState::kActive));
  EXPECT_FALSE(transition_allowed(VnfState::kScaling, VnfState::kUpdating));
  EXPECT_FALSE(transition_allowed(VnfState::kTerminating, VnfState::kActive));
  EXPECT_FALSE(transition_allowed(VnfState::kActive, VnfState::kRequested));
  EXPECT_FALSE(transition_allowed(VnfState::kTerminated, VnfState::kTerminated));
}

TEST(LifecycleManagerTest, CreateStartsRequested) {
  VnfLifecycleManager mgr;
  const auto id = mgr.create(VnfId{0}, HostRef{ServerId{1}});
  EXPECT_EQ(mgr.instance(id).state, VnfState::kRequested);
  EXPECT_EQ(mgr.instance_count(), 1u);
  EXPECT_EQ(mgr.active_count(), 0u);
  EXPECT_FALSE(is_optical_host(mgr.instance(id).host));
}

TEST(LifecycleManagerTest, ActivateFullPath) {
  VnfLifecycleManager mgr;
  const auto id = mgr.create(VnfId{0}, HostRef{OpsId{3}});
  ASSERT_TRUE(mgr.activate(id).is_ok());
  EXPECT_EQ(mgr.instance(id).state, VnfState::kActive);
  EXPECT_EQ(mgr.active_count(), 1u);
  EXPECT_TRUE(is_optical_host(mgr.instance(id).host));
  // Event log captured both hops.
  ASSERT_EQ(mgr.events().size(), 2u);
  EXPECT_EQ(mgr.events()[0].to, VnfState::kInstantiating);
  EXPECT_EQ(mgr.events()[1].to, VnfState::kActive);
  EXPECT_LT(mgr.events()[0].sequence, mgr.events()[1].sequence);
}

TEST(LifecycleManagerTest, IllegalTransitionRejected) {
  VnfLifecycleManager mgr;
  const auto id = mgr.create(VnfId{0}, HostRef{ServerId{0}});
  const auto status = mgr.transition(id, VnfState::kActive);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(mgr.instance(id).state, VnfState::kRequested);
  EXPECT_TRUE(mgr.events().empty()) << "failed transitions must not be logged";
}

TEST(LifecycleManagerTest, UnknownInstance) {
  VnfLifecycleManager mgr;
  const auto status = mgr.transition(VnfInstanceId{7}, VnfState::kInstantiating);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNotFound);
}

TEST(LifecycleManagerTest, ScaleRoundTrip) {
  VnfLifecycleManager mgr;
  const auto id = mgr.create(VnfId{0}, HostRef{ServerId{0}});
  ASSERT_TRUE(mgr.activate(id).is_ok());
  ASSERT_TRUE(mgr.scale(id, 2.5).is_ok());
  EXPECT_EQ(mgr.instance(id).state, VnfState::kActive);
  EXPECT_DOUBLE_EQ(mgr.instance(id).scale, 2.5);
  EXPECT_FALSE(mgr.scale(id, 0.0).is_ok());
  EXPECT_FALSE(mgr.scale(id, -1.0).is_ok());
}

TEST(LifecycleManagerTest, ScaleRequiresActive) {
  VnfLifecycleManager mgr;
  const auto id = mgr.create(VnfId{0}, HostRef{ServerId{0}});
  EXPECT_FALSE(mgr.scale(id, 2.0).is_ok());
}

TEST(LifecycleManagerTest, UpdateRoundTrip) {
  VnfLifecycleManager mgr;
  const auto id = mgr.create(VnfId{0}, HostRef{ServerId{0}});
  ASSERT_TRUE(mgr.activate(id).is_ok());
  ASSERT_TRUE(mgr.update(id).is_ok());
  EXPECT_EQ(mgr.instance(id).state, VnfState::kActive);
}

TEST(LifecycleManagerTest, TerminateFromAnyLiveState) {
  VnfLifecycleManager mgr;
  const auto fresh = mgr.create(VnfId{0}, HostRef{ServerId{0}});
  ASSERT_TRUE(mgr.terminate(fresh).is_ok());
  EXPECT_EQ(mgr.instance(fresh).state, VnfState::kTerminated);

  const auto live = mgr.create(VnfId{0}, HostRef{ServerId{0}});
  ASSERT_TRUE(mgr.activate(live).is_ok());
  ASSERT_TRUE(mgr.terminate(live).is_ok());
  EXPECT_EQ(mgr.instance(live).state, VnfState::kTerminated);

  // Terminated is final.
  EXPECT_FALSE(mgr.terminate(live).is_ok());
  EXPECT_FALSE(mgr.activate(live).is_ok());
}

TEST(VnfStateTest, Names) {
  EXPECT_EQ(to_string(VnfState::kRequested), "requested");
  EXPECT_EQ(to_string(VnfState::kTerminated), "terminated");
  EXPECT_EQ(to_string(VnfState::kScaling), "scaling");
}

}  // namespace
}  // namespace alvc::nfv
