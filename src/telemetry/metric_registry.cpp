#include "telemetry/metric_registry.h"

#include <algorithm>
#include "util/lock_rank.h"

namespace alvc::telemetry {

std::size_t shard_index() noexcept {
  // fetch_add starts at 0, so the first thread to record a metric — the
  // main thread in every serial run — owns shard 0 and serial accumulation
  // is deterministic. Workers spread round-robin over the remaining
  // stripes; collisions are harmless (relaxed atomics), just slower.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed) % kShardCount;
  return index;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.cell.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.cell.store(0, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
  }
}

struct Histogram::Shard {
  explicit Shard(std::size_t buckets) : cells(buckets) {}

  // vector<atomic> is constructed once and never resized; elements are
  // value-initialized (zero) in place.
  std::vector<std::atomic<std::uint64_t>> cells;
  std::atomic<std::uint64_t> underflow{0};
  std::atomic<std::uint64_t> overflow{0};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_count_(std::max<std::size_t>(buckets, 1)) {
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
  width_ = (hi_ - lo_) / static_cast<double>(bucket_count_);
  shards_.reserve(kShardCount);
  for (std::size_t i = 0; i < kShardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>(bucket_count_));
  }
}

Histogram::~Histogram() = default;

void Histogram::record(double sample) noexcept {
  Shard& shard = *shards_[shard_index()];
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + sample, std::memory_order_relaxed)) {
  }
  if (sample < lo_) {
    shard.underflow.fetch_add(1, std::memory_order_relaxed);
  } else if (sample >= hi_) {
    shard.overflow.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto bucket = static_cast<std::size_t>((sample - lo_) / width_);
    // Rounding at the exact top edge of the last bucket can land one past
    // the end; clamp (mirrors util::Histogram).
    bucket = std::min(bucket, bucket_count_ - 1);
    shard.cells[bucket].fetch_add(1, std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.lo = lo_;
  out.hi = hi_;
  out.buckets.assign(bucket_count_, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < bucket_count_; ++i) {
      out.buckets[i] += shard->cells[i].load(std::memory_order_relaxed);
    }
    out.underflow += shard->underflow.load(std::memory_order_relaxed);
    out.overflow += shard->overflow.load(std::memory_order_relaxed);
    out.count += shard->count.load(std::memory_order_relaxed);
    out.sum += shard->sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (const auto& shard : shards_) {
    for (auto& cell : shard->cells) cell.store(0, std::memory_order_relaxed);
    shard->underflow.store(0, std::memory_order_relaxed);
    shard->overflow.store(0, std::memory_order_relaxed);
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
  }
}

Counter& MetricRegistry::counter(const std::string& name) {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryMetricRegistry, "telemetry.metric_registry");
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryMetricRegistry, "telemetry.metric_registry");
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name, double lo, double hi,
                                     std::size_t buckets) {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryMetricRegistry, "telemetry.metric_registry");
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(lo, hi, buckets);
  return *slot;
}

MetricRegistry::Snapshot MetricRegistry::snapshot() const {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryMetricRegistry, "telemetry.metric_registry");
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, metric] : counters_) {
    out.counters.push_back(CounterValue{name, metric->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, metric] : gauges_) {
    out.gauges.push_back(GaugeValue{name, metric->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, metric] : histograms_) {
    out.histograms.push_back(HistogramValue{name, metric->snapshot()});
  }
  return out;
}

void MetricRegistry::reset() {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryMetricRegistry, "telemetry.metric_registry");
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, metric] : counters_) metric->reset();
  for (const auto& [name, metric] : gauges_) metric->reset();
  for (const auto& [name, metric] : histograms_) metric->reset();
}

std::size_t MetricRegistry::metric_count() const {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryMetricRegistry, "telemetry.metric_registry");
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricRegistry& MetricRegistry::global() noexcept {
  // Leaked on purpose: instrumented code may run during static destruction
  // (e.g. a bench fixture torn down after main), so the registry must
  // outlive everything.
  static auto* registry = new MetricRegistry();
  return *registry;
}

}  // namespace alvc::telemetry
