// Thread-safe metric registry: sharded-atomic counters, gauges, and
// fixed-bucket histograms.
//
// Writers on the hot control-plane paths (AL construction batches running
// on util::Executor workers, orchestrator provisioning, SDN rule churn)
// must never serialize on instrumentation. Counters and histograms are
// therefore striped across kShardCount cache-line-padded shards; each
// thread picks a shard once (thread_local) and all its increments are
// relaxed atomics on that shard. Readers merge the shards on demand.
//
// Handle stability contract: references returned by counter()/gauge()/
// histogram() stay valid for the registry's lifetime. reset() zeroes every
// metric IN PLACE and never deallocates, so call sites may cache handles
// in function-local statics (the ALVC_COUNT/... hook macros rely on this).
//
// Determinism: the main thread is always assigned shard 0, and a serial
// run therefore accumulates into exactly one shard in program order; the
// merged snapshot of a seeded single-threaded run is bit-reproducible.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace alvc::telemetry {

/// Number of stripes per sharded metric. A modest fixed count keeps the
/// footprint bounded (one cache line per stripe) while giving the
/// Executor's default worker pool collision-free increments.
inline constexpr std::size_t kShardCount = 16;

/// Stable shard index of the calling thread in [0, kShardCount). The main
/// thread (first to touch telemetry) gets shard 0; workers round-robin.
[[nodiscard]] std::size_t shard_index() noexcept;

/// Monotonic event counter, striped across shards.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    shards_[shard_index()].cell.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Sum over all shards. Concurrent adds may or may not be included.
  [[nodiscard]] std::uint64_t value() const noexcept;
  /// Zeroes every shard in place (handles stay valid).
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> cell{0};
  };
  std::array<Shard, kShardCount> shards_{};
};

/// Last-write-wins instantaneous value (queue depths, pool sizes).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged view of a Histogram at one point in time. Bucket semantics match
/// util::Histogram: bucket i spans [lo + i*w, lo + (i+1)*w) with
/// w = (hi - lo) / buckets; samples below lo / at-or-above hi land in
/// underflow / overflow.
struct HistogramSnapshot {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> buckets;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t count = 0;  // total samples including under/overflow
  double sum = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram, striped across shards like Counter.
class Histogram {
 public:
  /// Requires hi > lo and buckets >= 1 (clamped to 1).
  Histogram(double lo, double hi, std::size_t buckets);
  ~Histogram();  // out of line: Shard is a pimpl
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double sample) noexcept;
  /// Merges all shards. Equivalent to single-threaded accumulation of the
  /// same multiset of samples (the Accumulator::merge contract), modulo
  /// floating-point addition order in `sum` under concurrency.
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return bucket_count_; }

 private:
  struct Shard;
  double lo_;
  double hi_;
  double width_;
  std::size_t bucket_count_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Process-wide registry of named metrics.
///
/// Threading contract: fully thread-safe. Lookup/creation takes a mutex;
/// metric writes afterwards are lock-free on the returned handle. Names
/// are namespaced dot paths ("orchestrator.chains.provisioned").
class MetricRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  [[nodiscard]] Counter& counter(const std::string& name) ALVC_EXCLUDES(mu_);
  [[nodiscard]] Gauge& gauge(const std::string& name) ALVC_EXCLUDES(mu_);
  /// First registration fixes the bucket layout; later calls with the same
  /// name return the existing histogram regardless of their bounds.
  [[nodiscard]] Histogram& histogram(const std::string& name, double lo, double hi,
                                     std::size_t buckets) ALVC_EXCLUDES(mu_);

  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    HistogramSnapshot snapshot;
  };
  /// Name-sorted (std::map order) merged values of every metric.
  struct Snapshot {
    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
  };
  [[nodiscard]] Snapshot snapshot() const ALVC_EXCLUDES(mu_);

  /// Zeroes every registered metric in place. Cached handles stay valid;
  /// the name -> metric mapping is preserved.
  void reset() ALVC_EXCLUDES(mu_);

  [[nodiscard]] std::size_t metric_count() const ALVC_EXCLUDES(mu_);

  /// The process-wide registry the instrumentation hooks write to.
  [[nodiscard]] static MetricRegistry& global() noexcept;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ ALVC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ALVC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ ALVC_GUARDED_BY(mu_);
};

}  // namespace alvc::telemetry
