#include "telemetry/span.h"

#include <utility>

#include "util/lock_rank.h"

namespace alvc::telemetry {

namespace {

/// Innermost open span per (thread, tracer): parent attribution for nested
/// spans without any cross-thread coordination. Entries are strictly LIFO
/// because ScopedSpan is scope-bound.
struct OpenSpan {
  const Tracer* tracer;
  std::uint64_t id;
};

thread_local std::vector<OpenSpan> t_open_spans;

std::uint64_t innermost_for(const Tracer* tracer) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == tracer) return it->id;
  }
  return 0;
}

}  // namespace

const char* to_string(ClockMode mode) noexcept {
  switch (mode) {
    case ClockMode::kDisabled: return "disabled";
    case ClockMode::kSteady: return "steady";
    case ClockMode::kLogical: return "logical";
  }
  return "?";
}

Tracer::Tracer() : steady_epoch_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const noexcept {
  switch (mode()) {
    case ClockMode::kLogical: return logical_us_.load(std::memory_order_relaxed);
    case ClockMode::kSteady: {
      const auto elapsed = std::chrono::steady_clock::now() - steady_epoch_;
      return std::chrono::duration<double, std::micro>(elapsed).count();
    }
    case ClockMode::kDisabled: break;
  }
  return 0.0;
}

void Tracer::clear() {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryTracer, "telemetry.tracer");
  const std::lock_guard<std::mutex> lock(mu_);
  next_id_ = 1;
  spans_.clear();
}

std::vector<SpanRecord> Tracer::spans() const {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryTracer, "telemetry.tracer");
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t Tracer::span_count() const {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryTracer, "telemetry.tracer");
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::uint64_t Tracer::open_span() {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryTracer, "telemetry.tracer");
  const std::lock_guard<std::mutex> lock(mu_);
  return next_id_++;
}

void Tracer::record(SpanRecord record) {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTelemetryTracer, "telemetry.tracer");
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

Tracer& Tracer::global() noexcept {
  // Leaked like MetricRegistry::global(): spans may close during static
  // destruction.
  static auto* tracer = new Tracer();
  return *tracer;
}

ScopedSpan::ScopedSpan(Tracer& tracer, const char* name) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  id_ = tracer.open_span();
  parent_ = innermost_for(tracer_);
  t_open_spans.push_back(OpenSpan{tracer_, id_});
  start_us_ = tracer.now_us();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  const double end_us = tracer_->now_us();
  // Strict LIFO: this span is the innermost entry for its tracer.
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == tracer_ && it->id == id_) {
      t_open_spans.erase(std::next(it).base());
      break;
    }
  }
  tracer_->record(SpanRecord{id_, parent_, name_, start_us_, end_us});
}

}  // namespace alvc::telemetry
