// Instrumentation hooks: the only telemetry API instrumented code uses.
//
// Every hook compiles to `do {} while (0)` when the build sets
// ALVC_TELEMETRY_ENABLED=0 (cmake -DALVC_TELEMETRY=OFF), so instrumented
// hot paths carry zero code-size or runtime cost in stripped builds — the
// determinism leg of scripts/check.sh asserts ON and OFF builds produce
// bit-identical simulation output.
//
// When ON, each call site caches its metric handle in a function-local
// static (MetricRegistry guarantees handle stability across reset()), so
// the steady-state cost of a hook is one static-init guard check plus one
// relaxed atomic on a per-thread shard — safe inside util::Executor
// workers without serializing them.
//
//   ALVC_COUNT("sdn.rules.installed");             // +1
//   ALVC_COUNT_N("cluster.build.groups", groups);  // +n
//   ALVC_GAUGE_SET("orchestrator.retry_queue.depth", depth);
//   ALVC_OBSERVE("orchestrator.route.path_length", 0, 64, 32, hops);
//   ALVC_SPAN(span, "cluster.build_all_clusters");  // RAII scope span
//   ALVC_TELEMETRY_SET_TIME_S(now);  // sim::EventQueue drives the logical clock
#pragma once

#if !defined(ALVC_TELEMETRY_ENABLED)
#define ALVC_TELEMETRY_ENABLED 1
#endif

#if ALVC_TELEMETRY_ENABLED

#include <cstdint>

#include "telemetry/metric_registry.h"
#include "telemetry/span.h"

/// Adds `delta` to the named global counter.
#define ALVC_COUNT_N(name, delta)                                              \
  do {                                                                         \
    static ::alvc::telemetry::Counter& alvc_telemetry_handle =                 \
        ::alvc::telemetry::MetricRegistry::global().counter(name);             \
    alvc_telemetry_handle.add(static_cast<std::uint64_t>(delta));              \
  } while (0)

/// Increments the named global counter.
#define ALVC_COUNT(name) ALVC_COUNT_N(name, 1)

/// Sets the named global gauge to `value`.
#define ALVC_GAUGE_SET(name, value)                                            \
  do {                                                                         \
    static ::alvc::telemetry::Gauge& alvc_telemetry_handle =                   \
        ::alvc::telemetry::MetricRegistry::global().gauge(name);               \
    alvc_telemetry_handle.set(static_cast<double>(value));                     \
  } while (0)

/// Records `sample` into the named global histogram; the first call site
/// reached fixes the [lo, hi) x buckets layout.
#define ALVC_OBSERVE(name, lo, hi, buckets, sample)                            \
  do {                                                                         \
    static ::alvc::telemetry::Histogram& alvc_telemetry_handle =               \
        ::alvc::telemetry::MetricRegistry::global().histogram(name, lo, hi,    \
                                                              buckets);       \
    alvc_telemetry_handle.record(static_cast<double>(sample));                 \
  } while (0)

/// Declares a ScopedSpan named `var` on the global tracer. A no-cost
/// relaxed load when the tracer is disabled (the default).
#define ALVC_SPAN(var, name)                                                   \
  ::alvc::telemetry::ScopedSpan var(::alvc::telemetry::Tracer::global(), name)

/// Advances the global tracer's logical clock (simulation seconds).
#define ALVC_TELEMETRY_SET_TIME_S(seconds)                                     \
  ::alvc::telemetry::Tracer::global().set_logical_time_s(seconds)

#else  // !ALVC_TELEMETRY_ENABLED

#define ALVC_COUNT_N(name, delta) \
  do {                            \
  } while (0)
#define ALVC_COUNT(name) \
  do {                   \
  } while (0)
#define ALVC_GAUGE_SET(name, value) \
  do {                              \
  } while (0)
#define ALVC_OBSERVE(name, lo, hi, buckets, sample) \
  do {                                              \
  } while (0)
#define ALVC_SPAN(var, name) \
  do {                       \
  } while (0)
#define ALVC_TELEMETRY_SET_TIME_S(seconds) \
  do {                                     \
  } while (0)

#endif  // ALVC_TELEMETRY_ENABLED
