#include "telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace alvc::telemetry {

using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Status;

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double number) {
  if (number == std::floor(number) && std::abs(number) < 1e15) {
    out += std::to_string(static_cast<long long>(number));
  } else {
    std::ostringstream os;
    os.precision(17);
    os << number;
    out += os.str();
  }
}

namespace {

void append_uint(std::string& out, std::uint64_t n) { out += std::to_string(n); }

void append_counter_line(std::string& out, const MetricRegistry::CounterValue& c) {
  out += R"({"type":"counter","name":)";
  append_json_string(out, c.name);
  out += ",\"value\":";
  append_uint(out, c.value);
  out += "}\n";
}

void append_gauge_line(std::string& out, const MetricRegistry::GaugeValue& g) {
  out += R"({"type":"gauge","name":)";
  append_json_string(out, g.name);
  out += ",\"value\":";
  append_json_number(out, g.value);
  out += "}\n";
}

void append_histogram_line(std::string& out, const MetricRegistry::HistogramValue& h) {
  out += R"({"type":"histogram","name":)";
  append_json_string(out, h.name);
  out += ",\"lo\":";
  append_json_number(out, h.snapshot.lo);
  out += ",\"hi\":";
  append_json_number(out, h.snapshot.hi);
  out += ",\"buckets\":[";
  for (std::size_t i = 0; i < h.snapshot.buckets.size(); ++i) {
    if (i != 0) out += ',';
    append_uint(out, h.snapshot.buckets[i]);
  }
  out += "],\"underflow\":";
  append_uint(out, h.snapshot.underflow);
  out += ",\"overflow\":";
  append_uint(out, h.snapshot.overflow);
  out += ",\"count\":";
  append_uint(out, h.snapshot.count);
  out += ",\"sum\":";
  append_json_number(out, h.snapshot.sum);
  out += "}\n";
}

void append_span_line(std::string& out, const SpanRecord& s) {
  out += R"({"type":"span","id":)";
  append_uint(out, s.id);
  out += ",\"parent\":";
  append_uint(out, s.parent);
  out += ",\"name\":";
  append_json_string(out, s.name);
  out += ",\"start_us\":";
  append_json_number(out, s.start_us);
  out += ",\"end_us\":";
  append_json_number(out, s.end_us);
  out += "}\n";
}

}  // namespace

std::string to_ndjson(const MetricRegistry::Snapshot& metrics, std::span<const SpanRecord> spans) {
  std::string out;
  for (const auto& c : metrics.counters) append_counter_line(out, c);
  for (const auto& g : metrics.gauges) append_gauge_line(out, g);
  for (const auto& h : metrics.histograms) append_histogram_line(out, h);
  for (const SpanRecord& s : spans) append_span_line(out, s);
  return out;
}

std::string metrics_to_csv(const MetricRegistry::Snapshot& metrics) {
  alvc::util::CsvWriter csv({"type", "name", "value", "count", "sum", "lo", "hi", "underflow",
                             "overflow", "buckets"});
  for (const auto& c : metrics.counters) {
    csv.row_values("counter", c.name, c.value, "", "", "", "", "", "", "");
  }
  for (const auto& g : metrics.gauges) {
    std::string value;
    append_json_number(value, g.value);
    csv.row_values("gauge", g.name, value, "", "", "", "", "", "", "");
  }
  for (const auto& h : metrics.histograms) {
    std::string sum;
    append_json_number(sum, h.snapshot.sum);
    std::string lo;
    append_json_number(lo, h.snapshot.lo);
    std::string hi;
    append_json_number(hi, h.snapshot.hi);
    std::string buckets;
    for (std::size_t i = 0; i < h.snapshot.buckets.size(); ++i) {
      if (i != 0) buckets += ';';
      buckets += std::to_string(h.snapshot.buckets[i]);
    }
    csv.row_values("histogram", h.name, "", h.snapshot.count, sum, lo, hi, h.snapshot.underflow,
                   h.snapshot.overflow, buckets);
  }
  return csv.str();
}

std::string spans_to_csv(std::span<const SpanRecord> spans) {
  alvc::util::CsvWriter csv({"id", "parent", "name", "start_us", "end_us"});
  for (const SpanRecord& s : spans) {
    std::string start;
    append_json_number(start, s.start_us);
    std::string end;
    append_json_number(end, s.end_us);
    csv.row_values(s.id, s.parent, s.name, start, end);
  }
  return csv.str();
}

Status write_file(const std::string& path, std::string_view content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Error{ErrorCode::kInvalidArgument, "cannot open " + path + " for writing"};
  }
  file.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!file) return Error{ErrorCode::kInternal, "short write to " + path};
  return Status::ok();
}

}  // namespace alvc::telemetry
