// Scoped tracing spans with pluggable clocks.
//
// A ScopedSpan brackets one phase of work (an AL build stage, a chain
// provision, a fault handler) and records {id, parent, name, start, end}
// into a Tracer when it closes. Nesting is tracked per thread: a span
// opened while another span of the same tracer is open on the same thread
// becomes its child.
//
// Clocks are pluggable per tracer:
//   kDisabled  spans cost one relaxed load and record nothing (default);
//   kSteady    wall time from std::chrono::steady_clock (benches);
//   kLogical   simulation time pushed by sim::EventQueue via the
//              ALVC_TELEMETRY_SET_TIME_S hook — traces of a seeded run are
//              bit-reproducible because no real clock is ever read.
//
// Threading contract: Tracer is thread-safe (ids and the record buffer sit
// behind a mutex; mode and logical time are atomics). Span ordering in the
// buffer is deterministic only for single-threaded runs, which is what the
// reproducibility tests pin down.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace alvc::telemetry {

enum class ClockMode : std::uint8_t {
  kDisabled = 0,
  kSteady = 1,
  kLogical = 2,
};

[[nodiscard]] const char* to_string(ClockMode mode) noexcept;

/// One closed span. Times are microseconds on the tracer's clock;
/// parent == 0 means a root span.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::string name;
  double start_us = 0.0;
  double end_us = 0.0;

  [[nodiscard]] double duration_us() const noexcept { return end_us - start_us; }
};

class Tracer {
 public:
  Tracer();

  /// Switching the mode does not clear recorded spans; pair with clear()
  /// when starting a fresh capture.
  void set_mode(ClockMode mode) noexcept {
    mode_.store(static_cast<std::uint8_t>(mode), std::memory_order_relaxed);
  }
  [[nodiscard]] ClockMode mode() const noexcept {
    return static_cast<ClockMode>(mode_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled() const noexcept { return mode() != ClockMode::kDisabled; }

  /// Advances the logical clock (seconds). Driven by sim::EventQueue as it
  /// dispatches events; ignored unless mode() == kLogical at read time.
  void set_logical_time_s(double seconds) noexcept {
    logical_us_.store(seconds * 1e6, std::memory_order_relaxed);
  }

  /// Current time in microseconds under the active clock mode.
  [[nodiscard]] double now_us() const noexcept;

  /// Drops all recorded spans and restarts span ids from 1 (so a second
  /// seeded capture reproduces the first byte-for-byte). Keeps the mode.
  void clear() ALVC_EXCLUDES(mu_);

  /// Closed spans in completion order (children close before parents).
  [[nodiscard]] std::vector<SpanRecord> spans() const ALVC_EXCLUDES(mu_);
  [[nodiscard]] std::size_t span_count() const ALVC_EXCLUDES(mu_);

  /// The process-wide tracer the ALVC_SPAN hook records into.
  [[nodiscard]] static Tracer& global() noexcept;

 private:
  friend class ScopedSpan;

  [[nodiscard]] std::uint64_t open_span() ALVC_EXCLUDES(mu_);
  void record(SpanRecord record) ALVC_EXCLUDES(mu_);

  std::atomic<std::uint8_t> mode_{static_cast<std::uint8_t>(ClockMode::kDisabled)};
  std::atomic<double> logical_us_{0.0};
  std::chrono::steady_clock::time_point steady_epoch_;

  mutable std::mutex mu_;
  std::uint64_t next_id_ ALVC_GUARDED_BY(mu_) = 1;
  std::vector<SpanRecord> spans_ ALVC_GUARDED_BY(mu_);
};

/// RAII span: opens on construction, records on destruction. `name` must
/// outlive the span (string literals at the hook sites).
class ScopedSpan {
 public:
  ScopedSpan(Tracer& tracer, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // null when the tracer was disabled at open
  const char* name_ = "";
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_us_ = 0.0;
};

}  // namespace alvc::telemetry
