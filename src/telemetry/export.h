// Deterministic NDJSON / CSV export of metric snapshots and span traces.
//
// Telemetry sits just above util/ in the layer stack, below io/, so it
// cannot reuse io/json directly; the emitters here follow the exact same
// conventions (escape set, integral-number fast path, precision(17) for
// fractions) so telemetry output byte-matches what io/json would print.
//
// NDJSON schema — one self-describing JSON object per line, keys sorted:
//   {"type":"counter","name":...,"value":N}
//   {"type":"gauge","name":...,"value":X}
//   {"type":"histogram","name":...,"lo":X,"hi":X,"buckets":[...],
//    "underflow":N,"overflow":N,"count":N,"sum":X}
//   {"type":"span","id":N,"parent":N,"name":...,"start_us":X,"end_us":X}
// Metrics print name-sorted (counters, then gauges, then histograms), then
// spans in completion order. Two captures of the same seeded run under the
// logical clock are byte-identical.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "telemetry/metric_registry.h"
#include "telemetry/span.h"
#include "util/error.h"

namespace alvc::telemetry {

/// Appends `text` as a JSON string literal (quotes + io/json escape set).
void append_json_string(std::string& out, std::string_view text);
/// Appends a number using the io/json convention: integral values with no
/// fraction, everything else at precision(17).
void append_json_number(std::string& out, double number);

/// The full NDJSON document (metrics then spans), '\n'-terminated lines.
[[nodiscard]] std::string to_ndjson(const MetricRegistry::Snapshot& metrics,
                                    std::span<const SpanRecord> spans);

/// Metrics as CSV: type,name,value,count,sum,lo,hi,underflow,overflow,buckets
/// (histogram-only columns empty for counters/gauges; buckets ';'-joined).
[[nodiscard]] std::string metrics_to_csv(const MetricRegistry::Snapshot& metrics);

/// Spans as CSV: id,parent,name,start_us,end_us.
[[nodiscard]] std::string spans_to_csv(std::span<const SpanRecord> spans);

/// Writes `content` to `path` (the NDJSON/CSV strings above).
[[nodiscard]] alvc::util::Status write_file(const std::string& path, std::string_view content);

}  // namespace alvc::telemetry
