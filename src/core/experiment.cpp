#include "core/experiment.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace alvc::core {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace alvc::core
