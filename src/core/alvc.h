// Umbrella header for the AL-VC library.
//
// Reproduction of: Bashir, Ohsita, Murata, "Abstraction Layer Based Virtual
// Data Center Architecture for Network Function Chaining", ICDCSW 2016.
//
//   #include "core/alvc.h"
//
//   alvc::core::DataCenterConfig config;
//   alvc::core::DataCenter dc(config);
//   auto clusters = dc.build_clusters();            // §III: VCs + ALs
//   auto chain = dc.provision_chain(spec,           // §IV: NFC over a slice
//       alvc::core::PlacementAlgorithm::kOeoMinimizing);
#pragma once

#include "cluster/abstraction_layer.h"   // IWYU pragma: export
#include "cluster/al_builder.h"          // IWYU pragma: export
#include "cluster/cluster_manager.h"     // IWYU pragma: export
#include "cluster/service.h"             // IWYU pragma: export
#include "cluster/virtual_cluster.h"     // IWYU pragma: export
#include "core/config.h"                 // IWYU pragma: export
#include "core/datacenter.h"             // IWYU pragma: export
#include "core/experiment.h"             // IWYU pragma: export
#include "nfv/catalog.h"                 // IWYU pragma: export
#include "nfv/lifecycle.h"               // IWYU pragma: export
#include "nfv/nfc.h"                     // IWYU pragma: export
#include "orchestrator/orchestrator.h"   // IWYU pragma: export
#include "orchestrator/placement.h"      // IWYU pragma: export
#include "sim/simulator.h"               // IWYU pragma: export
#include "topology/builder.h"            // IWYU pragma: export
#include "topology/topology.h"           // IWYU pragma: export
