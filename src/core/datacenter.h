// alvc::core::DataCenter — the library's front door.
//
// Owns the whole stack (topology, service registry, VNF catalog, cluster
// manager, orchestrator) and exposes the workflow a user of AL-VC walks
// through: build the DC, cluster it by service, orchestrate chains, run
// traffic. Components remain individually accessible for advanced use —
// the facade adds convenience, not a wall.
#pragma once

#include <memory>
#include <string>

#include "cluster/cluster_manager.h"
#include "cluster/service.h"
#include "core/config.h"
#include "nfv/catalog.h"
#include "orchestrator/orchestrator.h"

namespace alvc::core {

class DataCenter {
 public:
  /// Builds the physical topology from config (seeded, deterministic) and
  /// wires up the control plane. Does NOT create clusters yet.
  explicit DataCenter(const DataCenterConfig& config);

  /// Groups VMs by service and builds one virtual cluster per service with
  /// the configured AL algorithm. Returns the cluster ids.
  [[nodiscard]] alvc::util::Expected<std::vector<alvc::util::ClusterId>> build_clusters();

  /// Provisions one chain with the given placement algorithm.
  [[nodiscard]] alvc::util::Expected<alvc::util::NfcId> provision_chain(
      const alvc::nfv::NfcSpec& spec, PlacementAlgorithm placement);

  /// Tears a chain down.
  [[nodiscard]] alvc::util::Status teardown_chain(alvc::util::NfcId id);

  // ---- component access ----
  [[nodiscard]] alvc::topology::DataCenterTopology& topology() noexcept { return topo_; }
  [[nodiscard]] const alvc::topology::DataCenterTopology& topology() const noexcept {
    return topo_;
  }
  [[nodiscard]] alvc::cluster::ClusterManager& clusters() noexcept { return *clusters_; }
  [[nodiscard]] const alvc::cluster::ClusterManager& clusters() const noexcept {
    return *clusters_;
  }
  [[nodiscard]] alvc::orchestrator::NetworkOrchestrator& orchestrator() noexcept {
    return *orchestrator_;
  }
  [[nodiscard]] const alvc::orchestrator::NetworkOrchestrator& orchestrator() const noexcept {
    return *orchestrator_;
  }
  [[nodiscard]] const alvc::nfv::VnfCatalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const alvc::cluster::ServiceRegistry& services() const noexcept {
    return services_;
  }
  [[nodiscard]] const DataCenterConfig& config() const noexcept { return config_; }

  /// Builds the AL-builder strategy named by the config (also used by
  /// benches to compare algorithms side by side).
  [[nodiscard]] static std::unique_ptr<alvc::cluster::AlBuilder> make_al_builder(
      AlAlgorithm algorithm, std::uint64_t seed, bool ensure_connectivity);
  [[nodiscard]] static std::unique_ptr<alvc::orchestrator::PlacementStrategy>
  make_placement(PlacementAlgorithm algorithm, std::uint64_t seed);

  /// Human-readable one-paragraph description of the deployment.
  [[nodiscard]] std::string describe() const;

 private:
  DataCenterConfig config_;
  alvc::topology::DataCenterTopology topo_;
  alvc::cluster::ServiceRegistry services_;
  alvc::nfv::VnfCatalog catalog_;
  std::unique_ptr<alvc::cluster::ClusterManager> clusters_;
  std::unique_ptr<alvc::orchestrator::NetworkOrchestrator> orchestrator_;
};

}  // namespace alvc::core
