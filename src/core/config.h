// Top-level configuration for an AL-VC deployment.
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "topology/builder.h"

namespace alvc::core {

/// How abstraction layers are constructed (see cluster/al_builder.h).
enum class AlAlgorithm : std::uint8_t {
  kVertexCover,     // the paper's algorithm
  kRandom,          // ref [15] baseline
  kGreedySetCover,  // ablation
  kExact,           // ground truth (small instances)
};

[[nodiscard]] constexpr const char* to_string(AlAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case AlAlgorithm::kVertexCover: return "vertex-cover";
    case AlAlgorithm::kRandom: return "random";
    case AlAlgorithm::kGreedySetCover: return "greedy-set-cover";
    case AlAlgorithm::kExact: return "exact";
  }
  return "?";
}

/// How VNFs are placed onto slice hosts (see orchestrator/placement.h).
enum class PlacementAlgorithm : std::uint8_t {
  kElectronicOnly,
  kRandom,
  kGreedyOptical,
  kOeoMinimizing,
};

[[nodiscard]] constexpr const char* to_string(PlacementAlgorithm algorithm) noexcept {
  switch (algorithm) {
    case PlacementAlgorithm::kElectronicOnly: return "electronic-only";
    case PlacementAlgorithm::kRandom: return "random";
    case PlacementAlgorithm::kGreedyOptical: return "greedy-optical";
    case PlacementAlgorithm::kOeoMinimizing: return "oeo-min";
  }
  return "?";
}

struct DataCenterConfig {
  alvc::topology::TopologyParams topology;
  AlAlgorithm al_algorithm = AlAlgorithm::kVertexCover;
  bool ensure_al_connectivity = true;
  std::uint64_t seed = 1;
};

}  // namespace alvc::core
