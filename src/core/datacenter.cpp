#include "core/datacenter.h"

#include <sstream>

namespace alvc::core {

using alvc::cluster::AlBuilder;
using alvc::cluster::AlBuilderOptions;
using alvc::orchestrator::PlacementStrategy;

DataCenter::DataCenter(const DataCenterConfig& config)
    : config_(config),
      topo_(alvc::topology::build_topology(config.topology)),
      services_(alvc::cluster::ServiceRegistry::make_default(config.topology.service_count)),
      catalog_(alvc::nfv::VnfCatalog::make_default()),
      clusters_(std::make_unique<alvc::cluster::ClusterManager>(topo_)),
      orchestrator_(
          std::make_unique<alvc::orchestrator::NetworkOrchestrator>(*clusters_, catalog_)) {}

std::unique_ptr<AlBuilder> DataCenter::make_al_builder(AlAlgorithm algorithm, std::uint64_t seed,
                                                       bool ensure_connectivity) {
  const AlBuilderOptions options{.ensure_connectivity = ensure_connectivity};
  switch (algorithm) {
    case AlAlgorithm::kVertexCover:
      return std::make_unique<alvc::cluster::VertexCoverAlBuilder>(options);
    case AlAlgorithm::kRandom:
      return std::make_unique<alvc::cluster::RandomAlBuilder>(seed, options);
    case AlAlgorithm::kGreedySetCover:
      return std::make_unique<alvc::cluster::GreedySetCoverAlBuilder>(options);
    case AlAlgorithm::kExact:
      return std::make_unique<alvc::cluster::ExactAlBuilder>(options);
  }
  return std::make_unique<alvc::cluster::VertexCoverAlBuilder>(options);
}

std::unique_ptr<PlacementStrategy> DataCenter::make_placement(PlacementAlgorithm algorithm,
                                                              std::uint64_t seed) {
  switch (algorithm) {
    case PlacementAlgorithm::kElectronicOnly:
      return std::make_unique<alvc::orchestrator::ElectronicOnlyPlacement>();
    case PlacementAlgorithm::kRandom:
      return std::make_unique<alvc::orchestrator::RandomPlacement>(seed);
    case PlacementAlgorithm::kGreedyOptical:
      return std::make_unique<alvc::orchestrator::GreedyOpticalPlacement>();
    case PlacementAlgorithm::kOeoMinimizing:
      return std::make_unique<alvc::orchestrator::OeoMinimizingPlacement>();
  }
  return std::make_unique<alvc::orchestrator::GreedyOpticalPlacement>();
}

alvc::util::Expected<std::vector<alvc::util::ClusterId>> DataCenter::build_clusters() {
  const auto builder =
      make_al_builder(config_.al_algorithm, config_.seed, config_.ensure_al_connectivity);
  return clusters_->create_clusters_by_service(*builder);
}

alvc::util::Expected<alvc::util::NfcId> DataCenter::provision_chain(
    const alvc::nfv::NfcSpec& spec, PlacementAlgorithm placement) {
  const auto strategy = make_placement(placement, config_.seed);
  return orchestrator_->provision_chain(spec, *strategy);
}

alvc::util::Status DataCenter::teardown_chain(alvc::util::NfcId id) {
  return orchestrator_->teardown_chain(id);
}

std::string DataCenter::describe() const {
  std::ostringstream os;
  os << "AL-VC data center: " << topo_.tor_count() << " racks x "
     << config_.topology.servers_per_rack << " servers x " << config_.topology.vms_per_server
     << " VMs (" << topo_.vm_count() << " VMs total), " << topo_.ops_count() << " OPSs ("
     << to_string(config_.topology.core) << " core), " << services_.size() << " services, AL="
     << to_string(config_.al_algorithm) << ", clusters=" << clusters_->cluster_count()
     << ", chains=" << orchestrator_->chain_count();
  return os.str();
}

}  // namespace alvc::core
