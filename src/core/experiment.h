// Experiment-driver helpers shared by benches and examples: wall-clock
// timing and aligned table printing (every bench prints the same style of
// rows the paper's figures would plot).
#pragma once

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace alvc::core {

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Fixed-width text table (header + rows) printed to a stream.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  template <typename... Ts>
  void add_row_values(const Ts&... values) {
    std::vector<std::string> row;
    row.reserve(sizeof...(values));
    (row.push_back(to_cell(values)), ...);
    add_row(std::move(row));
  }

  void print(std::ostream& os = std::cout) const;
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  template <typename T>
  static std::string to_cell(const T& value) {
    if constexpr (std::is_same_v<T, std::string> || std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      std::ostringstream os;
      os << value;
      return os.str();
    }
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals.
[[nodiscard]] std::string fmt(double value, int digits = 3);

}  // namespace alvc::core
