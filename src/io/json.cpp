#include "io/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace alvc::io {

using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Expected;

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) throw std::out_of_range("JSON object has no key '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double n, std::string& out) {
  if (n == std::floor(n) && std::abs(n) < 1e15) {
    // Integral values print without a fraction for readability.
    out += std::to_string(static_cast<long long>(n));
  } else {
    std::ostringstream os;
    os.precision(17);
    os << n;
    out += os.str();
  }
}

void dump_value(const JsonValue& value, int indent, int depth, std::string& out) {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    dump_number(value.as_number(), out);
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_array()) {
    const auto& array = value.as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      dump_value(array[i], indent, depth + 1, out);
    }
    newline(depth);
    out += ']';
  } else {
    const auto& object = value.as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, field] : object) {
      if (!first) out += ',';
      first = false;
      newline(depth + 1);
      dump_string(key, out);
      out += indent > 0 ? ": " : ":";
      dump_value(field, indent, depth + 1, out);
    }
    newline(depth);
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Expected<JsonValue> parse_document() {
    skip_whitespace();
    auto value = parse_value();
    if (!value) return value;
    skip_whitespace();
    if (pos_ != text_.size()) return fail("trailing characters after document");
    return value;
  }

 private:
  Expected<JsonValue> fail(const std::string& message) const {
    return Error{ErrorCode::kInvalidArgument,
                 "JSON parse error at offset " + std::to_string(pos_) + ": " + message};
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Expected<JsonValue> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return s.error();
        return JsonValue(std::move(*s));
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          return JsonValue(true);
        }
        return fail("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          return JsonValue(false);
        }
        return fail("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue(nullptr);
        }
        return fail("bad literal");
      default:
        return parse_number();
    }
  }

  Expected<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("invalid number");
    }
    if (consume('.')) {
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (pos_ == frac) return fail("invalid fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
      if (pos_ == exp) return fail("invalid exponent");
    }
    return JsonValue(std::stod(text_.substr(start, pos_ - start)));
  }

  Expected<std::string> parse_string() {
    if (!consume('"')) {
      return Error{ErrorCode::kInvalidArgument,
                   "JSON parse error at offset " + std::to_string(pos_) + ": expected string"};
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Error{ErrorCode::kInvalidArgument, "truncated \\u escape"};
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error{ErrorCode::kInvalidArgument, "bad \\u escape"};
              }
            }
            // UTF-8 encode (BMP only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error{ErrorCode::kInvalidArgument, "bad escape character"};
        }
      } else {
        out += c;
      }
    }
    return Error{ErrorCode::kInvalidArgument, "unterminated string"};
  }

  Expected<JsonValue> parse_array() {
    if (!consume('[')) return fail("expected '['");  // dispatcher guarantees the bracket
    JsonArray array;
    skip_whitespace();
    if (consume(']')) return JsonValue(std::move(array));
    for (;;) {
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      array.push_back(std::move(*value));
      skip_whitespace();
      if (consume(']')) return JsonValue(std::move(array));
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Expected<JsonValue> parse_object() {
    if (!consume('{')) return fail("expected '{'");  // dispatcher guarantees the brace
    JsonObject object;
    skip_whitespace();
    if (consume('}')) return JsonValue(std::move(object));
    for (;;) {
      skip_whitespace();
      auto key = parse_string();
      if (!key) return key.error();
      skip_whitespace();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      object.insert_or_assign(std::move(*key), std::move(*value));
      skip_whitespace();
      if (consume('}')) return JsonValue(std::move(object));
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string dump(const JsonValue& value, int indent) {
  std::string out;
  dump_value(value, indent, 0, out);
  return out;
}

Expected<JsonValue> parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace alvc::io
