#include "io/dot.h"

#include <array>
#include <sstream>

namespace alvc::io {

namespace {

constexpr std::array<const char*, 8> kPalette = {
    "#8dd3c7", "#bebada", "#fb8072", "#80b1d3", "#fdb462", "#b3de69", "#fccde5", "#d9d9d9",
};

void emit_common(const alvc::topology::DataCenterTopology& topo, std::ostringstream& os,
                 const alvc::cluster::ClusterManager* manager) {
  os << "graph alvc {\n  layout=neato;\n  overlap=false;\n";
  for (const auto& t : topo.tors()) {
    os << "  tor" << t.id.value() << " [shape=box,label=\"ToR" << t.id.value() << "\"];\n";
  }
  for (const auto& o : topo.opss()) {
    os << "  ops" << o.id.value() << " [shape=" << (o.optoelectronic ? "doublecircle" : "circle")
       << ",label=\"O" << o.id.value() << "\"";
    if (manager != nullptr) {
      const auto owner = manager->ownership().owner(o.id);
      if (owner.valid()) {
        os << ",style=filled,fillcolor=\""
           << kPalette[owner.index() % kPalette.size()]  // alvc-lint: allow(index-arithmetic) — palette cycling, not layout
           << "\"";
      }
    }
    if (o.failed) os << ",color=red,penwidth=3";
    os << "];\n";
  }
  for (const auto& t : topo.tors()) {
    for (auto o : t.uplinks) {
      os << "  tor" << t.id.value() << " -- ops" << o.value() << ";\n";
    }
  }
  for (const auto& o : topo.opss()) {
    for (auto peer : o.peer_links) {
      if (o.id < peer) {
        os << "  ops" << o.id.value() << " -- ops" << peer.value() << " [style=dashed];\n";
      }
    }
  }
  os << "}\n";
}

}  // namespace

std::string to_dot(const alvc::topology::DataCenterTopology& topo) {
  std::ostringstream os;
  emit_common(topo, os, nullptr);
  return os.str();
}

std::string to_dot(const alvc::topology::DataCenterTopology& topo,
                   const alvc::cluster::ClusterManager& manager) {
  std::ostringstream os;
  emit_common(topo, os, &manager);
  return os.str();
}

}  // namespace alvc::io
