// Graphviz DOT export of the switch layer, colored by cluster.
//
// `dot -Tsvg out.dot > out.svg` renders ToRs as boxes, OPSs as circles
// (doublecircle when optoelectronic), one fill color per AL, gray for free
// switches, red outline for failed ones.
#pragma once

#include <string>

#include "cluster/cluster_manager.h"
#include "topology/topology.h"

namespace alvc::io {

/// Topology only (no cluster coloring).
[[nodiscard]] std::string to_dot(const alvc::topology::DataCenterTopology& topo);

/// Topology colored by the manager's cluster assignment.
[[nodiscard]] std::string to_dot(const alvc::topology::DataCenterTopology& topo,
                                 const alvc::cluster::ClusterManager& manager);

}  // namespace alvc::io
