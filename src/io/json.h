// Minimal JSON document model, parser, and serialiser.
//
// Used to persist topologies and deployment state (io/serialize.h) and to
// emit machine-readable experiment results. Self-contained: no external
// dependencies. Supports the full JSON grammar except unicode escapes
// beyond \uXXXX for the BMP.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/error.h"

namespace alvc::io {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys ordered -> deterministic dumps.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  JsonValue() = default;                                           // null
  JsonValue(std::nullptr_t) : storage_(std::monostate{}) {}        // NOLINT
  JsonValue(bool b) : storage_(b) {}                     // NOLINT
  JsonValue(double n) : storage_(n) {}                   // NOLINT
  JsonValue(int n) : storage_(static_cast<double>(n)) {}  // NOLINT
  JsonValue(std::size_t n) : storage_(static_cast<double>(n)) {}  // NOLINT
  JsonValue(const char* s) : storage_(std::string(s)) {}  // NOLINT
  JsonValue(std::string s) : storage_(std::move(s)) {}    // NOLINT
  JsonValue(JsonArray a) : storage_(std::move(a)) {}      // NOLINT
  JsonValue(JsonObject o) : storage_(std::move(o)) {}     // NOLINT

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::monostate>(storage_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(storage_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(storage_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(storage_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<JsonArray>(storage_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<JsonObject>(storage_); }

  /// Typed accessors throw std::bad_variant_access on mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(storage_); }
  [[nodiscard]] double as_number() const { return std::get<double>(storage_); }
  [[nodiscard]] std::size_t as_index() const { return static_cast<std::size_t>(as_number()); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(storage_); }
  [[nodiscard]] const JsonArray& as_array() const { return std::get<JsonArray>(storage_); }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(storage_); }
  [[nodiscard]] const JsonObject& as_object() const { return std::get<JsonObject>(storage_); }
  [[nodiscard]] JsonObject& as_object() { return std::get<JsonObject>(storage_); }

  /// Object field access; throws std::out_of_range when missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  bool operator==(const JsonValue& other) const = default;

 private:
  std::variant<std::monostate, bool, double, std::string, JsonArray, JsonObject> storage_;
};

/// Serialises with stable key order; `indent` > 0 pretty-prints.
[[nodiscard]] std::string dump(const JsonValue& value, int indent = 0);

/// Parses a complete JSON document (trailing garbage is an error).
[[nodiscard]] alvc::util::Expected<JsonValue> parse(const std::string& text);

}  // namespace alvc::io
