// Topology and deployment-state serialization.
//
// Topologies round-trip through JSON so experiments can be archived and
// replayed exactly; clusters and chains serialise one-way for inspection
// and plotting (their state is reconstructable from the topology + seeds).
#pragma once

#include "cluster/cluster_manager.h"
#include "io/json.h"
#include "orchestrator/orchestrator.h"
#include "topology/topology.h"
#include "util/error.h"

namespace alvc::io {

/// Full structural dump: every element, link, homing, and failure flag.
[[nodiscard]] JsonValue topology_to_json(const alvc::topology::DataCenterTopology& topo);

/// Rebuilds a topology from topology_to_json output. Validates referential
/// integrity; kInvalidArgument on malformed documents.
[[nodiscard]] alvc::util::Expected<alvc::topology::DataCenterTopology> topology_from_json(
    const JsonValue& value);

/// Cluster state: per-VC service, members, AL, connectivity.
[[nodiscard]] JsonValue clusters_to_json(const alvc::cluster::ClusterManager& manager);

/// Live chains: spec, placement (hosts + domains), route, conversions.
[[nodiscard]] JsonValue chains_to_json(const alvc::orchestrator::NetworkOrchestrator& orch);

}  // namespace alvc::io
