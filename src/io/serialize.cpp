#include "io/serialize.h"

#include <string>

namespace alvc::io {

using alvc::topology::DataCenterTopology;
using alvc::topology::Resources;
using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Expected;

namespace {

JsonValue resources_to_json(const Resources& r) {
  return JsonObject{{"cpu", r.cpu_cores}, {"mem", r.memory_gb}, {"storage", r.storage_gb}};
}

Resources resources_from_json(const JsonValue& v) {
  return Resources{.cpu_cores = v.at("cpu").as_number(),
                   .memory_gb = v.at("mem").as_number(),
                   .storage_gb = v.at("storage").as_number()};
}

}  // namespace

JsonValue topology_to_json(const DataCenterTopology& topo) {
  JsonArray opss;
  for (const auto& o : topo.opss()) {
    JsonArray peers;
    for (auto p : o.peer_links) {
      if (o.id < p) peers.push_back(p.index());  // each core link stored once
    }
    opss.push_back(JsonObject{{"optoelectronic", o.optoelectronic},
                              {"compute", resources_to_json(o.compute)},
                              {"port_gbps", o.port_bandwidth_gbps},
                              {"failed", o.failed},
                              {"peers", std::move(peers)}});
  }
  JsonArray tors;
  for (const auto& t : topo.tors()) {
    JsonArray uplinks;
    for (auto o : t.uplinks) uplinks.push_back(o.index());
    tors.push_back(JsonObject{{"port_gbps", t.port_bandwidth_gbps},
                              {"uplinks", std::move(uplinks)}});
  }
  JsonArray servers;
  for (const auto& s : topo.servers()) {
    JsonArray homings;
    for (auto t : s.secondary_tors) homings.push_back(t.index());
    servers.push_back(JsonObject{{"tor", s.tor.index()},
                                 {"capacity", resources_to_json(s.capacity)},
                                 {"secondary_tors", std::move(homings)}});
  }
  JsonArray vms;
  for (const auto& vm : topo.vms()) {
    vms.push_back(JsonObject{{"server", vm.server.index()},
                             {"service", vm.service.index()},
                             {"demand", resources_to_json(vm.demand)}});
  }
  return JsonObject{{"format", "alvc-topology"},
                    {"version", 1},
                    {"opss", std::move(opss)},
                    {"tors", std::move(tors)},
                    {"servers", std::move(servers)},
                    {"vms", std::move(vms)}};
}

Expected<DataCenterTopology> topology_from_json(const JsonValue& value) {
  const auto malformed = [](const std::string& what) {
    return Error{ErrorCode::kInvalidArgument, "topology_from_json: " + what};
  };
  try {
    if (!value.is_object() || !value.contains("format") ||
        value.at("format").as_string() != "alvc-topology") {
      return malformed("missing or wrong format tag");
    }
    DataCenterTopology topo;
    const auto& opss = value.at("opss").as_array();
    for (const auto& o : opss) {
      topo.add_ops(o.at("optoelectronic").as_bool(), resources_from_json(o.at("compute")),
                   o.at("port_gbps").as_number());
    }
    // Second pass: core links and failure flags (peers may point forward).
    for (std::size_t i = 0; i < opss.size(); ++i) {
      const alvc::util::OpsId id{static_cast<alvc::util::OpsId::value_type>(i)};
      for (const auto& peer : opss[i].at("peers").as_array()) {
        const std::size_t p = peer.as_index();
        if (p >= opss.size()) return malformed("OPS peer out of range");
        topo.connect_ops_ops(id, alvc::util::OpsId{static_cast<alvc::util::OpsId::value_type>(p)});
      }
      if (opss[i].at("failed").as_bool()) {
        ALVC_IGNORE_STATUS(topo.set_ops_failed(id, true),
                           "id is a loop index over the OPSs just added; always valid");
      }
    }
    for (const auto& t : value.at("tors").as_array()) {
      const auto tor = topo.add_tor(t.at("port_gbps").as_number());
      for (const auto& uplink : t.at("uplinks").as_array()) {
        const std::size_t o = uplink.as_index();
        if (o >= topo.ops_count()) return malformed("ToR uplink out of range");
        topo.connect_tor_ops(tor, alvc::util::OpsId{static_cast<alvc::util::OpsId::value_type>(o)});
      }
    }
    for (const auto& s : value.at("servers").as_array()) {
      const std::size_t t = s.at("tor").as_index();
      if (t >= topo.tor_count()) return malformed("server ToR out of range");
      const auto server = topo.add_server(
          alvc::util::TorId{static_cast<alvc::util::TorId::value_type>(t)},
          resources_from_json(s.at("capacity")));
      for (const auto& homing : s.at("secondary_tors").as_array()) {
        const std::size_t h = homing.as_index();
        if (h >= topo.tor_count()) return malformed("secondary homing out of range");
        topo.add_server_homing(server,
                               alvc::util::TorId{static_cast<alvc::util::TorId::value_type>(h)});
      }
    }
    for (const auto& vm : value.at("vms").as_array()) {
      const std::size_t s = vm.at("server").as_index();
      if (s >= topo.server_count()) return malformed("VM server out of range");
      topo.add_vm(alvc::util::ServerId{static_cast<alvc::util::ServerId::value_type>(s)},
                  alvc::util::ServiceId{
                      static_cast<alvc::util::ServiceId::value_type>(vm.at("service").as_index())},
                  resources_from_json(vm.at("demand")));
    }
    return topo;
  } catch (const std::exception& e) {
    return malformed(e.what());
  }
}

JsonValue clusters_to_json(const alvc::cluster::ClusterManager& manager) {
  JsonArray clusters;
  for (const auto* vc : manager.clusters()) {
    JsonArray vms;
    for (auto vm : vc->vms) vms.push_back(vm.index());
    JsonArray tors;
    for (auto t : vc->layer.tors) tors.push_back(t.index());
    JsonArray opss;
    for (auto o : vc->layer.opss) opss.push_back(o.index());
    clusters.push_back(JsonObject{{"id", vc->id.index()},
                                  {"service", vc->service.index()},
                                  {"vms", std::move(vms)},
                                  {"tors", std::move(tors)},
                                  {"al", std::move(opss)},
                                  {"connected", vc->connected}});
  }
  return JsonObject{{"format", "alvc-clusters"}, {"clusters", std::move(clusters)}};
}

JsonValue chains_to_json(const alvc::orchestrator::NetworkOrchestrator& orch) {
  JsonArray chains;
  for (const auto* chain : orch.chains()) {
    JsonArray hosts;
    for (const auto& host : chain->placement.hosts) {
      if (const auto* ops = std::get_if<alvc::util::OpsId>(&host)) {
        hosts.push_back(JsonObject{{"domain", "optical"}, {"ops", ops->index()}});
      } else {
        hosts.push_back(JsonObject{{"domain", "electronic"},
                                   {"server", std::get<alvc::util::ServerId>(host).index()}});
      }
    }
    JsonArray route;
    for (std::size_t v : chain->route.vertices) route.push_back(v);
    chains.push_back(JsonObject{{"id", chain->record.id.index()},
                                {"name", chain->record.spec.name},
                                {"service", chain->record.spec.service.index()},
                                {"bandwidth_gbps", chain->record.spec.bandwidth_gbps},
                                {"cluster", chain->cluster.index()},
                                {"hosts", std::move(hosts)},
                                {"route", std::move(route)},
                                {"oeo_mid_chain", chain->placement.conversions.mid_chain},
                                {"flow_rules", chain->flow_rules}});
  }
  return JsonObject{{"format", "alvc-chains"}, {"chains", std::move(chains)}};
}

}  // namespace alvc::io
