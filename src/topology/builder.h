// Parametric, seeded construction of AL-VC topologies.
//
// The paper's testbed (Fig. 2) is: racks of servers behind ToRs, each ToR
// uplinked to several OPSs, OPS core wired per the authors' earlier OPS
// topology work [29]. We parameterise every knob so benches can sweep
// scale, and substitute the unavailable hardware with a deterministic
// generator (see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "topology/elements.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace alvc::topology {

/// Shape of the OPS-OPS core (ref [29] evaluates several such families).
enum class CoreKind : std::uint8_t {
  kNone,           // no OPS-OPS links (ToR-OPS bipartite only)
  kFullMesh,       // every OPS pair linked
  kRing,           // cycle over OPSs
  kTorus2D,        // 2-D wrap-around grid (closest square factorisation)
  kRandomRegular,  // random d-regular multigraph (pairing model, deduped)
};

[[nodiscard]] const char* to_string(CoreKind kind) noexcept;

struct TopologyParams {
  std::size_t rack_count = 8;
  std::size_t servers_per_rack = 4;
  std::size_t vms_per_server = 4;
  std::size_t ops_count = 8;
  /// Uplinks per ToR into the OPS layer (capped at ops_count).
  std::size_t tor_ops_degree = 3;
  /// Probability that each uplink is drawn from the rack's local window of
  /// OPSs (physically nearby switches) instead of uniformly at random.
  /// 0 = fully random wiring; 1 = fully local. Local wiring keeps ALs
  /// geographically compact, which matters at large scale (ABL2).
  double uplink_locality = 0.0;
  CoreKind core = CoreKind::kRing;
  /// Degree for kRandomRegular cores.
  std::size_t core_degree = 3;
  /// Fraction of OPSs that are optoelectronic routers (capable of hosting
  /// VNFs, §IV-D). Rounded to at least one when > 0.
  double optoelectronic_fraction = 0.5;
  /// Number of distinct service types VMs are labelled with (§III-A: "the
  /// number of services in a data center is defined by the network
  /// operator").
  std::size_t service_count = 4;
  /// Zipf exponent for the service popularity skew (0 = uniform).
  double service_skew = 0.8;
  /// When true, every VM on a server gets a deterministic block service
  /// (service = server_index * service_count / total_servers) instead of a
  /// random draw, consuming no RNG (existing seeds' streams are
  /// untouched). Consecutive servers share a service, so each service
  /// group is a contiguous run of servers/racks — e.g. with service_count
  /// == rack_count every service is exactly one rack. That locality keeps
  /// every AL O(rack) instead of O(datacenter), which is what lets the
  /// million-VM scale soak build 10^4+ clusters. Overrides service_skew.
  bool server_local_services = false;
  /// Probability that a server is additionally homed to a second, random
  /// ToR (multi-homed machines, Fig. 4). 0 disables multi-homing.
  double dual_homing_probability = 0.0;
  Resources server_capacity{.cpu_cores = 32, .memory_gb = 128, .storage_gb = 1024};
  Resources vm_demand{.cpu_cores = 2, .memory_gb = 8, .storage_gb = 64};
  /// Compute available on each optoelectronic router ("limited buffer,
  /// storage, and processing capability").
  Resources optoelectronic_compute{.cpu_cores = 4, .memory_gb = 8, .storage_gb = 32};
  std::uint64_t seed = 1;

  [[nodiscard]] std::size_t total_vms() const noexcept {
    return rack_count * servers_per_rack * vms_per_server;
  }
};

/// Builds a topology from `params`. Deterministic in params.seed.
/// Throws std::invalid_argument on degenerate parameters (zero racks, ...).
[[nodiscard]] DataCenterTopology build_topology(const TopologyParams& params);

}  // namespace alvc::topology
