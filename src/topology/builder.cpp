#include "topology/builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>

namespace alvc::topology {

using alvc::util::Rng;

const char* to_string(CoreKind kind) noexcept {
  switch (kind) {
    case CoreKind::kNone: return "none";
    case CoreKind::kFullMesh: return "full-mesh";
    case CoreKind::kRing: return "ring";
    case CoreKind::kTorus2D: return "torus2d";
    case CoreKind::kRandomRegular: return "random-regular";
  }
  return "?";
}

namespace {

void build_core(DataCenterTopology& topo, const TopologyParams& params, Rng& rng) {
  const std::size_t n = params.ops_count;
  const auto ops_id = [](std::size_t i) { return OpsId{static_cast<OpsId::value_type>(i)}; };
  switch (params.core) {
    case CoreKind::kNone:
      break;
    case CoreKind::kFullMesh:
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) topo.connect_ops_ops(ops_id(i), ops_id(j));
      }
      break;
    case CoreKind::kRing:
      if (n >= 2) {
        for (std::size_t i = 0; i + 1 < n; ++i) topo.connect_ops_ops(ops_id(i), ops_id(i + 1));
        if (n > 2) topo.connect_ops_ops(ops_id(n - 1), ops_id(0));
      }
      break;
    case CoreKind::kTorus2D: {
      // Closest factorisation rows*cols = n with rows <= cols.
      std::size_t rows = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
      while (rows > 1 && n % rows != 0) --rows;
      const std::size_t cols = n / rows;
      std::set<std::pair<std::size_t, std::size_t>> added;
      const auto link = [&](std::size_t a, std::size_t b) {
        if (a == b) return;
        const auto key = std::minmax(a, b);
        if (added.insert(key).second) topo.connect_ops_ops(ops_id(a), ops_id(b));
      };
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          const std::size_t v = r * cols + c;
          link(v, r * cols + (c + 1) % cols);
          link(v, ((r + 1) % rows) * cols + c);
        }
      }
      break;
    }
    case CoreKind::kRandomRegular: {
      if (n < 2) break;
      const std::size_t d = std::min(params.core_degree, n - 1);
      // Pairing model with dedup and a bounded number of retries; the result
      // is near-regular, which is all the benches rely on.
      std::set<std::pair<std::size_t, std::size_t>> added;
      for (int attempt = 0; attempt < 200; ++attempt) {
        std::vector<std::size_t> stubs;
        std::vector<std::size_t> deficit(n, d);
        for (std::size_t v = 0; v < n; ++v) {
          for (const auto& [a, b] : added) {
            if (a == v || b == v) {
              if (deficit[v] > 0) --deficit[v];
            }
          }
          for (std::size_t k = 0; k < deficit[v]; ++k) stubs.push_back(v);
        }
        if (stubs.size() < 2) break;
        rng.shuffle(stubs);
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
          const auto key = std::minmax(stubs[i], stubs[i + 1]);
          if (key.first == key.second || added.contains(key)) continue;
          added.insert(key);
        }
        // Stop once everyone is within one link of the target degree.
        bool done = true;
        std::vector<std::size_t> degree(n, 0);
        for (const auto& [a, b] : added) {
          ++degree[a];
          ++degree[b];
        }
        for (std::size_t v = 0; v < n; ++v) {
          if (degree[v] + 1 < d) done = false;
        }
        if (done) break;
      }
      for (const auto& [a, b] : added) topo.connect_ops_ops(ops_id(a), ops_id(b));
      break;
    }
  }
}

}  // namespace

DataCenterTopology build_topology(const TopologyParams& params) {
  if (params.rack_count == 0 || params.servers_per_rack == 0 || params.vms_per_server == 0) {
    throw std::invalid_argument("build_topology: racks/servers/VMs must be positive");
  }
  if (params.ops_count == 0) throw std::invalid_argument("build_topology: ops_count must be > 0");
  if (params.tor_ops_degree == 0) {
    throw std::invalid_argument("build_topology: tor_ops_degree must be > 0");
  }
  if (params.service_count == 0) {
    throw std::invalid_argument("build_topology: service_count must be > 0");
  }
  if (params.optoelectronic_fraction < 0 || params.optoelectronic_fraction > 1) {
    throw std::invalid_argument("build_topology: optoelectronic_fraction out of [0,1]");
  }

  Rng rng(params.seed);
  DataCenterTopology topo;

  // OPS layer first (ids 0..ops_count-1). Which switches are optoelectronic
  // is a random subset of the requested size.
  std::size_t oe_count =
      static_cast<std::size_t>(std::round(params.optoelectronic_fraction *
                                          static_cast<double>(params.ops_count)));
  if (params.optoelectronic_fraction > 0 && oe_count == 0) oe_count = 1;
  std::vector<std::size_t> ops_order(params.ops_count);
  std::iota(ops_order.begin(), ops_order.end(), std::size_t{0});
  rng.shuffle(ops_order);
  std::vector<bool> is_oe(params.ops_count, false);
  for (std::size_t i = 0; i < oe_count; ++i) is_oe[ops_order[i]] = true;
  for (std::size_t i = 0; i < params.ops_count; ++i) {
    topo.add_ops(is_oe[i], params.optoelectronic_compute);
  }

  build_core(topo, params, rng);

  // Racks: ToR, servers, VMs. Each ToR picks `tor_ops_degree` distinct OPS
  // uplinks at random (the paper's "each ToR is connected to multiple OPSs").
  const std::size_t degree = std::min(params.tor_ops_degree, params.ops_count);

  if (params.dual_homing_probability < 0 || params.dual_homing_probability > 1) {
    throw std::invalid_argument("build_topology: dual_homing_probability out of [0,1]");
  }
  if (params.uplink_locality < 0 || params.uplink_locality > 1) {
    throw std::invalid_argument("build_topology: uplink_locality out of [0,1]");
  }
  for (std::size_t r = 0; r < params.rack_count; ++r) {
    const TorId tor = topo.add_tor();
    // Local picks come from a contiguous OPS window anchored at the rack's
    // position; random picks from the whole layer. Distinctness enforced.
    const std::size_t window_base =
        (r * params.ops_count) / std::max<std::size_t>(params.rack_count, 1);
    std::set<std::size_t> chosen;
    std::size_t local_cursor = 0;
    while (chosen.size() < degree) {
      std::size_t pick;
      if (params.uplink_locality > 0 && rng.bernoulli(params.uplink_locality)) {
        pick = (window_base + local_cursor++) % params.ops_count;
      } else {
        pick = rng.uniform_index(params.ops_count);
      }
      chosen.insert(pick);
    }
    for (std::size_t o : chosen) {
      topo.connect_tor_ops(tor, OpsId{static_cast<OpsId::value_type>(o)});
    }
    for (std::size_t s = 0; s < params.servers_per_rack; ++s) {
      const ServerId server = topo.add_server(tor, params.server_capacity);
      for (std::size_t v = 0; v < params.vms_per_server; ++v) {
        // Block assignment draws nothing from the RNG, so enabling it
        // cannot shift any other seeded stream. Contiguous blocks (not
        // modulo) so each service's servers are physically adjacent and
        // its AL stays rack-local.
        const std::size_t total_servers = params.rack_count * params.servers_per_rack;
        const std::size_t service =
            params.server_local_services
                ? std::min(server.index() * params.service_count / total_servers,
                           params.service_count - 1)
            : params.service_skew > 0 ? rng.zipf(params.service_count, params.service_skew)
                                      : rng.uniform_index(params.service_count);
        topo.add_vm(server, ServiceId{static_cast<ServiceId::value_type>(service)},
                    params.vm_demand);
      }
    }
  }
  // Second pass: optional dual homing once every ToR exists.
  if (params.dual_homing_probability > 0 && params.rack_count > 1) {
    for (const auto& server : topo.servers()) {
      if (!rng.bernoulli(params.dual_homing_probability)) continue;
      TorId other{static_cast<TorId::value_type>(rng.uniform_index(params.rack_count))};
      if (other == server.tor) {
        other = TorId{static_cast<TorId::value_type>((other.value() + 1) % params.rack_count)};
      }
      topo.add_server_homing(server.id, other);
    }
  }
  return topo;
}

}  // namespace alvc::topology
