#include "topology/topology.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>
#include "util/lock_rank.h"

namespace alvc::topology {

DataCenterTopology::DataCenterTopology(const DataCenterTopology& other)
    : servers_(other.servers_),
      vms_(other.vms_),
      tors_(other.tors_),
      opss_(other.opss_),
      failed_links_(other.failed_links_) {}

DataCenterTopology& DataCenterTopology::operator=(const DataCenterTopology& other) {
  if (this == &other) return *this;
  servers_ = other.servers_;
  vms_ = other.vms_;
  tors_ = other.tors_;
  opss_ = other.opss_;
  failed_links_ = other.failed_links_;
  invalidate_cache();
  return *this;
}

DataCenterTopology::DataCenterTopology(DataCenterTopology&& other) noexcept
    : servers_(std::move(other.servers_)),
      vms_(std::move(other.vms_)),
      tors_(std::move(other.tors_)),
      opss_(std::move(other.opss_)),
      failed_links_(std::move(other.failed_links_)) {
  other.invalidate_cache();
}

DataCenterTopology& DataCenterTopology::operator=(DataCenterTopology&& other) noexcept {
  if (this == &other) return *this;
  servers_ = std::move(other.servers_);
  vms_ = std::move(other.vms_);
  tors_ = std::move(other.tors_);
  opss_ = std::move(other.opss_);
  failed_links_ = std::move(other.failed_links_);
  invalidate_cache();
  other.invalidate_cache();
  return *this;
}

TorId DataCenterTopology::add_tor(double port_bandwidth_gbps) {
  const TorId id{static_cast<TorId::value_type>(tors_.size())};
  tors_.push_back(TorSwitch{.id = id, .port_bandwidth_gbps = port_bandwidth_gbps});
  invalidate_cache();
  return id;
}

ServerId DataCenterTopology::add_server(TorId tor, const Resources& capacity) {
  auto& t = tors_.at(tor.index());
  const ServerId id{static_cast<ServerId::value_type>(servers_.size())};
  servers_.push_back(Server{.id = id, .tor = tor, .capacity = capacity});
  t.servers.push_back(id);
  bump_mutation_epoch();
  return id;
}

VmId DataCenterTopology::add_vm(ServerId server, ServiceId service, const Resources& demand) {
  auto& s = servers_.at(server.index());
  const VmId id{static_cast<VmId::value_type>(vms_.size())};
  vms_.push_back(Vm{.id = id, .server = server, .service = service, .demand = demand});
  s.vms.push_back(id);
  bump_mutation_epoch();
  return id;
}

OpsId DataCenterTopology::add_ops(bool optoelectronic, const Resources& compute,
                                  double port_bandwidth_gbps) {
  const OpsId id{static_cast<OpsId::value_type>(opss_.size())};
  opss_.push_back(OpticalSwitch{.id = id,
                                .optoelectronic = optoelectronic,
                                .compute = optoelectronic ? compute : Resources{},
                                .port_bandwidth_gbps = port_bandwidth_gbps});
  invalidate_cache();
  return id;
}

void DataCenterTopology::connect_tor_ops(TorId tor, OpsId ops) {
  auto& t = tors_.at(tor.index());
  auto& o = opss_.at(ops.index());
  t.uplinks.push_back(ops);
  o.tor_links.push_back(tor);
  invalidate_cache();
}

void DataCenterTopology::connect_ops_ops(OpsId a, OpsId b) {
  if (a == b) throw std::invalid_argument("connect_ops_ops: self-link");
  auto& oa = opss_.at(a.index());
  auto& ob = opss_.at(b.index());
  oa.peer_links.push_back(b);
  ob.peer_links.push_back(a);
  invalidate_cache();
}

void DataCenterTopology::add_server_homing(ServerId server, TorId tor) {
  auto& s = servers_.at(server.index());
  if (tor.index() >= tors_.size()) {
    throw std::out_of_range("add_server_homing: bad ToR id");
  }
  if (s.tor == tor) return;
  if (std::find(s.secondary_tors.begin(), s.secondary_tors.end(), tor) !=
      s.secondary_tors.end()) {
    return;
  }
  s.secondary_tors.push_back(tor);
  bump_mutation_epoch();
}

std::size_t DataCenterTopology::service_count() const {
  std::size_t count = 0;
  for (const auto& vm : vms_) {
    count = std::max(count, vm.service.index() + 1);
  }
  return count;
}

std::vector<TorId> DataCenterTopology::tors_of_vm(VmId id) const {
  const Server& s = server(vm(id).server);
  std::vector<TorId> tors;
  tors.reserve(1 + s.secondary_tors.size());
  tors.push_back(s.tor);
  tors.insert(tors.end(), s.secondary_tors.begin(), s.secondary_tors.end());
  return tors;
}

void DataCenterTopology::move_vm(VmId vm, ServerId new_server) {
  auto& v = vms_.at(vm.index());
  auto& dst = servers_.at(new_server.index());
  if (v.server == new_server) return;
  auto& src = servers_.at(v.server.index());
  std::erase(src.vms, vm);
  dst.vms.push_back(vm);
  v.server = new_server;
  bump_mutation_epoch();
}

alvc::util::Status DataCenterTopology::set_ops_failed(OpsId ops, bool failed) {
  if (ops.index() >= opss_.size()) {
    return alvc::util::Error{alvc::util::ErrorCode::kInvalidArgument,
                             "set_ops_failed: bad OPS id " + std::to_string(ops.value())};
  }
  opss_[ops.index()].failed = failed;
  invalidate_cache();
  return alvc::util::Status::ok();
}

alvc::util::Status DataCenterTopology::set_tor_failed(TorId tor, bool failed) {
  if (tor.index() >= tors_.size()) {
    return alvc::util::Error{alvc::util::ErrorCode::kInvalidArgument,
                             "set_tor_failed: bad ToR id " + std::to_string(tor.value())};
  }
  tors_[tor.index()].failed = failed;
  invalidate_cache();
  return alvc::util::Status::ok();
}

alvc::util::Status DataCenterTopology::set_server_failed(ServerId server, bool failed) {
  if (server.index() >= servers_.size()) {
    return alvc::util::Error{alvc::util::ErrorCode::kInvalidArgument,
                             "set_server_failed: bad server id " + std::to_string(server.value())};
  }
  servers_[server.index()].failed = failed;
  // Servers are not switch-graph vertices; the cache survives. The epoch
  // still moves: host usability feeds refit decisions built on it.
  bump_mutation_epoch();
  return alvc::util::Status::ok();
}

alvc::util::Status DataCenterTopology::set_link_failed(TorId tor, OpsId ops, bool failed) {
  if (tor.index() >= tors_.size() || ops.index() >= opss_.size()) {
    return alvc::util::Error{alvc::util::ErrorCode::kInvalidArgument,
                             "set_link_failed: bad endpoint id"};
  }
  const auto& uplinks = tors_[tor.index()].uplinks;
  if (std::find(uplinks.begin(), uplinks.end(), ops) == uplinks.end()) {
    return alvc::util::Error{alvc::util::ErrorCode::kNotFound,
                             "set_link_failed: ToR " + std::to_string(tor.value()) +
                                 " has no link to OPS " + std::to_string(ops.value())};
  }
  if (failed) {
    failed_links_.insert(link_key(tor, ops));
  } else {
    failed_links_.erase(link_key(tor, ops));
  }
  invalidate_cache();
  return alvc::util::Status::ok();
}

std::vector<OpsId> DataCenterTopology::usable_uplinks(TorId tor) const {
  const TorSwitch& t = this->tor(tor);
  std::vector<OpsId> out;
  if (t.failed) return out;
  out.reserve(t.uplinks.size());
  for (OpsId ops : t.uplinks) {
    if (opss_[ops.index()].failed || link_failed(tor, ops)) continue;
    out.push_back(ops);
  }
  return out;
}

void DataCenterTopology::warm_switch_graph() const {
  ALVC_LOCK_RANK(alvc::util::lock_rank::kTopologySwitchGraphCache, "topology.switch_graph_cache");
  const std::lock_guard<std::mutex> lock(switch_graph_mutex_);
  if (switch_graph_valid_.load(std::memory_order_relaxed)) return;
  alvc::graph::Graph g(tors_.size() + opss_.size());
  for (const auto& t : tors_) {
    if (t.failed) continue;
    for (OpsId ops : t.uplinks) {
      if (opss_[ops.index()].failed || link_failed(t.id, ops)) continue;
      g.add_edge(tor_vertex(t.id), ops_vertex(ops));
    }
  }
  for (const auto& o : opss_) {
    if (o.failed) continue;
    for (OpsId peer : o.peer_links) {
      if (o.id < peer && !opss_[peer.index()].failed) {  // each undirected core link once
        g.add_edge(ops_vertex(o.id), ops_vertex(peer));
      }
    }
  }
  // Warm the CSR adjacency before publication so concurrent readers never
  // contend on the graph's own lazy build.
  g.ensure_csr();
  switch_graph_ = std::move(g);
  switch_graph_valid_.store(true, std::memory_order_release);
}

// Unchecked read of the guarded cache: the acquire load of the valid flag
// pairs with warm_switch_graph's release store, so a reader that observes
// valid==true sees the fully built graph, and the documented protocol (no
// concurrent mutation while const readers are active) keeps it stable. The
// analysis cannot model publication-then-quiescence, hence the suppression.
const alvc::graph::Graph& DataCenterTopology::switch_graph() const
    ALVC_NO_THREAD_SAFETY_ANALYSIS {
  // Double-checked lazy build: concurrent const readers (parallel AL
  // construction) may race to warm the cache; they serialise inside
  // warm_switch_graph.
  if (!switch_graph_valid_.load(std::memory_order_acquire)) warm_switch_graph();
  return switch_graph_;
}

OpsId DataCenterTopology::vertex_to_ops(std::size_t v) const {
  if (!is_ops_vertex(v) || v >= tors_.size() + opss_.size()) {
    throw std::out_of_range("vertex_to_ops: not an OPS vertex");
  }
  return OpsId{static_cast<OpsId::value_type>(v - tors_.size())};
}

TorId DataCenterTopology::vertex_to_tor(std::size_t v) const {
  if (is_ops_vertex(v)) throw std::out_of_range("vertex_to_tor: not a ToR vertex");
  return TorId{static_cast<TorId::value_type>(v)};
}

alvc::graph::BipartiteGraph DataCenterTopology::vm_tor_graph(std::span<const VmId> group) const {
  alvc::graph::BipartiteGraph g(group.size(), tors_.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (TorId t : tors_of_vm(group[i])) {
      if (tors_[t.index()].failed) continue;  // a dead ToR covers nobody
      g.add_edge(i, t.index());
    }
  }
  return g;
}

alvc::graph::BipartiteGraph DataCenterTopology::tor_ops_graph() const {
  alvc::graph::BipartiteGraph g(tors_.size(), opss_.size());
  for (const auto& t : tors_) {
    if (t.failed) continue;
    for (OpsId ops : t.uplinks) {
      if (opss_[ops.index()].failed || link_failed(t.id, ops)) continue;
      g.add_edge(t.id.index(), ops.index());
    }
  }
  return g;
}

}  // namespace alvc::topology
