// Structural invariant checks for a DataCenterTopology.
//
// Used by tests and by benches before trusting a generated topology:
// referential integrity of ids, bidirectional link consistency, domain
// sanity (plain OPSs have no compute), and connectivity diagnostics.
#pragma once

#include <string>
#include <vector>

#include "topology/topology.h"

namespace alvc::topology {

struct ValidationReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Checks every structural invariant; collects human-readable violations.
[[nodiscard]] ValidationReport validate(const DataCenterTopology& topo);

/// True if the switch-level graph (ToRs + OPSs) is one connected component.
/// ToR-less or OPS-less corner cases count as connected when trivially so.
[[nodiscard]] bool switch_layer_connected(const DataCenterTopology& topo);

}  // namespace alvc::topology
