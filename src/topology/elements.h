// Physical and virtual elements of the hybrid data-center network
// (paper Fig. 2): servers in racks behind ToR switches; the core built from
// Optical Packet Switches (OPS); servers hosting VMs. Some OPSs are
// optoelectronic routers (§IV-D): they add limited buffer/storage/CPU and
// can therefore host low-demand VNFs inside the optical domain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"

namespace alvc::topology {

using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::ServiceId;
using alvc::util::TorId;
using alvc::util::VmId;

/// Compute/storage resources. Used both for capacities (what a host offers)
/// and demands (what a VNF or VM needs).
struct Resources {
  double cpu_cores = 0;
  double memory_gb = 0;
  double storage_gb = 0;

  [[nodiscard]] bool fits_within(const Resources& capacity) const noexcept {
    return cpu_cores <= capacity.cpu_cores && memory_gb <= capacity.memory_gb &&
           storage_gb <= capacity.storage_gb;
  }
  Resources& operator+=(const Resources& other) noexcept {
    cpu_cores += other.cpu_cores;
    memory_gb += other.memory_gb;
    storage_gb += other.storage_gb;
    return *this;
  }
  Resources& operator-=(const Resources& other) noexcept {
    cpu_cores -= other.cpu_cores;
    memory_gb -= other.memory_gb;
    storage_gb -= other.storage_gb;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) noexcept { return a += b; }
  friend Resources operator-(Resources a, const Resources& b) noexcept { return a -= b; }
  [[nodiscard]] bool non_negative() const noexcept {
    return cpu_cores >= -1e-9 && memory_gb >= -1e-9 && storage_gb >= -1e-9;
  }
};

/// A physical machine in a rack. Besides its rack ToR a server may be
/// multi-homed to further ToRs (paper Fig. 4 shows machines with several
/// incoming ToR connections; that is what makes the stage-1 ToR selection a
/// non-trivial cover problem).
struct Server {
  ServerId id;
  TorId tor;            // the rack's (primary) ToR switch
  Resources capacity;   // what the server can host
  std::vector<VmId> vms;
  std::vector<TorId> secondary_tors;  // additional homings, excludes `tor`
  /// Failure injection: a failed server hosts no VNF instances and its VMs
  /// are unreachable until it is repaired.
  bool failed = false;
};

/// A virtual machine, pinned to a server and labelled with a service type
/// (the basis of the paper's service-based clustering, §III-A).
struct Vm {
  VmId id;
  ServerId server;
  ServiceId service;
  Resources demand;
};

/// Top-of-Rack electronic switch.
struct TorSwitch {
  TorId id;
  std::vector<ServerId> servers;
  std::vector<OpsId> uplinks;  // OPSs this ToR connects to
  double port_bandwidth_gbps = 10.0;
  /// Failure injection: a failed ToR strands its whole rack — it leaves the
  /// switch graph and every AL that contained it must be rebuilt.
  bool failed = false;
};

/// Optical packet switch in the core. `optoelectronic` marks the special
/// routers of §IV-D that can host VNFs; plain OPSs have zero compute.
struct OpticalSwitch {
  OpsId id;
  std::vector<TorId> tor_links;
  std::vector<OpsId> peer_links;  // OPS-OPS core links
  bool optoelectronic = false;
  Resources compute;              // zero unless optoelectronic
  double port_bandwidth_gbps = 100.0;
  /// Failure injection: a failed OPS carries no traffic, hosts no VNFs, and
  /// is skipped by AL construction until repaired.
  bool failed = false;
};

/// Which transmission domain a network element lives in. ToRs and servers
/// are electronic; OPSs are optical. Crossing optical->electronic->optical
/// costs an O/E/O conversion (§IV-D).
enum class Domain : std::uint8_t { kElectronic, kOptical };

[[nodiscard]] constexpr const char* to_string(Domain d) noexcept {
  return d == Domain::kElectronic ? "electronic" : "optical";
}

}  // namespace alvc::topology
