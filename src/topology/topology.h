// The hybrid data-center topology (paper Fig. 2).
//
// Owns all elements (servers, VMs, ToRs, OPSs) and the physical links
// between them, and exposes the two derived views the rest of the system
// needs:
//   * a unified switch-level Graph (ToRs + OPSs) for routing, where vertex
//     indices are ToRs first then OPSs;
//   * bipartite VM->ToR and ToR->OPS graphs for AL construction.
//
// Invariant: ids are dense (id.value() indexes the owning vector).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "graph/bipartite.h"
#include "graph/graph.h"
#include "topology/elements.h"
#include "util/error.h"
#include "util/thread_annotations.h"

namespace alvc::topology {

class DataCenterTopology {
 public:
  DataCenterTopology() = default;
  // The switch-graph cache (and the mutex guarding its lazy build) is
  // per-object state, not topology data: copies and moves transfer the
  // elements and start with a cold cache.
  DataCenterTopology(const DataCenterTopology& other);
  DataCenterTopology& operator=(const DataCenterTopology& other);
  DataCenterTopology(DataCenterTopology&& other) noexcept;
  DataCenterTopology& operator=(DataCenterTopology&& other) noexcept;
  ~DataCenterTopology() = default;

  // ---- construction (used by TopologyBuilder and tests) ----

  /// Adds a ToR switch; returns its id.
  TorId add_tor(double port_bandwidth_gbps = 10.0);
  /// Adds a server under `tor`. Throws std::out_of_range on bad tor.
  ServerId add_server(TorId tor, const Resources& capacity);
  /// Adds a VM on `server` with a service label.
  VmId add_vm(ServerId server, ServiceId service, const Resources& demand = {});
  /// Adds an optical switch; optoelectronic ones get compute capacity.
  OpsId add_ops(bool optoelectronic = false, const Resources& compute = {},
                double port_bandwidth_gbps = 100.0);
  /// Connects a ToR to an OPS (the electronic/optical boundary link).
  void connect_tor_ops(TorId tor, OpsId ops);
  /// Connects two OPSs in the optical core.
  void connect_ops_ops(OpsId a, OpsId b);

  /// Migrates a VM to another server (live migration / churn events).
  /// Throws std::out_of_range on bad ids.
  void move_vm(VmId vm, ServerId new_server);

  /// Adds a secondary ToR homing to a server (multi-homed machines,
  /// Fig. 4). No-op if already homed to `tor`.
  void add_server_homing(ServerId server, TorId tor);

  // ---- failure injection ----
  //
  // Every setter validates its ids and returns kInvalidArgument instead of
  // throwing: failure handling must be total, a bad id from a fault script
  // must never take the control plane down. Failed elements (and links)
  // disappear from the switch graph and the bipartite AL-construction views
  // until repaired.

  /// Marks an OPS failed (or repaired).
  alvc::util::Status set_ops_failed(OpsId ops, bool failed);
  /// Marks a ToR failed (or repaired). A failed ToR strands its rack.
  alvc::util::Status set_tor_failed(TorId tor, bool failed);
  /// Marks a server failed (or repaired).
  alvc::util::Status set_server_failed(ServerId server, bool failed);
  /// Fails (or repairs) one ToR-OPS link. kNotFound when the link does not
  /// exist. Both endpoints stay up; only the cable is cut.
  alvc::util::Status set_link_failed(TorId tor, OpsId ops, bool failed);

  /// Usable = exists and not failed.
  [[nodiscard]] bool ops_usable(OpsId ops) const { return !this->ops(ops).failed; }
  [[nodiscard]] bool tor_usable(TorId tor) const { return !this->tor(tor).failed; }
  [[nodiscard]] bool server_usable(ServerId server) const { return !this->server(server).failed; }
  /// Raw link flag (ignores endpoint state).
  [[nodiscard]] bool link_failed(TorId tor, OpsId ops) const {
    return failed_links_.contains(link_key(tor, ops));
  }
  /// True when the ToR-OPS link can carry traffic: both endpoints usable and
  /// the link itself up. Does not check that the link exists.
  [[nodiscard]] bool link_usable(TorId tor, OpsId ops) const {
    return tor_usable(tor) && ops_usable(ops) && !link_failed(tor, ops);
  }
  /// The OPSs `tor` can actually reach right now: uplinks whose far end is
  /// up and whose link is intact. Empty for a failed ToR.
  [[nodiscard]] std::vector<OpsId> usable_uplinks(TorId tor) const;

  // ---- element access ----

  [[nodiscard]] std::size_t server_count() const noexcept { return servers_.size(); }
  [[nodiscard]] std::size_t vm_count() const noexcept { return vms_.size(); }
  [[nodiscard]] std::size_t tor_count() const noexcept { return tors_.size(); }
  [[nodiscard]] std::size_t ops_count() const noexcept { return opss_.size(); }

  [[nodiscard]] const Server& server(ServerId id) const { return servers_.at(id.index()); }
  [[nodiscard]] const Vm& vm(VmId id) const { return vms_.at(id.index()); }
  [[nodiscard]] const TorSwitch& tor(TorId id) const { return tors_.at(id.index()); }
  [[nodiscard]] const OpticalSwitch& ops(OpsId id) const { return opss_.at(id.index()); }

  [[nodiscard]] std::span<const Server> servers() const noexcept { return servers_; }
  [[nodiscard]] std::span<const Vm> vms() const noexcept { return vms_; }
  [[nodiscard]] std::span<const TorSwitch> tors() const noexcept { return tors_; }
  [[nodiscard]] std::span<const OpticalSwitch> opss() const noexcept { return opss_; }

  /// The primary ToR a VM hangs off (via its server's rack).
  [[nodiscard]] TorId tor_of_vm(VmId id) const { return server(vm(id).server).tor; }

  /// Number of distinct service groups: one past the highest service id any
  /// VM carries (service ids are dense by convention). 0 for an empty
  /// topology. Callers that size per-service tables use this instead of
  /// doing id arithmetic themselves (alvc_lint `index-arithmetic`).
  [[nodiscard]] std::size_t service_count() const;

  /// All ToRs a VM can reach (primary first, then secondary homings).
  [[nodiscard]] std::vector<TorId> tors_of_vm(VmId id) const;

  // ---- derived graph views ----

  /// Switch-level graph over ToRs and OPSs. Vertex layout:
  /// [0, tor_count) are ToRs, [tor_count, tor_count + ops_count) are OPSs.
  /// Rebuilt lazily after structural changes. The lazy build is
  /// synchronised, so concurrent const readers (parallel AL builds) are
  /// safe as long as no thread mutates the topology meanwhile.
  [[nodiscard]] const alvc::graph::Graph& switch_graph() const;
  [[nodiscard]] std::size_t tor_vertex(TorId id) const { return id.index(); }
  [[nodiscard]] std::size_t ops_vertex(OpsId id) const { return tors_.size() + id.index(); }
  [[nodiscard]] bool is_ops_vertex(std::size_t v) const noexcept { return v >= tors_.size(); }
  [[nodiscard]] Domain vertex_domain(std::size_t v) const noexcept {
    return is_ops_vertex(v) ? Domain::kOptical : Domain::kElectronic;
  }
  [[nodiscard]] OpsId vertex_to_ops(std::size_t v) const;
  [[nodiscard]] TorId vertex_to_tor(std::size_t v) const;

  /// Bipartite VM->ToR graph restricted to `group` (left index i is
  /// group[i]), one edge per reachable ToR (primary + secondary homings);
  /// the AL builder's first-stage input.
  [[nodiscard]] alvc::graph::BipartiteGraph vm_tor_graph(std::span<const VmId> group) const;

  /// Bipartite ToR->OPS graph over all ToRs and OPSs.
  [[nodiscard]] alvc::graph::BipartiteGraph tor_ops_graph() const;

  // ---- mutation epoch ----
  //
  // A monotone counter bumped by every mutator (element adds, VM moves,
  // failure flags, link cuts, assignment). Derived-state caches (the
  // orchestrator's route cache) compare epochs instead of flushing: an
  // unchanged epoch proves the topology — and, via bump_mutation_epoch,
  // the abstraction layers built over it — has not moved since the cached
  // value was validated.

  /// Current mutation epoch (relaxed; the orchestrator is externally
  /// synchronized, the atomic only keeps concurrent const readers defined).
  [[nodiscard]] std::uint64_t mutation_epoch() const noexcept {
    return mutation_epoch_.load(std::memory_order_relaxed);
  }
  /// Advances the epoch. Public so owners of routing-relevant DERIVED
  /// state (ClusterManager, whose AL membership changes alter slice
  /// subgraphs without touching any topology element) can invalidate
  /// epoch-versioned caches the same way a topology mutation does.
  void bump_mutation_epoch() noexcept {
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  /// Builds the switch graph under the cache mutex and publishes it via the
  /// valid flag (release). Idempotent; racing callers serialise here.
  void warm_switch_graph() const ALVC_EXCLUDES(switch_graph_mutex_);

  /// Drops the lazy switch-graph cache AND advances the mutation epoch:
  /// everything that invalidates the graph also invalidates epoch-keyed
  /// derived caches. Mutators that do not touch the switch graph (server
  /// state, VM moves) bump the epoch directly instead.
  void invalidate_cache() noexcept {
    switch_graph_valid_.store(false, std::memory_order_release);
    bump_mutation_epoch();
  }
  [[nodiscard]] static std::uint64_t link_key(TorId tor, OpsId ops) noexcept {
    return (static_cast<std::uint64_t>(tor.value()) << 32) | ops.value();
  }

  std::vector<Server> servers_;
  std::vector<Vm> vms_;
  std::vector<TorSwitch> tors_;
  std::vector<OpticalSwitch> opss_;
  std::unordered_set<std::uint64_t> failed_links_;  // keyed by link_key

  mutable std::mutex switch_graph_mutex_;
  mutable alvc::graph::Graph switch_graph_ ALVC_GUARDED_BY(switch_graph_mutex_);
  mutable std::atomic<bool> switch_graph_valid_{false};
  std::atomic<std::uint64_t> mutation_epoch_{0};
};

}  // namespace alvc::topology
