#include "topology/validation.h"

#include <algorithm>
#include <sstream>

#include "graph/union_find.h"

namespace alvc::topology {

namespace {

template <typename... Args>
std::string format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace

ValidationReport validate(const DataCenterTopology& topo) {
  ValidationReport report;
  const auto fail = [&](std::string msg) { report.violations.push_back(std::move(msg)); };

  // Dense id invariant.
  for (std::size_t i = 0; i < topo.server_count(); ++i) {
    const auto& s = topo.servers()[i];
    if (s.id.index() != i) fail(format("server ", i, " has id ", s.id));
    if (s.tor.index() >= topo.tor_count()) fail(format("server ", i, " references bad tor"));
    for (auto sec : s.secondary_tors) {
      if (sec.index() >= topo.tor_count()) {
        fail(format("server ", i, " has bad secondary tor"));
      } else if (sec == s.tor) {
        fail(format("server ", i, " secondary tor duplicates primary"));
      }
    }
  }
  for (std::size_t i = 0; i < topo.vm_count(); ++i) {
    const auto& v = topo.vms()[i];
    if (v.id.index() != i) fail(format("vm ", i, " has id ", v.id));
    if (v.server.index() >= topo.server_count()) {
      fail(format("vm ", i, " references bad server"));
      continue;
    }
    // Server must list the VM back.
    const auto& owner = topo.server(v.server);
    if (std::find(owner.vms.begin(), owner.vms.end(), v.id) == owner.vms.end()) {
      fail(format("vm ", i, " missing from its server's vm list"));
    }
  }
  for (std::size_t i = 0; i < topo.tor_count(); ++i) {
    const auto& t = topo.tors()[i];
    if (t.id.index() != i) fail(format("tor ", i, " has id ", t.id));
    for (ServerId s : t.servers) {
      if (s.index() >= topo.server_count()) {
        fail(format("tor ", i, " lists bad server"));
      } else if (topo.server(s).tor != t.id) {
        fail(format("tor ", i, " lists server ", s, " that points elsewhere"));
      }
    }
    for (OpsId o : t.uplinks) {
      if (o.index() >= topo.ops_count()) {
        fail(format("tor ", i, " uplinks to bad ops"));
      } else {
        const auto& links = topo.ops(o).tor_links;
        if (std::find(links.begin(), links.end(), t.id) == links.end()) {
          fail(format("tor ", i, " -> ops ", o, " link not mirrored"));
        }
      }
    }
  }
  for (std::size_t i = 0; i < topo.ops_count(); ++i) {
    const auto& o = topo.opss()[i];
    if (o.id.index() != i) fail(format("ops ", i, " has id ", o.id));
    if (!o.optoelectronic &&
        (o.compute.cpu_cores != 0 || o.compute.memory_gb != 0 || o.compute.storage_gb != 0)) {
      fail(format("plain ops ", i, " has nonzero compute"));
    }
    for (OpsId peer : o.peer_links) {
      if (peer.index() >= topo.ops_count()) {
        fail(format("ops ", i, " peers with bad ops"));
      } else if (peer == o.id) {
        fail(format("ops ", i, " has self peer-link"));
      } else {
        const auto& back = topo.ops(peer).peer_links;
        if (std::find(back.begin(), back.end(), o.id) == back.end()) {
          fail(format("ops ", i, " <-> ops ", peer, " core link not mirrored"));
        }
      }
    }
  }
  return report;
}

bool switch_layer_connected(const DataCenterTopology& topo) {
  return alvc::graph::is_connected(topo.switch_graph());
}

}  // namespace alvc::topology
