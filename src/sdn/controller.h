// SDN controller (paper §IV-B, Fig. 6).
//
// "SDN controller provisions, controls, and manages the optical network and
// provides virtual connectivity services to users between VMs hosting
// VNFs." Concretely: given a chain's switch-level path, install one rule
// per on-path switch; tear paths down when chains are deleted; keep an
// operation counter so the control-plane bench (FIG6) can report
// provisioning throughput and per-chain rule footprints.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "sdn/flow_table.h"
#include "topology/topology.h"
#include "util/error.h"
#include "util/ids.h"

namespace alvc::sdn {

using alvc::util::Expected;
using alvc::util::NfcId;
using alvc::util::Status;

struct ControllerStats {
  std::size_t rules_installed = 0;
  std::size_t rules_removed = 0;
  std::size_t paths_installed = 0;
  std::size_t paths_removed = 0;
};

class SdnController {
 public:
  explicit SdnController(const alvc::topology::DataCenterTopology& topo);

  /// Installs the forwarding path (switch-graph vertex sequence) for `nfc`.
  /// Each vertex except the last receives a rule pointing to its successor.
  /// Fails (kInvalidArgument) on non-contiguous paths; a chain may own
  /// several path segments (one per chain leg).
  [[nodiscard]] Status install_path(NfcId nfc, std::span<const std::size_t> path);

  /// Removes every rule owned by `nfc` across all switches.
  std::size_t remove_chain(NfcId nfc);

  /// Number of rules currently installed for `nfc`.
  [[nodiscard]] std::size_t chain_rule_count(NfcId nfc) const;

  [[nodiscard]] const FlowTableSet& tables() const noexcept { return tables_; }
  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }

 private:
  const alvc::topology::DataCenterTopology* topo_;
  FlowTableSet tables_;
  ControllerStats stats_;
  /// Which switches hold a rule for each chain (for O(1) teardown).
  std::unordered_map<NfcId, std::vector<std::size_t>> chain_switches_;
};

}  // namespace alvc::sdn
