#include "sdn/controller.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace alvc::sdn {

using alvc::util::Error;
using alvc::util::ErrorCode;

SdnController::SdnController(const alvc::topology::DataCenterTopology& topo)
    : topo_(&topo), tables_(topo.switch_graph().vertex_count()) {}

Status SdnController::install_path(NfcId nfc, std::span<const std::size_t> path) {
  if (path.empty()) return Error{ErrorCode::kInvalidArgument, "empty path"};
  const auto& g = topo_->switch_graph();
  for (std::size_t v : path) {
    if (v >= g.vertex_count()) {
      return Error{ErrorCode::kInvalidArgument, "path vertex out of range"};
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.has_edge(path[i], path[i + 1])) {
      return Error{ErrorCode::kInvalidArgument,
                   "path hop " + std::to_string(path[i]) + "->" + std::to_string(path[i + 1]) +
                       " is not a link"};
    }
  }
  auto& owned = chain_switches_[nfc];
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (tables_.table(path[i]).install(nfc, path[i + 1])) {
      owned.push_back(path[i]);
      ++stats_.rules_installed;
    }
  }
  ++stats_.paths_installed;
  ALVC_COUNT("sdn.paths.installed");
  return Status::ok();
}

std::size_t SdnController::remove_chain(NfcId nfc) {
  const auto it = chain_switches_.find(nfc);
  if (it == chain_switches_.end()) return 0;
  std::size_t removed = 0;
  for (std::size_t v : it->second) {
    if (tables_.table(v).remove(nfc)) ++removed;
  }
  stats_.rules_removed += removed;
  if (removed > 0) {
    ++stats_.paths_removed;
    ALVC_COUNT("sdn.paths.removed");
  }
  chain_switches_.erase(it);
  return removed;
}

std::size_t SdnController::chain_rule_count(NfcId nfc) const {
  const auto it = chain_switches_.find(nfc);
  if (it == chain_switches_.end()) return 0;
  // `chain_switches_` may hold duplicates if two legs share a switch; count
  // live rules instead.
  std::size_t n = 0;
  std::vector<std::size_t> seen;
  for (std::size_t v : it->second) {
    if (std::find(seen.begin(), seen.end(), v) != seen.end()) continue;
    seen.push_back(v);
    if (tables_.table(v).lookup(nfc)) ++n;
  }
  return n;
}

}  // namespace alvc::sdn
