// Unified control-plane event log (paper Fig. 6's management plane).
//
// Every orchestration action — chain provisioning/teardown, slice churn,
// VNF relocation, failure repair — appends a typed, monotonically sequenced
// event. The log is the audit trail operators replay after incidents and
// what the FIG6 bench inspects for ordering integrity.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"

namespace alvc::sdn {

enum class ControlEventType : std::uint8_t {
  kChainProvisioned,
  kChainTornDown,
  kChainRepaired,
  kChainLost,
  kSliceAllocated,
  kSliceReleased,
  kVnfRelocated,
  kOpsFailed,
  kAlRepaired,
  kTorFailed,
  kServerFailed,
  kLinkFailed,
  kOpsRecovered,
  kTorRecovered,
  kServerRecovered,
  kLinkRecovered,
  kChainDegraded,
  kChainRestored,
};

[[nodiscard]] constexpr std::string_view to_string(ControlEventType type) noexcept {
  switch (type) {
    case ControlEventType::kChainProvisioned: return "chain-provisioned";
    case ControlEventType::kChainTornDown: return "chain-torn-down";
    case ControlEventType::kChainRepaired: return "chain-repaired";
    case ControlEventType::kChainLost: return "chain-lost";
    case ControlEventType::kSliceAllocated: return "slice-allocated";
    case ControlEventType::kSliceReleased: return "slice-released";
    case ControlEventType::kVnfRelocated: return "vnf-relocated";
    case ControlEventType::kOpsFailed: return "ops-failed";
    case ControlEventType::kAlRepaired: return "al-repaired";
    case ControlEventType::kTorFailed: return "tor-failed";
    case ControlEventType::kServerFailed: return "server-failed";
    case ControlEventType::kLinkFailed: return "link-failed";
    case ControlEventType::kOpsRecovered: return "ops-recovered";
    case ControlEventType::kTorRecovered: return "tor-recovered";
    case ControlEventType::kServerRecovered: return "server-recovered";
    case ControlEventType::kLinkRecovered: return "link-recovered";
    case ControlEventType::kChainDegraded: return "chain-degraded";
    case ControlEventType::kChainRestored: return "chain-restored";
  }
  return "?";
}

struct ControlEvent {
  std::uint64_t sequence = 0;
  ControlEventType type = ControlEventType::kChainProvisioned;
  /// Primary subject (chain id, slice id, OPS id... by type); kInvalid when
  /// not applicable.
  std::uint32_t subject = 0;
  std::string detail;
};

class ControlPlaneLog {
 public:
  void append(ControlEventType type, std::uint32_t subject, std::string detail = {});

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::span<const ControlEvent> events() const noexcept { return events_; }

  /// Events of one type, in order.
  [[nodiscard]] std::vector<ControlEvent> by_type(ControlEventType type) const;
  /// Count of events of one type.
  [[nodiscard]] std::size_t count(ControlEventType type) const noexcept;
  /// True when sequence numbers strictly increase (they always should).
  [[nodiscard]] bool is_ordered() const noexcept;

  void clear() noexcept { events_.clear(); }

 private:
  std::vector<ControlEvent> events_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace alvc::sdn
