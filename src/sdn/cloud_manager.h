// Cloud/NFV manager (paper §IV-B, Fig. 6).
//
// "Responsible for managing VMs and storage resources … and for managing
// the VNFs during their lifetime (creation, scaling, termination, update)."
// This class couples the lifecycle state machine with capacity accounting:
// a VNF only becomes Active if its host had room, and capacity returns on
// termination. Scaling re-reserves the delta.
#pragma once

#include "nfv/catalog.h"
#include "nfv/hosting.h"
#include "nfv/lifecycle.h"
#include "util/error.h"

namespace alvc::sdn {

using alvc::nfv::HostRef;
using alvc::nfv::VnfInstanceId;
using alvc::util::Expected;
using alvc::util::Status;

struct CloudManagerStats {
  std::size_t deployed = 0;
  std::size_t terminated = 0;
  std::size_t scaled = 0;
  std::size_t updated = 0;
  std::size_t rejected = 0;  // capacity rejections
};

class CloudNfvManager {
 public:
  CloudNfvManager(const alvc::nfv::VnfCatalog& catalog,
                  const alvc::topology::DataCenterTopology& topo)
      : catalog_(&catalog), pool_(topo) {}

  /// Reserves capacity on `host` and drives the instance to Active.
  /// kCapacityExceeded if the host cannot take the descriptor's demand.
  [[nodiscard]] Expected<VnfInstanceId> deploy(alvc::util::VnfId descriptor, HostRef host);

  /// Terminates the instance and releases its capacity.
  [[nodiscard]] Status terminate(VnfInstanceId id);

  /// Rescales an Active instance to `factor` times nominal demand,
  /// adjusting the reservation; fails without state change if the host
  /// cannot take the increase.
  [[nodiscard]] Status scale(VnfInstanceId id, double factor);

  /// Software-update event (active -> updating -> active).
  [[nodiscard]] Status update(VnfInstanceId id);

  [[nodiscard]] const alvc::nfv::VnfLifecycleManager& lifecycle() const noexcept {
    return lifecycle_;
  }
  [[nodiscard]] const alvc::nfv::HostingPool& pool() const noexcept { return pool_; }
  [[nodiscard]] alvc::nfv::HostingPool& pool() noexcept { return pool_; }
  [[nodiscard]] const CloudManagerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const alvc::nfv::VnfCatalog& catalog() const noexcept { return *catalog_; }

  /// Scaled demand of a live instance (what is currently reserved).
  [[nodiscard]] alvc::topology::Resources reserved_demand(VnfInstanceId id) const;

 private:
  const alvc::nfv::VnfCatalog* catalog_;
  alvc::nfv::HostingPool pool_;
  alvc::nfv::VnfLifecycleManager lifecycle_;
  CloudManagerStats stats_;
};

}  // namespace alvc::sdn
