#include "sdn/cloud_manager.h"

namespace alvc::sdn {

using alvc::nfv::VnfState;
using alvc::topology::Resources;
using alvc::util::Error;
using alvc::util::ErrorCode;

namespace {

Resources scaled(const Resources& demand, double factor) {
  return Resources{.cpu_cores = demand.cpu_cores * factor,
                   .memory_gb = demand.memory_gb * factor,
                   .storage_gb = demand.storage_gb * factor};
}

}  // namespace

Expected<VnfInstanceId> CloudNfvManager::deploy(alvc::util::VnfId descriptor, HostRef host) {
  const auto& desc = catalog_->descriptor(descriptor);
  if (desc.electronic_only && alvc::nfv::is_optical_host(host)) {
    ++stats_.rejected;
    return Error{ErrorCode::kInvalidArgument,
                 "VNF " + desc.name + " is pinned to the electronic domain"};
  }
  if (auto status = pool_.reserve(host, desc.demand); !status.is_ok()) {
    ++stats_.rejected;
    return status.error();
  }
  const VnfInstanceId id = lifecycle_.create(descriptor, host);
  if (auto status = lifecycle_.activate(id); !status.is_ok()) {
    pool_.release(host, desc.demand);
    return status.error();
  }
  ++stats_.deployed;
  return id;
}

Status CloudNfvManager::terminate(VnfInstanceId id) {
  if (id.index() >= lifecycle_.instance_count()) {
    return Error{ErrorCode::kNotFound, "no such instance"};
  }
  const auto& inst = lifecycle_.instance(id);
  if (inst.state == VnfState::kTerminated) {
    return Error{ErrorCode::kInvalidArgument, "already terminated"};
  }
  const Resources held = reserved_demand(id);
  if (auto status = lifecycle_.terminate(id); !status.is_ok()) return status;
  pool_.release(inst.host, held);
  ++stats_.terminated;
  return Status::ok();
}

Status CloudNfvManager::scale(VnfInstanceId id, double factor) {
  if (id.index() >= lifecycle_.instance_count()) {
    return Error{ErrorCode::kNotFound, "no such instance"};
  }
  const auto& inst = lifecycle_.instance(id);
  if (inst.state != VnfState::kActive) {
    return Error{ErrorCode::kInvalidArgument, "can only scale an active instance"};
  }
  const auto& desc = catalog_->descriptor(inst.descriptor);
  const Resources current = scaled(desc.demand, inst.scale);
  const Resources target = scaled(desc.demand, factor);
  if (factor > inst.scale) {
    const Resources delta = target - current;
    if (auto status = pool_.reserve(inst.host, delta); !status.is_ok()) {
      ++stats_.rejected;
      return status.error();
    }
  } else {
    pool_.release(inst.host, current - target);
  }
  if (auto status = lifecycle_.scale(id, factor); !status.is_ok()) {
    // Roll the reservation back (state machine refused, e.g. factor <= 0).
    if (factor > inst.scale) {
      pool_.release(inst.host, target - current);
    } else {
      ALVC_IGNORE_STATUS(pool_.reserve(inst.host, current - target),
                         "rolling back a release we just made; the capacity is free");
    }
    return status;
  }
  ++stats_.scaled;
  return Status::ok();
}

Status CloudNfvManager::update(VnfInstanceId id) {
  if (id.index() >= lifecycle_.instance_count()) {
    return Error{ErrorCode::kNotFound, "no such instance"};
  }
  if (auto status = lifecycle_.update(id); !status.is_ok()) return status;
  ++stats_.updated;
  return Status::ok();
}

alvc::topology::Resources CloudNfvManager::reserved_demand(VnfInstanceId id) const {
  const auto& inst = lifecycle_.instance(id);
  if (inst.state == VnfState::kTerminated) return Resources{};
  return scaled(catalog_->descriptor(inst.descriptor).demand, inst.scale);
}

}  // namespace alvc::sdn
