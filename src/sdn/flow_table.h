// Match/action flow tables for the switch layer.
//
// The SDN controller (paper Fig. 6) programs ToRs and OPSs by installing
// per-chain forwarding rules. We model the minimal useful rule: match a
// chain (NfcId) at a switch vertex, forward to the next switch vertex.
// Rule counts are the currency of the update-cost experiments (ABL1).
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/ids.h"

namespace alvc::sdn {

using alvc::util::NfcId;

/// One forwarding rule at a switch: chain -> next-hop switch vertex.
struct FlowRule {
  NfcId nfc;
  std::size_t next_hop;  // switch-graph vertex index
};

/// Rules of one switch.
///
/// Threading contract (applies to FlowTableSet too): externally
/// synchronized. Tables are mutated only by the SDN controller on the
/// orchestrator's thread; they hold no lock of their own, so concurrent
/// callers must serialize exactly as they do for the orchestrator.
class FlowTable {
 public:
  /// Installs or overwrites the rule for `nfc`; returns true if new.
  bool install(NfcId nfc, std::size_t next_hop);
  /// Removes the rule; returns true if one existed.
  bool remove(NfcId nfc);
  [[nodiscard]] std::optional<std::size_t> lookup(NfcId nfc) const;
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  /// All rules, unordered (audit/diagnostic use).
  [[nodiscard]] std::vector<FlowRule> rules() const;

 private:
  std::unordered_map<NfcId, std::size_t> rules_;
};

/// All switch tables, keyed by switch-graph vertex.
class FlowTableSet {
 public:
  explicit FlowTableSet(std::size_t switch_count) : tables_(switch_count) {}

  [[nodiscard]] FlowTable& table(std::size_t vertex) { return tables_.at(vertex); }
  [[nodiscard]] const FlowTable& table(std::size_t vertex) const { return tables_.at(vertex); }
  [[nodiscard]] std::size_t switch_count() const noexcept { return tables_.size(); }
  [[nodiscard]] std::size_t total_rules() const noexcept;

 private:
  std::vector<FlowTable> tables_;
};

}  // namespace alvc::sdn
