#include "sdn/flow_table.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace alvc::sdn {

bool FlowTable::install(NfcId nfc, std::size_t next_hop) {
  const bool inserted = rules_.insert_or_assign(nfc, next_hop).second;
  // Rule churn is the currency of the ABL1 update-cost experiments; count
  // fresh installs and overwrites separately.
  if (inserted) {
    ALVC_COUNT("sdn.rules.installed");
  } else {
    ALVC_COUNT("sdn.rules.replaced");
  }
  return inserted;
}

bool FlowTable::remove(NfcId nfc) {
  const bool removed = rules_.erase(nfc) > 0;
  if (removed) ALVC_COUNT("sdn.rules.removed");
  return removed;
}

std::optional<std::size_t> FlowTable::lookup(NfcId nfc) const {
  const auto it = rules_.find(nfc);
  if (it == rules_.end()) return std::nullopt;
  return it->second;
}

std::vector<FlowRule> FlowTable::rules() const {
  std::vector<FlowRule> out;
  out.reserve(rules_.size());
  for (const auto& [nfc, next_hop] : rules_) out.push_back(FlowRule{nfc, next_hop});
  // rules_ iterates in hash order; the exported table must not.
  std::sort(out.begin(), out.end(),
            [](const FlowRule& a, const FlowRule& b) { return a.nfc < b.nfc; });
  return out;
}

std::size_t FlowTableSet::total_rules() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tables_) n += t.size();
  return n;
}

}  // namespace alvc::sdn
