#include "sdn/events.h"

namespace alvc::sdn {

void ControlPlaneLog::append(ControlEventType type, std::uint32_t subject, std::string detail) {
  events_.push_back(
      ControlEvent{next_sequence_++, type, subject, std::move(detail)});
}

std::vector<ControlEvent> ControlPlaneLog::by_type(ControlEventType type) const {
  std::vector<ControlEvent> out;
  for (const auto& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::size_t ControlPlaneLog::count(ControlEventType type) const noexcept {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.type == type) ++n;
  }
  return n;
}

bool ControlPlaneLog::is_ordered() const noexcept {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (events_[i].sequence <= events_[i - 1].sequence) return false;
  }
  return true;
}

}  // namespace alvc::sdn
