// Update-cost ledger: measures what every elastic action costs the
// control plane, so the paper's ABL1 claim — an incremental migration
// touches ~2 abstraction-layer updates, a re-provision touches the whole
// chain — is *measured* per action rather than assumed.
//
// The ledger snapshots the orchestrator's own books (cloud deploy/
// terminate counters, slice allocate/release log events, SDN rule
// counters, mid-chain O/E/O conversions) before an action and charges the
// delta after it. It therefore counts exactly what the substrate did, not
// what the caller intended:
//   * AL updates      = instance deploys + terminates + slice churn — the
//                       per-AL state writes a migration/scale forces;
//   * flow-rule churn = SDN rules installed + removed;
//   * O/E/O changes   = |delta| of mid-chain conversions over all chains.
// A modelled reconfiguration latency (weighted sum) feeds the bench's
// latency histogram; only the weights' ratios matter.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace alvc::orchestrator {
class NetworkOrchestrator;
}

namespace alvc::elastic {

enum class ActionKind : std::uint8_t { kScaleOut, kScaleIn, kMigration, kReprovision };
inline constexpr std::size_t kActionKindCount = 4;

[[nodiscard]] constexpr std::string_view to_string(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kScaleOut: return "scale-out";
    case ActionKind::kScaleIn: return "scale-in";
    case ActionKind::kMigration: return "migration";
    case ActionKind::kReprovision: return "reprovision";
  }
  return "?";
}

/// Point-in-time reading of the orchestrator's cumulative counters.
struct CostSnapshot {
  std::size_t deployed = 0;
  std::size_t terminated = 0;
  std::size_t slice_events = 0;  // kSliceAllocated + kSliceReleased log entries
  std::size_t rules_installed = 0;
  std::size_t rules_removed = 0;
  std::size_t mid_chain_conversions = 0;  // summed over live chains
};

/// Deterministic reconfiguration-latency weights (seconds per unit).
struct CostModel {
  double al_update_s = 0.010;
  double flow_rule_s = 0.001;
  double oeo_change_s = 0.004;
};

/// What one action cost.
struct ActionCost {
  ActionKind kind = ActionKind::kScaleOut;
  std::size_t al_updates = 0;
  std::size_t flow_rule_churn = 0;
  std::size_t oeo_changes = 0;
  double latency_s = 0;
};

struct ActionTotals {
  std::size_t actions = 0;
  std::size_t al_updates = 0;
  std::size_t flow_rule_churn = 0;
  std::size_t oeo_changes = 0;
  double latency_s = 0;
};

class UpdateCostLedger {
 public:
  explicit UpdateCostLedger(const CostModel& model = {}) : model_(model) {}

  /// Reads the orchestrator's cumulative counters (cheap: O(chains) for
  /// the conversion sum).
  [[nodiscard]] static CostSnapshot snapshot(const alvc::orchestrator::NetworkOrchestrator& orch);

  /// Charges the delta since `before` to `kind`, records it, and returns
  /// the cost. Call immediately after the action succeeds.
  ActionCost charge(ActionKind kind, const alvc::orchestrator::NetworkOrchestrator& orch,
                    const CostSnapshot& before);

  [[nodiscard]] const ActionTotals& totals(ActionKind kind) const noexcept {
    return totals_[static_cast<std::size_t>(kind)];
  }
  /// Mean AL updates per recorded action of `kind`; 0 when none recorded.
  [[nodiscard]] double al_updates_per_action(ActionKind kind) const noexcept;
  [[nodiscard]] const std::vector<ActionCost>& actions() const noexcept { return actions_; }
  [[nodiscard]] const CostModel& model() const noexcept { return model_; }

 private:
  CostModel model_;
  std::array<ActionTotals, kActionKindCount> totals_{};
  std::vector<ActionCost> actions_;
};

}  // namespace alvc::elastic
