#include "elastic/demand.h"

#include <algorithm>

#include "sim/waveform.h"
#include "util/rng.h"

namespace alvc::elastic {

using alvc::util::Rng;

std::uint64_t DemandModel::chain_seed(NfcId id) const noexcept {
  // Splitmix-style scramble of (seed, chain id): adjacent ids must not
  // produce correlated substreams.
  std::uint64_t x = params_.seed;
  x ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id.value()) + 1);
  x ^= x >> 31;
  return x;
}

void DemandModel::track(NfcId id, double base_gbps) {
  if (series_.contains(id)) return;
  ChainSeries series;
  series.base_gbps = base_gbps;
  Rng rng(chain_seed(id));
  // Draw order is part of the series' identity: phase first, then the
  // flash schedule, so adding knobs later must append draws, not reorder.
  series.phase_s = rng.uniform(0.0, params_.diurnal_period_s > 0 ? params_.diurnal_period_s : 1.0);
  if (params_.flash_rate_per_s > 0 && params_.horizon_s > 0) {
    alvc::sim::poisson_arrivals(rng, params_.flash_rate_per_s, params_.horizon_s,
                                [&](double t) { series.flash_times_s.push_back(t); });
  }
  series_.emplace(id, std::move(series));
}

void DemandModel::forget(NfcId id) { series_.erase(id); }

double DemandModel::demand_gbps(NfcId id, double now_s) const {
  const auto it = series_.find(id);
  if (it == series_.end()) return 0;
  const ChainSeries& s = it->second;
  double factor = 1.0;
  factor += params_.diurnal_amplitude *
            alvc::sim::diurnal_wave(now_s + s.phase_s, params_.diurnal_period_s);
  for (double at : s.flash_times_s) {
    factor += params_.flash_magnitude *
              alvc::sim::flash_pulse(now_s, at, params_.flash_ramp_s, params_.flash_hold_s);
  }
  if (params_.churn_amplitude > 0 && params_.churn_bucket_s > 0 && now_s >= 0) {
    const auto bucket = static_cast<std::uint64_t>(now_s / params_.churn_bucket_s);
    const double noise = 2.0 * alvc::sim::hash_noise(chain_seed(id), bucket) - 1.0;
    factor += params_.churn_amplitude * noise;
  }
  return std::max(0.0, s.base_gbps * factor);
}

}  // namespace alvc::elastic
