// Demand-driven VNF scaling (the elasticity loop's actuator, part 1).
//
// Watches every live chain's instantaneous demand (DemandModel) against
// the bandwidth it was granted and the scale factor its VNF instances run
// at, and drives NetworkOrchestrator::scale_function — the until-now
// dormant VnfLifecycleManager scale machinery — to keep served capacity
// tracking demand.
//
// Decisions are deliberately sluggish: hysteresis (scale out only above
// `scale_out_ratio` x capacity, in only below `scale_in_ratio`) plus a
// per-chain cooldown, because reconfigurations are not free (see
// UpdateCostLedger) and demand noise must not churn the control plane.
// QoS: LOPRI chains never scale out while any HIPRI chain is degraded or
// short of its granted bandwidth — scale-out consumes host capacity the
// restoration path may need.
#pragma once

#include <cstddef>
#include <map>

#include "elastic/demand.h"
#include "elastic/ledger.h"
#include "orchestrator/orchestrator.h"

namespace alvc::elastic {

struct ScalingPolicy {
  /// Scale out when demand exceeds this multiple of served capacity...
  double scale_out_ratio = 1.1;
  /// ...and back in only when it falls below this multiple (hysteresis
  /// band: in_ratio << out_ratio or the loop oscillates).
  double scale_in_ratio = 0.5;
  /// Minimum simulated seconds between actions on the same chain.
  double cooldown_s = 2.0;
  /// Ceiling on the per-instance scale factor.
  double max_scale = 8.0;
  /// Defer LOPRI scale-out while HIPRI service is impaired.
  bool protect_hipri = true;
};

struct ScalingStats {
  std::size_t scale_outs = 0;
  std::size_t scale_ins = 0;
  std::size_t rejected = 0;               // orchestrator refused an action
  std::size_t deferred_hipri_protect = 0;  // LOPRI scale-out held back
  std::size_t skipped_cooldown = 0;
  std::size_t skipped_degraded = 0;
};

class ScalingController {
 public:
  ScalingController(alvc::orchestrator::NetworkOrchestrator& orch, const DemandModel& demand,
                    UpdateCostLedger& ledger, const ScalingPolicy& policy = {})
      : orch_(&orch), demand_(&demand), ledger_(&ledger), policy_(policy) {}

  /// One control-loop pass at simulated time `now_s` over all live chains
  /// in ascending id order (deterministic). Returns actions applied.
  std::size_t tick(double now_s);

  /// Current common scale factor of a chain's live instances (min over
  /// valid slots; 1 when none are live). Public for tests and the SLO
  /// check in ElasticController.
  [[nodiscard]] static double chain_scale(const alvc::orchestrator::NetworkOrchestrator& orch,
                                          const alvc::orchestrator::ProvisionedChain& chain);

  [[nodiscard]] const ScalingStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ScalingPolicy& policy() const noexcept { return policy_; }

 private:
  /// True while any HIPRI chain is degraded or below its requested
  /// bandwidth — the condition under which LOPRI growth is deferred.
  [[nodiscard]] bool hipri_impaired() const;

  alvc::orchestrator::NetworkOrchestrator* orch_;
  const DemandModel* demand_;
  UpdateCostLedger* ledger_;
  ScalingPolicy policy_;
  ScalingStats stats_;
  std::map<alvc::util::NfcId, double> last_action_s_;
};

}  // namespace alvc::elastic
