// Live VNF migration to relieve hot hosts (actuator, part 2).
//
// When a host (server or optoelectronic router) runs close to its
// capacity, chains with instances on it are migrated — one function at a
// time — onto the coldest host inside the same slice. Two execution
// modes, which is the whole point of the ledger:
//
//   * kIncremental — NetworkOrchestrator::migrate_function: terminate old
//     instance + deploy fresh on the target, re-route, swap rules. The AL
//     itself is only touched twice (the paper's ~2 AL updates/migration).
//   * kReprovision — the strawman the paper argues against: tear the whole
//     chain down and provision it again. Every instance is redeployed and
//     the slice is released and re-allocated, so a k-function chain costs
//     2k + 2 AL updates.
//
// The planner never moves degraded chains (the fault-recovery path owns
// those) and caps moves per tick so a hot spot drains gradually instead
// of thundering.
#pragma once

#include <cstddef>
#include <functional>
#include <map>

#include "elastic/ledger.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/placement.h"

namespace alvc::elastic {

enum class ExecutionMode : std::uint8_t { kIncremental, kReprovision };

[[nodiscard]] constexpr std::string_view to_string(ExecutionMode mode) noexcept {
  return mode == ExecutionMode::kIncremental ? "incremental" : "reprovision";
}

struct MigrationPolicy {
  /// A host is hot when any resource dimension is used above this fraction
  /// of nominal capacity.
  double hot_utilization = 0.85;
  /// Upper bound on moves per tick (drain gradually).
  std::size_t max_moves_per_tick = 2;
  /// Minimum simulated seconds between moves of the same chain.
  double cooldown_s = 4.0;
};

struct MigrationStats {
  std::size_t migrations = 0;    // incremental moves that committed
  std::size_t reprovisions = 0;  // teardown + reprovision cycles
  std::size_t failed = 0;        // the orchestrator refused the move
  std::size_t lost = 0;          // reprovision torn down but re-admission failed
  std::size_t no_target = 0;     // hot instance with no feasible target
};

class MigrationPlanner {
 public:
  /// `placement` is only used by kReprovision (the baseline re-runs full
  /// placement); it must outlive the planner.
  MigrationPlanner(alvc::orchestrator::NetworkOrchestrator& orch, UpdateCostLedger& ledger,
                   const alvc::orchestrator::PlacementStrategy& placement,
                   const MigrationPolicy& policy = {},
                   ExecutionMode mode = ExecutionMode::kIncremental)
      : orch_(&orch), ledger_(&ledger), placement_(&placement), policy_(policy), mode_(mode) {}

  void set_mode(ExecutionMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] ExecutionMode mode() const noexcept { return mode_; }

  /// Reprovisioning retires the old chain id and mints a new one; owners
  /// tracking per-chain state (DemandModel) hook this to remap.
  void set_on_reprovision(std::function<void(alvc::util::NfcId, alvc::util::NfcId)> fn) {
    on_reprovision_ = std::move(fn);
  }

  /// One relief pass at simulated time `now_s`: scan chains in ascending
  /// id order, move at most one hot instance per chain, stop after
  /// `max_moves_per_tick`. Returns moves executed.
  std::size_t tick(double now_s);

  /// Utilization of `host` in the orchestrator's hosting pool: the max
  /// over resource dimensions of used / nominal. 0 for hosts with no
  /// capacity at all. Public for tests and hot-spot introspection.
  [[nodiscard]] static double utilization(const alvc::orchestrator::NetworkOrchestrator& orch,
                                          const alvc::nfv::HostRef& host);

  [[nodiscard]] const MigrationStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MigrationPolicy& policy() const noexcept { return policy_; }

 private:
  /// Coldest feasible in-slice target for function `fi` of `chain`, or
  /// nullopt. Deterministic: ties break optical-first, then by id.
  [[nodiscard]] std::optional<alvc::nfv::HostRef> pick_target(
      const alvc::orchestrator::ProvisionedChain& chain, std::size_t fi) const;

  alvc::orchestrator::NetworkOrchestrator* orch_;
  UpdateCostLedger* ledger_;
  const alvc::orchestrator::PlacementStrategy* placement_;
  MigrationPolicy policy_;
  ExecutionMode mode_;
  MigrationStats stats_;
  std::map<alvc::util::NfcId, double> last_move_s_;
  std::function<void(alvc::util::NfcId, alvc::util::NfcId)> on_reprovision_;
};

}  // namespace alvc::elastic
