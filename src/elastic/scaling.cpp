#include "elastic/scaling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "telemetry/telemetry.h"

namespace alvc::elastic {

using alvc::orchestrator::NetworkOrchestrator;
using alvc::orchestrator::ProvisionedChain;
using alvc::util::NfcId;

namespace {
constexpr double kEps = 1e-9;
}

double ScalingController::chain_scale(const NetworkOrchestrator& orch,
                                      const ProvisionedChain& chain) {
  double scale = 0;
  bool any = false;
  for (auto inst : chain.instances) {
    if (!inst.valid()) continue;  // degraded slot
    const double s = orch.cloud().lifecycle().instance(inst).scale;
    scale = any ? std::min(scale, s) : s;
    any = true;
  }
  return any ? scale : 1.0;
}

bool ScalingController::hipri_impaired() const {
  for (const auto* chain : orch_->chains()) {
    if (chain->record.spec.priority != alvc::nfv::PriorityClass::kHipri) continue;
    if (chain->degraded) return true;
    if (chain->reserved_gbps + kEps < chain->record.spec.bandwidth_gbps) return true;
  }
  return false;
}

std::size_t ScalingController::tick(double now_s) {
  // Snapshot ids first: scale_function never erases chains, but iterating
  // a sorted id list keeps the pass order deterministic regardless of the
  // orchestrator's hash-map layout.
  std::vector<NfcId> ids;
  for (const auto* chain : orch_->chains()) ids.push_back(chain->record.id);
  std::sort(ids.begin(), ids.end());

  const bool impaired = policy_.protect_hipri && hipri_impaired();
  std::size_t applied = 0;
  for (NfcId id : ids) {
    const ProvisionedChain* chain = orch_->chain(id);
    if (chain == nullptr) continue;
    if (chain->degraded) {
      ++stats_.skipped_degraded;
      continue;
    }
    const double granted = chain->reserved_gbps;
    if (granted <= kEps) continue;
    const double demand = demand_->demand_gbps(id, now_s);
    const double scale = chain_scale(*orch_, *chain);
    const double served = granted * scale;

    double target = std::ceil(demand / granted - kEps);
    target = std::clamp(target, 1.0, policy_.max_scale);

    const bool want_out = demand > policy_.scale_out_ratio * served && target > scale;
    const bool want_in = demand < policy_.scale_in_ratio * served && target < scale;
    if (!want_out && !want_in) continue;

    if (want_out && impaired &&
        chain->record.spec.priority == alvc::nfv::PriorityClass::kLopri) {
      ++stats_.deferred_hipri_protect;
      ALVC_COUNT("elastic.scale_out.deferred_hipri");
      continue;
    }
    if (const auto it = last_action_s_.find(id);
        it != last_action_s_.end() && now_s - it->second < policy_.cooldown_s) {
      ++stats_.skipped_cooldown;
      continue;
    }

    const CostSnapshot before = UpdateCostLedger::snapshot(*orch_);
    std::size_t moved = 0;
    for (std::size_t fi = 0; fi < chain->instances.size(); ++fi) {
      if (!chain->instances[fi].valid()) continue;
      if (orch_->scale_function(id, fi, target).is_ok()) {
        ++moved;
      } else {
        ++stats_.rejected;  // e.g. host cannot take the increase
      }
    }
    if (moved == 0) continue;
    ledger_->charge(want_out ? ActionKind::kScaleOut : ActionKind::kScaleIn, *orch_, before);
    last_action_s_[id] = now_s;
    ++applied;
    if (want_out) {
      ++stats_.scale_outs;
      ALVC_COUNT("elastic.scale_out.actions");
    } else {
      ++stats_.scale_ins;
      ALVC_COUNT("elastic.scale_in.actions");
    }
  }
  return applied;
}

}  // namespace alvc::elastic
