#include "elastic/ledger.h"

#include "orchestrator/oeo.h"
#include "orchestrator/orchestrator.h"
#include "telemetry/telemetry.h"

namespace alvc::elastic {

namespace {

std::size_t abs_delta(std::size_t after, std::size_t before) noexcept {
  return after >= before ? after - before : before - after;
}

}  // namespace

CostSnapshot UpdateCostLedger::snapshot(const alvc::orchestrator::NetworkOrchestrator& orch) {
  CostSnapshot snap;
  snap.deployed = orch.cloud().stats().deployed;
  snap.terminated = orch.cloud().stats().terminated;
  snap.slice_events = orch.control_log().count(sdn::ControlEventType::kSliceAllocated) +
                      orch.control_log().count(sdn::ControlEventType::kSliceReleased);
  snap.rules_installed = orch.controller().stats().rules_installed;
  snap.rules_removed = orch.controller().stats().rules_removed;
  for (const auto* chain : orch.chains()) {
    snap.mid_chain_conversions +=
        alvc::orchestrator::count_conversions(chain->placement.hosts).mid_chain;
  }
  return snap;
}

ActionCost UpdateCostLedger::charge(ActionKind kind,
                                    const alvc::orchestrator::NetworkOrchestrator& orch,
                                    const CostSnapshot& before) {
  const CostSnapshot after = snapshot(orch);
  ActionCost cost;
  cost.kind = kind;
  // Deploys, terminates, and slice churn are all per-AL control-plane
  // writes; their sum is the paper's "AL updates" for the action.
  cost.al_updates = (after.deployed - before.deployed) + (after.terminated - before.terminated) +
                    (after.slice_events - before.slice_events);
  cost.flow_rule_churn = (after.rules_installed - before.rules_installed) +
                         (after.rules_removed - before.rules_removed);
  cost.oeo_changes = abs_delta(after.mid_chain_conversions, before.mid_chain_conversions);
  cost.latency_s = static_cast<double>(cost.al_updates) * model_.al_update_s +
                   static_cast<double>(cost.flow_rule_churn) * model_.flow_rule_s +
                   static_cast<double>(cost.oeo_changes) * model_.oeo_change_s;

  ActionTotals& totals = totals_[static_cast<std::size_t>(kind)];
  ++totals.actions;
  totals.al_updates += cost.al_updates;
  totals.flow_rule_churn += cost.flow_rule_churn;
  totals.oeo_changes += cost.oeo_changes;
  totals.latency_s += cost.latency_s;
  actions_.push_back(cost);

  ALVC_OBSERVE("elastic.update_cost.al_updates", 0, 64, 32, cost.al_updates);
  ALVC_OBSERVE("elastic.update_cost.flow_rules", 0, 256, 32, cost.flow_rule_churn);
  ALVC_OBSERVE("elastic.reconfig.latency_s", 0, 1.0, 32, cost.latency_s);
  return cost;
}

double UpdateCostLedger::al_updates_per_action(ActionKind kind) const noexcept {
  const ActionTotals& totals = totals_[static_cast<std::size_t>(kind)];
  if (totals.actions == 0) return 0;
  return static_cast<double>(totals.al_updates) / static_cast<double>(totals.actions);
}

}  // namespace alvc::elastic
