#include "elastic/controller.h"

#include <algorithm>
#include <vector>

#include "telemetry/telemetry.h"

namespace alvc::elastic {

using alvc::nfv::PriorityClass;
using alvc::orchestrator::NetworkOrchestrator;
using alvc::orchestrator::PlacementStrategy;
using alvc::util::NfcId;

namespace {
constexpr double kEps = 1e-9;
}

ElasticController::ElasticController(NetworkOrchestrator& orch, const PlacementStrategy& placement,
                                     const ElasticParams& params)
    : orch_(&orch),
      demand_(params.demand),
      ledger_(params.cost),
      scaling_(orch, demand_, ledger_, params.scaling),
      migration_(orch, ledger_, placement, params.migration, params.mode) {
  // Reprovisioning retires the chain id; carry the demand series over so
  // the new incarnation is observed from its next tick.
  migration_.set_on_reprovision([this](NfcId old_id, NfcId new_id) {
    demand_.forget(old_id);
    if (const auto* chain = orch_->chain(new_id)) {
      demand_.track(new_id, chain->record.spec.bandwidth_gbps);
    }
  });
}

void ElasticController::tick(double now_s) {
  // 1. Sync the tracked set with the live chain population.
  for (const auto* chain : orch_->chains()) {
    if (!demand_.tracked(chain->record.id)) {
      demand_.track(chain->record.id, chain->record.spec.bandwidth_gbps);
    }
  }
  std::vector<NfcId> stale;
  for (const auto& [id, series] : demand_.series()) {
    if (orch_->chain(id) == nullptr) stale.push_back(id);
  }
  for (NfcId id : stale) demand_.forget(id);

  // 2. + 3. Actuate.
  scaling_.tick(now_s);
  migration_.tick(now_s);

  // 4. Observe: SLO accounting and per-class gauges, in sorted id order.
  std::vector<NfcId> ids;
  for (const auto* chain : orch_->chains()) ids.push_back(chain->record.id);
  std::sort(ids.begin(), ids.end());
  double demand_hipri = 0, demand_lopri = 0, granted_hipri = 0, granted_lopri = 0;
  for (NfcId id : ids) {
    const auto* chain = orch_->chain(id);
    if (chain == nullptr) continue;
    const double demand = demand_.demand_gbps(id, now_s);
    const double served = chain->reserved_gbps * ScalingController::chain_scale(*orch_, *chain);
    ++stats_.chain_observations;
    if (demand > served + kEps) ++stats_.slo_violations;
    if (chain->record.spec.priority == PriorityClass::kHipri) {
      demand_hipri += demand;
      granted_hipri += chain->reserved_gbps;
    } else {
      demand_lopri += demand;
      granted_lopri += chain->reserved_gbps;
    }
  }
  ALVC_GAUGE_SET("elastic.demand_gbps.hipri", demand_hipri);
  ALVC_GAUGE_SET("elastic.demand_gbps.lopri", demand_lopri);
  ALVC_GAUGE_SET("elastic.granted_gbps.hipri", granted_hipri);
  ALVC_GAUGE_SET("elastic.granted_gbps.lopri", granted_lopri);

  ++stats_.ticks;
  ALVC_COUNT("elastic.controller.ticks");
}

}  // namespace alvc::elastic
