// Seeded per-chain demand model (the elasticity loop's sensor).
//
// Chains are provisioned at a nominal bandwidth, but real traffic moves:
// diurnal waves, flash crowds, and adversarial churn (the usagegen shapes
// ROADMAP names). DemandModel turns a (seed, chain, time) triple into the
// Gbps the chain's tenants are pushing *right now*, as a pure function —
// no wall clock, no hidden state — so the scaling loop, the soak suite,
// and the bench all observe the identical series for a given seed.
//
// The waveform math is shared with faults::OverloadInjector via
// sim/waveform.h: the injector schedules discrete provision/teardown
// events from these shapes, the demand model evaluates their continuous
// twins, and the two stay in agreement by construction.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "nfv/nfc.h"
#include "util/ids.h"

namespace alvc::elastic {

using alvc::util::NfcId;

/// Shape parameters for every tracked chain. Each chain derives its own
/// substream (phase offset, flash schedule, churn stream) from `seed` and
/// its id, so chains are decorrelated but individually reproducible.
struct DemandParams {
  /// Diurnal triangle wave: period and peak-over-base amplitude
  /// (amplitude 1.0 means demand doubles at mid-period).
  double diurnal_period_s = 20.0;
  double diurnal_amplitude = 1.0;
  /// Flash crowds arrive as a per-chain Poisson process over the horizon;
  /// each adds `flash_magnitude` x base at full height.
  double flash_rate_per_s = 0.05;
  double flash_magnitude = 2.0;
  double flash_ramp_s = 0.5;
  double flash_hold_s = 3.0;
  /// Adversarial churn: zero-mean hash noise of this relative amplitude,
  /// re-drawn every `churn_bucket_s` of simulated time.
  double churn_amplitude = 0.15;
  double churn_bucket_s = 1.0;
  /// Flash schedules are materialised up to this horizon at track() time.
  double horizon_s = 60.0;
  std::uint64_t seed = 1;
};

/// Precomputed per-chain series state (pure data; evaluation is const).
struct ChainSeries {
  double base_gbps = 0;
  double phase_s = 0;                  // diurnal phase offset
  std::vector<double> flash_times_s;   // Poisson flash-crowd onsets
};

class DemandModel {
 public:
  explicit DemandModel(const DemandParams& params) : params_(params) {}

  /// Starts tracking a chain at `base_gbps` nominal demand, deriving its
  /// substream deterministically from (params.seed, id). Re-tracking an
  /// already-tracked chain is a no-op (the series is stable).
  void track(NfcId id, double base_gbps);

  /// Stops tracking (chain torn down or lost).
  void forget(NfcId id);

  [[nodiscard]] bool tracked(NfcId id) const { return series_.contains(id); }
  [[nodiscard]] std::size_t tracked_count() const noexcept { return series_.size(); }

  /// Instantaneous demand of a tracked chain at `now_s`, in Gbps;
  /// 0 for untracked chains. Never negative.
  [[nodiscard]] double demand_gbps(NfcId id, double now_s) const;

  [[nodiscard]] const DemandParams& params() const noexcept { return params_; }
  /// Tracked series in ascending chain-id order (std::map keeps iteration
  /// deterministic for audits and gauges).
  [[nodiscard]] const std::map<NfcId, ChainSeries>& series() const noexcept { return series_; }

 private:
  [[nodiscard]] std::uint64_t chain_seed(NfcId id) const noexcept;

  DemandParams params_;
  std::map<NfcId, ChainSeries> series_;
};

}  // namespace alvc::elastic
