// ElasticController: the closed loop tying the elastic subsystem together.
//
// One tick =
//   1. sync   — start tracking demand for newly provisioned chains, stop
//               for torn-down/lost ones (the fault engine and the traffic
//               generator churn chains underneath us);
//   2. scale  — ScalingController pass (hysteresis + cooldown);
//   3. migrate— MigrationPlanner relief pass over hot hosts;
//   4. observe— SLO accounting (demand served vs. offered) and per-class
//               granted-vs-demand gauges.
//
// The controller is externally synchronized exactly like the orchestrator
// it drives: no mutex here, one caller at a time (ChaosRunner wraps every
// event in its lock; see DESIGN.md §12). Ticks are driven by simulated
// time — the chaos tick hook or a test loop — never by a wall clock.
#pragma once

#include "elastic/demand.h"
#include "elastic/ledger.h"
#include "elastic/migration.h"
#include "elastic/scaling.h"
#include "orchestrator/orchestrator.h"
#include "orchestrator/placement.h"

namespace alvc::elastic {

struct ElasticParams {
  DemandParams demand;
  ScalingPolicy scaling;
  MigrationPolicy migration;
  CostModel cost;
  ExecutionMode mode = ExecutionMode::kIncremental;
};

struct ElasticStats {
  std::size_t ticks = 0;
  /// Chain-tick observations where offered demand exceeded served
  /// capacity (granted bandwidth x scale factor) — the SLO-violation
  /// numerator; `chain_observations` is the denominator.
  std::size_t slo_violations = 0;
  std::size_t chain_observations = 0;

  [[nodiscard]] double slo_violation_rate() const noexcept {
    return chain_observations == 0
               ? 0.0
               : static_cast<double>(slo_violations) / static_cast<double>(chain_observations);
  }
};

class ElasticController {
 public:
  /// `orch` and `placement` must outlive the controller; `placement` is
  /// used by the reprovision baseline only.
  ElasticController(alvc::orchestrator::NetworkOrchestrator& orch,
                    const alvc::orchestrator::PlacementStrategy& placement,
                    const ElasticParams& params = {});

  /// One control-loop pass at simulated time `now_s`.
  void tick(double now_s);

  void set_mode(ExecutionMode mode) noexcept { migration_.set_mode(mode); }

  [[nodiscard]] const DemandModel& demand() const noexcept { return demand_; }
  [[nodiscard]] const ScalingController& scaling() const noexcept { return scaling_; }
  [[nodiscard]] const MigrationPlanner& migration() const noexcept { return migration_; }
  [[nodiscard]] const UpdateCostLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] const ElasticStats& stats() const noexcept { return stats_; }

 private:
  alvc::orchestrator::NetworkOrchestrator* orch_;
  DemandModel demand_;
  UpdateCostLedger ledger_;
  ScalingController scaling_;
  MigrationPlanner migration_;
  ElasticStats stats_;
};

}  // namespace alvc::elastic
