#include "elastic/migration.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include "telemetry/telemetry.h"

namespace alvc::elastic {

using alvc::nfv::HostRef;
using alvc::orchestrator::NetworkOrchestrator;
using alvc::orchestrator::ProvisionedChain;
using alvc::topology::Resources;
using alvc::util::NfcId;
using alvc::util::OpsId;
using alvc::util::ServerId;

namespace {

double dimension_ratio(double used, double nominal) noexcept {
  return nominal > 0 ? used / nominal : 0.0;
}

/// Deterministic candidate ordering: coldest first, optical before
/// electronic on ties (the paper's preference), then by id.
using CandidateKey = std::tuple<double, int, std::uint32_t>;

CandidateKey candidate_key(double util, const HostRef& host) {
  if (const auto* ops = std::get_if<OpsId>(&host)) return {util, 0, ops->value()};
  return {util, 1, std::get<ServerId>(host).value()};
}

}  // namespace

double MigrationPlanner::utilization(const NetworkOrchestrator& orch, const HostRef& host) {
  const auto& topo = orch.cloud().pool().topology();
  Resources nominal;
  if (const auto* ops = std::get_if<OpsId>(&host)) {
    nominal = topo.ops(*ops).compute;
  } else {
    nominal = topo.server(std::get<ServerId>(host)).capacity;
  }
  const Resources used = orch.cloud().pool().reserved_on(host);
  double util = dimension_ratio(used.cpu_cores, nominal.cpu_cores);
  util = std::max(util, dimension_ratio(used.memory_gb, nominal.memory_gb));
  util = std::max(util, dimension_ratio(used.storage_gb, nominal.storage_gb));
  return util;
}

std::optional<HostRef> MigrationPlanner::pick_target(const ProvisionedChain& chain,
                                                     std::size_t fi) const {
  const auto* vc = orch_->clusters().find(chain.cluster);
  if (vc == nullptr) return std::nullopt;
  const auto& topo = orch_->clusters().topology();
  const auto& pool = orch_->cloud().pool();
  const auto& desc = orch_->cloud().catalog().descriptor(chain.record.spec.functions[fi]);
  const HostRef current = chain.placement.hosts[fi];

  std::optional<HostRef> best;
  CandidateKey best_key{};
  const auto consider = [&](const HostRef& host) {
    if (host == current) return;
    if (!pool.fits(host, desc.demand)) return;
    const double util = utilization(*orch_, host);
    if (util >= policy_.hot_utilization) return;  // moving heat, not shedding it
    const CandidateKey key = candidate_key(util, host);
    if (!best || key < best_key) {
      best = host;
      best_key = key;
    }
  };

  for (OpsId ops : vc->layer.opss) {
    if (!topo.ops(ops).optoelectronic || !topo.ops_usable(ops)) continue;
    if (desc.electronic_only) continue;
    consider(HostRef{ops});
  }
  for (alvc::util::TorId tor : vc->layer.tors) {
    if (!topo.tor_usable(tor)) continue;
    for (ServerId server : topo.tor(tor).servers) {
      if (!topo.server_usable(server)) continue;
      consider(HostRef{server});
    }
  }
  return best;
}

std::size_t MigrationPlanner::tick(double now_s) {
  std::vector<NfcId> ids;
  for (const auto* chain : orch_->chains()) ids.push_back(chain->record.id);
  std::sort(ids.begin(), ids.end());

  std::size_t moves = 0;
  for (NfcId id : ids) {
    if (moves >= policy_.max_moves_per_tick) break;
    const ProvisionedChain* chain = orch_->chain(id);
    if (chain == nullptr || chain->degraded) continue;
    if (const auto it = last_move_s_.find(id);
        it != last_move_s_.end() && now_s - it->second < policy_.cooldown_s) {
      continue;
    }
    for (std::size_t fi = 0; fi < chain->placement.hosts.size(); ++fi) {
      if (fi >= chain->instances.size() || !chain->instances[fi].valid()) continue;
      if (utilization(*orch_, chain->placement.hosts[fi]) < policy_.hot_utilization) continue;
      const auto target = pick_target(*chain, fi);
      if (!target) {
        ++stats_.no_target;
        ALVC_COUNT("elastic.migration.no_target");
        continue;
      }
      const CostSnapshot before = UpdateCostLedger::snapshot(*orch_);
      if (mode_ == ExecutionMode::kIncremental) {
        if (orch_->migrate_function(id, fi, *target).is_ok()) {
          ledger_->charge(ActionKind::kMigration, *orch_, before);
          ++stats_.migrations;
          ALVC_COUNT("elastic.migration.actions");
          last_move_s_[id] = now_s;
          ++moves;
        } else {
          ++stats_.failed;
        }
      } else {
        // Baseline: tear the whole chain down and admit it afresh. `chain`
        // is invalid past this point, so the inner loop must end here.
        const alvc::nfv::NfcSpec spec = chain->record.spec;
        if (!orch_->teardown_chain(id).is_ok()) {
          ++stats_.failed;
          break;
        }
        if (const auto fresh = orch_->provision_chain(spec, *placement_)) {
          ledger_->charge(ActionKind::kReprovision, *orch_, before);
          ++stats_.reprovisions;
          ALVC_COUNT("elastic.migration.reprovisions");
          last_move_s_[*fresh] = now_s;
          if (on_reprovision_) on_reprovision_(id, *fresh);
          ++moves;
        } else {
          ++stats_.lost;  // admission raced away; the log shows the teardown
        }
      }
      break;  // one move per chain per tick
    }
  }
  return moves;
}

}  // namespace alvc::elastic
