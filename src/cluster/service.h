// Service-type registry (paper §III-A).
//
// VMs are grouped by the network service they provide (web, map-reduce,
// SNS, file, backup, ...). The paper leaves the set of services to the
// operator; the registry maps dense ServiceId values to names and provides
// the canonical grouping used to form virtual clusters.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "topology/topology.h"
#include "util/ids.h"

namespace alvc::cluster {

using alvc::util::ServiceId;
using alvc::util::VmId;

/// Named service types. Ids are dense: id.value() indexes the registry.
class ServiceRegistry {
 public:
  /// Registers a service; returns its id.
  ServiceId add(std::string name);

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] const std::string& name(ServiceId id) const { return names_.at(id.index()); }

  /// Pre-populated registry with `count` services named like the paper's
  /// examples (web, map-reduce, sns, file, backup, ...), cycling with a
  /// numeric suffix beyond the built-in names.
  [[nodiscard]] static ServiceRegistry make_default(std::size_t count);

 private:
  std::vector<std::string> names_;
};

/// Groups every VM in the topology by its service label. Result is indexed
/// by ServiceId value; services with no VMs yield empty groups. The number
/// of groups is max(service label)+1, or `min_groups` if larger.
[[nodiscard]] std::vector<std::vector<VmId>> group_vms_by_service(
    const alvc::topology::DataCenterTopology& topo, std::size_t min_groups = 0);

}  // namespace alvc::cluster
