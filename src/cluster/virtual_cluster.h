// Virtual Cluster: a VM group plus its Abstraction Layer (paper Fig. 3).
#pragma once

#include <vector>

#include "cluster/abstraction_layer.h"
#include "util/ids.h"

namespace alvc::cluster {

using alvc::util::ClusterId;
using alvc::util::ServiceId;
using alvc::util::VmId;

struct VirtualCluster {
  ClusterId id;
  ServiceId service;  // the service type this VC serves (may be invalid for ad-hoc groups)
  std::vector<VmId> vms;
  AbstractionLayer layer;
  /// Whether the AL + ToRs induce a connected subgraph (set at build time
  /// and maintained across churn).
  bool connected = false;
  /// Set when hardware failures could not be repaired: some of the group's
  /// ToRs have no usable AL uplink. A degraded cluster keeps serving what
  /// it can; coverage invariants are relaxed until capacity returns.
  bool degraded = false;

  [[nodiscard]] bool contains_vm(VmId vm) const noexcept;
};

}  // namespace alvc::cluster
