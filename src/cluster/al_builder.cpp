#include "cluster/al_builder.h"

#include <algorithm>
#include <set>

#include "graph/articulation.h"
#include "graph/scratch.h"
#include "graph/set_cover.h"
#include "graph/vertex_cover.h"
#include "telemetry/telemetry.h"
#include "util/bitset.h"

namespace alvc::cluster {

using alvc::graph::BipartiteGraph;
using alvc::topology::DataCenterTopology;
using alvc::util::DynamicBitset;
using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Rng;

namespace {

/// Distinct ToRs hosting at least one VM of the group, ascending.
std::vector<TorId> tors_of_group(const DataCenterTopology& topo, std::span<const VmId> group) {
  std::set<TorId> tors;
  for (VmId vm : group) tors.insert(topo.tor_of_vm(vm));
  return {tors.begin(), tors.end()};
}

/// Stage 1 (paper): minimum ToR set covering all VMs of the group.
std::vector<TorId> select_tors(const DataCenterTopology& topo, std::span<const VmId> group,
                               bool exact, std::size_t node_budget) {
  ALVC_SPAN(span, "al_builder.select_tors");
  // Left = the group's VMs, right = only the live ToRs those VMs connect
  // to, dense re-indexed in ascending id order so the greedy cover's
  // lowest-index tie-break is untouched (a failed ToR covered nobody
  // before, so dropping it entirely is equivalent). vm_tor_graph sizes the
  // right side to every ToR in the DC, which made each build O(#ToRs) and
  // a 100k-cluster batch build quadratic.
  std::vector<TorId::value_type> candidates;
  for (const VmId vm : group) {
    for (TorId t : topo.tors_of_vm(vm)) {
      if (topo.tor_usable(t)) candidates.push_back(t.value());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  const auto dense_index = [&](TorId t) {
    return static_cast<std::size_t>(
        std::lower_bound(candidates.begin(), candidates.end(), t.value()) - candidates.begin());
  };
  BipartiteGraph g(group.size(), candidates.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    for (TorId t : topo.tors_of_vm(group[i])) {
      if (topo.tor_usable(t)) g.add_edge(i, dense_index(t));
    }
  }
  std::vector<std::size_t> chosen;
  if (exact) {
    if (auto result = alvc::graph::exact_one_sided_cover(g, node_budget)) {
      chosen = std::move(*result);
    } else {
      chosen = alvc::graph::greedy_one_sided_cover(g);
    }
  } else {
    chosen = alvc::graph::greedy_one_sided_cover(g);
  }
  std::vector<TorId> tors;
  tors.reserve(chosen.size());
  for (std::size_t t : chosen) tors.push_back(TorId{candidates[t]});
  return tors;
}

/// Stage 2 (paper): minimum set of FREE OPSs covering every selected ToR.
/// Returns kInfeasible if some ToR has no free uplink.
Expected<std::vector<OpsId>> select_ops(const DataCenterTopology& topo,
                                        std::span<const TorId> tors,
                                        const OpsOwnership& ownership, bool exact,
                                        std::size_t node_budget) {
  ALVC_SPAN(span, "al_builder.select_ops");
  // Left = selected ToRs (dense re-index), right = the OPSs on those ToRs'
  // uplink windows (dense re-index in ascending id order, so the greedy
  // cover's lowest-index tie-break is untouched); edges only to free OPSs
  // so ownership exclusivity is respected by construction. Sizing the
  // right side to the whole pool made every build O(pool), which turned a
  // 100k-cluster batch build quadratic.
  std::vector<OpsId::value_type> candidates;
  for (const TorId tor : tors) {
    for (OpsId ops : topo.tor(tor).uplinks) candidates.push_back(ops.value());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  const auto dense_index = [&](OpsId ops) {
    return static_cast<std::size_t>(
        std::lower_bound(candidates.begin(), candidates.end(), ops.value()) -
        candidates.begin());
  };
  BipartiteGraph g(tors.size(), candidates.size());
  for (std::size_t i = 0; i < tors.size(); ++i) {
    bool any = false;
    for (OpsId ops : topo.tor(tors[i]).uplinks) {
      if (ownership.is_free(ops) && topo.link_usable(tors[i], ops)) {
        g.add_edge(i, dense_index(ops));
        any = true;
      }
    }
    if (!any) {
      return Error{ErrorCode::kInfeasible,
                   "ToR " + std::to_string(tors[i].value()) + " has no free OPS uplink"};
    }
  }
  std::vector<std::size_t> chosen;
  if (exact) {
    if (auto result = alvc::graph::exact_one_sided_cover(g, node_budget)) {
      chosen = std::move(*result);
    } else {
      chosen = alvc::graph::greedy_one_sided_cover(g);
    }
  } else {
    chosen = alvc::graph::greedy_one_sided_cover(g);
  }
  std::vector<OpsId> opss;
  opss.reserve(chosen.size());
  for (std::size_t o : chosen) opss.push_back(OpsId{candidates[o]});
  return opss;
}

}  // namespace

std::size_t augment_layer_connectivity(const DataCenterTopology& topo,
                                       const OpsOwnership& ownership, AbstractionLayer& layer,
                                       bool& connected) {
  ALVC_SPAN(span, "al_builder.augment_connectivity");
  const auto& g = topo.switch_graph();
  const alvc::graph::CsrView csr = g.csr();
  std::size_t added = 0;

  // Layer membership as a stamped dense set, re-snapshotted each round:
  // the per-neighbor in_layer test inside the BFS becomes one array load
  // instead of a sorted-vector search. The recruit walk at the bottom only
  // ever adds vertices the snapshot did NOT contain (pred-chain vertices
  // are distinct), so the snapshot is observationally identical to the old
  // live contains_ops/contains_tor queries.
  alvc::graph::VertexSet layer_set;
  const auto traversable = [&](std::size_t v) {
    if (layer_set.contains(v)) return true;
    // May recruit free, working optical switches only; foreign ToRs are
    // off-limits. (Failed OPSs have no switch-graph edges anyway; the
    // explicit check keeps the invariant local.)
    if (!topo.is_ops_vertex(v)) return false;
    const OpsId ops = topo.vertex_to_ops(v);
    return ownership.is_free(ops) && topo.ops_usable(ops);
  };

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  alvc::graph::VertexIndexMap component;
  std::vector<std::size_t> members;
  std::vector<std::size_t> frontier;
  for (;;) {
    // Label the layer's vertices by connected component (within the layer).
    members.clear();
    for (TorId t : layer.tors) members.push_back(topo.tor_vertex(t));
    for (OpsId o : layer.opss) members.push_back(topo.ops_vertex(o));
    if (members.size() <= 1) {
      connected = true;
      return added;
    }
    layer_set.reset(g.vertex_count());
    for (std::size_t v : members) layer_set.insert(v);
    component.reset(g.vertex_count());
    std::size_t comp_count = 0;
    for (std::size_t seed : members) {
      if (component.contains(seed)) continue;
      const std::size_t label = comp_count++;
      frontier.clear();
      component.put(seed, label);
      frontier.push_back(seed);
      for (std::size_t head = 0; head < frontier.size(); ++head) {
        const std::size_t v = frontier[head];
        for (const auto& nb : csr.neighbors(v)) {
          if (component.contains(nb.vertex) || !layer_set.contains(nb.vertex)) continue;
          component.put(nb.vertex, label);
          frontier.push_back(nb.vertex);
        }
      }
    }
    if (comp_count <= 1) {
      connected = true;
      return added;
    }

    // Multi-source BFS from component 0 through traversable vertices to the
    // nearest vertex of any other component; recruit the free OPSs on the
    // path.
    alvc::graph::TraversalScratch& scratch = alvc::graph::thread_scratch();
    scratch.begin(g.vertex_count());
    for (std::size_t v : members) {
      if (component.get(v) == 0) {
        scratch.mark(v);
        scratch.predecessor[v] = kNone;
        scratch.frontier.push_back(v);
      }
    }
    std::size_t meet = kNone;
    for (std::size_t head = 0; head < scratch.frontier.size() && meet == kNone; ++head) {
      const std::size_t v = scratch.frontier[head];
      for (const auto& nb : csr.neighbors(v)) {
        if (scratch.seen(nb.vertex) || !traversable(nb.vertex)) continue;
        scratch.mark(nb.vertex);
        scratch.predecessor[nb.vertex] = v;
        const std::size_t label = component.get(nb.vertex);
        if (label != alvc::graph::kScratchNoVertex && label != 0) {
          meet = nb.vertex;
          break;
        }
        scratch.frontier.push_back(nb.vertex);
      }
    }
    if (meet == kNone) {
      connected = false;  // other components unreachable through free OPSs
      return added;
    }
    for (std::size_t v = scratch.predecessor[meet]; v != kNone && !layer_set.contains(v);
         v = scratch.predecessor[v]) {
      layer.opss.push_back(topo.vertex_to_ops(v));
      ++added;
    }
    std::sort(layer.opss.begin(), layer.opss.end());
  }
}

namespace {

Expected<AlBuildResult> finish(const DataCenterTopology& topo, const OpsOwnership& ownership,
                               AbstractionLayer layer, const AlBuilderOptions& options) {
  std::sort(layer.tors.begin(), layer.tors.end());
  std::sort(layer.opss.begin(), layer.opss.end());
  AlBuildResult result{.layer = std::move(layer)};
  if (options.ensure_connectivity) {
    result.augmented_ops =
        augment_layer_connectivity(topo, ownership, result.layer, result.connected);
  } else {
    result.connected = cluster_subgraph_connected(topo, result.layer);
  }
  ALVC_COUNT("al_builder.builds");
  ALVC_OBSERVE("al_builder.layer_tors", 0, 64, 32, result.layer.tors.size());
  ALVC_OBSERVE("al_builder.layer_opss", 0, 64, 32, result.layer.opss.size());
  ALVC_COUNT_N("al_builder.augmented_ops", result.augmented_ops);
  return result;
}

}  // namespace

Expected<AlBuildResult> VertexCoverAlBuilder::build(const DataCenterTopology& topo,
                                                    std::span<const VmId> group,
                                                    const OpsOwnership& ownership) const {
  if (group.empty()) return Error{ErrorCode::kInvalidArgument, "empty VM group"};
  AbstractionLayer layer;
  layer.tors = select_tors(topo, group, /*exact=*/false, 0);
  auto opss = select_ops(topo, layer.tors, ownership, /*exact=*/false, 0);
  if (!opss) return opss.error();
  layer.opss = std::move(*opss);
  return finish(topo, ownership, std::move(layer), options_);
}

Expected<AlBuildResult> RandomAlBuilder::build(const DataCenterTopology& topo,
                                               std::span<const VmId> group,
                                               const OpsOwnership& ownership) const {
  if (group.empty()) return Error{ErrorCode::kInvalidArgument, "empty VM group"};
  // Seed varies with the group's first VM so different clusters draw
  // different streams while staying reproducible.
  Rng rng(seed_ ^ (0x517cc1b727220a95ULL * (group.front().value() + 1)));
  AbstractionLayer layer;
  layer.tors = tors_of_group(topo, group);  // no ToR minimisation (ref [15])

  std::vector<char> covered(layer.tors.size(), 0);
  std::size_t remaining = layer.tors.size();
  std::set<OpsId> picked;
  // Candidate pool: free OPSs adjacent to any group ToR.
  std::vector<OpsId> pool;
  {
    std::set<OpsId> pool_set;
    for (TorId t : layer.tors) {
      for (OpsId o : topo.tor(t).uplinks) {
        if (ownership.is_free(o) && topo.link_usable(t, o)) pool_set.insert(o);
      }
    }
    pool.assign(pool_set.begin(), pool_set.end());
  }
  rng.shuffle(pool);
  for (OpsId ops : pool) {
    if (remaining == 0) break;
    bool useful = false;
    for (std::size_t i = 0; i < layer.tors.size(); ++i) {
      if (covered[i]) continue;
      const auto& uplinks = topo.tor(layer.tors[i]).uplinks;
      if (std::find(uplinks.begin(), uplinks.end(), ops) != uplinks.end() &&
          topo.link_usable(layer.tors[i], ops)) {
        covered[i] = 1;
        --remaining;
        useful = true;
      }
    }
    // Random baseline keeps even "useless" picks with some probability,
    // modelling the unguided selection of ref [15].
    if (useful || rng.bernoulli(0.25)) picked.insert(ops);
  }
  if (remaining > 0) {
    return Error{ErrorCode::kInfeasible, "random AL: some group ToR has no free OPS uplink"};
  }
  layer.opss.assign(picked.begin(), picked.end());
  return finish(topo, ownership, std::move(layer), options_);
}

Expected<AlBuildResult> GreedySetCoverAlBuilder::build(const DataCenterTopology& topo,
                                                       std::span<const VmId> group,
                                                       const OpsOwnership& ownership) const {
  if (group.empty()) return Error{ErrorCode::kInvalidArgument, "empty VM group"};
  AbstractionLayer layer;
  layer.tors = tors_of_group(topo, group);  // cover ALL group ToRs

  alvc::graph::SetCoverInstance instance;
  instance.universe_size = layer.tors.size();
  std::vector<OpsId> set_ops;
  for (std::size_t o = 0; o < topo.ops_count(); ++o) {
    const OpsId ops{static_cast<OpsId::value_type>(o)};
    if (!ownership.is_free(ops) || !topo.ops_usable(ops)) continue;
    DynamicBitset covers(layer.tors.size());
    const auto& links = topo.ops(ops).tor_links;
    for (std::size_t i = 0; i < layer.tors.size(); ++i) {
      if (std::find(links.begin(), links.end(), layer.tors[i]) != links.end() &&
          topo.link_usable(layer.tors[i], ops)) {
        covers.set(i);
      }
    }
    if (covers.any()) {
      instance.add_set(std::move(covers));
      set_ops.push_back(ops);
    }
  }
  const auto chosen = alvc::graph::greedy_set_cover(instance);
  if (!chosen) {
    return Error{ErrorCode::kInfeasible, "set-cover AL: some group ToR has no free OPS uplink"};
  }
  for (std::size_t i : *chosen) layer.opss.push_back(set_ops[i]);
  return finish(topo, ownership, std::move(layer), options_);
}

Expected<AlBuildResult> ResilientAlBuilder::build(const DataCenterTopology& topo,
                                                  std::span<const VmId> group,
                                                  const OpsOwnership& ownership) const {
  // Start from the paper's construction (connectivity forced on — a
  // disconnected AL cannot become 2-connected by adding vertices it is not
  // even attached to in our greedy scheme).
  AlBuilderOptions base_options = options_;
  base_options.ensure_connectivity = true;
  auto result = VertexCoverAlBuilder{base_options}.build(topo, group, ownership);
  if (!result) return result;
  if (!result->connected) return result;  // can't harden a split layer

  // Candidate pool: free, usable OPSs adjacent to the cluster subgraph.
  const auto& g = topo.switch_graph();
  const auto adjacent_free_ops = [&](const AbstractionLayer& layer) {
    std::set<OpsId> pool;
    const auto consider_vertex = [&](std::size_t v) {
      for (const auto& nb : g.neighbors(v)) {
        if (!topo.is_ops_vertex(nb.vertex)) continue;
        const OpsId o = topo.vertex_to_ops(nb.vertex);
        if (ownership.is_free(o) && topo.ops_usable(o) && !layer.contains_ops(o)) pool.insert(o);
      }
    };
    for (TorId t : layer.tors) consider_vertex(topo.tor_vertex(t));
    for (OpsId o : layer.opss) consider_vertex(topo.ops_vertex(o));
    return pool;
  };

  // Greedy: add the candidate that removes the most critical OPSs; stop at
  // zero exposure or when nothing helps.
  for (;;) {
    const auto critical = critical_ops(topo, result->layer);
    if (critical.empty()) break;
    OpsId best = OpsId::invalid();
    std::size_t best_remaining = critical.size();
    for (OpsId candidate : adjacent_free_ops(result->layer)) {
      AbstractionLayer trial = result->layer;
      trial.opss.push_back(candidate);
      const std::size_t remaining = critical_ops(topo, trial).size();
      if (remaining < best_remaining) {
        best_remaining = remaining;
        best = candidate;
      }
    }
    if (!best.valid()) break;  // no candidate reduces exposure
    result->layer.opss.push_back(best);
    std::sort(result->layer.opss.begin(), result->layer.opss.end());
    ++result->augmented_ops;
  }
  return result;
}

Expected<AlBuildResult> ExactAlBuilder::build(const DataCenterTopology& topo,
                                              std::span<const VmId> group,
                                              const OpsOwnership& ownership) const {
  if (group.empty()) return Error{ErrorCode::kInvalidArgument, "empty VM group"};
  AbstractionLayer layer;
  layer.tors = select_tors(topo, group, /*exact=*/true, node_budget_);
  auto opss = select_ops(topo, layer.tors, ownership, /*exact=*/true, node_budget_);
  if (!opss) return opss.error();
  layer.opss = std::move(*opss);
  return finish(topo, ownership, std::move(layer), options_);
}

bool cluster_subgraph_connected(const DataCenterTopology& topo, const AbstractionLayer& layer) {
  std::vector<std::size_t> members;
  for (TorId t : layer.tors) members.push_back(topo.tor_vertex(t));
  for (OpsId o : layer.opss) members.push_back(topo.ops_vertex(o));
  if (members.size() <= 1) return true;
  const auto& g = topo.switch_graph();
  const alvc::graph::CsrView csr = g.csr();
  alvc::graph::VertexSet member_set;
  member_set.reset(g.vertex_count());
  for (std::size_t v : members) member_set.insert(v);
  alvc::graph::TraversalScratch& scratch = alvc::graph::thread_scratch();
  scratch.begin(g.vertex_count());
  scratch.mark(members.front());
  scratch.frontier.push_back(members.front());
  std::size_t reached = 1;
  for (std::size_t head = 0; head < scratch.frontier.size(); ++head) {
    const std::size_t v = scratch.frontier[head];
    for (const auto& nb : csr.neighbors(v)) {
      if (!member_set.contains(nb.vertex) || scratch.seen(nb.vertex)) continue;
      scratch.mark(nb.vertex);
      ++reached;
      scratch.frontier.push_back(nb.vertex);
    }
  }
  return reached == member_set.size();
}

std::vector<OpsId> critical_ops(const DataCenterTopology& topo, const AbstractionLayer& layer) {
  std::vector<std::size_t> members;
  for (TorId t : layer.tors) members.push_back(topo.tor_vertex(t));
  for (OpsId o : layer.opss) members.push_back(topo.ops_vertex(o));
  const auto cuts = alvc::graph::articulation_points_in_subgraph(topo.switch_graph(), members);
  std::vector<OpsId> out;
  for (std::size_t v : cuts) {
    if (topo.is_ops_vertex(v)) out.push_back(topo.vertex_to_ops(v));
  }
  return out;
}

bool al_covers_group(const DataCenterTopology& topo, std::span<const VmId> group,
                     const AbstractionLayer& layer) {
  for (VmId vm : group) {
    const auto homes = topo.tors_of_vm(vm);
    const bool covered = std::any_of(homes.begin(), homes.end(), [&](TorId t) {
      return layer.contains_tor(t) && topo.tor_usable(t);
    });
    if (!covered) return false;
  }
  for (TorId t : layer.tors) {
    if (!topo.tor_usable(t)) return false;  // a dead ToR cannot anchor coverage
    bool linked = false;
    for (OpsId o : topo.tor(t).uplinks) {
      if (layer.contains_ops(o) && topo.link_usable(t, o)) {
        linked = true;
        break;
      }
    }
    if (!linked) return false;
  }
  return true;
}

}  // namespace alvc::cluster
