#include "cluster/virtual_cluster.h"

#include <algorithm>

namespace alvc::cluster {

bool VirtualCluster::contains_vm(VmId vm) const noexcept {
  return std::find(vms.begin(), vms.end(), vm) != vms.end();
}

}  // namespace alvc::cluster
