// Cluster lifecycle and churn handling.
//
// ClusterManager owns the set of Virtual Clusters over one topology and is
// the only writer of OpsOwnership, so the paper's exclusivity constraint
// ("one OPS cannot be part of two ALs") holds globally by construction.
//
// Churn events (VM join / leave / migrate) are first-class because the
// authors' companion work (ref [14]) argues AL-VC's selling point is LOW
// NETWORK UPDATE COST: a VM arriving under an already-covered ToR costs one
// rule install at that ToR, while only rack-set changes touch the AL. Every
// mutation returns an UpdateCost breakdown that the ABL1 bench aggregates.
#pragma once

#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "cluster/al_builder.h"
#include "cluster/virtual_cluster.h"
#include "topology/topology.h"
#include "util/error.h"
#include "util/executor.h"

namespace alvc::cluster {

using alvc::util::Expected;
using alvc::util::ServerId;
using alvc::util::Status;

/// Control-plane work done by one churn/build event.
struct UpdateCost {
  std::size_t flow_rules = 0;   // match/action rule installs or removals
  std::size_t tor_changes = 0;  // ToRs added to / removed from the AL's ToR set
  std::size_t ops_changes = 0;  // OPSs acquired or released by the AL

  UpdateCost& operator+=(const UpdateCost& other) noexcept {
    flow_rules += other.flow_rules;
    tor_changes += other.tor_changes;
    ops_changes += other.ops_changes;
    return *this;
  }
  [[nodiscard]] std::size_t total() const noexcept {
    return flow_rules + tor_changes + ops_changes;
  }
};

/// How a batch build/reoptimize resolved each unit of work (diagnostics;
/// the output itself is identical either way).
struct BatchBuildStats {
  std::size_t groups = 0;             // units of work in the batch
  std::size_t parallel_commits = 0;   // speculative results committed as-is
  std::size_t serial_rebuilds = 0;    // interference detected -> rebuilt serially

  BatchBuildStats& operator+=(const BatchBuildStats& other) noexcept {
    groups += other.groups;
    parallel_commits += other.parallel_commits;
    serial_rebuilds += other.serial_rebuilds;
    return *this;
  }
};

/// Threading contract: the manager holds no mutex and is externally
/// synchronized — one writer at a time, no concurrent readers during a
/// write. build_all_clusters is the one parallel entry point, and even
/// there the concurrency lives inside the call: worker threads build
/// speculative ALs against an immutable ownership snapshot (validated at
/// commit under the calling thread), so the manager itself is only ever
/// mutated by the caller's thread. The thread-safety annotations
/// (ALVC_GUARDED_BY) therefore live in util::Executor, which supplies the
/// synchronization this class relies on.
class ClusterManager {
 public:
  /// The manager keeps a reference to the topology; the topology must
  /// outlive it. VM migration mutates the topology through this reference.
  explicit ClusterManager(alvc::topology::DataCenterTopology& topo);

  // ---- cluster lifecycle ----

  /// Builds an AL for `group` with `builder`, acquires its OPSs, and
  /// registers the cluster. Fails (kInfeasible/kConflict) without side
  /// effects.
  [[nodiscard]] Expected<ClusterId> create_cluster(ServiceId service, std::span<const VmId> group,
                                                   const AlBuilder& builder);

  /// Convenience: one cluster per service label (paper Fig. 1), skipping
  /// empty groups. Returns the created ids; stops at the first failure and
  /// rolls back nothing (partial results are returned in the error-free
  /// case only).
  [[nodiscard]] Expected<std::vector<ClusterId>> create_clusters_by_service(
      const AlBuilder& builder);

  /// Parallel variant of create_clusters_by_service: fans each service
  /// group's AlBuilder::build out to `executor` against a snapshot of the
  /// ownership registry, then commits in ascending group id. A speculative
  /// result is committed only when no ownership cell it read was changed by
  /// an earlier commit (optimistic-concurrency validation); otherwise the
  /// group is rebuilt serially against live ownership. Either way the
  /// clusters, ids, ownership, and any error are BIT-IDENTICAL to the
  /// serial path, including the paper's one-AL-per-OPS invariant. With a
  /// null executor this IS the serial path.
  [[nodiscard]] Expected<std::vector<ClusterId>> build_all_clusters(
      const AlBuilder& builder, alvc::util::Executor* executor = nullptr,
      BatchBuildStats* stats = nullptr);

  /// Releases the cluster's OPSs and forgets it.
  [[nodiscard]] Status destroy_cluster(ClusterId id);

  // ---- churn ----

  /// Adds a VM to an existing cluster, extending the AL if the VM's ToR is
  /// not yet covered. Returns the control-plane cost.
  [[nodiscard]] Expected<UpdateCost> add_vm(ClusterId id, VmId vm);

  /// Removes a VM; shrinks the ToR set (and releases now-unneeded OPSs)
  /// when the VM was the last cluster member behind its ToR.
  [[nodiscard]] Expected<UpdateCost> remove_vm(ClusterId id, VmId vm);

  /// Migrates a VM to another server (possibly another rack), updating the
  /// topology and the AL. Cost is the sum of the leave and join sides.
  [[nodiscard]] Expected<UpdateCost> migrate_vm(ClusterId id, VmId vm, ServerId new_server);

  /// Rebuilds a cluster's AL from scratch with `builder` and swaps it in if
  /// strictly smaller (churn inflates ALs over time; incremental updates
  /// are cheap but drift from the optimum). Returns the control-plane cost
  /// of the swap (rules for removed + added OPSs/ToRs), or a zero cost when
  /// the current AL is already as good.
  [[nodiscard]] Expected<UpdateCost> reoptimize_cluster(ClusterId id, const AlBuilder& builder);

  /// Batch reoptimization: rebuilds every cluster in `ids` (in the given
  /// order) with `builder`, fanning the rebuilds out to `executor` and
  /// committing with the same optimistic scheme as build_all_clusters.
  /// Results (swapped ALs, costs, errors) are bit-identical to calling
  /// reoptimize_cluster serially in order; stops at the first error.
  [[nodiscard]] Expected<std::vector<UpdateCost>> reoptimize_clusters(
      std::span<const ClusterId> ids, const AlBuilder& builder,
      alvc::util::Executor* executor = nullptr, BatchBuildStats* stats = nullptr);

  /// Cluster ids owned by control-plane shard `shard` of `shard_count`
  /// (id % shard_count == shard, matching ControlAgent's partition),
  /// ascending. Empty when no live id hashes to the shard.
  [[nodiscard]] std::vector<ClusterId> shard_cluster_ids(std::size_t shard,
                                                         std::size_t shard_count) const;

  /// reoptimize_clusters over one control-plane shard's clusters: the
  /// shard-aware entry the sharded orchestrator uses so each shard
  /// reoptimizes only the clusters it owns.
  [[nodiscard]] Expected<std::vector<UpdateCost>> reoptimize_shard(
      std::size_t shard, std::size_t shard_count, const AlBuilder& builder,
      alvc::util::Executor* executor = nullptr, BatchBuildStats* stats = nullptr);

  // ---- failure handling ----
  //
  // All handlers are idempotent: a second report of an element already in
  // the target state returns a zero cost with no side effects, so noisy
  // fault feeds cannot double-count repair work.
  //
  // Every AL-touching handler takes an optional `touched` list and appends
  // the id of each cluster whose AL it examined as affected (even when the
  // repair then failed or changed nothing) — the event's exact blast
  // radius, which the sharded control plane uses to scope its post-event
  // sweep to the affected chains instead of the whole population.

  /// Reacts to an OPS failure: marks it failed in the topology, evicts it
  /// from the owning AL (if any), re-covers the ToRs that lost their only
  /// AL uplink, and re-establishes connectivity. Returns the repair cost
  /// (zero if the OPS was unowned). kInfeasible when the AL cannot be
  /// repaired — the cluster is left covering what it can and disconnected.
  [[nodiscard]] Expected<UpdateCost> handle_ops_failure(alvc::util::OpsId ops,
                                                        std::vector<ClusterId>* touched = nullptr);

  /// Reacts to a ToR failure: the rack is stranded, so every cluster whose
  /// AL contained the ToR drops it and re-runs the Fig. 4 cover pass (via
  /// `builder`) over its still-reachable members. Clusters whose rebuild is
  /// infeasible right now are left degraded, not destroyed.
  [[nodiscard]] Expected<UpdateCost> handle_tor_failure(alvc::util::TorId tor,
                                                        const AlBuilder& builder,
                                                        std::vector<ClusterId>* touched = nullptr);

  /// Marks a server failed. ALs are a switch-level construct, so no AL
  /// changes: the orchestrator owns relocating the VNFs that lived there.
  [[nodiscard]] Status handle_server_failure(ServerId server);

  /// Reacts to a single ToR-OPS link cut: re-covers the affected ToR in the
  /// cluster that uses it (the AL may need a different uplink OPS).
  /// kNotFound when the link does not exist.
  [[nodiscard]] Expected<UpdateCost> handle_link_failure(alvc::util::TorId tor,
                                                         alvc::util::OpsId ops,
                                                         std::vector<ClusterId>* touched = nullptr);

  /// Re-integrates a repaired OPS: it returns to the free pool and every
  /// degraded cluster gets one rebuild attempt with `builder`.
  [[nodiscard]] Expected<UpdateCost> handle_ops_recovery(alvc::util::OpsId ops,
                                                         const AlBuilder& builder,
                                                         std::vector<ClusterId>* touched = nullptr);
  /// Same, for a repaired ToR (its rack becomes reachable again).
  [[nodiscard]] Expected<UpdateCost> handle_tor_recovery(alvc::util::TorId tor,
                                                         const AlBuilder& builder,
                                                         std::vector<ClusterId>* touched = nullptr);
  /// Same, for a repaired ToR-OPS link.
  [[nodiscard]] Expected<UpdateCost> handle_link_recovery(alvc::util::TorId tor,
                                                          alvc::util::OpsId ops,
                                                          const AlBuilder& builder,
                                                          std::vector<ClusterId>* touched = nullptr);
  /// Clears a server's failed flag (no AL impact, mirror of failure).
  [[nodiscard]] Status handle_server_recovery(ServerId server);

  /// One rebuild attempt (with `builder`) for every degraded cluster, in
  /// ascending cluster id. Run after any capacity-restoring event. Walks
  /// the degraded-cluster index, so the pass costs O(degraded), not
  /// O(clusters) — the difference between a recovery event and a full
  /// control-plane scan at 10^5 clusters.
  [[nodiscard]] Expected<UpdateCost> restore_degraded_clusters(
      const AlBuilder& builder, std::vector<ClusterId>* touched = nullptr);

  // ---- inspection ----

  [[nodiscard]] std::size_t cluster_count() const noexcept { return clusters_.size(); }
  [[nodiscard]] const VirtualCluster* find(ClusterId id) const;
  /// Live cluster with the lowest id serving `service` (the cluster every
  /// chain for that service provisions onto), or null. O(1) via the
  /// service index — at a million VMs the linear scan this replaces
  /// dominated every provision.
  [[nodiscard]] const VirtualCluster* find_by_service(alvc::util::ServiceId service) const;
  /// Cluster a VM currently belongs to (invalid id when unowned). O(1) via
  /// the owner index; the exclusivity invariant guarantees uniqueness.
  [[nodiscard]] ClusterId vm_owner(VmId vm) const noexcept;
  /// Clusters currently marked degraded, ascending. O(degraded) via the
  /// index restore_degraded_clusters walks.
  [[nodiscard]] std::vector<ClusterId> degraded_cluster_ids() const;
  /// Clusters whose AL contains `tor`, ascending. O(cluster count) scan;
  /// the orchestrator uses it as the blast radius of server events (settled
  /// placements and routes never leave their cluster's slice, and slice
  /// membership of a server keys on its primary ToR).
  [[nodiscard]] std::vector<ClusterId> clusters_containing_tor(TorId tor) const;
  [[nodiscard]] std::vector<const VirtualCluster*> clusters() const;
  [[nodiscard]] const OpsOwnership& ownership() const noexcept { return ownership_; }
  [[nodiscard]] alvc::topology::DataCenterTopology& topology() noexcept { return *topo_; }
  [[nodiscard]] const alvc::topology::DataCenterTopology& topology() const noexcept {
    return *topo_;
  }

  /// Aggregate bandwidth the cluster's slice can pull through its live
  /// ToR-OPS uplinks: the sum over every intact slice-internal uplink of
  /// min(ToR port, OPS port). An upper bound on what any allocation may
  /// reserve inside the slice — the StateAuditor's per-slice capacity
  /// invariant checks reservations against it. 0 for unknown clusters.
  [[nodiscard]] double slice_uplink_capacity_gbps(ClusterId id) const;

  /// Checks every global invariant (ownership consistency, AL covers its
  /// group, no shared OPSs); used by tests and ABL benches.
  [[nodiscard]] std::vector<std::string> check_invariants() const;

 private:
  VirtualCluster* find_mutable(ClusterId id);
  /// kConflict when any VM of `group` is already in a cluster.
  [[nodiscard]] Status check_group_free(std::span<const VmId> group) const;
  /// Registers a freshly built AL for `group`: acquires its OPSs and
  /// creates the cluster. Shared tail of the serial and speculative paths.
  [[nodiscard]] Expected<ClusterId> commit_built(ServiceId service, std::span<const VmId> group,
                                                 AlBuildResult built);
  /// Swap-if-smaller tail of reoptimize_cluster, shared with the batch
  /// commit: computes the symmetric-difference cost and installs `rebuilt`.
  [[nodiscard]] Expected<UpdateCost> apply_reoptimized(VirtualCluster& vc, AlBuildResult rebuilt);
  /// Extends `vc`'s AL to cover `tor`; returns the incremental cost.
  [[nodiscard]] Expected<UpdateCost> cover_tor(VirtualCluster& vc, alvc::util::TorId tor);
  /// Shrinks `vc` after `tor` lost its last VM; returns the cost.
  UpdateCost uncover_tor(VirtualCluster& vc, alvc::util::TorId tor);
  /// Incremental repair: re-covers every AL ToR that lost its AL uplink and
  /// re-establishes connectivity, on a candidate copy. kInfeasible leaves
  /// the cluster degraded but internally consistent.
  [[nodiscard]] Expected<UpdateCost> repair_coverage(VirtualCluster& vc);
  /// Full best-effort rebuild over the cluster's still-reachable members.
  /// Never fails: an infeasible rebuild (or one that cannot reach every
  /// member) leaves/marks the cluster degraded instead.
  UpdateCost rebuild_cluster(VirtualCluster& vc, const AlBuilder& builder);
  [[nodiscard]] std::vector<ClusterId> sorted_cluster_ids() const;
  /// Records `owner` (possibly invalid = none) for `vm` in the owner index,
  /// growing it when the topology gained VMs since construction.
  void set_vm_owner(VmId vm, ClusterId owner);
  /// The one writer of VirtualCluster::degraded: keeps the flag and the
  /// degraded-cluster index in lockstep (check_invariants cross-checks).
  void set_degraded(VirtualCluster& vc, bool degraded);

  alvc::topology::DataCenterTopology* topo_;
  OpsOwnership ownership_;
  std::unordered_map<ClusterId, VirtualCluster> clusters_;
  /// vm.index() -> owning cluster (invalid when unowned). Kept in step at
  /// the two membership-changing sites (commit_built/destroy_cluster and
  /// add_vm/remove_vm; migration never changes membership).
  std::vector<ClusterId> vm_owner_;
  /// service value -> live cluster ids serving it, ascending. front() is
  /// what find_by_service returns.
  std::unordered_map<alvc::util::ServiceId::value_type, std::vector<ClusterId>> by_service_;
  /// Ids of clusters with the degraded flag set, ascending (std::set), so
  /// restore passes and scoped sweeps iterate them without an O(clusters)
  /// scan. Maintained solely by set_degraded and destroy_cluster.
  std::set<ClusterId> degraded_ids_;
  ClusterId::value_type next_id_ = 0;
};

}  // namespace alvc::cluster
