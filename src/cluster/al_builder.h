// Abstraction-layer construction strategies (paper §III-C, Fig. 4).
//
// The paper's algorithm is two greedy "max-weightage" cover stages:
//   1. over the bipartite VM->ToR graph, pick the fewest ToRs covering every
//      VM of the group (ToRs whose VMs are already covered are skipped);
//   2. over the ToR->OPS graph restricted to the stage-1 ToRs and to OPSs
//      not owned by another AL, pick the fewest OPSs covering every chosen
//      ToR. That OPS set is the AL.
// An optional third stage augments the AL with extra free OPSs until the
// subgraph induced by {chosen ToRs} ∪ {AL} is connected, honouring the
// architectural requirement that the AL "provides connectivity to all the
// machines of the group".
//
// Baselines/ablations: random OPS selection (the authors' earlier approach,
// ref [15]), direct greedy set cover without the ToR-minimisation stage,
// and exact (optimal) covers via branch and bound.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "cluster/abstraction_layer.h"
#include "topology/topology.h"
#include "util/error.h"
#include "util/ids.h"
#include "util/rng.h"

namespace alvc::cluster {

using alvc::util::Expected;
using alvc::util::VmId;

struct AlBuildResult {
  AbstractionLayer layer;
  /// True when {tors} ∪ {opss} induce a connected subgraph of the switch
  /// graph (always true if connectivity augmentation is enabled and
  /// achievable).
  bool connected = false;
  /// OPSs added by the augmentation stage (subset of layer.opss).
  std::size_t augmented_ops = 0;
};

struct AlBuilderOptions {
  /// Grow the AL until the cluster subgraph is connected (stage 3).
  bool ensure_connectivity = true;
};

/// Strategy interface. Implementations must not mutate the topology and
/// must only return OPSs that are free in `ownership` (the caller acquires
/// them afterwards).
///
/// Thread-safety contract: build() is const and must be callable from
/// several threads at once on the same builder instance (the parallel
/// batch path in ClusterManager does exactly that). Implementations keep
/// no mutable per-call state — RandomAlBuilder, the only stochastic one,
/// derives a fresh local Rng from its fixed seed and the group, so the
/// result is a pure function of (topo, group, ownership).
class AlBuilder {
 public:
  virtual ~AlBuilder() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual Expected<AlBuildResult> build(
      const alvc::topology::DataCenterTopology& topo, std::span<const VmId> group,
      const OpsOwnership& ownership) const = 0;
};

/// The paper's algorithm: greedy one-sided covers in both stages.
class VertexCoverAlBuilder final : public AlBuilder {
 public:
  explicit VertexCoverAlBuilder(AlBuilderOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "vertex-cover"; }
  [[nodiscard]] Expected<AlBuildResult> build(const alvc::topology::DataCenterTopology& topo,
                                              std::span<const VmId> group,
                                              const OpsOwnership& ownership) const override;

 private:
  AlBuilderOptions options_;
};

/// The ref-[15] baseline: keep all of the group's ToRs, pick uniformly
/// random free OPSs until every ToR is covered.
class RandomAlBuilder final : public AlBuilder {
 public:
  explicit RandomAlBuilder(std::uint64_t seed, AlBuilderOptions options = {})
      : seed_(seed), options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }
  [[nodiscard]] Expected<AlBuildResult> build(const alvc::topology::DataCenterTopology& topo,
                                              std::span<const VmId> group,
                                              const OpsOwnership& ownership) const override;

 private:
  std::uint64_t seed_;
  AlBuilderOptions options_;
};

/// Ablation: skip the ToR-minimisation stage and set-cover the group's ToRs
/// with OPSs directly.
class GreedySetCoverAlBuilder final : public AlBuilder {
 public:
  explicit GreedySetCoverAlBuilder(AlBuilderOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "greedy-set-cover"; }
  [[nodiscard]] Expected<AlBuildResult> build(const alvc::topology::DataCenterTopology& topo,
                                              std::span<const VmId> group,
                                              const OpsOwnership& ownership) const override;

 private:
  AlBuilderOptions options_;
};

/// Resilience-hardened variant: runs the paper's vertex-cover construction,
/// then greedily adds free OPSs until no AL switch is a single point of
/// failure (no articulation points), or no candidate helps. Trades AL size
/// for single-failure survivability — the trade-off ABL3(b) quantifies:
/// minimum-cover ALs are 100% exposed.
class ResilientAlBuilder final : public AlBuilder {
 public:
  explicit ResilientAlBuilder(AlBuilderOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "resilient"; }
  [[nodiscard]] Expected<AlBuildResult> build(const alvc::topology::DataCenterTopology& topo,
                                              std::span<const VmId> group,
                                              const OpsOwnership& ownership) const override;

 private:
  AlBuilderOptions options_;
};

/// Ground truth for small instances: exact minimum covers in both stages
/// (branch and bound). Falls back to the greedy result when the search
/// budget is exhausted.
class ExactAlBuilder final : public AlBuilder {
 public:
  explicit ExactAlBuilder(AlBuilderOptions options = {}, std::size_t node_budget = 2'000'000)
      : options_(options), node_budget_(node_budget) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "exact"; }
  [[nodiscard]] Expected<AlBuildResult> build(const alvc::topology::DataCenterTopology& topo,
                                              std::span<const VmId> group,
                                              const OpsOwnership& ownership) const override;

 private:
  AlBuilderOptions options_;
  std::size_t node_budget_;
};

/// Stage-3 primitive, also used by ClusterManager during churn: grows
/// `layer.opss` with OPSs that are free in `ownership` until the induced
/// subgraph over layer.tors ∪ layer.opss is connected (or no further
/// progress is possible). Returns the number of OPSs added and sets
/// `connected` to the final state. The caller is responsible for acquiring
/// the added OPSs.
std::size_t augment_layer_connectivity(const alvc::topology::DataCenterTopology& topo,
                                       const OpsOwnership& ownership, AbstractionLayer& layer,
                                       bool& connected);

/// True when the subgraph of the switch graph induced by layer.tors and
/// layer.opss is connected (single component containing all of them).
[[nodiscard]] bool cluster_subgraph_connected(const alvc::topology::DataCenterTopology& topo,
                                              const AbstractionLayer& layer);

/// Resilience diagnostic: the AL's single points of failure — OPSs whose
/// loss disconnects the cluster subgraph (articulation points of the
/// induced {tors} ∪ {opss} subgraph, restricted to OPS vertices). Empty
/// for 2-connected ALs; each entry is a switch whose failure forces an AL
/// repair before traffic can flow again.
[[nodiscard]] std::vector<alvc::util::OpsId> critical_ops(
    const alvc::topology::DataCenterTopology& topo, const AbstractionLayer& layer);

/// True when every VM of `group` sits behind one of `layer.tors` and every
/// one of those ToRs uplinks to at least one AL OPS — i.e. the AL actually
/// "connects all the machines of the group".
[[nodiscard]] bool al_covers_group(const alvc::topology::DataCenterTopology& topo,
                                   std::span<const VmId> group, const AbstractionLayer& layer);

}  // namespace alvc::cluster
