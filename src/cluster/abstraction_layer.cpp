#include "cluster/abstraction_layer.h"

#include <algorithm>

namespace alvc::cluster {

using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::Status;

bool AbstractionLayer::contains_ops(OpsId id) const noexcept {
  return std::find(opss.begin(), opss.end(), id) != opss.end();
}

bool AbstractionLayer::contains_tor(TorId id) const noexcept {
  return std::find(tors.begin(), tors.end(), id) != tors.end();
}

std::size_t OpsOwnership::free_count() const noexcept {
  if (read_log_ != nullptr) read_log_->set_all();
  std::size_t n = 0;
  for (const auto& o : owner_) {
    if (!o.valid()) ++n;
  }
  return n;
}

Status OpsOwnership::acquire(std::span<const OpsId> opss, ClusterId cluster) {
  for (OpsId id : opss) {
    const ClusterId current = owner_.at(id.index());
    if (current.valid() && current != cluster) {
      return Error{ErrorCode::kConflict,
                   "OPS " + std::to_string(id.value()) + " already owned by cluster " +
                       std::to_string(current.value())};
    }
  }
  for (OpsId id : opss) owner_[id.index()] = cluster;
  return Status::ok();
}

void OpsOwnership::release(std::span<const OpsId> opss, ClusterId cluster) {
  for (OpsId id : opss) {
    if (owner_.at(id.index()) == cluster) owner_[id.index()] = ClusterId::invalid();
  }
}

void OpsOwnership::release_all(ClusterId cluster) {
  for (auto& o : owner_) {
    if (o == cluster) o = ClusterId::invalid();
  }
}

std::vector<OpsId> OpsOwnership::free_ops() const {
  if (read_log_ != nullptr) read_log_->set_all();
  std::vector<OpsId> out;
  for (std::size_t i = 0; i < owner_.size(); ++i) {
    if (!owner_[i].valid()) out.push_back(OpsId{static_cast<OpsId::value_type>(i)});
  }
  return out;
}

}  // namespace alvc::cluster
