// The Abstraction Layer (paper §III-C) and the exclusivity registry.
//
// An AL is the subset of OPSs logically assigned to one VM group; AL + group
// = Virtual Cluster. The paper's hard constraint — "one OPS cannot be part
// of two ALs at the same time" — is enforced centrally by OpsOwnership,
// which maps every OPS to its owning cluster (if any).
#pragma once

#include <span>
#include <vector>

#include "util/error.h"
#include "util/ids.h"

namespace alvc::cluster {

using alvc::util::ClusterId;
using alvc::util::OpsId;
using alvc::util::TorId;

/// The set of OPSs managing one VM group, plus the ToRs through which the
/// group's VMs reach them (the output of the two-stage selection).
struct AbstractionLayer {
  std::vector<TorId> tors;  // covering ToRs (stage 1)
  std::vector<OpsId> opss;  // the AL proper (stage 2)

  [[nodiscard]] bool contains_ops(OpsId id) const noexcept;
  [[nodiscard]] bool contains_tor(TorId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return opss.size(); }
};

/// Tracks which cluster owns each OPS. All mutations go through acquire/
/// release so the exclusivity invariant cannot be violated.
class OpsOwnership {
 public:
  explicit OpsOwnership(std::size_t ops_count) : owner_(ops_count, ClusterId::invalid()) {}

  [[nodiscard]] std::size_t ops_count() const noexcept { return owner_.size(); }
  [[nodiscard]] bool is_free(OpsId id) const { return !owner_.at(id.index()).valid(); }
  [[nodiscard]] ClusterId owner(OpsId id) const { return owner_.at(id.index()); }
  [[nodiscard]] std::size_t free_count() const noexcept;

  /// Atomically acquires all of `opss` for `cluster`: if any is taken the
  /// call fails with kConflict and nothing changes.
  [[nodiscard]] alvc::util::Status acquire(std::span<const OpsId> opss, ClusterId cluster);

  /// Releases any of `opss` owned by `cluster` (others are ignored).
  void release(std::span<const OpsId> opss, ClusterId cluster);

  /// Releases everything owned by `cluster`.
  void release_all(ClusterId cluster);

  /// Ids of currently unowned OPSs.
  [[nodiscard]] std::vector<OpsId> free_ops() const;

 private:
  std::vector<ClusterId> owner_;
};

}  // namespace alvc::cluster
