// The Abstraction Layer (paper §III-C) and the exclusivity registry.
//
// An AL is the subset of OPSs logically assigned to one VM group; AL + group
// = Virtual Cluster. The paper's hard constraint — "one OPS cannot be part
// of two ALs at the same time" — is enforced centrally by OpsOwnership,
// which maps every OPS to its owning cluster (if any).
#pragma once

#include <span>
#include <vector>

#include "util/bitset.h"
#include "util/error.h"
#include "util/ids.h"

namespace alvc::cluster {

using alvc::util::ClusterId;
using alvc::util::OpsId;
using alvc::util::TorId;

/// The set of OPSs managing one VM group, plus the ToRs through which the
/// group's VMs reach them (the output of the two-stage selection).
struct AbstractionLayer {
  std::vector<TorId> tors;  // covering ToRs (stage 1)
  std::vector<OpsId> opss;  // the AL proper (stage 2)

  [[nodiscard]] bool contains_ops(OpsId id) const noexcept;
  [[nodiscard]] bool contains_tor(TorId id) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return opss.size(); }
};

/// Tracks which cluster owns each OPS. All mutations go through acquire/
/// release so the exclusivity invariant cannot be violated.
///
/// An optional read log supports the optimistic parallel build path
/// (ClusterManager::build_all_clusters): every ownership cell a builder
/// queries is recorded, so a speculative build taken against a snapshot can
/// later be proven untouched by concurrent commits — if no logged cell
/// changed, a serial re-run would have read identical values and produced
/// the identical result.
class OpsOwnership {
 public:
  explicit OpsOwnership(std::size_t ops_count) : owner_(ops_count, ClusterId::invalid()) {}

  // Copies never inherit the read log: a snapshot observes for itself.
  OpsOwnership(const OpsOwnership& other) : owner_(other.owner_) {}
  OpsOwnership& operator=(const OpsOwnership& other) {
    owner_ = other.owner_;
    return *this;
  }

  [[nodiscard]] std::size_t ops_count() const noexcept { return owner_.size(); }
  [[nodiscard]] bool is_free(OpsId id) const {
    record_read(id.index());
    return !owner_.at(id.index()).valid();
  }
  [[nodiscard]] ClusterId owner(OpsId id) const {
    record_read(id.index());
    return owner_.at(id.index());
  }
  [[nodiscard]] std::size_t free_count() const noexcept;

  /// Attaches (or detaches, with nullptr) a read log sized ops_count():
  /// every subsequent per-OPS query sets the queried index. Whole-registry
  /// queries (free_count/free_ops) set every bit.
  void set_read_log(alvc::util::DynamicBitset* log) noexcept { read_log_ = log; }

  /// Atomically acquires all of `opss` for `cluster`: if any is taken the
  /// call fails with kConflict and nothing changes.
  [[nodiscard]] alvc::util::Status acquire(std::span<const OpsId> opss, ClusterId cluster);

  /// Releases any of `opss` owned by `cluster` (others are ignored).
  void release(std::span<const OpsId> opss, ClusterId cluster);

  /// Releases everything owned by `cluster`.
  void release_all(ClusterId cluster);

  /// Ids of currently unowned OPSs.
  [[nodiscard]] std::vector<OpsId> free_ops() const;

 private:
  void record_read(std::size_t index) const {
    if (read_log_ != nullptr) read_log_->set(index);
  }

  std::vector<ClusterId> owner_;
  alvc::util::DynamicBitset* read_log_ = nullptr;
};

}  // namespace alvc::cluster
