#include "cluster/service.h"

#include <array>

namespace alvc::cluster {

ServiceId ServiceRegistry::add(std::string name) {
  names_.push_back(std::move(name));
  return ServiceId{static_cast<ServiceId::value_type>(names_.size() - 1)};
}

ServiceRegistry ServiceRegistry::make_default(std::size_t count) {
  static constexpr std::array<const char*, 8> kNames = {
      "web", "map-reduce", "sns", "file", "backup", "database", "cache", "streaming"};
  ServiceRegistry registry;
  for (std::size_t i = 0; i < count; ++i) {
    if (i < kNames.size()) {
      registry.add(kNames[i]);
    } else {
      registry.add("service-" + std::to_string(i));
    }
  }
  return registry;
}

std::vector<std::vector<VmId>> group_vms_by_service(
    const alvc::topology::DataCenterTopology& topo, std::size_t min_groups) {
  const std::size_t groups = std::max(min_groups, topo.service_count());
  std::vector<std::vector<VmId>> result(groups);
  for (const auto& vm : topo.vms()) {
    result[vm.service.index()].push_back(vm.id);
  }
  return result;
}

}  // namespace alvc::cluster
