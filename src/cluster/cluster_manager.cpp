#include "cluster/cluster_manager.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "cluster/service.h"
#include "telemetry/telemetry.h"

namespace alvc::cluster {

using alvc::topology::DataCenterTopology;
using alvc::util::Error;
using alvc::util::ErrorCode;
using alvc::util::TorId;

ClusterManager::ClusterManager(DataCenterTopology& topo)
    : topo_(&topo),
      ownership_(topo.ops_count()),
      vm_owner_(topo.vm_count(), ClusterId::invalid()) {}

void ClusterManager::set_vm_owner(VmId vm, ClusterId owner) {
  const std::size_t slot = vm.index();
  if (slot >= vm_owner_.size()) {
    // The topology gained VMs since construction; track it (sizing, not
    // vertex-layout arithmetic).
    vm_owner_.resize(std::max(topo_->vm_count(), slot + 1), ClusterId::invalid());
  }
  vm_owner_[slot] = owner;
}

ClusterId ClusterManager::vm_owner(VmId vm) const noexcept {
  return vm.index() < vm_owner_.size() ? vm_owner_[vm.index()] : ClusterId::invalid();
}

void ClusterManager::set_degraded(VirtualCluster& vc, bool degraded) {
  vc.degraded = degraded;
  if (degraded) {
    degraded_ids_.insert(vc.id);
  } else {
    degraded_ids_.erase(vc.id);
  }
}

std::vector<ClusterId> ClusterManager::degraded_cluster_ids() const {
  return {degraded_ids_.begin(), degraded_ids_.end()};
}

Status ClusterManager::check_group_free(std::span<const VmId> group) const {
  // The owner index makes this O(|group|); exclusivity guarantees the
  // owner it reports is the one the old full scan would have found.
  for (VmId vm : group) {
    const ClusterId owner = vm_owner(vm);
    if (owner.valid()) {
      return Error{ErrorCode::kConflict, "VM " + std::to_string(vm.value()) +
                                             " already in cluster " + std::to_string(owner.value())};
    }
  }
  return Status::ok();
}

Expected<ClusterId> ClusterManager::commit_built(ServiceId service, std::span<const VmId> group,
                                                 AlBuildResult built) {
  const ClusterId id{next_id_++};
  if (auto status = ownership_.acquire(built.layer.opss, id); !status.is_ok()) {
    return status.error();  // defensive: builder returned a non-free OPS
  }
  VirtualCluster vc{.id = id,
                    .service = service,
                    .vms = {group.begin(), group.end()},
                    .layer = std::move(built.layer),
                    .connected = built.connected};
  clusters_.emplace(id, std::move(vc));
  for (VmId vm : group) set_vm_owner(vm, id);
  auto& peers = by_service_[service.value()];
  peers.insert(std::upper_bound(peers.begin(), peers.end(), id), id);
  // AL membership defines slice subgraphs; epoch-versioned route caches
  // must see every change to it, so each layer mutation below bumps the
  // topology's mutation epoch even though no element changed.
  topo_->bump_mutation_epoch();
  return id;
}

Expected<ClusterId> ClusterManager::create_cluster(ServiceId service, std::span<const VmId> group,
                                                   const AlBuilder& builder) {
  ALVC_SPAN(span, "cluster.create_cluster");
  if (auto status = check_group_free(group); !status.is_ok()) return status.error();
  auto built = builder.build(*topo_, group, ownership_);
  if (!built) return built.error();
  return commit_built(service, group, std::move(*built));
}

Expected<std::vector<ClusterId>> ClusterManager::create_clusters_by_service(
    const AlBuilder& builder) {
  const auto groups = group_vms_by_service(*topo_);
  std::vector<ClusterId> ids;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    auto id = create_cluster(ServiceId{static_cast<ServiceId::value_type>(s)}, groups[s], builder);
    if (!id) return id.error();
    ids.push_back(*id);
  }
  return ids;
}

Expected<std::vector<ClusterId>> ClusterManager::build_all_clusters(const AlBuilder& builder,
                                                                    alvc::util::Executor* executor,
                                                                    BatchBuildStats* stats) {
  ALVC_SPAN(span, "cluster.build_all_clusters");
  const auto groups = group_vms_by_service(*topo_);
  BatchBuildStats local;
  for (const auto& group : groups) {
    if (!group.empty()) ++local.groups;
  }
  ALVC_COUNT_N("cluster.build.groups", local.groups);

  if (executor == nullptr) {
    local.serial_rebuilds = local.groups;
    ALVC_COUNT_N("cluster.build.serial_rebuilds", local.serial_rebuilds);
    if (stats != nullptr) *stats += local;
    return create_clusters_by_service(builder);
  }

  // Speculative phase: every group builds against the same ownership
  // snapshot, recording which cells it read.
  struct Speculation {
    std::optional<Expected<AlBuildResult>> result;
    alvc::util::DynamicBitset reads;
  };
  const OpsOwnership snapshot = ownership_;
  std::vector<Speculation> spec(groups.size());
  // Each worker thread refreshes one thread-local copy of the snapshot per
  // batch instead of copying it per task: the builder only reads ownership
  // (the copy exists so each task can attach its own read log), and a
  // per-task copy is O(groups x pool) — tens of gigabytes of memcpy for a
  // 100k-group build over a 100k-OPS pool.
  static std::atomic<std::uint64_t> batch_counter{0};
  const std::uint64_t batch = ++batch_counter;
  auto tasks = executor->new_task_group();
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    tasks->submit([&, s, batch] {
      thread_local std::uint64_t view_batch = 0;
      thread_local std::unique_ptr<OpsOwnership> view;
      if (view_batch != batch) {
        view = std::make_unique<OpsOwnership>(snapshot);
        view_batch = batch;
      }
      spec[s].reads = alvc::util::DynamicBitset(view->ops_count());
      view->set_read_log(&spec[s].reads);
      spec[s].result.emplace(builder.build(*topo_, groups[s], *view));
      view->set_read_log(nullptr);
    });
  }
  tasks->wait_all();

  // Commit phase, ascending group id (the serial order). `dirty` holds
  // every ownership cell changed since the snapshot; a speculative result
  // whose read set avoids it is provably what the serial pass would have
  // produced.
  alvc::util::DynamicBitset dirty(ownership_.ops_count());
  std::vector<ClusterId> ids;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    const ServiceId service{static_cast<ServiceId::value_type>(s)};
    if (auto status = check_group_free(groups[s]); !status.is_ok()) {
      if (stats != nullptr) *stats += local;
      return status.error();
    }
    Expected<ClusterId> id = [&]() -> Expected<ClusterId> {
      if (!spec[s].reads.empty() && !spec[s].reads.intersects(dirty)) {
        ++local.parallel_commits;
        if (!*spec[s].result) return spec[s].result->error();
        return commit_built(service, groups[s], std::move(**spec[s].result));
      }
      ++local.serial_rebuilds;
      auto built = builder.build(*topo_, groups[s], ownership_);
      if (!built) return built.error();
      return commit_built(service, groups[s], std::move(*built));
    }();
    if (!id) {
      if (stats != nullptr) *stats += local;
      return id.error();
    }
    for (OpsId o : find(*id)->layer.opss) dirty.set(o.index());
    ids.push_back(*id);
  }
  ALVC_COUNT_N("cluster.build.parallel_commits", local.parallel_commits);
  ALVC_COUNT_N("cluster.build.serial_rebuilds", local.serial_rebuilds);
  if (stats != nullptr) *stats += local;
  return ids;
}

Status ClusterManager::destroy_cluster(ClusterId id) {
  const auto it = clusters_.find(id);
  if (it == clusters_.end()) {
    return Error{ErrorCode::kNotFound, "no cluster " + std::to_string(id.value())};
  }
  ownership_.release_all(id);
  for (VmId vm : it->second.vms) set_vm_owner(vm, ClusterId::invalid());
  const auto peers = by_service_.find(it->second.service.value());
  if (peers != by_service_.end()) {
    std::erase(peers->second, id);
    if (peers->second.empty()) by_service_.erase(peers);
  }
  degraded_ids_.erase(id);
  clusters_.erase(it);
  topo_->bump_mutation_epoch();
  return Status::ok();
}

Expected<UpdateCost> ClusterManager::add_vm(ClusterId id, VmId vm) {
  VirtualCluster* vc = find_mutable(id);
  if (vc == nullptr) return Error{ErrorCode::kNotFound, "no cluster " + std::to_string(id.value())};
  if (vc->contains_vm(vm)) {
    return Error{ErrorCode::kInvalidArgument, "VM already in this cluster"};
  }
  if (const ClusterId owner = vm_owner(vm); owner.valid() && owner != id) {
    return Error{ErrorCode::kConflict, "VM belongs to another cluster"};
  }
  UpdateCost cost;
  const auto homes = topo_->tors_of_vm(vm);
  const bool covered = std::any_of(homes.begin(), homes.end(), [&](TorId t) {
    return vc->layer.contains_tor(t);
  });
  if (!covered) {
    auto extend = cover_tor(*vc, topo_->tor_of_vm(vm));
    if (!extend) return extend.error();
    cost += *extend;
  }
  vc->vms.push_back(vm);
  set_vm_owner(vm, id);
  cost.flow_rules += 1;  // install the VM's rule at its ToR
  ALVC_COUNT("cluster.churn.vm_adds");
  ALVC_OBSERVE("cluster.churn.update_cost", 0, 32, 32, cost.total());
  return cost;
}

Expected<UpdateCost> ClusterManager::remove_vm(ClusterId id, VmId vm) {
  VirtualCluster* vc = find_mutable(id);
  if (vc == nullptr) return Error{ErrorCode::kNotFound, "no cluster " + std::to_string(id.value())};
  const auto it = std::find(vc->vms.begin(), vc->vms.end(), vm);
  if (it == vc->vms.end()) return Error{ErrorCode::kNotFound, "VM not in cluster"};
  const TorId tor = topo_->tor_of_vm(vm);
  vc->vms.erase(it);
  set_vm_owner(vm, ClusterId::invalid());
  UpdateCost cost;
  cost.flow_rules += 1;  // remove the VM's rule
  // Shrink only when no remaining member reaches the ToR by ANY homing, so
  // multi-homed coverage never breaks.
  const bool tor_still_used = std::any_of(vc->vms.begin(), vc->vms.end(), [&](VmId other) {
    const auto homes = topo_->tors_of_vm(other);
    return std::find(homes.begin(), homes.end(), tor) != homes.end();
  });
  if (!tor_still_used && vc->layer.contains_tor(tor)) {
    cost += uncover_tor(*vc, tor);
  }
  ALVC_COUNT("cluster.churn.vm_removes");
  ALVC_OBSERVE("cluster.churn.update_cost", 0, 32, 32, cost.total());
  return cost;
}

Expected<UpdateCost> ClusterManager::migrate_vm(ClusterId id, VmId vm, ServerId new_server) {
  VirtualCluster* vc = find_mutable(id);
  if (vc == nullptr) return Error{ErrorCode::kNotFound, "no cluster " + std::to_string(id.value())};
  if (!vc->contains_vm(vm)) return Error{ErrorCode::kNotFound, "VM not in cluster"};
  if (new_server.index() >= topo_->server_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad target server"};
  }
  const TorId old_tor = topo_->tor_of_vm(vm);
  const TorId new_tor = topo_->server(new_server).tor;
  UpdateCost cost;
  if (old_tor == new_tor) {
    topo_->move_vm(vm, new_server);
    return cost;  // same rack: no network update at all
  }
  // Join side first so a cover failure leaves everything untouched.
  if (!vc->layer.contains_tor(new_tor)) {
    auto extend = cover_tor(*vc, new_tor);
    if (!extend) return extend.error();
    cost += *extend;
  }
  topo_->move_vm(vm, new_server);
  cost.flow_rules += 2;  // remove rule at old ToR, install at new ToR
  const bool old_tor_still_used = std::any_of(vc->vms.begin(), vc->vms.end(), [&](VmId other) {
    const auto homes = topo_->tors_of_vm(other);
    return std::find(homes.begin(), homes.end(), old_tor) != homes.end();
  });
  if (!old_tor_still_used && vc->layer.contains_tor(old_tor)) {
    cost += uncover_tor(*vc, old_tor);
  }
  ALVC_COUNT("cluster.churn.vm_migrations");
  ALVC_OBSERVE("cluster.churn.update_cost", 0, 32, 32, cost.total());
  return cost;
}

Expected<UpdateCost> ClusterManager::apply_reoptimized(VirtualCluster& vc, AlBuildResult rebuilt) {
  if (rebuilt.layer.opss.size() >= vc.layer.opss.size()) {
    return UpdateCost{};  // no improvement: keep the incumbent AL
  }
  UpdateCost cost;
  // Rules: remove what leaves, add what arrives (symmetric difference).
  for (alvc::util::OpsId o : vc.layer.opss) {
    if (!rebuilt.layer.contains_ops(o)) {
      cost.ops_changes += 1;
      cost.flow_rules += 1;
    }
  }
  for (alvc::util::OpsId o : rebuilt.layer.opss) {
    if (!vc.layer.contains_ops(o)) {
      cost.ops_changes += 1;
      cost.flow_rules += 1;
    }
  }
  for (TorId t : vc.layer.tors) {
    if (!rebuilt.layer.contains_tor(t)) {
      cost.tor_changes += 1;
      cost.flow_rules += 1;
    }
  }
  for (TorId t : rebuilt.layer.tors) {
    if (!vc.layer.contains_tor(t)) {
      cost.tor_changes += 1;
      cost.flow_rules += 1;
    }
  }
  ownership_.release_all(vc.id);
  if (auto status = ownership_.acquire(rebuilt.layer.opss, vc.id); !status.is_ok()) {
    // Should not happen (scratch proved feasibility); restore the old AL.
    ALVC_IGNORE_STATUS(ownership_.acquire(vc.layer.opss, vc.id),
                       "restoring the AL we just released; those OPSs are still free");
    return status.error();
  }
  vc.layer = std::move(rebuilt.layer);
  vc.connected = rebuilt.connected;
  topo_->bump_mutation_epoch();
  return cost;
}

Expected<UpdateCost> ClusterManager::reoptimize_cluster(ClusterId id, const AlBuilder& builder) {
  VirtualCluster* vc = find_mutable(id);
  if (vc == nullptr) return Error{ErrorCode::kNotFound, "no cluster " + std::to_string(id.value())};
  if (vc->vms.empty()) return UpdateCost{};

  // Build against an ownership view where this cluster's OPSs are free, so
  // the rebuild may keep any of them.
  OpsOwnership scratch = ownership_;
  scratch.release_all(id);
  auto rebuilt = builder.build(*topo_, vc->vms, scratch);
  if (!rebuilt) return rebuilt.error();
  return apply_reoptimized(*vc, std::move(*rebuilt));
}

Expected<std::vector<UpdateCost>> ClusterManager::reoptimize_clusters(
    std::span<const ClusterId> ids, const AlBuilder& builder, alvc::util::Executor* executor,
    BatchBuildStats* stats) {
  ALVC_SPAN(span, "cluster.reoptimize_clusters");
  BatchBuildStats local;
  local.groups = ids.size();
  ALVC_COUNT_N("cluster.reoptimize.groups", local.groups);

  if (executor == nullptr) {
    local.serial_rebuilds = ids.size();
    ALVC_COUNT_N("cluster.reoptimize.serial_rebuilds", local.serial_rebuilds);
    std::vector<UpdateCost> costs;
    costs.reserve(ids.size());
    for (ClusterId id : ids) {
      auto cost = reoptimize_cluster(id, builder);
      if (!cost) {
        if (stats != nullptr) *stats += local;
        return cost.error();
      }
      costs.push_back(*cost);
    }
    if (stats != nullptr) *stats += local;
    return costs;
  }

  // Speculative phase: each cluster rebuilds against the snapshot with its
  // own OPSs released (so it may keep them), recording its reads.
  struct Speculation {
    std::optional<Expected<AlBuildResult>> result;
    alvc::util::DynamicBitset reads;
    bool attempted = false;
  };
  const OpsOwnership snapshot = ownership_;
  std::vector<Speculation> spec(ids.size());
  auto tasks = executor->new_task_group();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const VirtualCluster* vc = find(ids[i]);
    if (vc == nullptr || vc->vms.empty()) continue;  // commit loop handles both
    spec[i].attempted = true;
    tasks->submit([&, i, vc] {
      OpsOwnership local_view = snapshot;
      local_view.release_all(vc->id);
      spec[i].reads = alvc::util::DynamicBitset(local_view.ops_count());
      local_view.set_read_log(&spec[i].reads);
      spec[i].result.emplace(builder.build(*topo_, vc->vms, local_view));
    });
  }
  tasks->wait_all();

  // Commit phase in input order. A commit both releases this cluster's old
  // OPSs and acquires the new ones; either kind of change invalidates any
  // later speculation that read those cells.
  alvc::util::DynamicBitset dirty(ownership_.ops_count());
  std::vector<UpdateCost> costs;
  costs.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto fail = [&](const Error& error) -> Expected<std::vector<UpdateCost>> {
      if (stats != nullptr) *stats += local;
      return error;
    };
    VirtualCluster* vc = find_mutable(ids[i]);
    if (vc == nullptr) {
      return fail(Error{ErrorCode::kNotFound, "no cluster " + std::to_string(ids[i].value())});
    }
    if (vc->vms.empty()) {
      costs.push_back(UpdateCost{});
      continue;
    }
    const std::vector<alvc::util::OpsId> old_opss = vc->layer.opss;
    Expected<UpdateCost> cost = [&]() -> Expected<UpdateCost> {
      if (spec[i].attempted && !spec[i].reads.empty() && !spec[i].reads.intersects(dirty)) {
        ++local.parallel_commits;
        if (!*spec[i].result) return spec[i].result->error();
        return apply_reoptimized(*vc, std::move(**spec[i].result));
      }
      ++local.serial_rebuilds;
      OpsOwnership scratch = ownership_;
      scratch.release_all(vc->id);
      auto rebuilt = builder.build(*topo_, vc->vms, scratch);
      if (!rebuilt) return rebuilt.error();
      return apply_reoptimized(*vc, std::move(*rebuilt));
    }();
    if (!cost) return fail(cost.error());
    if (cost->total() > 0) {  // the AL was swapped: both sides changed cells
      for (alvc::util::OpsId o : old_opss) dirty.set(o.index());
      for (alvc::util::OpsId o : vc->layer.opss) dirty.set(o.index());
    }
    costs.push_back(*cost);
  }
  ALVC_COUNT_N("cluster.reoptimize.parallel_commits", local.parallel_commits);
  ALVC_COUNT_N("cluster.reoptimize.serial_rebuilds", local.serial_rebuilds);
  if (stats != nullptr) *stats += local;
  return costs;
}

Expected<UpdateCost> ClusterManager::handle_ops_failure(alvc::util::OpsId ops,
                                                        std::vector<ClusterId>* touched) {
  if (ops.index() >= topo_->ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad OPS id"};
  }
  if (!topo_->ops_usable(ops)) return UpdateCost{};  // already failed: nothing new to repair
  ALVC_SPAN(span, "cluster.handle_ops_failure");
  ALVC_COUNT("cluster.failures.ops");
  const ClusterId owner = ownership_.owner(ops);
  ALVC_IGNORE_STATUS(topo_->set_ops_failed(ops, true), "the ops id was validated above");
  UpdateCost cost;
  if (!owner.valid()) return cost;  // free-pool OPS: no AL touches anything it routed
  VirtualCluster* vc = find_mutable(owner);
  if (vc == nullptr) return cost;  // stale ownership; nothing to repair
  if (touched != nullptr) touched->push_back(owner);

  // The hardware is gone regardless of how the repair goes: evict it.
  std::erase(vc->layer.opss, ops);
  topo_->bump_mutation_epoch();
  ownership_.release(std::span<const alvc::util::OpsId>(&ops, 1), owner);
  cost.ops_changes += 1;
  cost.flow_rules += 1;

  auto repair = repair_coverage(*vc);
  if (!repair) return repair.error();
  cost += *repair;
  ALVC_OBSERVE("cluster.repair.update_cost", 0, 128, 32, cost.total());
  return cost;
}

Expected<UpdateCost> ClusterManager::repair_coverage(VirtualCluster& vc) {
  ALVC_SPAN(span, "cluster.repair_coverage");
  UpdateCost cost;
  // Repair on a candidate copy so an infeasible repair leaves the cluster
  // merely degraded, never holding OPSs it does not own.
  AbstractionLayer candidate = vc.layer;
  for (TorId tor : candidate.tors) {
    const auto usable = topo_->usable_uplinks(tor);
    const bool covered = std::any_of(usable.begin(), usable.end(), [&](alvc::util::OpsId o) {
      return candidate.contains_ops(o);
    });
    if (covered) continue;
    alvc::util::OpsId pick = alvc::util::OpsId::invalid();
    for (alvc::util::OpsId o : usable) {
      if (ownership_.is_free(o) && !candidate.contains_ops(o)) {
        pick = o;
        break;
      }
    }
    if (!pick.valid()) {
      vc.connected = cluster_subgraph_connected(*topo_, vc.layer);
      set_degraded(vc, true);
      return Error{ErrorCode::kInfeasible,
                   "AL repair: ToR " + std::to_string(tor.value()) + " has no usable uplink"};
    }
    candidate.opss.push_back(pick);
    cost.ops_changes += 1;
    cost.flow_rules += 1;
  }
  std::sort(candidate.opss.begin(), candidate.opss.end());

  bool connected = false;
  const std::size_t added = augment_layer_connectivity(*topo_, ownership_, candidate, connected);
  cost.ops_changes += added;
  cost.flow_rules += added;
  if (auto status = ownership_.acquire(candidate.opss, vc.id); !status.is_ok()) {
    set_degraded(vc, true);
    return status.error();
  }
  vc.layer = std::move(candidate);
  vc.connected = connected;
  topo_->bump_mutation_epoch();
  // Uplink repair fixes ToR-to-OPS coverage only; the cluster may still be
  // degraded for an unrelated reason (e.g. a member rack's ToR is down and
  // its VMs are unreachable), so re-derive the flag from actual coverage.
  set_degraded(vc, !al_covers_group(*topo_, vc.vms, vc.layer));
  return cost;
}

UpdateCost ClusterManager::rebuild_cluster(VirtualCluster& vc, const AlBuilder& builder) {
  ALVC_SPAN(span, "cluster.rebuild_cluster");
  // Which members can the network still reach? A VM counts when at least
  // one of its home ToRs is up with at least one usable uplink.
  std::vector<VmId> reachable;
  reachable.reserve(vc.vms.size());
  for (VmId vm : vc.vms) {
    const auto homes = topo_->tors_of_vm(vm);
    const bool ok = std::any_of(homes.begin(), homes.end(), [&](TorId t) {
      return topo_->tor_usable(t) && !topo_->usable_uplinks(t).empty();
    });
    if (ok) reachable.push_back(vm);
  }

  UpdateCost cost;
  if (reachable.empty()) {
    // Nothing left to serve: dissolve the AL but keep the cluster, so a
    // future recovery can resurrect it.
    cost.ops_changes += vc.layer.opss.size();
    cost.tor_changes += vc.layer.tors.size();
    cost.flow_rules += vc.layer.opss.size() + vc.layer.tors.size();
    ownership_.release_all(vc.id);
    vc.layer.opss.clear();
    vc.layer.tors.clear();
    vc.connected = true;  // vacuously
    set_degraded(vc, !vc.vms.empty());
    topo_->bump_mutation_epoch();
    return cost;
  }

  OpsOwnership scratch = ownership_;
  scratch.release_all(vc.id);
  auto rebuilt = builder.build(*topo_, reachable, scratch);
  if (!rebuilt) {
    // Keep the incumbent AL (it may still serve part of the group) and mark
    // the cluster degraded so a later recovery retries the rebuild.
    set_degraded(vc, true);
    vc.connected = cluster_subgraph_connected(*topo_, vc.layer);
    return cost;
  }

  // Symmetric-difference cost, then an unconditional swap: unlike
  // reoptimize, the incumbent AL references dead hardware, so "smaller" is
  // not the criterion — live coverage is.
  for (alvc::util::OpsId o : vc.layer.opss) {
    if (!rebuilt->layer.contains_ops(o)) {
      cost.ops_changes += 1;
      cost.flow_rules += 1;
    }
  }
  for (alvc::util::OpsId o : rebuilt->layer.opss) {
    if (!vc.layer.contains_ops(o)) {
      cost.ops_changes += 1;
      cost.flow_rules += 1;
    }
  }
  for (TorId t : vc.layer.tors) {
    if (!rebuilt->layer.contains_tor(t)) {
      cost.tor_changes += 1;
      cost.flow_rules += 1;
    }
  }
  for (TorId t : rebuilt->layer.tors) {
    if (!vc.layer.contains_tor(t)) {
      cost.tor_changes += 1;
      cost.flow_rules += 1;
    }
  }
  ownership_.release_all(vc.id);
  if (auto status = ownership_.acquire(rebuilt->layer.opss, vc.id); !status.is_ok()) {
    // Should not happen (scratch proved feasibility); restore the old AL.
    ALVC_IGNORE_STATUS(ownership_.acquire(vc.layer.opss, vc.id),
                       "restoring the AL we just released; those OPSs are still free");
    set_degraded(vc, true);
    return UpdateCost{};
  }
  vc.layer = std::move(rebuilt->layer);
  vc.connected = rebuilt->connected;
  set_degraded(vc, reachable.size() != vc.vms.size());
  topo_->bump_mutation_epoch();
  return cost;
}

Expected<UpdateCost> ClusterManager::handle_tor_failure(TorId tor, const AlBuilder& builder,
                                                        std::vector<ClusterId>* touched) {
  if (tor.index() >= topo_->tor_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad ToR id"};
  }
  if (!topo_->tor_usable(tor)) return UpdateCost{};  // already failed
  ALVC_SPAN(span, "cluster.handle_tor_failure");
  ALVC_COUNT("cluster.failures.tor");
  ALVC_IGNORE_STATUS(topo_->set_tor_failed(tor, true), "the tor id was validated above");
  UpdateCost cost;
  for (ClusterId id : sorted_cluster_ids()) {
    VirtualCluster* vc = find_mutable(id);
    if (vc == nullptr || !vc->layer.contains_tor(tor)) continue;
    if (touched != nullptr) touched->push_back(id);
    std::erase(vc->layer.tors, tor);
    topo_->bump_mutation_epoch();
    cost.tor_changes += 1;
    cost.flow_rules += 1;
    cost += rebuild_cluster(*vc, builder);
  }
  ALVC_OBSERVE("cluster.repair.update_cost", 0, 128, 32, cost.total());
  return cost;
}

Status ClusterManager::handle_server_failure(ServerId server) {
  if (server.index() >= topo_->server_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad server id"};
  }
  return topo_->set_server_failed(server, true);
}

Status ClusterManager::handle_server_recovery(ServerId server) {
  if (server.index() >= topo_->server_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad server id"};
  }
  return topo_->set_server_failed(server, false);
}

Expected<UpdateCost> ClusterManager::handle_link_failure(TorId tor, alvc::util::OpsId ops,
                                                         std::vector<ClusterId>* touched) {
  if (tor.index() >= topo_->tor_count() || ops.index() >= topo_->ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad link endpoint id"};
  }
  if (topo_->link_failed(tor, ops)) return UpdateCost{};  // already cut
  if (auto status = topo_->set_link_failed(tor, ops, true); !status.is_ok()) {
    return status.error();  // kNotFound: no such link
  }
  ALVC_SPAN(span, "cluster.handle_link_failure");
  ALVC_COUNT("cluster.failures.link");
  UpdateCost cost;
  for (ClusterId id : sorted_cluster_ids()) {
    VirtualCluster* vc = find_mutable(id);
    if (vc == nullptr || !vc->layer.contains_tor(tor)) continue;
    if (touched != nullptr) touched->push_back(id);
    // An infeasible repair leaves this cluster degraded; keep sweeping —
    // one stranded cluster must not block the others.
    if (auto repair = repair_coverage(*vc)) cost += *repair;
  }
  return cost;
}

Expected<UpdateCost> ClusterManager::handle_ops_recovery(alvc::util::OpsId ops,
                                                         const AlBuilder& builder,
                                                         std::vector<ClusterId>* touched) {
  if (ops.index() >= topo_->ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad OPS id"};
  }
  if (topo_->ops_usable(ops)) return UpdateCost{};  // was not failed
  ALVC_SPAN(span, "cluster.handle_ops_recovery");
  ALVC_COUNT("cluster.recoveries.ops");
  ALVC_IGNORE_STATUS(topo_->set_ops_failed(ops, false), "the ops id was validated above");
  return restore_degraded_clusters(builder, touched);
}

Expected<UpdateCost> ClusterManager::handle_tor_recovery(TorId tor, const AlBuilder& builder,
                                                         std::vector<ClusterId>* touched) {
  if (tor.index() >= topo_->tor_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad ToR id"};
  }
  if (topo_->tor_usable(tor)) return UpdateCost{};  // was not failed
  ALVC_SPAN(span, "cluster.handle_tor_recovery");
  ALVC_COUNT("cluster.recoveries.tor");
  ALVC_IGNORE_STATUS(topo_->set_tor_failed(tor, false), "the tor id was validated above");
  return restore_degraded_clusters(builder, touched);
}

Expected<UpdateCost> ClusterManager::handle_link_recovery(TorId tor, alvc::util::OpsId ops,
                                                          const AlBuilder& builder,
                                                          std::vector<ClusterId>* touched) {
  if (tor.index() >= topo_->tor_count() || ops.index() >= topo_->ops_count()) {
    return Error{ErrorCode::kInvalidArgument, "bad link endpoint id"};
  }
  if (!topo_->link_failed(tor, ops)) return UpdateCost{};  // was not cut
  if (auto status = topo_->set_link_failed(tor, ops, false); !status.is_ok()) {
    return status.error();
  }
  ALVC_SPAN(span, "cluster.handle_link_recovery");
  ALVC_COUNT("cluster.recoveries.link");
  return restore_degraded_clusters(builder, touched);
}

Expected<UpdateCost> ClusterManager::restore_degraded_clusters(const AlBuilder& builder,
                                                               std::vector<ClusterId>* touched) {
  ALVC_SPAN(span, "cluster.restore_degraded_clusters");
  UpdateCost cost;
  // Snapshot: rebuild_cluster() flips degraded flags, which edits the index
  // mid-iteration. Ascending order matches the old sorted_cluster_ids() walk.
  const std::vector<ClusterId> ids(degraded_ids_.begin(), degraded_ids_.end());
  for (ClusterId id : ids) {
    VirtualCluster* vc = find_mutable(id);
    if (vc == nullptr || !vc->degraded) continue;
    if (touched != nullptr) touched->push_back(id);
    cost += rebuild_cluster(*vc, builder);
  }
  return cost;
}

std::vector<ClusterId> ClusterManager::clusters_containing_tor(TorId tor) const {
  std::vector<ClusterId> ids;
  for (const auto& [id, vc] : clusters_) {
    if (vc.layer.contains_tor(tor)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<ClusterId> ClusterManager::sorted_cluster_ids() const {
  std::vector<ClusterId> ids;
  ids.reserve(clusters_.size());
  for (const auto& [id, vc] : clusters_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const VirtualCluster* ClusterManager::find(ClusterId id) const {
  const auto it = clusters_.find(id);
  return it == clusters_.end() ? nullptr : &it->second;
}

const VirtualCluster* ClusterManager::find_by_service(ServiceId service) const {
  const auto it = by_service_.find(service.value());
  if (it == by_service_.end() || it->second.empty()) return nullptr;
  return find(it->second.front());
}

std::vector<ClusterId> ClusterManager::shard_cluster_ids(std::size_t shard,
                                                         std::size_t shard_count) const {
  std::vector<ClusterId> ids;
  if (shard_count == 0) return ids;
  for (ClusterId id : sorted_cluster_ids()) {
    if (static_cast<std::size_t>(id.value()) % shard_count == shard) ids.push_back(id);
  }
  return ids;
}

Expected<std::vector<UpdateCost>> ClusterManager::reoptimize_shard(
    std::size_t shard, std::size_t shard_count, const AlBuilder& builder,
    alvc::util::Executor* executor, BatchBuildStats* stats) {
  return reoptimize_clusters(shard_cluster_ids(shard, shard_count), builder, executor, stats);
}

VirtualCluster* ClusterManager::find_mutable(ClusterId id) {
  const auto it = clusters_.find(id);
  return it == clusters_.end() ? nullptr : &it->second;
}

std::vector<const VirtualCluster*> ClusterManager::clusters() const {
  std::vector<const VirtualCluster*> out;
  out.reserve(clusters_.size());
  for (const auto& [id, vc] : clusters_) out.push_back(&vc);
  std::sort(out.begin(), out.end(),
            [](const VirtualCluster* a, const VirtualCluster* b) { return a->id < b->id; });
  return out;
}

Expected<UpdateCost> ClusterManager::cover_tor(VirtualCluster& vc, TorId tor) {
  UpdateCost cost;
  AbstractionLayer candidate = vc.layer;
  candidate.tors.push_back(tor);
  std::sort(candidate.tors.begin(), candidate.tors.end());
  cost.tor_changes += 1;
  cost.flow_rules += 1;  // programme the new ToR

  // Does any AL OPS already serve this ToR (over a live link)?
  const auto usable = topo_->usable_uplinks(tor);
  bool covered = false;
  for (alvc::util::OpsId o : usable) {
    if (candidate.contains_ops(o)) {
      covered = true;
      break;
    }
  }
  if (!covered) {
    // Recruit a free uplink OPS; prefer one adjacent to the current AL so
    // connectivity survives without further augmentation.
    const auto& g = topo_->switch_graph();
    alvc::util::OpsId pick = alvc::util::OpsId::invalid();
    for (alvc::util::OpsId o : usable) {
      if (!ownership_.is_free(o)) continue;
      if (!pick.valid()) pick = o;
      for (const auto& nb : g.neighbors(topo_->ops_vertex(o))) {
        const bool touches_al =
            (topo_->is_ops_vertex(nb.vertex) &&
             candidate.contains_ops(topo_->vertex_to_ops(nb.vertex))) ||
            (!topo_->is_ops_vertex(nb.vertex) &&
             candidate.contains_tor(topo_->vertex_to_tor(nb.vertex)));
        if (touches_al) {
          pick = o;
          break;
        }
      }
    }
    if (!pick.valid()) {
      return Error{ErrorCode::kInfeasible,
                   "no free OPS uplink for ToR " + std::to_string(tor.value())};
    }
    candidate.opss.push_back(pick);
    std::sort(candidate.opss.begin(), candidate.opss.end());
    cost.ops_changes += 1;
    cost.flow_rules += 1;
  }
  // Re-establish connectivity if the growth split the layer.
  bool connected = false;
  const std::size_t added =
      augment_layer_connectivity(*topo_, ownership_, candidate, connected);
  cost.ops_changes += added;
  cost.flow_rules += added;

  if (auto status = ownership_.acquire(candidate.opss, vc.id); !status.is_ok()) {
    return status.error();
  }
  vc.layer = std::move(candidate);
  vc.connected = connected;
  topo_->bump_mutation_epoch();
  return cost;
}

UpdateCost ClusterManager::uncover_tor(VirtualCluster& vc, TorId tor) {
  UpdateCost cost;
  std::erase(vc.layer.tors, tor);
  cost.tor_changes += 1;
  cost.flow_rules += 1;

  if (vc.layer.tors.empty()) {
    // Last rack gone: the AL dissolves entirely.
    cost.ops_changes += vc.layer.opss.size();
    cost.flow_rules += vc.layer.opss.size();
    ownership_.release(vc.layer.opss, vc.id);
    vc.layer.opss.clear();
    vc.connected = true;
    topo_->bump_mutation_epoch();
    return cost;
  }
  // Release OPSs that no longer uplink any remaining ToR, as long as the
  // layer stays connected without them.
  for (std::size_t i = vc.layer.opss.size(); i-- > 0;) {
    const alvc::util::OpsId ops = vc.layer.opss[i];
    const auto& links = topo_->ops(ops).tor_links;
    const bool still_needed = std::any_of(links.begin(), links.end(), [&](TorId t) {
      return vc.layer.contains_tor(t);
    });
    if (still_needed) continue;
    AbstractionLayer trimmed = vc.layer;
    trimmed.opss.erase(trimmed.opss.begin() + static_cast<std::ptrdiff_t>(i));
    if (cluster_subgraph_connected(*topo_, trimmed)) {
      ownership_.release(std::span<const alvc::util::OpsId>(&ops, 1), vc.id);
      vc.layer = std::move(trimmed);
      cost.ops_changes += 1;
      cost.flow_rules += 1;
    }
  }
  vc.connected = cluster_subgraph_connected(*topo_, vc.layer);
  topo_->bump_mutation_epoch();
  return cost;
}

double ClusterManager::slice_uplink_capacity_gbps(ClusterId id) const {
  const VirtualCluster* vc = find(id);
  if (vc == nullptr) return 0;
  double total = 0;
  for (alvc::util::TorId t : vc->layer.tors) {
    if (!topo_->tor_usable(t)) continue;
    const auto& tor = topo_->tor(t);
    for (alvc::util::OpsId o : tor.uplinks) {
      if (!vc->layer.contains_ops(o)) continue;
      if (!topo_->ops_usable(o) || topo_->link_failed(t, o)) continue;
      total += std::min(tor.port_bandwidth_gbps, topo_->ops(o).port_bandwidth_gbps);
    }
  }
  return total;
}

std::vector<std::string> ClusterManager::check_invariants() const {
  std::vector<std::string> violations;
  // Ownership consistency.
  for (std::size_t i = 0; i < ownership_.ops_count(); ++i) {
    const alvc::util::OpsId ops{static_cast<alvc::util::OpsId::value_type>(i)};
    const ClusterId owner = ownership_.owner(ops);
    if (!owner.valid()) continue;
    const auto it = clusters_.find(owner);
    if (it == clusters_.end()) {
      violations.push_back("OPS " + std::to_string(i) + " owned by unknown cluster");
    } else if (!it->second.layer.contains_ops(ops)) {
      violations.push_back("OPS " + std::to_string(i) + " owned but not in its cluster's AL");
    }
  }
  std::vector<char> vm_seen(topo_->vm_count(), 0);
  // Audit in id order, not hash order: invariant reports are diffed across
  // runs by the chaos soaks.
  for (const ClusterId id : sorted_cluster_ids()) {
    const VirtualCluster& vc = clusters_.at(id);
    for (alvc::util::OpsId ops : vc.layer.opss) {
      if (ownership_.owner(ops) != id) {
        violations.push_back("cluster " + std::to_string(id.value()) + " lists OPS " +
                             std::to_string(ops.value()) + " it does not own");
      }
      if (!topo_->ops_usable(ops)) {
        violations.push_back("cluster " + std::to_string(id.value()) + " AL contains failed OPS " +
                             std::to_string(ops.value()));
      }
    }
    for (TorId t : vc.layer.tors) {
      if (!topo_->tor_usable(t)) {
        violations.push_back("cluster " + std::to_string(id.value()) + " AL contains failed ToR " +
                             std::to_string(t.value()));
      }
    }
    if (!vc.degraded && !vc.vms.empty() && !al_covers_group(*topo_, vc.vms, vc.layer)) {
      violations.push_back("cluster " + std::to_string(id.value()) + " AL does not cover group");
    }
    for (VmId vm : vc.vms) {
      if (vm_seen[vm.index()]++) {
        violations.push_back("VM " + std::to_string(vm.value()) + " in multiple clusters");
      }
    }
    // The degraded index feeds the scoped fault sweeps; a stale entry in
    // either direction would silently shrink or inflate a blast radius.
    if (vc.degraded != (degraded_ids_.count(id) != 0)) {
      violations.push_back("cluster " + std::to_string(id.value()) +
                           " degraded flag disagrees with the degraded index");
    }
  }
  for (const ClusterId id : degraded_ids_) {
    if (clusters_.find(id) == clusters_.end()) {
      violations.push_back("degraded index lists unknown cluster " + std::to_string(id.value()));
    }
  }
  return violations;
}

}  // namespace alvc::cluster
