// Chaos soak harness: faults + traffic + invariant audits in one DES run.
//
// ChaosRunner drives a provisioned orchestrator through a stochastic fault
// schedule while synthetic chain traffic keeps arriving, auditing the whole
// control plane after every injected event. The report it returns encodes
// the robustness contract this repo holds itself to:
//
//   * the audit never fails (audit_violations == 0),
//   * every handler call succeeds (handler_errors == 0), and
//   * no chain is ever silently lost (chains_unaccounted == 0): every chain
//     that existed at the start either still runs, runs degraded with a
//     recorded reason, or was deliberately torn down with a logged event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "orchestrator/orchestrator.h"

namespace alvc::faults {

struct ChaosParams {
  FaultScheduleParams schedule;  // fault rates, horizon, and seed
  /// Scripted events (e.g. FaultInjector::whole_rack / whole_al) merged
  /// into the stochastic schedule by time.
  std::vector<FaultEvent> scripted;
  /// Load-side events (OverloadInjector scenarios): provisions and
  /// teardowns interleaved with the fault schedule on the same queue, so
  /// flash crowds land mid-outage and departures race repairs.
  std::vector<LoadEvent> load;
  /// Placement for load-event provisions; GreedyOpticalPlacement when null.
  const alvc::orchestrator::PlacementStrategy* placement = nullptr;
  /// Poisson arrival rate of synthetic flows offered to live chains
  /// round-robin while faults land; 0 disables traffic interleaving.
  double flow_rate_per_s = 0;
  std::uint64_t traffic_seed = 1;
  /// Periodic controller hook (e.g. the elastic control loop): invoked at
  /// t = tick_period_s, 2*tick_period_s, ... below the horizon, on the
  /// same event queue as faults and load — so scaling decisions land
  /// mid-outage and migrations race repairs. The runner's single-threaded
  /// loop serializes the hook with every other orchestrator call, keeping
  /// the external-synchronization contract intact. 0 disables.
  double tick_period_s = 0;
  std::function<void(double now_s)> on_tick;
  /// Audit after every fault event (the soak contract). Disable only for
  /// throughput benchmarks where the audit would dominate.
  bool audit_every_event = true;
  std::size_t max_recorded_violations = 8;
  /// Control-plane shards to run the orchestrator with (set_sharding is
  /// called once at the start of run()); 0 leaves the serial path. The
  /// runner itself stays a single-threaded driver either way — concurrency
  /// lives inside the orchestrator's calls.
  std::size_t shards = 0;
  /// Executor for the sharded control plane's fan-outs; null runs every
  /// shard pass serially. Must outlive the run.
  alvc::util::Executor* shard_executor = nullptr;
};

struct ChaosReport {
  std::size_t fault_events = 0;       // scheduled events over the horizon
  std::size_t failures_injected = 0;  // events applied with failure=true
  std::size_t repairs_injected = 0;
  std::size_t handler_errors = 0;     // non-ok handler returns (want 0)
  std::size_t flows_served = 0;       // arrivals that found a serving chain
  std::size_t flows_deferred = 0;     // arrivals that hit a parked chain
  std::size_t load_events = 0;        // overload events scheduled
  std::size_t load_provisioned = 0;   // load provisions that were admitted
  std::size_t load_provisioned_degraded = 0;  // ... at a reduced rung
  std::size_t load_rejected = 0;      // load provisions refused outright
  std::size_t load_torn_down = 0;     // load departures applied
  std::size_t controller_ticks = 0;   // on_tick invocations
  std::size_t shard_count = 0;        // control-plane shards the run used (0 = serial)
  std::size_t audit_violations = 0;   // total across all audits (want 0)
  std::vector<std::string> violations;  // first few, timestamped

  // End-state chain accounting (plus cumulative orchestrator stats).
  std::size_t chains_live_healthy = 0;
  std::size_t chains_live_degraded = 0;
  std::size_t chains_lost = 0;         // stats().chains_lost
  std::size_t chains_restored = 0;     // stats().chains_restored
  std::size_t chains_unaccounted = 0;  // silently vanished (must be 0)

  [[nodiscard]] bool clean() const noexcept {
    return audit_violations == 0 && handler_errors == 0 && chains_unaccounted == 0;
  }
};

/// Threading contract: single-threaded driver. The runner serializes every
/// orchestrator call through its own event loop, which is what makes it a
/// valid client of the orchestrator's external-synchronization contract.
class ChaosRunner {
 public:
  /// Borrows an orchestrator that already has its clusters built and
  /// (typically) chains provisioned.
  ChaosRunner(alvc::orchestrator::NetworkOrchestrator& orch, ChaosParams params)
      : orch_(&orch), params_(std::move(params)) {}

  /// Generates the schedule, interleaves it with traffic in one event
  /// queue, runs to the horizon, and closes with a final audit plus the
  /// silent-loss accounting.
  [[nodiscard]] ChaosReport run();

 private:
  alvc::orchestrator::NetworkOrchestrator* orch_;
  ChaosParams params_;
};

}  // namespace alvc::faults
