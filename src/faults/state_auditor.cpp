#include "faults/state_auditor.h"

#include <cmath>
#include <unordered_set>
#include <variant>

#include "telemetry/telemetry.h"

namespace alvc::faults {

using alvc::orchestrator::ProvisionedChain;
using alvc::topology::DataCenterTopology;
using alvc::util::NfcId;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::TorId;

namespace {

constexpr double kGbpsEps = 1e-6;

std::string chain_tag(const ProvisionedChain& chain) {
  return "chain " + std::to_string(chain.record.id.value());
}

bool host_usable(const DataCenterTopology& topo, const alvc::nfv::HostRef& host) {
  if (const auto* ops = std::get_if<OpsId>(&host)) return topo.ops_usable(*ops);
  const auto server = std::get<ServerId>(host);
  return topo.server_usable(server) && topo.tor_usable(topo.server(server).tor);
}

bool vertex_usable(const DataCenterTopology& topo, std::size_t v) {
  if (topo.is_ops_vertex(v)) return topo.ops_usable(topo.vertex_to_ops(v));
  return topo.tor_usable(topo.vertex_to_tor(v));
}

void audit_chain(const DataCenterTopology& topo, const ProvisionedChain& chain,
                 std::vector<std::string>& out) {
  // Placement: live instances must sit on usable hardware. Degraded chains
  // may carry invalid (terminated) instance slots; those are exempt.
  for (std::size_t i = 0; i < chain.placement.hosts.size(); ++i) {
    const bool live = i >= chain.instances.size() || chain.instances[i].valid();
    if (!live) continue;
    if (!host_usable(topo, chain.placement.hosts[i])) {
      out.push_back(chain_tag(chain) + ": function " + std::to_string(i) +
                    " is placed on failed hardware");
    }
  }

  // Chain state: healthy means full bandwidth and a full set of live
  // instances; degraded means a recorded reason.
  const double demanded = chain.record.spec.bandwidth_gbps;
  if (!chain.degraded) {
    if (std::abs(chain.reserved_gbps - demanded) > kGbpsEps) {
      out.push_back(chain_tag(chain) + ": healthy but holds " +
                    std::to_string(chain.reserved_gbps) + " of " + std::to_string(demanded) +
                    " Gbps");
    }
    for (std::size_t i = 0; i < chain.instances.size(); ++i) {
      if (!chain.instances[i].valid()) {
        out.push_back(chain_tag(chain) + ": healthy but instance " + std::to_string(i) +
                      " is terminated");
      }
    }
  } else {
    if (chain.degraded_reason.empty()) {
      out.push_back(chain_tag(chain) + ": degraded without a reason");
    }
    if (chain.reserved_gbps > demanded + kGbpsEps) {
      out.push_back(chain_tag(chain) + ": degraded yet over-reserved");
    }
  }

  // Route: every vertex usable, every hop a live switch-graph edge.
  const auto& graph = topo.switch_graph();
  for (std::size_t v : chain.route.vertices) {
    if (!vertex_usable(topo, v)) {
      out.push_back(chain_tag(chain) + ": route visits failed vertex " + std::to_string(v));
    }
  }
  for (const auto& leg : chain.route.legs) {
    for (std::size_t i = 0; i + 1 < leg.size(); ++i) {
      if (leg[i] == leg[i + 1]) continue;
      if (!graph.has_edge(leg[i], leg[i + 1])) {
        out.push_back(chain_tag(chain) + ": route hop " + std::to_string(leg[i]) + "->" +
                      std::to_string(leg[i + 1]) + " is not a live link");
      }
    }
  }
}

}  // namespace

std::vector<std::string> StateAuditor::audit(
    const alvc::orchestrator::NetworkOrchestrator& orch) {
  ALVC_SPAN(span, "faults.state_audit");
  ALVC_COUNT("faults.audit.runs");
  std::vector<std::string> out;
  const auto& clusters = orch.clusters();
  const auto& topo = clusters.topology();

  for (const std::string& v : clusters.check_invariants()) out.push_back("cluster: " + v);
  for (const std::string& v : orch.check_isolation()) out.push_back("isolation: " + v);

  std::unordered_set<std::uint32_t> live_chains;
  for (const ProvisionedChain* chain : orch.chains()) {
    live_chains.insert(chain->record.id.value());
    audit_chain(topo, *chain, out);
  }

  // Flow tables: every rule belongs to a live chain and forwards over a
  // live link of the current switch graph (failed elements have no edges).
  const auto& tables = orch.controller().tables();
  const auto& graph = topo.switch_graph();
  for (std::size_t v = 0; v < tables.switch_count(); ++v) {
    for (const auto& rule : tables.table(v).rules()) {
      if (!live_chains.contains(rule.nfc.value())) {
        out.push_back("flow table " + std::to_string(v) + ": stale rule for chain " +
                      std::to_string(rule.nfc.value()));
      }
      if (v != rule.next_hop && !graph.has_edge(v, rule.next_hop)) {
        out.push_back("flow table " + std::to_string(v) + ": rule forwards over dead link to " +
                      std::to_string(rule.next_hop));
      }
    }
  }

  // Route cache: everything the cache would serve right now must still be
  // servable (walks live hardware, carries an intact path fingerprint).
  for (const std::string& v : orch.route_cache().check_coherence(clusters.clusters())) {
    out.push_back("route-cache: " + v);
  }

  // Bandwidth: reservations fit capacity and ride live links.
  for (const auto& link : orch.bandwidth().reserved_links()) {
    const std::string tag =
        "link " + std::to_string(link.u) + "-" + std::to_string(link.v);
    if (link.gbps > orch.bandwidth().capacity_gbps(link.u, link.v) + kGbpsEps) {
      out.push_back(tag + ": reserved " + std::to_string(link.gbps) + " Gbps exceeds capacity");
    }
    if (!vertex_usable(topo, link.u) || !vertex_usable(topo, link.v) ||
        !graph.has_edge(link.u, link.v)) {
      out.push_back(tag + ": reservation rides a dead link");
    }
  }

  ALVC_COUNT_N("faults.audit.violations", out.size());
  return out;
}

}  // namespace alvc::faults
