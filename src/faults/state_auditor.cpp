#include "faults/state_auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>

#include "telemetry/telemetry.h"

namespace alvc::faults {

using alvc::orchestrator::ProvisionedChain;
using alvc::topology::DataCenterTopology;
using alvc::util::NfcId;
using alvc::util::OpsId;
using alvc::util::ServerId;
using alvc::util::TorId;

namespace {

constexpr double kGbpsEps = 1e-6;

std::string chain_tag(const ProvisionedChain& chain) {
  return "chain " + std::to_string(chain.record.id.value());
}

bool host_usable(const DataCenterTopology& topo, const alvc::nfv::HostRef& host) {
  if (const auto* ops = std::get_if<OpsId>(&host)) return topo.ops_usable(*ops);
  const auto server = std::get<ServerId>(host);
  return topo.server_usable(server) && topo.tor_usable(topo.server(server).tor);
}

bool vertex_usable(const DataCenterTopology& topo, std::size_t v) {
  if (topo.is_ops_vertex(v)) return topo.ops_usable(topo.vertex_to_ops(v));
  return topo.tor_usable(topo.vertex_to_tor(v));
}

void audit_chain(const DataCenterTopology& topo, const ProvisionedChain& chain,
                 std::vector<std::string>& out) {
  // Placement: live instances must sit on usable hardware. Degraded chains
  // may carry invalid (terminated) instance slots; those are exempt.
  for (std::size_t i = 0; i < chain.placement.hosts.size(); ++i) {
    const bool live = i >= chain.instances.size() || chain.instances[i].valid();
    if (!live) continue;
    if (!host_usable(topo, chain.placement.hosts[i])) {
      out.push_back(chain_tag(chain) + ": function " + std::to_string(i) +
                    " is placed on failed hardware");
    }
  }

  // Chain state: healthy means full bandwidth and a full set of live
  // instances; degraded means a recorded reason.
  const double demanded = chain.record.spec.bandwidth_gbps;
  if (!chain.degraded) {
    if (std::abs(chain.reserved_gbps - demanded) > kGbpsEps) {
      out.push_back(chain_tag(chain) + ": healthy but holds " +
                    std::to_string(chain.reserved_gbps) + " of " + std::to_string(demanded) +
                    " Gbps");
    }
    for (std::size_t i = 0; i < chain.instances.size(); ++i) {
      if (!chain.instances[i].valid()) {
        out.push_back(chain_tag(chain) + ": healthy but instance " + std::to_string(i) +
                      " is terminated");
      }
    }
  } else {
    if (chain.degraded_reason.empty()) {
      out.push_back(chain_tag(chain) + ": degraded without a reason");
    }
    if (chain.reserved_gbps > demanded + kGbpsEps) {
      out.push_back(chain_tag(chain) + ": degraded yet over-reserved");
    }
  }

  // Route: every vertex usable, every hop a live switch-graph edge.
  const auto& graph = topo.switch_graph();
  for (std::size_t v : chain.route.vertices) {
    if (!vertex_usable(topo, v)) {
      out.push_back(chain_tag(chain) + ": route visits failed vertex " + std::to_string(v));
    }
  }
  for (const auto& leg : chain.route.legs) {
    for (std::size_t i = 0; i + 1 < leg.size(); ++i) {
      if (leg[i] == leg[i + 1]) continue;
      if (!graph.has_edge(leg[i], leg[i + 1])) {
        out.push_back(chain_tag(chain) + ": route hop " + std::to_string(leg[i]) + "->" +
                      std::to_string(leg[i + 1]) + " is not a live link");
      }
    }
  }
}

}  // namespace

std::vector<std::string> StateAuditor::audit(
    const alvc::orchestrator::NetworkOrchestrator& orch) {
  ALVC_SPAN(span, "faults.state_audit");
  ALVC_COUNT("faults.audit.runs");
  std::vector<std::string> out;
  const auto& clusters = orch.clusters();
  const auto& topo = clusters.topology();

  for (const std::string& v : clusters.check_invariants()) out.push_back("cluster: " + v);
  for (const std::string& v : orch.check_isolation()) out.push_back("isolation: " + v);

  std::unordered_set<std::uint32_t> live_chains;
  for (const ProvisionedChain* chain : orch.chains()) {
    live_chains.insert(chain->record.id.value());
    audit_chain(topo, *chain, out);
  }

  // Flow tables: every rule belongs to a live chain and forwards over a
  // live link of the current switch graph (failed elements have no edges).
  const auto& tables = orch.controller().tables();
  const auto& graph = topo.switch_graph();
  for (std::size_t v = 0; v < tables.switch_count(); ++v) {
    for (const auto& rule : tables.table(v).rules()) {
      if (!live_chains.contains(rule.nfc.value())) {
        out.push_back("flow table " + std::to_string(v) + ": stale rule for chain " +
                      std::to_string(rule.nfc.value()));
      }
      if (v != rule.next_hop && !graph.has_edge(v, rule.next_hop)) {
        out.push_back("flow table " + std::to_string(v) + ": rule forwards over dead link to " +
                      std::to_string(rule.next_hop));
      }
    }
  }

  // Route cache(s): everything a cache would serve right now must still be
  // servable (walks live hardware, carries an intact path fingerprint).
  // Under sharding each shard owns a cache over its own clusters' keys;
  // coherence is per-entry, so checking each against the full cluster set
  // is exactly the serial check partitioned.
  for (const auto* cache : orch.route_caches()) {
    for (const std::string& v : cache->check_coherence(clusters.clusters())) {
      out.push_back("route-cache: " + v);
    }
  }

  // Bandwidth: reservations fit capacity and ride live links.
  for (const auto& link : orch.bandwidth().reserved_links()) {
    const std::string tag =
        "link " + std::to_string(link.u) + "-" + std::to_string(link.v);
    if (link.gbps > orch.bandwidth().capacity_gbps(link.u, link.v) + kGbpsEps) {
      out.push_back(tag + ": reserved " + std::to_string(link.gbps) + " Gbps exceeds capacity");
    }
    if (!vertex_usable(topo, link.u) || !vertex_usable(topo, link.v) ||
        !graph.has_edge(link.u, link.v)) {
      out.push_back(tag + ": reservation rides a dead link");
    }
  }

  // Slice capacity: per cluster, the reservations riding its own ToR-OPS
  // uplinks must fit within the slice's live aggregate uplink capacity.
  // One pass over the reservations: an OPS belongs to at most one AL (the
  // exclusivity invariant, checked above via cluster invariants), so each
  // uplink attributes to its owner in O(1) — the old clusters x
  // reservations scan was quadratic and dominated the closing audit at the
  // 100k-cluster scale.
  std::unordered_map<std::uint32_t, double> slice_reserved;
  for (const auto& link : orch.bandwidth().reserved_links()) {
    const bool u_ops = topo.is_ops_vertex(link.u);
    const bool v_ops = topo.is_ops_vertex(link.v);
    if (u_ops == v_ops) continue;  // ToR-OPS uplinks only
    const OpsId ops = topo.vertex_to_ops(u_ops ? link.u : link.v);
    const TorId tor = topo.vertex_to_tor(u_ops ? link.v : link.u);
    const auto owner = clusters.ownership().owner(ops);
    if (!owner.valid()) continue;  // free-pool OPS: no slice to charge
    const auto* vc = clusters.find(owner);
    if (vc == nullptr || !vc->layer.contains_ops(ops) || !vc->layer.contains_tor(tor)) continue;
    slice_reserved[owner.value()] += link.gbps;
  }
  for (const auto* vc : clusters.clusters()) {
    const auto it = slice_reserved.find(vc->id.value());
    const double reserved = it == slice_reserved.end() ? 0.0 : it->second;
    const double cap = clusters.slice_uplink_capacity_gbps(vc->id);
    if (reserved > cap + kGbpsEps) {
      out.push_back("slice " + std::to_string(vc->id.value()) + ": reserved " +
                    std::to_string(reserved) + " Gbps exceeds its " + std::to_string(cap) +
                    " Gbps live uplink capacity");
    }
  }

  // QoS invariants: re-derive the allocator's resource view (each distinct
  // route link at coeff 1.0 plus per-ToR aggregate uplink budgets) from
  // primary state and check the fairness contracts the rebalance claims.
  const auto policy = orch.allocation_policy();
  if (policy != alvc::orchestrator::AllocationPolicy::kStrictLadder) {
    using alvc::orchestrator::BandwidthAllocator;
    // Resource key: (is ToR budget, id) — id is the packed (lo,hi) vertex
    // pair for links, the ToR vertex for budgets.
    using ResKey = std::pair<bool, std::uint64_t>;
    struct ResView {
      double cap = 0;
      double used = 0;        // all classes
      double used_hipri = 0;  // HIPRI reservations only
    };
    const double factor = orch.allocator().tor_budget_factor();
    const auto uses_of = [&](const ProvisionedChain& chain) {
      std::vector<std::pair<ResKey, double>> uses;
      std::vector<std::uint64_t> links;
      for (std::size_t i = 0; i + 1 < chain.route.vertices.size(); ++i) {
        const auto [lo, hi] =
            std::minmax(chain.route.vertices[i], chain.route.vertices[i + 1]);
        if (lo == hi) continue;
        links.push_back((static_cast<std::uint64_t>(lo) << 32) |
                        static_cast<std::uint64_t>(hi & 0xffffffffULL));
      }
      std::sort(links.begin(), links.end());
      links.erase(std::unique(links.begin(), links.end()), links.end());
      for (std::uint64_t k : links) {
        uses.emplace_back(ResKey{false, k}, 1.0);
        if (factor <= 0) continue;
        for (const std::size_t end :
             {static_cast<std::size_t>(k >> 32), static_cast<std::size_t>(k & 0xffffffffULL)}) {
          if (topo.is_ops_vertex(end)) continue;
          const ResKey key{true, end};
          const auto prior = std::find_if(uses.begin(), uses.end(),
                                          [&](const auto& use) { return use.first == key; });
          if (prior == uses.end()) {
            uses.emplace_back(key, 1.0);
          } else {
            prior->second += 1.0;
          }
        }
      }
      return uses;
    };
    const auto capacity_of = [&](const ResKey& key) {
      if (key.first) {
        return factor * topo.tor(topo.vertex_to_tor(static_cast<std::size_t>(key.second)))
                            .port_bandwidth_gbps;
      }
      return orch.bandwidth().capacity_gbps(static_cast<std::size_t>(key.second >> 32),
                                            static_cast<std::size_t>(key.second & 0xffffffffULL));
    };
    std::map<ResKey, ResView> view;
    for (const ProvisionedChain* chain : orch.chains()) {
      if (chain->route.vertices.empty()) continue;
      const bool hipri = chain->record.spec.priority == alvc::nfv::PriorityClass::kHipri;
      for (const auto& [key, coeff] : uses_of(*chain)) {
        ResView& res = view[key];
        res.cap = capacity_of(key);
        res.used += coeff * chain->reserved_gbps;
        if (hipri) res.used_hipri += coeff * chain->reserved_gbps;
      }
    }
    for (const ProvisionedChain* chain : orch.chains()) {
      if (chain->route.vertices.empty()) continue;
      const double demand = chain->record.spec.bandwidth_gbps;
      const double held = chain->reserved_gbps;
      if (held >= demand - kGbpsEps) continue;  // at full demand
      const double next = BandwidthAllocator::next_rung_gbps(demand, held);
      if (next <= held) continue;
      const double add = next - held;
      const auto uses = uses_of(*chain);
      // Work conservation: a chain short of its demand must be blocked on
      // at least one of its resources. Only flag when every resource has
      // comfortable headroom (kGbpsEps margin, far coarser than the
      // allocator's own 1e-9) so borderline fits never false-positive.
      bool blocked = false;
      for (const auto& [key, coeff] : uses) {
        const ResView& res = view.at(key);
        if (res.cap - res.used < coeff * add + kGbpsEps) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        out.push_back(chain_tag(*chain) + ": holds " + std::to_string(held) + " of " +
                      std::to_string(demand) +
                      " Gbps yet every resource has headroom for the next rung");
      }
      // Priority-feasibility: under selective downgrade a short HIPRI
      // chain must stay blocked even with every LOPRI reservation
      // excluded — LOPRI never holds capacity a degraded HIPRI could use.
      if (policy == alvc::orchestrator::AllocationPolicy::kPriorityDowngrade &&
          chain->record.spec.priority == alvc::nfv::PriorityClass::kHipri) {
        bool blocked_sans_lopri = false;
        for (const auto& [key, coeff] : uses) {
          const ResView& res = view.at(key);
          if (res.cap - res.used_hipri < coeff * add + kGbpsEps) {
            blocked_sans_lopri = true;
            break;
          }
        }
        if (!blocked_sans_lopri) {
          out.push_back(chain_tag(*chain) +
                        ": HIPRI short of demand while LOPRI holds its blocking capacity");
        }
      }
    }
  }

  // VNF instance accounting (the elastic loop's scale/migrate actions must
  // never leak): (a) every chain's instance list matches its placement
  // slot-for-slot; (b) every non-terminated instance is referenced by
  // exactly one chain slot — no orphans after a migration, no sharing —
  // and carries a positive scale factor; (c) per host, the hosting pool's
  // reserved books equal the sum of live instances' scaled demand
  // (demand-accounting conservation).
  {
    using alvc::nfv::VnfState;
    using alvc::util::VnfInstanceId;
    const auto& lifecycle = orch.cloud().lifecycle();
    std::map<std::uint32_t, std::size_t> references;
    for (const ProvisionedChain* chain : orch.chains()) {
      if (chain->instances.size() != chain->placement.hosts.size()) {
        out.push_back(chain_tag(*chain) + ": " + std::to_string(chain->instances.size()) +
                      " instance slots for " + std::to_string(chain->placement.hosts.size()) +
                      " placed functions");
      }
      for (auto inst : chain->instances) {
        if (inst.valid()) ++references[inst.value()];
      }
    }
    // (is_ops, id) -> scaled demand of live instances there; std::map so
    // any violation text comes out in a deterministic order.
    std::map<std::pair<bool, std::uint32_t>, alvc::topology::Resources> hosted;
    for (std::size_t raw = 0; raw < lifecycle.instance_count(); ++raw) {
      const VnfInstanceId id{static_cast<VnfInstanceId::value_type>(raw)};
      const auto& inst = lifecycle.instance(id);
      const auto ref_it = references.find(inst.id.value());
      const std::size_t refs = ref_it == references.end() ? 0 : ref_it->second;
      const std::string tag = "instance " + std::to_string(inst.id.value());
      if (inst.state == VnfState::kTerminated) {
        if (refs != 0) out.push_back(tag + ": terminated yet still referenced by a chain");
        continue;
      }
      if (refs == 0) {
        out.push_back(tag + ": live (" + std::string(to_string(inst.state)) +
                      ") but referenced by no chain — orphaned");
      } else if (refs > 1) {
        out.push_back(tag + ": referenced by " + std::to_string(refs) + " chain slots");
      }
      if (inst.scale <= 0) {
        out.push_back(tag + ": non-positive scale factor " + std::to_string(inst.scale));
      }
      const auto key = std::holds_alternative<OpsId>(inst.host)
                           ? std::pair{true, std::get<OpsId>(inst.host).value()}
                           : std::pair{false, std::get<ServerId>(inst.host).value()};
      hosted[key] += orch.cloud().reserved_demand(inst.id);
    }
    constexpr double kResEps = 1e-6;
    const auto check_host = [&](const alvc::nfv::HostRef& host, bool is_ops, std::uint32_t id) {
      const auto it = hosted.find({is_ops, id});
      const alvc::topology::Resources expected =
          it == hosted.end() ? alvc::topology::Resources{} : it->second;
      const alvc::topology::Resources booked = orch.cloud().pool().reserved_on(host);
      if (std::abs(booked.cpu_cores - expected.cpu_cores) > kResEps ||
          std::abs(booked.memory_gb - expected.memory_gb) > kResEps ||
          std::abs(booked.storage_gb - expected.storage_gb) > kResEps) {
        out.push_back(std::string(is_ops ? "ops " : "server ") + std::to_string(id) +
                      ": pool books " + std::to_string(booked.cpu_cores) + " cores but live " +
                      "instances sum to " + std::to_string(expected.cpu_cores) +
                      " (reservation conservation)");
      }
    };
    for (const auto& server : topo.servers()) {
      check_host(alvc::nfv::HostRef{server.id}, false, server.id.value());
    }
    for (const auto& ops : topo.opss()) {
      if (!ops.optoelectronic) continue;
      check_host(alvc::nfv::HostRef{ops.id}, true, ops.id.value());
    }
  }

  ALVC_COUNT_N("faults.audit.violations", out.size());
  return out;
}

}  // namespace alvc::faults
