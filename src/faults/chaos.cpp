#include "faults/chaos.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "faults/state_auditor.h"
#include "sim/event_queue.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace alvc::faults {

using alvc::orchestrator::ProvisionedChain;
using alvc::sdn::ControlEventType;
using alvc::util::Rng;

namespace {
// Load-event provisions need some placement; greedy-optical is the
// stateless default the rest of the suite leans on.
const alvc::orchestrator::GreedyOpticalPlacement kFallbackPlacement;
}  // namespace

ChaosReport ChaosRunner::run() {
  ChaosReport report;

  // Shard the control plane up front so every event in the run — baseline
  // collection included — sees the same topology of shards. The runner
  // stays a single-threaded driver; concurrency lives inside the
  // orchestrator's own fan-outs.
  orch_->set_sharding(params_.shards, params_.shard_executor);
  report.shard_count = orch_->shard_count();

  std::vector<std::uint32_t> baseline;
  for (const ProvisionedChain* chain : orch_->chains()) {
    baseline.push_back(chain->record.id.value());
  }

  auto events =
      FaultInjector::generate(orch_->clusters().topology(), params_.schedule);
  events.insert(events.end(), params_.scripted.begin(), params_.scripted.end());
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time_s < b.time_s; });
  report.fault_events = events.size();

  alvc::sim::EventQueue queue;
  const auto record_violations = [&](const std::vector<std::string>& violations) {
    report.audit_violations += violations.size();
    for (const std::string& v : violations) {
      if (report.violations.size() >= params_.max_recorded_violations) break;
      report.violations.push_back("t=" + std::to_string(queue.now()) + " " + v);
    }
  };

  // Failure time per element, so a matching repair can report how long the
  // element was down (the failure -> recovery latency the paper's degraded
  // -mode discussion cares about).
  std::map<std::tuple<int, std::uint32_t, std::uint32_t>, double> down_since;
  FaultInjector::schedule(queue, std::move(events), [&](const FaultEvent& event) {
    (event.failure ? report.failures_injected : report.repairs_injected) += 1;
    const auto element =
        std::make_tuple(static_cast<int>(event.kind), event.id, event.ops);
    if (event.failure) {
      ALVC_COUNT("faults.injected.failures");
      down_since.emplace(element, event.time_s);
    } else {
      ALVC_COUNT("faults.injected.repairs");
      if (const auto it = down_since.find(element); it != down_since.end()) {
        ALVC_OBSERVE("faults.recovery_latency_s", 0, 64, 32, event.time_s - it->second);
        down_since.erase(it);
      }
    }
    if (!apply_fault(*orch_, event)) {
      ++report.handler_errors;
      ALVC_COUNT("faults.handler_errors");
    }
    if (params_.audit_every_event) record_violations(StateAuditor::audit(*orch_));
  });

  // Overload load events ride the same queue. Faults were scheduled first,
  // so on a time tie the fault lands before the provision/teardown —
  // deterministic either way, but this order exercises provisioning into a
  // just-degraded fabric. Keys map to live chain ids so a departure finds
  // the chain its arrival created (or skips one that was rejected).
  report.load_events = params_.load.size();
  std::unordered_map<std::uint32_t, alvc::util::NfcId> live_keys;
  const alvc::orchestrator::PlacementStrategy* placement =
      params_.placement != nullptr ? params_.placement : &kFallbackPlacement;
  OverloadInjector::schedule(queue, params_.load, [&](const LoadEvent& event) {
    if (event.provision) {
      auto id = orch_->provision_chain(event.spec, *placement);
      if (id) {
        live_keys[event.key] = *id;
        baseline.push_back(id->value());  // runtime chains join the accounting
        ++report.load_provisioned;
        ALVC_COUNT("faults.load.provisioned");
        const ProvisionedChain* chain = orch_->chain(*id);
        if (chain != nullptr && chain->degraded) {
          ++report.load_provisioned_degraded;
          ALVC_COUNT("faults.load.provisioned_degraded");
        }
      } else {
        ++report.load_rejected;
        ALVC_COUNT("faults.load.rejected");
      }
    } else if (const auto it = live_keys.find(event.key); it != live_keys.end()) {
      if (orch_->chain(it->second) != nullptr) {
        if (orch_->teardown_chain(it->second).is_ok()) {
          ++report.load_torn_down;
          ALVC_COUNT("faults.load.torn_down");
        } else {
          ++report.handler_errors;
          ALVC_COUNT("faults.handler_errors");
        }
      }
      live_keys.erase(it);
    }
    if (params_.audit_every_event) record_violations(StateAuditor::audit(*orch_));
  });

  // Periodic controller ticks (the elastic control loop) ride the same
  // queue, scheduled after faults and load so a tick at a tied timestamp
  // observes the event that just landed, and audited like any other event.
  if (params_.tick_period_s > 0 && params_.on_tick) {
    for (double t = params_.tick_period_s; t < params_.schedule.horizon_s;
         t += params_.tick_period_s) {
      queue.schedule(t, [this, t, &report, &record_violations]() {
        params_.on_tick(t);
        ++report.controller_ticks;
        ALVC_COUNT("faults.controller.ticks");
        if (params_.audit_every_event) record_violations(StateAuditor::audit(*orch_));
      });
    }
  }

  // Traffic: Poisson arrivals offered round-robin to the chain population,
  // pre-generated so the schedule is deterministic in the traffic seed.
  std::size_t next_chain = 0;
  if (params_.flow_rate_per_s > 0) {
    Rng rng(params_.traffic_seed);
    double t = rng.exponential(params_.flow_rate_per_s);
    while (t < params_.schedule.horizon_s) {
      queue.schedule(t, [this, &report, &next_chain]() {
        const auto chains = orch_->chains();
        if (chains.empty()) {
          ++report.flows_deferred;
          ALVC_COUNT("faults.flows.deferred");
          return;
        }
        const ProvisionedChain* chain = chains[next_chain++ % chains.size()];
        // A degraded chain with zero bandwidth is parked; anything holding
        // bandwidth (full or fractional) still serves traffic.
        if (chain->reserved_gbps > 0) {
          ++report.flows_served;
          ALVC_COUNT("faults.flows.served");
        } else {
          ++report.flows_deferred;
          ALVC_COUNT("faults.flows.deferred");
        }
      });
      t += rng.exponential(params_.flow_rate_per_s);
    }
  }

  queue.run();

  // Closing audit (covers the no-fault / audit-disabled cases too).
  record_violations(StateAuditor::audit(*orch_));

  // Silent-loss accounting: every baseline chain must end live (healthy or
  // degraded) or have a deliberate teardown/loss event in the control log.
  std::unordered_set<std::uint32_t> live;
  for (const ProvisionedChain* chain : orch_->chains()) {
    live.insert(chain->record.id.value());
    (chain->degraded ? report.chains_live_degraded : report.chains_live_healthy) += 1;
  }
  std::unordered_set<std::uint32_t> accounted_gone;
  for (const auto& event : orch_->control_log().events()) {
    if (event.type == ControlEventType::kChainTornDown ||
        event.type == ControlEventType::kChainLost) {
      accounted_gone.insert(event.subject);
    }
  }
  for (std::uint32_t id : baseline) {
    if (!live.contains(id) && !accounted_gone.contains(id)) ++report.chains_unaccounted;
  }
  // Silent loss is the one number that must never drift from zero unnoticed.
  ALVC_COUNT_N("faults.chains.unaccounted", report.chains_unaccounted);
  report.chains_lost = orch_->stats().chains_lost;
  report.chains_restored = orch_->stats().chains_restored;
  return report;
}

}  // namespace alvc::faults
