// Deterministic fault-schedule generation for the robustness harness.
//
// The paper's recovery story (§III-C: re-running the Fig. 4 cover when an
// OPS dies) only matters if failures actually arrive — interleaved with
// chain traffic, overlapping each other, and eventually healing. This
// module produces those schedules three ways:
//
//   * Stochastic: every element of a class (OPS / ToR / server / ToR-OPS
//     link) follows an alternating-renewal process — exponential up-times
//     with the class's MTBF alternate with exponential down-times with its
//     MTTR. Each element draws from its own seeded substream, so a schedule
//     is a pure function of (topology, params) and is stable when other
//     classes are toggled on or off.
//   * Scripted: callers hand-build FaultEvent vectors for exact scenarios.
//   * Correlated: helpers for shared-fate modes — a whole rack (the ToR
//     plus every server behind it) or a whole AL (every OPS one cluster
//     owns) failing at the same instant.
//
// Schedules feed `sim::EventQueue`, so failures and repairs interleave
// deterministically with whatever else the simulation has scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/virtual_cluster.h"
#include "sim/event_queue.h"
#include "topology/topology.h"
#include "util/error.h"
#include "util/ids.h"

namespace alvc::orchestrator {
class NetworkOrchestrator;
}  // namespace alvc::orchestrator

namespace alvc::faults {

/// Which hardware class an event touches.
enum class FaultKind : std::uint8_t { kOps, kTor, kServer, kLink };

[[nodiscard]] constexpr const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kOps: return "ops";
    case FaultKind::kTor: return "tor";
    case FaultKind::kServer: return "server";
    case FaultKind::kLink: return "link";
  }
  return "?";
}

/// One failure or repair at a point in simulated time.
struct FaultEvent {
  double time_s = 0;
  FaultKind kind = FaultKind::kOps;
  bool failure = true;  // false = repair
  /// Element id: the OPS/ToR/server index; for kLink, the ToR endpoint.
  std::uint32_t id = 0;
  /// kLink only: the OPS endpoint of the failing uplink.
  std::uint32_t ops = 0;
};

/// Alternating-renewal parameters for one element class. mtbf_s <= 0
/// disables the class; mttr_s <= 0 makes its failures permanent (no
/// repair is ever scheduled).
struct ElementRates {
  double mtbf_s = 0;
  double mttr_s = 0;
};

struct FaultScheduleParams {
  ElementRates ops;
  ElementRates tor;
  ElementRates server;
  ElementRates link;
  double horizon_s = 0;  // events strictly before this time
  std::uint64_t seed = 1;
};

/// Threading contract: stateless; `generate` is a pure function of its
/// arguments (const topology read + explicit seed) and is safe to call
/// from any number of threads concurrently.
class FaultInjector {
 public:
  /// Generates the full stochastic schedule over `topo`, sorted by time
  /// (ties broken by generation order: class, then element index — stable
  /// across runs).
  [[nodiscard]] static std::vector<FaultEvent> generate(
      const alvc::topology::DataCenterTopology& topo, const FaultScheduleParams& params);

  /// Correlated mode: the rack behind `tor` (the ToR plus every server in
  /// it) fails at `at` and recovers together at `at + outage_s`.
  [[nodiscard]] static std::vector<FaultEvent> whole_rack(
      const alvc::topology::DataCenterTopology& topo, alvc::util::TorId tor, double at,
      double outage_s);

  /// Correlated mode: every OPS of `cluster`'s AL fails at `at`; repairs
  /// start at `at + outage_s`, staggered by `stagger_s` per OPS so the AL
  /// re-forms incrementally.
  [[nodiscard]] static std::vector<FaultEvent> whole_al(const alvc::cluster::VirtualCluster& cluster,
                                                        double at, double outage_s,
                                                        double stagger_s = 0);

  /// Feeds `events` into `queue` so `apply` fires at each scheduled time,
  /// interleaved with whatever else the queue holds.
  static void schedule(alvc::sim::EventQueue& queue, std::vector<FaultEvent> events,
                       std::function<void(const FaultEvent&)> apply);
};

/// Dispatches one event to the orchestrator's matching failure/recovery
/// handler. Returns the handler's result (chains touched); duplicate
/// injections are idempotent and return 0.
alvc::util::Expected<std::size_t> apply_fault(alvc::orchestrator::NetworkOrchestrator& orch,
                                              const FaultEvent& event);

}  // namespace alvc::faults
